/**
 * @file
 * Aggregated outcome of one serving run.
 */

#ifndef LIGHTLLM_METRICS_REPORT_HH
#define LIGHTLLM_METRICS_REPORT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "metrics/sla.hh"

namespace lightllm {
namespace metrics {

/** One sampled point of the memory time series (Fig 1). */
struct MemoryTimePoint
{
    Tick tick = 0;

    /** Currently consumed memory / capacity. */
    double consumedRatio = 0.0;

    /** True future required memory M* / capacity (> 1 predicts an
     *  eviction). */
    double futureRequiredRatio = 0.0;

    /** Running batch size at the sample. */
    std::int64_t batchSize = 0;
};

/** Everything measured during a run. */
struct RunReport
{
    std::string schedulerName;

    std::size_t numFinished = 0;

    /** Continuous-batching decode iterations executed. */
    std::int64_t decodeSteps = 0;

    /** Prefill iterations (or split-fuse chunks) executed. */
    std::int64_t prefillIterations = 0;

    /** Total eviction events (one request may count repeatedly). */
    std::int64_t evictionEvents = 0;

    /** Requests evicted at least once. */
    std::size_t requestsEvicted = 0;

    /** KV swap transfers (swap eviction mode; both directions). */
    std::int64_t swapEvents = 0;

    /** Token slots moved across the host link in total. */
    TokenCount swappedTokens = 0;

    TokenCount totalOutputTokens = 0;
    TokenCount totalPrefillTokens = 0;

    /** Prefix-cache admissions by cache-participating requests. */
    std::int64_t prefixLookups = 0;

    /** Prompt tokens those admissions needed in total. */
    TokenCount prefixPromptTokens = 0;

    /** Prompt tokens served from cached blocks (not prefilled). */
    TokenCount prefixHitTokens = 0;

    /** End-of-run simulated time. */
    Tick makespan = 0;

    /** Duration-weighted mean of consumed-memory ratio over decode
     *  steps ("Current Consumed Memory" of Table 1). */
    double avgConsumedMemory = 0.0;

    /** Duration-weighted mean of the true future-required-memory
     *  ratio over decode steps ("Future Required Memory"). */
    double avgFutureRequired = 0.0;

    /** Decode-step-weighted mean running batch size. */
    double avgBatchSize = 0.0;

    // --- Prediction audit (groundwork for misprediction-robust
    // admission, ROADMAP item 4) --------------------------------------

    /** Width of one futureErrorHistogram bin (|ratio error|). */
    static constexpr double kFutureErrorBinWidth = 0.01;

    /** Fixed bin count so per-instance histograms merge by
     *  summation; the last bin collects overflow. */
    static constexpr std::size_t kFutureErrorBins = 64;

    /**
     * Decode steps whose *predicted* future required memory
     * exceeded capacity — the scheduler's own eviction forecast.
     * Compare against evictionEvents: forecast ≫ observed means
     * over-conservative admission, forecast ≪ observed means the
     * predictor is underestimating tails.
     */
    std::int64_t predictedEvictionSteps = 0;

    /** Σ |predicted − true| futureRequiredRatio over decode
     *  steps (mean = / decodeSteps). */
    double futureErrorAbsSum = 0.0;

    /** Histogram of |predicted − true| futureRequiredRatio. */
    std::array<std::int64_t, kFutureErrorBins> futureErrorHistogram{};

    /** Mean |futureRequiredRatio| prediction error per step. */
    double futureErrorMean() const;

    /** p99 of the per-step error (nearest-rank over the histogram;
     *  reported as the matching bin's upper edge). */
    double futureErrorP99() const;

    // --- Fleet / autoscale outcome (zero unless set by a cluster
    // run; engines never shed or scale) -------------------------------

    /** Requests the router rejected under overload shedding. */
    std::int64_t shedRequests = 0;

    /** Requests offered to the router (shed + accepted; 0 for
     *  single-engine runs). */
    std::int64_t offeredRequests = 0;

    /** Instance-seconds consumed over the run: each instance's
     *  alive time (provision to retire/end) summed — the autoscale
     *  cost axis. */
    double instanceSeconds = 0.0;

    /** Autoscale control actions taken. */
    std::int64_t scaleUpEvents = 0;
    std::int64_t scaleDownEvents = 0;

    /** Instance-seconds priced at each instance's platform rate
     *  (HardwareSpec::dollarsPerSecond), in dollars. */
    double instanceCost = 0.0;

    /** Largest concurrently provisioned fleet size (0 unless the
     *  run autoscaled). */
    std::size_t peakInstances = 0;

    // --- Disaggregated prefill/decode outcome (set only by a
    // disagg::DisaggCluster run) --------------------------------------

    /** Per-pool latency summary of a disaggregated run. */
    struct PoolStats
    {
        std::size_t finished = 0;
        double p99TtftSeconds = 0.0;
        double p99MtpotSeconds = 0.0;
    };

    /** True when this report came from a disaggregated run. */
    bool disaggregated = false;

    PoolStats prefillPool;
    PoolStats decodePool;

    /** p99 wait in the migration handoff queue (transfer complete
     *  to decode-pool dispatch), seconds. */
    double handoffQueueP99Seconds = 0.0;

    /** KV bytes migrated prefill → decode over the interconnect. */
    std::int64_t migratedKvBytes = 0;

    /** Requests whose KV migrated (finished-at-prefill excluded). */
    std::int64_t migratedRequests = 0;

    /** Requests dropped because the handoff queue was full. */
    std::int64_t handoffShedRequests = 0;

    /** Per-request latency records. */
    std::vector<RequestRecord> requests;

    /** Optional sampled memory time series. */
    std::vector<MemoryTimePoint> timeseries;

    // --- Derived metrics --------------------------------------------

    /** Total output tokens per second over the makespan. */
    double throughputTokensPerSec() const;

    /** Output tokens of SLA-compliant requests per second. */
    double goodputTokensPerSec(const SlaSpec &sla) const;

    /** Fraction of requests meeting the SLA. */
    double slaCompliantFraction(const SlaSpec &sla) const;

    /** Eviction events / finished requests (the paper's "Evicted
     *  Reqs"; exceeds 1 when requests are evicted repeatedly). */
    double evictedReqRatio() const;

    /** Prefix-cache hit rate in prompt tokens: hit / needed over
     *  all cache-participating admissions (0 when none). */
    double prefixHitRate() const;

    /** Requests rejected by router admission control / offered to
     *  the router (0 when shedding never happened / not a fleet
     *  run). */
    double shedRate() const;

    /**
     * Extract-once latency digest: per-request TTFT / MTPOT / TPOT
     * sample vectors, the first two pre-sorted ascending, so
     * consumers that need several quantiles of one report (summary
     * lines, JSON writers, pool stats) extract each metric vector
     * once instead of rebuilding and re-ranking it per percentile.
     */
    struct LatencyDigest
    {
        /** Sorted ascending; seconds. */
        std::vector<double> ttftSeconds;

        /** Sorted ascending; seconds. */
        std::vector<double> mtpotSeconds;

        /** Per-request average TPOT in seconds (unsorted). */
        std::vector<double> tpotSeconds;

        double ttftPercentile(double q) const;
        double mtpotPercentile(double q) const;
        double meanTtft() const;
        double meanTpot() const;
    };

    /** Extract the latency digest (one pass over the records). */
    LatencyDigest latencyDigest() const;

    /** TTFT percentile in seconds (nearest-rank; q in [0, 1]). */
    double ttftPercentileSeconds(double q) const;

    /** Largest-inter-token-gap (MTPOT) percentile in seconds. */
    double mtpotPercentileSeconds(double q) const;

    double p50TtftSeconds() const
    {
        return ttftPercentileSeconds(0.50);
    }
    double p90TtftSeconds() const
    {
        return ttftPercentileSeconds(0.90);
    }
    double p99TtftSeconds() const
    {
        return ttftPercentileSeconds(0.99);
    }
    double p50MtpotSeconds() const
    {
        return mtpotPercentileSeconds(0.50);
    }
    double p90MtpotSeconds() const
    {
        return mtpotPercentileSeconds(0.90);
    }
    double p99MtpotSeconds() const
    {
        return mtpotPercentileSeconds(0.99);
    }
    double meanTtftSeconds() const;
    double meanTpotSeconds() const;

    /** Fraction of requests whose TTFT meets `sla.ttftLimit` (the
     *  autoscaling attainment target; MTPOT not considered). */
    double ttftAttainment(const SlaSpec &sla) const;

    /** One-line human-readable summary. */
    std::string summary(const SlaSpec &sla) const;
};

/**
 * Merge per-instance reports into a cluster-level report: counts and
 * tokens are summed, request records concatenated, the makespan is
 * the maximum, and memory ratios are decode-step-weighted averages.
 */
RunReport mergeReports(const std::vector<RunReport> &reports,
                       std::string name);

} // namespace metrics
} // namespace lightllm

#endif // LIGHTLLM_METRICS_REPORT_HH
