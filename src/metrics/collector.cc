#include "metrics/collector.hh"

#include <cmath>

#include "base/logging.hh"

namespace lightllm {
namespace metrics {

MetricsCollector::MetricsCollector(TokenCount capacity_tokens,
                                   std::int64_t timeseries_interval)
    : capacity_(capacity_tokens),
      timeseriesInterval_(timeseries_interval)
{
    LIGHTLLM_ASSERT(capacity_tokens > 0, "capacity must be positive");
    LIGHTLLM_ASSERT(timeseries_interval >= 0,
                    "negative timeseries interval");
    // Pre-reserve the record slab so steady-state collection stays
    // off the allocator until a run outgrows it (then the vector
    // doubles as usual). resetMeasurement clears but keeps capacity.
    requests_.reserve(kRecordSlabReserve);
    if (timeseriesInterval_ > 0)
        timeseries_.reserve(kTimeseriesReserve);
}

void
MetricsCollector::onDecodeStep(std::int64_t batch_size,
                               TokenCount used_tokens,
                               TokenCount true_future_tokens,
                               TokenCount predicted_future_tokens,
                               Tick tick, Tick duration)
{
    stepBuffer_[stepsBuffered_++] =
        StepRecord{batch_size, used_tokens, true_future_tokens,
                   predicted_future_tokens, tick, duration};
    if (stepsBuffered_ == kStepBatch)
        flushSteps();
}

void
MetricsCollector::flushSteps()
{
    const double capacity = static_cast<double>(capacity_);
    for (std::size_t i = 0; i < stepsBuffered_; ++i) {
        const StepRecord &record = stepBuffer_[i];
        ++decodeSteps_;
        const double weight = static_cast<double>(record.duration);
        const double consumed =
            static_cast<double>(record.usedTokens) / capacity;
        const double future =
            static_cast<double>(record.trueFutureTokens) / capacity;
        consumedWeighted_ += consumed * weight;
        futureWeighted_ += future * weight;
        batchWeighted_ +=
            static_cast<double>(record.batchSize) * weight;
        decodeDuration_ += weight;

        // Prediction audit: |predicted - true| futureRequiredRatio
        // per step, plus the steps where the prediction alone
        // forecast an eviction (predicted M* above capacity).
        const double predicted =
            static_cast<double>(record.predictedFutureTokens) /
            capacity;
        const double error = std::fabs(predicted - future);
        futureErrorAbsSum_ += error;
        auto bin = static_cast<std::size_t>(
            error / RunReport::kFutureErrorBinWidth);
        if (bin >= futureErrorHistogram_.size())
            bin = futureErrorHistogram_.size() - 1;
        ++futureErrorHistogram_[bin];
        if (record.predictedFutureTokens > capacity_)
            ++predictedEvictionSteps_;

        if (timeseriesInterval_ > 0 &&
            decodeSteps_ % timeseriesInterval_ == 0) {
            timeseries_.push_back(MemoryTimePoint{
                record.tick, consumed, future, record.batchSize});
        }
    }
    stepsBuffered_ = 0;
}

void
MetricsCollector::onPrefill(TokenCount prompt_tokens, Tick)
{
    ++prefillIterations_;
    totalPrefillTokens_ += prompt_tokens;
}

void
MetricsCollector::onEviction(bool first_eviction_of_request)
{
    ++evictionEvents_;
    if (first_eviction_of_request)
        ++requestsEvicted_;
}

void
MetricsCollector::onSwap(TokenCount tokens, Tick)
{
    ++swapEvents_;
    swappedTokens_ += tokens;
}

void
MetricsCollector::onPrefixLookup(TokenCount prompt_tokens,
                                 TokenCount hit_tokens)
{
    ++prefixLookups_;
    prefixPromptTokens_ += prompt_tokens;
    prefixHitTokens_ += hit_tokens;
}

void
MetricsCollector::onRequestFinished(const RequestRecord &record)
{
    totalOutputTokens_ += record.outputTokens;
    requests_.push_back(record);
}

void
MetricsCollector::resetMeasurement(Tick now)
{
    measureStart_ = now;
    decodeSteps_ = 0;
    prefillIterations_ = 0;
    evictionEvents_ = 0;
    requestsEvicted_ = 0;
    totalOutputTokens_ = 0;
    totalPrefillTokens_ = 0;
    swapEvents_ = 0;
    swappedTokens_ = 0;
    prefixLookups_ = 0;
    prefixPromptTokens_ = 0;
    prefixHitTokens_ = 0;
    consumedWeighted_ = 0.0;
    futureWeighted_ = 0.0;
    batchWeighted_ = 0.0;
    decodeDuration_ = 0.0;
    predictedEvictionSteps_ = 0;
    futureErrorAbsSum_ = 0.0;
    futureErrorHistogram_.fill(0);
    stepsBuffered_ = 0;
    requests_.clear();
    timeseries_.clear();
}

RunReport
MetricsCollector::finish(std::string scheduler_name,
                         Tick makespan) const
{
    // Fold any still-buffered step records first. Logically const:
    // flushing only moves buffered records into the aggregates
    // they were always destined for, so a finish() snapshot equals
    // the unbatched collector's at the same point.
    const_cast<MetricsCollector *>(this)->flushSteps();
    RunReport report;
    report.schedulerName = std::move(scheduler_name);
    report.numFinished = requests_.size();
    report.decodeSteps = decodeSteps_;
    report.prefillIterations = prefillIterations_;
    report.evictionEvents = evictionEvents_;
    report.requestsEvicted = requestsEvicted_;
    report.swapEvents = swapEvents_;
    report.swappedTokens = swappedTokens_;
    report.totalOutputTokens = totalOutputTokens_;
    report.totalPrefillTokens = totalPrefillTokens_;
    report.prefixLookups = prefixLookups_;
    report.prefixPromptTokens = prefixPromptTokens_;
    report.prefixHitTokens = prefixHitTokens_;
    report.predictedEvictionSteps = predictedEvictionSteps_;
    report.futureErrorAbsSum = futureErrorAbsSum_;
    report.futureErrorHistogram = futureErrorHistogram_;
    report.makespan = makespan - measureStart_;
    if (decodeDuration_ > 0.0) {
        report.avgConsumedMemory =
            consumedWeighted_ / decodeDuration_;
        report.avgFutureRequired = futureWeighted_ / decodeDuration_;
        report.avgBatchSize = batchWeighted_ / decodeDuration_;
    }
    report.requests = requests_;
    report.timeseries = timeseries_;
    return report;
}

} // namespace metrics
} // namespace lightllm
