#include "metrics/report_io.hh"

#include <fstream>
#include <ostream>

#include "base/logging.hh"
#include "base/str_util.hh"

namespace lightllm {
namespace metrics {

void
writeRequestsCsv(std::ostream &os, const RunReport &report,
                 const SlaSpec &sla)
{
    os << "id,input_len,output_tokens,ttft_s,avg_tpot_s,mtpot_s,"
          "evictions,sla_compliant\n";
    for (const auto &record : report.requests) {
        os << record.id << ',' << record.inputLen << ','
           << record.outputTokens << ','
           << formatDouble(ticksToSeconds(record.ttft()), 6) << ','
           << formatDouble(record.avgTpotSeconds(), 6) << ','
           << formatDouble(ticksToSeconds(record.maxGap), 6) << ','
           << record.evictions << ','
           << (sla.compliant(record) ? 1 : 0) << '\n';
    }
}

void
writeRequestsCsvFile(const std::string &path, const RunReport &report,
                     const SlaSpec &sla)
{
    std::ofstream file(path);
    if (!file)
        fatal("cannot open report file for writing: ", path);
    writeRequestsCsv(file, report, sla);
    if (!file)
        fatal("error while writing report file: ", path);
}

void
writeSummaryJson(std::ostream &os, const RunReport &report,
                 const SlaSpec &sla)
{
    // One digest serves all six latency quantiles below (each
    // metric vector is extracted and ranked exactly once).
    const RunReport::LatencyDigest digest = report.latencyDigest();
    os << "{\n"
       << "  \"scheduler\": \"" << report.schedulerName << "\",\n"
       << "  \"num_finished\": " << report.numFinished << ",\n"
       << "  \"decode_steps\": " << report.decodeSteps << ",\n"
       << "  \"prefill_iterations\": " << report.prefillIterations
       << ",\n"
       << "  \"eviction_events\": " << report.evictionEvents << ",\n"
       << "  \"requests_evicted\": " << report.requestsEvicted
       << ",\n"
       << "  \"swap_events\": " << report.swapEvents << ",\n"
       << "  \"total_output_tokens\": " << report.totalOutputTokens
       << ",\n"
       << "  \"total_prefill_tokens\": "
       << report.totalPrefillTokens << ",\n"
       << "  \"prefix_cache_lookups\": " << report.prefixLookups
       << ",\n"
       << "  \"prefix_cache_hit_tokens\": "
       << report.prefixHitTokens << ",\n"
       << "  \"prefix_cache_hit_rate\": "
       << formatDouble(report.prefixHitRate(), 4) << ",\n"
       << "  \"makespan_s\": "
       << formatDouble(ticksToSeconds(report.makespan), 3) << ",\n"
       << "  \"throughput_tok_s\": "
       << formatDouble(report.throughputTokensPerSec(), 3) << ",\n"
       << "  \"goodput_tok_s\": "
       << formatDouble(report.goodputTokensPerSec(sla), 3) << ",\n"
       << "  \"sla_compliant_fraction\": "
       << formatDouble(report.slaCompliantFraction(sla), 4) << ",\n"
       << "  \"p50_ttft_s\": "
       << formatDouble(digest.ttftPercentile(0.50), 3) << ",\n"
       << "  \"p90_ttft_s\": "
       << formatDouble(digest.ttftPercentile(0.90), 3) << ",\n"
       << "  \"p99_ttft_s\": "
       << formatDouble(digest.ttftPercentile(0.99), 3) << ",\n"
       << "  \"p50_mtpot_s\": "
       << formatDouble(digest.mtpotPercentile(0.50), 3) << ",\n"
       << "  \"p90_mtpot_s\": "
       << formatDouble(digest.mtpotPercentile(0.90), 3) << ",\n"
       << "  \"p99_mtpot_s\": "
       << formatDouble(digest.mtpotPercentile(0.99), 3) << ",\n"
       << "  \"shed_requests\": " << report.shedRequests << ",\n"
       << "  \"offered_requests\": " << report.offeredRequests
       << ",\n"
       << "  \"shed_rate\": "
       << formatDouble(report.shedRate(), 4) << ",\n"
       << "  \"instance_seconds\": "
       << formatDouble(report.instanceSeconds, 1) << ",\n"
       << "  \"instance_cost\": "
       << formatDouble(report.instanceCost, 4) << ",\n"
       << "  \"scale_up_events\": " << report.scaleUpEvents << ",\n"
       << "  \"scale_down_events\": " << report.scaleDownEvents
       << ",\n"
       << "  \"peak_instances\": " << report.peakInstances << ",\n";
    if (report.disaggregated) {
        os << "  \"prefill_pool_finished\": "
           << report.prefillPool.finished << ",\n"
           << "  \"prefill_pool_p99_ttft_s\": "
           << formatDouble(report.prefillPool.p99TtftSeconds, 3)
           << ",\n"
           << "  \"prefill_pool_p99_mtpot_s\": "
           << formatDouble(report.prefillPool.p99MtpotSeconds, 3)
           << ",\n"
           << "  \"decode_pool_finished\": "
           << report.decodePool.finished << ",\n"
           << "  \"decode_pool_p99_ttft_s\": "
           << formatDouble(report.decodePool.p99TtftSeconds, 3)
           << ",\n"
           << "  \"decode_pool_p99_mtpot_s\": "
           << formatDouble(report.decodePool.p99MtpotSeconds, 3)
           << ",\n"
           << "  \"handoff_queue_p99_s\": "
           << formatDouble(report.handoffQueueP99Seconds, 4)
           << ",\n"
           << "  \"migrated_kv_bytes\": " << report.migratedKvBytes
           << ",\n"
           << "  \"migrated_requests\": " << report.migratedRequests
           << ",\n"
           << "  \"handoff_shed_requests\": "
           << report.handoffShedRequests << ",\n";
    }
    os << "  \"predicted_eviction_steps\": "
       << report.predictedEvictionSteps << ",\n"
       << "  \"future_error_mean\": "
       << formatDouble(report.futureErrorMean(), 4) << ",\n"
       << "  \"future_error_p99\": "
       << formatDouble(report.futureErrorP99(), 4) << ",\n"
       << "  \"avg_consumed_memory\": "
       << formatDouble(report.avgConsumedMemory, 4) << ",\n"
       << "  \"avg_future_required\": "
       << formatDouble(report.avgFutureRequired, 4) << ",\n"
       << "  \"avg_batch_size\": "
       << formatDouble(report.avgBatchSize, 2) << "\n"
       << "}\n";
}

} // namespace metrics
} // namespace lightllm
