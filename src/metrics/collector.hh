/**
 * @file
 * Streaming metrics collection during a serving run.
 *
 * The engine reports iteration-level and request-level events; the
 * collector maintains duration-weighted aggregates and assembles the
 * final RunReport.
 */

#ifndef LIGHTLLM_METRICS_COLLECTOR_HH
#define LIGHTLLM_METRICS_COLLECTOR_HH

#include <array>
#include <cstdint>

#include "base/types.hh"
#include "metrics/report.hh"

namespace lightllm {
namespace metrics {

/**
 * Aggregates engine events into a RunReport.
 *
 * Threading contract under sharded co-simulation (DESIGN.md §9):
 * each collector belongs to exactly one engine, and an engine is
 * stepped only by the shard thread that owns it, so collection
 * needs no synchronization. The coordinator calls finish() and
 * mergeReports() only after the final window barrier, when every
 * shard thread has quiesced; merging iterates instances in index
 * order, so the merged report is independent of shard count.
 */
class MetricsCollector
{
  public:
    /**
     * @param capacity_tokens KV token capacity (ratio denominator).
     * @param timeseries_interval Record a MemoryTimePoint every this
     *        many decode steps (0 disables the time series).
     */
    explicit MetricsCollector(TokenCount capacity_tokens,
                              std::int64_t timeseries_interval = 0);

    /**
     * One decode iteration completed.
     *
     * The record is buffered and folded in batches of kStepBatch
     * (hot path: a handful of stores, no floating-point work); the
     * fold replays the records in order with the exact arithmetic
     * the unbatched path used, so aggregates are bit-identical at
     * every finish() point.
     *
     * @param batch_size Requests decoded this step.
     * @param used_tokens KV tokens allocated during the step.
     * @param true_future_tokens Exact future required memory of the
     *        running batch (computed with ground-truth lengths).
     * @param predicted_future_tokens The scheduler's read-only
     *        future-memory estimate for the same batch (prediction
     *        audit; pass used/true when no predictor exists).
     * @param tick Simulation time at the end of the step.
     * @param duration Step duration in ticks.
     */
    void onDecodeStep(std::int64_t batch_size, TokenCount used_tokens,
                      TokenCount true_future_tokens,
                      TokenCount predicted_future_tokens, Tick tick,
                      Tick duration);

    /** One prefill iteration (or split-fuse chunk) completed. */
    void onPrefill(TokenCount prompt_tokens, Tick duration);

    /** A request was evicted from the running batch. */
    void onEviction(bool first_eviction_of_request);

    /** A KV swap transfer (either direction) of `tokens` slots. */
    void onSwap(TokenCount tokens, Tick duration);

    /**
     * A prefix-cache lookup at admission: `prompt_tokens` were
     * needed, `hit_tokens` of them were served from cached blocks
     * (only cache-participating requests report).
     */
    void onPrefixLookup(TokenCount prompt_tokens,
                        TokenCount hit_tokens);

    /** A request finished; `record` must be fully populated. */
    void onRequestFinished(const RequestRecord &record);

    /**
     * Discard everything observed so far and start measuring from
     * `now` (end-of-warmup boundary for steady-state measurement).
     */
    void resetMeasurement(Tick now);

    /** Finalize into a report; `makespan` is the end-of-run tick. */
    RunReport finish(std::string scheduler_name, Tick makespan) const;

    TokenCount capacityTokens() const { return capacity_; }

  private:
    /** Records pre-reserved at construction (collection touches the
     *  allocator only when a run outgrows this slab). */
    static constexpr std::size_t kRecordSlabReserve = 1024;

    /** Time-series points pre-reserved when sampling is on. */
    static constexpr std::size_t kTimeseriesReserve = 256;

    /** Decode-step records folded per flush. */
    static constexpr std::size_t kStepBatch = 64;

    /** One buffered onDecodeStep call (POD, stored by value). */
    struct StepRecord
    {
        std::int64_t batchSize;
        TokenCount usedTokens;
        TokenCount trueFutureTokens;
        TokenCount predictedFutureTokens;
        Tick tick;
        Tick duration;
    };

    /** Fold buffered step records into the aggregates (in record
     *  order, with the unbatched path's exact arithmetic). */
    void flushSteps();

    TokenCount capacity_;
    std::int64_t timeseriesInterval_;
    Tick measureStart_ = 0;

    std::int64_t decodeSteps_ = 0;
    std::int64_t prefillIterations_ = 0;
    std::int64_t evictionEvents_ = 0;
    std::size_t requestsEvicted_ = 0;
    std::int64_t swapEvents_ = 0;
    TokenCount swappedTokens_ = 0;
    TokenCount totalOutputTokens_ = 0;
    TokenCount totalPrefillTokens_ = 0;
    std::int64_t prefixLookups_ = 0;
    TokenCount prefixPromptTokens_ = 0;
    TokenCount prefixHitTokens_ = 0;

    double consumedWeighted_ = 0.0;
    double futureWeighted_ = 0.0;
    double batchWeighted_ = 0.0;
    double decodeDuration_ = 0.0;

    // Prediction audit (folded with the step batches).
    std::int64_t predictedEvictionSteps_ = 0;
    double futureErrorAbsSum_ = 0.0;
    std::array<std::int64_t, RunReport::kFutureErrorBins>
        futureErrorHistogram_{};

    std::array<StepRecord, kStepBatch> stepBuffer_;
    std::size_t stepsBuffered_ = 0;

    std::vector<RequestRecord> requests_;
    std::vector<MemoryTimePoint> timeseries_;
};

} // namespace metrics
} // namespace lightllm

#endif // LIGHTLLM_METRICS_COLLECTOR_HH
