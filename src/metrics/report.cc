#include "metrics/report.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/str_util.hh"
#include "stats/percentile.hh"

namespace lightllm {
namespace metrics {

double
RunReport::throughputTokensPerSec() const
{
    if (makespan <= 0)
        return 0.0;
    return static_cast<double>(totalOutputTokens) /
        ticksToSeconds(makespan);
}

double
RunReport::goodputTokensPerSec(const SlaSpec &sla) const
{
    if (makespan <= 0)
        return 0.0;
    TokenCount good_tokens = 0;
    for (const auto &record : requests) {
        if (sla.compliant(record))
            good_tokens += record.outputTokens;
    }
    return static_cast<double>(good_tokens) /
        ticksToSeconds(makespan);
}

double
RunReport::slaCompliantFraction(const SlaSpec &sla) const
{
    if (requests.empty())
        return 0.0;
    std::size_t good = 0;
    for (const auto &record : requests) {
        if (sla.compliant(record))
            ++good;
    }
    return static_cast<double>(good) /
        static_cast<double>(requests.size());
}

double
RunReport::evictedReqRatio() const
{
    if (numFinished == 0)
        return 0.0;
    return static_cast<double>(evictionEvents) /
        static_cast<double>(numFinished);
}

double
RunReport::prefixHitRate() const
{
    if (prefixPromptTokens == 0)
        return 0.0;
    return static_cast<double>(prefixHitTokens) /
        static_cast<double>(prefixPromptTokens);
}

double
RunReport::futureErrorMean() const
{
    if (decodeSteps == 0)
        return 0.0;
    return futureErrorAbsSum / static_cast<double>(decodeSteps);
}

double
RunReport::futureErrorP99() const
{
    std::int64_t total = 0;
    for (std::int64_t count : futureErrorHistogram)
        total += count;
    if (total == 0)
        return 0.0;
    // Nearest-rank p99 over the binned samples; the estimate is
    // the matching bin's upper edge (conservative to one bin).
    const auto rank = static_cast<std::int64_t>(
        std::ceil(0.99 * static_cast<double>(total)));
    std::int64_t seen = 0;
    for (std::size_t bin = 0; bin < futureErrorHistogram.size();
         ++bin) {
        seen += futureErrorHistogram[bin];
        if (seen >= rank) {
            return static_cast<double>(bin + 1) *
                kFutureErrorBinWidth;
        }
    }
    return static_cast<double>(futureErrorHistogram.size()) *
        kFutureErrorBinWidth;
}

double
RunReport::shedRate() const
{
    if (offeredRequests <= 0)
        return 0.0;
    return static_cast<double>(shedRequests) /
        static_cast<double>(offeredRequests);
}

RunReport::LatencyDigest
RunReport::latencyDigest() const
{
    LatencyDigest digest;
    digest.ttftSeconds.reserve(requests.size());
    digest.mtpotSeconds.reserve(requests.size());
    digest.tpotSeconds.reserve(requests.size());
    for (const auto &record : requests) {
        digest.ttftSeconds.push_back(
            ticksToSeconds(record.ttft()));
        digest.mtpotSeconds.push_back(
            ticksToSeconds(record.maxGap));
        digest.tpotSeconds.push_back(record.avgTpotSeconds());
    }
    std::sort(digest.ttftSeconds.begin(),
              digest.ttftSeconds.end());
    std::sort(digest.mtpotSeconds.begin(),
              digest.mtpotSeconds.end());
    return digest;
}

double
RunReport::LatencyDigest::ttftPercentile(double q) const
{
    return stats::percentileSorted(ttftSeconds, q);
}

double
RunReport::LatencyDigest::mtpotPercentile(double q) const
{
    return stats::percentileSorted(mtpotSeconds, q);
}

double
RunReport::LatencyDigest::meanTtft() const
{
    return stats::mean(ttftSeconds);
}

double
RunReport::LatencyDigest::meanTpot() const
{
    return stats::mean(tpotSeconds);
}

double
RunReport::ttftPercentileSeconds(double q) const
{
    std::vector<double> ttfts;
    ttfts.reserve(requests.size());
    for (const auto &record : requests)
        ttfts.push_back(ticksToSeconds(record.ttft()));
    return stats::percentile(std::move(ttfts), q);
}

double
RunReport::mtpotPercentileSeconds(double q) const
{
    std::vector<double> gaps;
    gaps.reserve(requests.size());
    for (const auto &record : requests)
        gaps.push_back(ticksToSeconds(record.maxGap));
    return stats::percentile(std::move(gaps), q);
}

double
RunReport::ttftAttainment(const SlaSpec &sla) const
{
    if (requests.empty())
        return 0.0;
    std::size_t met = 0;
    for (const auto &record : requests) {
        if (record.ttft() < sla.ttftLimit)
            ++met;
    }
    return static_cast<double>(met) /
        static_cast<double>(requests.size());
}

double
RunReport::meanTtftSeconds() const
{
    std::vector<double> ttfts;
    ttfts.reserve(requests.size());
    for (const auto &record : requests)
        ttfts.push_back(ticksToSeconds(record.ttft()));
    return stats::mean(ttfts);
}

double
RunReport::meanTpotSeconds() const
{
    std::vector<double> tpots;
    tpots.reserve(requests.size());
    for (const auto &record : requests)
        tpots.push_back(record.avgTpotSeconds());
    return stats::mean(tpots);
}

RunReport
mergeReports(const std::vector<RunReport> &reports, std::string name)
{
    RunReport merged;
    merged.schedulerName = std::move(name);
    double consumed_weighted = 0.0;
    double future_weighted = 0.0;
    double batch_weighted = 0.0;
    double total_steps = 0.0;
    for (const auto &report : reports) {
        merged.numFinished += report.numFinished;
        merged.decodeSteps += report.decodeSteps;
        merged.prefillIterations += report.prefillIterations;
        merged.evictionEvents += report.evictionEvents;
        merged.requestsEvicted += report.requestsEvicted;
        merged.swapEvents += report.swapEvents;
        merged.swappedTokens += report.swappedTokens;
        merged.totalOutputTokens += report.totalOutputTokens;
        merged.totalPrefillTokens += report.totalPrefillTokens;
        merged.prefixLookups += report.prefixLookups;
        merged.prefixPromptTokens += report.prefixPromptTokens;
        merged.prefixHitTokens += report.prefixHitTokens;
        merged.predictedEvictionSteps +=
            report.predictedEvictionSteps;
        merged.futureErrorAbsSum += report.futureErrorAbsSum;
        for (std::size_t bin = 0;
             bin < merged.futureErrorHistogram.size(); ++bin) {
            merged.futureErrorHistogram[bin] +=
                report.futureErrorHistogram[bin];
        }
        merged.shedRequests += report.shedRequests;
        merged.offeredRequests += report.offeredRequests;
        merged.instanceSeconds += report.instanceSeconds;
        merged.instanceCost += report.instanceCost;
        merged.scaleUpEvents += report.scaleUpEvents;
        merged.scaleDownEvents += report.scaleDownEvents;
        merged.peakInstances =
            std::max(merged.peakInstances, report.peakInstances);
        merged.makespan = std::max(merged.makespan, report.makespan);
        const auto weight =
            static_cast<double>(report.decodeSteps);
        consumed_weighted += report.avgConsumedMemory * weight;
        future_weighted += report.avgFutureRequired * weight;
        batch_weighted += report.avgBatchSize * weight;
        total_steps += weight;
        merged.requests.insert(merged.requests.end(),
                               report.requests.begin(),
                               report.requests.end());
    }
    if (total_steps > 0.0) {
        merged.avgConsumedMemory = consumed_weighted / total_steps;
        merged.avgFutureRequired = future_weighted / total_steps;
        merged.avgBatchSize = batch_weighted / total_steps;
    }
    return merged;
}

std::string
RunReport::summary(const SlaSpec &sla) const
{
    const LatencyDigest digest = latencyDigest();
    std::ostringstream oss;
    oss << schedulerName << ": " << numFinished << " reqs, "
        << formatDouble(throughputTokensPerSec(), 1)
        << " tok/s throughput, "
        << formatDouble(goodputTokensPerSec(sla), 1)
        << " tok/s goodput, p99 TTFT "
        << formatDouble(digest.ttftPercentile(0.99), 2)
        << " s, p99 MTPOT "
        << formatDouble(digest.mtpotPercentile(0.99), 2)
        << " s, evicted "
        << formatPercent(evictedReqRatio(), 2) << ", mem "
        << formatPercent(avgConsumedMemory, 2);
    return oss.str();
}

} // namespace metrics
} // namespace lightllm
