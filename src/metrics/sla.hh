/**
 * @file
 * Service-level-agreement metrics (§2.5).
 *
 * TTFT  — time to first token: arrival to first emitted token.
 * TPOT  — time per output token: mean inter-token interval.
 * MTPOT — maximum TPOT within a request: the largest inter-token
 *         gap; a single large gap is a visible output stall even
 *         when the average looks fine, which is why the paper's SLA
 *         bounds MTPOT rather than mean TPOT.
 *
 * A request is SLA-compliant when both its TTFT and its MTPOT are
 * within the limits. Goodput is the token throughput contributed by
 * compliant requests only.
 */

#ifndef LIGHTLLM_METRICS_SLA_HH
#define LIGHTLLM_METRICS_SLA_HH

#include "base/request_class.hh"
#include "base/types.hh"

namespace lightllm {
namespace metrics {

/** Completed-request latency record. */
struct RequestRecord
{
    RequestId id = kInvalidRequestId;

    /** Scheduling class (tenant, priority, SLO tier). */
    base::RequestClass cls;

    TokenCount inputLen = 0;

    /** Output tokens actually generated. */
    TokenCount outputTokens = 0;

    Tick arrival = 0;
    Tick firstToken = 0;
    Tick finish = 0;

    /** Largest inter-token emission gap (MTPOT), in ticks. */
    Tick maxGap = 0;

    /** Times this request was evicted and recomputed. */
    int evictions = 0;

    /** Time to first token in ticks. */
    Tick ttft() const { return firstToken - arrival; }

    /** Mean time per output token in seconds (0 if single token). */
    double
    avgTpotSeconds() const
    {
        if (outputTokens <= 1)
            return 0.0;
        return ticksToSeconds(finish - firstToken) /
            static_cast<double>(outputTokens - 1);
    }
};

/** SLA limits for one service configuration. */
struct SlaSpec
{
    Tick ttftLimit = 0;
    Tick mtpotLimit = 0;

    /** True when the request meets both limits. */
    bool compliant(const RequestRecord &record) const;

    /** The paper's SLA for 7B/13B: TTFT < 10 s, MTPOT < 1.5 s. */
    static SlaSpec small7b13b();

    /** The paper's SLA for 70B: TTFT < 15 s, MTPOT < 5 s. */
    static SlaSpec large70b();
};

} // namespace metrics
} // namespace lightllm

#endif // LIGHTLLM_METRICS_SLA_HH
