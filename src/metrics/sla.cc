#include "metrics/sla.hh"

namespace lightllm {
namespace metrics {

bool
SlaSpec::compliant(const RequestRecord &record) const
{
    return record.ttft() < ttftLimit && record.maxGap < mtpotLimit;
}

SlaSpec
SlaSpec::small7b13b()
{
    return SlaSpec{secondsToTicks(10.0), secondsToTicks(1.5)};
}

SlaSpec
SlaSpec::large70b()
{
    return SlaSpec{secondsToTicks(15.0), secondsToTicks(5.0)};
}

} // namespace metrics
} // namespace lightllm
