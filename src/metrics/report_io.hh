/**
 * @file
 * Machine-readable export of run reports, so bench results can be
 * plotted or diffed outside the harness.
 */

#ifndef LIGHTLLM_METRICS_REPORT_IO_HH
#define LIGHTLLM_METRICS_REPORT_IO_HH

#include <iosfwd>
#include <string>

#include "metrics/report.hh"
#include "metrics/sla.hh"

namespace lightllm {
namespace metrics {

/**
 * Per-request CSV:
 * `id,input_len,output_tokens,ttft_s,avg_tpot_s,mtpot_s,evictions,
 *  sla_compliant`.
 */
void writeRequestsCsv(std::ostream &os, const RunReport &report,
                      const SlaSpec &sla);

/** writeRequestsCsv to a file; fatal() on I/O failure. */
void writeRequestsCsvFile(const std::string &path,
                          const RunReport &report,
                          const SlaSpec &sla);

/** Flat JSON object with the report's aggregate metrics. */
void writeSummaryJson(std::ostream &os, const RunReport &report,
                      const SlaSpec &sla);

} // namespace metrics
} // namespace lightllm

#endif // LIGHTLLM_METRICS_REPORT_IO_HH
