/**
 * @file
 * Multi-tenant traffic composition.
 *
 * Serving clusters front many tenants whose traffic shares are
 * heavily skewed — a few tenants dominate, a long tail trickles.
 * TenantMix models that with a Zipf-distributed share per tenant:
 * tenant t (0-based) gets weight 1 / (t + 1)^s, so s = 0 is
 * uniform and s ~ 1 reproduces the classic power-law skew. Each
 * request draws its tenant i.i.d. from those shares,
 * deterministically in the seed; SLO tiers cycle over the tenant
 * id so every tier is populated. The same shares feed the tenant
 * tree's fair weights (see tenantTreeWeights) so "fair" means
 * proportional to the configured share, not uniform.
 */

#ifndef LIGHTLLM_WORKLOAD_TENANT_MIX_HH
#define LIGHTLLM_WORKLOAD_TENANT_MIX_HH

#include <cstdint>
#include <vector>

#include "workload/datasets.hh"

namespace lightllm {
namespace workload {

/** Declarative multi-tenant traffic composition. */
struct TenantMix
{
    /** Number of tenants (>= 1); ids are 0 .. numTenants-1. */
    std::size_t numTenants = 1;

    /** Zipf exponent for traffic shares (0 = uniform). */
    double zipfExponent = 0.0;

    /**
     * Explicit per-tenant shares; overrides the Zipf shape when
     * non-empty (size must then equal numTenants). Normalised over
     * their sum.
     */
    std::vector<double> weights;

    /** Number of SLO tiers cycled over tenant ids (tier =
     *  tenant % sloTiers; 1 = everyone tier 0). */
    std::size_t sloTiers = 1;

    /** Effective (possibly Zipf-derived) share per tenant. */
    std::vector<double> shares() const;
};

/**
 * Assign tenants (and SLO tiers) to a dataset's requests: an
 * i.i.d. per-request draw from the mix's shares, deterministic in
 * `seed` — the workload knob behind --tenants / --tenant-zipf /
 * --tenant-weights.
 */
void assignTenantMix(Dataset &dataset, const TenantMix &mix,
                     std::uint64_t seed);

/**
 * The mix's shares scaled for use as fair-tree weights (max share
 * = 1.0, so weights stay well-conditioned for vruntime
 * arithmetic).
 */
std::vector<double> tenantTreeWeights(const TenantMix &mix);

} // namespace workload
} // namespace lightllm

#endif // LIGHTLLM_WORKLOAD_TENANT_MIX_HH
