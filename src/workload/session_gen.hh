/**
 * @file
 * Multi-turn conversation workload generator.
 *
 * Real chat traffic is dominated by sessions: every request of a
 * session shares the service's system prompt, and turn k's prompt
 * textually contains the whole history of turns 1..k-1 (user
 * messages and model replies). The generator models exactly that
 * structure with content-identified segments (base/token_stream.hh):
 *
 *   turn k prompt = [system][u1][r1]...[u_{k-1}][r_{k-1}][u_k]
 *
 * where the system segment's key is shared by *all* sessions and
 * the u/r keys are per-(session, turn). Because each reply segment
 * carries the spec's outputKey, a finished turn's generated blocks
 * are cacheable and the next turn's prompt — which begins with the
 * identical stream — matches them in the prefix cache.
 *
 * Sessions are closed-loop: turn k+1 is submitted `think_time`
 * after turn k finishes, so the driver plugs into engines and
 * clusters exactly like ClosedLoopClientPool.
 */

#ifndef LIGHTLLM_WORKLOAD_SESSION_GEN_HH
#define LIGHTLLM_WORKLOAD_SESSION_GEN_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/token_stream.hh"
#include "base/types.hh"
#include "workload/client_pool.hh"
#include "workload/request_spec.hh"

namespace lightllm {
namespace workload {

/** Shape of a multi-turn session workload. */
struct SessionWorkloadConfig
{
    /** Concurrent conversations. */
    std::size_t numSessions = 8;

    /** Requests per conversation (>= 1). */
    std::size_t turnsPerSession = 4;

    /** Shared system prompt prepended to every request. */
    TokenCount systemPromptTokens = 512;

    /** Per-turn user message length, uniform in [lo, hi]. */
    TokenCount userTokensLo = 32;
    TokenCount userTokensHi = 256;

    /** Per-turn ground-truth reply length, uniform in [lo, hi]
     *  (capped by maxNewTokens). */
    TokenCount outputTokensLo = 64;
    TokenCount outputTokensHi = 512;

    /** Generation cap shared by every turn. */
    TokenCount maxNewTokens = 1024;

    /** Pause between a turn finishing and the next being sent. */
    Tick thinkTime = 0;

    /** Session start stagger (session i starts at i * ramp). */
    Tick rampInterval = 0;

    std::uint64_t seed = 42;
};

/**
 * Closed-loop driver submitting each session's turns in order.
 *
 * All lengths and content keys are pre-drawn in the constructor, so
 * the workload is a pure function of the config regardless of how
 * the serving side interleaves completions.
 */
class SessionGenerator
{
  public:
    SessionGenerator(const SessionWorkloadConfig &config,
                     RequestSink &sink);

    /** Submit every session's first turn. */
    void start(Tick now = 0);

    /**
     * Notify the generator that a request finished; the owning
     * session submits its next turn after the think time.
     */
    void onRequestFinished(RequestId id, Tick finish_tick);

    /** Requests handed to the sink so far. */
    std::size_t numSubmitted() const { return submitted_; }

    /** Total requests the workload will produce. */
    std::size_t totalRequests() const
    {
        return config_.numSessions * config_.turnsPerSession;
    }

    /** True when every turn has been submitted. */
    bool exhausted() const
    {
        return submitted_ >= totalRequests();
    }

    /** The fully materialised spec of one turn (tests, benches). */
    const RequestSpec &turnSpec(std::size_t session,
                                std::size_t turn) const;

    const SessionWorkloadConfig &config() const { return config_; }

  private:
    struct Session
    {
        /** Pre-built specs, one per turn. */
        std::vector<RequestSpec> turns;
        std::size_t nextTurn = 0;
    };

    /** Submit session `index`'s next turn at `when`. */
    void submitTurn(std::size_t index, Tick when);

    SessionWorkloadConfig config_;
    RequestSink &sink_;
    std::vector<Session> sessions_;
    std::unordered_map<RequestId, std::size_t> owner_;
    std::size_t submitted_ = 0;
};

} // namespace workload
} // namespace lightllm

#endif // LIGHTLLM_WORKLOAD_SESSION_GEN_HH
