#include "workload/trace_io.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "base/logging.hh"
#include "base/str_util.hh"

namespace lightllm {
namespace workload {

void
writeTraceCsv(std::ostream &os, const Trace &trace)
{
    os << "task_type,input_len,output_len\n";
    for (const auto &record : trace.records) {
        os << record.taskType << ',' << record.inputLen << ','
           << record.outputLen << '\n';
    }
}

void
writeTraceCsvFile(const std::string &path, const Trace &trace)
{
    std::ofstream file(path);
    if (!file)
        fatal("cannot open trace file for writing: ", path);
    writeTraceCsv(file, trace);
    if (!file)
        fatal("error while writing trace file: ", path);
}

Trace
readTraceCsv(std::istream &is, const std::string &name)
{
    Trace trace;
    trace.name = name;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(is, line)) {
        ++line_number;
        const std::string_view trimmed = trimString(line);
        if (trimmed.empty())
            continue;
        if (line_number == 1 &&
            trimmed.find("task_type") != std::string_view::npos) {
            continue;  // header
        }
        const auto fields = splitString(trimmed, ',');
        if (fields.size() != 3) {
            fatal("trace ", name, " line ", line_number,
                  ": expected 3 fields, got ", fields.size());
        }
        TraceRecord record;
        try {
            record.taskType = std::stoi(fields[0]);
            record.inputLen = std::stoll(fields[1]);
            record.outputLen = std::stoll(fields[2]);
        } catch (const std::exception &) {
            fatal("trace ", name, " line ", line_number,
                  ": non-integer field");
        }
        if (record.inputLen < 0 || record.outputLen < 0) {
            fatal("trace ", name, " line ", line_number,
                  ": negative length");
        }
        trace.records.push_back(record);
    }
    return trace;
}

Trace
readTraceCsvFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot open trace file: ", path);
    return readTraceCsv(file, path);
}

void
writeDatasetCsv(std::ostream &os, const Dataset &dataset)
{
    // The arrival column appears only when some request carries a
    // measured arrival, so datasets without timestamps round-trip
    // byte-identically through the pre-trace-replay schema.
    const bool arrivals = std::any_of(
        dataset.requests.begin(), dataset.requests.end(),
        [](const RequestSpec &spec) {
            return spec.arrivalTick >= 0;
        });
    os << "id,input_len,output_len,max_new_tokens,priority,"
          "tenant,slo_tier,session_key,output_key,segments";
    if (arrivals)
        os << ",arrival_us";
    os << '\n';
    os << std::hex;
    for (const auto &spec : dataset.requests) {
        os << std::dec << spec.id << ',' << spec.inputLen << ','
           << spec.outputLen << ',' << spec.maxNewTokens << ','
           << spec.cls.priority << ',' << spec.cls.tenant << ','
           << spec.cls.sloTier << ',' << std::hex
           << spec.sessionKey << ',' << spec.outputKey << ',';
        for (std::size_t i = 0; i < spec.segments.size(); ++i) {
            if (i > 0)
                os << '|';
            os << spec.segments[i].key << ':' << std::dec
               << spec.segments[i].len << std::hex;
        }
        if (arrivals)
            os << std::dec << ',' << spec.arrivalTick << std::hex;
        os << '\n';
    }
    os << std::dec;
}

void
writeDatasetCsvFile(const std::string &path, const Dataset &dataset)
{
    std::ofstream file(path);
    if (!file)
        fatal("cannot open dataset file for writing: ", path);
    writeDatasetCsv(file, dataset);
    if (!file)
        fatal("error while writing dataset file: ", path);
}

namespace {

std::uint64_t
parseHexField(const std::string &field, const std::string &name,
              std::size_t line_number)
{
    try {
        std::size_t used = 0;
        const std::uint64_t value = std::stoull(field, &used, 16);
        if (used != field.size())
            fatal("dataset ", name, " line ", line_number,
                  ": trailing junk in hex field '", field, "'");
        return value;
    } catch (const std::exception &) {
        fatal("dataset ", name, " line ", line_number,
              ": bad hex field '", field, "'");
    }
}

std::int64_t
parseIntField(const std::string &field, const std::string &name,
              std::size_t line_number)
{
    try {
        std::size_t used = 0;
        const std::int64_t value = std::stoll(field, &used);
        if (used != field.size())
            fatal("dataset ", name, " line ", line_number,
                  ": trailing junk in field '", field, "'");
        return value;
    } catch (const std::exception &) {
        fatal("dataset ", name, " line ", line_number,
              ": non-integer field '", field, "'");
    }
}

} // namespace

Dataset
readDatasetCsv(std::istream &is, const std::string &name)
{
    Dataset dataset;
    dataset.name = name;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(is, line)) {
        ++line_number;
        const std::string_view trimmed = trimString(line);
        if (trimmed.empty())
            continue;
        if (line_number == 1 &&
            trimmed.find("input_len") != std::string_view::npos) {
            continue;  // header
        }
        const auto fields = splitString(trimmed, ',');
        // 11 fields with the arrival_us trace-replay column, 10
        // since the tenant/slo_tier columns; 8 accepts the
        // pre-tenant schema (both classes default to 0).
        if (fields.size() != 11 && fields.size() != 10 &&
            fields.size() != 8) {
            fatal("dataset ", name, " line ", line_number,
                  ": expected 11, 10, or legacy 8 fields, got ",
                  fields.size());
        }
        const bool legacy = fields.size() == 8;
        const bool arrivals = fields.size() == 11;
        RequestSpec spec;
        spec.id = parseIntField(fields[0], name, line_number);
        spec.inputLen = parseIntField(fields[1], name, line_number);
        spec.outputLen =
            parseIntField(fields[2], name, line_number);
        spec.maxNewTokens =
            parseIntField(fields[3], name, line_number);
        spec.cls.priority = static_cast<int>(
            parseIntField(fields[4], name, line_number));
        std::size_t next = 5;
        if (!legacy) {
            spec.cls.tenant = static_cast<base::TenantId>(
                parseIntField(fields[next++], name, line_number));
            spec.cls.sloTier = static_cast<int>(
                parseIntField(fields[next++], name, line_number));
        }
        spec.sessionKey =
            parseHexField(fields[next++], name, line_number);
        spec.outputKey =
            parseHexField(fields[next++], name, line_number);
        if (spec.inputLen < 0 || spec.outputLen < 0 ||
            spec.maxNewTokens < 0) {
            fatal("dataset ", name, " line ", line_number,
                  ": negative length");
        }
        if (arrivals) {
            spec.arrivalTick = parseIntField(fields[next + 1], name,
                                             line_number);
            if (spec.arrivalTick < -1) {
                fatal("dataset ", name, " line ", line_number,
                      ": bad arrival_us (use -1 for none)");
            }
        }
        if (!fields[next].empty()) {
            for (const std::string &entry :
                 splitString(fields[next], '|')) {
                const auto colon = entry.find(':');
                if (colon == std::string::npos) {
                    fatal("dataset ", name, " line ", line_number,
                          ": segment without ':' separator");
                }
                PromptSegment segment;
                segment.key = parseHexField(entry.substr(0, colon),
                                            name, line_number);
                segment.len = parseIntField(
                    entry.substr(colon + 1), name, line_number);
                if (segment.len <= 0) {
                    fatal("dataset ", name, " line ", line_number,
                          ": non-positive segment length");
                }
                spec.segments.push_back(segment);
            }
        }
        dataset.maxNewTokens =
            std::max(dataset.maxNewTokens, spec.maxNewTokens);
        dataset.requests.push_back(std::move(spec));
    }
    return dataset;
}

Dataset
readDatasetCsvFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot open dataset file: ", path);
    return readDatasetCsv(file, path);
}

Dataset
traceToDataset(const Trace &trace, TokenCount max_new_tokens)
{
    LIGHTLLM_ASSERT(max_new_tokens > 0,
                    "max_new_tokens must be positive");
    Dataset dataset;
    dataset.name = trace.name;
    dataset.maxNewTokens = max_new_tokens;
    dataset.requests.reserve(trace.records.size());
    RequestId next_id = 0;
    for (const auto &record : trace.records) {
        RequestSpec spec;
        spec.id = next_id++;
        spec.inputLen = record.inputLen;
        spec.outputLen = record.outputLen;
        spec.maxNewTokens = max_new_tokens;
        dataset.requests.push_back(spec);
    }
    return dataset;
}

} // namespace workload
} // namespace lightllm
