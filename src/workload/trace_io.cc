#include "workload/trace_io.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "base/logging.hh"
#include "base/str_util.hh"

namespace lightllm {
namespace workload {

void
writeTraceCsv(std::ostream &os, const Trace &trace)
{
    os << "task_type,input_len,output_len\n";
    for (const auto &record : trace.records) {
        os << record.taskType << ',' << record.inputLen << ','
           << record.outputLen << '\n';
    }
}

void
writeTraceCsvFile(const std::string &path, const Trace &trace)
{
    std::ofstream file(path);
    if (!file)
        fatal("cannot open trace file for writing: ", path);
    writeTraceCsv(file, trace);
    if (!file)
        fatal("error while writing trace file: ", path);
}

Trace
readTraceCsv(std::istream &is, const std::string &name)
{
    Trace trace;
    trace.name = name;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(is, line)) {
        ++line_number;
        const std::string_view trimmed = trimString(line);
        if (trimmed.empty())
            continue;
        if (line_number == 1 &&
            trimmed.find("task_type") != std::string_view::npos) {
            continue;  // header
        }
        const auto fields = splitString(trimmed, ',');
        if (fields.size() != 3) {
            fatal("trace ", name, " line ", line_number,
                  ": expected 3 fields, got ", fields.size());
        }
        TraceRecord record;
        try {
            record.taskType = std::stoi(fields[0]);
            record.inputLen = std::stoll(fields[1]);
            record.outputLen = std::stoll(fields[2]);
        } catch (const std::exception &) {
            fatal("trace ", name, " line ", line_number,
                  ": non-integer field");
        }
        if (record.inputLen < 0 || record.outputLen < 0) {
            fatal("trace ", name, " line ", line_number,
                  ": negative length");
        }
        trace.records.push_back(record);
    }
    return trace;
}

Trace
readTraceCsvFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot open trace file: ", path);
    return readTraceCsv(file, path);
}

Dataset
traceToDataset(const Trace &trace, TokenCount max_new_tokens)
{
    LIGHTLLM_ASSERT(max_new_tokens > 0,
                    "max_new_tokens must be positive");
    Dataset dataset;
    dataset.name = trace.name;
    dataset.maxNewTokens = max_new_tokens;
    dataset.requests.reserve(trace.records.size());
    RequestId next_id = 0;
    for (const auto &record : trace.records) {
        RequestSpec spec;
        spec.id = next_id++;
        spec.inputLen = record.inputLen;
        spec.outputLen = record.outputLen;
        spec.maxNewTokens = max_new_tokens;
        dataset.requests.push_back(spec);
    }
    return dataset;
}

} // namespace workload
} // namespace lightllm
