/**
 * @file
 * Shared arrival-generation helpers for workload drivers.
 *
 * Every load generator needs the same two pieces of timing logic:
 * the staggered cohort start (closed-loop clients and sessions ramp
 * their members `ramp_interval` apart to avoid a synchronized burst
 * at t = 0) and open-loop Poisson submission. Both live here so
 * ClosedLoopClientPool, SessionGenerator, and the time-varying
 * RateSchedule driver integrate through one helper instead of
 * re-implementing the arithmetic.
 */

#ifndef LIGHTLLM_WORKLOAD_ARRIVALS_HH
#define LIGHTLLM_WORKLOAD_ARRIVALS_HH

#include <cstdint>

#include "base/types.hh"
#include "workload/datasets.hh"
#include "workload/rate_schedule.hh"

namespace lightllm {
namespace workload {

class RequestSink;

/**
 * Start tick of the index-th member of a staggered cohort: `now`
 * plus `index * ramp_interval`. The one place the ramp arithmetic
 * lives (closed-loop clients, sessions).
 */
Tick staggeredStart(Tick now, std::size_t index,
                    Tick ramp_interval);

/**
 * Open-loop Poisson submission: the whole dataset is scheduled up
 * front with exponential inter-arrival gaps at `rate` requests per
 * second, independent of service progress. Equivalent to a
 * constant RateSchedule (and implemented as one).
 */
void submitPoissonArrivals(const Dataset &dataset, RequestSink &sink,
                           double rate_per_second,
                           std::uint64_t seed, Tick start = 0);

/**
 * Open-loop submission under a time-varying RateSchedule: a
 * non-homogeneous Poisson process with piecewise-constant intensity.
 * Within a segment, gaps are exponential at the segment's rate; a
 * gap that crosses the segment boundary is re-drawn from the
 * boundary (exact by memorylessness). Zero-rate segments are skipped
 * to their end. Scheduling is done up front, like
 * submitPoissonArrivals.
 */
void submitScheduledArrivals(const Dataset &dataset,
                             RequestSink &sink,
                             const RateSchedule &schedule,
                             std::uint64_t seed, Tick start = 0);

/**
 * Open-loop trace replay: every request is submitted at exactly
 * `start + spec.arrivalTick` — the measured timestamps a dataset
 * CSV round-trips through its `arrival_us` column
 * (BurstGPT/Mooncake-style traces). Every request must carry an
 * arrival (arrivalTick >= 0); order within a tick follows the
 * dataset.
 */
void submitTraceArrivals(const Dataset &dataset, RequestSink &sink,
                         Tick start = 0);

} // namespace workload
} // namespace lightllm

#endif // LIGHTLLM_WORKLOAD_ARRIVALS_HH
