#include "workload/trace_gen.hh"

#include <algorithm>
#include <cmath>

#include "base/rng.hh"

namespace lightllm {
namespace workload {

std::vector<std::int64_t>
Trace::outputLens() const
{
    std::vector<std::int64_t> lens;
    lens.reserve(records.size());
    for (const auto &record : records)
        lens.push_back(record.outputLen);
    return lens;
}

namespace {

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

TokenCount
clampedLogNormal(Rng &rng, double mu, double sigma, TokenCount lo,
                 TokenCount hi)
{
    const auto value =
        static_cast<TokenCount>(std::llround(rng.logNormal(mu, sigma)));
    return std::clamp(value, lo, hi);
}

} // namespace

Trace
makeConversationTrace(std::size_t n, std::uint64_t seed,
                      double drift_amplitude)
{
    Trace trace;
    trace.name = "conversation";
    trace.records.reserve(n);
    Rng rng(seed);
    const double period = 40000.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double phase =
            kTwoPi * static_cast<double>(i) / period;
        const double mu =
            std::log(300.0) + drift_amplitude * std::sin(phase);
        TraceRecord record;
        record.taskType = 0;
        record.inputLen = clampedLogNormal(rng, std::log(220.0), 0.9,
                                           8, 4096);
        record.outputLen = clampedLogNormal(rng, mu, 0.7, 4, 4096);
        trace.records.push_back(record);
    }
    return trace;
}

Trace
makeApiTrace(std::size_t n, std::uint64_t seed,
             std::size_t regime_len)
{
    Trace trace;
    trace.name = "api";
    trace.records.reserve(n);
    Rng rng(seed);

    // Four task archetypes: extraction (very short), chat-like,
    // summarization (medium, tight), long-form generation.
    struct TaskType
    {
        double mu;
        double sigma;
        TokenCount lo;
        TokenCount hi;
        double inMu;
    };
    const TaskType types[4] = {
        {std::log(24.0), 0.30, 1, 512, std::log(900.0)},
        {std::log(300.0), 0.40, 8, 4096, std::log(250.0)},
        {std::log(110.0), 0.25, 16, 1024, std::log(2200.0)},
        {std::log(1600.0), 0.35, 64, 8192, std::log(350.0)},
    };

    double weights[4] = {0.25, 0.25, 0.25, 0.25};
    auto reroll_weights = [&]() {
        double total = 0.0;
        for (double &w : weights) {
            // Strongly skewed fresh draw (one or two task types
            // dominate a regime), blended with the previous regime
            // so consecutive regimes stay related while distant
            // ones diverge — the paper's API-trace structure.
            const double fresh =
                std::exp(5.0 * rng.uniformDouble());
            w = 0.15 * w + 0.85 * fresh / 148.0;
            total += w;
        }
        for (double &w : weights)
            w /= total;
    };
    reroll_weights();

    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0 && i % regime_len == 0)
            reroll_weights();
        double pick = rng.uniformDouble();
        int type_index = 3;
        for (int t = 0; t < 4; ++t) {
            pick -= weights[t];
            if (pick <= 0.0) {
                type_index = t;
                break;
            }
        }
        const TaskType &type = types[type_index];
        TraceRecord record;
        record.taskType = type_index;
        record.inputLen =
            clampedLogNormal(rng, type.inMu, 0.6, 8, 8192);
        record.outputLen =
            clampedLogNormal(rng, type.mu, type.sigma, type.lo,
                             type.hi);
        trace.records.push_back(record);
    }
    return trace;
}

Trace
makeCodeCompletionTrace(std::size_t n, std::uint64_t seed)
{
    Trace trace;
    trace.name = "code-completion";
    trace.records.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord record;
        record.taskType = 0;
        record.inputLen = clampedLogNormal(rng, std::log(1800.0),
                                           0.8, 64, 8192);
        record.outputLen = clampedLogNormal(rng, std::log(40.0),
                                            0.75, 1, 512);
        trace.records.push_back(record);
    }
    return trace;
}

Trace
makeLongDocTrace(std::size_t n, std::uint64_t seed)
{
    Trace trace;
    trace.name = "long-document";
    trace.records.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord record;
        record.taskType = 0;
        record.inputLen = clampedLogNormal(rng, std::log(8000.0),
                                           0.7, 512, 32768);
        record.outputLen = clampedLogNormal(rng, std::log(420.0),
                                            0.55, 16, 2048);
        trace.records.push_back(record);
    }
    return trace;
}

Trace
makeAssistantTrace(std::size_t n, std::uint64_t seed)
{
    // A second dialog service with longer answers and mild drift.
    Trace trace = makeConversationTrace(n, seed, 0.15);
    trace.name = "assistant";
    Rng rng(seed ^ 0x5eedf00dull);
    for (auto &record : trace.records) {
        record.outputLen = std::clamp<TokenCount>(
            record.outputLen * 2 +
                rng.uniformInt(0, 64), 4, 8192);
    }
    return trace;
}

Trace
makeMultimodalChatTrace(std::size_t n, std::uint64_t seed)
{
    Trace trace;
    trace.name = "multimodal-chat";
    trace.records.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord record;
        record.taskType = 0;
        record.inputLen = 576 +
            clampedLogNormal(rng, std::log(60.0), 0.6, 4, 1024);
        record.outputLen = clampedLogNormal(rng, std::log(90.0),
                                            0.65, 2, 1024);
        trace.records.push_back(record);
    }
    return trace;
}

std::vector<Trace>
makeFigure3Traces(std::size_t n, std::uint64_t seed)
{
    std::vector<Trace> traces;
    traces.push_back(makeConversationTrace(n, seed + 1));
    traces.push_back(makeApiTrace(n, seed + 2));
    traces.push_back(makeAssistantTrace(n, seed + 3));
    traces.push_back(makeMultimodalChatTrace(n, seed + 4));
    traces.push_back(makeCodeCompletionTrace(n, seed + 5));
    traces.push_back(makeLongDocTrace(n, seed + 6));
    // Match the paper's panel labels (a)-(f).
    traces[0].name = "(a) BurstGPT-conv-like";
    traces[1].name = "(b) BurstGPT-API-like";
    traces[2].name = "(c) in-house dialog-like";
    traces[3].name = "(d) in-house mm-chat-like";
    traces[4].name = "(e) code-completion-like";
    traces[5].name = "(f) Mooncake-like";
    return traces;
}

} // namespace workload
} // namespace lightllm
