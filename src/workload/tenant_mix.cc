#include "workload/tenant_mix.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/rng.hh"

namespace lightllm {
namespace workload {

std::vector<double>
TenantMix::shares() const
{
    LIGHTLLM_ASSERT(numTenants >= 1, "tenant mix needs >= 1 tenant");
    if (!weights.empty()) {
        LIGHTLLM_ASSERT(weights.size() == numTenants,
                        "tenant weights must cover every tenant");
        for (double weight : weights) {
            LIGHTLLM_ASSERT(weight > 0.0,
                            "tenant weights must be positive");
        }
        return weights;
    }
    LIGHTLLM_ASSERT(zipfExponent >= 0.0,
                    "zipf exponent must be non-negative");
    std::vector<double> out(numTenants);
    for (std::size_t t = 0; t < numTenants; ++t)
        out[t] = 1.0 / std::pow(static_cast<double>(t + 1),
                                zipfExponent);
    return out;
}

void
assignTenantMix(Dataset &dataset, const TenantMix &mix,
                std::uint64_t seed)
{
    const std::vector<double> shares = mix.shares();
    double total = 0.0;
    for (double share : shares)
        total += share;

    const std::size_t tiers = std::max<std::size_t>(mix.sloTiers, 1);
    Rng rng(seed);
    for (RequestSpec &spec : dataset.requests) {
        const double draw = rng.uniformDouble() * total;
        double cumulative = 0.0;
        std::size_t tenant = shares.size() - 1;
        for (std::size_t t = 0; t < shares.size(); ++t) {
            cumulative += shares[t];
            if (draw < cumulative) {
                tenant = t;
                break;
            }
        }
        spec.cls.tenant = static_cast<base::TenantId>(tenant);
        spec.cls.sloTier = static_cast<int>(tenant % tiers);
    }
}

std::vector<double>
tenantTreeWeights(const TenantMix &mix)
{
    std::vector<double> out = mix.shares();
    const double top = *std::max_element(out.begin(), out.end());
    for (double &weight : out)
        weight /= top;
    return out;
}

} // namespace workload
} // namespace lightllm
