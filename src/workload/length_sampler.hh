/**
 * @file
 * Token-length samplers used to synthesize workloads.
 */

#ifndef LIGHTLLM_WORKLOAD_LENGTH_SAMPLER_HH
#define LIGHTLLM_WORKLOAD_LENGTH_SAMPLER_HH

#include <memory>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"

namespace lightllm {
namespace workload {

/** Source of random token lengths. */
class LengthSampler
{
  public:
    virtual ~LengthSampler() = default;

    /** Draw one length. */
    virtual TokenCount sample(Rng &rng) const = 0;
};

/** Always returns the same length. */
class ConstantLengthSampler : public LengthSampler
{
  public:
    explicit ConstantLengthSampler(TokenCount value);
    TokenCount sample(Rng &rng) const override;

  private:
    TokenCount value_;
};

/** Uniform integer lengths in [lo, hi]. */
class UniformLengthSampler : public LengthSampler
{
  public:
    UniformLengthSampler(TokenCount lo, TokenCount hi);
    TokenCount sample(Rng &rng) const override;

  private:
    TokenCount lo_;
    TokenCount hi_;
};

/** Log-normal lengths, clamped into [lo, hi]. */
class LogNormalLengthSampler : public LengthSampler
{
  public:
    /**
     * @param mu Mean of the underlying normal (log of the median).
     * @param sigma Std dev of the underlying normal.
     * @param lo,hi Clamp bounds.
     */
    LogNormalLengthSampler(double mu, double sigma,
                           TokenCount lo, TokenCount hi);

    TokenCount sample(Rng &rng) const override;

  private:
    double mu_;
    double sigma_;
    TokenCount lo_;
    TokenCount hi_;
};

/** Weighted mixture of component samplers. */
class MixtureLengthSampler : public LengthSampler
{
  public:
    struct Component
    {
        double weight;
        std::shared_ptr<const LengthSampler> sampler;
    };

    explicit MixtureLengthSampler(std::vector<Component> components);

    TokenCount sample(Rng &rng) const override;

  private:
    std::vector<Component> components_;
    double totalWeight_;
};

/** Resamples uniformly from a recorded set of lengths. */
class EmpiricalLengthSampler : public LengthSampler
{
  public:
    explicit EmpiricalLengthSampler(std::vector<TokenCount> values);

    TokenCount sample(Rng &rng) const override;

  private:
    std::vector<TokenCount> values_;
};

} // namespace workload
} // namespace lightllm

#endif // LIGHTLLM_WORKLOAD_LENGTH_SAMPLER_HH
