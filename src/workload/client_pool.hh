/**
 * @file
 * Load generators: closed-loop client pool and open-loop arrivals.
 *
 * The paper's evaluation drives the service with N concurrent
 * clients, each sending its next request only after the previous one
 * completes (a closed loop — the x-axis of Figures 7 and 9). The
 * pool is decoupled from the serving engine through the RequestSink
 * interface so the workload layer has no dependency on the engine.
 */

#ifndef LIGHTLLM_WORKLOAD_CLIENT_POOL_HH
#define LIGHTLLM_WORKLOAD_CLIENT_POOL_HH

#include <cstddef>

#include "base/types.hh"
#include "workload/datasets.hh"

namespace lightllm {
namespace workload {

/** Anything that accepts timed request submissions (the engine). */
class RequestSink
{
  public:
    virtual ~RequestSink() = default;

    /** Enqueue `spec` to arrive at absolute tick `arrival`. */
    virtual void submitAt(const RequestSpec &spec, Tick arrival) = 0;
};

/**
 * N closed-loop clients replaying a dataset in order.
 *
 * Each client submits one request; when the engine reports that
 * request finished, the client waits `think_time` and submits the
 * next unsent dataset request. Start times are staggered by
 * `ramp_interval` to avoid a synchronized burst at t = 0.
 */
class ClosedLoopClientPool
{
  public:
    ClosedLoopClientPool(std::size_t num_clients,
                         const Dataset &dataset, RequestSink &sink,
                         Tick think_time = 0,
                         Tick ramp_interval = 0);

    /** Submit the initial per-client requests. */
    void start(Tick now = 0);

    /**
     * Notify the pool that a request finished; the owning client
     * submits the next dataset request (if any remain).
     */
    void onRequestFinished(RequestId id, Tick finish_tick);

    /** Requests handed to the sink so far. */
    std::size_t numSubmitted() const { return nextIndex_; }

    /** True when every dataset request has been submitted. */
    bool exhausted() const
    {
        return nextIndex_ >= dataset_.requests.size();
    }

  private:
    /** Submit the next dataset request at the given tick. */
    void submitNext(Tick when);

    std::size_t numClients_;
    const Dataset &dataset_;
    RequestSink &sink_;
    Tick thinkTime_;
    Tick rampInterval_;
    std::size_t nextIndex_ = 0;
};

} // namespace workload
} // namespace lightllm

#endif // LIGHTLLM_WORKLOAD_CLIENT_POOL_HH
