/**
 * @file
 * CSV persistence for traces and datasets.
 *
 * Lets users replay their own production traces through the
 * simulator (the paper's workflow with BurstGPT/Mooncake logs) and
 * lets the benchmark harnesses dump the exact workloads they used.
 *
 * Format: a header line `task_type,input_len,output_len` followed by
 * one integer triple per request.
 */

#ifndef LIGHTLLM_WORKLOAD_TRACE_IO_HH
#define LIGHTLLM_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "workload/datasets.hh"
#include "workload/trace_gen.hh"

namespace lightllm {
namespace workload {

/** Write a trace as CSV. */
void writeTraceCsv(std::ostream &os, const Trace &trace);

/** Write a trace to a file; fatal() on I/O failure. */
void writeTraceCsvFile(const std::string &path, const Trace &trace);

/** Parse a CSV trace; fatal() on malformed content. */
Trace readTraceCsv(std::istream &is, const std::string &name);

/** Read a CSV trace from a file; fatal() on I/O failure. */
Trace readTraceCsvFile(const std::string &path);

/**
 * Convert a trace into a runnable dataset: each record becomes a
 * request with the given generation cap.
 */
Dataset traceToDataset(const Trace &trace,
                       TokenCount max_new_tokens);

} // namespace workload
} // namespace lightllm

#endif // LIGHTLLM_WORKLOAD_TRACE_IO_HH
