/**
 * @file
 * CSV persistence for traces and datasets.
 *
 * Lets users replay their own production traces through the
 * simulator (the paper's workflow with BurstGPT/Mooncake logs) and
 * lets the benchmark harnesses dump the exact workloads they used.
 *
 * Format: a header line `task_type,input_len,output_len` followed by
 * one integer triple per request.
 */

#ifndef LIGHTLLM_WORKLOAD_TRACE_IO_HH
#define LIGHTLLM_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "workload/datasets.hh"
#include "workload/trace_gen.hh"

namespace lightllm {
namespace workload {

/** Write a trace as CSV. */
void writeTraceCsv(std::ostream &os, const Trace &trace);

/** Write a trace to a file; fatal() on I/O failure. */
void writeTraceCsvFile(const std::string &path, const Trace &trace);

/** Parse a CSV trace; fatal() on malformed content. */
Trace readTraceCsv(std::istream &is, const std::string &name);

/** Read a CSV trace from a file; fatal() on I/O failure. */
Trace readTraceCsvFile(const std::string &path);

/**
 * Convert a trace into a runnable dataset: each record becomes a
 * request with the given generation cap.
 */
Dataset traceToDataset(const Trace &trace,
                       TokenCount max_new_tokens);

/**
 * Write a dataset as CSV with the full RequestSpec: header
 * `id,input_len,output_len,max_new_tokens,priority,session_key,
 * output_key,segments`, one row per request. The content-identity
 * fields added with the shared-prefix subsystem round-trip exactly:
 * keys are hexadecimal, and `segments` is a `key:len` list joined
 * by '|' (empty for content-less requests).
 */
void writeDatasetCsv(std::ostream &os, const Dataset &dataset);

/** writeDatasetCsv to a file; fatal() on I/O failure. */
void writeDatasetCsvFile(const std::string &path,
                         const Dataset &dataset);

/**
 * Parse a dataset CSV; fatal() on malformed content. The dataset's
 * name is `name`; its generation cap is the maximum per-request
 * max_new_tokens (0 for an empty dataset).
 */
Dataset readDatasetCsv(std::istream &is, const std::string &name);

/** Read a dataset CSV from a file; fatal() on I/O failure. */
Dataset readDatasetCsvFile(const std::string &path);

} // namespace workload
} // namespace lightllm

#endif // LIGHTLLM_WORKLOAD_TRACE_IO_HH
