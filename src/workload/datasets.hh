/**
 * @file
 * Builders for the request datasets used in the paper's evaluation.
 *
 * Distribution-1/2/3 follow §5.1 exactly (uniform input/output
 * ranges). ShareGPT and ShareGPT-o1 are synthetic stand-ins for the
 * paper's datasets: the real ones are derived from user logs and the
 * OpenAI o1-preview API, which are not available offline, so we use
 * log-normal fits matched to the summary statistics the paper
 * reports (ShareGPT-o1: average input 381, average output 2160
 * tokens — Figure 7's caption). TextVQA-like requests model the
 * multimodal workload: a fixed image-token prefix plus a short
 * question, with short answers.
 */

#ifndef LIGHTLLM_WORKLOAD_DATASETS_HH
#define LIGHTLLM_WORKLOAD_DATASETS_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/types.hh"
#include "workload/request_spec.hh"

namespace lightllm {
namespace workload {

/** A named list of requests plus the generation cap they share. */
struct Dataset
{
    std::string name;
    std::vector<RequestSpec> requests;
    TokenCount maxNewTokens = 0;

    /** Mean input length over all requests. */
    double meanInputLen() const;

    /** Mean effective output length over all requests. */
    double meanOutputLen() const;

    /** Sum of effective output tokens. */
    TokenCount totalOutputTokens() const;
};

/** Uniform input/output dataset with explicit ranges. */
Dataset makeUniformDataset(const std::string &name, std::size_t n,
                           TokenCount in_lo, TokenCount in_hi,
                           TokenCount out_lo, TokenCount out_hi,
                           TokenCount max_new_tokens,
                           std::uint64_t seed);

/** Distribution-1 (decode-heavy): input 32-4k, output 2k-4k. */
Dataset makeDistribution1(std::size_t n, std::uint64_t seed);

/** Distribution-2 (balanced): input 3k-5k, output 3k-5k. */
Dataset makeDistribution2(std::size_t n, std::uint64_t seed);

/** Distribution-3 (prefill-heavy): input 2k-4k, output 32-4k. */
Dataset makeDistribution3(std::size_t n, std::uint64_t seed);

/**
 * ShareGPT-like chat requests with max_new_tokens = 2048
 * (the Fig 9 end-to-end setup).
 */
Dataset makeShareGpt(std::size_t n, std::uint64_t seed);

/**
 * ShareGPT-o1-like chain-of-thought requests: short prompts,
 * heavy-tailed long outputs (avg input ~381, avg output ~2160).
 */
Dataset makeShareGptO1(std::size_t n, std::uint64_t seed);

/**
 * TextVQA-like multimodal requests: `image_tokens` vision prefix +
 * short question prompt, short answers.
 */
Dataset makeTextVqaLike(std::size_t n, TokenCount image_tokens,
                        std::uint64_t seed);

/** Concatenate datasets back to back (Fig 8's varying load). */
Dataset concatDatasets(const std::string &name,
                       const std::vector<Dataset> &parts);

/**
 * Assign priority classes to a dataset's requests: `shares[p]` is
 * the fraction of requests in class p (higher p = more urgent);
 * shares are normalised over their sum. Assignment is an i.i.d.
 * draw per request, deterministic in `seed` — the workload knob
 * behind the priority/EDF queue policies' `--priority-mix`.
 */
void assignPriorityMix(Dataset &dataset,
                       std::span<const double> shares,
                       std::uint64_t seed);

} // namespace workload
} // namespace lightllm

#endif // LIGHTLLM_WORKLOAD_DATASETS_HH
