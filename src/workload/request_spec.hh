/**
 * @file
 * Immutable description of a single serving request.
 */

#ifndef LIGHTLLM_WORKLOAD_REQUEST_SPEC_HH
#define LIGHTLLM_WORKLOAD_REQUEST_SPEC_HH

#include <cstdint>
#include <vector>

#include "base/request_class.hh"
#include "base/token_stream.hh"
#include "base/types.hh"

namespace lightllm {
namespace workload {

/**
 * One request as produced by a workload generator.
 *
 * `outputLen` is the ground-truth number of tokens the model will
 * generate before emitting EOS — the serving system does not know it
 * (only the oracle scheduler may read it); generation also stops at
 * `maxNewTokens`.
 */
struct RequestSpec
{
    RequestId id = kInvalidRequestId;

    /** Prompt length in tokens (image tokens included if any). */
    TokenCount inputLen = 0;

    /** Ground-truth output length (EOS position). */
    TokenCount outputLen = 0;

    /** User-configured generation cap (max_new_tokens). */
    TokenCount maxNewTokens = 0;

    /**
     * Scheduling class: tenant identity, in-tenant priority
     * (consumed by the priority queue policy and EDF's per-class
     * deadline budgets), and SLO tier for per-tenant reporting.
     */
    base::RequestClass cls;

    /**
     * Content identity of the prompt as a concatenation of
     * segments whose lengths sum to `inputLen` (see
     * base/token_stream.hh). Empty means "unique content": the
     * request neither matches nor feeds the prefix cache. Session
     * workloads populate this with the shared system prompt and the
     * conversation history so multi-turn prefixes are recognised.
     */
    std::vector<PromptSegment> segments;

    /**
     * Content identity of the tokens this request *generates*
     * (0 = unidentified). Session workloads set it so a finished
     * turn's output blocks are cacheable and the next turn — whose
     * prompt textually contains this output — can match them.
     */
    std::uint64_t outputKey = 0;

    /**
     * Conversation/session identity (0 = none). The cluster's
     * prefix-affinity router keeps a session's turns on the
     * instance that holds its cached prefix.
     */
    std::uint64_t sessionKey = 0;

    /**
     * Tokens of KV cache migrated with this request from a prefill
     * pool (0 = not migrated). Covers the first `migratedPrefix`
     * prompt tokens: admission allocates them without prefill
     * compute and the schedulers discount them like a cached
     * prefix. Set only on decode-side sub-requests built by
     * `disagg::DisaggCluster`.
     */
    TokenCount migratedPrefix = 0;

    /**
     * Measured arrival tick for trace replay (-1 = none). Round-
     * trips through the dataset CSV as `arrival_us`;
     * `submitTraceArrivals` submits the request at exactly this
     * offset from the replay start.
     */
    Tick arrivalTick = -1;

    /** Number of output tokens generation will actually produce. */
    TokenCount
    effectiveOutputLen() const
    {
        return outputLen < maxNewTokens ? outputLen : maxNewTokens;
    }
};

} // namespace workload
} // namespace lightllm

#endif // LIGHTLLM_WORKLOAD_REQUEST_SPEC_HH
