/**
 * @file
 * Synthetic request-trace generators for the Figure 3/4 analysis.
 *
 * The paper analyses six production trace datasets (BurstGPT
 * conversation and API, three in-house services, Mooncake). Those
 * logs are not redistributable, so each generator below synthesizes
 * a trace with the *structural* property the paper reports for its
 * counterpart:
 *
 *  - single-service traces (conversation, code completion, long
 *    document): output-length distribution stable over time, with at
 *    most slow drift — similar globally and on the diagonal;
 *  - API / hybrid traces: a mixture of task types whose weights
 *    shift in regimes over long horizons — adjacent windows stay
 *    similar while distant windows diverge.
 */

#ifndef LIGHTLLM_WORKLOAD_TRACE_GEN_HH
#define LIGHTLLM_WORKLOAD_TRACE_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace lightllm {
namespace workload {

/** One request observation in a service trace. */
struct TraceRecord
{
    /** Task-type label (which mixture component produced it). */
    int taskType = 0;

    TokenCount inputLen = 0;
    TokenCount outputLen = 0;
};

/** A named synthetic trace. */
struct Trace
{
    std::string name;
    std::vector<TraceRecord> records;

    /** Output lengths only, for distribution analysis. */
    std::vector<std::int64_t> outputLens() const;
};

/**
 * Conversation service (BurstGPT-conv / in-house dialog analogue):
 * log-normal outputs whose location parameter drifts slowly and
 * sinusoidally.
 */
Trace makeConversationTrace(std::size_t n, std::uint64_t seed,
                            double drift_amplitude = 0.25);

/**
 * API service (BurstGPT-API analogue): a 4-component mixture of task
 * types whose weights are re-rolled every `regime_len` requests, so
 * the global distribution varies over long horizons while adjacent
 * windows remain similar.
 */
Trace makeApiTrace(std::size_t n, std::uint64_t seed,
                   std::size_t regime_len = 4000);

/** Code-completion service: short, stable outputs, longer prompts. */
Trace makeCodeCompletionTrace(std::size_t n, std::uint64_t seed);

/** Long-document analysis (Mooncake analogue): very long prompts,
 *  medium outputs, stable distribution. */
Trace makeLongDocTrace(std::size_t n, std::uint64_t seed);

/** Second in-house dialog service with a different length profile. */
Trace makeAssistantTrace(std::size_t n, std::uint64_t seed);

/** Multimodal conversation service (image prefix + dialog). */
Trace makeMultimodalChatTrace(std::size_t n, std::uint64_t seed);

/** The full set of six traces analysed in Figure 3. */
std::vector<Trace> makeFigure3Traces(std::size_t n,
                                     std::uint64_t seed);

} // namespace workload
} // namespace lightllm

#endif // LIGHTLLM_WORKLOAD_TRACE_GEN_HH
