#include "workload/rate_schedule.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "base/str_util.hh"

namespace lightllm {
namespace workload {

RateSchedule::RateSchedule(std::vector<RateSegment> segments)
    : segments_(std::move(segments))
{
    LIGHTLLM_ASSERT(!segments_.empty(),
                    "rate schedule needs at least one segment");
    double peak = 0.0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const RateSegment &segment = segments_[i];
        LIGHTLLM_ASSERT(segment.ratePerSecond >= 0.0,
                        "negative arrival rate in segment ", i);
        LIGHTLLM_ASSERT(segment.durationSeconds > 0.0 ||
                            i + 1 == segments_.size(),
                        "only the last segment may be open-ended");
        peak = std::max(peak, segment.ratePerSecond);
    }
    LIGHTLLM_ASSERT(peak > 0.0,
                    "rate schedule never has a positive rate");
    // The schedule must be able to place every arrival of a finite
    // dataset: an open-ended zero-rate tail would stall forever.
    LIGHTLLM_ASSERT(segments_.back().durationSeconds > 0.0
                        ? true
                        : segments_.back().ratePerSecond > 0.0,
                    "open-ended tail segment needs a positive rate");
}

RateSchedule
RateSchedule::constant(double rate)
{
    return RateSchedule({RateSegment{rate, 0.0}});
}

RateSchedule
RateSchedule::steps(std::vector<RateSegment> segments)
{
    LIGHTLLM_ASSERT(segments.empty() ||
                        segments.back().ratePerSecond > 0.0,
                    "the final steps rate must be positive (it "
                    "becomes the open-ended tail)");
    if (!segments.empty() &&
        segments.back().durationSeconds > 0.0) {
        // Implicit open-ended tail at the final rate so a finite
        // dataset always drains.
        segments.push_back(
            RateSegment{segments.back().ratePerSecond, 0.0});
    }
    return RateSchedule(std::move(segments));
}

RateSchedule
RateSchedule::spike(double base, double peak, double at,
                    double duration)
{
    LIGHTLLM_ASSERT(at >= 0.0, "spike start must be non-negative");
    LIGHTLLM_ASSERT(duration > 0.0, "spike needs a duration");
    std::vector<RateSegment> segments;
    if (at > 0.0)
        segments.push_back(RateSegment{base, at});
    segments.push_back(RateSegment{peak, duration});
    segments.push_back(RateSegment{base, 0.0});
    return RateSchedule(std::move(segments));
}

RateSchedule
RateSchedule::diurnal(double base, double amplitude,
                      double period_seconds,
                      std::size_t steps_per_period,
                      std::size_t cycles)
{
    LIGHTLLM_ASSERT(period_seconds > 0.0, "period must be positive");
    LIGHTLLM_ASSERT(steps_per_period >= 2,
                    "need at least two steps per period");
    LIGHTLLM_ASSERT(cycles >= 1, "need at least one cycle");
    const double step = period_seconds /
        static_cast<double>(steps_per_period);
    std::vector<RateSegment> segments;
    segments.reserve(steps_per_period * cycles + 1);
    for (std::size_t c = 0; c < cycles; ++c) {
        for (std::size_t s = 0; s < steps_per_period; ++s) {
            // Sample at the step midpoint.
            const double t = (static_cast<double>(s) + 0.5) * step;
            const double rate = base +
                amplitude * std::sin(2.0 * M_PI * t /
                                     period_seconds);
            segments.push_back(
                RateSegment{std::max(rate, 0.0), step});
        }
    }
    segments.push_back(RateSegment{base, 0.0});
    return RateSchedule(std::move(segments));
}

double
RateSchedule::rateAt(double t_seconds) const
{
    double start = 0.0;
    for (const RateSegment &segment : segments_) {
        if (segment.durationSeconds <= 0.0)
            return segment.ratePerSecond;  // open-ended tail
        if (t_seconds < start + segment.durationSeconds)
            return segment.ratePerSecond;
        start += segment.durationSeconds;
    }
    return segments_.back().ratePerSecond;
}

double
RateSchedule::maxRate() const
{
    double peak = 0.0;
    for (const RateSegment &segment : segments_)
        peak = std::max(peak, segment.ratePerSecond);
    return peak;
}

double
RateSchedule::meanRate() const
{
    double weighted = 0.0;
    double total = 0.0;
    for (const RateSegment &segment : segments_) {
        if (segment.durationSeconds <= 0.0)
            continue;
        weighted += segment.ratePerSecond * segment.durationSeconds;
        total += segment.durationSeconds;
    }
    if (total <= 0.0)
        return segments_.back().ratePerSecond;
    return weighted / total;
}

std::string
RateSchedule::describe() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        if (i > 0)
            oss << ",";
        oss << formatDouble(segments_[i].ratePerSecond, 2) << "/s";
        if (segments_[i].durationSeconds > 0.0) {
            oss << "x"
                << formatDouble(segments_[i].durationSeconds, 0)
                << "s";
        }
    }
    return oss.str();
}

namespace {

bool
parseNonNegative(const std::string &text, double &out)
{
    try {
        std::size_t used = 0;
        out = std::stod(text, &used);
        return used == text.size() && out >= 0.0;
    } catch (const std::exception &) {
        return false;
    }
}

std::vector<std::string>
splitFields(const std::string &body)
{
    std::vector<std::string> fields;
    for (const std::string &field : splitString(body, ','))
        fields.push_back(std::string(trimString(field)));
    return fields;
}

} // namespace

bool
parseRateSchedule(const std::string &spec, RateSchedule &out,
                  std::string &error)
{
    const auto colon = spec.find(':');
    if (colon == std::string::npos) {
        error = "rate schedule needs a kind prefix "
                "(const: | steps: | spike: | diurnal:)";
        return false;
    }
    const std::string kind = spec.substr(0, colon);
    const std::string body = spec.substr(colon + 1);

    if (kind == "const") {
        double rate = 0.0;
        if (!parseNonNegative(body, rate) || rate <= 0.0) {
            error = "const schedule needs a positive rate, got '" +
                    body + "'";
            return false;
        }
        out = RateSchedule::constant(rate);
        return true;
    }

    if (kind == "steps") {
        std::vector<RateSegment> segments;
        const std::vector<std::string> fields = splitFields(body);
        for (std::size_t i = 0; i < fields.size(); ++i) {
            const std::string &field = fields[i];
            const auto x = field.find('x');
            RateSegment segment;
            if (x == std::string::npos) {
                // Bare rate: the open-ended tail (last field only).
                if (i + 1 != fields.size()) {
                    error = "only the last steps segment may omit "
                            "its duration: '" + field + "'";
                    return false;
                }
                if (!parseNonNegative(field,
                                      segment.ratePerSecond)) {
                    error = "bad steps rate: '" + field + "'";
                    return false;
                }
                segment.durationSeconds = 0.0;
            } else {
                if (!parseNonNegative(field.substr(0, x),
                                      segment.ratePerSecond) ||
                    !parseNonNegative(field.substr(x + 1),
                                      segment.durationSeconds) ||
                    segment.durationSeconds <= 0.0) {
                    error = "bad steps segment (want RATExSECONDS): "
                            "'" + field + "'";
                    return false;
                }
            }
            segments.push_back(segment);
        }
        if (segments.empty()) {
            error = "steps schedule needs at least one segment";
            return false;
        }
        // The final rate holds forever (explicitly open-ended, or
        // as the implicit tail a closed last segment gets): it must
        // be positive, or a finite dataset could never drain.
        if (segments.back().ratePerSecond <= 0.0) {
            error = "the final steps rate must be positive (it "
                    "holds forever so the dataset can drain)";
            return false;
        }
        out = RateSchedule::steps(std::move(segments));
        return true;
    }

    if (kind == "spike") {
        const std::vector<std::string> fields = splitFields(body);
        double base = 0.0, peak = 0.0, at = 0.0, duration = 0.0;
        if (fields.size() != 4 ||
            !parseNonNegative(fields[0], base) ||
            !parseNonNegative(fields[1], peak) ||
            !parseNonNegative(fields[2], at) ||
            !parseNonNegative(fields[3], duration) ||
            duration <= 0.0 || (base <= 0.0 && peak <= 0.0)) {
            error = "spike schedule wants BASE,PEAK,AT,DURATION "
                    "with a positive duration";
            return false;
        }
        if (base <= 0.0) {
            error = "spike base rate must be positive (the "
                    "open-ended tail resumes at it)";
            return false;
        }
        out = RateSchedule::spike(base, peak, at, duration);
        return true;
    }

    if (kind == "diurnal") {
        const std::vector<std::string> fields = splitFields(body);
        double base = 0.0, amplitude = 0.0, period = 0.0;
        double steps = 24.0, cycles = 1.0;
        if (fields.size() < 3 || fields.size() > 5 ||
            !parseNonNegative(fields[0], base) ||
            !parseNonNegative(fields[1], amplitude) ||
            !parseNonNegative(fields[2], period) || period <= 0.0 ||
            (fields.size() >= 4 &&
             (!parseNonNegative(fields[3], steps) || steps < 2.0)) ||
            (fields.size() == 5 &&
             (!parseNonNegative(fields[4], cycles) ||
              cycles < 1.0))) {
            error = "diurnal schedule wants "
                    "BASE,AMPLITUDE,PERIOD[,STEPS[,CYCLES]]";
            return false;
        }
        if (base <= 0.0) {
            error = "diurnal base rate must be positive";
            return false;
        }
        out = RateSchedule::diurnal(
            base, amplitude, period,
            static_cast<std::size_t>(steps),
            static_cast<std::size_t>(cycles));
        return true;
    }

    error = "unknown rate schedule kind: " + kind;
    return false;
}

} // namespace workload
} // namespace lightllm
