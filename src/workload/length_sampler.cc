#include "workload/length_sampler.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace lightllm {
namespace workload {

ConstantLengthSampler::ConstantLengthSampler(TokenCount value)
    : value_(value)
{
    LIGHTLLM_ASSERT(value >= 0, "negative constant length");
}

TokenCount
ConstantLengthSampler::sample(Rng &) const
{
    return value_;
}

UniformLengthSampler::UniformLengthSampler(TokenCount lo, TokenCount hi)
    : lo_(lo), hi_(hi)
{
    LIGHTLLM_ASSERT(0 <= lo && lo <= hi,
                    "bad uniform range [", lo, ", ", hi, "]");
}

TokenCount
UniformLengthSampler::sample(Rng &rng) const
{
    return rng.uniformInt(lo_, hi_);
}

LogNormalLengthSampler::LogNormalLengthSampler(double mu, double sigma,
                                               TokenCount lo,
                                               TokenCount hi)
    : mu_(mu), sigma_(sigma), lo_(lo), hi_(hi)
{
    LIGHTLLM_ASSERT(0 <= lo && lo <= hi,
                    "bad clamp range [", lo, ", ", hi, "]");
    LIGHTLLM_ASSERT(sigma >= 0.0, "negative sigma");
}

TokenCount
LogNormalLengthSampler::sample(Rng &rng) const
{
    const double value = rng.logNormal(mu_, sigma_);
    const auto rounded =
        static_cast<TokenCount>(std::llround(value));
    return std::clamp(rounded, lo_, hi_);
}

MixtureLengthSampler::MixtureLengthSampler(
    std::vector<Component> components)
    : components_(std::move(components)), totalWeight_(0.0)
{
    LIGHTLLM_ASSERT(!components_.empty(), "empty mixture");
    for (const auto &component : components_) {
        LIGHTLLM_ASSERT(component.weight >= 0.0, "negative weight");
        LIGHTLLM_ASSERT(component.sampler != nullptr, "null sampler");
        totalWeight_ += component.weight;
    }
    LIGHTLLM_ASSERT(totalWeight_ > 0.0, "zero total mixture weight");
}

TokenCount
MixtureLengthSampler::sample(Rng &rng) const
{
    double pick = rng.uniformDouble() * totalWeight_;
    for (const auto &component : components_) {
        pick -= component.weight;
        if (pick <= 0.0)
            return component.sampler->sample(rng);
    }
    return components_.back().sampler->sample(rng);
}

EmpiricalLengthSampler::EmpiricalLengthSampler(
    std::vector<TokenCount> values)
    : values_(std::move(values))
{
    LIGHTLLM_ASSERT(!values_.empty(), "empty empirical sample set");
}

TokenCount
EmpiricalLengthSampler::sample(Rng &rng) const
{
    const auto index = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(values_.size()) - 1));
    return values_[index];
}

} // namespace workload
} // namespace lightllm
