#include "workload/arrivals.hh"

#include "base/logging.hh"
#include "base/rng.hh"
#include "workload/client_pool.hh"

namespace lightllm {
namespace workload {

Tick
staggeredStart(Tick now, std::size_t index, Tick ramp_interval)
{
    LIGHTLLM_ASSERT(ramp_interval >= 0, "negative ramp interval");
    return now + static_cast<Tick>(index) * ramp_interval;
}

void
submitPoissonArrivals(const Dataset &dataset, RequestSink &sink,
                      double rate_per_second, std::uint64_t seed,
                      Tick start)
{
    LIGHTLLM_ASSERT(rate_per_second > 0.0,
                    "arrival rate must be positive");
    submitScheduledArrivals(dataset, sink,
                            RateSchedule::constant(rate_per_second),
                            seed, start);
}

void
submitScheduledArrivals(const Dataset &dataset, RequestSink &sink,
                        const RateSchedule &schedule,
                        std::uint64_t seed, Tick start)
{
    Rng rng(seed);
    const auto &segments = schedule.segments();

    // Schedule-relative clock (t = 0 at `start`) plus a cursor over
    // the piecewise-constant segments.
    double t = 0.0;
    std::size_t seg = 0;
    double seg_start = 0.0;

    const auto seg_end = [&]() {
        return segments[seg].durationSeconds > 0.0
            ? seg_start + segments[seg].durationSeconds
            : -1.0;  // open-ended
    };

    for (const auto &spec : dataset.requests) {
        for (;;) {
            // Advance the cursor to the segment containing t.
            while (seg + 1 < segments.size() && seg_end() >= 0.0 &&
                   t >= seg_end()) {
                seg_start = seg_end();
                ++seg;
            }
            const double rate = segments[seg].ratePerSecond;
            const double end = seg_end();
            if (rate <= 0.0) {
                // Dead segment: no arrivals until it ends. The
                // factories guarantee the effective tail rate is
                // positive, so a later segment must exist and the
                // clock must be able to reach it — without progress
                // this loop would spin forever.
                LIGHTLLM_ASSERT(end >= 0.0 &&
                                    seg + 1 < segments.size() &&
                                    t < end,
                                "schedule ends at zero rate with "
                                "arrivals left to place");
                t = end;
                continue;
            }
            const double gap = rng.exponential(rate);
            if (end >= 0.0 && t + gap >= end) {
                // The gap crosses into the next segment: restart
                // the draw from the boundary (exact for a
                // piecewise-constant intensity by memorylessness).
                t = end;
                continue;
            }
            t += gap;
            sink.submitAt(spec,
                          start + secondsToTicks(t));
            break;
        }
    }
}

void
submitTraceArrivals(const Dataset &dataset, RequestSink &sink,
                    Tick start)
{
    for (const auto &spec : dataset.requests) {
        LIGHTLLM_ASSERT(spec.arrivalTick >= 0,
                        "trace replay needs an arrival timestamp "
                        "on every request (arrival_us column)");
        sink.submitAt(spec, start + spec.arrivalTick);
    }
}

} // namespace workload
} // namespace lightllm
