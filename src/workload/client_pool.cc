#include "workload/client_pool.hh"

#include "base/logging.hh"
#include "workload/arrivals.hh"

namespace lightllm {
namespace workload {

ClosedLoopClientPool::ClosedLoopClientPool(std::size_t num_clients,
                                           const Dataset &dataset,
                                           RequestSink &sink,
                                           Tick think_time,
                                           Tick ramp_interval)
    : numClients_(num_clients), dataset_(dataset), sink_(sink),
      thinkTime_(think_time), rampInterval_(ramp_interval)
{
    LIGHTLLM_ASSERT(num_clients > 0, "need at least one client");
    LIGHTLLM_ASSERT(think_time >= 0, "negative think time");
    LIGHTLLM_ASSERT(ramp_interval >= 0, "negative ramp interval");
}

void
ClosedLoopClientPool::start(Tick now)
{
    const std::size_t initial =
        std::min(numClients_, dataset_.requests.size());
    for (std::size_t c = 0; c < initial; ++c)
        submitNext(staggeredStart(now, c, rampInterval_));
}

void
ClosedLoopClientPool::onRequestFinished(RequestId, Tick finish_tick)
{
    // Closed loop: a completion frees exactly one client slot.
    if (!exhausted())
        submitNext(finish_tick + thinkTime_);
}

void
ClosedLoopClientPool::submitNext(Tick when)
{
    LIGHTLLM_ASSERT(!exhausted(), "no dataset requests left");
    sink_.submitAt(dataset_.requests[nextIndex_], when);
    ++nextIndex_;
}

} // namespace workload
} // namespace lightllm
