#include "workload/datasets.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/rng.hh"
#include "workload/length_sampler.hh"

namespace lightllm {
namespace workload {

double
Dataset::meanInputLen() const
{
    if (requests.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &request : requests)
        sum += static_cast<double>(request.inputLen);
    return sum / static_cast<double>(requests.size());
}

double
Dataset::meanOutputLen() const
{
    if (requests.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &request : requests)
        sum += static_cast<double>(request.effectiveOutputLen());
    return sum / static_cast<double>(requests.size());
}

TokenCount
Dataset::totalOutputTokens() const
{
    TokenCount sum = 0;
    for (const auto &request : requests)
        sum += request.effectiveOutputLen();
    return sum;
}

namespace {

/** Draw n requests from input/output samplers. */
Dataset
sampleDataset(const std::string &name, std::size_t n,
              const LengthSampler &input_sampler,
              const LengthSampler &output_sampler,
              TokenCount max_new_tokens, std::uint64_t seed)
{
    Dataset dataset;
    dataset.name = name;
    dataset.maxNewTokens = max_new_tokens;
    dataset.requests.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        RequestSpec spec;
        spec.id = static_cast<RequestId>(i);
        spec.inputLen = input_sampler.sample(rng);
        spec.outputLen = output_sampler.sample(rng);
        spec.maxNewTokens = max_new_tokens;
        dataset.requests.push_back(spec);
    }
    return dataset;
}

} // namespace

Dataset
makeUniformDataset(const std::string &name, std::size_t n,
                   TokenCount in_lo, TokenCount in_hi,
                   TokenCount out_lo, TokenCount out_hi,
                   TokenCount max_new_tokens, std::uint64_t seed)
{
    const UniformLengthSampler input(in_lo, in_hi);
    const UniformLengthSampler output(out_lo, out_hi);
    return sampleDataset(name, n, input, output, max_new_tokens,
                         seed);
}

Dataset
makeDistribution1(std::size_t n, std::uint64_t seed)
{
    return makeUniformDataset("Distribution-1", n, 32, 4096, 2048,
                              4096, 4096, seed);
}

Dataset
makeDistribution2(std::size_t n, std::uint64_t seed)
{
    return makeUniformDataset("Distribution-2", n, 3072, 5120, 3072,
                              5120, 5120, seed);
}

Dataset
makeDistribution3(std::size_t n, std::uint64_t seed)
{
    return makeUniformDataset("Distribution-3", n, 2048, 4096, 32,
                              4096, 4096, seed);
}

Dataset
makeShareGpt(std::size_t n, std::uint64_t seed)
{
    // Chat prompts: median ~250 input tokens, outputs median ~280
    // with a wide spread, capped by max_new_tokens = 2048 (§5.4).
    const LogNormalLengthSampler input(std::log(250.0), 1.0, 16,
                                       4096);
    const LogNormalLengthSampler output(std::log(280.0), 0.9, 8,
                                        8192);
    return sampleDataset("ShareGPT", n, input, output, 2048, seed);
}

Dataset
makeShareGptO1(std::size_t n, std::uint64_t seed)
{
    // Chain-of-thought serving: the o1-preview responses are long
    // and heavy-tailed. Parameters chosen so the sampled averages
    // match the paper's caption (input ~381, output ~2160).
    const LogNormalLengthSampler input(std::log(270.0), 0.85, 16,
                                       4096);
    const LogNormalLengthSampler output(std::log(1750.0), 0.62, 128,
                                        8192);
    return sampleDataset("ShareGPT-o1", n, input, output, 8192,
                         seed);
}

Dataset
makeTextVqaLike(std::size_t n, TokenCount image_tokens,
                std::uint64_t seed)
{
    LIGHTLLM_ASSERT(image_tokens >= 0, "negative image tokens");
    Dataset dataset;
    dataset.name = "TextVQA-like";
    dataset.maxNewTokens = 256;
    dataset.requests.reserve(n);
    Rng rng(seed);
    const UniformLengthSampler question(16, 96);
    const LogNormalLengthSampler answer(std::log(24.0), 0.8, 2, 256);
    for (std::size_t i = 0; i < n; ++i) {
        RequestSpec spec;
        spec.id = static_cast<RequestId>(i);
        spec.inputLen = image_tokens + question.sample(rng);
        spec.outputLen = answer.sample(rng);
        spec.maxNewTokens = dataset.maxNewTokens;
        dataset.requests.push_back(spec);
    }
    return dataset;
}

Dataset
concatDatasets(const std::string &name,
               const std::vector<Dataset> &parts)
{
    Dataset dataset;
    dataset.name = name;
    RequestId next_id = 0;
    for (const auto &part : parts) {
        dataset.maxNewTokens =
            std::max(dataset.maxNewTokens, part.maxNewTokens);
        for (RequestSpec spec : part.requests) {
            spec.id = next_id++;
            dataset.requests.push_back(spec);
        }
    }
    return dataset;
}

void
assignPriorityMix(Dataset &dataset, std::span<const double> shares,
                  std::uint64_t seed)
{
    LIGHTLLM_ASSERT(!shares.empty(), "priority mix needs >= 1 share");
    double total = 0.0;
    for (double share : shares) {
        LIGHTLLM_ASSERT(share >= 0.0,
                        "priority shares must be non-negative");
        total += share;
    }
    LIGHTLLM_ASSERT(total > 0.0, "priority shares must not all be 0");

    Rng rng(seed);
    for (RequestSpec &spec : dataset.requests) {
        const double draw = rng.uniformDouble() * total;
        double cumulative = 0.0;
        int priority = static_cast<int>(shares.size()) - 1;
        for (std::size_t p = 0; p < shares.size(); ++p) {
            cumulative += shares[p];
            if (draw < cumulative) {
                priority = static_cast<int>(p);
                break;
            }
        }
        spec.cls.priority = priority;
    }
}

} // namespace workload
} // namespace lightllm
