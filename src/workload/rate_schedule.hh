/**
 * @file
 * Time-varying arrival-rate schedules.
 *
 * The paper's six production traces are diurnal and bursty, but a
 * single Poisson rate can only model a stationary service. A
 * RateSchedule is a piecewise-constant intensity function lambda(t)
 * modulating the Poisson arrival process: the open-loop driver draws
 * exponential gaps at the rate of the current segment and re-draws at
 * segment boundaries (exact for piecewise-constant intensities by
 * memorylessness). Builders cover the three shapes the autoscaling
 * scenarios need:
 *
 *  - constant: the legacy single-rate process (bit-identical to
 *    submitPoissonArrivals for the same seed);
 *  - spike: a base rate with a burst window at `peak` — the flash
 *    crowd a reactive controller chases and a predictive one should
 *    absorb;
 *  - diurnal: a sinusoidal day/night cycle discretised into
 *    piecewise-constant steps.
 *
 * The final segment is open-ended (its rate holds forever), so a
 * finite dataset always drains.
 */

#ifndef LIGHTLLM_WORKLOAD_RATE_SCHEDULE_HH
#define LIGHTLLM_WORKLOAD_RATE_SCHEDULE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace lightllm {
namespace workload {

/** One piecewise-constant segment of a rate schedule. */
struct RateSegment
{
    /** Arrival intensity in requests per second (>= 0). */
    double ratePerSecond = 0.0;

    /** Segment length in seconds; <= 0 marks the open-ended tail
     *  (only valid for the last segment). */
    double durationSeconds = 0.0;
};

/** Piecewise-constant arrival intensity lambda(t). */
class RateSchedule
{
  public:
    /** Single open-ended segment at `rate` requests/second. */
    static RateSchedule constant(double rate);

    /**
     * Explicit segment list. The last segment may be open-ended
     * (durationSeconds <= 0); earlier segments must have positive
     * durations. A closed final segment gets an implicit open-ended
     * tail at its own rate so arrivals never stall.
     */
    static RateSchedule steps(std::vector<RateSegment> segments);

    /**
     * Burst scenario: `base` requests/second, except `peak`
     * requests/second during [at, at + duration) seconds.
     */
    static RateSchedule spike(double base, double peak, double at,
                              double duration);

    /**
     * One day/night cycle: rate(t) = base + amplitude *
     * sin(2*pi*t/period), discretised into `steps_per_period`
     * piecewise-constant steps over `cycles` periods (then holding
     * at `base`). Negative instantaneous rates clamp to 0.
     */
    static RateSchedule diurnal(double base, double amplitude,
                                double period_seconds,
                                std::size_t steps_per_period = 24,
                                std::size_t cycles = 1);

    /** Intensity at `t_seconds` (>= 0). */
    double rateAt(double t_seconds) const;

    /** Largest segment rate (capacity-planning upper bound). */
    double maxRate() const;

    /** Mean rate over the closed (finitely long) prefix; equals the
     *  constant rate for a single open-ended segment. */
    double meanRate() const;

    const std::vector<RateSegment> &segments() const
    {
        return segments_;
    }

    /** Human-readable one-liner, e.g. "4/s, 20/s@[30,50), 4/s". */
    std::string describe() const;

  private:
    explicit RateSchedule(std::vector<RateSegment> segments);

    std::vector<RateSegment> segments_;
};

/**
 * Parse a CLI schedule spec:
 *
 *   const:R                     constant R req/s
 *   steps:RxS,RxS,...[,R]      rate R for S seconds each; a bare
 *                               trailing R is the open-ended tail
 *   spike:BASE,PEAK,AT,DUR      burst of PEAK during [AT, AT+DUR)
 *   diurnal:BASE,AMP,PERIOD[,STEPS[,CYCLES]]
 *
 * @return false (with `error` set) when the spec is malformed.
 */
bool parseRateSchedule(const std::string &spec, RateSchedule &out,
                       std::string &error);

} // namespace workload
} // namespace lightllm

#endif // LIGHTLLM_WORKLOAD_RATE_SCHEDULE_HH
