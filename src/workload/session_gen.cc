#include "workload/session_gen.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/rng.hh"
#include "workload/arrivals.hh"

namespace lightllm {
namespace workload {

SessionGenerator::SessionGenerator(
    const SessionWorkloadConfig &config, RequestSink &sink)
    : config_(config), sink_(sink)
{
    LIGHTLLM_ASSERT(config_.numSessions >= 1,
                    "need at least one session");
    LIGHTLLM_ASSERT(config_.turnsPerSession >= 1,
                    "need at least one turn per session");
    LIGHTLLM_ASSERT(config_.systemPromptTokens >= 1,
                    "system prompt cannot be empty");
    LIGHTLLM_ASSERT(config_.userTokensLo >= 1 &&
                        config_.userTokensLo <= config_.userTokensHi,
                    "bad user-token range");
    LIGHTLLM_ASSERT(config_.outputTokensLo >= 1 &&
                        config_.outputTokensLo <=
                            config_.outputTokensHi,
                    "bad output-token range");
    LIGHTLLM_ASSERT(config_.maxNewTokens >= 1,
                    "max_new_tokens must be positive");

    // One system-prompt identity shared by the whole service.
    const std::uint64_t system_key =
        deriveContentKey(config_.seed, 0, 0);

    Rng rng(config_.seed);
    sessions_.resize(config_.numSessions);
    for (std::size_t s = 0; s < config_.numSessions; ++s) {
        Session &session = sessions_[s];
        session.turns.reserve(config_.turnsPerSession);

        // The conversation so far, shared-system-prompt first.
        std::vector<PromptSegment> history{
            PromptSegment{system_key, config_.systemPromptTokens}};
        TokenCount history_tokens = config_.systemPromptTokens;

        for (std::size_t t = 0; t < config_.turnsPerSession; ++t) {
            const TokenCount user_len = rng.uniformInt(
                config_.userTokensLo, config_.userTokensHi);
            const TokenCount output_len =
                std::min(rng.uniformInt(config_.outputTokensLo,
                                        config_.outputTokensHi),
                         config_.maxNewTokens);

            RequestSpec spec;
            spec.id = static_cast<RequestId>(
                s * config_.turnsPerSession + t);
            spec.maxNewTokens = config_.maxNewTokens;
            spec.outputLen = output_len;
            spec.cls = base::RequestClass{};
            spec.sessionKey =
                deriveContentKey(config_.seed ^ 0x5e551ull, s, 0);
            spec.outputKey = deriveContentKey(
                config_.seed ^ 0x0417ull, s, 2 * t + 1);

            spec.segments = history;
            spec.segments.push_back(PromptSegment{
                deriveContentKey(config_.seed ^ 0x0415ull, s,
                                 2 * t),
                user_len});
            spec.inputLen = history_tokens + user_len;

            session.turns.push_back(spec);

            // The next turn's prompt contains this user message and
            // the reply the model will actually generate
            // (effectiveOutputLen == outputLen: drawn within cap).
            history = session.turns.back().segments;
            history.push_back(
                PromptSegment{spec.outputKey, output_len});
            history_tokens = spec.inputLen + output_len;
        }
    }
}

void
SessionGenerator::start(Tick now)
{
    for (std::size_t s = 0; s < sessions_.size(); ++s)
        submitTurn(s, staggeredStart(now, s, config_.rampInterval));
}

void
SessionGenerator::submitTurn(std::size_t index, Tick when)
{
    Session &session = sessions_[index];
    if (session.nextTurn >= session.turns.size())
        return;
    const RequestSpec &spec = session.turns[session.nextTurn];
    ++session.nextTurn;
    ++submitted_;
    owner_.emplace(spec.id, index);
    sink_.submitAt(spec, when);
}

void
SessionGenerator::onRequestFinished(RequestId id, Tick finish_tick)
{
    const auto it = owner_.find(id);
    if (it == owner_.end())
        return;  // not ours (mixed workloads)
    const std::size_t index = it->second;
    owner_.erase(it);
    submitTurn(index, finish_tick + config_.thinkTime);
}

const RequestSpec &
SessionGenerator::turnSpec(std::size_t session,
                           std::size_t turn) const
{
    LIGHTLLM_ASSERT(session < sessions_.size(), "bad session index");
    LIGHTLLM_ASSERT(turn < sessions_[session].turns.size(),
                    "bad turn index");
    return sessions_[session].turns[turn];
}

} // namespace workload
} // namespace lightllm
