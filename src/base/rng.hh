/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component of the library draws from an explicitly
 * seeded Rng so that a full simulation is a pure function of its
 * configuration. The generator is xoshiro256** seeded via SplitMix64,
 * which is fast, has a 256-bit state, and passes BigCrush — more than
 * adequate for workload synthesis and scheduler sampling.
 */

#ifndef LIGHTLLM_BASE_RNG_HH
#define LIGHTLLM_BASE_RNG_HH

#include <cstdint>
#include <span>

#include "base/logging.hh"

namespace lightllm {

/** Seeded xoshiro256** pseudo-random number generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Uniform integer in [lo, hi] (inclusive); requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached spare). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Log-normal: exp(N(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Exponential with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Uniformly pick an element index of a non-empty span. */
    template <typename T>
    std::size_t
    pickIndex(std::span<const T> values)
    {
        LIGHTLLM_ASSERT(!values.empty(), "pickIndex on empty span");
        return static_cast<std::size_t>(
            uniformInt(0, static_cast<std::int64_t>(values.size()) - 1));
    }

    /** Derive an independent child generator (for sub-components). */
    Rng split();

  private:
    std::uint64_t s_[4];
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace lightllm

#endif // LIGHTLLM_BASE_RNG_HH
