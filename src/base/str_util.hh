/**
 * @file
 * Small string helpers used by trace I/O and report printing.
 */

#ifndef LIGHTLLM_BASE_STR_UTIL_HH
#define LIGHTLLM_BASE_STR_UTIL_HH

#include <string>
#include <string_view>
#include <vector>

namespace lightllm {

/** Split a string on a delimiter; keeps empty fields. */
std::vector<std::string> splitString(std::string_view text, char delim);

/** Strip ASCII whitespace from both ends. */
std::string_view trimString(std::string_view text);

/** Format a double with fixed precision, e.g. 3 -> "12.346". */
std::string formatDouble(double value, int precision);

/** Format a ratio as a percentage string, e.g. 0.1234 -> "12.34%". */
std::string formatPercent(double ratio, int precision = 2);

/** Format a count with thousands separators, e.g. 1234567 -> "1,234,567". */
std::string formatCount(std::int64_t value);

} // namespace lightllm

#endif // LIGHTLLM_BASE_STR_UTIL_HH
