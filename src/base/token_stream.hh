/**
 * @file
 * Content identity of simulated token streams.
 *
 * The simulator never materialises token ids, yet prefix caching
 * needs to decide whether two requests' KV prefixes hold the *same*
 * tokens. A request's prompt is therefore described as a
 * concatenation of content-identified segments (system prompt, each
 * user message, each model reply); two streams are token-identical
 * exactly when their segment streams agree position by position.
 *
 * blockHashChain() folds a segment stream into one rolling hash per
 * *full* KV block, chained so that hash i commits to every token of
 * blocks 0..i. Equal chain hashes at block i imply equal first
 * (i+1)*block_size tokens, which is the invariant the radix prefix
 * cache (memory::PrefixCache) is built on.
 */

#ifndef LIGHTLLM_BASE_TOKEN_STREAM_HH
#define LIGHTLLM_BASE_TOKEN_STREAM_HH

#include <cstdint>
#include <span>
#include <vector>

#include "base/types.hh"

namespace lightllm {

/** A run of `len` tokens whose content is identified by `key`. */
struct PromptSegment
{
    /** Content identity (0 is reserved for "unidentified"). */
    std::uint64_t key = 0;

    /** Length of the run in tokens (> 0). */
    TokenCount len = 0;
};

/** Chain hash of one full KV block of a token stream. */
using PrefixHash = std::uint64_t;

/**
 * Rolling per-block hash chain of a segment stream.
 *
 * Considers at most the first min(total stream length, `max_tokens`)
 * tokens and emits one hash per *complete* block of
 * `block_size_tokens` tokens, each chained over all preceding
 * blocks. A partial trailing block emits nothing: only full blocks
 * are shareable.
 */
std::vector<PrefixHash>
blockHashChain(std::span<const PromptSegment> segments,
               TokenCount block_size_tokens, TokenCount max_tokens);

/** Derive a fresh content key from a seed and two coordinates
 *  (SplitMix64 finalisation; never returns 0). */
std::uint64_t deriveContentKey(std::uint64_t seed, std::uint64_t a,
                               std::uint64_t b);

} // namespace lightllm

#endif // LIGHTLLM_BASE_TOKEN_STREAM_HH
