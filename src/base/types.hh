/**
 * @file
 * Fundamental scalar type aliases shared across the library.
 *
 * The simulator reasons about three quantities: simulated time,
 * token counts (the unit of KV-cache accounting, following the
 * paper's Figures 5/6 which reason in "token capacity"), and raw
 * byte sizes (used only inside the performance model when deriving
 * token capacity from hardware memory).
 */

#ifndef LIGHTLLM_BASE_TYPES_HH
#define LIGHTLLM_BASE_TYPES_HH

#include <cstdint>

namespace lightllm {

/** Simulated time in integer microseconds (deterministic). */
using Tick = std::int64_t;

/** Number of ticks in one simulated second. */
inline constexpr Tick kTicksPerSecond = 1'000'000;

/** Number of KV-cache token slots, or a count of tokens. */
using TokenCount = std::int64_t;

/** Raw byte size used by the performance model. */
using ByteCount = std::int64_t;

/** Monotonically increasing request identifier. */
using RequestId = std::int64_t;

/** Sentinel for "no request". */
inline constexpr RequestId kInvalidRequestId = -1;

/** Convert seconds (double) to ticks, rounding to nearest. */
constexpr Tick
secondsToTicks(double seconds)
{
    return static_cast<Tick>(
        seconds * static_cast<double>(kTicksPerSecond) + 0.5);
}

/** Convert ticks to fractional seconds. */
constexpr double
ticksToSeconds(Tick ticks)
{
    return static_cast<double>(ticks) /
        static_cast<double>(kTicksPerSecond);
}

} // namespace lightllm

#endif // LIGHTLLM_BASE_TYPES_HH
