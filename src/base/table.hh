/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit
 * the rows of each paper table/figure in aligned columns.
 */

#ifndef LIGHTLLM_BASE_TABLE_HH
#define LIGHTLLM_BASE_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace lightllm {

/** Accumulates rows of string cells and prints them aligned. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row; must match the header column count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Render the table to a string. */
    std::string toString() const;

  private:
    std::vector<std::string> headers_;
    // A row with no cells encodes a separator.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace lightllm

#endif // LIGHTLLM_BASE_TABLE_HH
