/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — an internal invariant was violated (library bug);
 *            aborts so a debugger/core dump can inspect the state.
 * fatal()  — the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments); exits cleanly.
 * warn()   — something is suspicious but the run can continue.
 * inform() — normal operating status for the user.
 */

#ifndef LIGHTLLM_BASE_LOGGING_HH
#define LIGHTLLM_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace lightllm {

namespace detail {

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message; use for violated internal invariants. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl("", 0, detail::concat(std::forward<Args>(args)...));
}

/** Exit with a message; use for unrecoverable user errors. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl("", 0, detail::concat(std::forward<Args>(args)...));
}

/** Emit a non-fatal warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the given condition holds. */
#define LIGHTLLM_ASSERT(cond, ...)                                       \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::lightllm::panic("assertion failed: ", #cond, " ",          \
                              ::lightllm::detail::concat(__VA_ARGS__));  \
        }                                                                \
    } while (0)

} // namespace lightllm

#endif // LIGHTLLM_BASE_LOGGING_HH
