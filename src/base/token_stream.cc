#include "base/token_stream.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lightllm {

namespace {

/** SplitMix64 finaliser: the bijective avalanche stage. */
std::uint64_t
mix64(std::uint64_t value)
{
    value ^= value >> 30;
    value *= 0xbf58476d1ce4e5b9ull;
    value ^= value >> 27;
    value *= 0x94d049bb133111ebull;
    value ^= value >> 31;
    return value;
}

/** Fold one token (content key + position within its segment). */
PrefixHash
foldToken(PrefixHash hash, std::uint64_t key, TokenCount offset)
{
    return mix64(hash ^ mix64(key + 0x9e3779b97f4a7c15ull *
                                        static_cast<std::uint64_t>(
                                            offset + 1)));
}

} // namespace

std::vector<PrefixHash>
blockHashChain(std::span<const PromptSegment> segments,
               TokenCount block_size_tokens, TokenCount max_tokens)
{
    LIGHTLLM_ASSERT(block_size_tokens >= 1,
                    "block size must be >= 1");
    std::vector<PrefixHash> hashes;
    if (max_tokens < block_size_tokens)
        return hashes;

    PrefixHash hash = 0x50465343414348ull;  // chain seed
    TokenCount position = 0;  // tokens folded so far
    for (const PromptSegment &segment : segments) {
        LIGHTLLM_ASSERT(segment.len > 0,
                        "empty prompt segment");
        for (TokenCount offset = 0; offset < segment.len; ++offset) {
            if (position >= max_tokens)
                return hashes;
            hash = foldToken(hash, segment.key, offset);
            ++position;
            if (position % block_size_tokens == 0)
                hashes.push_back(hash);
        }
    }
    return hashes;
}

std::uint64_t
deriveContentKey(std::uint64_t seed, std::uint64_t a, std::uint64_t b)
{
    const std::uint64_t key =
        mix64(seed ^ mix64(a + 0x9e3779b97f4a7c15ull) ^
              mix64(b + 0xd1b54a32d192ed03ull));
    return key == 0 ? 1 : key;
}

} // namespace lightllm
