/**
 * @file
 * Request classification shared by every layer.
 *
 * One struct carries the identity a request schedules under — which
 * tenant submitted it, how urgent it is within that tenant, and
 * which SLO tier its completion is judged against — so schedulers,
 * shedding, metrics, and report rows consume the same value instead
 * of loose ints threaded through signatures.
 */

#ifndef LIGHTLLM_BASE_REQUEST_CLASS_HH
#define LIGHTLLM_BASE_REQUEST_CLASS_HH

#include <cstdint>

namespace lightllm {
namespace base {

/** Tenant identity (0 = the default/anonymous tenant). */
using TenantId = std::uint32_t;

/**
 * Scheduling class of one request.
 *
 * `tenant` selects the scheduler-tree subtree (and the fairness
 * accounting bucket); `priority` orders requests *within* a class
 * (higher = more urgent; 0 = normal), consumed by the priority
 * queue policy and EDF's per-class deadline budgets; `sloTier`
 * selects which SLA the request is judged against in per-tenant
 * reporting (0 = the run's base SLA; higher tiers are stricter).
 */
struct RequestClass
{
    TenantId tenant = 0;
    int priority = 0;
    int sloTier = 0;

    friend bool
    operator==(const RequestClass &a, const RequestClass &b)
    {
        return a.tenant == b.tenant && a.priority == b.priority &&
               a.sloTier == b.sloTier;
    }
};

} // namespace base
} // namespace lightllm

#endif // LIGHTLLM_BASE_REQUEST_CLASS_HH
