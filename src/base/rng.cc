#include "base/rng.hh"

#include <cmath>

namespace lightllm {

namespace {

/** SplitMix64 step used for seeding and for deriving child seeds. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniformDouble()
{
    // 53 random mantissa bits scaled into [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    LIGHTLLM_ASSERT(lo <= hi, "uniformInt: lo ", lo, " > hi ", hi);
    const std::uint64_t range =
        static_cast<std::uint64_t>(hi - lo) + 1ull;
    if (range == 0)  // full 64-bit range
        return static_cast<std::int64_t>(nextU64());
    // Debiased modulo (Lemire-style rejection is overkill here; the
    // ranges used in the library are far below 2^63 so modulo bias is
    // at most ~2^-50 and irrelevant for simulation purposes).
    return lo + static_cast<std::int64_t>(nextU64() % range);
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniformDouble();
    } while (u1 <= 0.0);
    const double u2 = uniformDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 2.0 * 3.14159265358979323846;
    spare_ = mag * std::sin(two_pi * u2);
    hasSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double rate)
{
    LIGHTLLM_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u = 0.0;
    do {
        u = uniformDouble();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

bool
Rng::bernoulli(double p)
{
    return uniformDouble() < p;
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

} // namespace lightllm
