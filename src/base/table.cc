#include "base/table.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace lightllm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    LIGHTLLM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    LIGHTLLM_ASSERT(cells.size() == headers_.size(),
                    "row has ", cells.size(), " cells, expected ",
                    headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_line = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell =
                c < cells.size() ? cells[c] : std::string();
            os << " " << cell
               << std::string(widths[c] - cell.size(), ' ') << " |";
        }
        os << "\n";
    };
    auto print_separator = [&]() {
        os << "|";
        for (std::size_t c = 0; c < headers_.size(); ++c)
            os << std::string(widths[c] + 2, '-') << "|";
        os << "\n";
    };

    print_line(headers_);
    print_separator();
    for (const auto &row : rows_) {
        if (row.empty())
            print_separator();
        else
            print_line(row);
    }
}

std::string
TextTable::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace lightllm
