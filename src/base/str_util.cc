#include "base/str_util.hh"

#include <cctype>
#include <cstdint>
#include <sstream>

namespace lightllm {

std::vector<std::string>
splitString(std::string_view text, char delim)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            break;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

std::string_view
trimString(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << value;
    return oss.str();
}

std::string
formatPercent(double ratio, int precision)
{
    return formatDouble(ratio * 100.0, precision) + "%";
}

std::string
formatCount(std::int64_t value)
{
    const bool negative = value < 0;
    std::uint64_t magnitude = negative
        ? 0ull - static_cast<std::uint64_t>(value)
        : static_cast<std::uint64_t>(value);
    std::string digits = std::to_string(magnitude);
    std::string out;
    const std::size_t len = digits.size();
    for (std::size_t i = 0; i < len; ++i) {
        if (i > 0 && (len - i) % 3 == 0)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    if (negative)
        out.insert(out.begin(), '-');
    return out;
}

} // namespace lightllm
