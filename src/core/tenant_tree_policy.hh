/**
 * @file
 * Scheduling pipeline backed by a scheduler-node tree.
 *
 * TreeSchedulingPolicy replaces the flat "order the whole queue
 * with one QueuePolicy" step with a SchedNode tree: each waiting
 * request is routed to its tenant's leaf, and the admission loop
 * alternates peek / tryAdmit / pop against the tree, so fair
 * weights, token-rate budgets and in-flight caps gate which tenant
 * supplies the next candidate. Admission feasibility itself is
 * unchanged — the same Scheduler policies (conservative,
 * aggressive, past-future, oracle) test each candidate.
 *
 * Eviction stays on the shared victimOrder path, refined to be
 * fairness-aware: victims are ranked by their tenant's
 * weight-normalised resident KV usage (most over its share first),
 * with the flat queue-policy ranking as the within-tenant order.
 */

#ifndef LIGHTLLM_CORE_TENANT_TREE_POLICY_HH
#define LIGHTLLM_CORE_TENANT_TREE_POLICY_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sched_node.hh"
#include "core/scheduling_policy.hh"

namespace lightllm {
namespace core {

/** SchedulingPolicy whose queue is a scheduler-node tree. */
class TreeSchedulingPolicy final : public SchedulingPolicy
{
  public:
    /**
     * @param admission Memory-feasibility policy (owned).
     * @param tree Declarative node tree; leaves carry the
     *        per-tenant queue orderings.
     */
    TreeSchedulingPolicy(std::unique_ptr<Scheduler> admission,
                         const SchedNodeConfig &tree);

    void decideInto(const SchedulerContext &ctx,
                    SchedulingDecision &out) override;
    void victimOrder(const SchedulerContext &ctx,
                     VictimOrder tie_break,
                     std::vector<RequestId> &out) override;
    void onRequestFinished(RequestId id,
                           TokenCount output_len) override;
    void onRequestEvicted(RequestId id) override;
    std::string name() const override;

    /** Fair weight of `tenant` (for shedding / reports). */
    double tenantWeight(base::TenantId tenant) const;

  private:
    LeafSchedNode *leafFor(base::TenantId tenant) const;

    /** Admit `index`, updating tree + tenant bookkeeping. */
    void commitAdmit(const SchedulerContext &ctx, std::size_t index,
                     SchedulingDecision &decision);

    std::unique_ptr<SchedNode> root_;
    std::vector<LeafSchedNode *> leaves_;
    LeafSchedNode *catchAll_ = nullptr;
    std::unordered_map<base::TenantId, LeafSchedNode *> leafOf_;
    std::unordered_map<base::TenantId, double> weightOf_;

    /** Tenant of every request the tree has admitted (finish and
     *  eviction notifications only carry the request id). */
    std::unordered_map<RequestId, base::TenantId> tenantOf_;

    /** Scratch reused across rounds. */
    std::vector<RequestId> victimScratch_;
};

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_TENANT_TREE_POLICY_HH
