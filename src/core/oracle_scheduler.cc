#include "core/oracle_scheduler.hh"

#include <algorithm>

namespace lightllm {
namespace core {

namespace {

/** Effective output length: generation stops at EOS or the cap. */
TokenCount
effectiveOutput(TokenCount true_output, TokenCount max_new_tokens)
{
    return std::min(true_output, max_new_tokens);
}

} // namespace

std::size_t
OracleScheduler::selectAdmissions(const SchedulerContext &ctx)
{
    if (ctx.waiting.empty())
        return 0;

    entries_.clear();
    for (const auto &request : ctx.running) {
        const TokenCount total = std::max(
            effectiveOutput(request.trueOutputLen,
                            request.maxNewTokens),
            request.generatedLen);
        entries_.push_back(BatchEntry{request.promptLen,
                                      request.generatedLen, total});
    }

    std::size_t admitted = 0;
    for (const auto &candidate : ctx.waiting) {
        const TokenCount total = std::max(
            effectiveOutput(candidate.trueOutputLen,
                            candidate.maxNewTokens),
            candidate.generatedLen);
        const BatchEntry entry{
            candidate.promptLen + candidate.generatedLen, 0,
            total - candidate.generatedLen};
        scratch_ = entries_;
        scratch_.push_back(entry);
        const TokenCount overhead = ctx.perRequestOverhead *
            static_cast<TokenCount>(scratch_.size());
        if (futureRequiredMemory(scratch_) + overhead >
            ctx.capacityTokens) {
            break;
        }
        entries_.push_back(entry);
        ++admitted;
    }
    return admitted;
}

std::string
OracleScheduler::name() const
{
    return "Theoretical-optimum";
}

} // namespace core
} // namespace lightllm
