#include "core/oracle_scheduler.hh"

#include <algorithm>

namespace lightllm {
namespace core {

namespace {

/** Effective output length: generation stops at EOS or the cap. */
TokenCount
effectiveOutput(TokenCount true_output, TokenCount max_new_tokens)
{
    return std::min(true_output, max_new_tokens);
}

} // namespace

void
OracleScheduler::beginAdmissionRound(const SchedulerContext &ctx)
{
    capacity_ = ctx.capacityTokens;
    perRequestOverhead_ = ctx.perRequestOverhead;

    entries_.clear();
    for (const auto &request : ctx.running) {
        const TokenCount total = std::max(
            effectiveOutput(request.trueOutputLen,
                            request.maxNewTokens),
            request.generatedLen);
        entries_.push_back(BatchEntry{
            request.promptLen - request.cachedPrefixLen,
            request.generatedLen, total});
    }
}

bool
OracleScheduler::tryAdmit(const WaitingView &candidate)
{
    const TokenCount total = std::max(
        effectiveOutput(candidate.trueOutputLen,
                        candidate.maxNewTokens),
        candidate.generatedLen);
    const BatchEntry entry{
        candidate.promptLen + candidate.generatedLen -
            candidate.cachedPrefixLen,
        0, total - candidate.generatedLen};
    scratch_ = entries_;
    scratch_.push_back(entry);
    const TokenCount overhead = perRequestOverhead_ *
        static_cast<TokenCount>(scratch_.size());
    if (futureRequiredMemory(scratch_) + overhead > capacity_)
        return false;
    entries_.push_back(entry);
    return true;
}

std::string
OracleScheduler::name() const
{
    return "Theoretical-optimum";
}

} // namespace core
} // namespace lightllm
