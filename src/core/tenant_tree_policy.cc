#include "core/tenant_tree_policy.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lightllm {
namespace core {

namespace {

/** Map each tenant to the fair weight of the subtree serving it:
 *  the weight of the child under the nearest fair ancestor. */
void
collectWeights(const SchedNodeConfig &config, double inherited,
               std::unordered_map<base::TenantId, double> &out)
{
    if (config.kind == SchedNodeConfig::Kind::Leaf) {
        for (base::TenantId tenant : config.tenants)
            out.emplace(tenant, inherited);
        return;
    }
    const bool fair = config.kind == SchedNodeConfig::Kind::Fair;
    for (const SchedNodeConfig &child : config.children)
        collectWeights(child, fair ? child.weight : inherited, out);
}

} // namespace

TreeSchedulingPolicy::TreeSchedulingPolicy(
    std::unique_ptr<Scheduler> admission,
    const SchedNodeConfig &tree)
    : SchedulingPolicy(std::move(admission)),
      root_(makeSchedNode(tree))
{
    root_->collectLeaves(leaves_);
    LIGHTLLM_ASSERT(!leaves_.empty(), "tenant tree has no leaves");
    for (LeafSchedNode *leaf : leaves_) {
        if (leaf->tenants().empty() && catchAll_ == nullptr)
            catchAll_ = leaf;
        for (base::TenantId tenant : leaf->tenants())
            leafOf_.emplace(tenant, leaf);
    }
    collectWeights(tree, 1.0, weightOf_);
}

LeafSchedNode *
TreeSchedulingPolicy::leafFor(base::TenantId tenant) const
{
    auto it = leafOf_.find(tenant);
    if (it != leafOf_.end())
        return it->second;
    if (catchAll_ != nullptr)
        return catchAll_;
    // Unknown tenant and no catch-all: deterministic spill so a
    // misconfigured workload still schedules.
    return leaves_[tenant % leaves_.size()];
}

double
TreeSchedulingPolicy::tenantWeight(base::TenantId tenant) const
{
    auto it = weightOf_.find(tenant);
    return it != weightOf_.end() ? it->second : 1.0;
}

void
TreeSchedulingPolicy::commitAdmit(const SchedulerContext &ctx,
                                  std::size_t index,
                                  SchedulingDecision &decision)
{
    const WaitingView &candidate = ctx.waiting[index];
    // The pop charge is the candidate's prefill footprint; decode
    // output is post-paid through accountUsage on finish.
    root_->pop(ctx.now, candidate.promptLen + candidate.generatedLen);
    root_->onAdmitted(candidate.cls.tenant);
    tenantOf_[candidate.id] = candidate.cls.tenant;
    decision.admit.push_back(candidate.id);
}

void
TreeSchedulingPolicy::decideInto(const SchedulerContext &ctx,
                                 SchedulingDecision &out)
{
    out.admit.clear();
    out.evict.clear();
    if (ctx.waiting.empty())
        return;

    root_->beginRound(ctx);
    for (std::size_t i = 0; i < ctx.waiting.size(); ++i)
        leafFor(ctx.waiting[i].cls.tenant)->enqueue(i);

    admission().beginAdmissionRound(ctx);
    std::size_t index = 0;
    while (root_->peek(ctx.now, /*force=*/false, index)) {
        if (!admission().tryAdmit(ctx.waiting[index]))
            break;
        commitAdmit(ctx, index, out);
    }

    if (out.admit.empty() && ctx.running.empty()) {
        // Idle backstop, as on the flat path — but through the
        // tree (force ignores throttler credit and semaphore
        // limits) so the tree's accounting still sees the admit.
        const bool found =
            root_->peek(ctx.now, /*force=*/true, index);
        LIGHTLLM_ASSERT(found,
                        "tree lost the queue's requests");
        commitAdmit(ctx, index, out);
    }
}

void
TreeSchedulingPolicy::victimOrder(const SchedulerContext &ctx,
                                  VictimOrder tie_break,
                                  std::vector<RequestId> &out)
{
    // Flat ranking first: within a tenant, victims keep the queue
    // policy's order (and its tie-break bit-exactness).
    SchedulingPolicy::victimOrder(ctx, tie_break, out);

    // Weight-normalised resident KV per tenant; the most
    // over-share tenant loses requests first.
    std::unordered_map<base::TenantId, double> normalized;
    std::unordered_map<RequestId, base::TenantId> tenantOfId;
    for (const RunningView &view : ctx.running) {
        const auto resident = static_cast<double>(
            view.promptLen + view.generatedLen);
        normalized[view.cls.tenant] +=
            resident / tenantWeight(view.cls.tenant);
        tenantOfId.emplace(view.id, view.cls.tenant);
    }
    std::stable_sort(
        out.begin(), out.end(),
        [&](RequestId a, RequestId b) {
            return normalized[tenantOfId[a]] >
                normalized[tenantOfId[b]];
        });
}

void
TreeSchedulingPolicy::onRequestFinished(RequestId id,
                                        TokenCount output_len)
{
    SchedulingPolicy::onRequestFinished(id, output_len);
    auto it = tenantOf_.find(id);
    if (it == tenantOf_.end())
        return;
    const base::TenantId tenant = it->second;
    root_->accountUsage(tenant, output_len);
    root_->onReleased(tenant);
    root_->onRequestFinished(tenant, id, output_len);
    tenantOf_.erase(it);
}

void
TreeSchedulingPolicy::onRequestEvicted(RequestId id)
{
    SchedulingPolicy::onRequestEvicted(id);
    auto it = tenantOf_.find(id);
    if (it == tenantOf_.end())
        return;
    // Release the in-flight slot; the entry stays so a request
    // evicted and re-admitted re-acquires under the same tenant.
    root_->onReleased(it->second);
}

std::string
TreeSchedulingPolicy::name() const
{
    return SchedulingPolicy::name() + "+tenant-tree";
}

} // namespace core
} // namespace lightllm
