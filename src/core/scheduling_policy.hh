/**
 * @file
 * The scheduling pipeline: context → queue policy → admission
 * policy → decision.
 *
 * A SchedulingPolicy composes a QueuePolicy (which order the
 * waiting queue is considered in, and how eviction victims rank)
 * with a Scheduler (whether each candidate fits in memory) and
 * produces an explicit SchedulingDecision. The engine is the
 * executor: it validates and applies the decision with its
 * recompute/swap mechanics.
 *
 * With the FCFS queue policy the pipeline is a compatibility
 * adapter: it emits exactly the FCFS-prefix decisions the seed's
 * count-based API produced (same candidates tested in the same
 * order, so even the Past-Future scheduler's RNG consumption is
 * bit-identical), which is what keeps every paper figure
 * reproducible. See DESIGN.md §2 for the pipeline walk-through and
 * a worked EDF example.
 */

#ifndef LIGHTLLM_CORE_SCHEDULING_POLICY_HH
#define LIGHTLLM_CORE_SCHEDULING_POLICY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/queue_policy.hh"
#include "core/scheduler.hh"
#include "core/scheduling_decision.hh"

namespace lightllm {
namespace core {

/** Queue ordering + memory feasibility → scheduling decisions. */
class SchedulingPolicy
{
  public:
    /**
     * @param admission Memory-feasibility policy (owned).
     * @param queue Queue-ordering policy (owned); nullptr means
     *        FCFS.
     */
    SchedulingPolicy(std::unique_ptr<Scheduler> admission,
                     std::unique_ptr<QueuePolicy> queue = nullptr);

    virtual ~SchedulingPolicy() = default;

    /**
     * One scheduling round: order the queue, feasibility-test
     * candidates in that order (stopping at the first reject —
     * head-of-line semantics under the chosen order), and emit the
     * admissions. When the system is idle (empty running batch) and
     * nothing fits, the head-of-order request is force-admitted so
     * the engine always makes progress, as real frameworks do.
     *
     * `out` is reset before filling; callers reuse one decision
     * object across rounds so the hot path allocates nothing once
     * its vectors have warmed up.
     */
    virtual void decideInto(const SchedulerContext &ctx,
                            SchedulingDecision &out);

    /** Convenience wrapper over decideInto for one-shot callers. */
    SchedulingDecision
    decide(const SchedulerContext &ctx)
    {
        SchedulingDecision decision;
        decideInto(ctx, decision);
        return decision;
    }

    /**
     * Reactive eviction: fill `out` with ctx.running (all entries
     * must be evictable, i.e. not prefilling) ranked most-evictable
     * first. The engine evicts from the front until the step fits,
     * so flat and tree policies share one eviction code path. The
     * flat ranking is the queue policy's victimOrder, whose front
     * is bit-exact with the historical first-minimal scan.
     */
    virtual void victimOrder(const SchedulerContext &ctx,
                             VictimOrder tie_break,
                             std::vector<RequestId> &out);

    /** Completion feed (admission history + SJF predictor). */
    virtual void onRequestFinished(RequestId id,
                                   TokenCount output_len);

    /** Eviction notification (forwarded to the admission policy). */
    virtual void onRequestEvicted(RequestId id);

    /** Routing-signal estimate (forwarded, see Scheduler). */
    virtual TokenCount estimateLoad(const SchedulerContext &ctx);

    /** Read-only output-length estimate for tracing and the
     *  prediction audit (see Scheduler::peekPrediction). */
    TokenCount peekPrediction(RequestId id, TokenCount generated_len,
                              TokenCount max_new_tokens)
    {
        return admission_->peekPrediction(id, generated_len,
                                          max_new_tokens);
    }

    /**
     * Report label: the admission policy's name, suffixed with the
     * queue policy's when it is not FCFS (so seed reports are
     * unchanged under the compatibility adapter).
     */
    virtual std::string name() const;

    Scheduler &admission() { return *admission_; }
    QueuePolicy &queue() { return *queue_; }

  private:
    std::unique_ptr<Scheduler> admission_;
    std::unique_ptr<QueuePolicy> queue_;

    /** Ordering scratch reused across rounds. */
    std::vector<std::size_t> orderScratch_;
};

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_SCHEDULING_POLICY_HH
