#include "core/future_memory.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lightllm {
namespace core {

namespace {

/** Sort entries by descending remaining generation length (Eq. 2). */
void
sortByRemainingDescending(std::vector<BatchEntry> &entries)
{
    std::sort(entries.begin(), entries.end(),
              [](const BatchEntry &a, const BatchEntry &b) {
                  return a.remaining() > b.remaining();
              });
}

void
validate(const std::vector<BatchEntry> &entries)
{
    for (const auto &entry : entries) {
        LIGHTLLM_ASSERT(entry.promptLen >= 0, "negative prompt");
        LIGHTLLM_ASSERT(entry.generatedLen >= 0, "negative generated");
        LIGHTLLM_ASSERT(
            entry.predictedOutputLen >= entry.generatedLen,
            "prediction ", entry.predictedOutputLen,
            " below generated ", entry.generatedLen);
    }
}

} // namespace

TokenCount
futureRequiredMemory(std::vector<BatchEntry> &entries)
{
    validate(entries);
    sortByRemainingDescending(entries);

    TokenCount prefix_resident = 0;  // sum of (l_p + l_t) for j <= i
    TokenCount peak = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const BatchEntry &entry = entries[i];
        prefix_resident += entry.promptLen + entry.generatedLen;
        const TokenCount occupancy = prefix_resident +
            entry.remaining() * static_cast<TokenCount>(i + 1);
        peak = std::max(peak, occupancy);
    }
    return peak;
}

TokenCount
futureRequiredMemory(std::span<const BatchEntry> entries)
{
    std::vector<BatchEntry> copy(entries.begin(), entries.end());
    return futureRequiredMemory(copy);
}

std::vector<TokenCount>
futureMemoryProfile(std::vector<BatchEntry> &entries)
{
    validate(entries);
    sortByRemainingDescending(entries);

    std::vector<TokenCount> profile;
    profile.reserve(entries.size());
    TokenCount prefix_resident = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const BatchEntry &entry = entries[i];
        prefix_resident += entry.promptLen + entry.generatedLen;
        profile.push_back(prefix_resident +
                          entry.remaining() *
                              static_cast<TokenCount>(i + 1));
    }
    // Eq. 3 indexes from the longest-remaining request; completion
    // order is the reverse (the smallest remaining finishes first).
    std::reverse(profile.begin(), profile.end());
    return profile;
}

} // namespace core
} // namespace lightllm
