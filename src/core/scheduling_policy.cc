#include "core/scheduling_policy.hh"

#include "base/logging.hh"

namespace lightllm {
namespace core {

SchedulingPolicy::SchedulingPolicy(
    std::unique_ptr<Scheduler> admission,
    std::unique_ptr<QueuePolicy> queue)
    : admission_(std::move(admission)), queue_(std::move(queue))
{
    LIGHTLLM_ASSERT(admission_ != nullptr,
                    "scheduling policy needs an admission policy");
    if (queue_ == nullptr)
        queue_ = makeQueuePolicy(QueuePolicyConfig{});
}

void
SchedulingPolicy::decideInto(const SchedulerContext &ctx,
                             SchedulingDecision &out)
{
    out.admit.clear();
    out.evict.clear();
    if (ctx.waiting.empty())
        return;

    queue_->order(ctx, orderScratch_);
    LIGHTLLM_ASSERT(orderScratch_.size() == ctx.waiting.size(),
                    "queue policy must permute the whole queue");

    admission_->beginAdmissionRound(ctx);
    for (std::size_t index : orderScratch_) {
        const WaitingView &candidate = ctx.waiting[index];
        if (!admission_->tryAdmit(candidate))
            break;
        out.admit.push_back(candidate.id);
    }

    if (out.admit.empty() && ctx.running.empty()) {
        // The system is idle yet the policy refuses the head-of-
        // order request (e.g. conservative with prompt +
        // max_new_tokens beyond capacity). Real frameworks always
        // run at least one request; force progress.
        out.admit.push_back(ctx.waiting[orderScratch_.front()].id);
    }
}

void
SchedulingPolicy::victimOrder(const SchedulerContext &ctx,
                              VictimOrder tie_break,
                              std::vector<RequestId> &out)
{
    LIGHTLLM_ASSERT(!ctx.running.empty(),
                    "victim ranking over an empty batch");
    queue_->victimOrder(ctx, tie_break, out);
    LIGHTLLM_ASSERT(out.size() == ctx.running.size(),
                    "victim ranking must cover the whole batch");
}

void
SchedulingPolicy::onRequestFinished(RequestId id,
                                    TokenCount output_len)
{
    admission_->onRequestFinished(id, output_len);
    queue_->onRequestFinished(id, output_len);
}

void
SchedulingPolicy::onRequestEvicted(RequestId id)
{
    admission_->onRequestEvicted(id);
}

TokenCount
SchedulingPolicy::estimateLoad(const SchedulerContext &ctx)
{
    return admission_->estimateLoad(ctx);
}

std::string
SchedulingPolicy::name() const
{
    if (queue_->kind() == QueuePolicyKind::Fcfs)
        return admission_->name();
    return admission_->name() + "+" + queue_->name();
}

} // namespace core
} // namespace lightllm
