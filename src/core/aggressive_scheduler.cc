#include "core/aggressive_scheduler.hh"

#include "base/logging.hh"
#include "base/str_util.hh"

namespace lightllm {
namespace core {

AggressiveScheduler::AggressiveScheduler(double watermark)
    : watermark_(watermark)
{
    LIGHTLLM_ASSERT(watermark > 0.0 && watermark <= 1.0,
                    "watermark must be in (0, 1]");
}

std::size_t
AggressiveScheduler::selectAdmissions(const SchedulerContext &ctx)
{
    const auto limit = static_cast<TokenCount>(
        static_cast<double>(ctx.capacityTokens) * watermark_);

    TokenCount used = ctx.usedTokens;
    std::size_t admitted = 0;
    for (const auto &candidate : ctx.waiting) {
        // Only the immediate prefill footprint is considered.
        const TokenCount need =
            candidate.promptLen + candidate.generatedLen;
        if (used + need > limit)
            break;
        used += need;
        ++admitted;
    }
    return admitted;
}

std::string
AggressiveScheduler::name() const
{
    return "Aggressive(watermark=" + formatPercent(watermark_, 0) +
        ")";
}

} // namespace core
} // namespace lightllm
