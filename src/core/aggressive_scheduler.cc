#include "core/aggressive_scheduler.hh"

#include "base/logging.hh"
#include "base/str_util.hh"

namespace lightllm {
namespace core {

AggressiveScheduler::AggressiveScheduler(double watermark)
    : watermark_(watermark)
{
    LIGHTLLM_ASSERT(watermark > 0.0 && watermark <= 1.0,
                    "watermark must be in (0, 1]");
}

void
AggressiveScheduler::beginAdmissionRound(const SchedulerContext &ctx)
{
    limit_ = static_cast<TokenCount>(
        static_cast<double>(ctx.capacityTokens) * watermark_);
    used_ = ctx.usedTokens;
}

bool
AggressiveScheduler::tryAdmit(const WaitingView &candidate)
{
    // Only the immediate prefill footprint is considered; cached
    // prefix blocks are already resident and cost nothing new.
    const TokenCount need = candidate.promptLen +
        candidate.generatedLen - candidate.cachedPrefixLen;
    if (used_ + need > limit_)
        return false;
    used_ += need;
    return true;
}

std::string
AggressiveScheduler::name() const
{
    return "Aggressive(watermark=" + formatPercent(watermark_, 0) +
        ")";
}

} // namespace core
} // namespace lightllm
