/**
 * @file
 * The scheduler's output: an explicit decision object.
 *
 * The seed API returned an admission *count*, which can only express
 * "admit an FCFS prefix of the queue". A SchedulingDecision names
 * the requests instead, so policies can admit from any queue
 * position (SJF, EDF, priority classes) and proactively pick
 * eviction victims. The engine is the executor: it validates the
 * decision against the context it handed out, applies the evictions
 * (recompute or swap mechanics), then the admissions in the given
 * order.
 */

#ifndef LIGHTLLM_CORE_SCHEDULING_DECISION_HH
#define LIGHTLLM_CORE_SCHEDULING_DECISION_HH

#include <string>
#include <vector>

#include "core/scheduler.hh"

namespace lightllm {
namespace core {

/** One iteration's scheduling actions, by request id. */
struct SchedulingDecision
{
    /** Waiting-queue requests to admit, in admission order. */
    std::vector<RequestId> admit;

    /** Running requests to evict before admitting (proactive
     *  victims; must be decoding, not prefilling). */
    std::vector<RequestId> evict;

    bool
    empty() const
    {
        return admit.empty() && evict.empty();
    }
};

/**
 * Check a decision against the context it was made from.
 *
 * Valid means: admit ids are distinct members of ctx.waiting, evict
 * ids are distinct members of ctx.running, no evicted request is
 * still prefilling, and no id appears in both lists.
 *
 * @return Empty string when valid, otherwise a diagnostic naming
 *         the offending id.
 */
std::string validateDecision(const SchedulingDecision &decision,
                             const SchedulerContext &ctx);

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_SCHEDULING_DECISION_HH
