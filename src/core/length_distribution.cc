#include "core/length_distribution.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace lightllm {
namespace core {

LengthDistribution::LengthDistribution(std::vector<TokenCount> lengths)
    : sorted_(std::move(lengths))
{
    std::sort(sorted_.begin(), sorted_.end());
    sumsDirty_ = true;
    ensureSums();
}

void
LengthDistribution::insertValue(TokenCount value)
{
    sorted_.insert(
        std::upper_bound(sorted_.begin(), sorted_.end(), value),
        value);
    sumsDirty_ = true;
}

void
LengthDistribution::eraseValue(TokenCount value)
{
    const auto it =
        std::lower_bound(sorted_.begin(), sorted_.end(), value);
    LIGHTLLM_ASSERT(it != sorted_.end() && *it == value,
                    "erase of unrecorded length ", value);
    sorted_.erase(it);
    sumsDirty_ = true;
}

void
LengthDistribution::ensureSums() const
{
    if (!sumsDirty_)
        return;
    prefixSums_.clear();
    prefixSums_.reserve(sorted_.size() + 1);
    prefixSums_.push_back(0.0);
    for (TokenCount value : sorted_) {
        prefixSums_.push_back(prefixSums_.back() +
                              static_cast<double>(value));
    }
    sumsDirty_ = false;
}

TokenCount
LengthDistribution::sample(Rng &rng) const
{
    LIGHTLLM_ASSERT(!sorted_.empty(), "sample from empty distribution");
    const auto index = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(sorted_.size()) - 1));
    return sorted_[index];
}

TokenCount
LengthDistribution::sampleTail(Rng &rng, TokenCount greater_than,
                               TokenCount fallback) const
{
    const auto first = std::upper_bound(sorted_.begin(), sorted_.end(),
                                        greater_than);
    if (first == sorted_.end())
        return fallback;
    const auto lo = static_cast<std::int64_t>(
        std::distance(sorted_.begin(), first));
    const auto hi = static_cast<std::int64_t>(sorted_.size()) - 1;
    const auto index =
        static_cast<std::size_t>(rng.uniformInt(lo, hi));
    return sorted_[index];
}

TokenCount
LengthDistribution::sampleTailAt(double u, TokenCount greater_than,
                                 TokenCount fallback) const
{
    const auto first = std::upper_bound(sorted_.begin(), sorted_.end(),
                                        greater_than);
    if (first == sorted_.end())
        return fallback;
    u = std::clamp(u, 0.0, 1.0);
    const auto lo = static_cast<std::size_t>(
        std::distance(sorted_.begin(), first));
    const auto tail_size = sorted_.size() - lo;
    auto offset = static_cast<std::size_t>(
        u * static_cast<double>(tail_size));
    offset = std::min(offset, tail_size - 1);
    return sorted_[lo + offset];
}

double
LengthDistribution::probGreater(TokenCount x) const
{
    if (sorted_.empty())
        return 0.0;
    const auto first =
        std::upper_bound(sorted_.begin(), sorted_.end(), x);
    const auto count = std::distance(first, sorted_.end());
    return static_cast<double>(count) /
        static_cast<double>(sorted_.size());
}

TokenCount
LengthDistribution::tailMean(TokenCount greater_than,
                             TokenCount fallback) const
{
    const auto first = std::upper_bound(sorted_.begin(), sorted_.end(),
                                        greater_than);
    if (first == sorted_.end())
        return fallback;
    ensureSums();
    const auto lo = static_cast<std::size_t>(
        std::distance(sorted_.begin(), first));
    const double sum = prefixSums_.back() - prefixSums_[lo];
    const double count = static_cast<double>(sorted_.size() - lo);
    return static_cast<TokenCount>(std::llround(sum / count));
}

TokenCount
LengthDistribution::tailQuantile(TokenCount greater_than, double q,
                                 TokenCount fallback) const
{
    const auto first = std::upper_bound(sorted_.begin(), sorted_.end(),
                                        greater_than);
    if (first == sorted_.end())
        return fallback;
    q = std::clamp(q, 0.0, 1.0);
    const auto lo = static_cast<std::size_t>(
        std::distance(sorted_.begin(), first));
    const auto tail_size = sorted_.size() - lo;
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(tail_size)));
    if (rank == 0)
        rank = 1;
    return sorted_[lo + rank - 1];
}

TokenCount
LengthDistribution::quantile(double q) const
{
    if (sorted_.empty())
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto n = static_cast<double>(sorted_.size());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(q * n));
    if (rank == 0)
        rank = 1;
    return sorted_[rank - 1];
}

TokenCount
LengthDistribution::maxLength() const
{
    return sorted_.empty() ? 0 : sorted_.back();
}

double
LengthDistribution::meanLength() const
{
    if (sorted_.empty())
        return 0.0;
    double sum = 0.0;
    for (TokenCount value : sorted_)
        sum += static_cast<double>(value);
    return sum / static_cast<double>(sorted_.size());
}

} // namespace core
} // namespace lightllm
