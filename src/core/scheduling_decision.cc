#include "core/scheduling_decision.hh"

#include <unordered_set>

namespace lightllm {
namespace core {

std::string
validateDecision(const SchedulingDecision &decision,
                 const SchedulerContext &ctx)
{
    // Saturated engines produce empty decisions most iterations;
    // skip the membership sets entirely then.
    if (decision.empty())
        return "";

    std::unordered_set<RequestId> waiting_ids;
    waiting_ids.reserve(ctx.waiting.size());
    for (const auto &view : ctx.waiting)
        waiting_ids.insert(view.id);

    std::unordered_set<RequestId> seen;
    seen.reserve(decision.admit.size() + decision.evict.size());
    for (RequestId id : decision.admit) {
        if (!waiting_ids.contains(id)) {
            return "admit id " + std::to_string(id) +
                " is not in the waiting queue";
        }
        if (!seen.insert(id).second) {
            return "admit id " + std::to_string(id) +
                " appears more than once";
        }
    }

    for (RequestId id : decision.evict) {
        const RunningView *found = nullptr;
        for (const auto &view : ctx.running) {
            if (view.id == id) {
                found = &view;
                break;
            }
        }
        if (found == nullptr) {
            return "evict id " + std::to_string(id) +
                " is not in the running batch";
        }
        if (found->prefilling) {
            return "evict id " + std::to_string(id) +
                " is still prefilling";
        }
        if (!seen.insert(id).second) {
            return "evict id " + std::to_string(id) +
                " appears more than once";
        }
    }
    return "";
}

} // namespace core
} // namespace lightllm
