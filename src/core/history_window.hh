/**
 * @file
 * Sliding window of recently finished request output lengths.
 *
 * This is the "past" half of the Past-Future scheduler: the window
 * holds the actual output lengths of the last `capacity` finished
 * requests (the paper uses 1000) and is the sample set behind the
 * empirical distribution P(l) of Eq. 1. At service startup the
 * window is seeded with the preset maximum output length (§4), which
 * makes the scheduler conservative until real completions flush the
 * seed out.
 */

#ifndef LIGHTLLM_CORE_HISTORY_WINDOW_HH
#define LIGHTLLM_CORE_HISTORY_WINDOW_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace lightllm {
namespace core {

/** Fixed-capacity FIFO ring of output lengths. */
class HistoryWindow
{
  public:
    /**
     * @param capacity Window size w of Eq. 1 (> 0).
     */
    explicit HistoryWindow(std::size_t capacity);

    /**
     * Seed the window with `count` entries of `value` (cold-start
     * initialisation with max_new_tokens per §4). `count` is clamped
     * to the capacity. Seeded entries are placeholders: subsequent
     * real completions overwrite them before the ring starts
     * evicting real history, so the seed washes out after `count`
     * finished requests ("updated quickly", §4). Must be called on
     * an empty window.
     */
    void seed(TokenCount value, std::size_t count);

    /** What a push displaced (drives incremental consumers). */
    struct PushDelta
    {
        /** Value overwritten by this push (a seed placeholder or
         *  the evicted oldest entry); meaningless otherwise. */
        TokenCount removed = 0;
        /** False while the window is still growing (nothing left). */
        bool hasRemoved = false;
    };

    /**
     * Record the output length of a finished request. Returns which
     * value (if any) the push displaced, so consumers that mirror
     * the window contents (the predictor's sorted distribution) can
     * update in O(log w) instead of rebuilding.
     */
    PushDelta push(TokenCount output_len);

    /** Number of recorded lengths (<= capacity). */
    std::size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    std::size_t capacity() const { return ring_.size(); }

    /**
     * Monotonic counter bumped on every mutation; lets consumers
     * cache derived structures (the sorted distribution) and rebuild
     * only when the window changed.
     */
    std::uint64_t version() const { return version_; }

    /** Copy out the current contents (unordered). */
    std::vector<TokenCount> snapshot() const;

  private:
    std::vector<TokenCount> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t version_ = 0;
    std::size_t seedCount_ = 0;
    std::size_t seedsRemaining_ = 0;
};

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_HISTORY_WINDOW_HH
