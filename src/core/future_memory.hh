/**
 * @file
 * Future required memory of a running batch (Eqs. 2-4).
 *
 * The "future" half of the Past-Future scheduler. Given, for every
 * request in a (hypothetical) running batch, its prompt length l_p,
 * tokens generated so far l_t, and predicted final output length
 * l_hat, the peak memory the batch will ever need occurs at one of
 * the moments a request finishes. Sorting requests by descending
 * remaining generation (l_hat - l_t), the occupancy when the i-th
 * request (1-indexed) finishes is
 *
 *   M_i = sum_{j<=i} (l_p^j + l_t^j) + (l_hat^i - l_t^i) * i   (Eq. 3)
 *
 * and the future required memory is M* = max_i M_i (Eq. 4). M* is
 * the exact minimum capacity that completes the batch without any
 * eviction, assuming the predictions hold.
 */

#ifndef LIGHTLLM_CORE_FUTURE_MEMORY_HH
#define LIGHTLLM_CORE_FUTURE_MEMORY_HH

#include <span>
#include <vector>

#include "base/types.hh"

namespace lightllm {
namespace core {

/** Per-request inputs to the future-memory computation. */
struct BatchEntry
{
    /** Prompt length l_p (tokens resident from admission). */
    TokenCount promptLen = 0;

    /** Tokens generated so far, l_t. */
    TokenCount generatedLen = 0;

    /** Predicted (or known) total output length l_hat >= l_t. */
    TokenCount predictedOutputLen = 0;

    /** Remaining generation steps for this request. */
    TokenCount
    remaining() const
    {
        return predictedOutputLen - generatedLen;
    }
};

/**
 * Peak future memory M* (Eq. 4) of a batch; O(k log k).
 * Entries are reordered in place (descending remaining length).
 * Returns 0 for an empty batch.
 */
TokenCount futureRequiredMemory(std::vector<BatchEntry> &entries);

/** Convenience overload that copies the entries first. */
TokenCount futureRequiredMemory(std::span<const BatchEntry> entries);

/**
 * Full occupancy-at-completion profile {M_1 ... M_k} (Eq. 3) in
 * completion order (earliest finisher first), useful for
 * introspection and for the memory time-series benches. Entries are
 * reordered in place.
 */
std::vector<TokenCount>
futureMemoryProfile(std::vector<BatchEntry> &entries);

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_FUTURE_MEMORY_HH
