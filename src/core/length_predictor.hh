/**
 * @file
 * Shared "past" component: history window + cached empirical
 * distribution + point-estimate predictions.
 *
 * Three consumers run the same past-window machinery: the
 * Past-Future scheduler (admission, Eq. 1), the cluster router's
 * FutureMemory policy (placement, §7), and the predicted-SJF queue
 * policy (ordering). This class owns the window, rebuilds the
 * sorted distribution lazily (keyed on the window's version
 * counter), and exposes the point estimates the router and queue
 * policies need. Sampling consumers (the Past-Future scheduler's
 * sticky/per-step draws) reach through distribution() for the full
 * LengthDistribution API.
 *
 * Once materialised, the distribution is maintained incrementally:
 * each observation removes the displaced window entry and inserts
 * the new one in sorted position (O(w) memmove, no sort, no
 * allocation), which is bit-identical to a full rebuild because the
 * sorted vector and its prefix sums depend only on the multiset of
 * window values.
 */

#ifndef LIGHTLLM_CORE_LENGTH_PREDICTOR_HH
#define LIGHTLLM_CORE_LENGTH_PREDICTOR_HH

#include <span>

#include "core/history_window.hh"
#include "core/length_distribution.hh"

namespace lightllm {
namespace core {

/** History window plus a lazily rebuilt length distribution. */
class LengthPredictor
{
  public:
    /** @param window_size Window size w of Eq. 1 (> 0). */
    explicit LengthPredictor(std::size_t window_size);

    /** Cold-start seeding (see HistoryWindow::seed). */
    void seed(TokenCount value, std::size_t count);

    /** Record the output length of a finished request. */
    void observe(TokenCount output_len);

    /** Warm-start with previously observed output lengths. */
    void warm(std::span<const TokenCount> lengths);

    /** The underlying window (tests / introspection). */
    const HistoryWindow &window() const { return window_; }

    /**
     * The distribution over the current window contents, built on
     * first use and kept in sync incrementally by observe().
     */
    const LengthDistribution &distribution();

    /**
     * Point estimate of a request's final output length: the
     * conditional tail mean E[l | l > generated_len], capped at
     * `max_new_tokens`. Falls back to the cap when the window is
     * empty or the request has outlived all recorded history.
     */
    TokenCount expectedOutput(TokenCount generated_len,
                              TokenCount max_new_tokens);

    /**
     * Predicted resident footprint of a fresh request:
     * prompt + expected output (the router's placement charge).
     */
    TokenCount predictFootprint(TokenCount input_len,
                                TokenCount max_new_tokens);

  private:
    HistoryWindow window_;
    LengthDistribution distribution_;
    /** distribution_ mirrors the window (false until first query
     *  and after seed(), which must rebuild from a snapshot). */
    bool distributionValid_ = false;
};

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_LENGTH_PREDICTOR_HH
