/**
 * @file
 * The Past-Future scheduler (Algorithm 1) — the paper's contribution.
 *
 * Past: maintain the output-length distribution P(l) of the last
 * `windowSize` finished requests (Eq. 1). Future: before admitting a
 * queued request, predict every request's final output length, then
 * compute the batch's future required memory M* (Eqs. 2-4) and admit
 * only when M* fits within capacity minus a reserved margin that
 * absorbs prediction error from distribution drift.
 *
 * Prediction draws from P(l) for queued requests and from the
 * conditional tail P(l | l > l_t) for requests that have already
 * generated l_t tokens, so predictions always stay ahead of what has
 * actually been generated (§3.2). The diversity of the sampled
 * predictions is what lets Eq. 3 model staggered completions —
 * identical point predictions would degenerate M* into "everyone
 * finishes at once".
 */

#ifndef LIGHTLLM_CORE_PAST_FUTURE_SCHEDULER_HH
#define LIGHTLLM_CORE_PAST_FUTURE_SCHEDULER_HH

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "core/future_memory.hh"
#include "core/length_predictor.hh"
#include "core/scheduler.hh"

namespace lightllm {
namespace core {

/**
 * How request output lengths are predicted from P(l).
 *
 * StickySample (default) implements Algorithm 1's per-step tail
 * update by inverse-CDF coupling: each request freezes a uniform
 * variate u at first sight, and its prediction at any step is the
 * u-quantile of the *current* conditional tail P(l | l > l_t). With
 * u uniform this has exactly the per-step re-sampling law the paper
 * specifies (so Eq. 3 sees a properly staggered batch), yet the
 * prediction evolves deterministically and monotonically as l_t
 * grows — eliminating two biases of literal re-sampling at scale:
 * the admission lottery (a queued candidate re-rolling every step is
 * admitted on its most under-estimating draw) and the survivor bias
 * of freezing raw lengths (a request that outlives an old draw keeps
 * a prediction from a stale, smaller tail).
 *
 * PerStepSample is Algorithm 1 verbatim (kept for the ablation
 * bench). The deterministic modes (TailMean / TailQuantile) replace
 * draws with point estimates; they lose the completion stagger and
 * degenerate towards a mean-based conservative scheduler — also
 * ablations.
 */
enum class PredictionMode
{
    StickySample,
    PerStepSample,
    TailMean,
    TailQuantile,
};

/** Tunables of the Past-Future scheduler. */
struct PastFutureParams
{
    /** History window size w of Eq. 1 (the paper uses 1000). */
    std::size_t windowSize = 1000;

    /** Output-length prediction mode (see PredictionMode). */
    PredictionMode predictionMode = PredictionMode::StickySample;

    /** Tail quantile used by PredictionMode::TailQuantile. */
    double tailQuantile = 0.85;

    /** Fraction of capacity held back for prediction error
     *  (Table 1 evaluates 3%, 5%, 10%). */
    double reservedRatio = 0.03;

    /** Cold-start: seed the window with this output length
     *  (normally the service's max_new_tokens; 0 disables). */
    TokenCount seedOutputLen = 0;

    /** Number of seeded entries at cold start. */
    std::size_t seedCount = 32;

    /**
     * Warm-start: pre-populate the window with these observed output
     * lengths (e.g. the previous measurement window of the same
     * service — the adjacent-window similarity of Figure 3 is
     * precisely why this is predictive). Applied after the
     * max_new_tokens seed, so real history takes precedence.
     */
    std::vector<TokenCount> initialHistory;

    /**
     * Admission-check trials (StickySample mode): M* is evaluated
     * over this many sampled batches (trial 0 = the sticky
     * predictions, the rest = fresh redraws of every request from
     * its conditional tail) and the candidate is admitted when
     * mean + riskFactor * stddev of the trial peaks fits. This is a
     * variance-adaptive safety margin: negligible for narrow output
     * distributions, substantial for heavy-tailed ones.
     */
    int admissionTrials = 8;

    /** Standard deviations of estimator spread added to M* before
     *  the admission comparison. */
    double riskFactor = 1.0;

    /** Below this running-batch size sampling is repeated
     *  (PerStepSample mode only — §4's small-batch rule). */
    std::size_t smallBatchSize = 16;

    /** Sampling trials for small batches (max M* across trials;
     *  PerStepSample mode only). */
    int smallBatchTrials = 4;

    /** RNG seed for prediction sampling. */
    std::uint64_t seed = 0x9afeull;
};

/** Past-Future admission policy. */
class PastFutureScheduler : public Scheduler
{
  public:
    explicit PastFutureScheduler(PastFutureParams params = {});

    void beginAdmissionRound(const SchedulerContext &ctx) override;

    bool tryAdmit(const WaitingView &candidate) override;

    void onRequestFinished(RequestId id,
                           TokenCount output_len) override;

    /**
     * Read-only twin of predict(): reuses the frozen sticky
     * variate when the request has one, falls back to the
     * conditional tail mean otherwise. Never inserts into the
     * sticky map and never draws from the RNG, so tracing and
     * audit can call it freely without steering the run.
     */
    TokenCount peekPrediction(RequestId id,
                              TokenCount generated_len,
                              TokenCount max_new_tokens) override;

    /** Predicted future peak of the batch plus predicted footprints
     *  of the queue (cross-instance routing signal). */
    TokenCount estimateLoad(const SchedulerContext &ctx) override;

    std::string name() const override;

    /**
     * Predicted future required memory M* of the current running
     * batch alone (no admissions) — exposed for introspection,
     * tests, and the Fig 1 bench.
     */
    TokenCount estimateFutureMemory(const SchedulerContext &ctx);

    const PastFutureParams &params() const { return params_; }

    /** Observed historical window (for tests / introspection). */
    const HistoryWindow &history() const
    {
        return predictor_.window();
    }

  private:
    /** Draw/look up a prediction for (id, generated, cap). */
    TokenCount predict(RequestId id, TokenCount generated_len,
                       TokenCount max_new_tokens);

    /** Fresh conditional-tail draw that bypasses the sticky map
     *  (perturbation trials of the admission check). */
    TokenCount samplePerturbed(TokenCount generated_len,
                               TokenCount max_new_tokens);

    /** Trials to use for the given running-batch size. */
    int trialsFor(std::size_t batch_size) const;

    PastFutureParams params_;

    /** The "past" half: window + cached distribution. */
    LengthPredictor predictor_;

    Rng rng_;

    /** Frozen per-request uniform variates (StickySample mode). */
    std::unordered_map<RequestId, double> stickyU_;

    // Admission-round state: one entry vector per trial (running
    // batch predictions + incrementally committed candidates).
    std::vector<std::vector<BatchEntry>> trialEntries_;
    std::vector<BatchEntry> candidateEntries_;
    std::vector<BatchEntry> scratch_;
    /** estimateFutureMemory scratch (routing/introspection path). */
    std::vector<BatchEntry> loadScratch_;
    std::vector<double> peaks_;
    TokenCount limit_ = 0;
    TokenCount perRequestOverhead_ = 0;
    std::size_t runningSize_ = 0;
    std::size_t admitted_ = 0;
    int trials_ = 1;
};

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_PAST_FUTURE_SCHEDULER_HH
