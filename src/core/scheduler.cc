#include "core/scheduler.hh"

namespace lightllm {
namespace core {

void
Scheduler::onRequestFinished(RequestId, TokenCount)
{
}

void
Scheduler::onRequestEvicted(RequestId)
{
}

TokenCount
Scheduler::estimateLoad(const SchedulerContext &ctx)
{
    TokenCount total = ctx.usedTokens;
    for (const auto &candidate : ctx.waiting)
        total += candidate.promptLen + candidate.generatedLen;
    return total;
}

} // namespace core
} // namespace lightllm
