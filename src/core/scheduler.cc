#include "core/scheduler.hh"

#include <algorithm>

namespace lightllm {
namespace core {

std::size_t
Scheduler::selectAdmissions(const SchedulerContext &ctx)
{
    if (ctx.waiting.empty())
        return 0;  // nothing to decide; skip the prediction work
    beginAdmissionRound(ctx);
    std::size_t admitted = 0;
    for (const auto &candidate : ctx.waiting) {
        if (!tryAdmit(candidate))
            break;
        ++admitted;
    }
    return admitted;
}

void
Scheduler::onRequestFinished(RequestId, TokenCount)
{
}

void
Scheduler::onRequestEvicted(RequestId)
{
}

TokenCount
Scheduler::peekPrediction(RequestId, TokenCount generated_len,
                          TokenCount max_new_tokens)
{
    // Conservative default for schedulers without a predictor: a
    // request may generate up to its cap (but never less than it
    // already has).
    return std::max(generated_len, max_new_tokens);
}

TokenCount
Scheduler::estimateLoad(const SchedulerContext &ctx)
{
    TokenCount total = ctx.usedTokens;
    for (const auto &candidate : ctx.waiting) {
        total += candidate.promptLen + candidate.generatedLen -
            candidate.cachedPrefixLen;
    }
    return total;
}

} // namespace core
} // namespace lightllm
