#include "core/sched_node.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"

namespace lightllm {
namespace core {

// --- Leaf ----------------------------------------------------------

LeafSchedNode::LeafSchedNode(std::string name,
                             const QueuePolicyConfig &queue,
                             std::vector<base::TenantId> tenants)
    : SchedNode(std::move(name)), queue_(makeQueuePolicy(queue)),
      tenants_(std::move(tenants))
{
}

void
LeafSchedNode::enqueue(std::size_t index)
{
    LIGHTLLM_ASSERT(!sealed_,
                    "leaf ", name(), " enqueued after ordering");
    pending_.push_back(index);
}

void
LeafSchedNode::beginRound(const SchedulerContext &ctx)
{
    ctx_ = &ctx;
    pending_.clear();
    ordered_.clear();
    cursor_ = 0;
    sealed_ = false;
}

void
LeafSchedNode::seal()
{
    sealed_ = true;
    // The wrapped policy orders a leaf-local view of the queue;
    // the permutation maps back to global waiting indices. The
    // running span stays global: orderings only read it for
    // context, not for queue membership.
    viewScratch_.clear();
    viewScratch_.reserve(pending_.size());
    for (std::size_t index : pending_)
        viewScratch_.push_back(ctx_->waiting[index]);
    SchedulerContext local = *ctx_;
    local.waiting = viewScratch_;
    queue_->order(local, orderScratch_);
    LIGHTLLM_ASSERT(orderScratch_.size() == pending_.size(),
                    "leaf queue policy must permute its queue");
    ordered_.reserve(pending_.size());
    for (std::size_t local_index : orderScratch_)
        ordered_.push_back(pending_[local_index]);
}

bool
LeafSchedNode::peek(Tick, bool, std::size_t &index)
{
    if (!sealed_)
        seal();
    if (cursor_ >= ordered_.size())
        return false;
    index = ordered_[cursor_];
    return true;
}

void
LeafSchedNode::pop(Tick, TokenCount)
{
    LIGHTLLM_ASSERT(sealed_ && cursor_ < ordered_.size(),
                    "pop without a preceding peek on leaf ",
                    name());
    ++cursor_;
}

bool
LeafSchedNode::servesTenant(base::TenantId tenant) const
{
    if (tenants_.empty())
        return true;  // catch-all
    return std::find(tenants_.begin(), tenants_.end(), tenant) !=
        tenants_.end();
}

void
LeafSchedNode::accountUsage(base::TenantId, TokenCount)
{
}

void
LeafSchedNode::onAdmitted(base::TenantId)
{
}

void
LeafSchedNode::onReleased(base::TenantId)
{
}

void
LeafSchedNode::onRequestFinished(base::TenantId, RequestId id,
                                 TokenCount output_len)
{
    queue_->onRequestFinished(id, output_len);
}

void
LeafSchedNode::collectLeaves(std::vector<LeafSchedNode *> &out)
{
    out.push_back(this);
}

// --- Inner-node helpers --------------------------------------------

namespace {

/** Shared child bookkeeping for inner nodes. */
class InnerSchedNode : public SchedNode
{
  public:
    InnerSchedNode(std::string name,
                   std::vector<std::unique_ptr<SchedNode>> children)
        : SchedNode(std::move(name)),
          children_(std::move(children))
    {
        LIGHTLLM_ASSERT(!children_.empty(), "inner node ",
                        this->name(), " needs children");
    }

    void
    beginRound(const SchedulerContext &ctx) override
    {
        for (auto &child : children_)
            child->beginRound(ctx);
        lastPeeked_ = kNone;
    }

    bool
    servesTenant(base::TenantId tenant) const override
    {
        return std::any_of(children_.begin(), children_.end(),
                           [tenant](const auto &child) {
                               return child->servesTenant(tenant);
                           });
    }

    void
    accountUsage(base::TenantId tenant, TokenCount tokens) override
    {
        for (auto &child : children_) {
            if (child->servesTenant(tenant)) {
                accountChild(*child, tokens);
                child->accountUsage(tenant, tokens);
                return;
            }
        }
    }

    void
    onAdmitted(base::TenantId tenant) override
    {
        for (auto &child : children_) {
            if (child->servesTenant(tenant)) {
                child->onAdmitted(tenant);
                return;
            }
        }
    }

    void
    onReleased(base::TenantId tenant) override
    {
        for (auto &child : children_) {
            if (child->servesTenant(tenant)) {
                child->onReleased(tenant);
                return;
            }
        }
    }

    void
    onRequestFinished(base::TenantId tenant, RequestId id,
                      TokenCount output_len) override
    {
        for (auto &child : children_) {
            if (child->servesTenant(tenant)) {
                child->onRequestFinished(tenant, id, output_len);
                return;
            }
        }
    }

    void
    collectLeaves(std::vector<LeafSchedNode *> &out) override
    {
        for (auto &child : children_)
            child->collectLeaves(out);
    }

    void
    pop(Tick now, TokenCount cost) override
    {
        LIGHTLLM_ASSERT(lastPeeked_ != kNone,
                        "pop without a preceding peek on ", name());
        const std::size_t child = lastPeeked_;
        lastPeeked_ = kNone;
        chargePop(child, cost);
        children_[child]->pop(now, cost);
    }

  protected:
    static constexpr std::size_t kNone =
        std::numeric_limits<std::size_t>::max();

    /** Hook: cross-round service charge for the serving child. */
    virtual void accountChild(SchedNode &, TokenCount) {}

    /** Hook: per-pop charge for the chosen child. */
    virtual void chargePop(std::size_t, TokenCount) {}

    std::vector<std::unique_ptr<SchedNode>> children_;
    std::size_t lastPeeked_ = kNone;
};

/** Weighted fair queueing over children by vruntime. */
class FairSchedNode final : public InnerSchedNode
{
  public:
    FairSchedNode(std::string name,
                  std::vector<std::unique_ptr<SchedNode>> children,
                  std::vector<double> weights)
        : InnerSchedNode(std::move(name), std::move(children)),
          weights_(std::move(weights)),
          vruntime_(children_.size(), 0.0),
          wasRunnable_(children_.size(), false)
    {
        LIGHTLLM_ASSERT(weights_.size() == children_.size(),
                        "fair node needs one weight per child");
        for (double weight : weights_) {
            LIGHTLLM_ASSERT(weight > 0.0,
                            "fair weights must be positive");
        }
    }

    bool
    peek(Tick now, bool force, std::size_t &index) override
    {
        // Runnable children, and the wake-up clamp: a child that
        // was idle re-enters at the ratcheted floor so it cannot
        // spend credit hoarded while idle (CFS-style min_vruntime).
        double min_runnable =
            std::numeric_limits<double>::infinity();
        std::size_t chosen = kNone;
        std::size_t scratch = 0;
        for (std::size_t i = 0; i < children_.size(); ++i) {
            if (!children_[i]->peek(now, force, scratch)) {
                wasRunnable_[i] = false;
                continue;
            }
            if (!wasRunnable_[i]) {
                vruntime_[i] = std::max(vruntime_[i], floor_);
                wasRunnable_[i] = true;
            }
            min_runnable = std::min(min_runnable, vruntime_[i]);
            if (chosen == kNone ||
                vruntime_[i] < vruntime_[chosen]) {
                chosen = i;
            }
        }
        if (chosen == kNone)
            return false;
        floor_ = std::max(floor_, min_runnable);
        const bool ok =
            children_[chosen]->peek(now, force, index);
        LIGHTLLM_ASSERT(ok, "fair child lost its candidate");
        lastPeeked_ = chosen;
        return true;
    }

  protected:
    void
    chargePop(std::size_t child, TokenCount cost) override
    {
        vruntime_[child] +=
            static_cast<double>(cost) / weights_[child];
    }

    void
    accountChild(SchedNode &child, TokenCount tokens) override
    {
        for (std::size_t i = 0; i < children_.size(); ++i) {
            if (children_[i].get() == &child) {
                vruntime_[i] +=
                    static_cast<double>(tokens) / weights_[i];
                return;
            }
        }
    }

  private:
    std::vector<double> weights_;
    std::vector<double> vruntime_;
    std::vector<bool> wasRunnable_;
    double floor_ = 0.0;
};

/** Strict priority over children (higher rank first). */
class PrioritySchedNode final : public InnerSchedNode
{
  public:
    PrioritySchedNode(
        std::string name,
        std::vector<std::unique_ptr<SchedNode>> children,
        std::vector<int> ranks)
        : InnerSchedNode(std::move(name), std::move(children)),
          order_(children_.size())
    {
        LIGHTLLM_ASSERT(ranks.size() == children_.size(),
                        "priority node needs one rank per child");
        for (std::size_t i = 0; i < order_.size(); ++i)
            order_[i] = i;
        std::stable_sort(order_.begin(), order_.end(),
                         [&ranks](std::size_t a, std::size_t b) {
                             return ranks[a] > ranks[b];
                         });
    }

    bool
    peek(Tick now, bool force, std::size_t &index) override
    {
        for (std::size_t child : order_) {
            if (children_[child]->peek(now, force, index)) {
                lastPeeked_ = child;
                return true;
            }
        }
        return false;
    }

  private:
    std::vector<std::size_t> order_;
};

/** Token-bucket rate limit over the sim clock. */
class ThrottlerSchedNode final : public InnerSchedNode
{
  public:
    ThrottlerSchedNode(
        std::string name,
        std::vector<std::unique_ptr<SchedNode>> children,
        double tokens_per_second, TokenCount burst_tokens)
        : InnerSchedNode(std::move(name), std::move(children)),
          rate_(tokens_per_second),
          burst_(static_cast<double>(burst_tokens)),
          credit_(static_cast<double>(burst_tokens))
    {
        LIGHTLLM_ASSERT(children_.size() == 1,
                        "throttler wraps exactly one child");
        LIGHTLLM_ASSERT(rate_ > 0.0,
                        "throttler rate must be positive");
        LIGHTLLM_ASSERT(burst_ > 0.0,
                        "throttler burst must be positive");
    }

    bool
    peek(Tick now, bool force, std::size_t &index) override
    {
        if (!children_[0]->peek(now, force, index))
            return false;
        refill(now);
        if (!force) {
            // The candidate is eligible only when the bucket
            // covers its prefill footprint, so tokens dequeued in
            // any window of length W never exceed burst + rate*W.
            const auto cost = static_cast<double>(cost_of(index));
            if (credit_ < cost)
                return false;
        }
        lastPeeked_ = 0;
        return true;
    }

    void
    beginRound(const SchedulerContext &ctx) override
    {
        InnerSchedNode::beginRound(ctx);
        ctx_ = &ctx;
    }

  protected:
    void
    chargePop(std::size_t, TokenCount cost) override
    {
        credit_ -= static_cast<double>(cost);
    }

    void
    accountChild(SchedNode &, TokenCount tokens) override
    {
        // Decode output is post-paid: the bucket may go negative,
        // gating future dequeues until it refills.
        credit_ -= static_cast<double>(tokens);
    }

  private:
    TokenCount
    cost_of(std::size_t index) const
    {
        const WaitingView &view = ctx_->waiting[index];
        return view.promptLen + view.generatedLen;
    }

    void
    refill(Tick now)
    {
        if (now > lastRefill_) {
            credit_ = std::min(
                burst_,
                credit_ + rate_ * ticksToSeconds(now - lastRefill_));
        }
        lastRefill_ = std::max(lastRefill_, now);
    }

    double rate_;
    double burst_;
    double credit_;
    Tick lastRefill_ = 0;
    const SchedulerContext *ctx_ = nullptr;
};

/** Max admitted-but-unfinished requests in the subtree. */
class SemaphoreSchedNode final : public InnerSchedNode
{
  public:
    SemaphoreSchedNode(
        std::string name,
        std::vector<std::unique_ptr<SchedNode>> children,
        std::size_t max_in_flight)
        : InnerSchedNode(std::move(name), std::move(children)),
          maxInFlight_(max_in_flight)
    {
        LIGHTLLM_ASSERT(children_.size() == 1,
                        "semaphore wraps exactly one child");
        LIGHTLLM_ASSERT(maxInFlight_ > 0,
                        "semaphore limit must be positive");
    }

    bool
    peek(Tick now, bool force, std::size_t &index) override
    {
        if (!force && inFlight_ + pendingPops_ >= maxInFlight_)
            return false;
        if (!children_[0]->peek(now, force, index))
            return false;
        lastPeeked_ = 0;
        return true;
    }

    void
    beginRound(const SchedulerContext &ctx) override
    {
        InnerSchedNode::beginRound(ctx);
        pendingPops_ = 0;
    }

    void
    onAdmitted(base::TenantId tenant) override
    {
        ++inFlight_;
        if (pendingPops_ > 0)
            --pendingPops_;
        InnerSchedNode::onAdmitted(tenant);
    }

    void
    onReleased(base::TenantId tenant) override
    {
        LIGHTLLM_ASSERT(inFlight_ > 0, "semaphore ", name(),
                        " released below zero");
        --inFlight_;
        InnerSchedNode::onReleased(tenant);
    }

  protected:
    void
    chargePop(std::size_t, TokenCount) override
    {
        // Popped this round but onAdmitted not yet delivered:
        // count it against the limit so one round cannot overshoot.
        ++pendingPops_;
    }

  private:
    std::size_t maxInFlight_;
    std::size_t inFlight_ = 0;
    std::size_t pendingPops_ = 0;
};

std::vector<std::unique_ptr<SchedNode>>
buildChildren(const SchedNodeConfig &config)
{
    std::vector<std::unique_ptr<SchedNode>> children;
    children.reserve(config.children.size());
    for (const SchedNodeConfig &child : config.children)
        children.push_back(makeSchedNode(child));
    return children;
}

} // namespace

std::unique_ptr<SchedNode>
makeSchedNode(const SchedNodeConfig &config)
{
    switch (config.kind) {
      case SchedNodeConfig::Kind::Leaf:
        LIGHTLLM_ASSERT(config.children.empty(),
                        "leaf ", config.name,
                        " must not have children");
        return std::make_unique<LeafSchedNode>(
            config.name, config.queue, config.tenants);
      case SchedNodeConfig::Kind::Fair: {
        std::vector<double> weights;
        weights.reserve(config.children.size());
        for (const SchedNodeConfig &child : config.children)
            weights.push_back(child.weight);
        return std::make_unique<FairSchedNode>(
            config.name, buildChildren(config),
            std::move(weights));
      }
      case SchedNodeConfig::Kind::Priority: {
        std::vector<int> ranks;
        ranks.reserve(config.children.size());
        for (const SchedNodeConfig &child : config.children)
            ranks.push_back(child.priority);
        return std::make_unique<PrioritySchedNode>(
            config.name, buildChildren(config), std::move(ranks));
      }
      case SchedNodeConfig::Kind::Throttler:
        return std::make_unique<ThrottlerSchedNode>(
            config.name, buildChildren(config),
            config.tokensPerSecond, config.burstTokens);
      case SchedNodeConfig::Kind::Semaphore:
        return std::make_unique<SemaphoreSchedNode>(
            config.name, buildChildren(config),
            config.maxInFlight);
    }
    panic("unknown scheduler node kind");
}

SchedNodeConfig
tenantFairTree(const TenantTreeSpec &spec,
               const QueuePolicyConfig &queue)
{
    const std::size_t tenants =
        std::max(spec.numTenants, spec.weights.size());
    LIGHTLLM_ASSERT(tenants >= 1, "tenant tree needs >= 1 tenant");

    SchedNodeConfig root;
    root.kind = SchedNodeConfig::Kind::Fair;
    root.name = "tenants";
    root.children.reserve(tenants);
    for (std::size_t t = 0; t < tenants; ++t) {
        SchedNodeConfig leaf;
        leaf.kind = SchedNodeConfig::Kind::Leaf;
        leaf.name = "tenant-" + std::to_string(t) + "-queue";
        leaf.queue = queue;
        leaf.tenants = {static_cast<base::TenantId>(t)};

        SchedNodeConfig subtree = std::move(leaf);
        if (spec.maxInFlight > 0) {
            SchedNodeConfig semaphore;
            semaphore.kind = SchedNodeConfig::Kind::Semaphore;
            semaphore.name =
                "tenant-" + std::to_string(t) + "-inflight";
            semaphore.maxInFlight = spec.maxInFlight;
            semaphore.children.push_back(std::move(subtree));
            subtree = std::move(semaphore);
        }
        if (spec.tokensPerSecond > 0.0) {
            SchedNodeConfig throttler;
            throttler.kind = SchedNodeConfig::Kind::Throttler;
            throttler.name =
                "tenant-" + std::to_string(t) + "-rate";
            throttler.tokensPerSecond = spec.tokensPerSecond;
            throttler.burstTokens = spec.burstTokens > 0
                ? spec.burstTokens
                : static_cast<TokenCount>(spec.tokensPerSecond);
            throttler.children.push_back(std::move(subtree));
            subtree = std::move(throttler);
        }
        subtree.weight = t < spec.weights.size()
            ? spec.weights[t]
            : 1.0;
        root.children.push_back(std::move(subtree));
    }
    return root;
}

} // namespace core
} // namespace lightllm
