#include "core/past_future_scheduler.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/str_util.hh"

namespace lightllm {
namespace core {

PastFutureScheduler::PastFutureScheduler(PastFutureParams params)
    : params_(params), predictor_(params.windowSize),
      rng_(params.seed)
{
    LIGHTLLM_ASSERT(params_.reservedRatio >= 0.0 &&
                        params_.reservedRatio < 1.0,
                    "reserved ratio must be in [0, 1)");
    LIGHTLLM_ASSERT(params_.smallBatchTrials >= 1,
                    "need at least one sampling trial");
    LIGHTLLM_ASSERT(params_.tailQuantile > 0.0 &&
                        params_.tailQuantile <= 1.0,
                    "tail quantile must be in (0, 1]");
    LIGHTLLM_ASSERT(params_.riskFactor >= 0.0,
                    "risk factor must be non-negative");
    if (params_.seedOutputLen > 0)
        predictor_.seed(params_.seedOutputLen, params_.seedCount);
    for (TokenCount length : params_.initialHistory)
        predictor_.observe(length);
}

void
PastFutureScheduler::onRequestFinished(RequestId id,
                                       TokenCount output_len)
{
    predictor_.observe(output_len);
    stickyU_.erase(id);
}

TokenCount
PastFutureScheduler::predict(RequestId id, TokenCount generated_len,
                             TokenCount max_new_tokens)
{
    const LengthDistribution &distribution =
        predictor_.distribution();
    TokenCount predicted = 0;
    if (distribution.empty()) {
        predicted = max_new_tokens;
    } else {
        switch (params_.predictionMode) {
          case PredictionMode::StickySample:
          {
            // Quantile coupling: freeze u per request, evaluate the
            // current conditional tail at u. For fresh requests
            // l_t = 0 and the tail is the full distribution P(l).
            auto [it, inserted] = stickyU_.try_emplace(id, 0.0);
            if (inserted)
                it->second = rng_.uniformDouble();
            predicted = distribution.sampleTailAt(
                it->second, generated_len, max_new_tokens);
            break;
          }
          case PredictionMode::PerStepSample:
            predicted = distribution.sampleTail(rng_, generated_len,
                                                max_new_tokens);
            break;
          case PredictionMode::TailMean:
            predicted = distribution.tailMean(generated_len,
                                              max_new_tokens);
            break;
          case PredictionMode::TailQuantile:
            predicted = distribution.tailQuantile(
                generated_len, params_.tailQuantile, max_new_tokens);
            break;
        }
    }
    predicted = std::min(predicted, max_new_tokens);
    // A request that has generated l_t tokens will emit at least one
    // more before the engine can observe it finishing.
    return std::max(predicted, generated_len);
}

TokenCount
PastFutureScheduler::peekPrediction(RequestId id,
                                    TokenCount generated_len,
                                    TokenCount max_new_tokens)
{
    // Materialising the lazy distribution here is safe: it is
    // bit-identical to the incrementally maintained one (see
    // length_predictor.hh), and nothing else below touches state.
    const LengthDistribution &distribution =
        predictor_.distribution();
    TokenCount predicted = 0;
    if (distribution.empty()) {
        predicted = max_new_tokens;
    } else if (params_.predictionMode ==
               PredictionMode::TailQuantile) {
        predicted = distribution.tailQuantile(
            generated_len, params_.tailQuantile, max_new_tokens);
    } else {
        const auto it = stickyU_.find(id);
        predicted =
            params_.predictionMode == PredictionMode::StickySample &&
                it != stickyU_.end()
            ? distribution.sampleTailAt(it->second, generated_len,
                                        max_new_tokens)
            : distribution.tailMean(generated_len, max_new_tokens);
    }
    predicted = std::min(predicted, max_new_tokens);
    return std::max(predicted, generated_len);
}

TokenCount
PastFutureScheduler::samplePerturbed(TokenCount generated_len,
                                     TokenCount max_new_tokens)
{
    const LengthDistribution &distribution =
        predictor_.distribution();
    TokenCount predicted = distribution.empty()
        ? max_new_tokens
        : distribution.sampleTail(rng_, generated_len,
                                  max_new_tokens);
    predicted = std::min(predicted, max_new_tokens);
    return std::max(predicted, generated_len);
}

int
PastFutureScheduler::trialsFor(std::size_t batch_size) const
{
    switch (params_.predictionMode) {
      case PredictionMode::StickySample:
        return params_.admissionTrials;
      case PredictionMode::PerStepSample:
        return batch_size < params_.smallBatchSize
            ? params_.smallBatchTrials
            : 1;
      case PredictionMode::TailMean:
      case PredictionMode::TailQuantile:
        return 1;  // deterministic predictions need no repetition
    }
    return 1;
}

void
PastFutureScheduler::beginAdmissionRound(const SchedulerContext &ctx)
{
    limit_ = static_cast<TokenCount>(
        static_cast<double>(ctx.capacityTokens) *
        (1.0 - params_.reservedRatio));
    perRequestOverhead_ = ctx.perRequestOverhead;
    runningSize_ = ctx.running.size();
    admitted_ = 0;
    trials_ = trialsFor(ctx.running.size());

    // One entry vector per trial; each trial independently draws
    // its own predictions for the running batch, then candidates
    // are appended incrementally as they are accepted. (With
    // deterministic or sticky predictions there is exactly one
    // trial and predictions are stable.) The per-trial vectors are
    // cleared, not reassigned, so their capacity survives across
    // rounds and steady-state admission allocates nothing.
    const auto trials = static_cast<std::size_t>(trials_);
    if (trialEntries_.size() < trials)
        trialEntries_.resize(trials);
    for (std::size_t t = 0; t < trials; ++t) {
        auto &entries = trialEntries_[t];
        entries.clear();
        entries.reserve(ctx.running.size() + ctx.waiting.size());
        for (const auto &request : ctx.running) {
            // Trial 0 uses the official (sticky / per-step / point)
            // predictions; perturbation trials redraw every request
            // to probe the upside risk of the batch peak.
            const TokenCount predicted = t == 0
                ? predict(request.id, request.generatedLen,
                          request.maxNewTokens)
                : samplePerturbed(request.generatedLen,
                                  request.maxNewTokens);
            // Shared prefix blocks cost no private memory: charge
            // the uncached prompt suffix only.
            entries.push_back(BatchEntry{
                request.promptLen - request.cachedPrefixLen,
                request.generatedLen, predicted});
        }
    }
    peaks_.resize(trials);
}

bool
PastFutureScheduler::tryAdmit(const WaitingView &candidate)
{
    const auto trials = static_cast<std::size_t>(trials_);
    candidateEntries_.resize(trials);
    for (std::size_t t = 0; t < trials; ++t) {
        const TokenCount predicted = t == 0
            ? predict(candidate.id, candidate.generatedLen,
                      candidate.maxNewTokens)
            : samplePerturbed(candidate.generatedLen,
                              candidate.maxNewTokens);
        // The recompute prefill re-materialises prompt +
        // generated tokens, so that is the candidate's resident
        // footprint at admission — minus whatever prefix the cache
        // already holds; the remainder is its future growth.
        candidateEntries_[t] = BatchEntry{
            candidate.promptLen + candidate.generatedLen -
                candidate.cachedPrefixLen,
            0, predicted - candidate.generatedLen};
        scratch_ = trialEntries_[t];
        scratch_.push_back(candidateEntries_[t]);
        peaks_[t] =
            static_cast<double>(futureRequiredMemory(scratch_));
    }

    // Aggregate the trial peaks. PerStepSample keeps the
    // paper's worst-case rule; StickySample uses the estimated
    // riskFactor-sigma exceedance level, which adapts the
    // safety margin to the workload's variance.
    double estimate = 0.0;
    if (params_.predictionMode == PredictionMode::PerStepSample) {
        for (double peak : peaks_)
            estimate = std::max(estimate, peak);
    } else {
        double mean = 0.0;
        for (double peak : peaks_)
            mean += peak;
        mean /= static_cast<double>(peaks_.size());
        double variance = 0.0;
        for (double peak : peaks_) {
            variance += (peak - mean) * (peak - mean);
        }
        variance /= static_cast<double>(peaks_.size());
        estimate = mean + params_.riskFactor * std::sqrt(variance);
    }

    // Paged-allocator block rounding plus the admission slot.
    const TokenCount overhead = perRequestOverhead_ *
        static_cast<TokenCount>(runningSize_ + admitted_ + 1);
    if (static_cast<TokenCount>(estimate) + overhead > limit_)
        return false;
    for (std::size_t t = 0; t < trials; ++t)
        trialEntries_[t].push_back(candidateEntries_[t]);
    ++admitted_;
    return true;
}

TokenCount
PastFutureScheduler::estimateFutureMemory(const SchedulerContext &ctx)
{
    loadScratch_.clear();
    loadScratch_.reserve(ctx.running.size());
    for (const auto &request : ctx.running) {
        loadScratch_.push_back(BatchEntry{
            request.promptLen - request.cachedPrefixLen,
            request.generatedLen,
            predict(request.id, request.generatedLen,
                    request.maxNewTokens)});
    }
    return futureRequiredMemory(loadScratch_);
}

TokenCount
PastFutureScheduler::estimateLoad(const SchedulerContext &ctx)
{
    TokenCount total = estimateFutureMemory(ctx);
    for (const auto &candidate : ctx.waiting) {
        total += candidate.promptLen - candidate.cachedPrefixLen +
            predict(candidate.id, candidate.generatedLen,
                    candidate.maxNewTokens);
    }
    return total;
}

std::string
PastFutureScheduler::name() const
{
    return "Past-Future(reserved=" +
        formatPercent(params_.reservedRatio, 0) + ")";
}

} // namespace core
} // namespace lightllm
