#include "core/past_future_scheduler.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/str_util.hh"

namespace lightllm {
namespace core {

PastFutureScheduler::PastFutureScheduler(PastFutureParams params)
    : params_(params), window_(params.windowSize), rng_(params.seed)
{
    LIGHTLLM_ASSERT(params_.reservedRatio >= 0.0 &&
                        params_.reservedRatio < 1.0,
                    "reserved ratio must be in [0, 1)");
    LIGHTLLM_ASSERT(params_.smallBatchTrials >= 1,
                    "need at least one sampling trial");
    LIGHTLLM_ASSERT(params_.tailQuantile > 0.0 &&
                        params_.tailQuantile <= 1.0,
                    "tail quantile must be in (0, 1]");
    LIGHTLLM_ASSERT(params_.riskFactor >= 0.0,
                    "risk factor must be non-negative");
    if (params_.seedOutputLen > 0)
        window_.seed(params_.seedOutputLen, params_.seedCount);
    for (TokenCount length : params_.initialHistory)
        window_.push(length);
}

void
PastFutureScheduler::onRequestFinished(RequestId id,
                                       TokenCount output_len)
{
    window_.push(output_len);
    stickyU_.erase(id);
}

void
PastFutureScheduler::refreshDistribution()
{
    if (cachedVersion_ == window_.version())
        return;
    distribution_ = LengthDistribution(window_.snapshot());
    cachedVersion_ = window_.version();
}

TokenCount
PastFutureScheduler::predict(RequestId id, TokenCount generated_len,
                             TokenCount max_new_tokens)
{
    TokenCount predicted = 0;
    if (distribution_.empty()) {
        predicted = max_new_tokens;
    } else {
        switch (params_.predictionMode) {
          case PredictionMode::StickySample:
          {
            // Quantile coupling: freeze u per request, evaluate the
            // current conditional tail at u. For fresh requests
            // l_t = 0 and the tail is the full distribution P(l).
            auto [it, inserted] = stickyU_.try_emplace(id, 0.0);
            if (inserted)
                it->second = rng_.uniformDouble();
            predicted = distribution_.sampleTailAt(
                it->second, generated_len, max_new_tokens);
            break;
          }
          case PredictionMode::PerStepSample:
            predicted = distribution_.sampleTail(rng_, generated_len,
                                                 max_new_tokens);
            break;
          case PredictionMode::TailMean:
            predicted = distribution_.tailMean(generated_len,
                                               max_new_tokens);
            break;
          case PredictionMode::TailQuantile:
            predicted = distribution_.tailQuantile(
                generated_len, params_.tailQuantile, max_new_tokens);
            break;
        }
    }
    predicted = std::min(predicted, max_new_tokens);
    // A request that has generated l_t tokens will emit at least one
    // more before the engine can observe it finishing.
    return std::max(predicted, generated_len);
}

TokenCount
PastFutureScheduler::samplePerturbed(TokenCount generated_len,
                                     TokenCount max_new_tokens)
{
    TokenCount predicted = distribution_.empty()
        ? max_new_tokens
        : distribution_.sampleTail(rng_, generated_len,
                                   max_new_tokens);
    predicted = std::min(predicted, max_new_tokens);
    return std::max(predicted, generated_len);
}

int
PastFutureScheduler::trialsFor(std::size_t batch_size) const
{
    switch (params_.predictionMode) {
      case PredictionMode::StickySample:
        return params_.admissionTrials;
      case PredictionMode::PerStepSample:
        return batch_size < params_.smallBatchSize
            ? params_.smallBatchTrials
            : 1;
      case PredictionMode::TailMean:
      case PredictionMode::TailQuantile:
        return 1;  // deterministic predictions need no repetition
    }
    return 1;
}

std::size_t
PastFutureScheduler::selectAdmissions(const SchedulerContext &ctx)
{
    if (ctx.waiting.empty())
        return 0;  // nothing to decide; skip the prediction work
    refreshDistribution();

    const auto limit = static_cast<TokenCount>(
        static_cast<double>(ctx.capacityTokens) *
        (1.0 - params_.reservedRatio));

    const int trials = trialsFor(ctx.running.size());

    // One entry vector per trial; each trial independently draws
    // its own predictions for the running batch, then candidates
    // are appended incrementally as they are accepted. (With
    // deterministic or sticky predictions there is exactly one
    // trial and predictions are stable.)
    std::vector<std::vector<BatchEntry>> trial_entries(
        static_cast<std::size_t>(trials));
    for (std::size_t t = 0; t < trial_entries.size(); ++t) {
        auto &entries = trial_entries[t];
        entries.reserve(ctx.running.size() + ctx.waiting.size());
        for (const auto &request : ctx.running) {
            // Trial 0 uses the official (sticky / per-step / point)
            // predictions; perturbation trials redraw every request
            // to probe the upside risk of the batch peak.
            const TokenCount predicted = t == 0
                ? predict(request.id, request.generatedLen,
                          request.maxNewTokens)
                : samplePerturbed(request.generatedLen,
                                  request.maxNewTokens);
            entries.push_back(BatchEntry{request.promptLen,
                                         request.generatedLen,
                                         predicted});
        }
    }

    std::vector<BatchEntry> scratch;
    std::vector<double> peaks(static_cast<std::size_t>(trials));
    std::size_t admitted = 0;
    for (const auto &candidate : ctx.waiting) {
        std::vector<BatchEntry> candidate_entries(
            static_cast<std::size_t>(trials));
        for (std::size_t t = 0;
             t < static_cast<std::size_t>(trials); ++t) {
            const TokenCount predicted = t == 0
                ? predict(candidate.id, candidate.generatedLen,
                          candidate.maxNewTokens)
                : samplePerturbed(candidate.generatedLen,
                                  candidate.maxNewTokens);
            // The recompute prefill re-materialises prompt +
            // generated tokens, so that is the candidate's resident
            // footprint at admission; the remainder is its future
            // growth.
            candidate_entries[t] = BatchEntry{
                candidate.promptLen + candidate.generatedLen, 0,
                predicted - candidate.generatedLen};
            scratch = trial_entries[t];
            scratch.push_back(candidate_entries[t]);
            peaks[t] = static_cast<double>(
                futureRequiredMemory(scratch));
        }

        // Aggregate the trial peaks. PerStepSample keeps the
        // paper's worst-case rule; StickySample uses the estimated
        // riskFactor-sigma exceedance level, which adapts the
        // safety margin to the workload's variance.
        double estimate = 0.0;
        if (params_.predictionMode == PredictionMode::PerStepSample) {
            for (double peak : peaks)
                estimate = std::max(estimate, peak);
        } else {
            double mean = 0.0;
            for (double peak : peaks)
                mean += peak;
            mean /= static_cast<double>(peaks.size());
            double variance = 0.0;
            for (double peak : peaks) {
                variance += (peak - mean) * (peak - mean);
            }
            variance /= static_cast<double>(peaks.size());
            estimate = mean +
                params_.riskFactor * std::sqrt(variance);
        }

        // Paged-allocator block rounding plus the admission slot.
        const TokenCount overhead = ctx.perRequestOverhead *
            static_cast<TokenCount>(ctx.running.size() + admitted +
                                    1);
        if (static_cast<TokenCount>(estimate) + overhead > limit)
            break;
        for (std::size_t t = 0;
             t < static_cast<std::size_t>(trials); ++t) {
            trial_entries[t].push_back(candidate_entries[t]);
        }
        ++admitted;
    }
    return admitted;
}

TokenCount
PastFutureScheduler::estimateFutureMemory(const SchedulerContext &ctx)
{
    refreshDistribution();
    std::vector<BatchEntry> entries;
    entries.reserve(ctx.running.size());
    for (const auto &request : ctx.running) {
        entries.push_back(BatchEntry{
            request.promptLen, request.generatedLen,
            predict(request.id, request.generatedLen,
                    request.maxNewTokens)});
    }
    return futureRequiredMemory(entries);
}

TokenCount
PastFutureScheduler::estimateLoad(const SchedulerContext &ctx)
{
    TokenCount total = estimateFutureMemory(ctx);
    for (const auto &candidate : ctx.waiting) {
        total += candidate.promptLen +
            predict(candidate.id, candidate.generatedLen,
                    candidate.maxNewTokens);
    }
    return total;
}

std::string
PastFutureScheduler::name() const
{
    return "Past-Future(reserved=" +
        formatPercent(params_.reservedRatio, 0) + ")";
}

} // namespace core
} // namespace lightllm
