/**
 * @file
 * Aggressive scheduler (vLLM style).
 *
 * Ignores future output growth entirely: a queued request is
 * admitted whenever its *current* footprint (prompt + any already
 * generated tokens) fits under a memory watermark. Utilisation is
 * high, but on decode-heavy workloads the running batch outgrows
 * memory and requests must be evicted and recomputed — the paper's
 * Table 1 measures up to 93.7% evicted requests at watermark=99%.
 */

#ifndef LIGHTLLM_CORE_AGGRESSIVE_SCHEDULER_HH
#define LIGHTLLM_CORE_AGGRESSIVE_SCHEDULER_HH

#include "core/scheduler.hh"

namespace lightllm {
namespace core {

/** Input-length-only admission policy under a memory watermark. */
class AggressiveScheduler : public Scheduler
{
  public:
    /**
     * @param watermark Fraction of capacity the current footprint
     *        may reach after admission (the paper evaluates 0.90,
     *        0.95 and 0.99).
     */
    explicit AggressiveScheduler(double watermark = 0.95);

    void beginAdmissionRound(const SchedulerContext &ctx) override;

    bool tryAdmit(const WaitingView &candidate) override;

    std::string name() const override;

    double watermark() const { return watermark_; }

  private:
    double watermark_;

    // Admission-round state.
    TokenCount limit_ = 0;
    TokenCount used_ = 0;
};

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_AGGRESSIVE_SCHEDULER_HH
