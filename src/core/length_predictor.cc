#include "core/length_predictor.hh"

#include <algorithm>

namespace lightllm {
namespace core {

LengthPredictor::LengthPredictor(std::size_t window_size)
    : window_(window_size)
{
}

void
LengthPredictor::seed(TokenCount value, std::size_t count)
{
    window_.seed(value, count);
}

void
LengthPredictor::observe(TokenCount output_len)
{
    window_.push(output_len);
}

void
LengthPredictor::warm(std::span<const TokenCount> lengths)
{
    for (TokenCount length : lengths)
        window_.push(length);
}

const LengthDistribution &
LengthPredictor::distribution()
{
    if (cachedVersion_ != window_.version()) {
        distribution_ = LengthDistribution(window_.snapshot());
        cachedVersion_ = window_.version();
    }
    return distribution_;
}

TokenCount
LengthPredictor::expectedOutput(TokenCount generated_len,
                                TokenCount max_new_tokens)
{
    const LengthDistribution &dist = distribution();
    if (dist.empty())
        return max_new_tokens;
    return std::min(dist.tailMean(generated_len, max_new_tokens),
                    max_new_tokens);
}

TokenCount
LengthPredictor::predictFootprint(TokenCount input_len,
                                  TokenCount max_new_tokens)
{
    return input_len + expectedOutput(0, max_new_tokens);
}

} // namespace core
} // namespace lightllm
