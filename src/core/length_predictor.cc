#include "core/length_predictor.hh"

#include <algorithm>

namespace lightllm {
namespace core {

LengthPredictor::LengthPredictor(std::size_t window_size)
    : window_(window_size)
{
}

void
LengthPredictor::seed(TokenCount value, std::size_t count)
{
    window_.seed(value, count);
    distributionValid_ = false;
}

void
LengthPredictor::observe(TokenCount output_len)
{
    const HistoryWindow::PushDelta delta = window_.push(output_len);
    if (distributionValid_) {
        if (delta.hasRemoved)
            distribution_.eraseValue(delta.removed);
        distribution_.insertValue(output_len);
    }
}

void
LengthPredictor::warm(std::span<const TokenCount> lengths)
{
    for (TokenCount length : lengths)
        observe(length);
}

const LengthDistribution &
LengthPredictor::distribution()
{
    if (!distributionValid_) {
        distribution_ = LengthDistribution(window_.snapshot());
        distributionValid_ = true;
    }
    return distribution_;
}

TokenCount
LengthPredictor::expectedOutput(TokenCount generated_len,
                                TokenCount max_new_tokens)
{
    const LengthDistribution &dist = distribution();
    if (dist.empty())
        return max_new_tokens;
    return std::min(dist.tailMean(generated_len, max_new_tokens),
                    max_new_tokens);
}

TokenCount
LengthPredictor::predictFootprint(TokenCount input_len,
                                  TokenCount max_new_tokens)
{
    return input_len + expectedOutput(0, max_new_tokens);
}

} // namespace core
} // namespace lightllm
