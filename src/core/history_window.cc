#include "core/history_window.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lightllm {
namespace core {

HistoryWindow::HistoryWindow(std::size_t capacity)
    : ring_(capacity, 0)
{
    LIGHTLLM_ASSERT(capacity > 0, "window capacity must be positive");
}

void
HistoryWindow::seed(TokenCount value, std::size_t count)
{
    LIGHTLLM_ASSERT(value >= 0, "negative seed value");
    LIGHTLLM_ASSERT(size_ == 0, "seed on a non-empty window");
    count = std::min(count, ring_.size());
    for (std::size_t i = 0; i < count; ++i) {
        ring_[head_] = value;
        head_ = (head_ + 1) % ring_.size();
        size_ = std::min(size_ + 1, ring_.size());
        ++version_;
    }
    seedCount_ = count;
    seedsRemaining_ = count;
}

HistoryWindow::PushDelta
HistoryWindow::push(TokenCount output_len)
{
    LIGHTLLM_ASSERT(output_len >= 0, "negative output length");
    PushDelta delta;
    if (seedsRemaining_ > 0) {
        // Replace cold-start placeholders first so the seed washes
        // out as soon as real completions exist.
        const std::size_t slot = seedCount_ - seedsRemaining_;
        delta.removed = ring_[slot];
        delta.hasRemoved = true;
        ring_[slot] = output_len;
        --seedsRemaining_;
        ++version_;
        return delta;
    }
    if (size_ == ring_.size()) {
        delta.removed = ring_[head_];
        delta.hasRemoved = true;
    }
    ring_[head_] = output_len;
    head_ = (head_ + 1) % ring_.size();
    size_ = std::min(size_ + 1, ring_.size());
    ++version_;
    return delta;
}

std::vector<TokenCount>
HistoryWindow::snapshot() const
{
    std::vector<TokenCount> values;
    values.reserve(size_);
    if (size_ < ring_.size()) {
        // Not yet wrapped: valid entries are [0, size).
        values.assign(ring_.begin(),
                      ring_.begin() + static_cast<std::ptrdiff_t>(size_));
    } else {
        values = ring_;
    }
    return values;
}

} // namespace core
} // namespace lightllm
