/**
 * @file
 * Conservative scheduler (TGI / DeepSpeed-MII style).
 *
 * Assumes every request — running or queued — will generate its full
 * max_new_tokens, and admits a queued request only when the sum of
 * worst-case footprints fits in (capacity * overcommit). With
 * overcommit = 1 this never evicts, at the cost of very low memory
 * utilisation and long queues; Table 1 also evaluates overcommit
 * ratios > 1, which trade queueing for evictions.
 */

#ifndef LIGHTLLM_CORE_CONSERVATIVE_SCHEDULER_HH
#define LIGHTLLM_CORE_CONSERVATIVE_SCHEDULER_HH

#include "core/scheduler.hh"

namespace lightllm {
namespace core {

/** Worst-case (max_new_tokens) admission policy. */
class ConservativeScheduler : public Scheduler
{
  public:
    /**
     * @param overcommit Capacity multiplier (1.0 = strict
     *        worst-case; 1.5 = the paper's "overcommit=150%").
     */
    explicit ConservativeScheduler(double overcommit = 1.0);

    void beginAdmissionRound(const SchedulerContext &ctx) override;

    bool tryAdmit(const WaitingView &candidate) override;

    std::string name() const override;

    double overcommit() const { return overcommit_; }

  private:
    double overcommit_;

    // Admission-round state.
    TokenCount limit_ = 0;
    TokenCount committed_ = 0;
};

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_CONSERVATIVE_SCHEDULER_HH
