/**
 * @file
 * Oracle scheduler — the paper's "theoretical optimum".
 *
 * Identical future-required-memory admission logic to the
 * Past-Future scheduler, but with ground-truth output lengths in
 * place of sampled predictions and no reserved margin. It is
 * impossible in a real service (output lengths are unknown) and
 * exists purely as the upper bound rows of Table 1 / the optimum
 * point of Figure 8.
 */

#ifndef LIGHTLLM_CORE_ORACLE_SCHEDULER_HH
#define LIGHTLLM_CORE_ORACLE_SCHEDULER_HH

#include <vector>

#include "core/future_memory.hh"
#include "core/scheduler.hh"

namespace lightllm {
namespace core {

/** Future-memory admission with perfect output-length knowledge. */
class OracleScheduler : public Scheduler
{
  public:
    OracleScheduler() = default;

    void beginAdmissionRound(const SchedulerContext &ctx) override;

    bool tryAdmit(const WaitingView &candidate) override;

    std::string name() const override;

  private:
    std::vector<BatchEntry> entries_;
    std::vector<BatchEntry> scratch_;

    // Admission-round state.
    TokenCount capacity_ = 0;
    TokenCount perRequestOverhead_ = 0;
};

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_ORACLE_SCHEDULER_HH
