/**
 * @file
 * Construction of schedulers from a declarative configuration,
 * used by the engine builder, the benches, and the examples.
 */

#ifndef LIGHTLLM_CORE_SCHEDULER_FACTORY_HH
#define LIGHTLLM_CORE_SCHEDULER_FACTORY_HH

#include <memory>

#include "core/past_future_scheduler.hh"
#include "core/queue_policy.hh"
#include "core/sched_node.hh"
#include "core/scheduler.hh"
#include "core/scheduling_policy.hh"

namespace lightllm {
namespace core {

/** Which admission policy to build. */
enum class SchedulerKind
{
    Conservative,
    Aggressive,
    PastFuture,
    Oracle,
};

/** Declarative scheduler configuration. */
struct SchedulerConfig
{
    SchedulerKind kind = SchedulerKind::PastFuture;

    /** Conservative: capacity multiplier. */
    double overcommit = 1.0;

    /** Aggressive: admission watermark. */
    double watermark = 0.95;

    /** Past-Future tunables. */
    PastFutureParams pastFuture;

    /** Queue-ordering policy (FCFS reproduces the seed pipeline). */
    QueuePolicyConfig queue;

    /** Route the queue through a per-tenant scheduler-node tree
     *  (fair root built from `tenantSpec`, `queue` ordering inside
     *  each tenant). Off reproduces the flat pipeline bit-exactly. */
    bool tenantTree = false;

    /** Shape of the tenant tree when tenantTree is set. */
    TenantTreeSpec tenantSpec;

    // Convenience named constructors for the paper's configurations.
    static SchedulerConfig conservative(double overcommit = 1.0);
    static SchedulerConfig aggressive(double watermark = 0.95);
    static SchedulerConfig pastFutureDefault(
        double reserved_ratio = 0.03);
    static SchedulerConfig oracle();
};

/** Instantiate the configured admission scheduler alone. */
std::unique_ptr<Scheduler> makeScheduler(const SchedulerConfig &config);

/** Instantiate the full pipeline: admission + queue policy. */
std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const SchedulerConfig &config);

/** Short lowercase label for the kind ("conservative", ...). */
const char *schedulerKindName(SchedulerKind kind);

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_SCHEDULER_FACTORY_HH
