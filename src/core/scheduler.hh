/**
 * @file
 * Request-scheduler interface for continuous batching.
 *
 * Once per engine iteration the scheduler is shown the running batch
 * and the waiting queue and decides which queued requests fit in
 * memory. The interface is an *incremental admission round*: the
 * caller opens a round over the context, then feasibility-tests
 * candidates one at a time in whatever order the queue policy
 * dictates (see scheduling_policy.hh). Each accepted candidate is
 * committed into the round's running state so later tests see it as
 * admitted. Algorithm 1's FCFS-prefix semantics — walk S_q in order
 * and stop at the first request that does not fit — is recovered by
 * the selectAdmissions() helper.
 */

#ifndef LIGHTLLM_CORE_SCHEDULER_HH
#define LIGHTLLM_CORE_SCHEDULER_HH

#include <cstdint>
#include <span>
#include <string>

#include "base/request_class.hh"
#include "base/types.hh"

namespace lightllm {
namespace core {

/** Scheduler's view of one request in the running batch. */
struct RunningView
{
    RequestId id = kInvalidRequestId;

    /** Prompt length l_p. */
    TokenCount promptLen = 0;

    /** Tokens generated so far, l_t. */
    TokenCount generatedLen = 0;

    /** Generation cap for this request. */
    TokenCount maxNewTokens = 0;

    /**
     * Ground-truth output length. Only the oracle ("theoretical
     * optimum") scheduler may read this; real schedulers must not.
     */
    TokenCount trueOutputLen = 0;

    /** Admission-order stamp (monotone; for eviction-victim
     *  policies: largest = most recently admitted). */
    std::uint64_t admitSeq = 0;

    /** Scheduling class (tenant, priority, SLO tier). */
    base::RequestClass cls;

    /** Admitted but still prefilling — holds KV and will generate,
     *  but is not an eligible eviction victim. */
    bool prefilling = false;

    /**
     * Prompt tokens resident in *shared* prefix-cache blocks. They
     * cost no private memory, so memory-exact policies charge
     * promptLen - cachedPrefixLen for this request's resident
     * prompt (0 when prefix caching is off — the seed arithmetic).
     */
    TokenCount cachedPrefixLen = 0;
};

/** Scheduler's view of one queued request. */
struct WaitingView
{
    RequestId id = kInvalidRequestId;

    /** Prompt length l_p. */
    TokenCount promptLen = 0;

    /**
     * Tokens already generated before an eviction (> 0 only for
     * re-queued requests, whose recompute prefill must cover
     * prompt + generated tokens).
     */
    TokenCount generatedLen = 0;

    /** Generation cap for this request. */
    TokenCount maxNewTokens = 0;

    /** Arrival tick (for age-based policies). */
    Tick arrival = 0;

    /** Ground-truth output length; oracle use only. */
    TokenCount trueOutputLen = 0;

    /** Scheduling class (tenant, priority, SLO tier). */
    base::RequestClass cls;

    /**
     * Prompt tokens the prefix cache would cover if this request
     * were admitted now — an estimate, like the output-length
     * predictions: concurrent prefills can warm the cache further,
     * and a reclaim triggered by an earlier admission in the same
     * round can cool it. Admission charges only the uncached
     * suffix, promptLen + generatedLen - cachedPrefixLen; the
     * engine's allocation remains the safety backstop when the
     * actual match is smaller.
     */
    TokenCount cachedPrefixLen = 0;
};

/** Everything a scheduler may inspect when deciding admissions. */
struct SchedulerContext
{
    /** Current simulation tick. */
    Tick now = 0;

    /** Total KV token capacity of the system. */
    TokenCount capacityTokens = 0;

    /** KV token slots currently allocated. */
    TokenCount usedTokens = 0;

    /**
     * Worst-case token overhead per resident request beyond its
     * logical footprint (paged-allocator block rounding plus the
     * slot the admission prefill emits into). Memory-exact policies
     * must budget `overhead * batch_size` on top of Eq. 4's M*.
     */
    TokenCount perRequestOverhead = 0;

    /** Running batch, arbitrary order. */
    std::span<const RunningView> running;

    /** Waiting queue, front (next to admit) first. */
    std::span<const WaitingView> waiting;
};

/**
 * Abstract memory-feasibility (admission) policy.
 *
 * Implementations are stateful within one admission round: an
 * accepted candidate raises the committed footprint that subsequent
 * candidates are tested against. Rounds must be deterministic given
 * the construction-time seed and the order of tryAdmit calls.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Open an admission round over `ctx`: reset incremental state
     * and charge the running batch's (predicted) footprint.
     */
    virtual void beginAdmissionRound(const SchedulerContext &ctx) = 0;

    /**
     * Feasibility-test `candidate` against the round's committed
     * state; on success the candidate is committed as admitted.
     * `candidate` must refer to an entry of the round's
     * ctx.waiting.
     */
    virtual bool tryAdmit(const WaitingView &candidate) = 0;

    /**
     * Number of requests to admit from the front of ctx.waiting
     * (0 admits nothing) — Algorithm 1's FCFS-prefix semantics,
     * expressed over the round API: walk the queue in order and
     * stop at the first candidate that does not fit.
     */
    std::size_t selectAdmissions(const SchedulerContext &ctx);

    /**
     * Notification that request `id` finished with `output_len`
     * generated tokens (feeds the historical distribution).
     */
    virtual void onRequestFinished(RequestId id,
                                   TokenCount output_len);

    /** Notification that a request was evicted from the batch. */
    virtual void onRequestEvicted(RequestId id);

    /**
     * Read-only estimate of request `id`'s final output length —
     * the introspection twin of the internal prediction, used by
     * the flight recorder and the prediction-audit counters.
     * Implementations MUST NOT mutate observable scheduler state
     * (no RNG draws, no per-request bookkeeping), so calling this
     * any number of times leaves a run bit-identical to one that
     * never called it. The default returns the generation cap.
     */
    virtual TokenCount peekPrediction(RequestId id,
                                      TokenCount generated_len,
                                      TokenCount max_new_tokens);

    /**
     * Estimated total memory load of this instance in tokens —
     * the signal the paper's future-work section proposes for
     * routing requests across service instances. The default is the
     * current resident footprint plus the queued prompts; the
     * Past-Future scheduler overrides it with its predicted future
     * peak plus predicted queue footprints.
     */
    virtual TokenCount estimateLoad(const SchedulerContext &ctx);

    /** Human-readable policy name for reports. */
    virtual std::string name() const = 0;
};

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_SCHEDULER_HH
