/**
 * @file
 * Pluggable waiting-queue ordering policies.
 *
 * The scheduling pipeline separates *which order the queue is
 * considered in* (this file) from *whether each candidate fits in
 * memory* (the Scheduler admission round). Orderings:
 *
 *  - FCFS: queue order, Algorithm 1's baseline (evicted requests
 *    re-queue at the front and so retain their head position);
 *  - Predicted-SJF: shortest predicted remaining output first,
 *    using the same past-window length distribution that drives
 *    Past-Future admission ("Efficient Interactive LLM Serving with
 *    Proxy Model-based Sequence Length Prediction" argues the win);
 *  - EDF: earliest TTFT deadline (arrival + ttftDeadline) first
 *    ("SLO-Aware Scheduling for Large Language Model Inferences");
 *  - Priority: higher RequestSpec priority class first, FCFS within
 *    a class.
 *
 * A policy may also rank eviction victims (victimOrder); the
 * default reproduces the engine's admission-order LIFO/FIFO scan,
 * and the priority policy shields higher classes from eviction.
 */

#ifndef LIGHTLLM_CORE_QUEUE_POLICY_HH
#define LIGHTLLM_CORE_QUEUE_POLICY_HH

#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "core/length_predictor.hh"
#include "core/scheduler.hh"

namespace lightllm {
namespace core {

/** Which queue ordering to build. */
enum class QueuePolicyKind
{
    Fcfs,
    PredictedSjf,
    Edf,
    Priority,
};

/** Tie-break direction for eviction-victim ranking (maps the
 *  engine's LIFO/FIFO eviction config into the core layer). */
enum class VictimOrder
{
    /** Most recently admitted first (vLLM-style recompute). */
    NewestFirst,

    /** Oldest admission first. */
    OldestFirst,
};

/** Declarative queue-policy configuration. */
struct QueuePolicyConfig
{
    QueuePolicyKind kind = QueuePolicyKind::Fcfs;

    /** Predicted-SJF: past-window size of the length predictor. */
    std::size_t predictorWindow = 1000;

    /** Predicted-SJF: cold-start seed length (0 disables), as for
     *  the Past-Future scheduler's window. */
    TokenCount seedOutputLen = 0;

    /** Predicted-SJF: number of seeded entries at cold start. */
    std::size_t seedCount = 32;

    /** EDF: base TTFT budget; a request's deadline is arrival +
     *  ttftDeadline / 2^priority (higher classes get tighter
     *  deadlines). 0 degenerates to arrival order. */
    Tick ttftDeadline = 0;
};

/** Abstract waiting-queue ordering (and victim-ranking) policy. */
class QueuePolicy
{
  public:
    virtual ~QueuePolicy() = default;

    virtual QueuePolicyKind kind() const = 0;

    /**
     * Fill `out` with indices into ctx.waiting in the order
     * admission should consider them. Must be a permutation of
     * [0, ctx.waiting.size()) and deterministic.
     */
    virtual void order(const SchedulerContext &ctx,
                       std::vector<std::size_t> &out) = 0;

    /**
     * Fill `out` with the ids of ctx.running ranked most-evictable
     * first (callers pass only evictable, i.e. non-prefilling,
     * entries). The default ranks purely by admission order per
     * `tie_break`; the priority policy shields higher classes.
     * Ranking is stable over ctx.running order, so the front
     * element is exactly the victim the historical first-minimal
     * scan selected.
     */
    virtual void victimOrder(const SchedulerContext &ctx,
                             VictimOrder tie_break,
                             std::vector<RequestId> &out) const;

    /** Completion feed (the predicted-SJF past window). */
    virtual void onRequestFinished(RequestId id,
                                   TokenCount output_len);

    /** Human-readable policy name for reports. */
    virtual std::string name() const = 0;
};

/** Instantiate the configured queue policy. */
std::unique_ptr<QueuePolicy>
makeQueuePolicy(const QueuePolicyConfig &config);

/** Short lowercase label for the kind ("fcfs", "sjf", ...). */
const char *queuePolicyKindName(QueuePolicyKind kind);

/**
 * Parse a lowercase label into a kind.
 *
 * @return false when `text` names no known policy.
 */
bool parseQueuePolicyKind(const std::string &text,
                          QueuePolicyKind &out);

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_QUEUE_POLICY_HH
