#include "core/scheduler_factory.hh"

#include "base/logging.hh"
#include "core/aggressive_scheduler.hh"
#include "core/conservative_scheduler.hh"
#include "core/oracle_scheduler.hh"
#include "core/tenant_tree_policy.hh"

namespace lightllm {
namespace core {

SchedulerConfig
SchedulerConfig::conservative(double overcommit)
{
    SchedulerConfig config;
    config.kind = SchedulerKind::Conservative;
    config.overcommit = overcommit;
    return config;
}

SchedulerConfig
SchedulerConfig::aggressive(double watermark)
{
    SchedulerConfig config;
    config.kind = SchedulerKind::Aggressive;
    config.watermark = watermark;
    return config;
}

SchedulerConfig
SchedulerConfig::pastFutureDefault(double reserved_ratio)
{
    SchedulerConfig config;
    config.kind = SchedulerKind::PastFuture;
    config.pastFuture.reservedRatio = reserved_ratio;
    return config;
}

SchedulerConfig
SchedulerConfig::oracle()
{
    SchedulerConfig config;
    config.kind = SchedulerKind::Oracle;
    return config;
}

std::unique_ptr<Scheduler>
makeScheduler(const SchedulerConfig &config)
{
    switch (config.kind) {
      case SchedulerKind::Conservative:
        return std::make_unique<ConservativeScheduler>(
            config.overcommit);
      case SchedulerKind::Aggressive:
        return std::make_unique<AggressiveScheduler>(
            config.watermark);
      case SchedulerKind::PastFuture:
        return std::make_unique<PastFutureScheduler>(
            config.pastFuture);
      case SchedulerKind::Oracle:
        return std::make_unique<OracleScheduler>();
    }
    panic("unknown scheduler kind");
}

std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const SchedulerConfig &config)
{
    if (config.tenantTree) {
        return std::make_unique<TreeSchedulingPolicy>(
            makeScheduler(config),
            tenantFairTree(config.tenantSpec, config.queue));
    }
    return std::make_unique<SchedulingPolicy>(
        makeScheduler(config), makeQueuePolicy(config.queue));
}

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Conservative:
        return "conservative";
      case SchedulerKind::Aggressive:
        return "aggressive";
      case SchedulerKind::PastFuture:
        return "past-future";
      case SchedulerKind::Oracle:
        return "oracle";
    }
    return "unknown";
}

} // namespace core
} // namespace lightllm
