/**
 * @file
 * Composable scheduler-node tree over the waiting queue.
 *
 * The flat pipeline orders ctx.waiting with one QueuePolicy; this
 * tree composes orderings hierarchically, the mechanism ClickHouse
 * uses for workload isolation (FairPolicy / UnifiedSchedulerNode).
 * Inner nodes are disciplines, leaves hold requests:
 *
 *  - fair: weighted fair queueing over children by vruntime — each
 *    pop charges the chosen child cost / weight, and the child with
 *    the smallest virtual time runs next, so long-run service
 *    shares converge to the weights under saturation;
 *  - priority: strict ordering — a child is served only when every
 *    higher-priority sibling has nothing eligible;
 *  - throttler: token-bucket rate limit over the sim clock (credit
 *    accrues at tokensPerSecond up to burstTokens; a candidate is
 *    eligible only when credit covers its cost, and decode usage is
 *    post-paid through accountUsage, driving credit negative);
 *  - semaphore: at most maxInFlight admitted-but-unfinished
 *    requests in the subtree;
 *  - leaf: wraps a QueuePolicy, so fcfs / predicted-sjf / edf still
 *    order requests *within* a tenant.
 *
 * A round is: beginRound(ctx), route each waiting index to its
 * leaf (enqueue), then alternate peek / pop until the admission
 * policy rejects. Cross-round accounting (finish tokens, in-flight
 * release) is keyed by tenant and routed down the serving subtree.
 */

#ifndef LIGHTLLM_CORE_SCHED_NODE_HH
#define LIGHTLLM_CORE_SCHED_NODE_HH

#include <memory>
#include <string>
#include <vector>

#include "base/request_class.hh"
#include "base/types.hh"
#include "core/queue_policy.hh"
#include "core/scheduler.hh"

namespace lightllm {
namespace core {

/** Declarative description of one node (and its subtree). */
struct SchedNodeConfig
{
    enum class Kind
    {
        Fair,
        Priority,
        Throttler,
        Semaphore,
        Leaf,
    };

    Kind kind = Kind::Leaf;

    /** Report / debug label. */
    std::string name = "node";

    /** Service share under a fair parent (> 0). */
    double weight = 1.0;

    /** Rank under a priority parent (higher = served first). */
    int priority = 0;

    /** Throttler: sustained token rate (tokens/sec; must be > 0
     *  for a throttler node). */
    double tokensPerSecond = 0.0;

    /** Throttler: bucket capacity (burst credit), tokens. */
    TokenCount burstTokens = 0;

    /** Semaphore: max admitted-but-unfinished requests (> 0). */
    std::size_t maxInFlight = 0;

    /** Leaf: the in-tenant ordering. */
    QueuePolicyConfig queue;

    /** Leaf: tenants routed to this leaf. Empty = catch-all. */
    std::vector<base::TenantId> tenants;

    /** Inner nodes: subtrees (leaves must have none). */
    std::vector<SchedNodeConfig> children;
};

class LeafSchedNode;

/** One node of the scheduler tree. */
class SchedNode
{
  public:
    explicit SchedNode(std::string name) : name_(std::move(name)) {}
    virtual ~SchedNode() = default;

    const std::string &name() const { return name_; }

    /** Reset per-round state down the subtree. The context stays
     *  alive for the whole round. */
    virtual void beginRound(const SchedulerContext &ctx) = 0;

    /**
     * Report the next candidate of the subtree as an index into
     * the round's ctx.waiting.
     *
     * @param force Ignore throttler credit and semaphore limits —
     *        the idle force-admit backstop, which must always find
     *        a candidate when any leaf is non-empty.
     * @return false when the subtree is empty or gated.
     */
    virtual bool peek(Tick now, bool force, std::size_t &index) = 0;

    /**
     * Pop the candidate the immediately preceding peek() reported,
     * charging `cost` tokens (its prefill footprint) to fair
     * vruntimes and throttler buckets on the path.
     */
    virtual void pop(Tick now, TokenCount cost) = 0;

    /** True when `tenant` routes into this subtree. */
    virtual bool servesTenant(base::TenantId tenant) const = 0;

    /**
     * Charge `tokens` of completed service (decode output) for
     * `tenant`: fair nodes advance the serving child's vruntime,
     * throttlers post-pay the bucket (credit may go negative).
     */
    virtual void accountUsage(base::TenantId tenant,
                              TokenCount tokens) = 0;

    /** A request of `tenant` was admitted (semaphore acquire). */
    virtual void onAdmitted(base::TenantId tenant) = 0;

    /** A request of `tenant` finished or was evicted (release). */
    virtual void onReleased(base::TenantId tenant) = 0;

    /** Completion feed for leaf queue policies (SJF predictors). */
    virtual void onRequestFinished(base::TenantId tenant,
                                   RequestId id,
                                   TokenCount output_len) = 0;

    /** Collect the subtree's leaves in declaration order. */
    virtual void collectLeaves(std::vector<LeafSchedNode *> &out) = 0;

  private:
    std::string name_;
};

/** Leaf: request holder ordered by a wrapped QueuePolicy. */
class LeafSchedNode final : public SchedNode
{
  public:
    LeafSchedNode(std::string name, const QueuePolicyConfig &queue,
                  std::vector<base::TenantId> tenants);

    /** Route one ctx.waiting index here for the current round. */
    void enqueue(std::size_t index);

    const std::vector<base::TenantId> &tenants() const
    {
        return tenants_;
    }

    void beginRound(const SchedulerContext &ctx) override;
    bool peek(Tick now, bool force, std::size_t &index) override;
    void pop(Tick now, TokenCount cost) override;
    bool servesTenant(base::TenantId tenant) const override;
    void accountUsage(base::TenantId tenant,
                      TokenCount tokens) override;
    void onAdmitted(base::TenantId tenant) override;
    void onReleased(base::TenantId tenant) override;
    void onRequestFinished(base::TenantId tenant, RequestId id,
                           TokenCount output_len) override;
    void collectLeaves(std::vector<LeafSchedNode *> &out) override;

  private:
    /** Order pending_ with the queue policy (lazy, per round). */
    void seal();

    std::unique_ptr<QueuePolicy> queue_;
    std::vector<base::TenantId> tenants_;

    const SchedulerContext *ctx_ = nullptr;
    std::vector<std::size_t> pending_;
    std::vector<std::size_t> ordered_;
    std::size_t cursor_ = 0;
    bool sealed_ = false;

    /** Scratch for the leaf-local ordering context. */
    std::vector<WaitingView> viewScratch_;
    std::vector<std::size_t> orderScratch_;
};

/**
 * Build a node tree from its declarative description.
 *
 * Fatal on malformed configs (inner node without children, leaf
 * with children, non-positive fair weight or throttle rate).
 */
std::unique_ptr<SchedNode>
makeSchedNode(const SchedNodeConfig &config);

/** Canonical per-tenant subtree shape for the fair tenant tree. */
struct TenantTreeSpec
{
    /** Per-tenant fair weights; index = tenant id. Tenants beyond
     *  the vector (or an empty vector) get weight 1.0. */
    std::vector<double> weights;

    /** Number of tenant subtrees (>= 1). When weights is larger,
     *  its size wins. */
    std::size_t numTenants = 1;

    /** Per-tenant token-rate budget (0 = no throttler node). */
    double tokensPerSecond = 0.0;

    /** Throttler burst credit (defaults to one second of rate). */
    TokenCount burstTokens = 0;

    /** Per-tenant in-flight cap (0 = no semaphore node). */
    std::size_t maxInFlight = 0;
};

/**
 * Fair root over one subtree per tenant: fair(weight_t) →
 * [throttler] → [semaphore] → leaf(queue). The canonical tree the
 * --tenant-tree CLI path builds.
 */
SchedNodeConfig tenantFairTree(const TenantTreeSpec &spec,
                               const QueuePolicyConfig &queue);

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_SCHED_NODE_HH
