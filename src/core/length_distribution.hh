/**
 * @file
 * Empirical output-length distribution P(l) (Eq. 1) with sampling.
 *
 * P(l) = C(l, L_h) / w over the history window L_h. The scheduler
 * needs two draws:
 *
 *  - for queued requests, a sample from P(l);
 *  - for running requests that have already generated l_t tokens, a
 *    sample from the conditional tail P(l | l > l_t) — the paper's
 *    per-step resampling that keeps predictions ahead of reality.
 *
 * Lengths are kept sorted so tail sampling is a binary search plus a
 * uniform pick.
 */

#ifndef LIGHTLLM_CORE_LENGTH_DISTRIBUTION_HH
#define LIGHTLLM_CORE_LENGTH_DISTRIBUTION_HH

#include <vector>

#include "base/rng.hh"
#include "base/types.hh"

namespace lightllm {
namespace core {

/** Sorted empirical distribution over token lengths. */
class LengthDistribution
{
  public:
    LengthDistribution() = default;

    /** Build from raw (unsorted) observed lengths. */
    explicit LengthDistribution(std::vector<TokenCount> lengths);

    /**
     * Insert one observation, keeping sorted order. Together with
     * eraseValue this yields exactly the distribution a full
     * rebuild would produce (the sorted vector and the prefix sums
     * depend only on the multiset of values), without the O(w log w)
     * snapshot-and-sort per finished request.
     */
    void insertValue(TokenCount value);

    /** Remove one occurrence of `value` (which must be present). */
    void eraseValue(TokenCount value);

    bool empty() const { return sorted_.empty(); }
    std::size_t size() const { return sorted_.size(); }

    /** Draw from P(l); requires a non-empty distribution. */
    TokenCount sample(Rng &rng) const;

    /**
     * Draw from the conditional tail P(l | l > greater_than).
     * Returns `fallback` when no recorded length exceeds
     * `greater_than` (the request has outlived all history — the
     * safe prediction is the generation cap).
     */
    TokenCount sampleTail(Rng &rng, TokenCount greater_than,
                          TokenCount fallback) const;

    /**
     * Inverse-CDF evaluation of the conditional tail: the element at
     * uniform position u in [0, 1) of P(l | l > greater_than). With
     * u ~ Uniform this is distributed exactly as sampleTail, but a
     * *fixed* u yields a deterministic, monotone update as
     * greater_than grows (quantile coupling). Returns `fallback`
     * when the tail is empty.
     */
    TokenCount sampleTailAt(double u, TokenCount greater_than,
                            TokenCount fallback) const;

    /** Fraction of recorded lengths strictly greater than x. */
    double probGreater(TokenCount x) const;

    /**
     * Mean of the conditional tail E[l | l > greater_than]; returns
     * `fallback` when no recorded length exceeds `greater_than`.
     */
    TokenCount tailMean(TokenCount greater_than,
                        TokenCount fallback) const;

    /**
     * Quantile q (nearest rank) of the conditional tail
     * P(l | l > greater_than); `fallback` when the tail is empty.
     */
    TokenCount tailQuantile(TokenCount greater_than, double q,
                            TokenCount fallback) const;

    /**
     * Smallest recorded length at or above quantile q in [0, 1]
     * (nearest rank); 0 when empty.
     */
    TokenCount quantile(double q) const;

    /** Largest recorded length; 0 when empty. */
    TokenCount maxLength() const;

    /** Mean recorded length; 0 when empty. */
    double meanLength() const;

  private:
    /** Recompute prefixSums_ if a mutation invalidated them. The
     *  rebuild is the same left-to-right summation the constructor
     *  performs, so lazily refreshed sums are bit-identical to a
     *  from-scratch build. */
    void ensureSums() const;

    std::vector<TokenCount> sorted_;

    /** Prefix sums of sorted_ for O(log n) tail means; rebuilt
     *  lazily after insertValue/eraseValue (mean queries are far
     *  rarer than observations on the serving hot path). */
    mutable std::vector<double> prefixSums_;
    mutable bool sumsDirty_ = false;
};

} // namespace core
} // namespace lightllm

#endif // LIGHTLLM_CORE_LENGTH_DISTRIBUTION_HH
