#include "core/conservative_scheduler.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/str_util.hh"

namespace lightllm {
namespace core {

ConservativeScheduler::ConservativeScheduler(double overcommit)
    : overcommit_(overcommit)
{
    LIGHTLLM_ASSERT(overcommit > 0.0, "overcommit must be positive");
}

std::size_t
ConservativeScheduler::selectAdmissions(const SchedulerContext &ctx)
{
    const auto limit = static_cast<TokenCount>(
        static_cast<double>(ctx.capacityTokens) * overcommit_);

    // Worst case for every running request: it reaches its cap.
    TokenCount committed = 0;
    for (const auto &request : ctx.running)
        committed += request.promptLen + request.maxNewTokens;

    std::size_t admitted = 0;
    for (const auto &candidate : ctx.waiting) {
        // generatedLen counts toward maxNewTokens, so the worst-case
        // footprint of a re-queued request is unchanged.
        const TokenCount need =
            candidate.promptLen + candidate.maxNewTokens;
        if (committed + need > limit)
            break;
        committed += need;
        ++admitted;
    }
    return admitted;
}

std::string
ConservativeScheduler::name() const
{
    if (overcommit_ == 1.0)
        return "Conservative";
    return "Conservative(overcommit=" +
        formatPercent(overcommit_, 0) + ")";
}

} // namespace core
} // namespace lightllm
