#include "core/conservative_scheduler.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/str_util.hh"

namespace lightllm {
namespace core {

ConservativeScheduler::ConservativeScheduler(double overcommit)
    : overcommit_(overcommit)
{
    LIGHTLLM_ASSERT(overcommit > 0.0, "overcommit must be positive");
}

void
ConservativeScheduler::beginAdmissionRound(const SchedulerContext &ctx)
{
    limit_ = static_cast<TokenCount>(
        static_cast<double>(ctx.capacityTokens) * overcommit_);

    // Worst case for every running request: it reaches its cap.
    // Shared prefix blocks are charged to whoever brought them in,
    // not to every sharer.
    committed_ = 0;
    for (const auto &request : ctx.running) {
        committed_ += request.promptLen - request.cachedPrefixLen +
            request.maxNewTokens;
    }
}

bool
ConservativeScheduler::tryAdmit(const WaitingView &candidate)
{
    // generatedLen counts toward maxNewTokens, so the worst-case
    // footprint of a re-queued request is unchanged.
    const TokenCount need = candidate.promptLen -
        candidate.cachedPrefixLen + candidate.maxNewTokens;
    if (committed_ + need > limit_)
        return false;
    committed_ += need;
    return true;
}

std::string
ConservativeScheduler::name() const
{
    if (overcommit_ == 1.0)
        return "Conservative";
    return "Conservative(overcommit=" +
        formatPercent(overcommit_, 0) + ")";
}

} // namespace core
} // namespace lightllm
