#include "core/queue_policy.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lightllm {
namespace core {

namespace {

/** Admission-order comparator behind every victim tie-break. */
bool
admitOrderEvictsBefore(const RunningView &a, const RunningView &b,
                       VictimOrder tie_break)
{
    return tie_break == VictimOrder::NewestFirst
        ? a.admitSeq > b.admitSeq
        : a.admitSeq < b.admitSeq;
}

/**
 * Victim ranking over ctx.running: `before(a, b)` is the strict
 * "evict a before b" relation. Indices are sorted directly inside
 * `out` (RequestId is wide enough to hold any batch index) and then
 * mapped to ids in place, so ranking allocates nothing once `out`
 * has warmed up. Every ranking comparator bottoms out in the unique
 * admitSeq, making the relation a strict total order — plain
 * std::sort therefore yields the same permutation a stable sort
 * would, and out.front() still equals the first-minimal element a
 * linear evictBefore scan would have picked.
 */
template <typename Before>
void
rankVictims(const SchedulerContext &ctx, Before before,
            std::vector<RequestId> &out)
{
    out.resize(ctx.running.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<RequestId>(i);
    std::sort(out.begin(), out.end(),
              [&ctx, &before](RequestId a, RequestId b) {
                  return before(
                      ctx.running[static_cast<std::size_t>(a)],
                      ctx.running[static_cast<std::size_t>(b)]);
              });
    for (RequestId &entry : out)
        entry = ctx.running[static_cast<std::size_t>(entry)].id;
}

} // namespace

void
QueuePolicy::victimOrder(const SchedulerContext &ctx,
                         VictimOrder tie_break,
                         std::vector<RequestId> &out) const
{
    rankVictims(ctx,
                [tie_break](const RunningView &a,
                            const RunningView &b) {
                    return admitOrderEvictsBefore(a, b, tie_break);
                },
                out);
}

void
QueuePolicy::onRequestFinished(RequestId, TokenCount)
{
}

namespace {

/** Reset `out` to the identity permutation over ctx.waiting. */
void
identityOrder(const SchedulerContext &ctx,
              std::vector<std::size_t> &out)
{
    out.resize(ctx.waiting.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = i;
}

/** Queue order — Algorithm 1's baseline. */
class FcfsQueuePolicy final : public QueuePolicy
{
  public:
    QueuePolicyKind
    kind() const override
    {
        return QueuePolicyKind::Fcfs;
    }

    void
    order(const SchedulerContext &ctx,
          std::vector<std::size_t> &out) override
    {
        identityOrder(ctx, out);
    }

    std::string
    name() const override
    {
        return "FCFS";
    }
};

/** Shortest predicted remaining output first. */
class PredictedSjfQueuePolicy final : public QueuePolicy
{
  public:
    explicit PredictedSjfQueuePolicy(const QueuePolicyConfig &config)
        : predictor_(config.predictorWindow)
    {
        if (config.seedOutputLen > 0)
            predictor_.seed(config.seedOutputLen, config.seedCount);
    }

    QueuePolicyKind
    kind() const override
    {
        return QueuePolicyKind::PredictedSjf;
    }

    void
    order(const SchedulerContext &ctx,
          std::vector<std::size_t> &out) override
    {
        identityOrder(ctx, out);
        // Predicted remaining service: the recompute prefill the
        // request still owes (prompt + already-generated tokens)
        // plus its predicted remaining decode E[l | l > l_t] - l_t.
        // The prompt term is what differentiates fresh requests —
        // their conditional tails are identical, so a pure output
        // prediction would collapse into FCFS. Ties keep queue
        // order (stable sort).
        keys_.resize(ctx.waiting.size());
        for (std::size_t i = 0; i < ctx.waiting.size(); ++i) {
            const WaitingView &candidate = ctx.waiting[i];
            keys_[i] = candidate.promptLen +
                predictor_.expectedOutput(candidate.generatedLen,
                                          candidate.maxNewTokens);
        }
        std::stable_sort(out.begin(), out.end(),
                         [this](std::size_t a, std::size_t b) {
                             return keys_[a] < keys_[b];
                         });
    }

    void
    onRequestFinished(RequestId, TokenCount output_len) override
    {
        predictor_.observe(output_len);
    }

    std::string
    name() const override
    {
        return "Predicted-SJF";
    }

  private:
    LengthPredictor predictor_;
    std::vector<TokenCount> keys_;
};

/** Earliest TTFT deadline (arrival + class budget) first. */
class EdfQueuePolicy final : public QueuePolicy
{
  public:
    explicit EdfQueuePolicy(Tick ttft_deadline)
        : ttftDeadline_(ttft_deadline)
    {
        LIGHTLLM_ASSERT(ttft_deadline >= 0,
                        "TTFT deadline must be non-negative");
    }

    QueuePolicyKind
    kind() const override
    {
        return QueuePolicyKind::Edf;
    }

    void
    order(const SchedulerContext &ctx,
          std::vector<std::size_t> &out) override
    {
        identityOrder(ctx, out);
        std::stable_sort(
            out.begin(), out.end(),
            [&ctx, this](std::size_t a, std::size_t b) {
                return deadline(ctx.waiting[a]) <
                    deadline(ctx.waiting[b]);
            });
    }

    std::string
    name() const override
    {
        return "EDF";
    }

  private:
    /**
     * Deadline = arrival + TTFT budget, the budget halving per
     * priority class (class p gets budget / 2^p) — with one class
     * every request has the same budget and EDF reduces to arrival
     * order, so differentiated SLOs are what give EDF its teeth.
     */
    Tick
    deadline(const WaitingView &view) const
    {
        const int shift =
            std::clamp(view.cls.priority, 0, kMaxBudgetShift);
        return view.arrival + (ttftDeadline_ >> shift);
    }

    static constexpr int kMaxBudgetShift = 20;

    Tick ttftDeadline_;
};

/** Higher priority class first, FCFS within a class. */
class PriorityQueuePolicy final : public QueuePolicy
{
  public:
    QueuePolicyKind
    kind() const override
    {
        return QueuePolicyKind::Priority;
    }

    void
    order(const SchedulerContext &ctx,
          std::vector<std::size_t> &out) override
    {
        identityOrder(ctx, out);
        std::stable_sort(out.begin(), out.end(),
                         [&ctx](std::size_t a, std::size_t b) {
                             return ctx.waiting[a].cls.priority >
                                 ctx.waiting[b].cls.priority;
                         });
    }

    void
    victimOrder(const SchedulerContext &ctx, VictimOrder tie_break,
                std::vector<RequestId> &out) const override
    {
        // Shield higher classes: evict the lowest priority first,
        // admission order within a class.
        rankVictims(ctx,
                    [tie_break](const RunningView &a,
                                const RunningView &b) {
                        if (a.cls.priority != b.cls.priority)
                            return a.cls.priority < b.cls.priority;
                        return admitOrderEvictsBefore(a, b,
                                                      tie_break);
                    },
                    out);
    }

    std::string
    name() const override
    {
        return "Priority";
    }
};

} // namespace

std::unique_ptr<QueuePolicy>
makeQueuePolicy(const QueuePolicyConfig &config)
{
    switch (config.kind) {
      case QueuePolicyKind::Fcfs:
        return std::make_unique<FcfsQueuePolicy>();
      case QueuePolicyKind::PredictedSjf:
        return std::make_unique<PredictedSjfQueuePolicy>(config);
      case QueuePolicyKind::Edf:
        return std::make_unique<EdfQueuePolicy>(config.ttftDeadline);
      case QueuePolicyKind::Priority:
        return std::make_unique<PriorityQueuePolicy>();
    }
    panic("unknown queue policy kind");
}

const char *
queuePolicyKindName(QueuePolicyKind kind)
{
    switch (kind) {
      case QueuePolicyKind::Fcfs:
        return "fcfs";
      case QueuePolicyKind::PredictedSjf:
        return "sjf";
      case QueuePolicyKind::Edf:
        return "edf";
      case QueuePolicyKind::Priority:
        return "priority";
    }
    return "unknown";
}

bool
parseQueuePolicyKind(const std::string &text, QueuePolicyKind &out)
{
    if (text == "fcfs")
        out = QueuePolicyKind::Fcfs;
    else if (text == "sjf")
        out = QueuePolicyKind::PredictedSjf;
    else if (text == "edf")
        out = QueuePolicyKind::Edf;
    else if (text == "priority")
        out = QueuePolicyKind::Priority;
    else
        return false;
    return true;
}

} // namespace core
} // namespace lightllm
