/**
 * @file
 * Flight-recorder event vocabulary.
 *
 * A TraceEvent is a fixed-size POD stamped into a per-engine or
 * per-shard ring buffer on the simulation hot path; everything
 * string-like (event names, argument keys) is an enum resolved to
 * text only at export time. The vocabulary mirrors the Chrome
 * trace-event format so export is a direct mapping:
 *
 *   - Span (ph "B"/"E"): request lifecycle phases. Each request
 *     occupies its own Perfetto track (tid = request id + 1), and
 *     its phases are sequential (queued → prefill → decode, with
 *     eviction looping back to queued), so at most one span is open
 *     per track at any time.
 *   - Instant (ph "i"): point decisions — admission outcome,
 *     eviction (with cause), swap, migration, finish.
 *   - Counter (ph "C"): per-iteration engine telemetry on the
 *     engine's own track (tid 0) — batch size, KV used, true and
 *     predicted future-required memory, queue depth.
 *
 * See DESIGN.md §10 for the full taxonomy and the read-only
 * invariant that keeps traced runs byte-identical to untraced ones.
 */

#ifndef LIGHTLLM_TRACE_TRACE_EVENT_HH
#define LIGHTLLM_TRACE_TRACE_EVENT_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace lightllm {
namespace trace {

/**
 * How much the recorder captures. Each level is a superset of the
 * previous one; Off means no recorder is attached at all and every
 * hook compiles down to one branch on a null pointer.
 */
enum class TraceDetail : std::uint8_t
{
    Off,

    /** Per-request lifecycle spans and decision instants. */
    Requests,

    /** + per-iteration engine counters and admission-round
     *  outcomes. */
    Steps,

    /** + per-shard profiler samples (wall-clock compute vs
     *  barrier-wait, mailbox commits) for the sharded co-sim. */
    Full,
};

/** Parse a CLI spelling; returns false on an unknown name. */
bool parseTraceDetail(const std::string &text, TraceDetail *out);

/** CLI spelling of a detail level. */
const char *traceDetailName(TraceDetail detail);

/** Chrome trace-event phase of an event. */
enum class TracePhase : std::uint8_t
{
    Begin,   ///< ph "B" — span open
    End,     ///< ph "E" — span close
    Instant, ///< ph "i" — point event
    Counter, ///< ph "C" — sampled value
};

/** Event name (resolved to text at export time). */
enum class TraceName : std::uint8_t
{
    // Request lifecycle spans (tid = request id + 1).
    Queued,
    Prefill,
    Decode,

    // Request decision instants.
    Admit,
    Evict,
    SwapOut,
    SwapIn,
    Chunk,
    Migrated,
    Finish,
    Drained,

    // Engine-track (tid 0) telemetry.
    AdmissionRound,
    BatchSize,
    KvUsed,
    KvFutureTrue,
    KvFuturePred,
    QueueDepth,

    // Shard-profiler samples (shards pseudo-process, pid 0).
    ShardWindow,
    ShardCompute,
    ShardBarrier,
    MailboxCommit,
};

/** Export-time display name of an event. */
const char *traceName(TraceName name);

/**
 * Export-time argument key of event `name`'s arg<slot>, or nullptr
 * when the event carries fewer than slot+1 arguments.
 */
const char *traceArgKey(TraceName name, int slot);

/**
 * One recorded event. POD, fixed size, stamped by value into the
 * ring — recording never touches the allocator.
 */
struct TraceEvent
{
    /** Simulation tick (µs — maps 1:1 onto Chrome's ts field). */
    Tick tick = 0;

    /** Request this event belongs to; kInvalidRequestId puts the
     *  event on the engine's own track (tid 0). */
    RequestId id = kInvalidRequestId;

    /** Per-name arguments (see traceArgKey). */
    std::int64_t arg0 = 0;
    std::int64_t arg1 = 0;
    std::int64_t arg2 = 0;

    TraceName name = TraceName::Queued;
    TracePhase phase = TracePhase::Instant;
};

/** Eviction causes recorded in Evict instants (arg0). */
enum class EvictCause : std::int64_t
{
    /** Scheduler decided the eviction at an admission round. */
    Proactive = 0,

    /** The decode step could not extend the batch's KV. */
    Reactive = 1,
};

} // namespace trace
} // namespace lightllm

#endif // LIGHTLLM_TRACE_TRACE_EVENT_HH
