/**
 * @file
 * Export of recorded rings as Chrome trace-event JSON (Perfetto's
 * legacy JSON importer) and a per-request CSV timeline.
 *
 * Ring wraparound means a ring may start mid-span: an End whose
 * Begin was overwritten is skipped, a Begin arriving while the same
 * track still has an open span first synthesizes the missing End,
 * and spans still open when the ring ends are closed at the last
 * observed tick — so the emitted JSON always has matched B/E pairs
 * (pinned by test_trace).
 */

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <utility>

#include "trace/trace_recorder.hh"

namespace lightllm {
namespace trace {
namespace {

void
appendEscaped(std::string &out, const std::string &text)
{
    for (char c : text) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) >= 0x20) {
            out.push_back(c);
        }
    }
}

/** Streams one JSON event object per line into `os`. */
class EventWriter
{
  public:
    explicit EventWriter(std::ostream &os) : os_(os) {}

    void metadata(std::int32_t pid, std::int64_t tid,
                  const char *what, const std::string &value)
    {
        line_.clear();
        line_ += first_ ? "{\"ph\":\"M\",\"pid\":"
                        : ",\n{\"ph\":\"M\",\"pid\":";
        first_ = false;
        line_ += std::to_string(pid);
        line_ += ",\"tid\":";
        line_ += std::to_string(tid);
        line_ += ",\"name\":\"";
        line_ += what;
        line_ += "\",\"args\":{\"name\":\"";
        appendEscaped(line_, value);
        line_ += "\"}}";
        os_ << line_;
    }

    void event(char ph, std::int32_t pid, std::int64_t tid,
               Tick ts, TraceName name, const TraceEvent *args)
    {
        line_.clear();
        line_ += first_ ? "{\"ph\":\"" : ",\n{\"ph\":\"";
        first_ = false;
        line_.push_back(ph);
        line_ += "\",\"pid\":";
        line_ += std::to_string(pid);
        line_ += ",\"tid\":";
        line_ += std::to_string(tid);
        line_ += ",\"ts\":";
        line_ += std::to_string(ts);
        line_ += ",\"name\":\"";
        line_ += traceName(name);
        line_ += '"';
        if (ph == 'i')
            line_ += ",\"s\":\"t\"";
        if (args != nullptr) {
            line_ += ",\"args\":{";
            const std::int64_t values[3] = {args->arg0, args->arg1,
                                            args->arg2};
            bool any = false;
            for (int slot = 0; slot < 3; ++slot) {
                const char *key = traceArgKey(name, slot);
                if (key == nullptr)
                    continue;
                if (any)
                    line_ += ',';
                any = true;
                line_ += '"';
                line_ += key;
                line_ += "\":";
                line_ += std::to_string(values[slot]);
            }
            line_ += '}';
        }
        line_ += '}';
        os_ << line_;
    }

  private:
    std::ostream &os_;
    std::string line_;
    bool first_ = true;
};

std::int64_t
eventTid(const TraceEvent &event)
{
    // tid 0 is the engine's own track; requests each get their own
    // (request ids are non-negative, so id + 1 never collides).
    return event.id == kInvalidRequestId ? 0 : event.id + 1;
}

char
phaseChar(TracePhase phase)
{
    switch (phase) {
      case TracePhase::Begin: return 'B';
      case TracePhase::End: return 'E';
      case TracePhase::Instant: return 'i';
      case TracePhase::Counter: return 'C';
    }
    return 'i';
}

} // namespace

void
TraceRecorder::writeChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    EventWriter writer(os);

    for (const auto &engine : engines_) {
        writer.metadata(engine.pid(), 0, "process_name",
                        engine.label());
        writer.metadata(engine.pid(), 0, "thread_name", "engine");

        const TraceRing &ring = engine.ring();
        Tick last_tick = 0;
        // One span can be open per request track at a time (the
        // lifecycle phases are sequential), so open-span tracking
        // is a map keyed by request id.
        std::map<RequestId, TraceName> open;
        for (std::size_t i = 0; i < ring.size(); ++i) {
            const TraceEvent &event = ring.at(i);
            last_tick = std::max(last_tick, event.tick);
            const std::int64_t tid = eventTid(event);
            switch (event.phase) {
              case TracePhase::Begin:
              {
                auto [it, inserted] =
                    open.try_emplace(event.id, event.name);
                if (!inserted) {
                    // The matching End was overwritten by the ring;
                    // close the stale span so B/E stay paired.
                    writer.event('E', engine.pid(), tid,
                                 event.tick, it->second, nullptr);
                    it->second = event.name;
                }
                writer.event('B', engine.pid(), tid, event.tick,
                             event.name, &event);
                break;
              }
              case TracePhase::End:
              {
                auto it = open.find(event.id);
                if (it == open.end())
                    break;  // orphan End: Begin was overwritten
                writer.event('E', engine.pid(), tid, event.tick,
                             it->second, &event);
                open.erase(it);
                break;
              }
              case TracePhase::Instant:
              case TracePhase::Counter:
                writer.event(phaseChar(event.phase), engine.pid(),
                             tid, event.tick, event.name, &event);
                break;
            }
        }
        // Close spans still open at the end of the run (requests in
        // flight when the simulation stopped).
        for (const auto &[id, name] : open) {
            writer.event('E', engine.pid(),
                         id == kInvalidRequestId ? 0 : id + 1,
                         last_tick, name, nullptr);
        }
    }

    // Shard-profiler samples live in their own pseudo-process so
    // the wall-clock data never mixes with the simulation-stable
    // engine tracks.
    bool shard_meta = false;
    for (const auto &shard : shards_) {
        if (shard.ring().size() == 0)
            continue;
        if (!shard_meta) {
            writer.metadata(0, 0, "process_name", "shards");
            shard_meta = true;
        }
        writer.metadata(0, shard.tid(), "thread_name",
                        shard.label());
        const TraceRing &ring = shard.ring();
        for (std::size_t i = 0; i < ring.size(); ++i) {
            const TraceEvent &event = ring.at(i);
            writer.event('i', 0, shard.tid(), event.tick,
                         event.name, &event);
        }
    }

    os << "\n],\"otherData\":{\"dropped_events\":"
       << totalDropped() << "}}\n";
}

void
TraceRecorder::writeRequestCsv(std::ostream &os) const
{
    struct Row
    {
        Tick queued = -1;
        Tick admitted = -1;
        Tick prefillDone = -1;
        Tick finished = -1;
        std::int64_t predicted = -1;
        std::int64_t trueOutput = -1;
        std::int64_t generated = -1;
        std::int64_t evictions = -1;
    };
    // Keyed by (pid, id): a request re-dispatched to another engine
    // (drain, disagg migration) gets one row per engine that saw it.
    std::map<std::pair<std::int32_t, RequestId>, Row> rows;

    for (const auto &engine : engines_) {
        const TraceRing &ring = engine.ring();
        for (std::size_t i = 0; i < ring.size(); ++i) {
            const TraceEvent &event = ring.at(i);
            if (event.id == kInvalidRequestId)
                continue;
            Row &row = rows[{engine.pid(), event.id}];
            switch (event.name) {
              case TraceName::Queued:
                if (event.phase == TracePhase::Begin &&
                    row.queued < 0) {
                    row.queued = event.tick;
                    row.trueOutput = event.arg2;
                }
                break;
              case TraceName::Admit:
                if (row.admitted < 0) {
                    row.admitted = event.tick;
                    row.predicted = event.arg0;
                    row.trueOutput = event.arg1;
                }
                break;
              case TraceName::Prefill:
                if (event.phase == TracePhase::End)
                    row.prefillDone = event.tick;
                break;
              case TraceName::Finish:
                row.finished = event.tick;
                row.generated = event.arg0;
                row.predicted = event.arg1;
                row.evictions = event.arg2;
                break;
              default:
                break;
            }
        }
    }

    os << "request_id,engine,queued_us,admitted_us,"
          "prefill_done_us,finished_us,predicted_output,"
          "true_output,generated,evictions\n";
    auto cell = [&os](std::int64_t value) {
        os << ',';
        if (value >= 0)
            os << value;
    };
    for (const auto &[key, row] : rows) {
        os << key.second << ','
           << engines_[static_cast<std::size_t>(key.first - 1)]
                  .label();
        cell(row.queued);
        cell(row.admitted);
        cell(row.prefillDone);
        cell(row.finished);
        cell(row.predicted);
        cell(row.trueOutput);
        cell(row.generated);
        cell(row.evictions);
        os << '\n';
    }
}

bool
TraceRecorder::writeChromeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeJson(out);
    return static_cast<bool>(out);
}

bool
TraceRecorder::writeRequestCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeRequestCsv(out);
    return static_cast<bool>(out);
}

} // namespace trace
} // namespace lightllm
