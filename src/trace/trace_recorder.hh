/**
 * @file
 * The flight recorder: per-engine and per-shard trace sinks plus
 * Perfetto/CSV export.
 *
 * A TraceRecorder owns one ring buffer per attached engine (request
 * lifecycle + step telemetry) and per co-sim shard (profiler
 * samples). Sinks are created on the coordinator thread before (or
 * between) simulation windows and then written lock-free by their
 * owning shard thread; export runs after the run has quiesced.
 *
 * Tracing is read-only by contract: sinks observe engine state but
 * never feed anything back, so a traced run's RunReport is
 * byte-identical to an untraced one (pinned by test_trace). Track
 * identity is simulation-stable — pid is the engine's attachment
 * order and tid is the request id — so traces are also identical
 * across `--sim-threads` settings (wall-clock shard samples live in
 * a separate pseudo-process and only exist at detail=full).
 */

#ifndef LIGHTLLM_TRACE_TRACE_RECORDER_HH
#define LIGHTLLM_TRACE_TRACE_RECORDER_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>

#include "base/types.hh"
#include "trace/trace_event.hh"
#include "trace/trace_ring.hh"

namespace lightllm {
namespace trace {

/** Recorder tunables (CLI: --trace-detail / --trace-limit). */
struct TraceConfig
{
    TraceDetail detail = TraceDetail::Off;

    /** Ring capacity per sink, in events. */
    std::size_t ringCapacity = 1 << 16;
};

/**
 * Per-engine trace sink. Written only by the shard thread that owns
 * the engine; all methods are trivial stores into the ring.
 */
class EngineTrace
{
  public:
    EngineTrace(std::int32_t pid, std::string label,
                TraceDetail detail, std::size_t capacity)
        : ring_(capacity), label_(std::move(label)), pid_(pid),
          detail_(detail)
    {
    }

    /** Step-level telemetry (counters, admission rounds) on? */
    bool stepsEnabled() const
    {
        return detail_ >= TraceDetail::Steps;
    }

    /** Open a lifecycle span on request `id`'s track. */
    void begin(TraceName name, RequestId id, Tick tick,
               std::int64_t a0 = 0, std::int64_t a1 = 0,
               std::int64_t a2 = 0)
    {
        ring_.push(TraceEvent{tick, id, a0, a1, a2, name,
                              TracePhase::Begin});
    }

    /** Close the span opened with the same name on `id`'s track. */
    void end(TraceName name, RequestId id, Tick tick,
             std::int64_t a0 = 0, std::int64_t a1 = 0,
             std::int64_t a2 = 0)
    {
        ring_.push(TraceEvent{tick, id, a0, a1, a2, name,
                              TracePhase::End});
    }

    /** Point event on request `id`'s track (or the engine track
     *  when id is kInvalidRequestId). */
    void instant(TraceName name, RequestId id, Tick tick,
                 std::int64_t a0 = 0, std::int64_t a1 = 0,
                 std::int64_t a2 = 0)
    {
        ring_.push(TraceEvent{tick, id, a0, a1, a2, name,
                              TracePhase::Instant});
    }

    /** Sampled counter on the engine track. */
    void counter(TraceName name, Tick tick, std::int64_t value)
    {
        ring_.push(TraceEvent{tick, kInvalidRequestId, value, 0, 0,
                              name, TracePhase::Counter});
    }

    const TraceRing &ring() const { return ring_; }
    std::int32_t pid() const { return pid_; }
    const std::string &label() const { return label_; }

  private:
    TraceRing ring_;
    std::string label_;
    std::int32_t pid_;
    TraceDetail detail_;
};

/**
 * Per-shard profiler sink for the sharded co-sim (detail=full):
 * wall-clock compute vs barrier-wait per window, mailbox commit
 * counts. Written only by the owning worker thread (the coordinator
 * sink only by the coordinator).
 */
class ShardTrace
{
  public:
    ShardTrace(std::int32_t tid, std::string label,
               std::size_t capacity)
        : ring_(capacity), label_(std::move(label)), tid_(tid)
    {
    }

    /** Profiler sample: tick is simulation time, args wall-clock. */
    void sample(TraceName name, Tick tick, std::int64_t a0 = 0,
                std::int64_t a1 = 0, std::int64_t a2 = 0)
    {
        ring_.push(TraceEvent{tick, kInvalidRequestId, a0, a1, a2,
                              name, TracePhase::Instant});
    }

    const TraceRing &ring() const { return ring_; }
    std::int32_t tid() const { return tid_; }
    const std::string &label() const { return label_; }

  private:
    TraceRing ring_;
    std::string label_;
    std::int32_t tid_;
};

/** Owner of all trace sinks for one run, and the export entry. */
class TraceRecorder
{
  public:
    explicit TraceRecorder(TraceConfig config);

    TraceDetail detail() const { return config_.detail; }
    const TraceConfig &config() const { return config_; }

    /**
     * Attach a new engine sink; pid is assigned in call order
     * (deterministic: engines are created/adopted only on the
     * coordinator thread). Pointer stays valid for the recorder's
     * lifetime. Returns nullptr at detail=off.
     */
    EngineTrace *createEngine(std::string label);

    /**
     * Attach a shard-profiler sink (tid in call order; create the
     * coordinator's first, then one per shard). Returns nullptr
     * below detail=full.
     */
    ShardTrace *createShard(std::string label);

    const std::deque<EngineTrace> &engines() const
    {
        return engines_;
    }
    const std::deque<ShardTrace> &shards() const { return shards_; }

    /** Events dropped across all rings (ring wraparound). */
    std::uint64_t totalDropped() const;

    // --- Export (trace_export.cc); run must have quiesced. ----------

    /** Chrome trace-event JSON, loadable in Perfetto. */
    void writeChromeJson(std::ostream &os) const;

    /** Per-request timeline CSV (one row per observed request). */
    void writeRequestCsv(std::ostream &os) const;

    /** File variants; return false when the file cannot be opened. */
    bool writeChromeJsonFile(const std::string &path) const;
    bool writeRequestCsvFile(const std::string &path) const;

  private:
    TraceConfig config_;

    // Deques: sink pointers handed to engines/shards must survive
    // later attachments (autoscale provisions engines mid-run).
    std::deque<EngineTrace> engines_;
    std::deque<ShardTrace> shards_;
};

} // namespace trace
} // namespace lightllm

#endif // LIGHTLLM_TRACE_TRACE_RECORDER_HH
