#include "trace/trace_recorder.hh"

#include "base/logging.hh"

namespace lightllm {
namespace trace {

bool
parseTraceDetail(const std::string &text, TraceDetail *out)
{
    if (text == "off")
        *out = TraceDetail::Off;
    else if (text == "requests")
        *out = TraceDetail::Requests;
    else if (text == "steps")
        *out = TraceDetail::Steps;
    else if (text == "full")
        *out = TraceDetail::Full;
    else
        return false;
    return true;
}

const char *
traceDetailName(TraceDetail detail)
{
    switch (detail) {
      case TraceDetail::Off: return "off";
      case TraceDetail::Requests: return "requests";
      case TraceDetail::Steps: return "steps";
      case TraceDetail::Full: return "full";
    }
    return "off";
}

const char *
traceName(TraceName name)
{
    switch (name) {
      case TraceName::Queued: return "queued";
      case TraceName::Prefill: return "prefill";
      case TraceName::Decode: return "decode";
      case TraceName::Admit: return "admit";
      case TraceName::Evict: return "evict";
      case TraceName::SwapOut: return "swap_out";
      case TraceName::SwapIn: return "swap_in";
      case TraceName::Chunk: return "chunk";
      case TraceName::Migrated: return "migrated";
      case TraceName::Finish: return "finish";
      case TraceName::Drained: return "drained";
      case TraceName::AdmissionRound: return "admission_round";
      case TraceName::BatchSize: return "batch_size";
      case TraceName::KvUsed: return "kv_used";
      case TraceName::KvFutureTrue: return "kv_future_true";
      case TraceName::KvFuturePred: return "kv_future_pred";
      case TraceName::QueueDepth: return "queue_depth";
      case TraceName::ShardWindow: return "shard_window";
      case TraceName::ShardCompute: return "shard_compute";
      case TraceName::ShardBarrier: return "shard_barrier";
      case TraceName::MailboxCommit: return "mailbox_commit";
    }
    return "unknown";
}

const char *
traceArgKey(TraceName name, int slot)
{
    // Three-slot key table per event; nullptr = slot unused.
    static constexpr const char *kNone[3] = {nullptr, nullptr,
                                             nullptr};
    switch (name) {
      case TraceName::Queued:
      {
        static constexpr const char *k[3] = {
            "input_len", "predicted_output", "true_output"};
        return k[slot];
      }
      case TraceName::Prefill:
      {
        static constexpr const char *k[3] = {
            "prefill_tokens", "cached_prefix", "kv_used"};
        return k[slot];
      }
      case TraceName::Decode:
      {
        static constexpr const char *k[3] = {"generated", nullptr,
                                             nullptr};
        return k[slot];
      }
      case TraceName::Admit:
      {
        static constexpr const char *k[3] = {
            "predicted_output", "true_output", "queue_wait_us"};
        return k[slot];
      }
      case TraceName::Evict:
      {
        static constexpr const char *k[3] = {
            "cause", "generated", "eviction_no"};
        return k[slot];
      }
      case TraceName::SwapOut:
      case TraceName::SwapIn:
      {
        static constexpr const char *k[3] = {"tokens", nullptr,
                                             nullptr};
        return k[slot];
      }
      case TraceName::Chunk:
      {
        static constexpr const char *k[3] = {
            "chunk_tokens", "remaining_prompt", nullptr};
        return k[slot];
      }
      case TraceName::Migrated:
      {
        static constexpr const char *k[3] = {"migrated_prefix",
                                             nullptr, nullptr};
        return k[slot];
      }
      case TraceName::Finish:
      {
        static constexpr const char *k[3] = {
            "generated", "predicted_output", "evictions"};
        return k[slot];
      }
      case TraceName::Drained:
        return kNone[slot];
      case TraceName::AdmissionRound:
      {
        static constexpr const char *k[3] = {
            "admitted", "evicted", "queue_depth"};
        return k[slot];
      }
      case TraceName::BatchSize:
      case TraceName::KvUsed:
      case TraceName::KvFutureTrue:
      case TraceName::KvFuturePred:
      case TraceName::QueueDepth:
      {
        static constexpr const char *k[3] = {"value", nullptr,
                                             nullptr};
        return k[slot];
      }
      case TraceName::ShardWindow:
      {
        static constexpr const char *k[3] = {
            "window_end_us", "staged_steps", "window_no"};
        return k[slot];
      }
      case TraceName::ShardCompute:
      {
        static constexpr const char *k[3] = {
            "steps", "compute_ns", "window_no"};
        return k[slot];
      }
      case TraceName::ShardBarrier:
      {
        static constexpr const char *k[3] = {
            "wait_ns", "window_no", nullptr};
        return k[slot];
      }
      case TraceName::MailboxCommit:
      {
        static constexpr const char *k[3] = {
            "commits", "window_no", nullptr};
        return k[slot];
      }
    }
    return kNone[slot];
}

TraceRecorder::TraceRecorder(TraceConfig config)
    : config_(config)
{
    LIGHTLLM_ASSERT(config_.ringCapacity > 0,
                    "trace ring capacity must be positive");
}

EngineTrace *
TraceRecorder::createEngine(std::string label)
{
    if (config_.detail == TraceDetail::Off)
        return nullptr;
    const auto pid =
        static_cast<std::int32_t>(engines_.size() + 1);
    engines_.emplace_back(pid, std::move(label), config_.detail,
                          config_.ringCapacity);
    return &engines_.back();
}

ShardTrace *
TraceRecorder::createShard(std::string label)
{
    if (config_.detail < TraceDetail::Full)
        return nullptr;
    const auto tid = static_cast<std::int32_t>(shards_.size());
    shards_.emplace_back(tid, std::move(label),
                         config_.ringCapacity);
    return &shards_.back();
}

std::uint64_t
TraceRecorder::totalDropped() const
{
    std::uint64_t dropped = 0;
    for (const auto &engine : engines_)
        dropped += engine.ring().dropped();
    for (const auto &shard : shards_)
        dropped += shard.ring().dropped();
    return dropped;
}

} // namespace trace
} // namespace lightllm
