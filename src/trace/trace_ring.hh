/**
 * @file
 * Preallocated single-writer ring buffer of trace events.
 *
 * Capacity is fixed at construction (--trace-limit); when a run
 * emits more events than fit, the oldest are overwritten and
 * counted as dropped, so a trace always holds the *most recent*
 * window of activity — the part that explains how a run ended.
 *
 * Threading contract (same as MetricsCollector, DESIGN.md §9): a
 * ring is written by exactly one shard thread and read only after
 * the run has quiesced, so it needs no synchronization and the push
 * path is a store plus two increments.
 */

#ifndef LIGHTLLM_TRACE_TRACE_RING_HH
#define LIGHTLLM_TRACE_TRACE_RING_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace_event.hh"

namespace lightllm {
namespace trace {

/** Fixed-capacity overwrite-oldest event buffer. */
class TraceRing
{
  public:
    /** @param capacity Maximum retained events (> 0). */
    explicit TraceRing(std::size_t capacity)
        : events_(capacity)
    {
    }

    /** Record one event (overwrites the oldest when full). */
    void push(const TraceEvent &event)
    {
        events_[head_] = event;
        head_ = head_ + 1 == events_.size() ? 0 : head_ + 1;
        if (size_ < events_.size())
            ++size_;
        else
            ++dropped_;
    }

    /** Retained events (≤ capacity). */
    std::size_t size() const { return size_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    std::size_t capacity() const { return events_.size(); }

    /**
     * The i-th retained event in recording order (0 = oldest
     * survivor). Valid only after the writer has quiesced.
     */
    const TraceEvent &at(std::size_t i) const
    {
        std::size_t start =
            size_ < events_.size() ? 0 : head_;
        std::size_t index = start + i;
        if (index >= events_.size())
            index -= events_.size();
        return events_[index];
    }

  private:
    std::vector<TraceEvent> events_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace trace
} // namespace lightllm

#endif // LIGHTLLM_TRACE_TRACE_RING_HH
