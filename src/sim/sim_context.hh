/**
 * @file
 * Shared discrete-event simulation context.
 *
 * A SimContext owns the one clock and the one EventQueue of a
 * simulation. Actors (serving engines, routers, load generators,
 * drain triggers) schedule their occurrences here; the context
 * fires them in global (tick, class, FIFO) order and advances the
 * clock to each event's tick as it fires. Because *all* actors
 * share the ordering authority, a multi-instance co-simulation is
 * exact: no actor ever observes another actor's state from the
 * future (see DESIGN.md §3).
 *
 * The clock is monotonic: events can only be scheduled at or after
 * now(). Handlers may schedule, cancel, or reschedule further
 * events freely, including at the current tick (they fire later in
 * the same tick's FIFO order).
 *
 * Sharded mode (DESIGN.md §9): a ShardedSimContext may enroll a
 * context in one of two roles, neither of which changes the
 * default single-threaded behavior when no hub is attached:
 *
 *  - *root*: the coordinator's context. Its queue holds every
 *    Delivery-class event of the simulation (arrivals, completion
 *    notifications, drains, autoscale control, disagg handoffs) —
 *    the cross-shard traffic — and its run entry points
 *    (runNext/runToCompletion/empty/size) delegate to the hub so
 *    existing drivers (`ServingCluster::run`, the autoscaler's
 *    quiescence check) work unchanged.
 *  - *shard member*: a per-shard context engines attach to. Its
 *    queue holds only engine-local Step events; Delivery-class
 *    schedules are routed to the hub, which commits them to the
 *    root queue in deterministic global order. Handles returned
 *    for routed deliveries carry a tag bit so cancel(),
 *    reschedule(), pending(), and eventTick() transparently reach
 *    the root queue.
 */

#ifndef LIGHTLLM_SIM_SIM_CONTEXT_HH
#define LIGHTLLM_SIM_SIM_CONTEXT_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "sim/event_queue.hh"

namespace lightllm {
namespace sim {

class ShardedSimContext;

/** Shared clock + event queue driving one simulation. */
class SimContext
{
  public:
    SimContext() = default;

    SimContext(const SimContext &) = delete;
    SimContext &operator=(const SimContext &) = delete;

    /**
     * Current simulation time. For a plain context this is the tick
     * of the last fired event; a shard member also never lags the
     * coordinator's clock (its own clock only advances on local
     * Step events, but globally-ordered Delivery handlers run at
     * the coordinator's later tick).
     */
    Tick now() const;

    /** Schedule `handler` at absolute tick `when` (>= now()). */
    EventId schedule(Tick when, EventHandler handler,
                     EventClass cls = EventClass::Delivery);

    /** Cancel a pending event (see EventQueue::cancel). */
    bool cancel(EventId id);

    /** Move a pending event to `when` (>= now()). */
    bool reschedule(EventId id, Tick when);

    /** True while the event has not fired and was not cancelled. */
    bool pending(EventId id) const;

    /** Scheduled tick of a pending event; requires pending(id). */
    Tick eventTick(EventId id) const;

    /** True when no events remain (across all shards for a root). */
    bool empty() const;

    /** Number of pending events (across all shards for a root). */
    std::size_t size() const;

    /**
     * Fire the earliest pending event, advancing the clock to its
     * tick. A hub-attached root fires one coordinator event or one
     * full parallel window.
     *
     * @return false when no events remain (clock unchanged).
     */
    bool runNext();

    /**
     * Fire events until none remain.
     *
     * @return Number of events fired.
     */
    std::uint64_t runToCompletion();

    /** The underlying queue (tests / advanced scheduling). */
    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

    /** The sharded hub this context coordinates, or null for plain
     *  single-threaded contexts and shard members. Clusters use
     *  this to place engines onto shards at adoption time. */
    ShardedSimContext *coordinatedHub() const
    {
        return shard_ < 0 ? hub_ : nullptr;
    }

  private:
    friend class ShardedSimContext;

    /** Routed-delivery handles: bit 63 marks an EventId issued by
     *  the root queue on behalf of a shard member. Root-queue slot
     *  generations would need 2^31 recycles of one slot to reach
     *  this bit (asserted when tagging). */
    static constexpr EventId kRoutedDeliveryBit = 1ull << 63;

    bool isMember() const { return hub_ != nullptr && shard_ >= 0; }
    bool isRoot() const { return hub_ != nullptr && shard_ < 0; }

    /** Fire the earliest event of this context's own queue (the
     *  hub's coordinator path; bypasses hub delegation). */
    bool runNextLocal();

    /** Record the calling execution context's deterministic stamp
     *  for the member-queue event `id` (see ShardedSimContext). */
    void noteStamp(EventId id);

    EventQueue queue_;
    Tick now_ = 0;

    /** Hub enrollment (null for plain single-threaded contexts). */
    ShardedSimContext *hub_ = nullptr;
    /** Shard index for members; -1 for root / plain contexts. */
    std::int32_t shard_ = -1;

    /**
     * Member-queue event stamps, keyed by arena slot: the global
     * (turn, op) of the schedule/reschedule that created the event.
     * Within one queue FIFO order equals stamp order, so the heap
     * needs no change; stamps exist to compare *heads of different
     * shard queues* in the exact order the single-threaded queue
     * would have used.
     */
    std::vector<std::uint64_t> stampTurn_;
    std::vector<std::uint64_t> stampOp_;
};

} // namespace sim
} // namespace lightllm

#endif // LIGHTLLM_SIM_SIM_CONTEXT_HH
