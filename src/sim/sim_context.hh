/**
 * @file
 * Shared discrete-event simulation context.
 *
 * A SimContext owns the one clock and the one EventQueue of a
 * simulation. Actors (serving engines, routers, load generators,
 * drain triggers) schedule their occurrences here; the context
 * fires them in global (tick, class, FIFO) order and advances the
 * clock to each event's tick as it fires. Because *all* actors
 * share the ordering authority, a multi-instance co-simulation is
 * exact: no actor ever observes another actor's state from the
 * future (see DESIGN.md §3).
 *
 * The clock is monotonic: events can only be scheduled at or after
 * now(). Handlers may schedule, cancel, or reschedule further
 * events freely, including at the current tick (they fire later in
 * the same tick's FIFO order).
 */

#ifndef LIGHTLLM_SIM_SIM_CONTEXT_HH
#define LIGHTLLM_SIM_SIM_CONTEXT_HH

#include <cstdint>

#include "base/types.hh"
#include "sim/event_queue.hh"

namespace lightllm {
namespace sim {

/** Shared clock + event queue driving one simulation. */
class SimContext
{
  public:
    SimContext() = default;

    SimContext(const SimContext &) = delete;
    SimContext &operator=(const SimContext &) = delete;

    /** Current simulation time (the tick of the last fired event). */
    Tick now() const { return now_; }

    /** Schedule `handler` at absolute tick `when` (>= now()). */
    EventId schedule(Tick when, EventHandler handler,
                     EventClass cls = EventClass::Delivery);

    /** Cancel a pending event (see EventQueue::cancel). */
    bool cancel(EventId id) { return queue_.cancel(id); }

    /** Move a pending event to `when` (>= now()). */
    bool reschedule(EventId id, Tick when);

    /** True while the event has not fired and was not cancelled. */
    bool pending(EventId id) const { return queue_.pending(id); }

    /** True when no events remain. */
    bool empty() const { return queue_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return queue_.size(); }

    /**
     * Fire the earliest pending event, advancing the clock to its
     * tick.
     *
     * @return false when no events remain (clock unchanged).
     */
    bool runNext();

    /**
     * Fire events until none remain.
     *
     * @return Number of events fired.
     */
    std::uint64_t runToCompletion();

    /** The underlying queue (tests / advanced scheduling). */
    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

  private:
    EventQueue queue_;
    Tick now_ = 0;
};

} // namespace sim
} // namespace lightllm

#endif // LIGHTLLM_SIM_SIM_CONTEXT_HH
