#include "sim/sim_context.hh"

#include <utility>

#include "base/logging.hh"

namespace lightllm {
namespace sim {

EventId
SimContext::schedule(Tick when, EventHandler handler, EventClass cls)
{
    LIGHTLLM_ASSERT(when >= now_, "cannot schedule at tick ", when,
                    " in the past of the shared clock ", now_);
    return queue_.schedule(when, std::move(handler), cls);
}

bool
SimContext::reschedule(EventId id, Tick when)
{
    LIGHTLLM_ASSERT(when >= now_, "cannot reschedule to tick ", when,
                    " in the past of the shared clock ", now_);
    return queue_.reschedule(id, when);
}

bool
SimContext::runNext()
{
    if (queue_.empty())
        return false;
    // Advance the clock before the handler runs so handlers observe
    // now() == their fire tick and may schedule same-tick events.
    const Tick next = queue_.nextTick();
    LIGHTLLM_ASSERT(next >= now_,
                    "event queue fired out of order: ", next,
                    " after ", now_);
    now_ = next;
    queue_.runNext();
    return true;
}

std::uint64_t
SimContext::runToCompletion()
{
    std::uint64_t fired = 0;
    while (runNext())
        ++fired;
    return fired;
}

} // namespace sim
} // namespace lightllm
