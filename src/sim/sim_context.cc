#include "sim/sim_context.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "sim/sharded_sim_context.hh"

namespace lightllm {
namespace sim {

Tick
SimContext::now() const
{
    // A shard member's own clock only advances on its local Step
    // events; globally-ordered delivery handlers (drains, steals,
    // submissions) run at the coordinator's tick, which the single
    // shared clock would have reached first.
    if (isMember())
        return std::max(now_, hub_->rootNow());
    return now_;
}

EventId
SimContext::schedule(Tick when, EventHandler handler, EventClass cls)
{
    if (isMember()) {
        if (cls == EventClass::Delivery) {
            return hub_->scheduleDeliveryFromShard(
                static_cast<std::uint32_t>(shard_), when,
                std::move(handler));
        }
        LIGHTLLM_ASSERT(when >= now_, "cannot schedule at tick ",
                        when, " in the past of the shard clock ",
                        now_);
        const EventId id =
            queue_.schedule(when, std::move(handler), cls);
        noteStamp(id);
        return id;
    }
    LIGHTLLM_ASSERT(when >= now_, "cannot schedule at tick ", when,
                    " in the past of the shared clock ", now_);
    LIGHTLLM_ASSERT(hub_ == nullptr || cls == EventClass::Delivery,
                    "sharded root context accepts only Delivery "
                    "events (Step events are engine-local and "
                    "belong on a shard)");
    return queue_.schedule(when, std::move(handler), cls);
}

bool
SimContext::cancel(EventId id)
{
    if (isMember() && (id & kRoutedDeliveryBit) != 0)
        return hub_->root().queue_.cancel(id & ~kRoutedDeliveryBit);
    return queue_.cancel(id);
}

bool
SimContext::reschedule(EventId id, Tick when)
{
    if (isMember()) {
        if ((id & kRoutedDeliveryBit) != 0) {
            LIGHTLLM_ASSERT(when >= hub_->rootNow(),
                            "cannot reschedule to tick ", when,
                            " in the past of the shared clock ",
                            hub_->rootNow());
            return hub_->root().queue_.reschedule(
                id & ~kRoutedDeliveryBit, when);
        }
        LIGHTLLM_ASSERT(when >= now_, "cannot reschedule to tick ",
                        when, " in the past of the shard clock ",
                        now_);
        const bool moved = queue_.reschedule(id, when);
        if (moved) {
            // Re-sequenced as if newly scheduled: re-stamp so heads
            // of different shard queues keep comparing in the exact
            // single-queue FIFO order.
            noteStamp(id);
        }
        return moved;
    }
    LIGHTLLM_ASSERT(when >= now_, "cannot reschedule to tick ", when,
                    " in the past of the shared clock ", now_);
    return queue_.reschedule(id, when);
}

bool
SimContext::pending(EventId id) const
{
    if (isMember() && (id & kRoutedDeliveryBit) != 0)
        return hub_->root().queue_.pending(id & ~kRoutedDeliveryBit);
    return queue_.pending(id);
}

Tick
SimContext::eventTick(EventId id) const
{
    if (isMember() && (id & kRoutedDeliveryBit) != 0) {
        return hub_->root().queue_.eventTick(id &
                                             ~kRoutedDeliveryBit);
    }
    return queue_.eventTick(id);
}

bool
SimContext::empty() const
{
    if (isRoot())
        return hub_->allEmpty();
    return queue_.empty();
}

std::size_t
SimContext::size() const
{
    if (isRoot())
        return hub_->totalSize();
    return queue_.size();
}

void
SimContext::noteStamp(EventId id)
{
    const auto slot =
        static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
    if (slot >= stampTurn_.size()) {
        stampTurn_.resize(slot + 1, 0);
        stampOp_.resize(slot + 1, 0);
    }
    ShardedSimContext::stampNow(stampTurn_[slot], stampOp_[slot]);
}

bool
SimContext::runNextLocal()
{
    if (queue_.empty())
        return false;
    // Advance the clock before the handler runs so handlers observe
    // now() == their fire tick and may schedule same-tick events.
    const Tick next = queue_.nextTick();
    LIGHTLLM_ASSERT(next >= now_,
                    "event queue fired out of order: ", next,
                    " after ", now_);
    now_ = next;
    queue_.runNext();
    return true;
}

bool
SimContext::runNext()
{
    if (isRoot())
        return hub_->runOne();
    return runNextLocal();
}

std::uint64_t
SimContext::runToCompletion()
{
    if (isRoot())
        return hub_->runAll();
    std::uint64_t fired = 0;
    while (runNextLocal())
        ++fired;
    return fired;
}

} // namespace sim
} // namespace lightllm
