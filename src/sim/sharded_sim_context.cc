#include "sim/sharded_sim_context.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "base/logging.hh"
#include "trace/trace_recorder.hh"

namespace lightllm {
namespace sim {

thread_local ShardedSimContext::Cursor ShardedSimContext::tlCursor_;
thread_local ShardedSimContext::Parent ShardedSimContext::tlParent_;

ShardedSimContext::ShardedSimContext(SimContext &root,
                                     std::uint32_t shards)
    : root_(&root),
      lookahead_(std::numeric_limits<Tick>::max())
{
    LIGHTLLM_ASSERT(shards >= 1, "need at least one shard");
    LIGHTLLM_ASSERT(root.hub_ == nullptr,
                    "context already enrolled in a hub");
    LIGHTLLM_ASSERT(root.queue_.empty() && root.now_ == 0,
                    "sharded root context must be fresh");
    root_->hub_ = this;
    root_->shard_ = -1;

    shards_.reserve(shards);
    for (std::uint32_t i = 0; i < shards; ++i) {
        auto shard = std::make_unique<SimContext>();
        shard->hub_ = this;
        shard->shard_ = static_cast<std::int32_t>(i);
        shards_.push_back(std::move(shard));
    }
    liveEngines_.assign(shards, 0);
    runLists_.resize(shards);
    mailboxes_.resize(shards);

    // The construction/setup phase is turn 0: submissions made
    // before the first event fires stamp as ops of one pre-run
    // handler, matching the single-threaded FIFO sequence.
    tlCursor_ = Cursor{0, 0};

    workers_.reserve(shards > 0 ? shards - 1 : 0);
    for (std::uint32_t i = 1; i < shards; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ShardedSimContext::~ShardedSimContext()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    windowCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    root_->hub_ = nullptr;
    root_->shard_ = -1;
}

std::uint32_t
ShardedSimContext::assignShard()
{
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < liveEngines_.size(); ++i) {
        if (liveEngines_[i] < liveEngines_[best])
            best = i;
    }
    ++liveEngines_[best];
    return best;
}

SimContext &
ShardedSimContext::shardContext(std::uint32_t index)
{
    LIGHTLLM_ASSERT(index < shards_.size(), "bad shard index ",
                    index);
    return *shards_[index];
}

void
ShardedSimContext::noteShardReleased(std::uint32_t index)
{
    LIGHTLLM_ASSERT(index < liveEngines_.size(), "bad shard index ",
                    index);
    LIGHTLLM_ASSERT(liveEngines_[index] > 0,
                    "released an engine from an empty shard");
    --liveEngines_[index];
}

void
ShardedSimContext::attachTrace(trace::TraceRecorder *recorder)
{
    if (recorder == nullptr)
        return;
    // Coordinator first, then shards in index order: tids are
    // assigned in creation order, so the trace layout is stable
    // for a given --sim-threads value. Publish the sink vector
    // under the barrier mutex — workers pick their sink up under
    // the same lock at the next window wake.
    trace::ShardTrace *coord = recorder->createShard("coordinator");
    std::vector<trace::ShardTrace *> sinks(shards_.size(), nullptr);
    for (std::uint32_t i = 0; i < shards_.size(); ++i) {
        sinks[i] =
            recorder->createShard("shard-" + std::to_string(i));
    }
    std::lock_guard<std::mutex> lock(mu_);
    coordTrace_ = coord;
    shardTraces_ = std::move(sinks);
}

void
ShardedSimContext::noteSpawnFloor(Tick floor)
{
    LIGHTLLM_ASSERT(floor >= 1, "delivery spawn floor must be >= 1");
    lookahead_ = std::min(lookahead_, floor);
}

EventId
ShardedSimContext::scheduleDeliveryFromShard(std::uint32_t shard,
                                             Tick when,
                                             EventHandler handler)
{
    if (!inWindow_) {
        // Coordinator phase (setup, or inside a delivery handler):
        // commit straight to the root queue — calls are already in
        // global order. Tag the handle so the member context routes
        // cancel/reschedule/pending/eventTick back here.
        LIGHTLLM_ASSERT(when >= root_->now_,
                        "cannot schedule a delivery at tick ", when,
                        " in the past of the shared clock ",
                        root_->now_);
        const EventId id = root_->queue_.schedule(
            when, std::move(handler), EventClass::Delivery);
        LIGHTLLM_ASSERT((id & SimContext::kRoutedDeliveryBit) == 0,
                        "root queue handle overflowed the routed-"
                        "delivery tag bit");
        return id | SimContext::kRoutedDeliveryBit;
    }

    // Window phase: the conservative-lookahead contract is exactly
    // that no step output lands inside the open window.
    LIGHTLLM_ASSERT(when >= windowEnd_, "shard ", shard,
                    " spawned a delivery at ", when,
                    " inside the open window ending at ", windowEnd_,
                    " (engine spawn floor narrower than declared)");
    MailboxEntry entry;
    entry.when = when;
    entry.handler = std::move(handler);
    entry.parentWhen = tlParent_.when;
    entry.parentTurn = tlParent_.turn;
    entry.parentOp = tlParent_.op;
    entry.opIndex = tlCursor_.op++;
    mailboxes_[shard].push_back(std::move(entry));
    // Window-spawned deliveries are fire-and-forget (completion
    // notifications); no claimable handle exists until the barrier
    // commit, and none is needed.
    return kInvalidEventId;
}

void
ShardedSimContext::stampNow(std::uint64_t &turn, std::uint64_t &op)
{
    turn = tlCursor_.turn;
    op = tlCursor_.op++;
}

bool
ShardedSimContext::runOne()
{
    const bool have_root = !root_->queue_.empty();
    const Tick root_tick =
        have_root ? root_->queue_.nextTick() : Tick{0};

    // Earliest step head across the shard queues, in the exact
    // (tick, stamp) order the single global FIFO would use.
    std::uint32_t best_shard = shards_.size();
    Tick best_tick = 0;
    std::uint64_t best_turn = 0;
    std::uint64_t best_op = 0;
    for (std::uint32_t i = 0; i < shards_.size(); ++i) {
        SimContext &shard = *shards_[i];
        if (shard.queue_.empty())
            continue;
        const EventQueue::HeadView head = shard.queue_.peekHead();
        LIGHTLLM_ASSERT(head.cls == EventClass::Step,
                        "shard queue holds a non-Step event");
        const std::uint64_t turn = shard.stampTurn_[head.slot];
        const std::uint64_t op = shard.stampOp_[head.slot];
        if (best_shard == shards_.size() ||
            std::tie(head.when, turn, op) <
                std::tie(best_tick, best_turn, best_op)) {
            best_shard = i;
            best_tick = head.when;
            best_turn = turn;
            best_op = op;
        }
    }

    if (!have_root && best_shard == shards_.size())
        return false;

    if (have_root &&
        (best_shard == shards_.size() || root_tick <= best_tick)) {
        // Deliveries outrank steps at the same tick, exactly as the
        // EventClass band orders them in one queue.
        tlCursor_ = Cursor{++turnCounter_, 0};
        root_->runNextLocal();
        ++deliveries_;
        return true;
    }

    runWindow(best_tick,
              have_root ? root_tick
                        : std::numeric_limits<Tick>::max());
    return true;
}

std::uint64_t
ShardedSimContext::runAll()
{
    const std::uint64_t before = deliveries_ + steps_;
    while (runOne()) {
    }
    return deliveries_ + steps_ - before;
}

bool
ShardedSimContext::allEmpty() const
{
    if (!root_->queue_.empty())
        return false;
    for (const auto &shard : shards_) {
        if (!shard->queue_.empty())
            return false;
    }
    return true;
}

std::size_t
ShardedSimContext::totalSize() const
{
    std::size_t total = root_->queue_.size();
    for (const auto &shard : shards_)
        total += shard->queue_.size();
    return total;
}

void
ShardedSimContext::runWindow(Tick start_tick, Tick root_bound)
{
    // Conservative window: no step in [start, end) can schedule a
    // delivery before `end`, and no pending delivery fires before
    // `end` either — so every step in the window is independent of
    // everything else in it (steps of different engines commute).
    const Tick max_tick = std::numeric_limits<Tick>::max();
    Tick end = lookahead_ > max_tick - start_tick
        ? max_tick
        : start_tick + lookahead_;
    end = std::min(end, root_bound);
    LIGHTLLM_ASSERT(end > start_tick, "degenerate window");
    windowEnd_ = end;
    ++windows_;

    // Mini-rounds: an engine step may reschedule itself inside the
    // window (e.g. a same-tick wake after an empty fused iteration);
    // such steps are extracted and executed in follow-up rounds
    // until the window runs dry. Mailboxes accumulate across rounds
    // and commit once, so delivery order is independent of which
    // round a parent ran in.
    std::uint64_t staged_total = 0;
    for (;;) {
        const std::size_t staged = stageWindow();
        if (staged == 0)
            break;
        inWindow_ = true;
        executeStaged();
        inWindow_ = false;
        steps_ += staged;
        staged_total += staged;
    }
    if (coordTrace_ != nullptr) {
        coordTrace_->sample(
            trace::TraceName::ShardWindow, start_tick, windowEnd_,
            static_cast<std::int64_t>(staged_total),
            static_cast<std::int64_t>(windows_));
    }
    commitMailboxes();
}

std::size_t
ShardedSimContext::stageWindow()
{
    order_.clear();
    std::size_t total = 0;
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
        SimContext &shard = *shards_[s];
        std::vector<WindowStep> &list = runLists_[s];
        list.clear();
        while (!shard.queue_.empty()) {
            const EventQueue::HeadView head =
                shard.queue_.peekHead();
            if (head.when >= windowEnd_)
                break;
            LIGHTLLM_ASSERT(head.cls == EventClass::Step,
                            "shard queue holds a non-Step event");
            WindowStep step;
            step.when = head.when;
            step.stampTurn = shard.stampTurn_[head.slot];
            step.stampOp = shard.stampOp_[head.slot];
            step.handler = shard.queue_.extractNext();
            list.push_back(std::move(step));
        }
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(list.size()); ++i)
            order_.emplace_back(s, i);
        total += list.size();
    }
    if (total == 0)
        return 0;

    // K-way merge: assign turns in the exact order the single
    // global queue would have fired these steps. Stamps are unique,
    // so the sort needs no tie-breaker.
    std::sort(order_.begin(), order_.end(),
              [this](const auto &a, const auto &b) {
                  const WindowStep &sa = runLists_[a.first][a.second];
                  const WindowStep &sb = runLists_[b.first][b.second];
                  return std::tie(sa.when, sa.stampTurn, sa.stampOp) <
                      std::tie(sb.when, sb.stampTurn, sb.stampOp);
              });
    for (const auto &[shard, index] : order_)
        runLists_[shard][index].turn = ++turnCounter_;
    return total;
}

void
ShardedSimContext::executeStaged()
{
    const std::uint32_t helpers =
        static_cast<std::uint32_t>(workers_.size());
    if (helpers > 0) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++windowGen_;
            remaining_ = helpers;
        }
        windowCv_.notify_all();
    }
    runShard(0);
    if (helpers > 0) {
        std::unique_lock<std::mutex> lock(mu_);
        doneCv_.wait(lock, [this] { return remaining_ == 0; });
    }
}

void
ShardedSimContext::runShard(std::uint32_t index)
{
    SimContext &shard = *shards_[index];
    trace::ShardTrace *sink = index < shardTraces_.size()
        ? shardTraces_[index]
        : nullptr;
    std::chrono::steady_clock::time_point start;
    if (sink != nullptr && !runLists_[index].empty())
        start = std::chrono::steady_clock::now();
    for (WindowStep &step : runLists_[index]) {
        // Each step runs at its own tick with its own turn; the
        // shard clock replays exactly the per-event advance the
        // single-threaded loop performs.
        shard.now_ = step.when;
        tlCursor_ = Cursor{step.turn, 0};
        tlParent_ = Parent{step.when, step.stampTurn, step.stampOp};
        step.handler(step.when);
    }
    if (sink != nullptr && !runLists_[index].empty()) {
        const auto compute_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        sink->sample(
            trace::TraceName::ShardCompute, windowEnd_,
            static_cast<std::int64_t>(runLists_[index].size()),
            compute_ns, static_cast<std::int64_t>(windows_));
    }
}

void
ShardedSimContext::workerLoop(std::uint32_t shard)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        const auto wait_start = std::chrono::steady_clock::now();
        windowCv_.wait(lock, [this, seen] {
            return shutdown_ || windowGen_ > seen;
        });
        if (shutdown_)
            return;
        seen = windowGen_;
        trace::ShardTrace *sink = shard < shardTraces_.size()
            ? shardTraces_[shard]
            : nullptr;
        if (sink != nullptr) {
            // Wall-clock time parked at the barrier since the last
            // window finished: idle + wake latency, the cost the
            // parallel fleet pays for the deterministic merge.
            const auto wait_ns = std::chrono::duration_cast<
                std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wait_start)
                .count();
            sink->sample(trace::TraceName::ShardBarrier, windowEnd_,
                         wait_ns,
                         static_cast<std::int64_t>(windows_));
        }
        lock.unlock();
        runShard(shard);
        lock.lock();
        if (--remaining_ == 0)
            doneCv_.notify_one();
    }
}

void
ShardedSimContext::commitMailboxes()
{
    order_.clear();
    for (std::uint32_t s = 0; s < mailboxes_.size(); ++s) {
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(mailboxes_[s].size());
             ++i)
            order_.emplace_back(s, i);
    }
    if (order_.empty())
        return;

    // Commit in the order the single-threaded run would have made
    // these schedule calls: parent firing position (tick, stamp),
    // then call index within the parent's handler. The root queue's
    // own FIFO sequencing then reproduces the global delivery order
    // byte-for-byte.
    std::sort(order_.begin(), order_.end(),
              [this](const auto &a, const auto &b) {
                  const MailboxEntry &ma =
                      mailboxes_[a.first][a.second];
                  const MailboxEntry &mb =
                      mailboxes_[b.first][b.second];
                  return std::tie(ma.parentWhen, ma.parentTurn,
                                  ma.parentOp, ma.opIndex) <
                      std::tie(mb.parentWhen, mb.parentTurn,
                               mb.parentOp, mb.opIndex);
              });
    for (const auto &[shard, index] : order_) {
        MailboxEntry &entry = mailboxes_[shard][index];
        root_->queue_.schedule(entry.when,
                               std::move(entry.handler),
                               EventClass::Delivery);
    }
    if (coordTrace_ != nullptr) {
        coordTrace_->sample(trace::TraceName::MailboxCommit,
                            windowEnd_,
                            static_cast<std::int64_t>(order_.size()),
                            static_cast<std::int64_t>(windows_));
    }
    for (auto &mailbox : mailboxes_)
        mailbox.clear();
}

} // namespace sim
} // namespace lightllm
