#include "sim/event_queue.hh"

#include <utility>

#include "base/logging.hh"

namespace lightllm {
namespace sim {

bool
EventQueue::earlier(const Entry &a, const Entry &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    if (a.cls != b.cls)
        return a.cls < b.cls;
    return a.seq < b.seq;
}

void
EventQueue::swapSlots(std::size_t a, std::size_t b)
{
    std::swap(heap_[a], heap_[b]);
    index_[heap_[a].id] = a;
    index_[heap_[b].id] = b;
}

void
EventQueue::siftUp(std::size_t slot)
{
    while (slot > 0) {
        const std::size_t parent = (slot - 1) / 2;
        if (!earlier(heap_[slot], heap_[parent]))
            break;
        swapSlots(slot, parent);
        slot = parent;
    }
}

void
EventQueue::siftDown(std::size_t slot)
{
    const std::size_t size = heap_.size();
    while (true) {
        const std::size_t left = 2 * slot + 1;
        const std::size_t right = left + 1;
        std::size_t smallest = slot;
        if (left < size && earlier(heap_[left], heap_[smallest]))
            smallest = left;
        if (right < size && earlier(heap_[right], heap_[smallest]))
            smallest = right;
        if (smallest == slot)
            break;
        swapSlots(slot, smallest);
        slot = smallest;
    }
}

EventId
EventQueue::schedule(Tick when, EventHandler handler, EventClass cls)
{
    LIGHTLLM_ASSERT(when >= 0, "cannot schedule at negative tick ",
                    when);
    const EventId id = nextId_++;
    heap_.push_back(
        Entry{when, cls, nextSeq_++, id, std::move(handler)});
    index_[id] = heap_.size() - 1;
    siftUp(heap_.size() - 1);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    const auto it = index_.find(id);
    if (it == index_.end())
        return false;
    const std::size_t slot = it->second;
    index_.erase(it);
    const std::size_t last = heap_.size() - 1;
    if (slot != last) {
        heap_[slot] = std::move(heap_[last]);
        index_[heap_[slot].id] = slot;
        heap_.pop_back();
        // The moved entry may belong above or below its new slot.
        siftUp(slot);
        siftDown(slot);
    } else {
        heap_.pop_back();
    }
    return true;
}

bool
EventQueue::reschedule(EventId id, Tick when)
{
    LIGHTLLM_ASSERT(when >= 0, "cannot reschedule to negative tick ",
                    when);
    const auto it = index_.find(id);
    if (it == index_.end())
        return false;
    const std::size_t slot = it->second;
    heap_[slot].when = when;
    heap_[slot].seq = nextSeq_++;
    siftUp(slot);
    siftDown(slot);
    return true;
}

bool
EventQueue::pending(EventId id) const
{
    return index_.find(id) != index_.end();
}

Tick
EventQueue::eventTick(EventId id) const
{
    const auto it = index_.find(id);
    LIGHTLLM_ASSERT(it != index_.end(), "eventTick on unknown event ",
                    id);
    return heap_[it->second].when;
}

Tick
EventQueue::nextTick() const
{
    LIGHTLLM_ASSERT(!heap_.empty(), "nextTick on empty queue");
    return heap_.front().when;
}

EventQueue::Entry
EventQueue::popTop()
{
    Entry top = std::move(heap_.front());
    index_.erase(top.id);
    const std::size_t last = heap_.size() - 1;
    if (last > 0) {
        heap_.front() = std::move(heap_[last]);
        index_[heap_.front().id] = 0;
        heap_.pop_back();
        siftDown(0);
    } else {
        heap_.pop_back();
    }
    return top;
}

std::size_t
EventQueue::runUntil(Tick now)
{
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.front().when <= now) {
        // Pop before running so the handler may schedule new events.
        Entry entry = popTop();
        entry.handler(entry.when);
        ++fired;
    }
    return fired;
}

Tick
EventQueue::runNext()
{
    LIGHTLLM_ASSERT(!heap_.empty(), "runNext on empty queue");
    Entry entry = popTop();
    entry.handler(entry.when);
    return entry.when;
}

void
EventQueue::clear()
{
    heap_.clear();
    index_.clear();
}

} // namespace sim
} // namespace lightllm
