#include "sim/event_queue.hh"

#include <utility>

#include "base/logging.hh"

namespace lightllm {
namespace sim {

std::uint32_t
EventQueue::acquireSlot(EventHandler &&handler)
{
    std::uint32_t slot;
    if (freeHead_ != kNoSlot) {
        slot = freeHead_;
        freeHead_ = freeNext_[slot];
        handlers_[slot] = std::move(handler);
    } else {
        slot = static_cast<std::uint32_t>(handlers_.size());
        LIGHTLLM_ASSERT(slot <= kSlotMask,
                        "event arena exhausted: ", slot,
                        " concurrently pending events");
        handlers_.push_back(std::move(handler));
        pos_.push_back(kNoSlot);
        gen_.push_back(0);
        freeNext_.push_back(kNoSlot);
    }
    return slot;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    handlers_[slot].reset();
    pos_[slot] = kNoSlot;
    // Bumping the generation invalidates every handle issued for
    // this slot's previous occupants in O(1).
    ++gen_[slot];
    freeNext_[slot] = freeHead_;
    freeHead_ = slot;
}

void
EventQueue::siftUp(std::size_t at)
{
    const HeapEntry moving = heap_[at];
    const OrderKey movingKey = orderKey(moving);
    while (at > 0) {
        const std::size_t parent = (at - 1) / 2;
        if (!(movingKey < orderKey(heap_[parent])))
            break;
        heap_[at] = heap_[parent];
        pos_[slotIn(heap_[at].key)] = static_cast<std::uint32_t>(at);
        at = parent;
    }
    heap_[at] = moving;
    pos_[slotIn(moving.key)] = static_cast<std::uint32_t>(at);
}

void
EventQueue::siftDown(std::size_t at)
{
    const std::size_t size = heap_.size();
    const HeapEntry moving = heap_[at];
    const OrderKey movingKey = orderKey(moving);
    // Main loop runs while both children exist: the smaller-child
    // pick is branch-free (ranks are unique scalars, see orderKey).
    while (2 * at + 2 < size) {
        std::size_t child = 2 * at + 1;
        child += static_cast<std::size_t>(
            orderKey(heap_[child + 1]) < orderKey(heap_[child]));
        if (!(orderKey(heap_[child]) < movingKey))
            break;
        heap_[at] = heap_[child];
        pos_[slotIn(heap_[at].key)] = static_cast<std::uint32_t>(at);
        at = child;
    }
    // Tail: a lone left child at the heap edge. Harmless after the
    // early break above (the left child ranks >= the min child,
    // which ranked >= moving).
    const std::size_t child = 2 * at + 1;
    if (child < size && orderKey(heap_[child]) < movingKey) {
        heap_[at] = heap_[child];
        pos_[slotIn(heap_[at].key)] = static_cast<std::uint32_t>(at);
        at = child;
    }
    heap_[at] = moving;
    pos_[slotIn(moving.key)] = static_cast<std::uint32_t>(at);
}

EventId
EventQueue::schedule(Tick when, EventHandler handler, EventClass cls)
{
    LIGHTLLM_ASSERT(when >= 0, "cannot schedule at negative tick ",
                    when);
    const std::uint32_t slot = acquireSlot(std::move(handler));
    heap_.push_back(HeapEntry{when, sortKey(cls, nextSeq_++, slot)});
    siftUp(heap_.size() - 1);
    return (static_cast<EventId>(gen_[slot]) << 32) |
        static_cast<EventId>(slot + 1);
}

void
EventQueue::removeAt(std::size_t at)
{
    const std::size_t last = heap_.size() - 1;
    if (at != last) {
        heap_[at] = heap_[last];
        heap_.pop_back();
        // The moved entry may belong above or below its new slot;
        // whichever sift moves it, the other is a no-op.
        siftUp(at);
        siftDown(at);
    } else {
        heap_.pop_back();
    }
}

bool
EventQueue::cancel(EventId id)
{
    const std::uint32_t slot = slotOf(id);
    if (slot == kNoSlot)
        return false;
    removeAt(pos_[slot]);
    releaseSlot(slot);
    return true;
}

bool
EventQueue::reschedule(EventId id, Tick when)
{
    LIGHTLLM_ASSERT(when >= 0, "cannot reschedule to negative tick ",
                    when);
    const std::uint32_t slot = slotOf(id);
    if (slot == kNoSlot)
        return false;
    const std::size_t at = pos_[slot];
    heap_[at].when = when;
    // Re-sequence as if newly scheduled, preserving the class bits.
    heap_[at].key = (heap_[at].key & kClsMask) |
        ((nextSeq_++) << 24) | slot;
    siftUp(at);
    siftDown(pos_[slot]);
    return true;
}

Tick
EventQueue::eventTick(EventId id) const
{
    const std::uint32_t slot = slotOf(id);
    LIGHTLLM_ASSERT(slot != kNoSlot, "eventTick on unknown event ",
                    id);
    return heap_[pos_[slot]].when;
}

Tick
EventQueue::nextTick() const
{
    LIGHTLLM_ASSERT(!heap_.empty(), "nextTick on empty queue");
    return heap_.front().when;
}

EventQueue::HeadView
EventQueue::peekHead() const
{
    LIGHTLLM_ASSERT(!heap_.empty(), "peekHead on empty queue");
    const HeapEntry &top = heap_.front();
    return HeadView{top.when,
                    static_cast<EventClass>(top.key >> 62),
                    slotIn(top.key)};
}

EventHandler
EventQueue::extractNext()
{
    LIGHTLLM_ASSERT(!heap_.empty(), "extractNext on empty queue");
    const HeapEntry top = heap_.front();
    const std::uint32_t slot = slotIn(top.key);
    EventHandler handler = std::move(handlers_[slot]);
    removeAt(0);
    releaseSlot(slot);
    return handler;
}

std::size_t
EventQueue::runUntil(Tick now)
{
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.front().when <= now) {
        const HeapEntry top = heap_.front();
        const std::uint32_t slot = slotIn(top.key);
        // Move the handler out and release the slot before running
        // so the handler may freely schedule new events (which may
        // recycle this very slot or grow the arena).
        EventHandler handler = std::move(handlers_[slot]);
        removeAt(0);
        releaseSlot(slot);
        handler(top.when);
        ++fired;
    }
    return fired;
}

Tick
EventQueue::runNext()
{
    LIGHTLLM_ASSERT(!heap_.empty(), "runNext on empty queue");
    const HeapEntry top = heap_.front();
    const std::uint32_t slot = slotIn(top.key);
    EventHandler handler = std::move(handlers_[slot]);
    removeAt(0);
    releaseSlot(slot);
    handler(top.when);
    return top.when;
}

void
EventQueue::clear()
{
    for (const HeapEntry &entry : heap_)
        releaseSlot(slotIn(entry.key));
    heap_.clear();
}

} // namespace sim
} // namespace lightllm
