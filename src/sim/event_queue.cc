#include "sim/event_queue.hh"

#include <utility>

#include "base/logging.hh"

namespace lightllm {
namespace sim {

void
EventQueue::schedule(Tick when, EventHandler handler)
{
    LIGHTLLM_ASSERT(when >= 0, "cannot schedule at negative tick ", when);
    heap_.push(Entry{when, nextSeq_++, std::move(handler)});
}

Tick
EventQueue::nextTick() const
{
    LIGHTLLM_ASSERT(!heap_.empty(), "nextTick on empty queue");
    return heap_.top().when;
}

std::size_t
EventQueue::runUntil(Tick now)
{
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.top().when <= now) {
        // Copy out before pop so the handler may schedule new events.
        Entry entry = heap_.top();
        heap_.pop();
        entry.handler(entry.when);
        ++fired;
    }
    return fired;
}

Tick
EventQueue::runNext()
{
    LIGHTLLM_ASSERT(!heap_.empty(), "runNext on empty queue");
    Entry entry = heap_.top();
    heap_.pop();
    entry.handler(entry.when);
    return entry.when;
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
}

} // namespace sim
} // namespace lightllm
