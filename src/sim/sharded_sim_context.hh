/**
 * @file
 * Deterministic sharded (multi-threaded) co-simulation driver.
 *
 * A ShardedSimContext partitions a fleet co-simulation across K
 * shard threads while reproducing the single-threaded event order
 * *exactly* — a K-thread run is byte-identical to the 1-thread run
 * (DESIGN.md §9). The decomposition follows the event taxonomy:
 *
 *  - Every Delivery-class event (request arrivals, completion
 *    notifications, drains, warm-ups, autoscale control ticks,
 *    disagg transfers/dispatches) is cross-shard traffic: its
 *    handler may touch router/autoscaler/handoff state shared by
 *    all instances. All deliveries live in the *root* context's
 *    queue and fire sequentially on the coordinator thread, in the
 *    same (tick, class, FIFO) order the single queue would use.
 *  - Every Step-class event (one engine iteration) touches only
 *    its own engine's state, so steps of different engines commute.
 *    Each shard owns a member SimContext whose private queue holds
 *    its engines' Step events; shards execute windows of steps in
 *    parallel.
 *
 * Conservative time windows make the interleave safe: a Step
 * handler can only schedule deliveries at least `lookahead` ticks
 * after its own tick (each engine registers a spawn floor — the
 * scaled minimum of its perf model's phase latencies — and the hub
 * keeps the fleet-wide minimum). A window [T, W) with
 * W = min(T + lookahead, next pending delivery tick) therefore
 * contains only steps whose outputs land at or after W, i.e. after
 * every event in the window — no shard can affect another within
 * the window, and the coordinator never fires a delivery while a
 * window is open. An assert enforces the floor at every routed
 * delivery.
 *
 * Determinism across thread counts comes from stamping: each
 * handler execution is a *turn* (coordinator events take turns as
 * they fire; window steps take turns assigned by a K-way merge of
 * the shard queues in (tick, stamp) order), and every event carries
 * the (turn, op-index) stamp of the schedule call that created it.
 * Within one queue, FIFO order equals stamp order by construction,
 * so stamps only decide the order of *heads of different queues* —
 * exactly where the single global FIFO sequence must be
 * reconstructed. Deliveries spawned inside a window park in
 * per-shard mailboxes and are committed to the root queue at the
 * window barrier, sorted by (parent tick, parent stamp, op-index):
 * the order in which the single-threaded run would have made those
 * schedule calls.
 */

#ifndef LIGHTLLM_SIM_SHARDED_SIM_CONTEXT_HH
#define LIGHTLLM_SIM_SHARDED_SIM_CONTEXT_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/types.hh"
#include "sim/event_queue.hh"
#include "sim/sim_context.hh"

namespace lightllm {

namespace trace {
class ShardTrace;
class TraceRecorder;
}

namespace sim {

/** Coordinator + K shard contexts running one exact co-simulation. */
class ShardedSimContext
{
  public:
    /**
     * Enroll `root` as the coordinator context of a K-shard
     * simulation. `root` must be fresh (no pending events, clock at
     * zero); it keeps serving as the cluster-facing context — its
     * run entry points transparently drive the sharded loop.
     *
     * @param shards Number of shard threads (>= 1). Shard 0 runs on
     *        the coordinator thread; shards 1..K-1 get dedicated
     *        worker threads.
     */
    ShardedSimContext(SimContext &root, std::uint32_t shards);

    ShardedSimContext(const ShardedSimContext &) = delete;
    ShardedSimContext &operator=(const ShardedSimContext &) = delete;

    ~ShardedSimContext();

    /** The coordinator context (delivery queue + global clock). */
    SimContext &root() { return *root_; }

    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    /**
     * Pick the shard with the fewest live engines (ties keep the
     * lowest index — deterministic), count the newcomer against it,
     * and return its index. Placement is unobservable in reports:
     * it only chooses which thread executes the engine's steps.
     */
    std::uint32_t assignShard();

    /** The member context engines of shard `index` attach to. */
    SimContext &shardContext(std::uint32_t index);

    /** An engine of shard `index` drained/retired: stop counting it
     *  toward the shard's load for future placement. */
    void noteShardReleased(std::uint32_t index);

    /**
     * Register an engine's delivery spawn floor: the minimum number
     * of ticks between a Step event firing and any Delivery it
     * schedules. The hub's lookahead is the fleet-wide minimum
     * (monotone non-increasing; safe to shrink mid-run when an
     * autoscaler provisions a new engine).
     */
    void noteSpawnFloor(Tick floor);

    /** Current conservative lookahead (ticks). */
    Tick lookahead() const { return lookahead_; }

    /**
     * Attach per-shard profiler sinks (one for the coordinator,
     * one per shard). Sinks only exist at --trace-detail full, so
     * this is a no-op otherwise; the wall-clock samples live in a
     * separate trace pseudo-process and never affect simulation
     * results. Call before the run starts.
     */
    void attachTrace(trace::TraceRecorder *recorder);

    /**
     * Fire the next unit of work: one coordinator delivery, or one
     * full parallel step window (all its mini-rounds plus the
     * mailbox commit).
     *
     * @return false when no events remain anywhere.
     */
    bool runOne();

    /** Drive the simulation dry. @return Events fired (deliveries +
     *  steps). */
    std::uint64_t runAll();

    /** True when the root and every shard queue are empty. */
    bool allEmpty() const;

    /** Pending events across the root and every shard queue. */
    std::size_t totalSize() const;

    /** Coordinator-fired deliveries so far (stats/bench). */
    std::uint64_t deliveriesFired() const { return deliveries_; }

    /** Window-executed steps so far (stats/bench). */
    std::uint64_t stepsFired() const { return steps_; }

    /** Parallel windows executed so far (stats/bench). */
    std::uint64_t windowsRun() const { return windows_; }

  private:
    friend class SimContext;

    /** One extracted step awaiting window execution. */
    struct WindowStep
    {
        Tick when;
        std::uint64_t stampTurn;
        std::uint64_t stampOp;
        std::uint64_t turn;
        EventHandler handler;
    };

    /** A delivery scheduled from inside an open window, awaiting
     *  its deterministic commit at the barrier. */
    struct MailboxEntry
    {
        Tick when;
        EventHandler handler;
        /** Firing position of the scheduling step... */
        Tick parentWhen;
        std::uint64_t parentTurn;
        std::uint64_t parentOp;
        /** ...and the schedule call's index within that handler. */
        std::uint64_t opIndex;
    };

    /** Per-thread execution cursor: the turn being executed and the
     *  running op-index its schedule calls stamp events with. */
    struct Cursor
    {
        std::uint64_t turn = 0;
        std::uint64_t op = 0;
    };

    /** Per-thread identity of the step being executed (stamps the
     *  mailbox entries it spawns). */
    struct Parent
    {
        Tick when = 0;
        std::uint64_t turn = 0;
        std::uint64_t op = 0;
    };

    /** Route a Delivery scheduled through shard `shard`'s context:
     *  direct root commit between windows, mailbox inside one. */
    EventId scheduleDeliveryFromShard(std::uint32_t shard, Tick when,
                                      EventHandler handler);

    /** Stamp out = (current turn, next op) of the calling thread. */
    static void stampNow(std::uint64_t &turn, std::uint64_t &op);

    Tick rootNow() const { return root_->now_; }

    /** Run the window starting at `start_tick`, bounded by the next
     *  pending delivery at `root_bound` (max() when none). */
    void runWindow(Tick start_tick, Tick root_bound);

    /** Extract in-window steps from every shard queue into the run
     *  lists and merge-assign their turns. @return Steps staged. */
    std::size_t stageWindow();

    /** Execute the staged run lists on the shard threads (barrier
     *  on return). */
    void executeStaged();

    /** Execute shard `index`'s staged run list (on its thread). */
    void runShard(std::uint32_t index);

    /** Commit all mailboxes to the root queue in deterministic
     *  (parent tick, parent stamp, op-index) order. */
    void commitMailboxes();

    void workerLoop(std::uint32_t shard);

    static thread_local Cursor tlCursor_;
    static thread_local Parent tlParent_;

    SimContext *root_;
    std::vector<std::unique_ptr<SimContext>> shards_;
    std::vector<std::uint32_t> liveEngines_;

    Tick lookahead_;
    bool inWindow_ = false;
    Tick windowEnd_ = 0;
    std::uint64_t turnCounter_ = 0;

    std::vector<std::vector<WindowStep>> runLists_;
    std::vector<std::vector<MailboxEntry>> mailboxes_;
    /** (shard, index-in-run-list) pairs, sorted for turn assignment
     *  / mailbox commit; reused across windows. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> order_;

    std::uint64_t deliveries_ = 0;
    std::uint64_t steps_ = 0;
    std::uint64_t windows_ = 0;

    // Profiler sinks (null / empty unless tracing at detail=full).
    // Each shard thread writes only its own sink; the coordinator
    // sink is coordinator-thread-only.
    trace::ShardTrace *coordTrace_ = nullptr;
    std::vector<trace::ShardTrace *> shardTraces_;

    // Window barrier: the coordinator publishes a generation under
    // mu_ and workers report completion under it too — two CVs, one
    // lock, no atomics to reason about (TSan-clean by construction).
    std::mutex mu_;
    std::condition_variable windowCv_;
    std::condition_variable doneCv_;
    std::uint64_t windowGen_ = 0;
    std::uint32_t remaining_ = 0;
    bool shutdown_ = false;
    std::vector<std::thread> workers_;
};

} // namespace sim
} // namespace lightllm

#endif // LIGHTLLM_SIM_SHARDED_SIM_CONTEXT_HH
