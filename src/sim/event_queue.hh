/**
 * @file
 * Discrete-event queue driving the serving simulation.
 *
 * The queue is the single ordering authority of a simulation: every
 * timed occurrence — request arrivals, completion notifications,
 * engine iteration boundaries, drain triggers — is an event, and
 * events fire in (tick, class, insertion) order. Handles returned
 * by schedule() make events cancellable and reschedulable, which
 * the event-driven engine uses to pull its next-iteration event
 * earlier when an arrival lands on an idle instance, and the
 * cluster uses to claw back in-flight arrivals when an instance
 * drains.
 *
 * Implementation: an indexed binary min-heap. A handle → heap-slot
 * map is maintained through every sift, so cancel() and
 * reschedule() are O(log n) instead of the O(n) rebuild a
 * std::priority_queue would force.
 */

#ifndef LIGHTLLM_SIM_EVENT_QUEUE_HH
#define LIGHTLLM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace lightllm {
namespace sim {

/** Callback invoked when an event fires; receives the fire tick. */
using EventHandler = std::function<void(Tick)>;

/** Handle naming a scheduled event (0 is never issued). */
using EventId = std::uint64_t;

/** Sentinel for "no event". */
constexpr EventId kInvalidEventId = 0;

/**
 * Coarse ordering band among events at the same tick. Deliveries
 * (arrivals, completion notifications, drains) always fire before
 * engine iteration (Step) events at the same tick, so an iteration
 * starting at tick t observes every delivery stamped <= t — the
 * same visibility rule a self-clocked engine applies when it drains
 * its arrival queue before deciding an iteration.
 */
enum class EventClass : std::uint8_t
{
    Delivery = 0,
    Step = 1,
};

/** Indexed min-heap of timestamped events with FIFO tie-breaking. */
class EventQueue
{
  public:
    EventQueue() = default;

    /**
     * Schedule a handler to fire at the given absolute tick.
     *
     * @return Handle usable with cancel() / reschedule() until the
     *         event fires.
     */
    EventId schedule(Tick when, EventHandler handler,
                     EventClass cls = EventClass::Delivery);

    /**
     * Drop a pending event.
     *
     * @return false when the handle is unknown (already fired,
     *         cancelled, or never issued).
     */
    bool cancel(EventId id);

    /**
     * Move a pending event to a new tick. The event keeps its
     * handler and class but is re-sequenced as if newly scheduled
     * (it fires after existing same-tick, same-class events).
     *
     * @return false when the handle is unknown.
     */
    bool reschedule(EventId id, Tick when);

    /** True while the event has not fired and was not cancelled. */
    bool pending(EventId id) const;

    /** Scheduled tick of a pending event; requires pending(id). */
    Tick eventTick(EventId id) const;

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event; requires !empty(). */
    Tick nextTick() const;

    /**
     * Pop and run every event scheduled at tick <= now.
     *
     * @param now Upper bound (inclusive) on event ticks to fire.
     * @return Number of events fired.
     */
    std::size_t runUntil(Tick now);

    /**
     * Pop and run exactly the earliest event; requires !empty().
     *
     * @return The tick at which the event fired.
     */
    Tick runNext();

    /** Drop all pending events. */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        EventClass cls;
        std::uint64_t seq;
        EventId id;
        EventHandler handler;
    };

    /** Strict ordering: earlier tick, then class, then seq. */
    static bool earlier(const Entry &a, const Entry &b);

    /** Pop the root entry, keeping the index map consistent. */
    Entry popTop();

    // Sift the entry at `slot` toward its heap position; both
    // update index_ for every move.
    void siftUp(std::size_t slot);
    void siftDown(std::size_t slot);
    void swapSlots(std::size_t a, std::size_t b);

    std::vector<Entry> heap_;
    std::unordered_map<EventId, std::size_t> index_;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
};

} // namespace sim
} // namespace lightllm

#endif // LIGHTLLM_SIM_EVENT_QUEUE_HH
