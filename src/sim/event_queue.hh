/**
 * @file
 * Discrete-event queue driving the serving simulation.
 *
 * The queue is the single ordering authority of a simulation: every
 * timed occurrence — request arrivals, completion notifications,
 * engine iteration boundaries, drain triggers — is an event, and
 * events fire in (tick, class, insertion) order. Handles returned
 * by schedule() make events cancellable and reschedulable, which
 * the event-driven engine uses to pull its next-iteration event
 * earlier when an arrival lands on an idle instance, and the
 * cluster uses to claw back in-flight arrivals when an instance
 * drains.
 *
 * Implementation (DESIGN.md §8): an indexed binary min-heap of flat
 * POD entries over a free-list slot arena. Each pending event owns
 * an arena slot holding its callback (inline storage, no heap
 * allocation for small callables) and per-slot bookkeeping; the
 * heap itself stores only {tick, sort key, slot} so sift swaps move
 * 24-byte PODs and update one dense u32 position array — no hash
 * map on any path. Slots are recycled through a free list, and an
 * EventId carries the slot's generation so a stale handle held
 * across recycling can never alias a newer event: cancel(),
 * reschedule(), pending(), and eventTick() are O(1) array lookups
 * (plus an O(log n) sift where the heap changes). In steady state —
 * once the arena and heap have grown to the simulation's high-water
 * pending count — scheduling and firing events performs zero heap
 * allocations for callables that fit the inline buffer.
 */

#ifndef LIGHTLLM_SIM_EVENT_QUEUE_HH
#define LIGHTLLM_SIM_EVENT_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/types.hh"

namespace lightllm {
namespace sim {

/**
 * Move-only callable taking the fire tick, with inline storage.
 *
 * A drop-in replacement for `std::function<void(Tick)>` on the
 * event hot path: callables up to kInlineSize bytes live inside
 * the handler object itself (libstdc++'s std::function only
 * inlines 16 bytes, so even a [this, token] capture allocates).
 * Larger callables fall back to a heap allocation, counted by
 * heapFallbackCount() so tests can pin which paths stay inline.
 */
class EventHandler
{
  public:
    /** Inline capture budget; larger callables heap-allocate. */
    static constexpr std::size_t kInlineSize = 48;

    EventHandler() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, EventHandler>>>
    EventHandler(F &&fn) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(fn));
            // Trivially relocatable+destructible callables (plain
            // capture lists of pointers/PODs — every hot-path
            // lambda) move as a raw byte copy and destroy as a
            // no-op, with no indirect ops calls.
            if constexpr (std::is_trivially_copyable_v<Fn> &&
                          std::is_trivially_destructible_v<Fn>) {
                ops_ = &trivialOps<Fn>;
                trivial_ = true;
            } else {
                ops_ = &inlineOps<Fn>;
            }
        } else {
            *reinterpret_cast<void **>(storage_) =
                new Fn(std::forward<F>(fn));
            ops_ = &heapOps<Fn>;
            // Relaxed: a diagnostic counter, not a synchronization
            // point — sharded simulations construct handlers from
            // several shard threads at once.
            heapFallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    EventHandler(EventHandler &&other) noexcept { moveFrom(other); }

    EventHandler &
    operator=(EventHandler &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventHandler(const EventHandler &) = delete;
    EventHandler &operator=(const EventHandler &) = delete;

    ~EventHandler() { reset(); }

    /** Invoke the callable; requires a non-empty handler. */
    void
    operator()(Tick when)
    {
        ops_->invoke(storage_, when);
    }

    /** True when a callable is held. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Destroy the held callable, leaving the handler empty. */
    void
    reset()
    {
        if (ops_ != nullptr) {
            if (!trivial_)
                ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    /**
     * Process-wide count of callables that exceeded the inline
     * buffer and heap-allocated (test hook for the zero-alloc
     * contract on the schedule/fire path).
     */
    static std::uint64_t
    heapFallbackCount()
    {
        return heapFallbacks_.load(std::memory_order_relaxed);
    }

  private:
    struct Ops
    {
        void (*invoke)(void *storage, Tick when);
        /** Move-construct into dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *storage) noexcept;
    };

    template <typename Fn>
    static constexpr Ops trivialOps = {
        [](void *storage, Tick when) {
            (*std::launder(reinterpret_cast<Fn *>(storage)))(when);
        },
        nullptr,
        nullptr,
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *storage, Tick when) {
            (*std::launder(reinterpret_cast<Fn *>(storage)))(when);
        },
        [](void *dst, void *src) noexcept {
            Fn *from = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        },
        [](void *storage) noexcept {
            std::launder(reinterpret_cast<Fn *>(storage))->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *storage, Tick when) {
            (**static_cast<Fn **>(storage))(when);
        },
        [](void *dst, void *src) noexcept {
            *static_cast<void **>(dst) = *static_cast<void **>(src);
        },
        [](void *storage) noexcept {
            delete *static_cast<Fn **>(storage);
        },
    };

    void
    moveFrom(EventHandler &other) noexcept
    {
        ops_ = other.ops_;
        trivial_ = other.trivial_;
        if (ops_ != nullptr) {
            if (trivial_) {
                __builtin_memcpy(storage_, other.storage_,
                                 kInlineSize);
            } else {
                ops_->relocate(storage_, other.storage_);
            }
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    const Ops *ops_ = nullptr;
    bool trivial_ = false;

    static inline std::atomic<std::uint64_t> heapFallbacks_{0};
};

/**
 * Handle naming a scheduled event (0 is never issued).
 *
 * Layout: low 32 bits hold `slot + 1` (the arena slot the event
 * occupies), high 32 bits hold the slot's generation at schedule
 * time. Every release of a slot (fire, cancel, clear) bumps its
 * generation, so a stale handle kept across slot recycling fails
 * the generation check in pending()/cancel()/reschedule() instead
 * of aliasing the newer event now occupying the slot. A single
 * slot would need 2^32 recycles for a stale handle to collide.
 */
using EventId = std::uint64_t;

/** Sentinel for "no event". */
constexpr EventId kInvalidEventId = 0;

/**
 * Coarse ordering band among events at the same tick. Deliveries
 * (arrivals, completion notifications, drains) always fire before
 * engine iteration (Step) events at the same tick, so an iteration
 * starting at tick t observes every delivery stamped <= t — the
 * same visibility rule a self-clocked engine applies when it drains
 * its arrival queue before deciding an iteration.
 */
enum class EventClass : std::uint8_t
{
    Delivery = 0,
    Step = 1,
};

/** Indexed min-heap of timestamped events with FIFO tie-breaking. */
class EventQueue
{
  public:
    EventQueue() = default;

    /**
     * Schedule a handler to fire at the given absolute tick.
     *
     * @return Handle usable with cancel() / reschedule() until the
     *         event fires.
     */
    EventId schedule(Tick when, EventHandler handler,
                     EventClass cls = EventClass::Delivery);

    /**
     * Drop a pending event.
     *
     * @return false when the handle is unknown (already fired,
     *         cancelled, never issued, or stale — i.e. its arena
     *         slot was recycled by a newer event).
     */
    bool cancel(EventId id);

    /**
     * Move a pending event to a new tick. The event keeps its
     * handler and class but is re-sequenced as if newly scheduled
     * (it fires after existing same-tick, same-class events).
     *
     * @return false when the handle is unknown or stale.
     */
    bool reschedule(EventId id, Tick when);

    /**
     * True while the event has not fired and was not cancelled.
     * O(1): decodes the handle's slot and compares generations, so
     * a stale handle whose slot now hosts a newer event reports
     * false rather than aliasing it.
     */
    bool pending(EventId id) const { return slotOf(id) != kNoSlot; }

    /** Scheduled tick of a pending event; requires pending(id). */
    Tick eventTick(EventId id) const;

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event; requires !empty(). */
    Tick nextTick() const;

    /**
     * View of the earliest pending event without popping it:
     * fire tick, ordering class, and the arena slot it occupies
     * (the slot lets callers look up side metadata keyed by slot
     * before extractNext() recycles it). Requires !empty().
     */
    struct HeadView
    {
        Tick when;
        EventClass cls;
        std::uint32_t slot;
    };

    HeadView peekHead() const;

    /**
     * Pop the earliest pending event and hand its handler to the
     * caller *without invoking it* — the sharded scheduler extracts
     * a time window of events and runs them on shard threads under
     * its own clock discipline. The slot is released exactly as
     * runNext() would release it. Requires !empty().
     */
    EventHandler extractNext();

    /**
     * Pop and run every event scheduled at tick <= now.
     *
     * @param now Upper bound (inclusive) on event ticks to fire.
     * @return Number of events fired.
     */
    std::size_t runUntil(Tick now);

    /**
     * Pop and run exactly the earliest event; requires !empty().
     *
     * @return The tick at which the event fired.
     */
    Tick runNext();

    /** Drop all pending events (arena capacity is retained). */
    void clear();

  private:
    /**
     * Heap entry: 16 bytes, so sift swaps move one POD and all
     * comparisons touch only the heap array. `key` packs
     * (EventClass << 62) | (FIFO sequence << 24) | arena slot:
     * class-then-sequence ordering falls out of one u64 compare
     * (the slot bits only break ties that cannot occur — sequences
     * are unique), and the slot rides along for free. 38 sequence
     * bits last ~274 billion schedules; 24 slot bits allow 16.7M
     * concurrently pending events.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t key;
    };

    static constexpr std::uint32_t kNoSlot = 0xffffffffu;
    static constexpr std::uint64_t kSlotMask = 0xffffffull;
    static constexpr std::uint64_t kClsMask = 3ull << 62;

    static std::uint64_t
    sortKey(EventClass cls, std::uint64_t seq, std::uint32_t slot)
    {
        return (static_cast<std::uint64_t>(cls) << 62) |
            (seq << 24) | slot;
    }

    static std::uint32_t
    slotIn(std::uint64_t key)
    {
        return static_cast<std::uint32_t>(key & kSlotMask);
    }

#if defined(__SIZEOF_INT128__)
    /**
     * An entry's position in the total event order as one scalar,
     * (when << 64) | key: sift loops compare ranks with a single
     * branch-free unsigned compare (`when` is never negative), so
     * the data-dependent child pick in siftDown becomes a cmov
     * instead of a ~50% mispredicted branch.
     */
    using OrderKey = unsigned __int128;

    static OrderKey
    orderKey(const HeapEntry &e)
    {
        return (static_cast<OrderKey>(
                    static_cast<std::uint64_t>(e.when))
                << 64) |
            e.key;
    }
#else
    /** Two-word fallback rank for compilers without __int128. */
    struct OrderKey
    {
        std::uint64_t hi;
        std::uint64_t lo;

        bool
        operator<(const OrderKey &o) const
        {
            if (hi != o.hi)
                return hi < o.hi;
            return lo < o.lo;
        }
    };

    static OrderKey
    orderKey(const HeapEntry &e)
    {
        return {static_cast<std::uint64_t>(e.when), e.key};
    }
#endif

    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        return orderKey(a) < orderKey(b);
    }

    /** Decode + validate a handle; kNoSlot when unknown/stale. */
    std::uint32_t
    slotOf(EventId id) const
    {
        const std::uint32_t slot =
            static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
        if (slot >= gen_.size() ||
            gen_[slot] != static_cast<std::uint32_t>(id >> 32) ||
            pos_[slot] == kNoSlot) {
            return kNoSlot;
        }
        return slot;
    }

    /** Acquire an arena slot holding `handler`. */
    std::uint32_t acquireSlot(EventHandler &&handler);

    /** Return a slot to the free list, bumping its generation. */
    void releaseSlot(std::uint32_t slot);

    /** Remove the heap entry at heap index `at`. */
    void removeAt(std::size_t at);

    // Sift the entry at `at` toward its heap position; both update
    // pos_ for every move.
    void siftUp(std::size_t at);
    void siftDown(std::size_t at);

    std::vector<HeapEntry> heap_;
    /** Per-slot heap index while pending; kNoSlot while free. */
    std::vector<std::uint32_t> pos_;
    /** Per-slot generation, bumped on every release. */
    std::vector<std::uint32_t> gen_;
    /** Per-slot callback storage (inline up to 48 bytes). */
    std::vector<EventHandler> handlers_;
    /** Free-list links threaded through freed slots. */
    std::vector<std::uint32_t> freeNext_;
    std::uint32_t freeHead_ = kNoSlot;
    std::uint64_t nextSeq_ = 0;
};

} // namespace sim
} // namespace lightllm

#endif // LIGHTLLM_SIM_EVENT_QUEUE_HH
