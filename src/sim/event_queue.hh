/**
 * @file
 * Discrete-event queue driving the serving simulation.
 *
 * The serving engine advances its own clock while executing model
 * iterations; the event queue carries everything that happens
 * *around* the engine — client request arrivals, load-phase changes,
 * instrumentation callbacks. Events at equal ticks fire in insertion
 * order so simulations are fully deterministic.
 */

#ifndef LIGHTLLM_SIM_EVENT_QUEUE_HH
#define LIGHTLLM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/types.hh"

namespace lightllm {
namespace sim {

/** Callback invoked when an event fires; receives the fire tick. */
using EventHandler = std::function<void(Tick)>;

/** Min-heap of timestamped events with FIFO tie-breaking. */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Schedule a handler to fire at the given absolute tick. */
    void schedule(Tick when, EventHandler handler);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event; requires !empty(). */
    Tick nextTick() const;

    /**
     * Pop and run every event scheduled at tick <= now.
     *
     * @param now Upper bound (inclusive) on event ticks to fire.
     * @return Number of events fired.
     */
    std::size_t runUntil(Tick now);

    /**
     * Pop and run exactly the earliest event; requires !empty().
     *
     * @return The tick at which the event fired.
     */
    Tick runNext();

    /** Drop all pending events. */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventHandler handler;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace sim
} // namespace lightllm

#endif // LIGHTLLM_SIM_EVENT_QUEUE_HH
