#include "stats/similarity.hh"

#include <cmath>

#include "base/logging.hh"

namespace lightllm {
namespace stats {

double
cosineSimilarity(std::span<const double> a, std::span<const double> b)
{
    LIGHTLLM_ASSERT(a.size() == b.size(),
                    "cosine similarity size mismatch: ",
                    a.size(), " vs ", b.size());
    double dot = 0.0;
    double norm_a = 0.0;
    double norm_b = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        dot += a[i] * b[i];
        norm_a += a[i] * a[i];
        norm_b += b[i] * b[i];
    }
    if (norm_a == 0.0 || norm_b == 0.0)
        return 0.0;
    return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

} // namespace stats
} // namespace lightllm
