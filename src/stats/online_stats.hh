/**
 * @file
 * Streaming mean/variance/extrema accumulator (Welford's algorithm).
 */

#ifndef LIGHTLLM_STATS_ONLINE_STATS_HH
#define LIGHTLLM_STATS_ONLINE_STATS_HH

#include <cstdint>

namespace lightllm {
namespace stats {

/** Accumulates count, mean, variance, min, and max in O(1) space. */
class OnlineStats
{
  public:
    /** Record one sample. */
    void add(double value);

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

    std::int64_t count() const { return count_; }
    double mean() const { return count_ > 0 ? mean_ : 0.0; }

    /** Population variance; 0 with fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return count_ > 0 ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(count_); }

    void clear() { *this = OnlineStats(); }

  private:
    std::int64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace stats
} // namespace lightllm

#endif // LIGHTLLM_STATS_ONLINE_STATS_HH
