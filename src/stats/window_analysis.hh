/**
 * @file
 * Output-length distribution similarity across trace time windows.
 *
 * Implements the analysis behind the paper's Figures 3 and 4: a trace
 * of request output lengths is partitioned into request-count windows,
 * each window is reduced to a binned histogram, and windows are
 * compared by cosine similarity. The paper's key observation — that
 * adjacent windows are similar even when the global distribution
 * drifts — is what justifies predicting output lengths from recent
 * history (Eq. 1).
 */

#ifndef LIGHTLLM_STATS_WINDOW_ANALYSIS_HH
#define LIGHTLLM_STATS_WINDOW_ANALYSIS_HH

#include <cstdint>
#include <span>
#include <vector>

namespace lightllm {
namespace stats {

/** Dense square matrix of window-pair cosine similarities. */
struct SimilarityMatrix
{
    /** Number of windows (matrix is numWindows x numWindows). */
    std::size_t numWindows = 0;

    /** Row-major similarity values; diagonal entries are 1. */
    std::vector<double> values;

    double
    at(std::size_t i, std::size_t j) const
    {
        return values[i * numWindows + j];
    }

    /** Mean over pairs exactly one window apart (|i - j| == 1). */
    double adjacentMean() const;

    /** Mean over all off-diagonal pairs (i != j). */
    double globalMean() const;
};

/** Parameters controlling histogram binning of a window. */
struct WindowBinning
{
    std::int64_t binWidth = 64;
    std::size_t numBins = 256;
};

/**
 * Partition `outputs` into consecutive non-overlapping windows of
 * `window_size` requests (a trailing partial window is dropped) and
 * compute the all-pairs cosine-similarity matrix of their
 * histograms. This reproduces one panel of Figure 3.
 */
SimilarityMatrix
windowSimilarityMatrix(std::span<const std::int64_t> outputs,
                       std::size_t window_size,
                       const WindowBinning &binning = {});

/** Result of the historical-vs-running window comparison (Fig 4). */
struct AdjacentWindowStats
{
    /** Mean similarity of each history window with the window of
     *  requests immediately following it ("diagonal" in Fig 4). */
    double diagonalMean = 0.0;

    /** Mean similarity of each history window with running windows
     *  elsewhere in the trace ("global" in Fig 4). */
    double globalMean = 0.0;

    /** Number of (history, running) diagonal pairs evaluated. */
    std::size_t numPairs = 0;
};

/**
 * For every anchor position p (multiples of `running_size`, starting
 * at `history_size`), compare the distribution of the `history_size`
 * requests before p against the `running_size` requests at and after
 * p (diagonal), and against running windows at all other anchors
 * (global). This mirrors Figure 4's sweep where the history window is
 * the scheduler's record of finished requests and the running window
 * is the batch being scheduled.
 */
AdjacentWindowStats
adjacentWindowSimilarity(std::span<const std::int64_t> outputs,
                         std::size_t history_size,
                         std::size_t running_size,
                         const WindowBinning &binning = {});

} // namespace stats
} // namespace lightllm

#endif // LIGHTLLM_STATS_WINDOW_ANALYSIS_HH
