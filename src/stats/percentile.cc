#include "stats/percentile.hh"

#include <algorithm>
#include <cmath>

namespace lightllm {
namespace stats {

double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank: smallest value whose rank covers fraction q.
    const auto n = samples.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    auto nth = samples.begin() +
        static_cast<std::ptrdiff_t>(rank - 1);
    std::nth_element(samples.begin(), nth, samples.end());
    return *nth;
}

double
percentileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto n = sorted.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

double
mean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    return sum / static_cast<double>(samples.size());
}

double
maxValue(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    return *std::max_element(samples.begin(), samples.end());
}

} // namespace stats
} // namespace lightllm
