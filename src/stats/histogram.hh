/**
 * @file
 * Fixed-bin histogram over integer values (token lengths).
 *
 * Used both by the window-similarity analysis (Figures 3/4) to turn a
 * window of output lengths into a comparable count vector, and by the
 * metrics module for latency distributions.
 */

#ifndef LIGHTLLM_STATS_HISTOGRAM_HH
#define LIGHTLLM_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace lightllm {
namespace stats {

/** Histogram with uniform-width bins over [0, binWidth * numBins). */
class Histogram
{
  public:
    /**
     * @param bin_width Width of each bin in value units (> 0).
     * @param num_bins Number of bins; values past the end clamp into
     *        the last bin so no sample is ever dropped.
     */
    Histogram(std::int64_t bin_width, std::size_t num_bins);

    /** Record one sample (negative values clamp into bin 0). */
    void add(std::int64_t value);

    /** Record a sample with an integer weight. */
    void add(std::int64_t value, std::int64_t weight);

    /** Total weight recorded. */
    std::int64_t total() const { return total_; }

    /** Raw per-bin counts. */
    const std::vector<std::int64_t> &counts() const { return counts_; }

    /** Counts normalized to probabilities; all zeros when empty. */
    std::vector<double> normalized() const;

    /**
     * Smallest value v such that at least `q` fraction of the recorded
     * weight lies in bins at or below v's bin (upper bin edge).
     * Returns 0 for an empty histogram.
     */
    std::int64_t quantile(double q) const;

    /** Reset all counts. */
    void clear();

    std::int64_t binWidth() const { return binWidth_; }
    std::size_t numBins() const { return counts_.size(); }

  private:
    std::int64_t binWidth_;
    std::vector<std::int64_t> counts_;
    std::int64_t total_ = 0;
};

} // namespace stats
} // namespace lightllm

#endif // LIGHTLLM_STATS_HISTOGRAM_HH
