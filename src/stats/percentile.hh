/**
 * @file
 * Exact percentile computation over collected samples.
 *
 * SLA evaluation needs exact P99 values over modest sample counts
 * (one per request), so we keep raw samples and use nth_element.
 */

#ifndef LIGHTLLM_STATS_PERCENTILE_HH
#define LIGHTLLM_STATS_PERCENTILE_HH

#include <vector>

namespace lightllm {
namespace stats {

/**
 * Percentile with the nearest-rank method over a copy of `samples`.
 * An empty sample set yields 0. q is clamped to [0, 1].
 */
double percentile(std::vector<double> samples, double q);

/**
 * Nearest-rank percentile over samples already sorted ascending —
 * O(1), for consumers querying several quantiles of one vector.
 * Agrees exactly with percentile() on the same samples.
 */
double percentileSorted(const std::vector<double> &sorted, double q);

/** Arithmetic mean; 0 for an empty set. */
double mean(const std::vector<double> &samples);

/** Maximum; 0 for an empty set. */
double maxValue(const std::vector<double> &samples);

} // namespace stats
} // namespace lightllm

#endif // LIGHTLLM_STATS_PERCENTILE_HH
