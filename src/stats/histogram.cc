#include "stats/histogram.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lightllm {
namespace stats {

Histogram::Histogram(std::int64_t bin_width, std::size_t num_bins)
    : binWidth_(bin_width), counts_(num_bins, 0)
{
    LIGHTLLM_ASSERT(bin_width > 0, "bin width must be positive");
    LIGHTLLM_ASSERT(num_bins > 0, "need at least one bin");
}

void
Histogram::add(std::int64_t value)
{
    add(value, 1);
}

void
Histogram::add(std::int64_t value, std::int64_t weight)
{
    LIGHTLLM_ASSERT(weight >= 0, "negative histogram weight");
    std::int64_t bin = value < 0 ? 0 : value / binWidth_;
    const auto last = static_cast<std::int64_t>(counts_.size()) - 1;
    bin = std::min(bin, last);
    counts_[static_cast<std::size_t>(bin)] += weight;
    total_ += weight;
}

std::vector<double>
Histogram::normalized() const
{
    std::vector<double> probs(counts_.size(), 0.0);
    if (total_ == 0)
        return probs;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        probs[i] = static_cast<double>(counts_[i]) /
            static_cast<double>(total_);
    }
    return probs;
}

std::int64_t
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cumulative += static_cast<double>(counts_[i]);
        if (cumulative >= target) {
            return static_cast<std::int64_t>(i + 1) * binWidth_;
        }
    }
    return static_cast<std::int64_t>(counts_.size()) * binWidth_;
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

} // namespace stats
} // namespace lightllm
