/**
 * @file
 * Vector similarity measures for distribution comparison.
 *
 * The paper's Figures 3/4 compare output-length distributions of
 * trace windows via cosine similarity of their histogram vectors.
 */

#ifndef LIGHTLLM_STATS_SIMILARITY_HH
#define LIGHTLLM_STATS_SIMILARITY_HH

#include <span>

namespace lightllm {
namespace stats {

/**
 * Cosine similarity of two equally sized vectors.
 * Returns 0 when either vector has zero norm.
 */
double cosineSimilarity(std::span<const double> a,
                        std::span<const double> b);

} // namespace stats
} // namespace lightllm

#endif // LIGHTLLM_STATS_SIMILARITY_HH
