#include "stats/window_analysis.hh"

#include <cmath>

#include "base/logging.hh"
#include "stats/histogram.hh"
#include "stats/similarity.hh"

namespace lightllm {
namespace stats {

namespace {

/** Histogram a half-open index range of the trace into probabilities. */
std::vector<double>
histogramRange(std::span<const std::int64_t> outputs,
               std::size_t begin, std::size_t end,
               const WindowBinning &binning)
{
    Histogram hist(binning.binWidth, binning.numBins);
    for (std::size_t i = begin; i < end; ++i)
        hist.add(outputs[i]);
    return hist.normalized();
}

} // namespace

double
SimilarityMatrix::adjacentMean() const
{
    if (numWindows < 2)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i + 1 < numWindows; ++i)
        sum += at(i, i + 1);
    return sum / static_cast<double>(numWindows - 1);
}

double
SimilarityMatrix::globalMean() const
{
    if (numWindows < 2)
        return 0.0;
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < numWindows; ++i) {
        for (std::size_t j = i + 1; j < numWindows; ++j) {
            sum += at(i, j);
            ++pairs;
        }
    }
    return sum / static_cast<double>(pairs);
}

SimilarityMatrix
windowSimilarityMatrix(std::span<const std::int64_t> outputs,
                       std::size_t window_size,
                       const WindowBinning &binning)
{
    LIGHTLLM_ASSERT(window_size > 0, "window size must be positive");
    const std::size_t num_windows = outputs.size() / window_size;

    std::vector<std::vector<double>> hists;
    hists.reserve(num_windows);
    for (std::size_t w = 0; w < num_windows; ++w) {
        hists.push_back(histogramRange(outputs, w * window_size,
                                       (w + 1) * window_size, binning));
    }

    SimilarityMatrix matrix;
    matrix.numWindows = num_windows;
    matrix.values.assign(num_windows * num_windows, 0.0);
    for (std::size_t i = 0; i < num_windows; ++i) {
        matrix.values[i * num_windows + i] = 1.0;
        for (std::size_t j = i + 1; j < num_windows; ++j) {
            const double sim = cosineSimilarity(hists[i], hists[j]);
            matrix.values[i * num_windows + j] = sim;
            matrix.values[j * num_windows + i] = sim;
        }
    }
    return matrix;
}

AdjacentWindowStats
adjacentWindowSimilarity(std::span<const std::int64_t> outputs,
                         std::size_t history_size,
                         std::size_t running_size,
                         const WindowBinning &binning)
{
    LIGHTLLM_ASSERT(history_size > 0 && running_size > 0,
                    "window sizes must be positive");

    // Anchor positions where a full history window precedes and a
    // full running window follows.
    std::vector<std::size_t> anchors;
    for (std::size_t p = history_size;
         p + running_size <= outputs.size(); p += running_size) {
        anchors.push_back(p);
    }

    AdjacentWindowStats result;
    if (anchors.empty())
        return result;

    std::vector<std::vector<double>> history_hists;
    std::vector<std::vector<double>> running_hists;
    history_hists.reserve(anchors.size());
    running_hists.reserve(anchors.size());
    for (std::size_t p : anchors) {
        history_hists.push_back(
            histogramRange(outputs, p - history_size, p, binning));
        running_hists.push_back(
            histogramRange(outputs, p, p + running_size, binning));
    }

    double diag_sum = 0.0;
    double global_sum = 0.0;
    std::size_t global_pairs = 0;
    for (std::size_t i = 0; i < anchors.size(); ++i) {
        diag_sum += cosineSimilarity(history_hists[i],
                                     running_hists[i]);
        for (std::size_t j = 0; j < anchors.size(); ++j) {
            if (i == j)
                continue;
            // Skip running windows that overlap this history window.
            const std::size_t run_begin = anchors[j];
            const std::size_t run_end = anchors[j] + running_size;
            const std::size_t hist_begin = anchors[i] - history_size;
            const std::size_t hist_end = anchors[i];
            if (run_begin < hist_end && hist_begin < run_end)
                continue;
            global_sum += cosineSimilarity(history_hists[i],
                                           running_hists[j]);
            ++global_pairs;
        }
    }

    result.numPairs = anchors.size();
    result.diagonalMean =
        diag_sum / static_cast<double>(anchors.size());
    result.globalMean = global_pairs > 0
        ? global_sum / static_cast<double>(global_pairs)
        : result.diagonalMean;
    return result;
}

} // namespace stats
} // namespace lightllm
