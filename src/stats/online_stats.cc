#include "stats/online_stats.hh"

#include <algorithm>
#include <cmath>

namespace lightllm {
namespace stats {

void
OnlineStats::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace stats
} // namespace lightllm
