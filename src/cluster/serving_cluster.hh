/**
 * @file
 * Multi-instance serving cluster with load-aware request routing.
 *
 * Implements the paper's future-work proposal (§7): because the
 * Past-Future scheduler can "accurately estimate the memory demand
 * of each running batch", a front-end router can forward requests to
 * under-utilised instances so every instance reaches full capacity.
 * Three routing policies are provided:
 *
 *  - RoundRobin: oblivious baseline;
 *  - LeastOutstandingTokens: join-the-least-loaded by *current*
 *    resident + queued footprint (what a router can see without the
 *    scheduler's help);
 *  - FutureMemory: the router runs its own "past" component — a
 *    history window of finished output lengths fed by completion
 *    events — and charges each instance the *predicted* footprint
 *    (prompt + expected output) of every in-flight request it
 *    routed there. Requests join the instance with the smallest
 *    predicted load relative to its capacity. This is the paper's
 *    proposal end to end: the same distribution that drives
 *    admission drives placement.
 *
 * Instances are co-simulated on interleaved clocks: at each
 * iteration the instance with the smallest local time advances one
 * engine step, which bounds cross-instance causality skew to one
 * iteration.
 */

#ifndef LIGHTLLM_CLUSTER_SERVING_CLUSTER_HH
#define LIGHTLLM_CLUSTER_SERVING_CLUSTER_HH

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "core/length_predictor.hh"
#include "engine/serving_engine.hh"
#include "metrics/report.hh"
#include "workload/client_pool.hh"

namespace lightllm {
namespace cluster {

/** How the router picks an instance for a new request. */
enum class RoutingPolicy
{
    RoundRobin,
    LeastOutstandingTokens,
    FutureMemory,
};

/** Human-readable policy label. */
const char *routingPolicyName(RoutingPolicy policy);

/** A fleet of serving engines behind one request router. */
class ServingCluster : public workload::RequestSink
{
  public:
    using FinishCallback = engine::ServingEngine::FinishCallback;

    /**
     * @param instances Engines to route across (>= 1); the cluster
     *        takes ownership and installs its own finish fan-in.
     * @param policy Routing policy.
     */
    ServingCluster(
        std::vector<std::unique_ptr<engine::ServingEngine>> instances,
        RoutingPolicy policy);

    /** Route a request to an instance per the policy. */
    void submitAt(const workload::RequestSpec &spec,
                  Tick arrival) override;

    /** Completion listener over all instances (e.g. client pool). */
    void setOnFinish(FinishCallback callback);

    /** Warm the router's output-length history (previous traffic
     *  window), as for the instance schedulers. */
    void warmRoutingHistory(std::span<const TokenCount> lengths);

    /**
     * Co-simulate all instances to completion and return the merged
     * report (per-instance reports remain available).
     */
    metrics::RunReport run();

    std::size_t numInstances() const { return instances_.size(); }

    /** Per-instance report (after run()). */
    metrics::RunReport instanceReport(std::size_t index) const;

    /** Requests routed to each instance. */
    const std::vector<std::size_t> &routedCounts() const
    {
        return routedCounts_;
    }

    /**
     * Imbalance of routed output tokens across instances:
     * max/mean - 1 (0 = perfectly balanced).
     */
    double tokenImbalance() const;

  private:
    /** Pick the target instance for `spec`. */
    std::size_t pickInstance(const workload::RequestSpec &spec);

    /** Router-side predicted footprint of a request. */
    TokenCount predictFootprint(const workload::RequestSpec &spec);

    /** Completion fan-in: bookkeeping + user callback. */
    void handleFinish(const workload::RequestSpec &spec, Tick tick);

    std::vector<std::unique_ptr<engine::ServingEngine>> instances_;
    RoutingPolicy policy_;
    std::size_t nextRoundRobin_ = 0;
    std::vector<std::size_t> routedCounts_;
    std::vector<TokenCount> routedTokens_;
    FinishCallback onFinish_;
    bool ran_ = false;

    // FutureMemory routing state: the router's own "past" (the same
    // LengthPredictor component the Past-Future scheduler and the
    // predicted-SJF queue policy use) and the predicted in-flight
    // load charged to each instance.
    core::LengthPredictor routingPredictor_;
    std::vector<TokenCount> predictedLoad_;
    std::unordered_map<RequestId,
                       std::pair<std::size_t, TokenCount>> charges_;
};

} // namespace cluster
} // namespace lightllm

#endif // LIGHTLLM_CLUSTER_SERVING_CLUSTER_HH
