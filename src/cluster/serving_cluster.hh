/**
 * @file
 * Multi-instance serving cluster with load-aware request routing.
 *
 * Implements the paper's future-work proposal (§7): because the
 * Past-Future scheduler can "accurately estimate the memory demand
 * of each running batch", a front-end router can forward requests to
 * under-utilised instances so every instance reaches full capacity.
 * Three routing policies are provided:
 *
 *  - RoundRobin: oblivious baseline;
 *  - LeastOutstandingTokens: join-the-least-loaded by *current*
 *    resident + queued footprint (what a router can see without the
 *    scheduler's help);
 *  - FutureMemory: the router runs its own "past" component — a
 *    history window of finished output lengths fed by completion
 *    events — and charges each instance the *predicted* footprint
 *    (prompt + expected output) of every in-flight request it
 *    routed there. Requests join the instance with the smallest
 *    predicted load relative to its capacity. This is the paper's
 *    proposal end to end: the same distribution that drives
 *    admission drives placement.
 *
 * The fleet is an exact co-simulation: the cluster owns one
 * sim::SimContext, every engine runs as an event-driven actor on
 * it, and all interactions (arrivals, completions, drains,
 * iteration boundaries) fire in global time order. There is no
 * causality skew — the router never observes an instance's
 * future — and heterogeneous fleets (HardwareSpec / timeFactor)
 * compose naturally because nothing assumes instances iterate at
 * the same cadence. See DESIGN.md §3.
 *
 * Instances can be drained mid-run: a draining instance stops
 * receiving traffic, hands its not-yet-admitted queue back to the
 * router for re-dispatch, and finishes the requests that already
 * hold engine state.
 *
 * With an instance factory and an autoscale::AutoScaler attached,
 * the fleet becomes elastic (DESIGN.md §5): a periodic control
 * event snapshots the fleet, the scale policy proposes a size, and
 * the cluster executes it — provisionInstance() creates an engine
 * that joins the router only after a configurable cold-start delay,
 * scale-down retires the least-loaded instance through the drain
 * path, and at max scale the shed policy may reject overflow
 * arrivals instead of queueing them without bound. Instance-seconds
 * are accounted per instance (provision to retirement/end) as the
 * cost axis every attainment number is traded against.
 */

#ifndef LIGHTLLM_CLUSTER_SERVING_CLUSTER_HH
#define LIGHTLLM_CLUSTER_SERVING_CLUSTER_HH

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "autoscale/autoscaler.hh"
#include "base/types.hh"
#include "core/length_predictor.hh"
#include "engine/serving_engine.hh"
#include "metrics/report.hh"
#include "sim/sim_context.hh"
#include "workload/client_pool.hh"

namespace lightllm {

namespace trace {
class TraceRecorder;
}

namespace cluster {

/** How the router picks an instance for a new request. */
enum class RoutingPolicy
{
    RoundRobin,
    LeastOutstandingTokens,
    FutureMemory,

    /**
     * Session stickiness for prefix-cache fleets: a request whose
     * sessionKey was seen before goes to the instance that served
     * the session's earlier turns — the one whose prefix cache
     * holds the conversation's blocks — and new sessions (and
     * key-less requests) fall back to least-outstanding placement.
     * A drained home instance is re-picked and remembered.
     */
    PrefixAffinity,

    /**
     * Disaggregated prefill pool: join the instance with the least
     * prefill work still ahead of it (in-flight arrivals, queued
     * prompts, admitted-but-unprefilled remainders) — the signal
     * that predicts prefill queueing delay rather than memory
     * pressure.
     */
    PrefillLoad,
};

/** Human-readable policy label. */
const char *routingPolicyName(RoutingPolicy policy);

/**
 * Inverse of routingPolicyName.
 *
 * @return false when `name` is not a policy label (out untouched).
 */
bool parseRoutingPolicy(std::string_view name, RoutingPolicy &out);

/** A fleet of serving engines behind one request router. */
class ServingCluster : public workload::RequestSink
{
  public:
    using FinishCallback = engine::ServingEngine::FinishCallback;

    /** One routing decision, as recorded for replay/auditing. */
    struct RoutedSubmission
    {
        std::size_t instance;
        workload::RequestSpec spec;

        /** Tick at which the arrival fires on the instance. */
        Tick when;

        /** Recorded arrival for latency metrics (== when, except
         *  for drain re-dispatches, which keep their original
         *  arrival stamp). */
        Tick stamp;
    };

    /**
     * @param instances Engines to route across (>= 1); the cluster
     *        takes ownership, attaches every engine to its shared
     *        SimContext, and installs its own finish fan-in.
     * @param policy Routing policy.
     */
    ServingCluster(
        std::vector<std::unique_ptr<engine::ServingEngine>> instances,
        RoutingPolicy policy);

    /**
     * Same, but co-simulating on an externally owned context —
     * several clusters (e.g. the prefill and decode pools of a
     * disagg::DisaggCluster) share one clock and event queue. The
     * caller drives the event loop and calls finalizeReport()
     * itself instead of run().
     */
    ServingCluster(
        std::vector<std::unique_ptr<engine::ServingEngine>> instances,
        RoutingPolicy policy, sim::SimContext &context);

    /** Route a request to an instance per the policy. */
    void submitAt(const workload::RequestSpec &spec,
                  Tick arrival) override;

    /** Completion listener over all instances (e.g. client pool). */
    void setOnFinish(FinishCallback callback);

    /**
     * Attach a flight recorder: every current instance gets an
     * engine sink labelled `<prefix>-<index>`, and instances the
     * autoscaler provisions later are attached at adoption (still
     * on the coordinator thread, so sink order — and thus the
     * trace's pid layout — is deterministic). Call before any
     * submission; nullptr detaches future adoptions only.
     */
    void setTraceRecorder(trace::TraceRecorder *recorder,
                          std::string label_prefix = "engine");

    /** Warm the router's output-length history (previous traffic
     *  window), as for the instance schedulers. */
    void warmRoutingHistory(std::span<const TokenCount> lengths);

    /**
     * Drain instance `index` at tick `when`: it stops receiving
     * traffic and its not-yet-admitted requests are re-dispatched
     * through the router. Must be called before run(); at least one
     * instance must remain undrained.
     */
    void scheduleDrain(std::size_t index, Tick when);

    // --- Elastic autoscaling (DESIGN.md §5) ---------------------------

    /** Builds engines for runtime provisioning. */
    using InstanceFactory =
        std::function<std::unique_ptr<engine::ServingEngine>()>;

    /** Install the engine builder scale-up uses. Must be set before
     *  enableAutoscale(). */
    void setInstanceFactory(InstanceFactory factory);

    /**
     * Attach the SLA → capacity control loop: completion records
     * feed the scaler's SLO monitor, and a control event every
     * `config.controlInterval` evaluates the policy and executes
     * provisions / drains / sheds. Must precede run(); requires an
     * instance factory; the initial fleet must lie inside
     * [minInstances, maxInstances].
     */
    void enableAutoscale(const autoscale::AutoscaleConfig &config,
                         std::unique_ptr<autoscale::ScalePolicy>
                             policy);

    /** The attached scaler (null when autoscaling is off). */
    const autoscale::AutoScaler *autoscaler() const
    {
        return autoscaler_.get();
    }

    /**
     * Provision one instance now: the engine joins the fleet
     * immediately (events, metrics) but becomes routable only after
     * `warmup_delay` ticks — the cold-start window during which its
     * cost is already accruing. Requires an instance factory.
     *
     * @return Index of the new instance.
     */
    std::size_t provisionInstance(Tick warmup_delay);

    /**
     * Retire one instance through the drain path: the least-loaded
     * routable instance (warming instances first — they never took
     * traffic) stops receiving requests and hands its queue back to
     * the router.
     *
     * @param keep_at_least Refuse to shrink the non-draining fleet
     *        below this many instances.
     * @return false when the fleet is already at the floor (or
     *         retiring would leave no routable instance).
     */
    bool retireInstance(std::size_t keep_at_least);

    /** Fleet state at the current tick (control loop, tests). */
    autoscale::FleetSnapshot snapshot();

    /** Instances accepting traffic (not draining, warm-up done). */
    std::size_t routableInstances() const;

    /** Provisioned-but-cold instances. */
    std::size_t warmingInstances() const;

    /** Instances not scheduled for retirement (warming included). */
    std::size_t nonDrainingInstances() const;

    /** Requests rejected by overload shedding so far. */
    std::int64_t shedRequests() const { return shedRequests_; }

    /** New requests offered to the router (shed + accepted;
     *  re-dispatches excluded). */
    std::int64_t offeredRequests() const
    {
        return offeredRequests_;
    }

    /** Instance-seconds consumed over the run (valid after
     *  run()): Σ per instance of alive time from provision to
     *  retirement (or end of run). */
    double instanceSeconds() const
    {
        return instanceSecondsTotal_;
    }

    /** Dollar cost of those instance-seconds at each instance's
     *  platform rate (HardwareSpec::dollarsPerSecond); valid after
     *  run() / finalizeReport(). */
    double instanceCost() const { return instanceCostTotal_; }

    std::int64_t scaleUpEvents() const { return scaleUpEvents_; }
    std::int64_t scaleDownEvents() const
    {
        return scaleDownEvents_;
    }

    /** Largest concurrently alive fleet size seen. */
    std::size_t peakInstances() const { return peakInstances_; }

    /**
     * Co-simulate all instances to completion and return the merged
     * report (per-instance reports remain available).
     */
    metrics::RunReport run();

    /**
     * One autoscale control decision at `when`: snapshot the fleet,
     * evaluate the scale policy, and execute the resulting
     * provisions / retirement. Unlike the internal control loop
     * this never reschedules itself — an external driver (the
     * disaggregated cluster, which runs one loop per pool) owns the
     * cadence and the termination condition. Requires autoscaling
     * to be enabled.
     */
    void controlOnce(Tick when);

    /**
     * Merge the per-instance reports and settle the cost ledgers
     * (instance-seconds, instance-cost, shed/offered counters).
     * run() calls this after the event loop drains; external-
     * context callers call it directly once the shared loop is dry.
     *
     * @param end_of_service Absolute tick at which still-alive
     *        instances stop costing; -1 = the last completion seen
     *        by this cluster.
     */
    metrics::RunReport finalizeReport(Tick end_of_service = -1);

    std::size_t numInstances() const { return instances_.size(); }

    /** Per-instance report (after run()). */
    metrics::RunReport instanceReport(std::size_t index) const;

    /** Routing decisions per instance (re-dispatched requests count
     *  on every instance they were routed to). */
    const std::vector<std::size_t> &routedCounts() const
    {
        return routedCounts_;
    }

    /**
     * Opt into recording the submission log. Off by default — the
     * log grows by one entry (including a RequestSpec copy) per
     * routing decision, which long traces cannot afford. Must be
     * enabled before the first submission.
     */
    void recordSubmissions(bool enabled);

    /**
     * Every routing decision in order (empty unless
     * recordSubmissions(true) was set): which instance got which
     * request, and the tick its arrival fires. Replaying a single
     * instance's log against a standalone engine reproduces that
     * instance's co-simulated metrics exactly (the zero-skew
     * property; see tests/test_cluster_exact.cpp).
     */
    const std::vector<RoutedSubmission> &submissionLog() const
    {
        return submissionLog_;
    }

    /** Router-predicted in-flight load per instance (FutureMemory
     *  accounting; zero after every routed request finished). */
    const std::vector<TokenCount> &predictedLoads() const
    {
        return predictedLoad_;
    }

    /** The shared simulation context (tests / instrumentation). */
    sim::SimContext &context() { return *context_; }

    /**
     * Shard executing instance `index`'s engine when the shared
     * context coordinates a ShardedSimContext; 0 in single-threaded
     * runs. Placement is least-loaded at adoption time (live, i.e.
     * non-drained, engines per shard) and never observable in
     * reports — tests use this to pin ownership migration.
     */
    std::uint32_t instanceShard(std::size_t index) const
    {
        return shardOf_[index];
    }

    /**
     * Imbalance of routed output tokens across instances:
     * max/mean - 1 (0 = perfectly balanced).
     */
    double tokenImbalance() const;

  private:
    /** Attach `engine` as instance `index` (context, callbacks,
     *  per-instance state rows). */
    void adoptInstance(std::unique_ptr<engine::ServingEngine> engine);

    /** True when instance `i` may receive new traffic. */
    bool routable(std::size_t i) const
    {
        return !draining_[i] && !warming_[i];
    }

    /** One autoscale control tick at `when`. */
    void controlTick(Tick when);

    /** Route one (possibly re-dispatched) submission. */
    void routeSubmission(const workload::RequestSpec &spec,
                         Tick deliver, Tick stamp);

    /** Pick the target instance (`footprint` is the FutureMemory
     *  charge, `session_key` the PrefixAffinity identity; each is
     *  unused by the other policies). */
    std::size_t pickInstance(TokenCount footprint,
                             std::uint64_t session_key);

    /** Routable instance with the smallest capacity-normalised
     *  load, where `load_of(i)` is the policy's numerator. */
    std::size_t leastLoaded(
        const std::function<double(std::size_t)> &load_of) const;

    /** Router-side predicted footprint of a request. */
    TokenCount predictFootprint(const workload::RequestSpec &spec);

    /** Completion fan-in: bookkeeping + user callback. */
    void handleFinish(std::size_t instance,
                      const workload::RequestSpec &spec, Tick tick);

    /** Work stealing at warm-up completion: instance `thief`
     *  pulls queued requests from the most-backlogged peer and
     *  re-dispatches them through the router (no-op unless
     *  AutoscaleConfig::stealOnWarm is set). */
    void stealWork(std::size_t thief);

    /** Drain-event body for instance `index`. */
    void drainNow(std::size_t index);

    /** Clock + queue all instances are attached to: owned in the
     *  standalone case, borrowed when co-simulating with sibling
     *  clusters on one context. */
    std::unique_ptr<sim::SimContext> ownedContext_;
    sim::SimContext *context_;

    std::vector<std::unique_ptr<engine::ServingEngine>> instances_;
    RoutingPolicy policy_;
    std::size_t nextRoundRobin_ = 0;
    std::vector<bool> draining_;
    /** Executing shard per instance (all 0 without a hub). */
    std::vector<std::uint32_t> shardOf_;
    std::vector<std::size_t> routedCounts_;
    std::vector<TokenCount> routedTokens_;
    bool recordSubmissions_ = false;
    std::vector<RoutedSubmission> submissionLog_;
    FinishCallback onFinish_;
    bool ran_ = false;

    /** Flight recorder for instance sinks (null = tracing off). */
    trace::TraceRecorder *traceRecorder_ = nullptr;
    std::string traceLabelPrefix_ = "engine";

    // Lifecycle state (one row per instance).
    std::vector<bool> warming_;
    std::vector<Tick> provisionedAt_;

    /** Tick the instance went idle after draining (-1 = alive). */
    std::vector<Tick> retiredAt_;

    /** Absolute tick of the latest completion anywhere in the
     *  fleet (instance-seconds end-of-service; per-instance
     *  makespans are measurement-relative under warmup). */
    Tick lastFinishTick_ = 0;

    /** Routed-but-unfinished requests per instance. */
    std::vector<std::size_t> inFlight_;

    // Autoscale state.
    InstanceFactory factory_;
    std::unique_ptr<autoscale::AutoScaler> autoscaler_;
    std::int64_t shedRequests_ = 0;
    std::int64_t offeredRequests_ = 0;
    std::int64_t scaleUpEvents_ = 0;
    std::int64_t scaleDownEvents_ = 0;
    std::size_t peakInstances_ = 0;
    double instanceSecondsTotal_ = 0.0;
    double instanceCostTotal_ = 0.0;

    /** Per-instance platform price in dollars/second (from each
     *  engine's HardwareSpec at adoption). */
    std::vector<double> costRate_;

    // FutureMemory routing state: the router's own "past" (the same
    // LengthPredictor component the Past-Future scheduler and the
    // predicted-SJF queue policy use) and the predicted in-flight
    // load charged to each instance.
    core::LengthPredictor routingPredictor_;
    std::vector<TokenCount> predictedLoad_;
    std::unordered_map<RequestId,
                       std::pair<std::size_t, TokenCount>> charges_;

    /** PrefixAffinity state: each session's home instance. */
    std::unordered_map<std::uint64_t, std::size_t> sessionHome_;
};

} // namespace cluster
} // namespace lightllm

#endif // LIGHTLLM_CLUSTER_SERVING_CLUSTER_HH
