#include "cluster/serving_cluster.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"

namespace lightllm {
namespace cluster {

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin:
        return "round-robin";
      case RoutingPolicy::LeastOutstandingTokens:
        return "least-outstanding";
      case RoutingPolicy::FutureMemory:
        return "future-memory";
    }
    return "unknown";
}

ServingCluster::ServingCluster(
    std::vector<std::unique_ptr<engine::ServingEngine>> instances,
    RoutingPolicy policy)
    : instances_(std::move(instances)), policy_(policy),
      routedCounts_(instances_.size(), 0),
      routedTokens_(instances_.size(), 0),
      routingPredictor_(1000),
      predictedLoad_(instances_.size(), 0)
{
    LIGHTLLM_ASSERT(!instances_.empty(),
                    "cluster needs at least one instance");
    for (auto &instance : instances_) {
        instance->setOnFinish(
            [this](const workload::RequestSpec &spec, Tick tick) {
                handleFinish(spec, tick);
            });
    }
}

void
ServingCluster::setOnFinish(FinishCallback callback)
{
    onFinish_ = std::move(callback);
}

void
ServingCluster::warmRoutingHistory(
    std::span<const TokenCount> lengths)
{
    routingPredictor_.warm(lengths);
}

void
ServingCluster::handleFinish(const workload::RequestSpec &spec,
                             Tick tick)
{
    routingPredictor_.observe(spec.effectiveOutputLen());
    const auto it = charges_.find(spec.id);
    if (it != charges_.end()) {
        const auto [instance, charge] = it->second;
        predictedLoad_[instance] -= charge;
        charges_.erase(it);
    }
    if (onFinish_)
        onFinish_(spec, tick);
}

TokenCount
ServingCluster::predictFootprint(const workload::RequestSpec &spec)
{
    // A point estimate is the right prediction for load balancing
    // (unlike admission, placement needs no completion stagger).
    return routingPredictor_.predictFootprint(spec.inputLen,
                                              spec.maxNewTokens);
}

std::size_t
ServingCluster::pickInstance(const workload::RequestSpec &spec)
{
    switch (policy_) {
      case RoutingPolicy::RoundRobin:
      {
        const std::size_t index = nextRoundRobin_;
        nextRoundRobin_ = (nextRoundRobin_ + 1) % instances_.size();
        return index;
      }
      case RoutingPolicy::LeastOutstandingTokens:
      {
        // Normalise current + queued footprint by instance capacity
        // so heterogeneous fleets compare fairly.
        std::size_t best = 0;
        double best_load = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < instances_.size(); ++i) {
            const double load =
                static_cast<double>(
                    instances_[i]->outstandingTokens()) /
                static_cast<double>(
                    instances_[i]->capacityTokens());
            if (load < best_load) {
                best_load = load;
                best = i;
            }
        }
        return best;
      }
      case RoutingPolicy::FutureMemory:
      {
        // Router-side Past-Future estimate: predicted in-flight
        // load (including this request) over capacity.
        const TokenCount footprint = predictFootprint(spec);
        std::size_t best = 0;
        double best_load = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < instances_.size(); ++i) {
            const double load =
                static_cast<double>(predictedLoad_[i] + footprint) /
                static_cast<double>(
                    instances_[i]->capacityTokens());
            if (load < best_load) {
                best_load = load;
                best = i;
            }
        }
        return best;
      }
    }
    panic("unknown routing policy");
}

void
ServingCluster::submitAt(const workload::RequestSpec &spec,
                         Tick arrival)
{
    const std::size_t index = pickInstance(spec);
    routedCounts_[index] += 1;
    routedTokens_[index] += spec.effectiveOutputLen();
    if (policy_ == RoutingPolicy::FutureMemory) {
        const TokenCount charge = predictFootprint(spec);
        predictedLoad_[index] += charge;
        charges_.emplace(spec.id, std::make_pair(index, charge));
    }
    instances_[index]->submitAt(spec, arrival);
}

metrics::RunReport
ServingCluster::run()
{
    LIGHTLLM_ASSERT(!ran_, "cluster instances are single-run");
    ran_ = true;

    // Co-simulation: always advance the instance with the smallest
    // local clock among those that can make progress. Instances
    // interact only through request routing (closed-loop clients
    // resubmit on finish), so this bounds causality skew to one
    // engine iteration.
    while (true) {
        engine::ServingEngine *next = nullptr;
        for (auto &instance : instances_) {
            if (!instance->hasWork() &&
                !instance->hasPendingArrivals()) {
                continue;
            }
            if (next == nullptr || instance->now() < next->now())
                next = instance.get();
        }
        if (next == nullptr)
            break;
        const bool progressed = next->stepOnce();
        LIGHTLLM_ASSERT(progressed,
                        "selected instance failed to progress");
    }

    // Merge per-instance reports.
    std::vector<metrics::RunReport> reports;
    reports.reserve(instances_.size());
    for (const auto &instance : instances_)
        reports.push_back(instance->report());
    return metrics::mergeReports(
        reports, "Cluster(" +
                     std::string(routingPolicyName(policy_)) + " x" +
                     std::to_string(instances_.size()) + ")");
}

metrics::RunReport
ServingCluster::instanceReport(std::size_t index) const
{
    LIGHTLLM_ASSERT(index < instances_.size(), "bad instance index");
    return instances_[index]->report();
}

double
ServingCluster::tokenImbalance() const
{
    TokenCount max_tokens = 0;
    TokenCount total = 0;
    for (TokenCount tokens : routedTokens_) {
        max_tokens = std::max(max_tokens, tokens);
        total += tokens;
    }
    if (total == 0)
        return 0.0;
    const double mean = static_cast<double>(total) /
        static_cast<double>(routedTokens_.size());
    return static_cast<double>(max_tokens) / mean - 1.0;
}

} // namespace cluster
} // namespace lightllm
