#include "cluster/serving_cluster.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"

namespace lightllm {
namespace cluster {

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin:
        return "round-robin";
      case RoutingPolicy::LeastOutstandingTokens:
        return "least-outstanding";
      case RoutingPolicy::FutureMemory:
        return "future-memory";
      case RoutingPolicy::PrefixAffinity:
        return "prefix-affinity";
    }
    return "unknown";
}

bool
parseRoutingPolicy(std::string_view name, RoutingPolicy &out)
{
    for (const RoutingPolicy policy :
         {RoutingPolicy::RoundRobin,
          RoutingPolicy::LeastOutstandingTokens,
          RoutingPolicy::FutureMemory,
          RoutingPolicy::PrefixAffinity}) {
        if (name == routingPolicyName(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

ServingCluster::ServingCluster(
    std::vector<std::unique_ptr<engine::ServingEngine>> instances,
    RoutingPolicy policy)
    : instances_(std::move(instances)), policy_(policy),
      draining_(instances_.size(), false),
      routedCounts_(instances_.size(), 0),
      routedTokens_(instances_.size(), 0),
      routingPredictor_(1000),
      predictedLoad_(instances_.size(), 0)
{
    LIGHTLLM_ASSERT(!instances_.empty(),
                    "cluster needs at least one instance");
    for (auto &instance : instances_) {
        instance->attachContext(context_);
        instance->setOnFinish(
            [this](const workload::RequestSpec &spec, Tick tick) {
                handleFinish(spec, tick);
            });
    }
}

void
ServingCluster::setOnFinish(FinishCallback callback)
{
    onFinish_ = std::move(callback);
}

void
ServingCluster::warmRoutingHistory(
    std::span<const TokenCount> lengths)
{
    routingPredictor_.warm(lengths);
}

void
ServingCluster::handleFinish(const workload::RequestSpec &spec,
                             Tick tick)
{
    routingPredictor_.observe(spec.effectiveOutputLen());
    const auto it = charges_.find(spec.id);
    if (it != charges_.end()) {
        const auto [instance, charge] = it->second;
        predictedLoad_[instance] -= charge;
        charges_.erase(it);
    }
    if (onFinish_)
        onFinish_(spec, tick);
}

TokenCount
ServingCluster::predictFootprint(const workload::RequestSpec &spec)
{
    // A point estimate is the right prediction for load balancing
    // (unlike admission, placement needs no completion stagger).
    return routingPredictor_.predictFootprint(spec.inputLen,
                                              spec.maxNewTokens);
}

void
ServingCluster::recordSubmissions(bool enabled)
{
    std::size_t routed = 0;
    for (std::size_t count : routedCounts_)
        routed += count;
    LIGHTLLM_ASSERT(routed == 0,
                    "recordSubmissions must precede submissions");
    recordSubmissions_ = enabled;
}

std::size_t
ServingCluster::leastLoaded(
    const std::function<double(std::size_t)> &load_of) const
{
    // Normalise by instance capacity so heterogeneous fleets
    // compare fairly; ties keep the lowest index.
    std::size_t best = instances_.size();
    double best_load = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        if (draining_[i])
            continue;
        const double load = load_of(i) /
            static_cast<double>(instances_[i]->capacityTokens());
        if (load < best_load) {
            best_load = load;
            best = i;
        }
    }
    LIGHTLLM_ASSERT(best < instances_.size(),
                    "no routable instance (all draining?)");
    return best;
}

std::size_t
ServingCluster::pickInstance(TokenCount footprint,
                             std::uint64_t session_key)
{
    switch (policy_) {
      case RoutingPolicy::RoundRobin:
      {
        for (std::size_t probe = 0; probe < instances_.size();
             ++probe) {
            const std::size_t index = nextRoundRobin_;
            nextRoundRobin_ =
                (nextRoundRobin_ + 1) % instances_.size();
            if (!draining_[index])
                return index;
        }
        panic("no routable instance (all draining?)");
      }
      case RoutingPolicy::LeastOutstandingTokens:
        // Current resident + queued footprint: what a router can
        // observe without the scheduler's help.
        return leastLoaded([this](std::size_t i) {
            return static_cast<double>(
                instances_[i]->outstandingTokens());
        });
      case RoutingPolicy::FutureMemory:
        // Router-side Past-Future estimate: predicted in-flight
        // load (including this request) over capacity.
        return leastLoaded([this, footprint](std::size_t i) {
            return static_cast<double>(predictedLoad_[i] +
                                       footprint);
        });
      case RoutingPolicy::PrefixAffinity:
      {
        // Keep a session's turns where its prefix is cached; place
        // unknown sessions (and key-less traffic) least-loaded.
        if (session_key != 0) {
            const auto it = sessionHome_.find(session_key);
            if (it != sessionHome_.end() &&
                !draining_[it->second]) {
                return it->second;
            }
        }
        const std::size_t index =
            leastLoaded([this](std::size_t i) {
                return static_cast<double>(
                    instances_[i]->outstandingTokens());
            });
        if (session_key != 0)
            sessionHome_[session_key] = index;
        return index;
      }
    }
    panic("unknown routing policy");
}

void
ServingCluster::submitAt(const workload::RequestSpec &spec,
                         Tick arrival)
{
    const Tick when = std::max(arrival, context_.now());
    routeSubmission(spec, when, when);
}

void
ServingCluster::routeSubmission(const workload::RequestSpec &spec,
                                Tick deliver, Tick stamp)
{
    // One footprint estimate per submission: the placement decision
    // and the charge must agree by construction.
    const TokenCount footprint =
        policy_ == RoutingPolicy::FutureMemory
        ? predictFootprint(spec)
        : 0;
    const std::size_t index =
        pickInstance(footprint, spec.sessionKey);
    routedCounts_[index] += 1;
    routedTokens_[index] += spec.effectiveOutputLen();
    if (policy_ == RoutingPolicy::FutureMemory) {
        predictedLoad_[index] += footprint;
        charges_[spec.id] = std::make_pair(index, footprint);
    }
    if (recordSubmissions_) {
        // Mirror the engine's arrival clamp so the log records the
        // tick the arrival event actually fires.
        submissionLog_.push_back(RoutedSubmission{
            index, spec, std::max(deliver, context_.now()), stamp});
    }
    instances_[index]->submitStamped(spec, deliver, stamp);
}

void
ServingCluster::scheduleDrain(std::size_t index, Tick when)
{
    LIGHTLLM_ASSERT(index < instances_.size(), "bad instance index");
    LIGHTLLM_ASSERT(!ran_, "scheduleDrain must precede run()");
    context_.schedule(when,
                      [this, index](Tick) { drainNow(index); });
}

void
ServingCluster::drainNow(std::size_t index)
{
    LIGHTLLM_ASSERT(!draining_[index], "instance ", index,
                    " drained twice");
    draining_[index] = true;
    std::size_t undrained = 0;
    for (std::size_t i = 0; i < instances_.size(); ++i)
        undrained += draining_[i] ? 0 : 1;
    LIGHTLLM_ASSERT(undrained > 0,
                    "cannot drain the last routable instance");

    // Requests the instance never admitted go back through the
    // router with their original arrival stamps (latency metrics
    // keep counting from the first submission). Their FutureMemory
    // charges move with them: drop the drained instance's charge
    // first so re-routing re-charges the new target.
    for (const auto &drained : instances_[index]->drainQueued()) {
        const auto it = charges_.find(drained.spec.id);
        if (it != charges_.end()) {
            predictedLoad_[it->second.first] -= it->second.second;
            charges_.erase(it);
        }
        // The drained instance never serves this work: take its
        // tokens back so tokenImbalance() reflects served load
        // (routedCounts_ intentionally keeps counting decisions).
        routedTokens_[index] -= drained.spec.effectiveOutputLen();
        routeSubmission(drained.spec, drained.redispatchAt,
                        drained.arrivalStamp);
    }
}

metrics::RunReport
ServingCluster::run()
{
    LIGHTLLM_ASSERT(!ran_, "cluster instances are single-run");
    ran_ = true;

    // Exact co-simulation: every arrival, iteration boundary,
    // completion, and drain fires in global (tick, class, FIFO)
    // order on the shared context. Engines schedule their own next
    // iterations, so running the queue dry runs the fleet dry.
    context_.runToCompletion();

    // Merge per-instance reports.
    std::vector<metrics::RunReport> reports;
    reports.reserve(instances_.size());
    for (const auto &instance : instances_)
        reports.push_back(instance->report());
    return metrics::mergeReports(
        reports, "Cluster(" +
                     std::string(routingPolicyName(policy_)) + " x" +
                     std::to_string(instances_.size()) + ")");
}

metrics::RunReport
ServingCluster::instanceReport(std::size_t index) const
{
    LIGHTLLM_ASSERT(index < instances_.size(), "bad instance index");
    return instances_[index]->report();
}

double
ServingCluster::tokenImbalance() const
{
    TokenCount max_tokens = 0;
    TokenCount total = 0;
    for (TokenCount tokens : routedTokens_) {
        max_tokens = std::max(max_tokens, tokens);
        total += tokens;
    }
    if (total == 0)
        return 0.0;
    const double mean = static_cast<double>(total) /
        static_cast<double>(routedTokens_.size());
    return static_cast<double>(max_tokens) / mean - 1.0;
}

} // namespace cluster
} // namespace lightllm
