#include "cluster/serving_cluster.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"
#include "sim/sharded_sim_context.hh"
#include "trace/trace_recorder.hh"

namespace lightllm {
namespace cluster {

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin:
        return "round-robin";
      case RoutingPolicy::LeastOutstandingTokens:
        return "least-outstanding";
      case RoutingPolicy::FutureMemory:
        return "future-memory";
      case RoutingPolicy::PrefixAffinity:
        return "prefix-affinity";
      case RoutingPolicy::PrefillLoad:
        return "prefill-load";
    }
    return "unknown";
}

bool
parseRoutingPolicy(std::string_view name, RoutingPolicy &out)
{
    for (const RoutingPolicy policy :
         {RoutingPolicy::RoundRobin,
          RoutingPolicy::LeastOutstandingTokens,
          RoutingPolicy::FutureMemory,
          RoutingPolicy::PrefixAffinity,
          RoutingPolicy::PrefillLoad}) {
        if (name == routingPolicyName(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

ServingCluster::ServingCluster(
    std::vector<std::unique_ptr<engine::ServingEngine>> instances,
    RoutingPolicy policy)
    : ownedContext_(std::make_unique<sim::SimContext>()),
      context_(ownedContext_.get()), policy_(policy),
      routingPredictor_(1000)
{
    LIGHTLLM_ASSERT(!instances.empty(),
                    "cluster needs at least one instance");
    for (auto &instance : instances)
        adoptInstance(std::move(instance));
    peakInstances_ = instances_.size();
}

ServingCluster::ServingCluster(
    std::vector<std::unique_ptr<engine::ServingEngine>> instances,
    RoutingPolicy policy, sim::SimContext &context)
    : context_(&context), policy_(policy), routingPredictor_(1000)
{
    LIGHTLLM_ASSERT(!instances.empty(),
                    "cluster needs at least one instance");
    for (auto &instance : instances)
        adoptInstance(std::move(instance));
    peakInstances_ = instances_.size();
}

void
ServingCluster::adoptInstance(
    std::unique_ptr<engine::ServingEngine> engine)
{
    const std::size_t index = instances_.size();
    // Under a sharded hub the engine's Step events run on a worker
    // shard; everything router-facing (this cluster's handlers) stays
    // on the coordinator's Delivery queue. Placement is least-loaded
    // by live engine count so provisioned replacements land on the
    // shard freed by the drained instance they replace.
    if (sim::ShardedSimContext *hub = context_->coordinatedHub()) {
        const std::uint32_t shard = hub->assignShard();
        engine->attachContext(hub->shardContext(shard));
        hub->noteSpawnFloor(engine->deliverySpawnFloor());
        shardOf_.push_back(shard);
    } else {
        engine->attachContext(*context_);
        shardOf_.push_back(0);
    }
    costRate_.push_back(
        engine->perfModel().hardwareSpec().dollarsPerSecond);
    engine->setOnFinish(
        [this, index](const workload::RequestSpec &spec,
                      Tick tick) {
            handleFinish(index, spec, tick);
        });
    engine->setOnRecord(
        [this](const metrics::RequestRecord &record) {
            if (autoscaler_)
                autoscaler_->onRecord(record);
        });
    if (traceRecorder_ != nullptr) {
        engine->attachTrace(traceRecorder_->createEngine(
            traceLabelPrefix_ + "-" + std::to_string(index)));
    }
    instances_.push_back(std::move(engine));
    draining_.push_back(false);
    warming_.push_back(false);
    routedCounts_.push_back(0);
    routedTokens_.push_back(0);
    predictedLoad_.push_back(0);
    inFlight_.push_back(0);
    provisionedAt_.push_back(context_->now());
    retiredAt_.push_back(-1);
}

void
ServingCluster::setTraceRecorder(trace::TraceRecorder *recorder,
                                 std::string label_prefix)
{
    traceRecorder_ = recorder;
    traceLabelPrefix_ = std::move(label_prefix);
    if (traceRecorder_ == nullptr)
        return;
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        instances_[i]->attachTrace(traceRecorder_->createEngine(
            traceLabelPrefix_ + "-" + std::to_string(i)));
    }
}

void
ServingCluster::setInstanceFactory(InstanceFactory factory)
{
    LIGHTLLM_ASSERT(factory != nullptr, "null instance factory");
    factory_ = std::move(factory);
}

void
ServingCluster::enableAutoscale(
    const autoscale::AutoscaleConfig &config,
    std::unique_ptr<autoscale::ScalePolicy> policy)
{
    LIGHTLLM_ASSERT(!ran_, "enableAutoscale must precede run()");
    LIGHTLLM_ASSERT(offeredRequests_ == 0,
                    "enableAutoscale must precede submissions "
                    "(routing defers to arrival ticks only for "
                    "elastic fleets)");
    LIGHTLLM_ASSERT(factory_ != nullptr,
                    "autoscaling needs an instance factory "
                    "(setInstanceFactory)");
    LIGHTLLM_ASSERT(instances_.size() >= config.minInstances &&
                        instances_.size() <= config.maxInstances,
                    "initial fleet of ", instances_.size(),
                    " outside [", config.minInstances, ", ",
                    config.maxInstances, "]");
    autoscaler_ = std::make_unique<autoscale::AutoScaler>(
        config, std::move(policy));
}

std::size_t
ServingCluster::provisionInstance(Tick warmup_delay)
{
    LIGHTLLM_ASSERT(factory_ != nullptr,
                    "provisioning needs an instance factory");
    LIGHTLLM_ASSERT(warmup_delay >= 0, "negative warm-up delay");
    const std::size_t index = instances_.size();
    adoptInstance(factory_());
    warming_[index] = true;
    ++scaleUpEvents_;

    std::size_t alive = 0;
    for (const Tick retired : retiredAt_)
        alive += retired < 0 ? 1 : 0;
    peakInstances_ = std::max(peakInstances_, alive);

    // Warm-up completion: the instance joins the router only after
    // the cold-start delay, even though its cost clock (and event
    // loop) started now.
    context_->schedule(context_->now() + warmup_delay,
                      [this, index](Tick) {
                          warming_[index] = false;
                          stealWork(index);
                      });
    return index;
}

void
ServingCluster::stealWork(std::size_t thief)
{
    if (!autoscaler_)
        return;
    const std::size_t budget = autoscaler_->config().stealOnWarm;
    if (budget == 0 || draining_[thief])
        return;

    // Most-backlogged routable peer (queued, never-admitted
    // requests only — admitted work cannot move).
    std::size_t victim = instances_.size();
    std::size_t depth = 0;
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        if (i == thief || !routable(i))
            continue;
        const std::size_t waiting = instances_[i]->waitingSize();
        if (waiting > depth) {
            depth = waiting;
            victim = i;
        }
    }
    if (victim == instances_.size())
        return;

    // Same bookkeeping unwind as drainNow(): the victim never
    // serves this work, so its charges and in-flight entries move
    // with the requests through the router.
    const auto stolen_batch = instances_[victim]->stealQueued(budget);
    for (const auto &stolen : stolen_batch) {
        const auto it = charges_.find(stolen.spec.id);
        if (it != charges_.end()) {
            predictedLoad_[it->second.first] -= it->second.second;
            charges_.erase(it);
        }
        routedTokens_[victim] -= stolen.spec.effectiveOutputLen();
        LIGHTLLM_ASSERT(inFlight_[victim] > 0,
                        "stolen request without an in-flight entry");
        --inFlight_[victim];
        routeSubmission(stolen.spec, stolen.redispatchAt,
                        stolen.arrivalStamp);
    }
}

std::size_t
ServingCluster::routableInstances() const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < instances_.size(); ++i)
        count += routable(i) ? 1 : 0;
    return count;
}

std::size_t
ServingCluster::warmingInstances() const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < instances_.size(); ++i)
        count += (warming_[i] && !draining_[i]) ? 1 : 0;
    return count;
}

std::size_t
ServingCluster::nonDrainingInstances() const
{
    std::size_t count = 0;
    for (const bool draining : draining_)
        count += draining ? 0 : 1;
    return count;
}

bool
ServingCluster::retireInstance(std::size_t keep_at_least)
{
    if (nonDrainingInstances() <= keep_at_least)
        return false;

    // Cheapest first: a warming instance never took traffic, so
    // retiring it is free. Otherwise drain the routable instance
    // with the least outstanding work — but never the last one
    // still accepting traffic.
    std::size_t victim = instances_.size();
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        if (warming_[i] && !draining_[i]) {
            victim = i;
            break;
        }
    }
    if (victim == instances_.size()) {
        if (routableInstances() <= 1)
            return false;
        TokenCount least = std::numeric_limits<TokenCount>::max();
        for (std::size_t i = 0; i < instances_.size(); ++i) {
            if (!routable(i))
                continue;
            const TokenCount load =
                instances_[i]->outstandingTokens();
            if (load < least) {
                least = load;
                victim = i;
            }
        }
    }
    LIGHTLLM_ASSERT(victim < instances_.size(),
                    "no retirable instance");
    ++scaleDownEvents_;
    drainNow(victim);
    return true;
}

autoscale::FleetSnapshot
ServingCluster::snapshot()
{
    autoscale::FleetSnapshot snap;
    snap.now = context_->now();
    snap.instances.reserve(instances_.size());
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        autoscale::InstanceSnapshot instance;
        instance.routable = routable(i);
        instance.warming = warming_[i] && !draining_[i];
        instance.draining = draining_[i];
        instance.capacityTokens =
            instances_[i]->capacityTokens();
        instance.usedTokens =
            instances_[i]->kvManager().usedTokens();
        instance.outstandingTokens =
            instances_[i]->outstandingTokens();
        instance.predictedLoadTokens =
            instances_[i]->predictedLoadTokens();
        instance.waiting = instances_[i]->waitingSize();
        instance.running = instances_[i]->runningSize();
        snap.instances.push_back(instance);
    }
    return snap;
}

void
ServingCluster::controlOnce(Tick)
{
    LIGHTLLM_ASSERT(autoscaler_ != nullptr,
                    "controlOnce requires autoscaling");
    const autoscale::FleetSnapshot snap = snapshot();
    const int delta = autoscaler_->evaluate(snap);
    if (delta > 0) {
        const std::size_t max_size =
            autoscaler_->config().maxInstances;
        for (int i = 0; i < delta; ++i) {
            if (nonDrainingInstances() >= max_size)
                break;
            provisionInstance(autoscaler_->config()
                                  .provisionDelay);
        }
    } else if (delta < 0) {
        retireInstance(autoscaler_->config().minInstances);
    }
}

void
ServingCluster::controlTick(Tick when)
{
    controlOnce(when);

    // Keep ticking while anything can still happen. The fleet is
    // quiescent once every offered request finished (or was shed)
    // and no instance holds work or pending arrivals — after that,
    // only bookkeeping events (e.g. a far-future warm-up) could
    // remain, and no further control decision can matter.
    std::size_t finished = 0;
    bool busy = false;
    for (const auto &instance : instances_) {
        finished += instance->numFinished();
        busy = busy || instance->hasWork() ||
               instance->hasPendingArrivals();
    }
    const bool quiescent = !busy &&
        shedRequests_ + static_cast<std::int64_t>(finished) ==
            offeredRequests_;
    if (!context_->empty() && !quiescent) {
        context_->schedule(
            when + autoscaler_->config().controlInterval,
            [this](Tick tick) { controlTick(tick); });
    }
}

void
ServingCluster::setOnFinish(FinishCallback callback)
{
    onFinish_ = std::move(callback);
}

void
ServingCluster::warmRoutingHistory(
    std::span<const TokenCount> lengths)
{
    routingPredictor_.warm(lengths);
}

void
ServingCluster::handleFinish(std::size_t instance,
                             const workload::RequestSpec &spec,
                             Tick tick)
{
    routingPredictor_.observe(spec.effectiveOutputLen());
    const auto it = charges_.find(spec.id);
    if (it != charges_.end()) {
        const auto [charged, charge] = it->second;
        predictedLoad_[charged] -= charge;
        charges_.erase(it);
    }
    LIGHTLLM_ASSERT(inFlight_[instance] > 0,
                    "finish without a routed request on instance ",
                    instance);
    --inFlight_[instance];
    lastFinishTick_ = std::max(lastFinishTick_, tick);
    if (draining_[instance] && inFlight_[instance] == 0 &&
        retiredAt_[instance] < 0) {
        // The drained instance just went idle: its cost clock
        // stops here.
        retiredAt_[instance] = tick;
    }
    if (onFinish_)
        onFinish_(spec, tick);
}

TokenCount
ServingCluster::predictFootprint(const workload::RequestSpec &spec)
{
    // A point estimate is the right prediction for load balancing
    // (unlike admission, placement needs no completion stagger).
    return routingPredictor_.predictFootprint(spec.inputLen,
                                              spec.maxNewTokens);
}

void
ServingCluster::recordSubmissions(bool enabled)
{
    std::size_t routed = 0;
    for (std::size_t count : routedCounts_)
        routed += count;
    LIGHTLLM_ASSERT(routed == 0,
                    "recordSubmissions must precede submissions");
    recordSubmissions_ = enabled;
}

std::size_t
ServingCluster::leastLoaded(
    const std::function<double(std::size_t)> &load_of) const
{
    // Normalise by instance capacity so heterogeneous fleets
    // compare fairly; ties keep the lowest index.
    std::size_t best = instances_.size();
    double best_load = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        if (!routable(i))
            continue;
        const double load = load_of(i) /
            static_cast<double>(instances_[i]->capacityTokens());
        if (load < best_load) {
            best_load = load;
            best = i;
        }
    }
    LIGHTLLM_ASSERT(best < instances_.size(),
                    "no routable instance (all draining?)");
    return best;
}

std::size_t
ServingCluster::pickInstance(TokenCount footprint,
                             std::uint64_t session_key)
{
    switch (policy_) {
      case RoutingPolicy::RoundRobin:
      {
        for (std::size_t probe = 0; probe < instances_.size();
             ++probe) {
            const std::size_t index = nextRoundRobin_;
            nextRoundRobin_ =
                (nextRoundRobin_ + 1) % instances_.size();
            if (routable(index))
                return index;
        }
        panic("no routable instance (all draining?)");
      }
      case RoutingPolicy::LeastOutstandingTokens:
        // Current resident + queued footprint: what a router can
        // observe without the scheduler's help.
        return leastLoaded([this](std::size_t i) {
            return static_cast<double>(
                instances_[i]->outstandingTokens());
        });
      case RoutingPolicy::FutureMemory:
        // Router-side Past-Future estimate: predicted in-flight
        // load (including this request) over capacity.
        return leastLoaded([this, footprint](std::size_t i) {
            return static_cast<double>(predictedLoad_[i] +
                                       footprint);
        });
      case RoutingPolicy::PrefixAffinity:
      {
        // Keep a session's turns where its prefix is cached; place
        // unknown sessions (and key-less traffic) least-loaded.
        if (session_key != 0) {
            const auto it = sessionHome_.find(session_key);
            if (it != sessionHome_.end() &&
                routable(it->second)) {
                return it->second;
            }
        }
        const std::size_t index =
            leastLoaded([this](std::size_t i) {
                return static_cast<double>(
                    instances_[i]->outstandingTokens());
            });
        if (session_key != 0)
            sessionHome_[session_key] = index;
        return index;
      }
      case RoutingPolicy::PrefillLoad:
        // Prefill-pool placement: queueing delay there is set by
        // the prompt tokens still to prefill, not by resident
        // memory (prefill-side requests release KV quickly).
        return leastLoaded([this](std::size_t i) {
            return static_cast<double>(
                instances_[i]->pendingPrefillTokens());
        });
    }
    panic("unknown routing policy");
}

void
ServingCluster::submitAt(const workload::RequestSpec &spec,
                         Tick arrival)
{
    const Tick when = std::max(arrival, context_->now());
    ++offeredRequests_;
    if (!autoscaler_) {
        // Legacy path (bit-exact): route at submission time.
        routeSubmission(spec, when, when);
        return;
    }
    // Elastic fleet: defer routing to the arrival tick so the
    // decision sees the fleet as it exists *then* — including
    // instances provisioned meanwhile — and so the shed-or-queue
    // check judges the actual load at arrival, not at submission
    // (open-loop workloads pre-schedule everything up front).
    context_->schedule(when, [this, spec](Tick tick) {
        // Snapshot + footprint are per-arrival costs; pay them
        // only when a shed policy can actually use them. A shed
        // request gets no completion callback — shedding models an
        // open-loop client receiving a rejection (closed-loop
        // generators would stall waiting on it; the CLI forbids
        // that combination).
        if (autoscaler_->config().shedPolicy !=
                autoscale::ShedPolicy::Never) {
            const TokenCount footprint = predictFootprint(spec);
            if (autoscaler_->shouldShed(snapshot(), footprint,
                                        spec.cls)) {
                ++shedRequests_;
                return;
            }
            // Routed work feeds the recent-usage signal behind
            // fairness-aware shedding.
            autoscaler_->noteRouted(spec.cls, footprint, tick);
        }
        routeSubmission(spec, tick, tick);
    });
}

void
ServingCluster::routeSubmission(const workload::RequestSpec &spec,
                                Tick deliver, Tick stamp)
{
    // One footprint estimate per submission: the placement decision
    // and the charge must agree by construction.
    const TokenCount footprint =
        policy_ == RoutingPolicy::FutureMemory
        ? predictFootprint(spec)
        : 0;
    const std::size_t index =
        pickInstance(footprint, spec.sessionKey);
    routedCounts_[index] += 1;
    routedTokens_[index] += spec.effectiveOutputLen();
    ++inFlight_[index];
    if (policy_ == RoutingPolicy::FutureMemory) {
        predictedLoad_[index] += footprint;
        charges_[spec.id] = std::make_pair(index, footprint);
    }
    if (recordSubmissions_) {
        // Mirror the engine's arrival clamp so the log records the
        // tick the arrival event actually fires.
        submissionLog_.push_back(RoutedSubmission{
            index, spec, std::max(deliver, context_->now()), stamp});
    }
    instances_[index]->submitStamped(spec, deliver, stamp);
}

void
ServingCluster::scheduleDrain(std::size_t index, Tick when)
{
    LIGHTLLM_ASSERT(index < instances_.size(), "bad instance index");
    LIGHTLLM_ASSERT(!ran_, "scheduleDrain must precede run()");
    context_->schedule(when,
                      [this, index](Tick) { drainNow(index); });
}

void
ServingCluster::drainNow(std::size_t index)
{
    LIGHTLLM_ASSERT(!draining_[index], "instance ", index,
                    " drained twice");
    // The surviving fleet must be non-empty; when instance `index`
    // is the only one left undrained, draining it would retire the
    // whole fleet.
    std::size_t undrained_others = 0;
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        if (i != index && !draining_[i])
            ++undrained_others;
    }
    LIGHTLLM_ASSERT(undrained_others > 0, "cannot drain instance ",
                    index,
                    ": it is the last undrained instance of the "
                    "fleet");
    draining_[index] = true;
    if (sim::ShardedSimContext *hub = context_->coordinatedHub())
        hub->noteShardReleased(shardOf_[index]);

    // Requests the instance never admitted go back through the
    // router with their original arrival stamps (latency metrics
    // keep counting from the first submission). Their FutureMemory
    // charges move with them: drop the drained instance's charge
    // first so re-routing re-charges the new target.
    for (const auto &drained : instances_[index]->drainQueued()) {
        const auto it = charges_.find(drained.spec.id);
        if (it != charges_.end()) {
            predictedLoad_[it->second.first] -= it->second.second;
            charges_.erase(it);
        }
        // The drained instance never serves this work: take its
        // tokens back so tokenImbalance() reflects served load
        // (routedCounts_ intentionally keeps counting decisions).
        routedTokens_[index] -= drained.spec.effectiveOutputLen();
        LIGHTLLM_ASSERT(inFlight_[index] > 0,
                        "drained request without an in-flight "
                        "entry");
        --inFlight_[index];
        routeSubmission(drained.spec, drained.redispatchAt,
                        drained.arrivalStamp);
    }
    if (inFlight_[index] == 0 && retiredAt_[index] < 0) {
        // Nothing left running: the instance is idle from here on.
        retiredAt_[index] = context_->now();
    }
}

metrics::RunReport
ServingCluster::run()
{
    LIGHTLLM_ASSERT(!ran_, "cluster instances are single-run");
    ran_ = true;

    // Start the autoscale control loop one interval in.
    if (autoscaler_) {
        context_->schedule(
            autoscaler_->config().controlInterval,
            [this](Tick tick) { controlTick(tick); });
    }

    // Exact co-simulation: every arrival, iteration boundary,
    // completion, and drain fires in global (tick, class, FIFO)
    // order on the shared context. Engines schedule their own next
    // iterations, so running the queue dry runs the fleet dry.
    context_->runToCompletion();
    return finalizeReport();
}

metrics::RunReport
ServingCluster::finalizeReport(Tick end_of_service)
{
    if (end_of_service < 0)
        end_of_service = lastFinishTick_;

    // Merge per-instance reports.
    std::vector<metrics::RunReport> reports;
    reports.reserve(instances_.size());
    for (const auto &instance : instances_)
        reports.push_back(instance->report());
    metrics::RunReport merged = metrics::mergeReports(
        reports, "Cluster(" +
                     std::string(routingPolicyName(policy_)) + " x" +
                     std::to_string(instances_.size()) + ")");

    // Instance-seconds: each instance costs from its provision tick
    // until it went idle after draining, or the end of service.
    // The end-of-service tick is tracked absolutely (the last
    // completion anywhere) because per-instance makespans are
    // measurement-relative under --warmup.
    instanceSecondsTotal_ = 0.0;
    instanceCostTotal_ = 0.0;
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        const Tick end = retiredAt_[i] >= 0 ? retiredAt_[i]
                                            : end_of_service;
        const double alive = ticksToSeconds(
            std::max<Tick>(0, end - provisionedAt_[i]));
        instanceSecondsTotal_ += alive;
        instanceCostTotal_ += alive * costRate_[i];
    }

    merged.shedRequests = shedRequests_;
    merged.offeredRequests = offeredRequests_;
    merged.instanceSeconds = instanceSecondsTotal_;
    merged.instanceCost = instanceCostTotal_;
    merged.scaleUpEvents = scaleUpEvents_;
    merged.scaleDownEvents = scaleDownEvents_;
    merged.peakInstances = peakInstances_;
    return merged;
}

metrics::RunReport
ServingCluster::instanceReport(std::size_t index) const
{
    LIGHTLLM_ASSERT(index < instances_.size(), "bad instance index");
    return instances_[index]->report();
}

double
ServingCluster::tokenImbalance() const
{
    TokenCount max_tokens = 0;
    TokenCount total = 0;
    for (TokenCount tokens : routedTokens_) {
        max_tokens = std::max(max_tokens, tokens);
        total += tokens;
    }
    if (total == 0)
        return 0.0;
    const double mean = static_cast<double>(total) /
        static_cast<double>(routedTokens_.size());
    return static_cast<double>(max_tokens) / mean - 1.0;
}

} // namespace cluster
} // namespace lightllm
