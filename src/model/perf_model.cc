#include "model/perf_model.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace lightllm {
namespace model {

PerfModel::PerfModel(ModelSpec model_spec, HardwareSpec hardware_spec,
                     PerfModelParams params)
    : model_(std::move(model_spec)),
      hardware_(std::move(hardware_spec)),
      params_(params)
{
    const double usable =
        static_cast<double>(hardware_.totalMemBytes()) *
        params_.usableMemFraction;
    const double weights =
        static_cast<double>(model_.weightBytes());
    const double reserve =
        weights * params_.activationReserveFraction;
    const double kv_budget = usable - weights - reserve;
    if (kv_budget <= 0) {
        fatal("model ", model_.name, " does not fit on ",
              hardware_.name, ": weights ", model_.weightBytes(),
              " B vs usable ", usable, " B");
    }
    tokenCapacity_ = static_cast<TokenCount>(
        kv_budget / static_cast<double>(model_.kvBytesPerToken()));
    LIGHTLLM_ASSERT(tokenCapacity_ > 0, "zero token capacity");
}

double
PerfModel::computeSeconds(TokenCount tokens) const
{
    const double flops =
        model_.flopsPerToken() * static_cast<double>(tokens);
    return flops /
        (hardware_.effectiveFlops() * params_.prefillFlopEfficiency);
}

double
PerfModel::memorySeconds(TokenCount kv_tokens) const
{
    const double bytes =
        static_cast<double>(model_.weightBytes()) +
        static_cast<double>(kv_tokens) *
            static_cast<double>(model_.kvBytesPerToken());
    return bytes /
        (hardware_.effectiveBandwidth() * params_.bandwidthEfficiency);
}

Tick
PerfModel::prefillLatency(TokenCount prompt_tokens) const
{
    LIGHTLLM_ASSERT(prompt_tokens >= 0, "negative prompt length");
    // Compute-bound matmuls over the prompt, plus the quadratic
    // attention term (usually small next to the matmuls), but never
    // faster than a single streaming pass over the weights.
    const double matmul = computeSeconds(prompt_tokens);
    const double n = static_cast<double>(prompt_tokens);
    const double attn_flops = 4.0 * n * n *
        static_cast<double>(model_.numLayers) *
        static_cast<double>(model_.numHeads * model_.headDim);
    const double attn = attn_flops /
        (hardware_.effectiveFlops() * params_.prefillFlopEfficiency);
    const double weight_floor = memorySeconds(0);
    const double seconds =
        std::max(matmul + attn, weight_floor) +
        params_.iterationOverheadSeconds;
    return secondsToTicks(seconds * params_.timeFactor);
}

Tick
PerfModel::decodeLatency(std::int64_t batch_size,
                         TokenCount batch_kv_tokens) const
{
    LIGHTLLM_ASSERT(batch_size >= 0, "negative batch size");
    LIGHTLLM_ASSERT(batch_kv_tokens >= 0, "negative KV footprint");
    // Bandwidth-bound: stream weights + the batch's KV cache; the
    // roofline keeps the compute term in case of very large batches.
    const double mem = memorySeconds(batch_kv_tokens);
    const double compute = computeSeconds(batch_size);
    const double seconds =
        std::max(mem, compute) + params_.iterationOverheadSeconds;
    return secondsToTicks(seconds * params_.timeFactor);
}

Tick
PerfModel::fusedStepLatency(std::int64_t batch_size,
                            TokenCount batch_kv_tokens,
                            TokenCount chunk_tokens) const
{
    // A fused step streams weights once; the prompt chunk adds its
    // compute on top of the decode step's bandwidth cost.
    const double mem = memorySeconds(batch_kv_tokens);
    const double compute =
        computeSeconds(batch_size + chunk_tokens);
    const double seconds =
        std::max(mem, compute) + params_.iterationOverheadSeconds;
    return secondsToTicks(seconds * params_.timeFactor);
}

Tick
PerfModel::swapLatency(TokenCount kv_tokens) const
{
    LIGHTLLM_ASSERT(kv_tokens >= 0, "negative swap size");
    const double bytes = static_cast<double>(kv_tokens) *
        static_cast<double>(model_.kvBytesPerToken());
    // KV shards move over every device's host link in parallel.
    const double bandwidth = hardware_.hostLinkBandwidth *
        static_cast<double>(hardware_.numDevices);
    const double seconds =
        bytes / bandwidth + 0.0005;  // transfer + launch overhead
    return secondsToTicks(seconds * params_.timeFactor);
}

} // namespace model
} // namespace lightllm
