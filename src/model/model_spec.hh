/**
 * @file
 * Architectural descriptions of the served models.
 *
 * Only the quantities that drive serving behaviour are modelled:
 * parameter count (weight bytes and per-token FLOPs), transformer
 * shape (KV-cache bytes per token), and, for multimodal models, the
 * number of image tokens each request's vision encoder prepends.
 * Shapes follow the published Llama-2 / Qwen-VL / LLaVA-1.5 configs.
 */

#ifndef LIGHTLLM_MODEL_MODEL_SPEC_HH
#define LIGHTLLM_MODEL_MODEL_SPEC_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace lightllm {
namespace model {

/** Static description of a served LLM. */
struct ModelSpec
{
    std::string name;

    /** Total parameter count. */
    std::int64_t numParams = 0;

    /** Number of transformer layers. */
    int numLayers = 0;

    /** Hidden (embedding) dimension. */
    int hiddenSize = 0;

    /** Attention query heads. */
    int numHeads = 0;

    /** KV heads (< numHeads under grouped-query attention). */
    int numKvHeads = 0;

    /** Per-head dimension. */
    int headDim = 0;

    /** Bytes per weight/KV element (2 for FP16/BF16). */
    int dtypeBytes = 2;

    /** Image tokens prepended per request (multimodal; 0 for text). */
    TokenCount imageTokens = 0;

    /** KV-cache bytes consumed by one token slot (K and V). */
    ByteCount kvBytesPerToken() const;

    /** Total bytes of model weights. */
    ByteCount weightBytes() const;

    /** FLOPs to process one token through the full model (~2 * N). */
    double flopsPerToken() const;

    // --- Published model configurations -----------------------------

    static ModelSpec llama2_7b();
    static ModelSpec llama2_13b();
    static ModelSpec llama2_70b();

    /** Qwen-VL-Chat: 7B-class LLM + 256 image tokens per image. */
    static ModelSpec qwenVlChat();

    /** LLaVA-1.5-7B: Llama-2-7B base + 576 image tokens per image. */
    static ModelSpec llava15_7b();

    /** LLaVA-1.5-13B: Llama-2-13B base + 576 image tokens. */
    static ModelSpec llava15_13b();
};

} // namespace model
} // namespace lightllm

#endif // LIGHTLLM_MODEL_MODEL_SPEC_HH
