#include "model/model_spec.hh"

namespace lightllm {
namespace model {

ByteCount
ModelSpec::kvBytesPerToken() const
{
    // K and V, per layer, per KV head, per head dim, in dtype bytes.
    return static_cast<ByteCount>(2) * numLayers * numKvHeads *
        headDim * dtypeBytes;
}

ByteCount
ModelSpec::weightBytes() const
{
    return numParams * dtypeBytes;
}

double
ModelSpec::flopsPerToken() const
{
    // Dense forward pass: ~2 FLOPs per parameter per token.
    return 2.0 * static_cast<double>(numParams);
}

ModelSpec
ModelSpec::llama2_7b()
{
    ModelSpec spec;
    spec.name = "Llama-2-7B";
    spec.numParams = 6'738'000'000;
    spec.numLayers = 32;
    spec.hiddenSize = 4096;
    spec.numHeads = 32;
    spec.numKvHeads = 32;
    spec.headDim = 128;
    return spec;
}

ModelSpec
ModelSpec::llama2_13b()
{
    ModelSpec spec;
    spec.name = "Llama-2-13B";
    spec.numParams = 13'016'000'000;
    spec.numLayers = 40;
    spec.hiddenSize = 5120;
    spec.numHeads = 40;
    spec.numKvHeads = 40;
    spec.headDim = 128;
    return spec;
}

ModelSpec
ModelSpec::llama2_70b()
{
    ModelSpec spec;
    spec.name = "Llama-2-70B";
    spec.numParams = 68'977'000'000;
    spec.numLayers = 80;
    spec.hiddenSize = 8192;
    spec.numHeads = 64;
    spec.numKvHeads = 8;  // grouped-query attention
    spec.headDim = 128;
    return spec;
}

ModelSpec
ModelSpec::qwenVlChat()
{
    ModelSpec spec = llama2_7b();
    spec.name = "Qwen-VL-Chat";
    spec.numParams = 9'600'000'000;  // includes the ViT tower
    spec.imageTokens = 256;
    return spec;
}

ModelSpec
ModelSpec::llava15_7b()
{
    ModelSpec spec = llama2_7b();
    spec.name = "LLaVA-1.5-7B";
    spec.imageTokens = 576;
    return spec;
}

ModelSpec
ModelSpec::llava15_13b()
{
    ModelSpec spec = llama2_13b();
    spec.name = "LLaVA-1.5-13B";
    spec.imageTokens = 576;
    return spec;
}

} // namespace model
} // namespace lightllm
