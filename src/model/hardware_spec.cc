#include "model/hardware_spec.hh"

#include "base/logging.hh"

namespace lightllm {
namespace model {

ByteCount
HardwareSpec::totalMemBytes() const
{
    return memBytesPerDevice * numDevices;
}

double
HardwareSpec::effectiveBandwidth() const
{
    const double scale =
        numDevices > 1 ? tpEfficiency : 1.0;
    return memBandwidthPerDevice * numDevices * scale;
}

double
HardwareSpec::effectiveFlops() const
{
    const double scale =
        numDevices > 1 ? tpEfficiency : 1.0;
    return flopsPerDevice * numDevices * scale;
}

HardwareSpec
HardwareSpec::withTensorParallel(int n) const
{
    LIGHTLLM_ASSERT(n >= 1, "tensor parallel degree must be >= 1");
    HardwareSpec spec = *this;
    spec.numDevices = n;
    spec.dollarsPerSecond = dollarsPerSecond * n;
    if (n > 1)
        spec.name += " x" + std::to_string(n);
    return spec;
}

HardwareSpec
HardwareSpec::a100_80g()
{
    HardwareSpec spec;
    spec.name = "A100-80G";
    spec.memBytesPerDevice = 80ll * 1000 * 1000 * 1000;
    spec.memBandwidthPerDevice = 2.039e12;
    spec.flopsPerDevice = 312e12;
    spec.tpEfficiency = 0.88;  // NVLink
    spec.interconnectBandwidth = 25e9;   // NVLink pair / 200G IB
    spec.interconnectLatency = 0.002;
    spec.dollarsPerSecond = 4.10 / 3600.0;  // on-demand $/hr
    return spec;
}

HardwareSpec
HardwareSpec::h800()
{
    HardwareSpec spec;
    spec.name = "H800";
    spec.memBytesPerDevice = 80ll * 1000 * 1000 * 1000;
    spec.memBandwidthPerDevice = 3.35e12;
    spec.flopsPerDevice = 990e12;
    spec.tpEfficiency = 0.85;  // reduced NVLink vs H100
    spec.interconnectBandwidth = 50e9;   // 400G IB fabric
    spec.interconnectLatency = 0.002;
    spec.dollarsPerSecond = 4.90 / 3600.0;
    return spec;
}

HardwareSpec
HardwareSpec::rtx4090()
{
    HardwareSpec spec;
    spec.name = "RTX-4090";
    spec.memBytesPerDevice = 24ll * 1000 * 1000 * 1000;
    spec.memBandwidthPerDevice = 1.008e12;
    spec.flopsPerDevice = 165e12;
    spec.tpEfficiency = 0.72;  // PCIe interconnect
    spec.interconnectBandwidth = 8e9;    // PCIe 4.0-class NIC path
    spec.interconnectLatency = 0.003;
    spec.dollarsPerSecond = 0.74 / 3600.0;
    return spec;
}

HardwareSpec
HardwareSpec::a30()
{
    HardwareSpec spec;
    spec.name = "A30";
    spec.memBytesPerDevice = 24ll * 1000 * 1000 * 1000;
    spec.memBandwidthPerDevice = 933e9;
    spec.flopsPerDevice = 165e12;
    spec.tpEfficiency = 0.8;
    spec.interconnectBandwidth = 8e9;
    spec.interconnectLatency = 0.002;
    spec.dollarsPerSecond = 1.10 / 3600.0;
    return spec;
}

} // namespace model
} // namespace lightllm
