#include "model/hardware_spec.hh"

#include "base/logging.hh"

namespace lightllm {
namespace model {

ByteCount
HardwareSpec::totalMemBytes() const
{
    return memBytesPerDevice * numDevices;
}

double
HardwareSpec::effectiveBandwidth() const
{
    const double scale =
        numDevices > 1 ? tpEfficiency : 1.0;
    return memBandwidthPerDevice * numDevices * scale;
}

double
HardwareSpec::effectiveFlops() const
{
    const double scale =
        numDevices > 1 ? tpEfficiency : 1.0;
    return flopsPerDevice * numDevices * scale;
}

HardwareSpec
HardwareSpec::withTensorParallel(int n) const
{
    LIGHTLLM_ASSERT(n >= 1, "tensor parallel degree must be >= 1");
    HardwareSpec spec = *this;
    spec.numDevices = n;
    if (n > 1)
        spec.name += " x" + std::to_string(n);
    return spec;
}

HardwareSpec
HardwareSpec::a100_80g()
{
    HardwareSpec spec;
    spec.name = "A100-80G";
    spec.memBytesPerDevice = 80ll * 1000 * 1000 * 1000;
    spec.memBandwidthPerDevice = 2.039e12;
    spec.flopsPerDevice = 312e12;
    spec.tpEfficiency = 0.88;  // NVLink
    return spec;
}

HardwareSpec
HardwareSpec::h800()
{
    HardwareSpec spec;
    spec.name = "H800";
    spec.memBytesPerDevice = 80ll * 1000 * 1000 * 1000;
    spec.memBandwidthPerDevice = 3.35e12;
    spec.flopsPerDevice = 990e12;
    spec.tpEfficiency = 0.85;  // reduced NVLink vs H100
    return spec;
}

HardwareSpec
HardwareSpec::rtx4090()
{
    HardwareSpec spec;
    spec.name = "RTX-4090";
    spec.memBytesPerDevice = 24ll * 1000 * 1000 * 1000;
    spec.memBandwidthPerDevice = 1.008e12;
    spec.flopsPerDevice = 165e12;
    spec.tpEfficiency = 0.72;  // PCIe interconnect
    return spec;
}

HardwareSpec
HardwareSpec::a30()
{
    HardwareSpec spec;
    spec.name = "A30";
    spec.memBytesPerDevice = 24ll * 1000 * 1000 * 1000;
    spec.memBandwidthPerDevice = 933e9;
    spec.flopsPerDevice = 165e12;
    spec.tpEfficiency = 0.8;
    return spec;
}

} // namespace model
} // namespace lightllm
