/**
 * @file
 * GPU platform descriptions used by the performance model.
 *
 * Numbers are published per-device specifications: HBM/GDDR size,
 * memory bandwidth, and dense FP16/BF16 throughput. Tensor
 * parallelism aggregates devices with an efficiency factor that
 * accounts for all-reduce overhead (NVLink vs PCIe).
 */

#ifndef LIGHTLLM_MODEL_HARDWARE_SPEC_HH
#define LIGHTLLM_MODEL_HARDWARE_SPEC_HH

#include <string>

#include "base/types.hh"

namespace lightllm {
namespace model {

/** Static description of the serving hardware. */
struct HardwareSpec
{
    std::string name;

    /** Device memory per GPU in bytes. */
    ByteCount memBytesPerDevice = 0;

    /** Memory bandwidth per GPU in bytes/second. */
    double memBandwidthPerDevice = 0.0;

    /** Dense FP16 throughput per GPU in FLOP/s. */
    double flopsPerDevice = 0.0;

    /** Number of tensor-parallel devices. */
    int numDevices = 1;

    /** Scaling efficiency when numDevices > 1 (interconnect cost). */
    double tpEfficiency = 0.85;

    /** Host link (PCIe) bandwidth per device in bytes/second, used
     *  by swap-based eviction (KV offload to host memory). */
    double hostLinkBandwidth = 25e9;

    /** Inter-instance interconnect bandwidth in bytes/second, used
     *  by disaggregated serving to migrate KV caches between the
     *  prefill and decode pools (NVLink/IB on datacenter parts,
     *  PCIe-class on workstation cards). */
    double interconnectBandwidth = 25e9;

    /** Fixed per-transfer latency of the interconnect in seconds
     *  (connection setup, descriptor posting, sync). */
    double interconnectLatency = 0.002;

    /** On-demand price of the platform in dollars per second (all
     *  tensor-parallel devices included), for cost-axis reporting. */
    double dollarsPerSecond = 0.0;

    /** Total memory across devices. */
    ByteCount totalMemBytes() const;

    /** Aggregate effective bandwidth (with TP efficiency). */
    double effectiveBandwidth() const;

    /** Aggregate effective FP16 throughput (with TP efficiency). */
    double effectiveFlops() const;

    /** Copy of this spec spread across n tensor-parallel devices. */
    HardwareSpec withTensorParallel(int n) const;

    // --- Platforms used in the paper's evaluation --------------------

    static HardwareSpec a100_80g();
    static HardwareSpec h800();
    static HardwareSpec rtx4090();
    static HardwareSpec a30();
};

} // namespace model
} // namespace lightllm

#endif // LIGHTLLM_MODEL_HARDWARE_SPEC_HH
