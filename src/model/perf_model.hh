/**
 * @file
 * Roofline performance model for serving iterations.
 *
 * This substitutes for GPU execution. The first-order structure of
 * LLM serving latency is:
 *
 *  - prefill is compute-bound: time ~ prompt_tokens * 2 * params /
 *    achievable FLOPs, plus a weight-read floor;
 *  - decode is memory-bandwidth-bound: every step streams the full
 *    weights plus the KV cache of the running batch from HBM;
 *  - both pay a fixed per-iteration kernel-launch/framework overhead.
 *
 * The scheduler under study only observes these durations (and the
 * memory occupancy), so reproducing this structure is sufficient for
 * the paper's experiments; absolute values are calibrated to the
 * published hardware specs and sanity-checked in tests against
 * commonly reported A100 latencies.
 */

#ifndef LIGHTLLM_MODEL_PERF_MODEL_HH
#define LIGHTLLM_MODEL_PERF_MODEL_HH

#include "base/types.hh"
#include "model/hardware_spec.hh"
#include "model/model_spec.hh"

namespace lightllm {
namespace model {

/** Tunable efficiency constants of the roofline model. */
struct PerfModelParams
{
    /** Fraction of device memory usable after allocator overheads. */
    double usableMemFraction = 0.92;

    /** Activation / workspace reserve as a fraction of weights. */
    double activationReserveFraction = 0.08;

    /** Achievable fraction of peak bandwidth in decode kernels. */
    double bandwidthEfficiency = 0.85;

    /** Achievable fraction of peak FLOPs in prefill (MFU). */
    double prefillFlopEfficiency = 0.55;

    /** Fixed per-iteration overhead (kernel launches, python glue). */
    double iterationOverheadSeconds = 0.004;

    /** Multiplier applied to all latencies (framework speed knob). */
    double timeFactor = 1.0;
};

/** Latency and capacity model for one (model, hardware) pairing. */
class PerfModel
{
  public:
    PerfModel(ModelSpec model_spec, HardwareSpec hardware_spec,
              PerfModelParams params = {});

    /**
     * KV-cache token capacity: usable memory minus weights and
     * activation reserve, divided by KV bytes per token.
     */
    TokenCount tokenCapacity() const { return tokenCapacity_; }

    /**
     * Duration of a prefill iteration over `prompt_tokens` prompt
     * tokens (attention quadratic term included).
     */
    Tick prefillLatency(TokenCount prompt_tokens) const;

    /**
     * Duration of one decode iteration for `batch_size` requests
     * whose KV caches total `batch_kv_tokens` token slots.
     */
    Tick decodeLatency(std::int64_t batch_size,
                       TokenCount batch_kv_tokens) const;

    /**
     * Duration of a split-fuse iteration: a decode step over the
     * running batch fused with `chunk_tokens` prompt tokens of a
     * pending prefill (DeepSpeed-MII style).
     */
    Tick fusedStepLatency(std::int64_t batch_size,
                          TokenCount batch_kv_tokens,
                          TokenCount chunk_tokens) const;

    /**
     * Time to move `kv_tokens` of KV cache across the host link in
     * one direction (swap-based eviction / restore).
     */
    Tick swapLatency(TokenCount kv_tokens) const;

    const ModelSpec &modelSpec() const { return model_; }
    const HardwareSpec &hardwareSpec() const { return hardware_; }
    const PerfModelParams &params() const { return params_; }

    /** Weight bytes of the model (convenience passthrough). */
    ByteCount weightBytes() const { return model_.weightBytes(); }

  private:
    /** Compute-bound seconds to push `tokens` through the model. */
    double computeSeconds(TokenCount tokens) const;

    /** Memory-bound seconds to stream weights + `kv_tokens` of KV. */
    double memorySeconds(TokenCount kv_tokens) const;

    ModelSpec model_;
    HardwareSpec hardware_;
    PerfModelParams params_;
    TokenCount tokenCapacity_ = 0;
};

} // namespace model
} // namespace lightllm

#endif // LIGHTLLM_MODEL_PERF_MODEL_HH
