/**
 * @file
 * Paged KV-cache block manager (PagedAttention-style).
 *
 * KV memory is carved into fixed-size blocks of token slots. Each
 * request owns a block table mapping its logical token positions to
 * physical blocks; blocks are handed out from a free list and
 * returned on release. This reproduces vLLM-style block accounting:
 * a request's last block may be partially filled, so the manager
 * distinguishes token-level occupancy (what the paper's equations
 * reason about) from block-level occupancy (what actually limits
 * allocation).
 */

#ifndef LIGHTLLM_MEMORY_KV_BLOCK_MANAGER_HH
#define LIGHTLLM_MEMORY_KV_BLOCK_MANAGER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace lightllm {
namespace memory {

/** Physical block index within the KV pool. */
using BlockId = std::int32_t;

/** Allocates KV-cache token slots in fixed-size blocks. */
class KvBlockManager
{
  public:
    /**
     * @param capacity_tokens Total token slots in the pool (rounded
     *        down to a whole number of blocks).
     * @param block_size_tokens Token slots per block (>= 1).
     */
    KvBlockManager(TokenCount capacity_tokens,
                   TokenCount block_size_tokens = 16);

    /** Token capacity after rounding to whole blocks. */
    TokenCount capacityTokens() const { return capacityTokens_; }

    TokenCount blockSize() const { return blockSize_; }

    /**
     * Allocate `num_tokens` slots for a new request.
     *
     * @return false (and allocate nothing) when the free list cannot
     *         cover the required blocks or the request already has
     *         an allocation.
     */
    bool allocate(RequestId id, TokenCount num_tokens);

    /**
     * Grow an existing request's allocation by `num_tokens` slots.
     * Fills the slack in the request's last block before taking new
     * blocks.
     *
     * @return false (and change nothing) when insufficient blocks
     *         remain.
     */
    bool extend(RequestId id, TokenCount num_tokens);

    /** Release all blocks owned by the request. */
    void release(RequestId id);

    /** True when `num_tokens` more slots could be allocated now. */
    bool canAllocate(TokenCount num_tokens) const;

    /**
     * True when every request in a batch can extend by one token.
     * Slack in last blocks is considered, so this is exact for the
     * per-step growth pattern of continuous batching.
     */
    bool canExtendBatchByOne(
        const std::vector<RequestId> &ids) const;

    /** Token slots currently assigned to requests. */
    TokenCount usedTokens() const { return usedTokens_; }

    /** Token slots not yet assigned (block slack excluded). */
    TokenCount freeTokens() const;

    /** Blocks currently on the free list. */
    std::int64_t freeBlocks() const
    {
        return static_cast<std::int64_t>(freeList_.size());
    }

    /** Token-level utilization in [0, 1]. */
    double utilization() const;

    /** Tokens allocated to one request; 0 if absent. */
    TokenCount requestTokens(RequestId id) const;

    /** Block table of one request (for attention-kernel mapping). */
    const std::vector<BlockId> &blockTable(RequestId id) const;

    /** Number of live requests. */
    std::size_t numRequests() const { return tables_.size(); }

  private:
    struct Allocation
    {
        TokenCount numTokens = 0;
        std::vector<BlockId> blocks;
    };

    /** Blocks needed to extend an allocation by `extra` tokens. */
    std::int64_t blocksForExtension(const Allocation &alloc,
                                    TokenCount extra) const;

    TokenCount blockSize_;
    TokenCount capacityTokens_;
    std::vector<BlockId> freeList_;
    std::unordered_map<RequestId, Allocation> tables_;
    TokenCount usedTokens_ = 0;
};

} // namespace memory
} // namespace lightllm

#endif // LIGHTLLM_MEMORY_KV_BLOCK_MANAGER_HH
