/**
 * @file
 * Paged KV-cache block manager (PagedAttention-style) with
 * copy-on-write block sharing.
 *
 * KV memory is carved into fixed-size blocks of token slots. Each
 * request owns a block table mapping its logical token positions to
 * physical blocks; blocks are handed out from a free list and
 * returned when their last reference drops. This reproduces
 * vLLM-style block accounting: a request's last block may be
 * partially filled, so the manager distinguishes token-level
 * occupancy (what the paper's equations reason about) from
 * block-level occupancy (what actually limits allocation).
 *
 * Sharing model (PR 4): every physical block is reference-counted.
 * A request may be admitted with a *shared prefix* — a run of full
 * blocks already holding the identical tokens (same system prompt,
 * same conversation history), provided by the prefix cache. Shared
 * blocks are never written again by sharers (a request only appends
 * past its prefix, so divergence allocates fresh blocks — classic
 * copy-on-write with the write window always past the shared
 * region). release() decrements instead of freeing: a block returns
 * to the free list only when no request and no cache entry holds it.
 *
 * Growth accounting: extend() first fills the slack in the
 * allocation's last block (slack = blocks * blockSize - numTokens)
 * and only then takes new blocks from the free list, so a request
 * growing one token per decode step allocates one block every
 * blockSize steps. Shared prefix blocks are always full, hence the
 * last block of any allocation is private and slack arithmetic is
 * unaffected by sharing.
 */

#ifndef LIGHTLLM_MEMORY_KV_BLOCK_MANAGER_HH
#define LIGHTLLM_MEMORY_KV_BLOCK_MANAGER_HH

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace lightllm {
namespace memory {

class PrefixCache;

/** Physical block index within the KV pool. */
using BlockId = std::int32_t;

/** Allocates KV-cache token slots in fixed-size, refcounted blocks. */
class KvBlockManager
{
  public:
    /**
     * @param capacity_tokens Total token slots in the pool (rounded
     *        down to a whole number of blocks).
     * @param block_size_tokens Token slots per block (>= 1).
     */
    KvBlockManager(TokenCount capacity_tokens,
                   TokenCount block_size_tokens = 16);

    /** Token capacity after rounding to whole blocks. */
    TokenCount capacityTokens() const { return capacityTokens_; }

    TokenCount blockSize() const { return blockSize_; }

    /**
     * Attach a prefix cache: blocks the cache retains survive
     * release() as reclaimable entries, and allocation reclaims
     * least-recently-used unreferenced cached blocks when the free
     * list alone cannot cover a request. The cache must outlive the
     * manager's use of it.
     */
    void attachPrefixCache(PrefixCache *cache) { cache_ = cache; }

    /**
     * Allocate `num_tokens` slots for a new request.
     *
     * @return false (and allocate nothing) when `num_tokens` is not
     *         positive, the free list (plus reclaimable cached
     *         blocks) cannot cover the required blocks, or the
     *         request already has an allocation.
     */
    bool allocate(RequestId id, TokenCount num_tokens);

    /**
     * Allocate with a shared prefix: each block of `shared_prefix`
     * (full cached blocks, in stream order) gains a reference, and
     * only the remaining `num_tokens - shared * blockSize()` slots
     * are taken from the free list. Requires num_tokens to exceed
     * the shared span so the allocation always ends in a private
     * block.
     *
     * @return false (and change nothing) when the private suffix
     *         cannot be covered or the request already has an
     *         allocation.
     */
    bool allocateShared(RequestId id, TokenCount num_tokens,
                        std::span<const BlockId> shared_prefix);

    /**
     * Grow an existing request's allocation by `num_tokens` slots
     * (> 0). Fills the slack in the request's last (always private)
     * block before taking new blocks: growing by g tokens takes
     * exactly max(0, ceil((g - slack) / blockSize)) blocks.
     *
     * @return false (and change nothing) when insufficient blocks
     *         remain.
     */
    bool extend(RequestId id, TokenCount num_tokens);

    /**
     * Drop the request's references. Blocks whose last reference
     * this was return to the free list; blocks shared with other
     * requests or retained by the prefix cache live on.
     */
    void release(RequestId id);

    /** True when `num_tokens` more slots could be allocated now
     *  (reclaimable cached blocks count as available). */
    bool canAllocate(TokenCount num_tokens) const;

    /**
     * True when every request in a batch can extend by one token.
     * Slack in last blocks is considered, so this is exact for the
     * per-step growth pattern of continuous batching.
     */
    bool canExtendBatchByOne(
        const std::vector<RequestId> &ids) const;

    /**
     * Fused feasibility check plus growth: when every request in
     * `ids` can extend by one token (the canExtendBatchByOne test),
     * apply extend(id, 1) to each in order and return true; when the
     * batch cannot extend, change nothing and return false. State
     * evolution is identical to the split check-then-extend
     * sequence, at one hash lookup per request instead of two —
     * this runs once per decode step on the serving hot path.
     */
    bool extendBatchByOne(const std::vector<RequestId> &ids);

    /**
     * Token slots currently pinned by requests. Physically shared
     * blocks count once no matter how many requests reference them;
     * blocks held only by the prefix cache are reclaimable and do
     * not count. Without sharing this equals the sum of per-request
     * logical tokens (the seed semantics).
     */
    TokenCount usedTokens() const { return usedTokens_; }

    /** Token slots on the free list (reclaimable cached blocks
     *  excluded; see reclaimableBlocks()). */
    TokenCount freeTokens() const;

    /** Blocks currently on the free list. */
    std::int64_t freeBlocks() const
    {
        return static_cast<std::int64_t>(freeList_.size());
    }

    /** Cached blocks no request references — reclaimable on demand
     *  by the attached prefix cache's LRU walk. */
    std::int64_t reclaimableBlocks() const { return cacheOnly_; }

    /** Token-level utilization in [0, 1]. */
    double utilization() const;

    /** Logical tokens allocated to one request (shared prefix
     *  included); 0 if absent. */
    TokenCount requestTokens(RequestId id) const;

    /** Tokens of one request covered by shared prefix blocks. */
    TokenCount requestSharedTokens(RequestId id) const;

    /** Block table of one request (for attention-kernel mapping). */
    const std::vector<BlockId> &blockTable(RequestId id) const;

    /** Number of live requests. */
    std::size_t numRequests() const { return tables_.size(); }

    // --- Reference bookkeeping (prefix cache + tests) ---------------

    /** Requests referencing `block` (cache retention excluded). */
    std::int32_t requestRefs(BlockId block) const;

    /** True when the prefix cache retains `block`. */
    bool isCached(BlockId block) const;

    /** The prefix cache retains `block` (must be live, not yet
     *  cached): it will survive request release as reclaimable. */
    void retainCached(BlockId block);

    /** The prefix cache stops retaining `block`; if no request
     *  references it, it returns to the free list. */
    void dropCached(BlockId block);

  private:
    struct Allocation
    {
        TokenCount numTokens = 0;

        /** Tokens covered by the shared full-block prefix. */
        TokenCount sharedTokens = 0;

        /** [shared prefix blocks ..., private blocks ...]. */
        std::vector<BlockId> blocks;
    };

    /** Per-physical-block reference state. */
    struct BlockState
    {
        /** Requests whose tables contain the block. */
        std::int32_t requestRefs = 0;

        /** Retained by the prefix cache. */
        bool cached = false;

        /** Tokens this block contributes to usedTokens_ while
         *  request-referenced (blockSize for full blocks, the
         *  actual fill for a private last block). */
        TokenCount heldTokens = 0;
    };

    /** Blocks needed to extend an allocation by `extra` tokens. */
    std::int64_t blocksForExtension(const Allocation &alloc,
                                    TokenCount extra) const;

    /** extend() after the table lookup (shared with the fused
     *  batch path). */
    bool extendAlloc(Allocation &alloc, TokenCount num_tokens);

    /** Grow the free list to `need` blocks, reclaiming LRU cached
     *  blocks if required. False when impossible. */
    bool ensureFreeBlocks(std::int64_t need);

    /** Take one block off the free list for a new reference holding
     *  `tokens` slots. */
    BlockId takeFreeBlock(TokenCount tokens);

    /** Add a request reference to an existing (shared) block. */
    void addRequestRef(BlockId block);

    /** Drop one request reference; frees or parks the block. */
    void dropRequestRef(BlockId block);

    TokenCount blockSize_;
    TokenCount capacityTokens_;
    std::vector<BlockId> freeList_;
    std::vector<BlockState> states_;
    std::unordered_map<RequestId, Allocation> tables_;
    TokenCount usedTokens_ = 0;

    /** Count of cached blocks with zero request references. */
    std::int64_t cacheOnly_ = 0;

    /** Lookup scratch for extendBatchByOne (pointers into tables_
     *  nodes, which are stable; valid only within one call). */
    std::vector<Allocation *> extendScratch_;

    PrefixCache *cache_ = nullptr;
};

} // namespace memory
} // namespace lightllm

#endif // LIGHTLLM_MEMORY_KV_BLOCK_MANAGER_HH
