/**
 * @file
 * Contiguous KV-cache allocator (FasterTransformer-style baseline).
 *
 * Pre-paging frameworks reserve one contiguous region of
 * input + max_new_tokens slots per request for its whole lifetime.
 * This allocator models that scheme with a first-fit free list so the
 * library can demonstrate (and the tests can quantify) the external
 * fragmentation PagedAttention eliminates. It also backs the
 * static-batch "origin" engine used in the Table 2 reproduction.
 */

#ifndef LIGHTLLM_MEMORY_CONTIGUOUS_ALLOCATOR_HH
#define LIGHTLLM_MEMORY_CONTIGUOUS_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <unordered_map>

#include "base/types.hh"

namespace lightllm {
namespace memory {

/** First-fit contiguous allocator over a linear token arena. */
class ContiguousAllocator
{
  public:
    explicit ContiguousAllocator(TokenCount capacity_tokens);

    /**
     * Reserve a contiguous region of `num_tokens` slots.
     *
     * @return false when no single free segment is large enough
     *         (even if the total free space would suffice — that is
     *         exactly the fragmentation failure mode).
     */
    bool allocate(RequestId id, TokenCount num_tokens);

    /** Release a request's region and coalesce free neighbours. */
    void release(RequestId id);

    TokenCount capacityTokens() const { return capacityTokens_; }
    TokenCount usedTokens() const { return usedTokens_; }
    TokenCount freeTokens() const
    {
        return capacityTokens_ - usedTokens_;
    }

    /** Size of the largest free segment (0 when full). */
    TokenCount largestFreeSegment() const;

    /** Number of disjoint free segments. */
    std::size_t numFreeSegments() const { return freeSegments_.size(); }

    /**
     * External fragmentation in [0, 1]:
     * 1 - largest_free_segment / free_tokens (0 when no free space).
     */
    double fragmentation() const;

    std::size_t numRequests() const { return regions_.size(); }

  private:
    struct Region
    {
        TokenCount offset = 0;
        TokenCount size = 0;
    };

    TokenCount capacityTokens_;
    TokenCount usedTokens_ = 0;
    // offset -> size of each free segment, ordered for coalescing.
    std::map<TokenCount, TokenCount> freeSegments_;
    std::unordered_map<RequestId, Region> regions_;
};

} // namespace memory
} // namespace lightllm

#endif // LIGHTLLM_MEMORY_CONTIGUOUS_ALLOCATOR_HH
