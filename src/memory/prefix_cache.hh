/**
 * @file
 * Radix/hash prefix cache over refcounted KV blocks.
 *
 * Maps block-chain hashes (base/token_stream.hh) to physical blocks
 * whose KV holds exactly the hashed tokens. Because hash i commits
 * to every token of blocks 0..i, the map behaves like a radix tree
 * over token streams flattened to one node per full block: matching
 * a request's chain front-to-back yields its longest cached prefix,
 * and inserting extends exactly the missing suffix.
 *
 * Cached blocks are retained in the block manager, so they survive
 * the owning request's release as *reclaimable* blocks: still
 * serving future matches, but handed back to the free list — in
 * least-recently-used order, referenced blocks skipped — the moment
 * an allocation cannot be covered otherwise (KvBlockManager::
 * ensureFreeBlocks). The cache therefore never shrinks usable
 * capacity; it only recycles otherwise-idle blocks.
 */

#ifndef LIGHTLLM_MEMORY_PREFIX_CACHE_HH
#define LIGHTLLM_MEMORY_PREFIX_CACHE_HH

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/token_stream.hh"
#include "base/types.hh"
#include "memory/kv_block_manager.hh"

namespace lightllm {
namespace memory {

/** Longest-prefix block cache with LRU reclamation. */
class PrefixCache
{
  public:
    /** @param kv Block pool the cached blocks belong to; the
     *        manager must outlive the cache. */
    explicit PrefixCache(KvBlockManager &kv);

    PrefixCache(const PrefixCache &) = delete;
    PrefixCache &operator=(const PrefixCache &) = delete;

    ~PrefixCache();

    /**
     * Longest cached prefix of `hashes`, front to back. Matched
     * blocks are appended to `blocks_out` (not cleared) and touched
     * in the LRU order.
     *
     * @return Number of blocks matched.
     */
    std::size_t match(std::span<const PrefixHash> hashes,
                      std::vector<BlockId> &blocks_out);

    /** Longest cached prefix length in blocks, with no LRU effect
     *  (load forecasting must not disturb reclamation order). */
    std::size_t peek(std::span<const PrefixHash> hashes) const;

    /**
     * Cache `blocks[i]` under `hashes[i]` for every position not
     * already present (first insertion wins: a duplicate stream
     * prefilled concurrently keeps the original blocks). Newly
     * cached blocks are retained in the manager; they must be live
     * request blocks whose KV holds the hashed tokens.
     */
    void insert(std::span<const PrefixHash> hashes,
                std::span<const BlockId> blocks);

    /**
     * Hand up to `count` least-recently-used blocks that no request
     * references back to the free list. Called by the manager when
     * the free list runs dry.
     *
     * @return Blocks actually reclaimed.
     */
    std::int64_t reclaim(std::int64_t count);

    /** Cached blocks (reclaimable or not). */
    std::size_t size() const { return map_.size(); }

    /** Total match() calls and block-level hits (bench telemetry;
     *  request-level hit tokens live in the metrics collector). */
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hitBlocks() const { return hitBlocks_; }

  private:
    /** One cached block, linked into the LRU list. */
    struct Entry
    {
        PrefixHash hash;
        BlockId block;
    };

    using LruList = std::list<Entry>;

    KvBlockManager &kv_;

    /** Most recently used at the front. */
    LruList lru_;

    std::unordered_map<PrefixHash, LruList::iterator> map_;

    std::uint64_t lookups_ = 0;
    std::uint64_t hitBlocks_ = 0;
};

} // namespace memory
} // namespace lightllm

#endif // LIGHTLLM_MEMORY_PREFIX_CACHE_HH
