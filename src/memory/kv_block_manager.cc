#include "memory/kv_block_manager.hh"

#include <algorithm>

#include "base/logging.hh"
#include "memory/prefix_cache.hh"

namespace lightllm {
namespace memory {

namespace {

/** Ceiling division for non-negative token counts. */
std::int64_t
ceilDiv(TokenCount value, TokenCount divisor)
{
    return (value + divisor - 1) / divisor;
}

} // namespace

KvBlockManager::KvBlockManager(TokenCount capacity_tokens,
                               TokenCount block_size_tokens)
    : blockSize_(block_size_tokens)
{
    LIGHTLLM_ASSERT(block_size_tokens >= 1, "block size must be >= 1");
    LIGHTLLM_ASSERT(capacity_tokens >= block_size_tokens,
                    "capacity smaller than one block");
    const std::int64_t num_blocks = capacity_tokens / blockSize_;
    capacityTokens_ = num_blocks * blockSize_;
    freeList_.reserve(static_cast<std::size_t>(num_blocks));
    // Populate descending so blocks are handed out in ascending order.
    for (std::int64_t b = num_blocks - 1; b >= 0; --b)
        freeList_.push_back(static_cast<BlockId>(b));
    states_.resize(static_cast<std::size_t>(num_blocks));
}

bool
KvBlockManager::ensureFreeBlocks(std::int64_t need)
{
    if (need <= freeBlocks())
        return true;
    if (cache_ == nullptr)
        return false;
    if (need > freeBlocks() + cacheOnly_)
        return false;
    cache_->reclaim(need - freeBlocks());
    LIGHTLLM_ASSERT(need <= freeBlocks(),
                    "prefix cache reclaim under-delivered");
    return true;
}

BlockId
KvBlockManager::takeFreeBlock(TokenCount tokens)
{
    LIGHTLLM_ASSERT(!freeList_.empty(), "free list exhausted");
    const BlockId block = freeList_.back();
    freeList_.pop_back();
    BlockState &state = states_[static_cast<std::size_t>(block)];
    LIGHTLLM_ASSERT(state.requestRefs == 0 && !state.cached,
                    "free-list block ", block, " still referenced");
    state.requestRefs = 1;
    state.heldTokens = tokens;
    usedTokens_ += tokens;
    return block;
}

void
KvBlockManager::addRequestRef(BlockId block)
{
    BlockState &state = states_[static_cast<std::size_t>(block)];
    LIGHTLLM_ASSERT(state.requestRefs > 0 || state.cached,
                    "sharing an unreferenced block ", block);
    if (state.requestRefs == 0) {
        // A reclaimable cache-only block rejoins the working set.
        LIGHTLLM_ASSERT(state.heldTokens == 0,
                        "cache-only block still charged");
        state.heldTokens = blockSize_;
        usedTokens_ += blockSize_;
        --cacheOnly_;
    }
    ++state.requestRefs;
}

void
KvBlockManager::dropRequestRef(BlockId block)
{
    BlockState &state = states_[static_cast<std::size_t>(block)];
    LIGHTLLM_ASSERT(state.requestRefs > 0,
                    "over-release of block ", block);
    --state.requestRefs;
    if (state.requestRefs > 0)
        return;
    usedTokens_ -= state.heldTokens;
    state.heldTokens = 0;
    if (state.cached) {
        ++cacheOnly_;  // parked: reclaimable, not free
        return;
    }
    freeList_.push_back(block);
}

bool
KvBlockManager::allocate(RequestId id, TokenCount num_tokens)
{
    LIGHTLLM_ASSERT(num_tokens >= 0, "negative allocation");
    return allocateShared(id, num_tokens, {});
}

bool
KvBlockManager::allocateShared(RequestId id, TokenCount num_tokens,
                               std::span<const BlockId> shared_prefix)
{
    LIGHTLLM_ASSERT(num_tokens >= 0, "negative allocation");
    const TokenCount shared_tokens =
        static_cast<TokenCount>(shared_prefix.size()) * blockSize_;
    // Zero-token (and, with a prefix, fully-shared) allocations are
    // rejected: every allocation must end in a private block it can
    // write its next token into.
    if (num_tokens <= shared_tokens)
        return false;
    if (tables_.count(id) > 0)
        return false;
    const std::int64_t need =
        ceilDiv(num_tokens - shared_tokens, blockSize_);

    Allocation alloc;
    alloc.numTokens = num_tokens;
    alloc.sharedTokens = shared_tokens;
    alloc.blocks.reserve(shared_prefix.size() +
                         static_cast<std::size_t>(need));
    // Hold the shared blocks before covering the private suffix:
    // an LRU reclaim triggered below must not steal a matched
    // cache-only block out from under this allocation.
    for (const BlockId block : shared_prefix) {
        addRequestRef(block);
        alloc.blocks.push_back(block);
    }
    if (!ensureFreeBlocks(need)) {
        for (const BlockId block : shared_prefix)
            dropRequestRef(block);
        return false;
    }
    TokenCount remaining = num_tokens - shared_tokens;
    for (std::int64_t i = 0; i < need; ++i) {
        const TokenCount fill = std::min(remaining, blockSize_);
        alloc.blocks.push_back(takeFreeBlock(fill));
        remaining -= fill;
    }
    tables_.emplace(id, std::move(alloc));
    return true;
}

std::int64_t
KvBlockManager::blocksForExtension(const Allocation &alloc,
                                   TokenCount extra) const
{
    const TokenCount slack =
        static_cast<TokenCount>(alloc.blocks.size()) * blockSize_ -
        alloc.numTokens;
    if (extra <= slack)
        return 0;
    return ceilDiv(extra - slack, blockSize_);
}

bool
KvBlockManager::extend(RequestId id, TokenCount num_tokens)
{
    LIGHTLLM_ASSERT(num_tokens >= 0, "negative extension");
    auto it = tables_.find(id);
    LIGHTLLM_ASSERT(it != tables_.end(),
                    "extend of unknown request ", id);
    return extendAlloc(it->second, num_tokens);
}

bool
KvBlockManager::extendAlloc(Allocation &alloc, TokenCount num_tokens)
{
    const std::int64_t need = blocksForExtension(alloc, num_tokens);
    if (!ensureFreeBlocks(need))
        return false;

    // Slack fill lands in the last block, which is always private
    // (allocations end past their shared prefix by construction):
    // charge it there before taking fresh blocks.
    const TokenCount slack =
        static_cast<TokenCount>(alloc.blocks.size()) * blockSize_ -
        alloc.numTokens;
    const TokenCount fill = std::min(num_tokens, slack);
    if (fill > 0) {
        BlockState &last =
            states_[static_cast<std::size_t>(alloc.blocks.back())];
        LIGHTLLM_ASSERT(last.requestRefs == 1,
                        "slack fill into a shared block");
        last.heldTokens += fill;
        usedTokens_ += fill;
    }
    TokenCount remaining = num_tokens - fill;
    for (std::int64_t i = 0; i < need; ++i) {
        const TokenCount take = std::min(remaining, blockSize_);
        alloc.blocks.push_back(takeFreeBlock(take));
        remaining -= take;
    }
    alloc.numTokens += num_tokens;
    return true;
}

void
KvBlockManager::release(RequestId id)
{
    auto it = tables_.find(id);
    if (it == tables_.end())
        return;
    for (BlockId block : it->second.blocks)
        dropRequestRef(block);
    tables_.erase(it);
}

bool
KvBlockManager::canAllocate(TokenCount num_tokens) const
{
    return ceilDiv(num_tokens, blockSize_) <=
        freeBlocks() + (cache_ != nullptr ? cacheOnly_ : 0);
}

bool
KvBlockManager::canExtendBatchByOne(
    const std::vector<RequestId> &ids) const
{
    std::int64_t blocks_needed = 0;
    for (RequestId id : ids) {
        const auto it = tables_.find(id);
        LIGHTLLM_ASSERT(it != tables_.end(),
                        "unknown request in batch: ", id);
        blocks_needed += blocksForExtension(it->second, 1);
    }
    return blocks_needed <=
        freeBlocks() + (cache_ != nullptr ? cacheOnly_ : 0);
}

bool
KvBlockManager::extendBatchByOne(const std::vector<RequestId> &ids)
{
    extendScratch_.clear();
    std::int64_t blocks_needed = 0;
    for (RequestId id : ids) {
        const auto it = tables_.find(id);
        LIGHTLLM_ASSERT(it != tables_.end(),
                        "unknown request in batch: ", id);
        blocks_needed += blocksForExtension(it->second, 1);
        extendScratch_.push_back(&it->second);
    }
    if (blocks_needed >
        freeBlocks() + (cache_ != nullptr ? cacheOnly_ : 0))
        return false;
    for (Allocation *alloc : extendScratch_) {
        const bool ok = extendAlloc(*alloc, 1);
        LIGHTLLM_ASSERT(ok,
                        "batch extend failed after capacity check");
    }
    return true;
}

TokenCount
KvBlockManager::freeTokens() const
{
    return static_cast<TokenCount>(freeList_.size()) * blockSize_;
}

double
KvBlockManager::utilization() const
{
    return static_cast<double>(usedTokens_) /
        static_cast<double>(capacityTokens_);
}

TokenCount
KvBlockManager::requestTokens(RequestId id) const
{
    const auto it = tables_.find(id);
    return it == tables_.end() ? 0 : it->second.numTokens;
}

TokenCount
KvBlockManager::requestSharedTokens(RequestId id) const
{
    const auto it = tables_.find(id);
    return it == tables_.end() ? 0 : it->second.sharedTokens;
}

const std::vector<BlockId> &
KvBlockManager::blockTable(RequestId id) const
{
    const auto it = tables_.find(id);
    LIGHTLLM_ASSERT(it != tables_.end(),
                    "block table of unknown request ", id);
    return it->second.blocks;
}

std::int32_t
KvBlockManager::requestRefs(BlockId block) const
{
    return states_[static_cast<std::size_t>(block)].requestRefs;
}

bool
KvBlockManager::isCached(BlockId block) const
{
    return states_[static_cast<std::size_t>(block)].cached;
}

void
KvBlockManager::retainCached(BlockId block)
{
    BlockState &state = states_[static_cast<std::size_t>(block)];
    LIGHTLLM_ASSERT(!state.cached,
                    "block ", block, " retained twice");
    LIGHTLLM_ASSERT(state.requestRefs > 0,
                    "caching a free block ", block);
    state.cached = true;
}

void
KvBlockManager::dropCached(BlockId block)
{
    BlockState &state = states_[static_cast<std::size_t>(block)];
    LIGHTLLM_ASSERT(state.cached,
                    "dropping uncached block ", block);
    state.cached = false;
    if (state.requestRefs == 0) {
        --cacheOnly_;
        freeList_.push_back(block);
    }
}

} // namespace memory
} // namespace lightllm
