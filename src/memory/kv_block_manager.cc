#include "memory/kv_block_manager.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lightllm {
namespace memory {

namespace {

/** Ceiling division for non-negative token counts. */
std::int64_t
ceilDiv(TokenCount value, TokenCount divisor)
{
    return (value + divisor - 1) / divisor;
}

} // namespace

KvBlockManager::KvBlockManager(TokenCount capacity_tokens,
                               TokenCount block_size_tokens)
    : blockSize_(block_size_tokens)
{
    LIGHTLLM_ASSERT(block_size_tokens >= 1, "block size must be >= 1");
    LIGHTLLM_ASSERT(capacity_tokens >= block_size_tokens,
                    "capacity smaller than one block");
    const std::int64_t num_blocks = capacity_tokens / blockSize_;
    capacityTokens_ = num_blocks * blockSize_;
    freeList_.reserve(static_cast<std::size_t>(num_blocks));
    // Populate descending so blocks are handed out in ascending order.
    for (std::int64_t b = num_blocks - 1; b >= 0; --b)
        freeList_.push_back(static_cast<BlockId>(b));
}

bool
KvBlockManager::allocate(RequestId id, TokenCount num_tokens)
{
    LIGHTLLM_ASSERT(num_tokens >= 0, "negative allocation");
    if (tables_.count(id) > 0)
        return false;
    const std::int64_t need = ceilDiv(num_tokens, blockSize_);
    if (need > freeBlocks())
        return false;

    Allocation alloc;
    alloc.numTokens = num_tokens;
    alloc.blocks.reserve(static_cast<std::size_t>(need));
    for (std::int64_t i = 0; i < need; ++i) {
        alloc.blocks.push_back(freeList_.back());
        freeList_.pop_back();
    }
    usedTokens_ += num_tokens;
    tables_.emplace(id, std::move(alloc));
    return true;
}

std::int64_t
KvBlockManager::blocksForExtension(const Allocation &alloc,
                                   TokenCount extra) const
{
    const TokenCount slack =
        static_cast<TokenCount>(alloc.blocks.size()) * blockSize_ -
        alloc.numTokens;
    if (extra <= slack)
        return 0;
    return ceilDiv(extra - slack, blockSize_);
}

bool
KvBlockManager::extend(RequestId id, TokenCount num_tokens)
{
    LIGHTLLM_ASSERT(num_tokens >= 0, "negative extension");
    auto it = tables_.find(id);
    LIGHTLLM_ASSERT(it != tables_.end(),
                    "extend of unknown request ", id);
    Allocation &alloc = it->second;
    const std::int64_t need = blocksForExtension(alloc, num_tokens);
    if (need > freeBlocks())
        return false;
    for (std::int64_t i = 0; i < need; ++i) {
        alloc.blocks.push_back(freeList_.back());
        freeList_.pop_back();
    }
    alloc.numTokens += num_tokens;
    usedTokens_ += num_tokens;
    return true;
}

void
KvBlockManager::release(RequestId id)
{
    auto it = tables_.find(id);
    if (it == tables_.end())
        return;
    for (BlockId block : it->second.blocks)
        freeList_.push_back(block);
    usedTokens_ -= it->second.numTokens;
    tables_.erase(it);
}

bool
KvBlockManager::canAllocate(TokenCount num_tokens) const
{
    return ceilDiv(num_tokens, blockSize_) <= freeBlocks();
}

bool
KvBlockManager::canExtendBatchByOne(
    const std::vector<RequestId> &ids) const
{
    std::int64_t blocks_needed = 0;
    for (RequestId id : ids) {
        const auto it = tables_.find(id);
        LIGHTLLM_ASSERT(it != tables_.end(),
                        "unknown request in batch: ", id);
        blocks_needed += blocksForExtension(it->second, 1);
    }
    return blocks_needed <= freeBlocks();
}

TokenCount
KvBlockManager::freeTokens() const
{
    return static_cast<TokenCount>(freeList_.size()) * blockSize_;
}

double
KvBlockManager::utilization() const
{
    return static_cast<double>(usedTokens_) /
        static_cast<double>(capacityTokens_);
}

TokenCount
KvBlockManager::requestTokens(RequestId id) const
{
    const auto it = tables_.find(id);
    return it == tables_.end() ? 0 : it->second.numTokens;
}

const std::vector<BlockId> &
KvBlockManager::blockTable(RequestId id) const
{
    const auto it = tables_.find(id);
    LIGHTLLM_ASSERT(it != tables_.end(),
                    "block table of unknown request ", id);
    return it->second.blocks;
}

} // namespace memory
} // namespace lightllm
