#include "memory/prefix_cache.hh"

#include "base/logging.hh"

namespace lightllm {
namespace memory {

PrefixCache::PrefixCache(KvBlockManager &kv) : kv_(kv)
{
}

PrefixCache::~PrefixCache()
{
    // Orderly teardown keeps the manager's invariants intact even
    // when the cache dies first (engine member destruction order).
    for (const Entry &entry : lru_)
        kv_.dropCached(entry.block);
}

std::size_t
PrefixCache::match(std::span<const PrefixHash> hashes,
                   std::vector<BlockId> &blocks_out)
{
    ++lookups_;
    std::size_t matched = 0;
    for (const PrefixHash hash : hashes) {
        const auto it = map_.find(hash);
        if (it == map_.end())
            break;
        lru_.splice(lru_.begin(), lru_, it->second);
        blocks_out.push_back(it->second->block);
        ++matched;
    }
    hitBlocks_ += matched;
    return matched;
}

std::size_t
PrefixCache::peek(std::span<const PrefixHash> hashes) const
{
    std::size_t matched = 0;
    for (const PrefixHash hash : hashes) {
        if (map_.count(hash) == 0)
            break;
        ++matched;
    }
    return matched;
}

void
PrefixCache::insert(std::span<const PrefixHash> hashes,
                    std::span<const BlockId> blocks)
{
    LIGHTLLM_ASSERT(hashes.size() == blocks.size(),
                    "hash/block span mismatch");
    for (std::size_t i = 0; i < hashes.size(); ++i) {
        const auto it = map_.find(hashes[i]);
        if (it != map_.end()) {
            // Same content already cached (possibly under a
            // different physical block prefilled concurrently);
            // keep the incumbent, refresh its recency.
            lru_.splice(lru_.begin(), lru_, it->second);
            continue;
        }
        kv_.retainCached(blocks[i]);
        lru_.push_front(Entry{hashes[i], blocks[i]});
        map_.emplace(hashes[i], lru_.begin());
    }
}

std::int64_t
PrefixCache::reclaim(std::int64_t count)
{
    std::int64_t reclaimed = 0;
    auto it = lru_.end();
    while (reclaimed < count && it != lru_.begin()) {
        --it;
        if (kv_.requestRefs(it->block) > 0)
            continue;  // shared with a live request: keep cached
        const BlockId block = it->block;
        map_.erase(it->hash);
        it = lru_.erase(it);
        kv_.dropCached(block);
        ++reclaimed;
    }
    return reclaimed;
}

} // namespace memory
} // namespace lightllm
