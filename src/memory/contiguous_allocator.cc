#include "memory/contiguous_allocator.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lightllm {
namespace memory {

ContiguousAllocator::ContiguousAllocator(TokenCount capacity_tokens)
    : capacityTokens_(capacity_tokens)
{
    LIGHTLLM_ASSERT(capacity_tokens > 0, "capacity must be positive");
    freeSegments_.emplace(0, capacity_tokens);
}

bool
ContiguousAllocator::allocate(RequestId id, TokenCount num_tokens)
{
    LIGHTLLM_ASSERT(num_tokens > 0, "allocation must be positive");
    if (regions_.count(id) > 0)
        return false;
    // First fit: lowest-offset segment that is large enough.
    for (auto it = freeSegments_.begin(); it != freeSegments_.end();
         ++it) {
        if (it->second < num_tokens)
            continue;
        const TokenCount offset = it->first;
        const TokenCount remaining = it->second - num_tokens;
        freeSegments_.erase(it);
        if (remaining > 0)
            freeSegments_.emplace(offset + num_tokens, remaining);
        regions_.emplace(id, Region{offset, num_tokens});
        usedTokens_ += num_tokens;
        return true;
    }
    return false;
}

void
ContiguousAllocator::release(RequestId id)
{
    auto it = regions_.find(id);
    if (it == regions_.end())
        return;
    TokenCount offset = it->second.offset;
    TokenCount size = it->second.size;
    usedTokens_ -= size;
    regions_.erase(it);

    // Coalesce with the following free segment, if adjacent.
    auto next = freeSegments_.lower_bound(offset);
    if (next != freeSegments_.end() &&
        next->first == offset + size) {
        size += next->second;
        next = freeSegments_.erase(next);
    }
    // Coalesce with the preceding free segment, if adjacent.
    if (next != freeSegments_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == offset) {
            offset = prev->first;
            size += prev->second;
            freeSegments_.erase(prev);
        }
    }
    freeSegments_.emplace(offset, size);
}

TokenCount
ContiguousAllocator::largestFreeSegment() const
{
    TokenCount largest = 0;
    for (const auto &[offset, size] : freeSegments_)
        largest = std::max(largest, size);
    return largest;
}

double
ContiguousAllocator::fragmentation() const
{
    const TokenCount free = freeTokens();
    if (free == 0)
        return 0.0;
    return 1.0 -
        static_cast<double>(largestFreeSegment()) /
        static_cast<double>(free);
}

} // namespace memory
} // namespace lightllm
