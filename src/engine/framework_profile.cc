#include "engine/framework_profile.hh"

namespace lightllm {
namespace engine {

EngineConfig
FrameworkProfile::toEngineConfig() const
{
    EngineConfig config;
    config.timeFactor = timeFactor;
    config.splitFuse = splitFuse;
    return config;
}

FrameworkProfile
FrameworkProfile::tgi()
{
    FrameworkProfile profile;
    profile.name = "TGI";
    profile.scheduler = core::SchedulerConfig::conservative(1.0);
    profile.timeFactor = 1.10;
    return profile;
}

FrameworkProfile
FrameworkProfile::vllm()
{
    FrameworkProfile profile;
    profile.name = "vLLM";
    profile.scheduler = core::SchedulerConfig::aggressive(0.95);
    profile.timeFactor = 0.95;
    return profile;
}

FrameworkProfile
FrameworkProfile::deepspeedMii()
{
    FrameworkProfile profile;
    profile.name = "DeepSpeed-MII";
    profile.scheduler = core::SchedulerConfig::conservative(1.0);
    profile.timeFactor = 1.0;
    profile.splitFuse = true;
    return profile;
}

FrameworkProfile
FrameworkProfile::tensorrtLlm()
{
    FrameworkProfile profile;
    profile.name = "TensorRT-LLM";
    profile.scheduler = core::SchedulerConfig::conservative(1.0);
    profile.timeFactor = 0.80;
    return profile;
}

FrameworkProfile
FrameworkProfile::lightllm()
{
    FrameworkProfile profile;
    profile.name = "LightLLM";
    profile.scheduler = core::SchedulerConfig::pastFutureDefault(0.03);
    profile.timeFactor = 0.90;
    return profile;
}

std::vector<FrameworkProfile>
FrameworkProfile::all()
{
    return {tgi(), vllm(), deepspeedMii(), tensorrtLlm(),
            lightllm()};
}

} // namespace engine
} // namespace lightllm
