/**
 * @file
 * Configuration of the continuous-batching serving engine.
 */

#ifndef LIGHTLLM_ENGINE_ENGINE_CONFIG_HH
#define LIGHTLLM_ENGINE_ENGINE_CONFIG_HH

#include <cstdint>

#include "base/types.hh"

namespace lightllm {
namespace engine {

/** Which running request is evicted first on memory exhaustion. */
enum class EvictionPolicy
{
    /** Most recently admitted first (vLLM-style recompute). */
    Lifo,

    /** Oldest admission first. */
    Fifo,
};

/** What happens to an evicted request's KV cache (§2.4/§6: evicted
 *  requests need "recomputation or swapping"). */
enum class EvictionMode
{
    /** Drop the KV; a later prefill recomputes prompt + generated
     *  tokens (vLLM default). */
    Recompute,

    /** Offload the KV over the host link and restore it later; no
     *  recompute, but both transfers stall the engine. */
    Swap,
};

/** Engine-level tunables (scheduler config is provided separately). */
struct EngineConfig
{
    /** KV block size in token slots (PagedAttention granularity). */
    TokenCount blockSize = 16;

    /** Split-fuse / chunked prefill (DeepSpeed-MII FastGen style):
     *  prefills are processed in chunks fused with decode steps so
     *  the running batch never stalls on a long prompt. */
    bool splitFuse = false;

    /** Prompt tokens per fused chunk when splitFuse is on. */
    TokenCount splitFuseChunk = 512;

    /**
     * Shared-prefix KV reuse (SGLang/vLLM-style radix prefix
     * cache): admission matches a request's content-identified
     * prompt against previously prefilled blocks, allocates and
     * prefills only the uncached suffix, and finished requests'
     * full blocks stay cached (LRU-reclaimed under memory
     * pressure). Off by default — the bit-exact legacy path.
     */
    bool prefixCache = false;

    /** Latency multiplier emulating backend efficiency differences
     *  between frameworks (< 1 is faster than the reference). */
    double timeFactor = 1.0;

    EvictionPolicy evictionPolicy = EvictionPolicy::Lifo;

    EvictionMode evictionMode = EvictionMode::Recompute;

    /** Cap on concurrent running requests (0 = unlimited). */
    std::size_t maxBatchSize = 0;

    /** Record a memory time-series sample every N decode steps
     *  (0 disables; used by the Fig 1 bench). */
    std::int64_t timeseriesInterval = 0;

    /**
     * Steady-state measurement: metrics collected before this many
     * requests have finished are discarded (0 = measure everything).
     * Lets benches exclude the cold-start transient, matching the
     * paper's always-warm production setting.
     */
    std::size_t warmupRequests = 0;
};

/** Stop conditions for a run. */
struct RunLimits
{
    /** Stop after this many finished requests (0 = no limit). */
    std::size_t maxFinishedRequests = 0;

    /** Stop once the clock passes this tick (0 = no limit). */
    Tick maxTicks = 0;
};

} // namespace engine
} // namespace lightllm

#endif // LIGHTLLM_ENGINE_ENGINE_CONFIG_HH
