/**
 * @file
 * Serving-framework profiles for the Figure 9 comparison.
 *
 * The paper compares LightLLM against TGI, vLLM, DeepSpeed-MII
 * (FastGen) and TensorRT-LLM. In this reproduction a "framework" is
 * a point in configuration space: which admission policy it ships,
 * how its backend speed compares (timeFactor), and whether it uses
 * split-fuse chunked prefill. Backend speed factors are rough
 * relative efficiencies of the December-2023 versions the paper
 * benchmarked (TensorRT-LLM fastest static backend; TGI's Python
 * serving layer slowest); the goodput ordering Figure 9 reports is
 * driven by the scheduler, not these factors, and the bench includes
 * a sensitivity mode that sets all factors to 1.
 */

#ifndef LIGHTLLM_ENGINE_FRAMEWORK_PROFILE_HH
#define LIGHTLLM_ENGINE_FRAMEWORK_PROFILE_HH

#include <string>
#include <vector>

#include "core/scheduler_factory.hh"
#include "engine/engine_config.hh"

namespace lightllm {
namespace engine {

/** One serving framework as a (scheduler, engine) configuration. */
struct FrameworkProfile
{
    std::string name;
    core::SchedulerConfig scheduler;
    double timeFactor = 1.0;
    bool splitFuse = false;

    /** Apply the profile to an engine config. */
    EngineConfig toEngineConfig() const;

    static FrameworkProfile tgi();
    static FrameworkProfile vllm();
    static FrameworkProfile deepspeedMii();
    static FrameworkProfile tensorrtLlm();
    static FrameworkProfile lightllm();

    /** All five profiles in the paper's Figure 9 order. */
    static std::vector<FrameworkProfile> all();
};

} // namespace engine
} // namespace lightllm

#endif // LIGHTLLM_ENGINE_FRAMEWORK_PROFILE_HH
