/**
 * @file
 * Continuous-batching LLM serving engine (discrete-event simulated).
 *
 * Reproduces the iteration-level serving loop of LightLLM/ORCA-style
 * frameworks: each iteration the scheduling policy is shown the
 * running batch and the waiting queue and emits a SchedulingDecision
 * (which requests to admit, in which order, and any proactive
 * eviction victims); the engine validates and executes it (prefill,
 * then one decode step over the batch). Every request's tokens are
 * timestamped so TTFT/TPOT/MTPOT and goodput can be evaluated
 * exactly. Memory is managed by the paged KV block manager; when a
 * decode step cannot allocate the next token slots, the policy picks
 * a victim to evict (recompute semantics: the victim re-queues at
 * the front and its KV is rebuilt by a later prefill over
 * prompt + already-generated tokens).
 *
 * Iteration durations come from the roofline PerfModel, which is the
 * simulation substitute for GPU execution (see DESIGN.md §1).
 *
 * The engine runs in one of two modes:
 *
 *  - Standalone (default): the engine owns a private SimContext
 *    holding only its arrival events and self-clocks through run()
 *    or stepOnce().
 *  - Event-driven actor: attachContext() places the engine on a
 *    shared SimContext. The engine then schedules its own
 *    iteration (Step) events on the shared queue and defers
 *    completion callbacks to Delivery events at their exact finish
 *    ticks, so a multi-instance cluster co-simulates exactly (see
 *    DESIGN.md §3).
 */

#ifndef LIGHTLLM_ENGINE_SERVING_ENGINE_HH
#define LIGHTLLM_ENGINE_SERVING_ENGINE_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/token_stream.hh"
#include "base/types.hh"
#include "core/future_memory.hh"
#include "core/scheduler.hh"
#include "core/scheduling_policy.hh"
#include "engine/engine_config.hh"
#include "memory/kv_block_manager.hh"
#include "memory/prefix_cache.hh"
#include "metrics/collector.hh"
#include "metrics/report.hh"
#include "model/perf_model.hh"
#include "sim/sim_context.hh"
#include "workload/client_pool.hh"
#include "workload/request_spec.hh"

namespace lightllm {

namespace trace {
class EngineTrace;
}

namespace engine {

/** Continuous-batching serving engine over the simulated substrate. */
class ServingEngine : public workload::RequestSink
{
  public:
    /** Callback fired when a request finishes. */
    using FinishCallback =
        std::function<void(const workload::RequestSpec &, Tick)>;

    /** Callback fired with the full latency record of a finished
     *  request (SLO monitoring). */
    using RecordCallback =
        std::function<void(const metrics::RequestRecord &)>;

    /** Full pipeline: admission policy + queue-ordering policy. */
    ServingEngine(model::PerfModel perf_model,
                  std::unique_ptr<core::SchedulingPolicy> policy,
                  EngineConfig config = {});

    /**
     * Compatibility adapter: wraps `scheduler` in a SchedulingPolicy
     * with the FCFS queue policy, which reproduces the seed's
     * count-based FCFS-prefix admissions bit-identically.
     */
    ServingEngine(model::PerfModel perf_model,
                  std::unique_ptr<core::Scheduler> scheduler,
                  EngineConfig config = {});

    ~ServingEngine() override;

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * Switch to event-driven actor mode on a shared context. Must
     * be called before any request is submitted; the caller keeps
     * ownership of `context`, which must outlive the engine's
     * simulation. run()/stepOnce() become unavailable — the context
     * owner drives the simulation (SimContext::runToCompletion).
     */
    void attachContext(sim::SimContext &context);

    /** True when attached to a shared SimContext. */
    bool eventDriven() const { return shared_; }

    /**
     * Attach a flight-recorder sink (see trace/trace_recorder.hh);
     * nullptr detaches. Must be called before any request is
     * submitted. Tracing is strictly read-only — an attached sink
     * never changes a single engine decision, so the resulting
     * RunReport is byte-identical to an untraced run (pinned by
     * test_trace).
     */
    void attachTrace(trace::EngineTrace *sink);

    /** Enqueue a request to arrive at `arrival` (>= current time). */
    void submitAt(const workload::RequestSpec &spec,
                  Tick arrival) override;

    /**
     * Submit with an explicit arrival stamp: the request joins the
     * wait queue at max(`deliver`, clock) but its *recorded*
     * arrival — the tick TTFT/SLA metrics count from — is `stamp`
     * (<= the delivery tick). The router uses this to preserve a
     * request's original arrival across drain re-dispatch; the
     * exactness replay harness uses it to reproduce co-simulated
     * timelines verbatim. submitAt is the stamp == delivery case.
     */
    void submitStamped(const workload::RequestSpec &spec,
                       Tick deliver, Tick stamp);

    /** Register a completion listener (e.g. the client pool).
     *  In actor mode the callback fires as a Delivery event at the
     *  exact finish tick, in global event order. */
    void setOnFinish(FinishCallback callback);

    /** Register a latency-record listener (e.g. the cluster's SLO
     *  monitor fan-in). Delivered with the same timing discipline
     *  as setOnFinish, immediately before it at the same event. */
    void setOnRecord(RecordCallback callback);

    /**
     * Run the serving loop until the limits are hit or no work and
     * no future arrivals remain. Standalone mode only.
     *
     * @return The final metrics report.
     */
    metrics::RunReport run(const RunLimits &limits = {});

    /**
     * Advance the engine by one iteration (arrival delivery +
     * admissions + prefill/decode). Standalone mode only; kept as a
     * thin adapter over the shared iteration body so single-engine
     * runs stay bit-identical to the pre-SimContext engine.
     *
     * @return false when nothing could be done (no work, no pending
     *         arrivals, or the limits are reached).
     */
    bool stepOnce(const RunLimits &limits = {});

    /** A request handed back by drainQueued() for re-dispatch. */
    struct DrainedRequest
    {
        workload::RequestSpec spec;

        /** Tick at which it should re-enter a router. */
        Tick redispatchAt;

        /** Original arrival stamp to carry (latency metrics keep
         *  counting from the first submission). */
        Tick arrivalStamp;
    };

    /**
     * Stop accepting new work and hand back every request that has
     * not yet been admitted (queued requests plus cancelled
     * in-flight arrival events). Requests that already hold engine
     * state (admitted, prefilling, evicted-with-history) stay and
     * finish here. Actor mode only; after draining, submitAt is a
     * usage error.
     */
    std::vector<DrainedRequest> drainQueued();

    /**
     * Hand back up to `max_requests` never-admitted requests from
     * the *tail* of the waiting queue for re-dispatch elsewhere
     * (work stealing onto a freshly warmed instance). The queue
     * head keeps its position here, so head-of-line semantics and
     * TTFT of the oldest work are unaffected; requests holding
     * engine state (admitted, evicted-with-history, swapped out)
     * never move. The engine keeps running. Actor mode only.
     */
    std::vector<DrainedRequest> stealQueued(std::size_t max_requests);

    /** True once drainQueued() was called. */
    bool draining() const { return draining_; }

    /** Snapshot the metrics collected so far (cluster use). */
    metrics::RunReport report() const;

    // --- Introspection (tests, benches) ------------------------------

    /** True when any request is running, prefilling, or queued. */
    bool hasWork() const;

    /** Pending (future) arrival events. */
    bool hasPendingArrivals() const
    {
        return !pendingArrivals_.empty();
    }

    /**
     * Current + queued resident footprint in tokens (used KV plus
     * the prompts waiting to be admitted) — the "outstanding work"
     * signal for least-loaded routing.
     */
    TokenCount outstandingTokens() const;

    /**
     * Scheduler-estimated future load in tokens: for the
     * Past-Future scheduler this is the predicted peak memory of
     * the running batch plus predicted footprints of the queue —
     * the signal the paper's future-work section proposes for
     * cross-instance request forwarding.
     */
    TokenCount predictedLoadTokens();

    /**
     * Prefill work still ahead of this engine, in prompt tokens:
     * undelivered arrivals, queued prompts, and admitted-but-
     * unprefilled remainders. Migrated prompts (resident KV, no
     * prefill compute) do not count. The routing signal for the
     * disaggregated prefill pool.
     */
    TokenCount pendingPrefillTokens() const;

    Tick now() const { return now_; }
    std::size_t runningSize() const { return running_.size(); }
    std::size_t waitingSize() const { return waiting_.size(); }
    std::size_t numFinished() const { return finished_; }
    const memory::KvBlockManager &kvManager() const { return kv_; }

    /** The engine's prefix cache; null when disabled. */
    const memory::PrefixCache *prefixCache() const
    {
        return prefixCache_.get();
    }
    const model::PerfModel &perfModel() const { return perf_; }
    core::SchedulingPolicy &policy() { return *policy_; }
    core::Scheduler &scheduler() { return policy_->admission(); }
    TokenCount capacityTokens() const { return kv_.capacityTokens(); }

    /**
     * Minimum ticks between a Step event of this engine firing and
     * any Delivery event its handler schedules (completion
     * notifications fire at the iteration's end tick, and every
     * iteration advances the clock by at least one scaled phase
     * latency). The sharded scheduler takes the fleet-wide minimum
     * as its conservative window lookahead (DESIGN.md §9).
     */
    Tick deliverySpawnFloor() const;

    /**
     * High-water mark of the per-request state slab: the number of
     * EngineRequest slots ever allocated. Bounded by the peak
     * concurrent request count, not the total served — finished
     * requests recycle their slot (tests pin this).
     */
    std::size_t requestSlabSize() const
    {
        return requestSlab_.size();
    }

  private:
    /** Engine-side mutable request state. */
    struct EngineRequest
    {
        workload::RequestSpec spec;
        TokenCount generated = 0;
        Tick arrival = 0;
        Tick firstToken = -1;
        Tick lastEmit = -1;
        Tick maxGap = 0;
        int evictions = 0;

        /** Admission order stamp for the eviction policy. */
        std::uint64_t admitSeq = 0;

        /** Prompt tokens still to process (split-fuse prefill). */
        TokenCount remainingPrompt = 0;

        /** KV lives in host memory awaiting swap-in. */
        bool swappedOut = false;

        /** Prompt tokens resident in shared prefix-cache blocks
         *  (0 unless admitted through a cache match). */
        TokenCount cachedPrefix = 0;

        /** Admitted this iteration with migrated KV: the prefill
         *  phase moves it straight to running (no compute, no
         *  emission — the first token came from the prefill pool). */
        bool migratedAdmit = false;

        /** Memoised prompt block-hash chain (prefix-cache mode)
         *  and the token cap it was computed for (-1 = none). */
        std::vector<PrefixHash> hashes;
        TokenCount hashedFor = -1;

        /** Tokens generation will produce (EOS or cap). */
        TokenCount
        targetOutput() const
        {
            return spec.effectiveOutputLen();
        }
    };

    /** Arrival-event handler: move the pending request into the
     *  wait queue, stamped with its recorded arrival. */
    void deliverArrival(std::uint64_t token, Tick when);

    /** Move due arrivals from the event queue into the wait queue
     *  (standalone mode). */
    void deliverArrivals();

    /** One engine iteration: admissions + prefill/decode phases.
     *  Shared by stepOnce() and the actor-mode Step handler. */
    void iterateOnce();

    /** Actor mode: ensure a Step event is scheduled no later than
     *  max(now_, when). */
    void wakeActor(Tick when);

    /** Actor-mode Step handler: run one iteration at `when`. */
    void onStepEvent(Tick when);

    /** Ask the policy for a decision and execute it. */
    void admitRequests();

    /** Admit one request: allocate KV (reusing any cached prefix)
     *  and queue its prefill over the uncached suffix. */
    bool admitOne(EngineRequest *request);

    /**
     * Prompt tokens of `request` whose KV is resident via
     * disaggregated migration: `spec.migratedPrefix` on the first
     * admission attempt, 0 once any local history exists (an
     * eviction or swap drops the migrated copy, so the prompt must
     * recompute locally).
     */
    static TokenCount migratedResidentTokens(
        const EngineRequest &request);

    /**
     * The request's prompt block-hash chain, capped one token short
     * of its recompute prompt (a fully cached prompt still prefills
     * its last token) and at the tokens whose content is known
     * (prompt; plus regenerated output when outputKey is set).
     * Memoised per request. Prefix-cache mode only.
     */
    const std::vector<PrefixHash> &promptHashes(
        EngineRequest &request);

    /** Cache the request's full KV blocks whose content is
     *  identified (prompt, plus generated tokens when the spec
     *  names their content). No-op outside prefix-cache mode. */
    void cacheInsert(EngineRequest *request);

    /** Process all pending prefills as dedicated iterations. */
    void runPrefillPhase();

    /** One decode iteration over the running batch. */
    void runDecodeStep();

    /** One split-fuse iteration (decode + prompt chunk). */
    void runFusedStep();

    /**
     * Evict one running request; the victim is chosen by the
     * scheduling policy (queue-policy victim ranking over the
     * configured LIFO/FIFO tie-break).
     *
     * @return Stall ticks charged to the current iteration (the
     *         swap-out transfer; recompute eviction is free now and
     *         pays at re-prefill).
     */
    Tick evictOne();

    /** Evict the given running request (decision executor);
     *  `reactive` distinguishes the mid-decode allocation-failure
     *  path from a scheduler-decided eviction (trace cause). */
    Tick evictRequest(RequestId id, bool reactive);

    /** Mark a token emission for `request` at `tick`. */
    void recordEmission(EngineRequest &request, Tick tick);

    /** Complete a request and notify listeners. */
    void finishRequest(EngineRequest *request);

    /** Exact future required memory with ground-truth lengths. */
    TokenCount trueFutureMemory() const;

    /**
     * The scheduler's own future-memory estimate for the current
     * batch, via the read-only prediction peek (prediction audit;
     * never consumes RNG or scheduler state).
     */
    TokenCount predictedFutureMemory();

    /** Trace a successful admission (queued → prefill spans). */
    void traceAdmit(const EngineRequest &request);

    /** Emit the per-iteration engine counters (detail >= steps). */
    void traceStepCounters(std::int64_t batch_size,
                           TokenCount true_future,
                           TokenCount predicted_future);

    /** Scheduler context over the current queues. */
    core::SchedulerContext buildContext();

    /** Policy-facing view of one engine request. */
    static core::RunningView runningViewOf(
        const EngineRequest &request, bool prefilling);

    /** Cached-prefix tokens the cache would cover for a waiting
     *  request right now (no LRU effect). */
    TokenCount peekCachedPrefix(EngineRequest &request);

    /** Scale a modelled latency by the engine time factor. */
    Tick scaled(Tick duration) const;

    /** True when a stop limit has been reached. */
    bool limitsReached(const RunLimits &limits) const;

    model::PerfModel perf_;
    std::unique_ptr<core::SchedulingPolicy> policy_;
    EngineConfig config_;
    memory::KvBlockManager kv_;

    /** Radix prefix cache over kv_; null when disabled. Declared
     *  after kv_ so its teardown (dropping retained blocks) runs
     *  while the manager is alive. */
    std::unique_ptr<memory::PrefixCache> prefixCache_;

    metrics::MetricsCollector collector_;

    /** Flight-recorder sink; null (the default) = tracing off and
     *  every hook reduces to this one branch. */
    trace::EngineTrace *trace_ = nullptr;

    /** Private context in standalone mode; null when shared. */
    std::unique_ptr<sim::SimContext> ownedContext_;

    /** Context carrying this engine's events (owned or shared). */
    sim::SimContext *context_ = nullptr;

    bool shared_ = false;
    bool draining_ = false;

    /** Actor mode: the pending Step event, if any. */
    sim::EventId stepEvent_ = sim::kInvalidEventId;
    bool stepScheduled_ = false;
    Tick stepTick_ = 0;

    /** One in-flight (cancellable) arrival event. */
    struct PendingArrival
    {
        sim::EventId event;
        workload::RequestSpec spec;
        Tick stamp;
    };

    /** In-flight arrival events, keyed by submission token (not
     *  request id: duplicate-id submissions must each deliver so
     *  the duplicate check in deliverArrival can fire). */
    std::unordered_map<std::uint64_t, PendingArrival>
        pendingArrivals_;
    std::uint64_t nextArrivalToken_ = 0;

    /**
     * Per-request state slab: EngineRequest objects are allocated
     * once, pointer-stable (the queues hold raw pointers), and
     * recycled through a free list when a request finishes or is
     * drained — the engine submit/finish path performs zero
     * per-request heap allocations in steady state (pinned by the
     * counting-new test in test_sim_stress).
     */
    std::vector<std::unique_ptr<EngineRequest>> requestSlab_;
    std::vector<EngineRequest *> requestFree_;

    /** Grab a recycled (or fresh) slab entry, reset to defaults. */
    EngineRequest *allocRequest();

    /** Drop the map entry and return the slab entry to the free
     *  list (field reset happens on reuse in allocRequest). */
    void recycleRequest(EngineRequest *request);

    std::unordered_map<RequestId, EngineRequest *> requests_;
    std::deque<EngineRequest *> waiting_;
    std::vector<EngineRequest *> prefillPending_;
    std::vector<EngineRequest *> running_;

    Tick now_ = 0;
    std::size_t finished_ = 0;

    /** Prompt tokens of submitted-but-undelivered arrivals (load
     *  visibility for the cluster router). */
    TokenCount undeliveredTokens_ = 0;
    std::uint64_t nextAdmitSeq_ = 0;
    bool ran_ = false;
    FinishCallback onFinish_;
    RecordCallback onRecord_;

    /**
     * Parked payload of one deferred finish notification (actor
     * mode). The spec is moved out of the dying request into a
     * recycled slab slot, so the completion event only captures a
     * slab index — small enough for the event queue's inline
     * handler storage (see DESIGN.md §8).
     */
    struct DeferredNotify
    {
        workload::RequestSpec spec;
        metrics::RequestRecord record;
        Tick tick = 0;
    };

    /** Deferred-notification slab + free slot indices. */
    std::vector<DeferredNotify> notifySlab_;
    std::vector<std::size_t> notifyFree_;

    // Scratch buffers reused across iterations.
    core::SchedulingDecision decisionScratch_;
    std::vector<core::RunningView> runningViews_;
    std::vector<core::WaitingView> waitingViews_;
    std::vector<RequestId> runningIds_;
    std::vector<RequestId> victimScratch_;
    std::vector<EngineRequest *> finishedScratch_;
    std::vector<EngineRequest *> swappedInScratch_;
    mutable std::vector<core::BatchEntry> scratchEntries_;
    std::vector<memory::BlockId> matchScratch_;
    std::vector<PromptSegment> streamScratch_;
    std::vector<PrefixHash> insertHashScratch_;
};

} // namespace engine
} // namespace lightllm

#endif // LIGHTLLM_ENGINE_SERVING_ENGINE_HH
