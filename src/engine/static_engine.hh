/**
 * @file
 * Static-batching engine — the "origin implementation" baseline of
 * Table 2.
 *
 * Models the HuggingFace-style serving of the original Qwen-VL /
 * LLaVA releases: requests are grouped into fixed batches, prompts
 * are padded to the longest prompt in the batch, every sequence
 * reserves prompt_max + max_new_tokens contiguous KV slots for the
 * batch lifetime, and the whole batch decodes until its slowest
 * member finishes. Early finishers keep occupying their padded slots
 * — that memory and compute waste is exactly what continuous
 * batching plus the Past-Future scheduler recovers in Table 2.
 */

#ifndef LIGHTLLM_ENGINE_STATIC_ENGINE_HH
#define LIGHTLLM_ENGINE_STATIC_ENGINE_HH

#include "base/types.hh"
#include "memory/contiguous_allocator.hh"
#include "metrics/report.hh"
#include "model/perf_model.hh"
#include "workload/datasets.hh"

namespace lightllm {
namespace engine {

/** Configuration of the static-batch baseline. */
struct StaticEngineConfig
{
    /**
     * Fixed batch size; 0 derives the largest batch whose padded
     * worst-case (max prompt + max_new_tokens per slot) fits the KV
     * capacity.
     */
    std::size_t batchSize = 0;

    /** Latency multiplier (backend efficiency knob). */
    double timeFactor = 1.0;
};

/**
 * Run the dataset through the static-batch engine.
 *
 * All requests are assumed queued at t = 0 (offline throughput
 * measurement, as in Table 2).
 */
metrics::RunReport runStaticBatch(const model::PerfModel &perf,
                                  const workload::Dataset &dataset,
                                  const StaticEngineConfig &config = {});

} // namespace engine
} // namespace lightllm

#endif // LIGHTLLM_ENGINE_STATIC_ENGINE_HH
