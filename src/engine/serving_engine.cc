#include "engine/serving_engine.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"
#include "core/future_memory.hh"
#include "trace/trace_recorder.hh"

namespace lightllm {
namespace engine {

ServingEngine::ServingEngine(
    model::PerfModel perf_model,
    std::unique_ptr<core::SchedulingPolicy> policy,
    EngineConfig config)
    : perf_(std::move(perf_model)), policy_(std::move(policy)),
      config_(config),
      kv_(perf_.tokenCapacity(), config.blockSize),
      collector_(kv_.capacityTokens(), config.timeseriesInterval),
      ownedContext_(std::make_unique<sim::SimContext>()),
      context_(ownedContext_.get())
{
    LIGHTLLM_ASSERT(policy_ != nullptr,
                    "engine needs a scheduling policy");
    LIGHTLLM_ASSERT(config_.timeFactor > 0.0,
                    "time factor must be positive");
    LIGHTLLM_ASSERT(!config_.splitFuse || config_.splitFuseChunk > 0,
                    "split-fuse chunk must be positive");
    if (config_.prefixCache) {
        prefixCache_ = std::make_unique<memory::PrefixCache>(kv_);
        kv_.attachPrefixCache(prefixCache_.get());
    }
}

ServingEngine::ServingEngine(model::PerfModel perf_model,
                             std::unique_ptr<core::Scheduler> scheduler,
                             EngineConfig config)
    : ServingEngine(std::move(perf_model),
                    std::make_unique<core::SchedulingPolicy>(
                        std::move(scheduler)),
                    config)
{
}

ServingEngine::~ServingEngine() = default;

void
ServingEngine::attachContext(sim::SimContext &context)
{
    LIGHTLLM_ASSERT(!ran_, "cannot attach a context after run()");
    LIGHTLLM_ASSERT(requests_.empty() && pendingArrivals_.empty(),
                    "cannot attach a context after submissions");
    context_ = &context;
    shared_ = true;
    ownedContext_.reset();
}

void
ServingEngine::attachTrace(trace::EngineTrace *sink)
{
    LIGHTLLM_ASSERT(requests_.empty() && pendingArrivals_.empty(),
                    "attach tracing before submissions");
    trace_ = sink;
}

void
ServingEngine::submitAt(const workload::RequestSpec &spec, Tick arrival)
{
    // Standalone mode clamps to the engine clock (the only clock);
    // actor mode clamps to the shared clock — the engine's own
    // clock may legitimately be ahead of it mid-co-simulation.
    const Tick when =
        std::max(arrival, shared_ ? context_->now() : now_);
    submitStamped(spec, when, when);
}

void
ServingEngine::submitStamped(const workload::RequestSpec &spec,
                             Tick deliver, Tick stamp)
{
    LIGHTLLM_ASSERT(spec.id != kInvalidRequestId, "invalid request id");
    LIGHTLLM_ASSERT(spec.inputLen >= 1, "request ", spec.id,
                    " has empty prompt");
    LIGHTLLM_ASSERT(spec.maxNewTokens >= 1, "request ", spec.id,
                    " has zero max_new_tokens");
    LIGHTLLM_ASSERT(spec.effectiveOutputLen() >= 1, "request ",
                    spec.id, " would generate no tokens");
    LIGHTLLM_ASSERT(!draining_, "request ", spec.id,
                    " submitted to a draining engine");
    const Tick when =
        std::max(deliver, shared_ ? context_->now() : now_);
    LIGHTLLM_ASSERT(stamp >= 0 && stamp <= when, "request ",
                    spec.id, " arrival stamp ", stamp,
                    " after its delivery tick ", when);
    undeliveredTokens_ += spec.inputLen;
    // The event captures only a token; the spec's single copy
    // lives in pendingArrivals_ until delivery (or drain
    // claw-back).
    const std::uint64_t token = nextArrivalToken_++;
    const sim::EventId event = context_->schedule(
        when, [this, token](Tick fire) {
            deliverArrival(token, fire);
        });
    pendingArrivals_.emplace(token,
                             PendingArrival{event, spec, stamp});
}

void
ServingEngine::deliverArrival(std::uint64_t token, Tick when)
{
    const auto pending_it = pendingArrivals_.find(token);
    LIGHTLLM_ASSERT(pending_it != pendingArrivals_.end(),
                    "arrival event for unknown token ", token);
    const workload::RequestSpec spec = pending_it->second.spec;
    const Tick stamp = pending_it->second.stamp;
    pendingArrivals_.erase(pending_it);
    EngineRequest *raw = allocRequest();
    raw->spec = spec;
    raw->arrival = stamp;
    const bool inserted = requests_.emplace(spec.id, raw).second;
    LIGHTLLM_ASSERT(inserted, "duplicate request id ", spec.id);
    waiting_.push_back(raw);
    undeliveredTokens_ -= spec.inputLen;
    if (trace_ != nullptr) {
        trace_->begin(trace::TraceName::Queued, spec.id, when,
                      spec.inputLen,
                      policy_->peekPrediction(spec.id, 0,
                                              spec.maxNewTokens),
                      spec.effectiveOutputLen());
    }
    if (shared_)
        wakeActor(when);
}

void
ServingEngine::setOnFinish(FinishCallback callback)
{
    onFinish_ = std::move(callback);
}

void
ServingEngine::setOnRecord(RecordCallback callback)
{
    onRecord_ = std::move(callback);
}

ServingEngine::EngineRequest *
ServingEngine::allocRequest()
{
    if (!requestFree_.empty()) {
        EngineRequest *request = requestFree_.back();
        requestFree_.pop_back();
        // Reset to constructed defaults, keeping the hash vector's
        // capacity (the one per-request allocation worth saving).
        request->spec = workload::RequestSpec{};
        request->generated = 0;
        request->arrival = 0;
        request->firstToken = -1;
        request->lastEmit = -1;
        request->maxGap = 0;
        request->evictions = 0;
        request->admitSeq = 0;
        request->remainingPrompt = 0;
        request->swappedOut = false;
        request->cachedPrefix = 0;
        request->migratedAdmit = false;
        request->hashes.clear();
        request->hashedFor = -1;
        return request;
    }
    requestSlab_.push_back(std::make_unique<EngineRequest>());
    return requestSlab_.back().get();
}

void
ServingEngine::recycleRequest(EngineRequest *request)
{
    // spec.id survives a move of the spec (integral member), so
    // recycling after a deferred-notify payload move still erases
    // the right map entry.
    requests_.erase(request->spec.id);
    requestFree_.push_back(request);
}

Tick
ServingEngine::deliverySpawnFloor() const
{
    // Every completion notification fires at the end tick of the
    // iteration that produced it, and each phase advances the
    // engine clock by at least one scaled minimal phase latency
    // (scaled() floors at one tick). Take the minimum over every
    // phase reachable under this engine's configuration, with the
    // smallest argument combinations a phase can see.
    Tick floor = scaled(perf_.prefillLatency(1));
    floor = std::min(floor, scaled(perf_.decodeLatency(1, 1)));
    floor = std::min(floor, scaled(perf_.decodeLatency(1, 2)));
    if (config_.splitFuse) {
        floor =
            std::min(floor, scaled(perf_.fusedStepLatency(0, 0, 1)));
        floor =
            std::min(floor, scaled(perf_.fusedStepLatency(1, 1, 0)));
        floor =
            std::min(floor, scaled(perf_.fusedStepLatency(1, 2, 1)));
    }
    if (config_.evictionMode == EvictionMode::Swap)
        floor = std::min(floor, scaled(perf_.swapLatency(1)));
    return std::max<Tick>(1, floor);
}

Tick
ServingEngine::scaled(Tick duration) const
{
    const auto scaled_ticks = static_cast<Tick>(
        static_cast<double>(duration) * config_.timeFactor + 0.5);
    return std::max<Tick>(1, scaled_ticks);
}

void
ServingEngine::deliverArrivals()
{
    context_->queue().runUntil(now_);
}

void
ServingEngine::wakeActor(Tick when)
{
    // An iteration can never start before the engine finished its
    // previous one, nor before the triggering event.
    const Tick start = std::max(now_, when);
    if (!stepScheduled_) {
        stepEvent_ = context_->schedule(
            start, [this](Tick tick) { onStepEvent(tick); },
            sim::EventClass::Step);
        stepScheduled_ = true;
        stepTick_ = start;
        return;
    }
    if (start < stepTick_) {
        // An arrival landed before the idle-scheduled iteration:
        // pull the iteration forward so the engine reacts at the
        // arrival tick, exactly as the self-clocked loop would.
        context_->reschedule(stepEvent_, start);
        stepTick_ = start;
    }
}

void
ServingEngine::onStepEvent(Tick when)
{
    stepScheduled_ = false;
    stepEvent_ = sim::kInvalidEventId;
    LIGHTLLM_ASSERT(when >= now_, "step event at ", when,
                    " behind engine clock ", now_);
    now_ = when;
    if (!hasWork())
        return;  // drained or spuriously woken; nothing to do
    iterateOnce();
    if (hasWork())
        wakeActor(now_);
}

core::RunningView
ServingEngine::runningViewOf(const EngineRequest &request,
                             bool prefilling)
{
    return core::RunningView{
        request.spec.id,      request.spec.inputLen,
        request.generated,    request.spec.maxNewTokens,
        request.spec.outputLen, request.admitSeq,
        request.spec.cls, prefilling,
        request.cachedPrefix};
}

const std::vector<PrefixHash> &
ServingEngine::promptHashes(EngineRequest &request)
{
    const workload::RequestSpec &spec = request.spec;
    const TokenCount prompt = spec.inputLen + request.generated;
    // Content-identified tokens: the prompt segments always; the
    // regenerated output only when the spec names its content.
    const TokenCount known = spec.outputKey != 0
        ? prompt
        : spec.inputLen;
    // One short of the prompt: the final prompt token is always
    // prefilled (it produces the logits for the first new token).
    const TokenCount cap = std::min(known, prompt - 1);
    if (request.hashedFor == cap)
        return request.hashes;

    streamScratch_.assign(spec.segments.begin(),
                          spec.segments.end());
    if (spec.outputKey != 0 && request.generated > 0) {
        streamScratch_.push_back(
            PromptSegment{spec.outputKey, request.generated});
    }
    request.hashes =
        blockHashChain(streamScratch_, kv_.blockSize(), cap);
    request.hashedFor = cap;
    return request.hashes;
}

TokenCount
ServingEngine::peekCachedPrefix(EngineRequest &request)
{
    // Swap-in restores the KV wholesale (admitOne allocates the
    // full footprint privately), so schedulers must not discount a
    // swapped-out candidate.
    if (!prefixCache_ || request.spec.segments.empty() ||
        request.swappedOut) {
        return 0;
    }
    const auto matched = static_cast<TokenCount>(
        prefixCache_->peek(promptHashes(request)));
    return matched * kv_.blockSize();
}

void
ServingEngine::cacheInsert(EngineRequest *request)
{
    if (!prefixCache_ || request->spec.segments.empty())
        return;
    const workload::RequestSpec &spec = request->spec;
    const TokenCount known = spec.inputLen +
        (spec.outputKey != 0 ? request->generated : 0);
    streamScratch_.assign(spec.segments.begin(),
                          spec.segments.end());
    if (spec.outputKey != 0 && request->generated > 0) {
        streamScratch_.push_back(
            PromptSegment{spec.outputKey, request->generated});
    }
    insertHashScratch_ =
        blockHashChain(streamScratch_, kv_.blockSize(), known);
    const std::vector<memory::BlockId> &table =
        kv_.blockTable(spec.id);
    // Full identified blocks are always a prefix of the block
    // table (the allocation covers prompt + at least one token).
    const std::size_t count =
        std::min(insertHashScratch_.size(), table.size());
    prefixCache_->insert(
        std::span<const PrefixHash>(insertHashScratch_)
            .first(count),
        std::span<const memory::BlockId>(table).first(count));
}

core::SchedulerContext
ServingEngine::buildContext()
{
    runningViews_.clear();
    for (const EngineRequest *request : running_)
        runningViews_.push_back(runningViewOf(*request, false));
    // Admitted-but-prefilling requests already hold KV memory and
    // will generate; the scheduler must see them as part of the
    // running batch (they are not eviction candidates, though).
    for (const EngineRequest *request : prefillPending_)
        runningViews_.push_back(runningViewOf(*request, true));

    waitingViews_.clear();
    for (EngineRequest *request : waiting_) {
        // Migrated KV counts as a resident prefix: the dispatch
        // gate of the handoff queue already reserved its memory on
        // this instance, so the schedulers must not charge it
        // again (and there is no prefill compute to budget for).
        const TokenCount resident =
            std::max(peekCachedPrefix(*request),
                     migratedResidentTokens(*request));
        waitingViews_.push_back(core::WaitingView{
            request->spec.id, request->spec.inputLen,
            request->generated, request->spec.maxNewTokens,
            request->arrival, request->spec.outputLen,
            request->spec.cls, resident});
    }

    core::SchedulerContext ctx;
    ctx.now = now_;
    ctx.capacityTokens = kv_.capacityTokens();
    ctx.usedTokens = kv_.usedTokens();
    // Block rounding wastes at most blockSize - 1 slots per request,
    // and admission allocates one extra slot for the prefill token.
    ctx.perRequestOverhead = kv_.blockSize();
    ctx.running = runningViews_;
    ctx.waiting = waitingViews_;
    return ctx;
}

bool
ServingEngine::admitOne(EngineRequest *request)
{
    if (request->swappedOut) {
        // Swap-in restores the KV exactly as it was evicted.
        const TokenCount tokens =
            request->spec.inputLen + request->generated;
        if (!kv_.allocate(request->spec.id, tokens))
            return false;
        request->admitSeq = nextAdmitSeq_++;
        request->remainingPrompt = 0;
        prefillPending_.push_back(request);
        return true;
    }
    if (migratedResidentTokens(*request) > 0) {
        // Disaggregated handoff: the KV of the whole prompt arrived
        // over the interconnect. Allocate it as private resident
        // memory; no prefill compute and no emission (the first
        // token was produced by the prefill pool).
        if (!kv_.allocate(request->spec.id, request->spec.inputLen))
            return false;
        request->admitSeq = nextAdmitSeq_++;
        request->remainingPrompt = 0;
        request->migratedAdmit = true;
        prefillPending_.push_back(request);
        return true;
    }
    // Allocate prompt + recompute tokens + one slot for the token
    // the prefill itself emits.
    const TokenCount prompt =
        request->spec.inputLen + request->generated;
    const TokenCount tokens = prompt + 1;
    if (prefixCache_ && !request->spec.segments.empty()) {
        // Reuse every cached full block of the prompt: only the
        // uncached suffix is allocated — and only it is prefilled.
        matchScratch_.clear();
        prefixCache_->match(promptHashes(*request), matchScratch_);
        if (!kv_.allocateShared(request->spec.id, tokens,
                                matchScratch_)) {
            return false;
        }
        const TokenCount shared =
            kv_.requestSharedTokens(request->spec.id);
        collector_.onPrefixLookup(prompt, shared);
        request->admitSeq = nextAdmitSeq_++;
        request->cachedPrefix = shared;
        request->remainingPrompt = prompt - shared;
        prefillPending_.push_back(request);
        return true;
    }
    if (!kv_.allocate(request->spec.id, tokens))
        return false;
    request->admitSeq = nextAdmitSeq_++;
    request->remainingPrompt = prompt;
    prefillPending_.push_back(request);
    return true;
}

void
ServingEngine::admitRequests()
{
    if (waiting_.empty())
        return;

    const core::SchedulerContext ctx = buildContext();
    core::SchedulingDecision &decision = decisionScratch_;
    policy_->decideInto(ctx, decision);

    const std::string error = core::validateDecision(decision, ctx);
    if (!error.empty())
        fatal("invalid scheduling decision: ", error);

    // Proactive evictions first: they free the memory the
    // admissions below were planned against.
    Tick eviction_stall = 0;
    for (RequestId id : decision.evict)
        eviction_stall += evictRequest(id, false);
    now_ += eviction_stall;

    if (config_.maxBatchSize > 0) {
        const std::size_t active =
            running_.size() + prefillPending_.size();
        const std::size_t room = config_.maxBatchSize > active
            ? config_.maxBatchSize - active
            : 0;
        if (decision.admit.size() > room)
            decision.admit.resize(room);
    }

    if (decision.admit.empty() && running_.empty() &&
        prefillPending_.empty()) {
        // Backstop for custom policies: the built-in pipeline
        // already force-admits its head-of-order request when the
        // system is idle (see SchedulingPolicy::decide).
        decision.admit.push_back(waiting_.front()->spec.id);
    }

    std::int64_t admitted = 0;
    for (RequestId id : decision.admit) {
        const auto it = std::find_if(
            waiting_.begin(), waiting_.end(),
            [id](const EngineRequest *request) {
                return request->spec.id == id;
            });
        LIGHTLLM_ASSERT(it != waiting_.end(),
                        "admitted id ", id, " left the queue");
        EngineRequest *request = *it;
        if (!admitOne(request)) {
            if (running_.empty() && prefillPending_.empty()) {
                fatal("request ", request->spec.id, " (prompt ",
                      request->spec.inputLen + request->generated,
                      " tokens) cannot fit in capacity ",
                      kv_.capacityTokens());
            }
            break;
        }
        waiting_.erase(it);
        ++admitted;
        if (trace_ != nullptr)
            traceAdmit(*request);
    }
    if (trace_ != nullptr && trace_->stepsEnabled()) {
        trace_->instant(
            trace::TraceName::AdmissionRound, kInvalidRequestId,
            now_, admitted,
            static_cast<std::int64_t>(decision.evict.size()),
            static_cast<std::int64_t>(waiting_.size()));
    }
}

void
ServingEngine::traceAdmit(const EngineRequest &request)
{
    const RequestId id = request.spec.id;
    trace_->end(trace::TraceName::Queued, id, now_);
    trace_->instant(
        trace::TraceName::Admit, id, now_,
        policy_->peekPrediction(id, request.generated,
                                request.spec.maxNewTokens),
        request.spec.effectiveOutputLen(), now_ - request.arrival);
    trace_->begin(trace::TraceName::Prefill, id, now_,
                  request.remainingPrompt, request.cachedPrefix,
                  kv_.usedTokens());
}

void
ServingEngine::recordEmission(EngineRequest &request, Tick tick)
{
    if (request.firstToken < 0)
        request.firstToken = tick;
    if (request.lastEmit >= 0)
        request.maxGap = std::max(request.maxGap,
                                  tick - request.lastEmit);
    request.lastEmit = tick;
}

void
ServingEngine::finishRequest(EngineRequest *request)
{
    if (trace_ != nullptr) {
        // Before the policy forgets the request: the peeked
        // prediction still reflects the estimate the scheduler was
        // operating under.
        trace_->instant(
            trace::TraceName::Finish, request->spec.id, now_,
            request->generated,
            policy_->peekPrediction(request->spec.id,
                                    request->generated,
                                    request->spec.maxNewTokens),
            request->evictions);
    }
    metrics::RequestRecord record;
    record.id = request->spec.id;
    record.cls = request->spec.cls;
    record.inputLen = request->spec.inputLen;
    record.outputTokens = request->generated;
    record.arrival = request->arrival;
    record.firstToken = request->firstToken;
    record.finish = now_;
    record.maxGap = request->maxGap;
    record.evictions = request->evictions;
    collector_.onRequestFinished(record);

    // Retain the request's identified full blocks (prompt and, for
    // session turns, the generated reply) before the references
    // drop: the next turn's prompt extends exactly this stream.
    cacheInsert(request);
    kv_.release(request->spec.id);
    policy_->onRequestFinished(request->spec.id,
                               request->generated);
    ++finished_;
    if (config_.warmupRequests > 0 &&
        finished_ == config_.warmupRequests) {
        collector_.resetMeasurement(now_);
    }

    if (!onFinish_ && !onRecord_) {
        recycleRequest(request);
        return;
    }
    if (shared_) {
        // Defer the notification to the shared queue at the exact
        // finish tick: listeners (router, clients, SLO monitors)
        // then observe the completion in global event order rather
        // than mid-way through this engine's iteration. One event
        // carries both callbacks, record first. The payload (spec
        // moved out of the dying request + record) parks in a
        // recycled slab slot so the event lambda stays small enough
        // for the queue's inline handler storage — the notify path
        // allocates nothing in steady state.
        std::size_t idx;
        if (!notifyFree_.empty()) {
            idx = notifyFree_.back();
            notifyFree_.pop_back();
        } else {
            idx = notifySlab_.size();
            notifySlab_.emplace_back();
        }
        DeferredNotify &note = notifySlab_[idx];
        note.spec = std::move(request->spec);
        note.record = record;
        note.tick = now_;
        recycleRequest(request);
        context_->schedule(note.tick, [this, idx](Tick) {
            // Re-index per use: the slab may have grown between
            // capture and delivery.
            if (onRecord_)
                onRecord_(notifySlab_[idx].record);
            if (onFinish_)
                onFinish_(notifySlab_[idx].spec,
                          notifySlab_[idx].tick);
            notifyFree_.push_back(idx);
        });
    } else {
        if (onRecord_)
            onRecord_(record);
        if (onFinish_)
            onFinish_(request->spec, now_);
        recycleRequest(request);
    }
}

Tick
ServingEngine::evictOne()
{
    LIGHTLLM_ASSERT(!running_.empty(),
                    "eviction with empty running batch");
    // Victim choice is the policy's: build a context over the
    // decoding batch only (prefilling requests are not evictable)
    // and let the queue policy rank candidates, tie-broken by the
    // engine-configured admission order.
    runningViews_.clear();
    for (const EngineRequest *request : running_)
        runningViews_.push_back(runningViewOf(*request, false));
    core::SchedulerContext ctx;
    ctx.now = now_;
    ctx.capacityTokens = kv_.capacityTokens();
    ctx.usedTokens = kv_.usedTokens();
    ctx.perRequestOverhead = kv_.blockSize();
    ctx.running = runningViews_;

    const core::VictimOrder order =
        config_.evictionPolicy == EvictionPolicy::Lifo
        ? core::VictimOrder::NewestFirst
        : core::VictimOrder::OldestFirst;
    policy_->victimOrder(ctx, order, victimScratch_);
    return evictRequest(victimScratch_.front(), true);
}

Tick
ServingEngine::evictRequest(RequestId id, bool reactive)
{
    const auto victim_it = std::find_if(
        running_.begin(), running_.end(),
        [id](const EngineRequest *request) {
            return request->spec.id == id;
        });
    LIGHTLLM_ASSERT(victim_it != running_.end(),
                    "eviction victim ", id, " is not decoding");
    EngineRequest *victim = *victim_it;
    running_.erase(victim_it);
    std::erase(runningIds_, victim->spec.id);

    const TokenCount victim_tokens =
        kv_.requestTokens(victim->spec.id);
    // release() only drops references: blocks the prefix cache (or
    // another sharer) holds survive, so the victim's re-admission
    // can re-match its prefix instead of recomputing it.
    kv_.release(victim->spec.id);
    victim->evictions += 1;
    victim->remainingPrompt = 0;
    victim->cachedPrefix = 0;
    collector_.onEviction(victim->evictions == 1);
    policy_->onRequestEvicted(victim->spec.id);
    // Back to the front of the queue; the KV is either rebuilt by a
    // future recompute prefill or restored by a swap-in.
    waiting_.push_front(victim);

    if (trace_ != nullptr) {
        const auto cause = static_cast<std::int64_t>(
            reactive ? trace::EvictCause::Reactive
                     : trace::EvictCause::Proactive);
        trace_->end(trace::TraceName::Decode, id, now_,
                    victim->generated);
        trace_->instant(trace::TraceName::Evict, id, now_, cause,
                        victim->generated, victim->evictions);
        if (config_.evictionMode == EvictionMode::Swap) {
            trace_->instant(trace::TraceName::SwapOut, id, now_,
                            victim_tokens);
        }
        trace_->begin(trace::TraceName::Queued, id, now_,
                      victim->spec.inputLen,
                      policy_->peekPrediction(
                          id, victim->generated,
                          victim->spec.maxNewTokens),
                      victim->spec.effectiveOutputLen());
    }

    if (config_.evictionMode == EvictionMode::Swap) {
        victim->swappedOut = true;
        const Tick cost = scaled(perf_.swapLatency(victim_tokens));
        collector_.onSwap(victim_tokens, cost);
        return cost;
    }
    return 0;
}

TokenCount
ServingEngine::trueFutureMemory() const
{
    scratchEntries_.clear();
    auto add_entry = [this](const EngineRequest *request) {
        const TokenCount target =
            std::max(request->targetOutput(), request->generated);
        scratchEntries_.push_back(core::BatchEntry{
            request->spec.inputLen - request->cachedPrefix,
            request->generated, target});
    };
    for (const EngineRequest *request : running_)
        add_entry(request);
    for (const EngineRequest *request : prefillPending_)
        add_entry(request);
    return core::futureRequiredMemory(scratchEntries_);
}

TokenCount
ServingEngine::predictedFutureMemory()
{
    // Same batch walk as trueFutureMemory, but with the target
    // lengths the scheduler believes in (read-only peek — consumes
    // no RNG, inserts no sticky state).
    scratchEntries_.clear();
    auto add_entry = [this](const EngineRequest *request) {
        const TokenCount predicted = std::max(
            policy_->peekPrediction(request->spec.id,
                                    request->generated,
                                    request->spec.maxNewTokens),
            request->generated);
        scratchEntries_.push_back(core::BatchEntry{
            request->spec.inputLen - request->cachedPrefix,
            request->generated, predicted});
    };
    for (const EngineRequest *request : running_)
        add_entry(request);
    for (const EngineRequest *request : prefillPending_)
        add_entry(request);
    return core::futureRequiredMemory(scratchEntries_);
}

void
ServingEngine::runPrefillPhase()
{
    for (EngineRequest *request : prefillPending_) {
        if (request->swappedOut) {
            // Swap-in: restore the KV; no compute, no new token
            // (the request resumes decoding from where it was).
            const Tick duration = scaled(perf_.swapLatency(
                request->spec.inputLen + request->generated));
            now_ += duration;
            collector_.onSwap(
                request->spec.inputLen + request->generated,
                duration);
            request->swappedOut = false;
            running_.push_back(request);
            if (trace_ != nullptr) {
                trace_->instant(trace::TraceName::SwapIn,
                                request->spec.id, now_,
                                request->spec.inputLen +
                                    request->generated);
                trace_->end(trace::TraceName::Prefill,
                            request->spec.id, now_);
                trace_->begin(trace::TraceName::Decode,
                              request->spec.id, now_,
                              request->generated);
            }
            continue;
        }
        if (request->migratedAdmit) {
            // Migrated KV is already resident: straight to the
            // decode batch. The transfer cost was paid on the
            // interconnect before dispatch.
            request->migratedAdmit = false;
            running_.push_back(request);
            if (trace_ != nullptr) {
                trace_->instant(trace::TraceName::Migrated,
                                request->spec.id, now_,
                                request->spec.migratedPrefix);
                trace_->end(trace::TraceName::Prefill,
                            request->spec.id, now_);
                trace_->begin(trace::TraceName::Decode,
                              request->spec.id, now_,
                              request->generated);
            }
            continue;
        }
        const Tick duration =
            scaled(perf_.prefillLatency(request->remainingPrompt));
        now_ += duration;
        collector_.onPrefill(request->remainingPrompt, duration);
        request->remainingPrompt = 0;
        request->generated += 1;
        recordEmission(*request, now_);
        if (trace_ != nullptr)
            trace_->end(trace::TraceName::Prefill,
                        request->spec.id, now_);
        if (request->generated >= request->targetOutput()) {
            finishRequest(request);  // does its own cacheInsert
        } else {
            if (trace_ != nullptr)
                trace_->begin(trace::TraceName::Decode,
                              request->spec.id, now_,
                              request->generated);
            // The freshly prefilled prompt blocks are now valid
            // KV: publish them so concurrent same-prefix requests
            // share.
            cacheInsert(request);
            running_.push_back(request);
        }
    }
    prefillPending_.clear();
}

void
ServingEngine::runDecodeStep()
{
    runningIds_.clear();
    for (const EngineRequest *request : running_)
        runningIds_.push_back(request->spec.id);

    // extendBatchByOne fuses the feasibility check with the
    // per-request growth (one KV lookup per request per step); a
    // false return changed nothing, exactly like the old split
    // check, so the eviction loop is unchanged.
    Tick eviction_stall = 0;
    while (!running_.empty() &&
           !kv_.extendBatchByOne(runningIds_)) {
        if (running_.size() == 1) {
            // A lone request that cannot extend would evict and
            // re-admit itself forever.
            fatal("request ", running_.front()->spec.id,
                  " outgrew the KV capacity of ",
                  kv_.capacityTokens(),
                  " tokens; raise capacity or lower "
                  "max_new_tokens");
        }
        eviction_stall += evictOne();
    }
    if (running_.empty()) {
        now_ += eviction_stall;
        return;
    }

    TokenCount batch_kv = 0;
    for (EngineRequest *request : running_) {
        request->generated += 1;
        batch_kv += request->spec.inputLen + request->generated;
    }

    const auto batch_size =
        static_cast<std::int64_t>(running_.size());
    const Tick duration = eviction_stall +
        scaled(perf_.decodeLatency(batch_size, batch_kv));
    now_ += duration;
    const TokenCount true_future = trueFutureMemory();
    const TokenCount predicted_future = predictedFutureMemory();
    collector_.onDecodeStep(batch_size, kv_.usedTokens(),
                            true_future, predicted_future, now_,
                            duration);
    if (trace_ != nullptr && trace_->stepsEnabled())
        traceStepCounters(batch_size, true_future, predicted_future);

    // Emissions and completions.
    finishedScratch_.clear();
    for (EngineRequest *request : running_)
        recordEmission(*request, now_);
    std::erase_if(running_, [&](EngineRequest *request) {
        if (request->generated >= request->targetOutput()) {
            if (trace_ != nullptr)
                trace_->end(trace::TraceName::Decode,
                            request->spec.id, now_,
                            request->generated);
            finishedScratch_.push_back(request);
            return true;
        }
        return false;
    });
    for (EngineRequest *request : finishedScratch_)
        finishRequest(request);
}

void
ServingEngine::traceStepCounters(std::int64_t batch_size,
                                 TokenCount true_future,
                                 TokenCount predicted_future)
{
    trace_->counter(trace::TraceName::BatchSize, now_, batch_size);
    trace_->counter(trace::TraceName::KvUsed, now_,
                    kv_.usedTokens());
    trace_->counter(trace::TraceName::KvFutureTrue, now_,
                    true_future);
    trace_->counter(trace::TraceName::KvFuturePred, now_,
                    predicted_future);
    trace_->counter(trace::TraceName::QueueDepth, now_,
                    static_cast<std::int64_t>(waiting_.size()));
}

void
ServingEngine::runFusedStep()
{
    runningIds_.clear();
    for (const EngineRequest *request : running_)
        runningIds_.push_back(request->spec.id);

    // Fused check+growth, as in runDecodeStep: nothing between the
    // passing call and the step body touches the KV manager, so
    // applying the extends up front is byte-equivalent.
    Tick extra_stall = 0;
    while (!running_.empty() &&
           !kv_.extendBatchByOne(runningIds_)) {
        if (running_.size() == 1) {
            fatal("request ", running_.front()->spec.id,
                  " outgrew the KV capacity of ",
                  kv_.capacityTokens(),
                  " tokens; raise capacity or lower "
                  "max_new_tokens");
        }
        extra_stall += evictOne();
    }

    // Swap-ins restore admitted-but-offloaded requests; they join
    // the batch after this step (no token emitted while restoring).
    swappedInScratch_.clear();
    std::erase_if(prefillPending_, [&](EngineRequest *request) {
        if (!request->swappedOut)
            return false;
        const TokenCount tokens =
            request->spec.inputLen + request->generated;
        const Tick cost = scaled(perf_.swapLatency(tokens));
        extra_stall += cost;
        collector_.onSwap(tokens, cost);
        request->swappedOut = false;
        if (trace_ != nullptr) {
            trace_->instant(trace::TraceName::SwapIn,
                            request->spec.id, now_, tokens);
        }
        swappedInScratch_.push_back(request);
        return true;
    });

    // Consume up to one chunk of pending prompt tokens (front
    // requests first).
    TokenCount chunk_used = 0;
    for (EngineRequest *request : prefillPending_) {
        if (chunk_used >= config_.splitFuseChunk)
            break;
        const TokenCount take = std::min(
            config_.splitFuseChunk - chunk_used,
            request->remainingPrompt);
        request->remainingPrompt -= take;
        chunk_used += take;
        if (take > 0 && trace_ != nullptr &&
            trace_->stepsEnabled()) {
            trace_->instant(trace::TraceName::Chunk,
                            request->spec.id, now_, take,
                            request->remainingPrompt);
        }
    }

    TokenCount batch_kv = 0;
    for (EngineRequest *request : running_) {
        request->generated += 1;
        batch_kv += request->spec.inputLen + request->generated;
    }

    const auto batch_size =
        static_cast<std::int64_t>(running_.size());
    if (batch_size == 0 && chunk_used == 0 &&
        swappedInScratch_.empty()) {
        return;
    }
    Tick duration = extra_stall;
    if (batch_size > 0 || chunk_used > 0) {
        duration += scaled(perf_.fusedStepLatency(
            batch_size, batch_kv, chunk_used));
    }
    now_ += duration;
    if (batch_size > 0) {
        const TokenCount true_future = trueFutureMemory();
        const TokenCount predicted_future = predictedFutureMemory();
        collector_.onDecodeStep(batch_size, kv_.usedTokens(),
                                true_future, predicted_future,
                                now_, duration);
        if (trace_ != nullptr && trace_->stepsEnabled()) {
            traceStepCounters(batch_size, true_future,
                              predicted_future);
        }
    }
    if (chunk_used > 0)
        collector_.onPrefill(chunk_used, duration);

    finishedScratch_.clear();
    for (EngineRequest *request : running_)
        recordEmission(*request, now_);
    std::erase_if(running_, [&](EngineRequest *request) {
        if (request->generated >= request->targetOutput()) {
            if (trace_ != nullptr)
                trace_->end(trace::TraceName::Decode,
                            request->spec.id, now_,
                            request->generated);
            finishedScratch_.push_back(request);
            return true;
        }
        return false;
    });

    // Requests whose prefill completed emit their first token and
    // join the running batch.
    std::erase_if(prefillPending_, [&](EngineRequest *request) {
        if (request->remainingPrompt > 0)
            return false;
        request->generated += 1;
        recordEmission(*request, now_);
        if (trace_ != nullptr)
            trace_->end(trace::TraceName::Prefill,
                        request->spec.id, now_);
        if (request->generated >= request->targetOutput()) {
            finishedScratch_.push_back(request);  // finish inserts
        } else {
            if (trace_ != nullptr)
                trace_->begin(trace::TraceName::Decode,
                              request->spec.id, now_,
                              request->generated);
            cacheInsert(request);
            running_.push_back(request);
        }
        return true;
    });

    for (EngineRequest *request : finishedScratch_)
        finishRequest(request);

    // Restored requests resume decoding from the next step.
    for (EngineRequest *request : swappedInScratch_) {
        if (trace_ != nullptr) {
            trace_->end(trace::TraceName::Prefill,
                        request->spec.id, now_);
            trace_->begin(trace::TraceName::Decode,
                          request->spec.id, now_,
                          request->generated);
        }
        running_.push_back(request);
    }
}

bool
ServingEngine::limitsReached(const RunLimits &limits) const
{
    if (limits.maxFinishedRequests > 0 &&
        finished_ >= limits.maxFinishedRequests) {
        return true;
    }
    if (limits.maxTicks > 0 && now_ >= limits.maxTicks)
        return true;
    return false;
}

void
ServingEngine::iterateOnce()
{
    admitRequests();
    if (config_.splitFuse) {
        runFusedStep();
    } else {
        if (!prefillPending_.empty())
            runPrefillPhase();
        if (!running_.empty())
            runDecodeStep();
    }
}

bool
ServingEngine::stepOnce(const RunLimits &limits)
{
    LIGHTLLM_ASSERT(!shared_,
                    "stepOnce is standalone-mode only; a shared "
                    "SimContext drives attached engines");
    if (limitsReached(limits))
        return false;
    deliverArrivals();
    if (running_.empty() && prefillPending_.empty() &&
        waiting_.empty()) {
        if (context_->queue().empty())
            return false;  // drained
        now_ = context_->queue().nextTick();
        deliverArrivals();
        return true;
    }
    iterateOnce();
    return true;
}

metrics::RunReport
ServingEngine::run(const RunLimits &limits)
{
    LIGHTLLM_ASSERT(!ran_, "engine instances are single-run");
    ran_ = true;

    while (stepOnce(limits)) {
    }
    return report();
}

std::vector<ServingEngine::DrainedRequest>
ServingEngine::drainQueued()
{
    LIGHTLLM_ASSERT(shared_,
                    "drainQueued requires a shared SimContext");
    LIGHTLLM_ASSERT(!draining_, "engine drained twice");
    draining_ = true;

    std::vector<DrainedRequest> redispatch;

    // Queued-but-never-admitted requests leave in queue order and
    // re-enter a router immediately, carrying their original
    // arrival stamps so TTFT keeps counting their pre-drain wait.
    // Requests holding engine history (evicted or swapped out
    // mid-flight) stay: their KV rebuild and emission records live
    // here.
    const Tick drain_tick = context_->now();
    std::deque<EngineRequest *> keep;
    for (EngineRequest *request : waiting_) {
        if (request->generated > 0 || request->evictions > 0 ||
            request->swappedOut) {
            keep.push_back(request);
            continue;
        }
        if (trace_ != nullptr) {
            trace_->end(trace::TraceName::Queued,
                        request->spec.id, drain_tick);
            trace_->instant(trace::TraceName::Drained,
                            request->spec.id, drain_tick);
        }
        redispatch.push_back(DrainedRequest{
            request->spec, drain_tick, request->arrival});
        recycleRequest(request);
    }
    waiting_ = std::move(keep);

    // Claw back in-flight arrival events; they re-enter the router
    // at their original arrival ticks. Sorted by (tick, token) so
    // the re-dispatch order never depends on hash-map iteration
    // (tokens increase in submission order).
    std::vector<std::pair<Tick, std::uint64_t>> pending;
    pending.reserve(pendingArrivals_.size());
    for (const auto &[token, entry] : pendingArrivals_)
        pending.emplace_back(context_->eventTick(entry.event),
                             token);
    std::sort(pending.begin(), pending.end());
    for (const auto &[tick, token] : pending) {
        const auto &entry = pendingArrivals_.at(token);
        context_->cancel(entry.event);
        undeliveredTokens_ -= entry.spec.inputLen;
        redispatch.push_back(
            DrainedRequest{entry.spec, tick, entry.stamp});
    }
    pendingArrivals_.clear();
    return redispatch;
}

std::vector<ServingEngine::DrainedRequest>
ServingEngine::stealQueued(std::size_t max_requests)
{
    LIGHTLLM_ASSERT(shared_,
                    "stealQueued requires a shared SimContext");
    LIGHTLLM_ASSERT(!draining_,
                    "cannot steal from a draining engine");

    std::vector<DrainedRequest> stolen;
    if (max_requests == 0 || waiting_.empty())
        return stolen;

    // Tail-to-head scan: the thief takes the freshest backlog so
    // the queue head (and its TTFT clock) stays put. Requests with
    // engine history stay regardless, as in drainQueued().
    std::vector<EngineRequest *> take;
    for (auto it = waiting_.rbegin();
         it != waiting_.rend() && take.size() < max_requests; ++it) {
        EngineRequest *request = *it;
        if (request->generated > 0 || request->evictions > 0 ||
            request->swappedOut) {
            continue;
        }
        take.push_back(request);
    }
    if (take.empty())
        return stolen;

    std::deque<EngineRequest *> keep;
    for (EngineRequest *request : waiting_) {
        if (std::find(take.begin(), take.end(), request) !=
            take.end()) {
            continue;
        }
        keep.push_back(request);
    }
    waiting_ = std::move(keep);

    // Queue order (oldest first) for deterministic re-dispatch.
    std::reverse(take.begin(), take.end());
    const Tick steal_tick = context_->now();
    stolen.reserve(take.size());
    for (EngineRequest *request : take) {
        if (trace_ != nullptr) {
            trace_->end(trace::TraceName::Queued,
                        request->spec.id, steal_tick);
            trace_->instant(trace::TraceName::Drained,
                            request->spec.id, steal_tick);
        }
        stolen.push_back(DrainedRequest{request->spec, steal_tick,
                                        request->arrival});
        recycleRequest(request);
    }
    return stolen;
}

metrics::RunReport
ServingEngine::report() const
{
    return collector_.finish(policy_->name(), now_);
}

bool
ServingEngine::hasWork() const
{
    return !running_.empty() || !prefillPending_.empty() ||
        !waiting_.empty();
}

TokenCount
ServingEngine::outstandingTokens() const
{
    TokenCount total = kv_.usedTokens() + undeliveredTokens_;
    for (const EngineRequest *request : waiting_)
        total += request->spec.inputLen + request->generated;
    return total;
}

TokenCount
ServingEngine::predictedLoadTokens()
{
    const core::SchedulerContext ctx = buildContext();
    return policy_->estimateLoad(ctx) + undeliveredTokens_;
}

TokenCount
ServingEngine::migratedResidentTokens(const EngineRequest &request)
{
    if (request.spec.migratedPrefix > 0 && request.generated == 0 &&
        request.evictions == 0 && !request.swappedOut) {
        return request.spec.migratedPrefix;
    }
    return 0;
}

TokenCount
ServingEngine::pendingPrefillTokens() const
{
    // In-flight arrivals are conservatively counted as full
    // prompts (their migration status is unknown until delivery).
    TokenCount total = undeliveredTokens_;
    for (const EngineRequest *request : waiting_) {
        total += request->spec.inputLen + request->generated -
            migratedResidentTokens(*request);
    }
    for (const EngineRequest *request : prefillPending_)
        total += request->remainingPrompt;
    return total;
}

} // namespace engine
} // namespace lightllm
