#include "engine/static_engine.hh"

#include <algorithm>

#include "base/logging.hh"
#include "metrics/collector.hh"

namespace lightllm {
namespace engine {

metrics::RunReport
runStaticBatch(const model::PerfModel &perf,
               const workload::Dataset &dataset,
               const StaticEngineConfig &config)
{
    LIGHTLLM_ASSERT(config.timeFactor > 0.0,
                    "time factor must be positive");
    const TokenCount capacity = perf.tokenCapacity();

    // Derive the batch size from the worst-case padded reservation.
    TokenCount max_prompt = 0;
    for (const auto &request : dataset.requests)
        max_prompt = std::max(max_prompt, request.inputLen);
    const TokenCount per_slot = max_prompt + dataset.maxNewTokens;
    std::size_t batch_size = config.batchSize;
    if (batch_size == 0) {
        batch_size = static_cast<std::size_t>(
            std::max<TokenCount>(1, capacity / per_slot));
    }

    memory::ContiguousAllocator arena(capacity);
    metrics::MetricsCollector collector(capacity);

    auto scale = [&](Tick ticks) {
        return std::max<Tick>(
            1, static_cast<Tick>(static_cast<double>(ticks) *
                                 config.timeFactor + 0.5));
    };

    Tick now = 0;
    std::size_t next = 0;
    while (next < dataset.requests.size()) {
        const std::size_t count = std::min(
            batch_size, dataset.requests.size() - next);
        const auto *batch = &dataset.requests[next];

        // Padded reservation for the batch lifetime. The padded
        // slot width uses this batch's longest prompt.
        TokenCount batch_max_prompt = 0;
        TokenCount batch_max_output = 0;
        for (std::size_t i = 0; i < count; ++i) {
            batch_max_prompt =
                std::max(batch_max_prompt, batch[i].inputLen);
            batch_max_output = std::max(
                batch_max_output, batch[i].effectiveOutputLen());
        }
        const TokenCount slot =
            batch_max_prompt + dataset.maxNewTokens;
        for (std::size_t i = 0; i < count; ++i) {
            const bool ok =
                arena.allocate(batch[i].id, slot);
            LIGHTLLM_ASSERT(ok, "static batch does not fit: slot ",
                            slot, " x ", count, " in ", capacity);
        }

        // Prefill the padded batch (everyone pays the longest
        // prompt).
        const Tick prefill = scale(
            perf.prefillLatency(batch_max_prompt *
                                static_cast<TokenCount>(count)));
        now += prefill;
        collector.onPrefill(
            batch_max_prompt * static_cast<TokenCount>(count),
            prefill);

        std::vector<Tick> first_token(count, now);
        std::vector<Tick> last_emit(count, now);
        std::vector<Tick> max_gap(count, 0);

        // Decode until the slowest request finishes; early
        // finishers stop emitting but their padded KV stays
        // resident (static batching cannot release it).
        for (TokenCount step = 2; step <= batch_max_output; ++step) {
            const TokenCount kv_tokens =
                static_cast<TokenCount>(count) *
                (batch_max_prompt + step);
            const Tick duration = scale(perf.decodeLatency(
                static_cast<std::int64_t>(count), kv_tokens));
            now += duration;
            collector.onDecodeStep(
                static_cast<std::int64_t>(count),
                arena.usedTokens(), arena.usedTokens(),
                arena.usedTokens(), now, duration);
            for (std::size_t i = 0; i < count; ++i) {
                if (batch[i].effectiveOutputLen() >= step) {
                    max_gap[i] = std::max(max_gap[i],
                                          now - last_emit[i]);
                    last_emit[i] = now;
                }
            }
        }

        for (std::size_t i = 0; i < count; ++i) {
            metrics::RequestRecord record;
            record.id = batch[i].id;
            record.inputLen = batch[i].inputLen;
            record.outputTokens = batch[i].effectiveOutputLen();
            record.arrival = 0;
            record.firstToken = first_token[i];
            record.finish = last_emit[i];
            record.maxGap = max_gap[i];
            collector.onRequestFinished(record);
            arena.release(batch[i].id);
        }
        next += count;
    }

    return collector.finish("Static-batch(origin)", now);
}

} // namespace engine
} // namespace lightllm
