/**
 * @file
 * Disaggregated prefill/decode serving with KV migration.
 *
 * Mooncake/DistServe-style deployment: the fleet splits into a
 * *prefill pool* and a *decode pool*, each a cluster::ServingCluster
 * co-simulating on one shared sim::SimContext. A request's life:
 *
 *  1. The prefill pool serves a one-token sub-request (the full
 *     prompt, maxNewTokens = 1). Its completion is the request's
 *     real TTFT — prefill instances never hold decode batches, so
 *     long prompts stop inflating other requests' MTPOT.
 *  2. The finished KV cache (prompt + first token, rounded up to
 *     whole blocks) migrates over a modeled interconnect:
 *     transfer time = bytes / HardwareSpec::interconnectBandwidth
 *     + HardwareSpec::interconnectLatency.
 *  3. The transfer lands in a *bounded handoff queue*. When full,
 *     the request is dropped (open-loop rejection) and counted in
 *     `handoffShedRequests` — the backpressure point of the
 *     disaggregated pipeline.
 *  4. A dispatch gate reserves memory on the decode pool (the
 *     migrated KV must fit the target instance) and submits a
 *     decode-side sub-request whose `migratedPrefix` covers the
 *     whole prompt: admission allocates the KV as resident tokens
 *     without prefill compute, and all four schedulers discount it
 *     through the same seam as a cached prefix.
 *
 * Routing is asymmetric: the prefill pool places by pending prefill
 * tokens (RoutingPolicy::PrefillLoad), the decode pool by predicted
 * future-memory footprint. With autoscaling enabled per pool, the
 * DisaggCluster drives *two independent control loops* off one
 * periodic event, so prefill-heavy vs decode-heavy traffic grows
 * different pools. End-to-end latency records are reassembled per
 * request id: TTFT from the prefill side, completion from the
 * decode side, and the migration gap (transfer + handoff wait +
 * decode admission) honestly counts toward MTPOT. See DESIGN.md §7.
 */

#ifndef LIGHTLLM_DISAGG_DISAGG_CLUSTER_HH
#define LIGHTLLM_DISAGG_DISAGG_CLUSTER_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/types.hh"
#include "cluster/serving_cluster.hh"
#include "engine/serving_engine.hh"
#include "metrics/report.hh"
#include "sim/sharded_sim_context.hh"
#include "sim/sim_context.hh"
#include "workload/client_pool.hh"

namespace lightllm {
namespace disagg {

/** Interconnect + handoff parameters of a disaggregated fleet. */
struct DisaggConfig
{
    /** KV bytes per token slot (ModelSpec::kvBytesPerToken()). */
    ByteCount kvBytesPerToken = 0;

    /** KV block granularity: transfers move whole blocks. */
    TokenCount blockSize = 16;

    /** Interconnect bandwidth in bytes/second. */
    double linkBandwidth = 25e9;

    /** Fixed per-transfer latency in ticks. */
    Tick transferLatency = 0;

    /** Handoff queue bound; a completed transfer that finds the
     *  queue full is dropped (backpressure by rejection). */
    std::size_t handoffDepth = 64;

    /** Period of the per-pool autoscale control loops. */
    Tick controlInterval = secondsToTicks(2.0);
};

/** KV bytes migrated for a request holding `kv_tokens` token slots
 *  (whole-block rounding — partial blocks move entirely). */
ByteCount migrationBytes(const DisaggConfig &config,
                         TokenCount kv_tokens);

/** Ticks a migration of `kv_tokens` occupies the interconnect
 *  (serialization at linkBandwidth plus the fixed latency). */
Tick migrationTransferTicks(const DisaggConfig &config,
                            TokenCount kv_tokens);

/** A prefill pool and a decode pool joined by a KV-migration
 *  handoff queue, co-simulating on one shared context. */
class DisaggCluster : public workload::RequestSink
{
  public:
    using FinishCallback = engine::ServingEngine::FinishCallback;

    /**
     * @param prefill_instances Engines of the prefill pool (>= 1);
     *        routed by RoutingPolicy::PrefillLoad.
     * @param decode_instances Engines of the decode pool (>= 1);
     *        routed by RoutingPolicy::FutureMemory.
     * @param config Interconnect + handoff parameters.
     * @param sim_threads Compute threads for the co-simulation.
     *        1 (default) runs the classic single-queue loop; K > 1
     *        shards both pools' engines across a ShardedSimContext
     *        (bit-identical results, see DESIGN.md §9). Handoffs
     *        between pools are Delivery events on the coordinator
     *        and cross shard boundaries transparently.
     */
    DisaggCluster(
        std::vector<std::unique_ptr<engine::ServingEngine>>
            prefill_instances,
        std::vector<std::unique_ptr<engine::ServingEngine>>
            decode_instances,
        DisaggConfig config, std::uint32_t sim_threads = 1);

    /** Submit an end-user request: it prefills in the prefill pool
     *  and (when more than one token is wanted) migrates into the
     *  decode pool. */
    void submitAt(const workload::RequestSpec &spec,
                  Tick arrival) override;

    /** Completion listener, fired once per *original* request with
     *  its original spec at its final completion tick (prefill-only
     *  requests complete in the prefill pool). Closed-loop drivers
     *  plug in here unchanged. */
    void setOnFinish(FinishCallback callback);

    /** The pools, for pre-run wiring (autoscale via
     *  setInstanceFactory/enableAutoscale, drains, history
     *  warming). A decode-pool autoscaler must keep
     *  ShedPolicy::Never — the handoff bound is the shed point. */
    cluster::ServingCluster &prefillPool() { return *prefillPool_; }
    cluster::ServingCluster &decodePool() { return *decodePool_; }

    /** The shared simulation context. */
    sim::SimContext &context() { return context_; }

    /**
     * Attach a flight recorder to the whole disaggregated system:
     * prefill-pool engines get sinks labelled `prefill-<i>`, decode
     * engines `decode-<i>`, and (when sharded) the co-sim hub gets
     * its per-shard profiler sinks. Call before any submission.
     */
    void attachTrace(trace::TraceRecorder *recorder);

    /**
     * Co-simulate both pools to completion and return the combined
     * report: per-request records reassembled across the handoff
     * (arrival + TTFT from prefill, completion + migration gap from
     * decode), pool ledgers merged, and the disagg section
     * (per-pool p99s, handoff p99 wait, migrated bytes) filled in.
     */
    metrics::RunReport run();

    /** Pool reports (valid after run()). */
    const metrics::RunReport &prefillReport() const
    {
        return prefillReport_;
    }
    const metrics::RunReport &decodeReport() const
    {
        return decodeReport_;
    }

    std::int64_t offeredRequests() const { return offered_; }
    std::int64_t migratedRequests() const
    {
        return migratedRequests_;
    }
    std::int64_t migratedKvBytes() const
    {
        return migratedKvBytesTotal_;
    }
    std::int64_t handoffShedRequests() const
    {
        return handoffShed_;
    }

    /** Transfers completed but not yet dispatched (instantaneous
     *  handoff queue depth; tests). */
    std::size_t handoffDepthNow() const { return handoff_.size(); }

  private:
    /** Handoff state of one in-flight request. */
    struct Pending
    {
        workload::RequestSpec original;

        /** Decode-side sub-request (unused when the original wants
         *  a single token). */
        workload::RequestSpec decodeSpec;
    };

    struct HandoffEntry
    {
        RequestId id;
        Tick enqueuedAt;
    };

    void handlePrefillFinish(const workload::RequestSpec &spec,
                             Tick tick);
    void handleDecodeFinish(const workload::RequestSpec &spec,
                            Tick tick);
    void onTransferComplete(RequestId id, Tick when);

    /** Dispatch queue-head requests while the decode pool has room
     *  for their migrated KV. */
    void tryDispatch(Tick when);

    /** True when some routable decode instance can hold `kv_tokens`
     *  more resident tokens (net of not-yet-visible dispatches). */
    bool decodeRoomFor(TokenCount kv_tokens);

    /** Original-request completion fan-out. */
    void finishUser(const workload::RequestSpec &original, Tick tick);

    /** Two-pool control tick: one controlOnce() per elastic pool,
     *  rescheduled until every offered request is accounted for. */
    void controlTick(Tick when);

    /** All offered requests finished, shed at the router, or shed
     *  at the handoff — nothing left that a control decision or
     *  dispatch retry could affect. */
    bool quiescent() const;

    /** Combined per-request records + disagg report section. */
    metrics::RunReport assembleReport();

    DisaggConfig config_;

    /** Shared clock + event queue (declared before the pools that
     *  borrow it). */
    sim::SimContext context_;

    /** Optional sharded executor enrolling context_ as its root;
     *  declared after context_ (detaches on destruction) and before
     *  the pools (their engines attach to its shards). */
    std::unique_ptr<sim::ShardedSimContext> hub_;

    std::unique_ptr<cluster::ServingCluster> prefillPool_;
    std::unique_ptr<cluster::ServingCluster> decodePool_;

    FinishCallback onFinish_;
    bool ran_ = false;

    std::unordered_map<RequestId, Pending> pending_;
    std::deque<HandoffEntry> handoff_;

    /** Ids dropped at a full handoff queue (their prefill-side
     *  records are excluded from the combined report). */
    std::unordered_set<RequestId> shedIds_;

    /** KV tokens submitted to the decode pool whose arrival has not
     *  yet reached the instances' outstanding counters (deferred
     *  routing fires later in the same tick); reserved so a burst
     *  of same-tick dispatches cannot over-commit the gate. */
    TokenCount inFlightDispatchTokens_ = 0;

    std::int64_t offered_ = 0;
    std::int64_t finishedUsers_ = 0;
    std::int64_t migratedRequests_ = 0;
    std::int64_t migratedKvBytesTotal_ = 0;
    std::int64_t handoffShed_ = 0;
    Tick lastUserFinishTick_ = 0;

    /** Handoff waits (transfer complete → dispatch), seconds. */
    std::vector<double> handoffWaits_;

    metrics::RunReport prefillReport_;
    metrics::RunReport decodeReport_;
};

} // namespace disagg
} // namespace lightllm

#endif // LIGHTLLM_DISAGG_DISAGG_CLUSTER_HH
