#include "disagg/disagg_cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "base/logging.hh"
#include "stats/percentile.hh"

namespace lightllm {
namespace disagg {

ByteCount
migrationBytes(const DisaggConfig &config, TokenCount kv_tokens)
{
    LIGHTLLM_ASSERT(kv_tokens > 0, "empty migration");
    const TokenCount blocks =
        (kv_tokens + config.blockSize - 1) / config.blockSize;
    return blocks * config.blockSize * config.kvBytesPerToken;
}

Tick
migrationTransferTicks(const DisaggConfig &config,
                       TokenCount kv_tokens)
{
    const double seconds =
        static_cast<double>(migrationBytes(config, kv_tokens)) /
        config.linkBandwidth;
    return config.transferLatency + secondsToTicks(seconds);
}

DisaggCluster::DisaggCluster(
    std::vector<std::unique_ptr<engine::ServingEngine>>
        prefill_instances,
    std::vector<std::unique_ptr<engine::ServingEngine>>
        decode_instances,
    DisaggConfig config, std::uint32_t sim_threads)
    : config_(config)
{
    LIGHTLLM_ASSERT(config_.kvBytesPerToken > 0,
                    "disagg config needs the model's KV bytes per "
                    "token");
    LIGHTLLM_ASSERT(config_.blockSize >= 1, "bad KV block size");
    LIGHTLLM_ASSERT(config_.linkBandwidth > 0,
                    "interconnect bandwidth must be positive");
    LIGHTLLM_ASSERT(config_.transferLatency >= 0,
                    "negative transfer latency");
    LIGHTLLM_ASSERT(config_.handoffDepth >= 1,
                    "handoff queue needs room for at least one "
                    "transfer");
    LIGHTLLM_ASSERT(sim_threads >= 1, "need at least one sim thread");
    // Enroll before the pools adopt their engines: adoption is what
    // places each engine on a shard. Both pools share one hub, so
    // shard balancing spans the whole disaggregated fleet.
    if (sim_threads > 1) {
        hub_ = std::make_unique<sim::ShardedSimContext>(context_,
                                                        sim_threads);
    }
    prefillPool_ = std::make_unique<cluster::ServingCluster>(
        std::move(prefill_instances),
        cluster::RoutingPolicy::PrefillLoad, context_);
    decodePool_ = std::make_unique<cluster::ServingCluster>(
        std::move(decode_instances),
        cluster::RoutingPolicy::FutureMemory, context_);
    prefillPool_->setOnFinish(
        [this](const workload::RequestSpec &spec, Tick tick) {
            handlePrefillFinish(spec, tick);
        });
    decodePool_->setOnFinish(
        [this](const workload::RequestSpec &spec, Tick tick) {
            handleDecodeFinish(spec, tick);
        });
}

void
DisaggCluster::setOnFinish(FinishCallback callback)
{
    onFinish_ = std::move(callback);
}

void
DisaggCluster::attachTrace(trace::TraceRecorder *recorder)
{
    // Prefill sinks first, then decode: the trace's pid layout
    // mirrors the pool construction order above.
    prefillPool_->setTraceRecorder(recorder, "prefill");
    decodePool_->setTraceRecorder(recorder, "decode");
    if (hub_)
        hub_->attachTrace(recorder);
}

void
DisaggCluster::submitAt(const workload::RequestSpec &spec,
                        Tick arrival)
{
    ++offered_;

    Pending pending;
    pending.original = spec;
    if (spec.effectiveOutputLen() > 1) {
        // Decode-side sub-request: the prompt plus the token the
        // prefill emitted are resident migrated KV; the remaining
        // output is generated here. Content identities are cleared
        // — migrated blocks are private to this request.
        workload::RequestSpec decode = spec;
        decode.inputLen = spec.inputLen + 1;
        decode.outputLen = spec.effectiveOutputLen() - 1;
        decode.maxNewTokens = decode.outputLen;
        decode.segments.clear();
        decode.outputKey = 0;
        decode.sessionKey = 0;
        decode.migratedPrefix = decode.inputLen;
        decode.arrivalTick = -1;
        pending.decodeSpec = std::move(decode);
    }
    const bool inserted =
        pending_.emplace(spec.id, std::move(pending)).second;
    LIGHTLLM_ASSERT(inserted, "request id ", spec.id,
                    " submitted while still in flight");

    // Prefill-side sub-request: full prompt, exactly one token (the
    // real TTFT is its completion).
    workload::RequestSpec prefill = spec;
    prefill.outputLen = 1;
    prefill.maxNewTokens = 1;
    prefill.migratedPrefix = 0;
    prefillPool_->submitAt(prefill, arrival);
}

void
DisaggCluster::handlePrefillFinish(
    const workload::RequestSpec &spec, Tick tick)
{
    const auto it = pending_.find(spec.id);
    LIGHTLLM_ASSERT(it != pending_.end(),
                    "prefill completion for unknown request ",
                    spec.id);
    Pending &pending = it->second;
    if (pending.original.effectiveOutputLen() <= 1) {
        // Single-token request: nothing to migrate, the prefill
        // completion is the end-to-end completion.
        finishUser(pending.original, tick);
        pending_.erase(it);
        return;
    }
    // KV migration: prompt + first token, whole blocks, serialized
    // over the interconnect. The handoff decision happens when the
    // transfer lands.
    const TokenCount kv_tokens = pending.decodeSpec.inputLen;
    migratedKvBytesTotal_ += migrationBytes(config_, kv_tokens);
    ++migratedRequests_;
    context_.schedule(
        tick + migrationTransferTicks(config_, kv_tokens),
        [this, id = spec.id](Tick when) {
            onTransferComplete(id, when);
        });
}

void
DisaggCluster::onTransferComplete(RequestId id, Tick when)
{
    if (handoff_.size() >= config_.handoffDepth) {
        // Backpressure by rejection: the decode side cannot absorb
        // the migration rate. The prefill work is sunk cost; the
        // open-loop client sees a drop.
        ++handoffShed_;
        shedIds_.insert(id);
        pending_.erase(id);
        return;
    }
    handoff_.push_back(HandoffEntry{id, when});
    tryDispatch(when);
}

bool
DisaggCluster::decodeRoomFor(TokenCount kv_tokens)
{
    const autoscale::FleetSnapshot snap = decodePool_->snapshot();
    TokenCount best_room =
        std::numeric_limits<TokenCount>::min();
    TokenCount best_capacity = 0;
    for (const auto &instance : snap.instances) {
        if (!instance.routable)
            continue;
        best_capacity =
            std::max(best_capacity, instance.capacityTokens);
        best_room = std::max(best_room,
                             instance.capacityTokens -
                                 instance.outstandingTokens);
    }
    if (kv_tokens > best_capacity) {
        fatal("migrated KV of ", kv_tokens,
              " tokens exceeds every decode instance's capacity "
              "of ", best_capacity, " tokens");
    }
    return best_room - inFlightDispatchTokens_ >= kv_tokens;
}

void
DisaggCluster::tryDispatch(Tick when)
{
    while (!handoff_.empty()) {
        const HandoffEntry entry = handoff_.front();
        const Pending &pending = pending_.at(entry.id);
        const TokenCount kv_tokens = pending.decodeSpec.inputLen;
        if (!decodeRoomFor(kv_tokens))
            break;
        handoff_.pop_front();
        handoffWaits_.push_back(
            ticksToSeconds(when - entry.enqueuedAt));
        // Reserve the KV's room until the submission becomes
        // visible in the instances' outstanding counters (elastic
        // pools defer routing within the tick), then re-check the
        // queue — capacity may remain for the next head.
        inFlightDispatchTokens_ += kv_tokens;
        decodePool_->submitAt(pending.decodeSpec, when);
        context_.schedule(when + 1, [this, kv_tokens](Tick tick) {
            inFlightDispatchTokens_ -= kv_tokens;
            tryDispatch(tick);
        });
    }
}

void
DisaggCluster::handleDecodeFinish(
    const workload::RequestSpec &spec, Tick tick)
{
    const auto it = pending_.find(spec.id);
    LIGHTLLM_ASSERT(it != pending_.end(),
                    "decode completion for unknown request ",
                    spec.id);
    finishUser(it->second.original, tick);
    pending_.erase(it);
    tryDispatch(tick);
}

void
DisaggCluster::finishUser(const workload::RequestSpec &original,
                          Tick tick)
{
    ++finishedUsers_;
    lastUserFinishTick_ = std::max(lastUserFinishTick_, tick);
    if (onFinish_)
        onFinish_(original, tick);
}

bool
DisaggCluster::quiescent() const
{
    return finishedUsers_ + handoffShed_ +
            prefillPool_->shedRequests() ==
        offered_;
}

void
DisaggCluster::controlTick(Tick when)
{
    // One decision per elastic pool per tick: the pools share the
    // cadence but never the signal — each scaler sees only its own
    // pool's completions and snapshots, so prefill-heavy traffic
    // grows the prefill pool and decode-heavy the decode pool.
    if (prefillPool_->autoscaler())
        prefillPool_->controlOnce(when);
    if (decodePool_->autoscaler())
        decodePool_->controlOnce(when);
    // A freshly warmed decode instance may unblock the handoff.
    tryDispatch(when);
    if (!quiescent()) {
        context_.schedule(when + config_.controlInterval,
                          [this](Tick tick) { controlTick(tick); });
    }
}

metrics::RunReport
DisaggCluster::run()
{
    LIGHTLLM_ASSERT(!ran_, "disagg clusters are single-run");
    ran_ = true;
    if (decodePool_->autoscaler()) {
        LIGHTLLM_ASSERT(
            decodePool_->autoscaler()->config().shedPolicy ==
                autoscale::ShedPolicy::Never,
            "the decode pool must not shed at the router (the "
            "bounded handoff queue is the shed point)");
    }
    if (prefillPool_->autoscaler() || decodePool_->autoscaler()) {
        context_.schedule(config_.controlInterval, [this](Tick tick) {
            controlTick(tick);
        });
    }
    context_.runToCompletion();
    LIGHTLLM_ASSERT(quiescent(),
                    "event queue ran dry with requests still in "
                    "flight");

    // Both pools' cost clocks stop at the end of service — the last
    // user-visible completion anywhere.
    prefillReport_ =
        prefillPool_->finalizeReport(lastUserFinishTick_);
    decodeReport_ = decodePool_->finalizeReport(lastUserFinishTick_);
    return assembleReport();
}

metrics::RunReport
DisaggCluster::assembleReport()
{
    std::vector<metrics::RunReport> parts{prefillReport_,
                                          decodeReport_};
    metrics::RunReport merged = metrics::mergeReports(
        parts,
        "Disagg(P" +
            std::to_string(prefillPool_->numInstances()) + "+D" +
            std::to_string(decodePool_->numInstances()) + ")");

    // Reassemble end-to-end per-request records across the handoff.
    std::unordered_map<RequestId, const metrics::RequestRecord *>
        prefill_records;
    for (const auto &record : prefillReport_.requests)
        prefill_records.emplace(record.id, &record);

    std::vector<metrics::RequestRecord> combined;
    combined.reserve(prefillReport_.requests.size());
    for (const auto &decode : decodeReport_.requests) {
        const auto it = prefill_records.find(decode.id);
        LIGHTLLM_ASSERT(it != prefill_records.end(),
                        "decode-side record ", decode.id,
                        " without a prefill-side record");
        const metrics::RequestRecord &prefill = *it->second;
        metrics::RequestRecord record = prefill;
        record.outputTokens =
            prefill.outputTokens + decode.outputTokens;
        record.finish = decode.finish;
        // The migration gap (transfer + handoff wait + decode
        // admission + first decode step) is a real inter-token
        // stall the user observes: it competes with both pools'
        // internal gaps for the request's MTPOT.
        record.maxGap =
            std::max({prefill.maxGap, decode.maxGap,
                      decode.firstToken - prefill.firstToken});
        record.evictions = prefill.evictions + decode.evictions;
        combined.push_back(record);
        prefill_records.erase(it);
    }
    for (const auto &record : prefillReport_.requests) {
        if (prefill_records.find(record.id) ==
            prefill_records.end()) {
            continue;  // paired above
        }
        // Dropped at the handoff: the user saw a rejection, not a
        // completion — no end-to-end record.
        if (shedIds_.find(record.id) != shedIds_.end())
            continue;
        combined.push_back(record);
    }
    merged.requests = std::move(combined);
    merged.numFinished = merged.requests.size();

    // Pool-level sums double-count the pipeline: offered is what
    // the users submitted, shed adds the handoff drops.
    merged.offeredRequests = offered_;
    merged.shedRequests = prefillReport_.shedRequests +
        decodeReport_.shedRequests + handoffShed_;

    merged.disaggregated = true;
    const auto prefillDigest = prefillReport_.latencyDigest();
    const auto decodeDigest = decodeReport_.latencyDigest();
    merged.prefillPool = metrics::RunReport::PoolStats{
        prefillReport_.numFinished,
        prefillDigest.ttftPercentile(0.99),
        prefillDigest.mtpotPercentile(0.99)};
    merged.decodePool = metrics::RunReport::PoolStats{
        decodeReport_.numFinished,
        decodeDigest.ttftPercentile(0.99),
        decodeDigest.mtpotPercentile(0.99)};
    merged.handoffQueueP99Seconds =
        handoffWaits_.empty()
            ? 0.0
            : stats::percentile(handoffWaits_, 0.99);
    merged.migratedKvBytes = migratedKvBytesTotal_;
    merged.migratedRequests = migratedRequests_;
    merged.handoffShedRequests = handoffShed_;
    return merged;
}

} // namespace disagg
} // namespace lightllm
