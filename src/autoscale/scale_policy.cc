#include "autoscale/scale_policy.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace lightllm {
namespace autoscale {

std::size_t
FleetSnapshot::nonDrainingCount() const
{
    std::size_t count = 0;
    for (const InstanceSnapshot &instance : instances)
        count += instance.draining ? 0 : 1;
    return count;
}

std::size_t
FleetSnapshot::routableCount() const
{
    std::size_t count = 0;
    for (const InstanceSnapshot &instance : instances)
        count += instance.routable ? 1 : 0;
    return count;
}

std::size_t
FleetSnapshot::warmingCount() const
{
    std::size_t count = 0;
    for (const InstanceSnapshot &instance : instances)
        count += instance.warming ? 1 : 0;
    return count;
}

TokenCount
FleetSnapshot::readyCapacityTokens() const
{
    TokenCount total = 0;
    for (const InstanceSnapshot &instance : instances) {
        if (!instance.draining)
            total += instance.capacityTokens;
    }
    return total;
}

TokenCount
FleetSnapshot::predictedLoadTokens() const
{
    TokenCount total = 0;
    for (const InstanceSnapshot &instance : instances) {
        if (!instance.draining)
            total += instance.predictedLoadTokens;
    }
    return total;
}

TokenCount
FleetSnapshot::outstandingTokens() const
{
    TokenCount total = 0;
    for (const InstanceSnapshot &instance : instances) {
        if (!instance.draining)
            total += instance.outstandingTokens;
    }
    return total;
}

ReactiveThresholdPolicy::ReactiveThresholdPolicy(
    ReactivePolicyConfig config)
    : config_(config)
{
    LIGHTLLM_ASSERT(config_.sloTarget > 0.0 &&
                        config_.sloTarget <= 1.0,
                    "slo target must be in (0, 1]");
    LIGHTLLM_ASSERT(config_.downAttainment >= config_.sloTarget,
                    "scale-down attainment below the target would "
                    "flap");
}

int
ReactiveThresholdPolicy::decide(const FleetSnapshot &fleet,
                                const SloStats &slo)
{
    const std::size_t n = fleet.nonDrainingCount();

    // Threshold up: observed attainment fell below the target.
    if (slo.samples >= config_.minSamples &&
        slo.attainment < config_.sloTarget) {
        return 1;
    }

    // Hysteresis down: comfortably attaining *and* the shrunk fleet
    // would still be lightly loaded (projected on mean capacity).
    if (n > 1 && slo.attainment >= config_.downAttainment) {
        const double mean_capacity =
            static_cast<double>(fleet.readyCapacityTokens()) /
            static_cast<double>(n);
        const double capacity_after =
            mean_capacity * static_cast<double>(n - 1);
        const double utilisation_after =
            static_cast<double>(fleet.outstandingTokens()) /
            std::max(capacity_after, 1.0);
        if (utilisation_after < config_.downUtilisation)
            return -1;
    }
    return 0;
}

PredictiveFutureMemoryPolicy::PredictiveFutureMemoryPolicy(
    PredictivePolicyConfig config)
    : config_(config)
{
    LIGHTLLM_ASSERT(config_.headroom > 0.0 &&
                        config_.headroom <= 1.0,
                    "headroom must be in (0, 1]");
    LIGHTLLM_ASSERT(config_.downFraction > 0.0 &&
                        config_.downFraction < 1.0,
                    "down fraction must be in (0, 1)");
}

int
PredictiveFutureMemoryPolicy::decide(const FleetSnapshot &fleet,
                                     const SloStats &slo)
{
    const std::size_t n = fleet.nonDrainingCount();
    if (n == 0)
        return 1;

    const double mean_capacity =
        static_cast<double>(fleet.readyCapacityTokens()) /
        static_cast<double>(n);
    if (mean_capacity <= 0.0)
        return 0;

    // The fleet's committed memory demand: every instance's
    // future-memory forecast (running-batch peak + queued
    // footprints), summed. This is known *now*, before any TTFT
    // degrades — the whole point of scaling on the forecast.
    const double demand =
        static_cast<double>(fleet.predictedLoadTokens());

    // Instances needed so demand fits under the headroom target.
    const double per_instance =
        config_.headroom * mean_capacity;
    const std::size_t needed = static_cast<std::size_t>(
        std::max(1.0, std::ceil(demand / per_instance)));

    if (needed > n) {
        // Warming capacity already counts in n, so this only asks
        // for what is still missing.
        return static_cast<int>(needed - n);
    }

    // Shrink once the forecast fits comfortably in one fewer
    // instance — but never while the SLO is actually suffering.
    if (n > 1 && slo.attainment >= config_.sloTarget &&
        demand < config_.downFraction * per_instance *
                     static_cast<double>(n - 1)) {
        return -1;
    }
    return 0;
}

std::unique_ptr<ScalePolicy>
makeScalePolicy(std::string_view name, double slo_target)
{
    if (name == "reactive") {
        ReactivePolicyConfig config;
        config.sloTarget = slo_target;
        config.downAttainment =
            std::max(config.downAttainment, slo_target);
        return std::make_unique<ReactiveThresholdPolicy>(config);
    }
    if (name == "predictive") {
        PredictivePolicyConfig config;
        config.sloTarget = slo_target;
        return std::make_unique<PredictiveFutureMemoryPolicy>(
            config);
    }
    return nullptr;
}

} // namespace autoscale
} // namespace lightllm
