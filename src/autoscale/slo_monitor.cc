#include "autoscale/slo_monitor.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "stats/percentile.hh"

namespace lightllm {
namespace autoscale {

SloMonitor::SloMonitor(metrics::SlaSpec sla, Tick window)
    : sla_(sla), window_(window)
{
    LIGHTLLM_ASSERT(window_ > 0, "monitor window must be positive");
    LIGHTLLM_ASSERT(sla_.ttftLimit > 0 && sla_.mtpotLimit > 0,
                    "monitor needs positive SLA limits");
}

void
SloMonitor::observe(const metrics::RequestRecord &record)
{
    LIGHTLLM_ASSERT(samples_.empty() ||
                        record.finish >= samples_.back().finish,
                    "completions must arrive in time order");
    Sample sample;
    sample.finish = record.finish;
    sample.ttft = record.ttft();
    sample.ttftOk = record.ttft() < sla_.ttftLimit;
    sample.mtpotOk = record.maxGap < sla_.mtpotLimit;
    sample.outputTokens = record.outputTokens;
    samples_.push_back(sample);

    ttftViolations_ += sample.ttftOk ? 0 : 1;
    mtpotViolations_ += sample.mtpotOk ? 0 : 1;
    if (sample.ttftOk && sample.mtpotOk) {
        ++compliant_;
        compliantTokens_ += sample.outputTokens;
    }
}

void
SloMonitor::evictBefore(Tick cutoff)
{
    while (!samples_.empty() && samples_.front().finish < cutoff) {
        const Sample &sample = samples_.front();
        ttftViolations_ -= sample.ttftOk ? 0 : 1;
        mtpotViolations_ -= sample.mtpotOk ? 0 : 1;
        if (sample.ttftOk && sample.mtpotOk) {
            --compliant_;
            compliantTokens_ -= sample.outputTokens;
        }
        samples_.pop_front();
    }
}

SloStats
SloMonitor::stats(Tick now)
{
    evictBefore(now - window_);

    SloStats out;
    out.samples = samples_.size();
    if (out.samples == 0)
        return out;

    const double n = static_cast<double>(out.samples);
    out.ttftViolationRate =
        static_cast<double>(ttftViolations_) / n;
    out.mtpotViolationRate =
        static_cast<double>(mtpotViolations_) / n;
    out.attainment = static_cast<double>(compliant_) / n;

    // The window may not be fully elapsed yet at the start of a run.
    const double window_seconds =
        ticksToSeconds(std::min<Tick>(window_, std::max<Tick>(
                                                   now, 1)));
    out.goodputTokensPerSec =
        static_cast<double>(compliantTokens_) / window_seconds;

    std::vector<double> ttfts;
    ttfts.reserve(samples_.size());
    for (const Sample &sample : samples_)
        ttfts.push_back(ticksToSeconds(sample.ttft));
    out.p99TtftSeconds = stats::percentile(std::move(ttfts), 0.99);
    return out;
}

} // namespace autoscale
} // namespace lightllm
