#include "autoscale/autoscaler.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"

namespace lightllm {
namespace autoscale {

const char *
shedPolicyName(ShedPolicy policy)
{
    switch (policy) {
      case ShedPolicy::Never:
        return "never";
      case ShedPolicy::Overload:
        return "overload";
    }
    return "unknown";
}

bool
parseShedPolicy(std::string_view name, ShedPolicy &out)
{
    for (const ShedPolicy policy :
         {ShedPolicy::Never, ShedPolicy::Overload}) {
        if (name == shedPolicyName(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

AutoScaler::AutoScaler(const AutoscaleConfig &config,
                       std::unique_ptr<ScalePolicy> policy)
    : config_(config), policy_(std::move(policy)),
      monitor_(config.sla, config.monitorWindow),
      lastScaleDown_(std::numeric_limits<Tick>::min() / 2)
{
    LIGHTLLM_ASSERT(policy_ != nullptr, "autoscaler needs a policy");
    LIGHTLLM_ASSERT(config_.minInstances >= 1,
                    "min instances must be at least 1");
    LIGHTLLM_ASSERT(config_.minInstances <= config_.maxInstances,
                    "min instances exceeds max instances");
    LIGHTLLM_ASSERT(config_.controlInterval > 0,
                    "control interval must be positive");
    LIGHTLLM_ASSERT(config_.provisionDelay >= 0,
                    "provision delay cannot be negative");
    LIGHTLLM_ASSERT(config_.shedFactor > 0.0,
                    "shed factor must be positive");
}

void
AutoScaler::onRecord(const metrics::RequestRecord &record)
{
    monitor_.observe(record);
}

int
AutoScaler::evaluate(const FleetSnapshot &fleet)
{
    const SloStats slo = monitor_.stats(fleet.now);
    const int proposed = policy_->decide(fleet, slo);

    const std::size_t n = fleet.nonDrainingCount();
    const auto clamp = [&](long target) {
        return std::clamp<long>(
            target, static_cast<long>(config_.minInstances),
            static_cast<long>(config_.maxInstances));
    };
    int delta = static_cast<int>(
        clamp(static_cast<long>(n) + proposed) -
        static_cast<long>(n));

    if (delta < 0) {
        // One retirement per cooldown: a lull must not dismantle
        // the fleet faster than a spike can rebuild it.
        if (fleet.now - lastScaleDown_ < config_.downCooldown)
            return 0;
        lastScaleDown_ = fleet.now;
        return -1;
    }
    return delta;
}

bool
AutoScaler::shouldShed(const FleetSnapshot &fleet,
                       TokenCount footprint) const
{
    if (config_.shedPolicy != ShedPolicy::Overload)
        return false;
    // Shed only when no further capacity can possibly come: the
    // fleet is at max scale and nothing is still warming up.
    if (fleet.nonDrainingCount() < config_.maxInstances ||
        fleet.warmingCount() > 0) {
        return false;
    }
    const double bound = config_.shedFactor *
        static_cast<double>(fleet.readyCapacityTokens());
    return static_cast<double>(fleet.outstandingTokens() +
                               footprint) > bound;
}

} // namespace autoscale
} // namespace lightllm
