#include "autoscale/autoscaler.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"

namespace lightllm {
namespace autoscale {

const char *
shedPolicyName(ShedPolicy policy)
{
    switch (policy) {
      case ShedPolicy::Never:
        return "never";
      case ShedPolicy::Overload:
        return "overload";
    }
    return "unknown";
}

bool
parseShedPolicy(std::string_view name, ShedPolicy &out)
{
    for (const ShedPolicy policy :
         {ShedPolicy::Never, ShedPolicy::Overload}) {
        if (name == shedPolicyName(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

AutoScaler::AutoScaler(const AutoscaleConfig &config,
                       std::unique_ptr<ScalePolicy> policy)
    : config_(config), policy_(std::move(policy)),
      monitor_(config.sla, config.monitorWindow),
      lastScaleDown_(std::numeric_limits<Tick>::min() / 2)
{
    LIGHTLLM_ASSERT(policy_ != nullptr, "autoscaler needs a policy");
    LIGHTLLM_ASSERT(config_.minInstances >= 1,
                    "min instances must be at least 1");
    LIGHTLLM_ASSERT(config_.minInstances <= config_.maxInstances,
                    "min instances exceeds max instances");
    LIGHTLLM_ASSERT(config_.controlInterval > 0,
                    "control interval must be positive");
    LIGHTLLM_ASSERT(config_.provisionDelay >= 0,
                    "provision delay cannot be negative");
    LIGHTLLM_ASSERT(config_.shedFactor > 0.0,
                    "shed factor must be positive");
}

void
AutoScaler::onRecord(const metrics::RequestRecord &record)
{
    monitor_.observe(record);
}

int
AutoScaler::evaluate(const FleetSnapshot &fleet)
{
    const SloStats slo = monitor_.stats(fleet.now);
    const int proposed = policy_->decide(fleet, slo);

    const std::size_t n = fleet.nonDrainingCount();
    const auto clamp = [&](long target) {
        return std::clamp<long>(
            target, static_cast<long>(config_.minInstances),
            static_cast<long>(config_.maxInstances));
    };
    int delta = static_cast<int>(
        clamp(static_cast<long>(n) + proposed) -
        static_cast<long>(n));

    if (delta < 0) {
        // One retirement per cooldown: a lull must not dismantle
        // the fleet faster than a spike can rebuild it.
        if (fleet.now - lastScaleDown_ < config_.downCooldown)
            return 0;
        lastScaleDown_ = fleet.now;
        return -1;
    }
    return delta;
}

bool
AutoScaler::shouldShed(const FleetSnapshot &fleet,
                       TokenCount footprint) const
{
    return shouldShed(fleet, footprint, base::RequestClass{});
}

bool
AutoScaler::shouldShed(const FleetSnapshot &fleet,
                       TokenCount footprint,
                       const base::RequestClass &cls) const
{
    if (config_.shedPolicy != ShedPolicy::Overload)
        return false;
    // Shed only when no further capacity can possibly come: the
    // fleet is at max scale and nothing is still warming up.
    if (fleet.nonDrainingCount() < config_.maxInstances ||
        fleet.warmingCount() > 0) {
        return false;
    }
    const double bound = config_.shedFactor *
        static_cast<double>(fleet.readyCapacityTokens());
    if (static_cast<double>(fleet.outstandingTokens() + footprint) <=
        bound) {
        return false;
    }
    if (config_.tenantShares.empty())
        return true;  // tenant-blind legacy shedding

    // Fairness-aware: reject only arrivals of tenants at or over
    // their configured share of recent routed work, so the noisy
    // neighbour absorbs the rejections while in-share tenants keep
    // queueing. With no recorded usage yet there is no evidence of
    // overuse — queue the arrival.
    double total = 0.0;
    for (const auto &[tenant, usage] : tenantUsage_)
        total += decayedUsage(usage, fleet.now);
    if (total <= 0.0)
        return false;
    const auto it = tenantUsage_.find(cls.tenant);
    const double mine = it == tenantUsage_.end()
        ? 0.0
        : decayedUsage(it->second, fleet.now);
    return mine / total >= tenantShare(cls.tenant);
}

void
AutoScaler::noteRouted(const base::RequestClass &cls,
                       TokenCount footprint, Tick now)
{
    TenantUsage &usage = tenantUsage_[cls.tenant];
    usage.tokens = decayedUsage(usage, now) +
        static_cast<double>(footprint);
    usage.lastUpdate = now;
}

double
AutoScaler::tenantShare(base::TenantId tenant) const
{
    const auto &shares = config_.tenantShares;
    double total = 0.0;
    for (double share : shares)
        total += share;
    if (total <= 0.0)
        return 1.0;
    if (tenant >= shares.size()) {
        // Tenants beyond the vector get the mean share.
        return 1.0 / static_cast<double>(shares.size());
    }
    return shares[tenant] / total;
}

double
AutoScaler::decayedUsage(const TenantUsage &usage, Tick now) const
{
    if (now <= usage.lastUpdate)
        return usage.tokens;
    const double windows =
        static_cast<double>(now - usage.lastUpdate) /
        static_cast<double>(config_.monitorWindow);
    return usage.tokens * std::exp(-windows);
}

} // namespace autoscale
} // namespace lightllm
