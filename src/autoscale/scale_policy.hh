/**
 * @file
 * Fleet sizing policies for SLA-driven elastic autoscaling.
 *
 * A ScalePolicy looks at a snapshot of the fleet plus the windowed
 * SLO summary and proposes a change in fleet size. Two controllers
 * are provided:
 *
 *  - ReactiveThresholdPolicy: the classic feedback loop. Scale up
 *    when the observed attainment over the monitor window drops
 *    below the target; scale down when attainment is comfortably
 *    above it *and* the shrunk fleet would still be lightly loaded.
 *    The up/down thresholds are deliberately separated (hysteresis)
 *    so the controller cannot flap around the target.
 *
 *  - PredictiveFutureMemoryPolicy: the paper's future-memory
 *    estimation (Eqs. 2-4) applied fleet-wide. Every instance's
 *    scheduler already predicts the peak KV footprint its running
 *    batch will reach plus the predicted footprints of its queue
 *    (engine::predictedLoadTokens, built on core::LengthPredictor).
 *    Summing those forecasts gives the memory demand the fleet is
 *    *committed* to before any TTFT has degraded; the policy
 *    provisions as soon as forecast demand exceeds the headroom
 *    target of the capacity that is live or already warming. It
 *    therefore moves one cold-start earlier than the reactive
 *    controller — violations are pre-empted instead of repaired.
 *
 * Policies are pure deciders: cooldowns, min/max clamping, and the
 * actual provision/drain calls live in AutoScaler and the cluster.
 */

#ifndef LIGHTLLM_AUTOSCALE_SCALE_POLICY_HH
#define LIGHTLLM_AUTOSCALE_SCALE_POLICY_HH

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "autoscale/slo_monitor.hh"
#include "base/types.hh"

namespace lightllm {
namespace autoscale {

/** Router-visible state of one instance at a control tick. */
struct InstanceSnapshot
{
    /** Accepting traffic (not draining, warm-up complete). */
    bool routable = false;

    /** Provisioned but still cold-starting. */
    bool warming = false;

    /** Draining towards retirement. */
    bool draining = false;

    /** KV capacity in token slots. */
    TokenCount capacityTokens = 0;

    /** Physically allocated KV tokens. */
    TokenCount usedTokens = 0;

    /** Resident + queued footprint (current load). */
    TokenCount outstandingTokens = 0;

    /** Scheduler-forecast future load: predicted peak memory of the
     *  running batch plus predicted footprints of the queue. */
    TokenCount predictedLoadTokens = 0;

    std::size_t waiting = 0;
    std::size_t running = 0;
};

/** Fleet state handed to scale policies. */
struct FleetSnapshot
{
    Tick now = 0;
    std::vector<InstanceSnapshot> instances;

    /** Instances that are not draining (warming included: their
     *  capacity is already paid for and on the way). */
    std::size_t nonDrainingCount() const;

    /** Instances currently accepting traffic. */
    std::size_t routableCount() const;

    std::size_t warmingCount() const;

    /** Total capacity of non-draining instances. */
    TokenCount readyCapacityTokens() const;

    /** Sum of forecast loads over non-draining instances. */
    TokenCount predictedLoadTokens() const;

    /** Sum of current outstanding work over non-draining
     *  instances. */
    TokenCount outstandingTokens() const;
};

/** Proposes fleet-size changes; stateless between control ticks
 *  except what an implementation chooses to remember. */
class ScalePolicy
{
  public:
    virtual ~ScalePolicy() = default;

    virtual std::string_view name() const = 0;

    /**
     * Desired change in non-draining fleet size: positive to
     * provision, negative to retire, 0 to hold. The caller clamps
     * to [min, max] and applies cooldowns.
     */
    virtual int decide(const FleetSnapshot &fleet,
                       const SloStats &slo) = 0;
};

/** Tunables of the reactive threshold controller. */
struct ReactivePolicyConfig
{
    /** Attainment target; below it the fleet grows. */
    double sloTarget = 0.9;

    /** Hysteresis: shrink only when attainment is at least this. */
    double downAttainment = 0.98;

    /** ...and the fleet minus one instance would sit below this
     *  outstanding/capacity utilisation. */
    double downUtilisation = 0.5;

    /** Violation evidence needed before reacting. */
    std::size_t minSamples = 8;
};

/** Threshold + hysteresis feedback controller. */
class ReactiveThresholdPolicy : public ScalePolicy
{
  public:
    explicit ReactiveThresholdPolicy(ReactivePolicyConfig config);

    std::string_view name() const override { return "reactive"; }

    int decide(const FleetSnapshot &fleet,
               const SloStats &slo) override;

    const ReactivePolicyConfig &config() const { return config_; }

  private:
    ReactivePolicyConfig config_;
};

/** Tunables of the predictive future-memory controller. */
struct PredictivePolicyConfig
{
    /** Fill target: provision so forecast demand stays below this
     *  fraction of ready capacity. */
    double headroom = 0.85;

    /** Shrink when forecast demand fits in this fraction of the
     *  headroom-adjusted capacity of one fewer instance. */
    double downFraction = 0.6;

    /** Never shrink while windowed attainment is below target. */
    double sloTarget = 0.9;
};

/** Fleet-wide future-memory (Eqs. 2-4) feed-forward controller. */
class PredictiveFutureMemoryPolicy : public ScalePolicy
{
  public:
    explicit PredictiveFutureMemoryPolicy(
        PredictivePolicyConfig config);

    std::string_view name() const override { return "predictive"; }

    int decide(const FleetSnapshot &fleet,
               const SloStats &slo) override;

    const PredictivePolicyConfig &config() const { return config_; }

  private:
    PredictivePolicyConfig config_;
};

/**
 * Build a policy by CLI name ("reactive" | "predictive") with its
 * defaults, overriding each config's sloTarget with `slo_target`.
 *
 * @return nullptr for an unknown name.
 */
std::unique_ptr<ScalePolicy>
makeScalePolicy(std::string_view name, double slo_target);

} // namespace autoscale
} // namespace lightllm

#endif // LIGHTLLM_AUTOSCALE_SCALE_POLICY_HH
