/**
 * @file
 * Sliding-window SLO attainment tracking over the simulation clock.
 *
 * The autoscaling control loop needs to know, continuously, how the
 * service is doing against its SLA *right now* — not over the whole
 * run. The monitor keeps every request completion of the trailing
 * `window` ticks (the same recent-history philosophy as the
 * scheduler's past window, see stats/window_analysis: recent
 * behaviour predicts the immediate future far better than the global
 * aggregate) and reduces it on demand to violation rates, attainment
 * and goodput. Scale policies read these numbers each control tick.
 */

#ifndef LIGHTLLM_AUTOSCALE_SLO_MONITOR_HH
#define LIGHTLLM_AUTOSCALE_SLO_MONITOR_HH

#include <deque>

#include "base/types.hh"
#include "metrics/sla.hh"

namespace lightllm {
namespace autoscale {

/** Windowed SLO summary handed to scale policies. */
struct SloStats
{
    /** Completions inside the window. */
    std::size_t samples = 0;

    /** Fraction of windowed requests violating the TTFT limit. */
    double ttftViolationRate = 0.0;

    /** Fraction violating the MTPOT limit. */
    double mtpotViolationRate = 0.0;

    /**
     * Fraction meeting both limits. Defaults to 1.0 with no
     * samples: an idle service has no evidence of trouble, and
     * scale-up must come from load forecasts, not phantom
     * violations.
     */
    double attainment = 1.0;

    /** Output tokens of compliant windowed requests per windowed
     *  second (the paper's goodput, restricted to the window). */
    double goodputTokensPerSec = 0.0;

    /** p99 TTFT over the windowed completions, seconds. */
    double p99TtftSeconds = 0.0;
};

/** Sliding-window TTFT/MTPOT violation tracker. */
class SloMonitor
{
  public:
    /**
     * @param sla Limits to judge completions against.
     * @param window Trailing window length in ticks (> 0).
     */
    SloMonitor(metrics::SlaSpec sla, Tick window);

    /** Record a completion (record.finish is its timestamp). */
    void observe(const metrics::RequestRecord &record);

    /**
     * Reduce the window ending at `now` to its summary. Evicts
     * samples older than `now - window` first.
     */
    SloStats stats(Tick now);

    const metrics::SlaSpec &sla() const { return sla_; }
    Tick window() const { return window_; }

  private:
    struct Sample
    {
        Tick finish;
        Tick ttft;
        bool ttftOk;
        bool mtpotOk;
        TokenCount outputTokens;
    };

    /** Drop samples that fell out of the window ending at `now`. */
    void evictBefore(Tick cutoff);

    metrics::SlaSpec sla_;
    Tick window_;
    std::deque<Sample> samples_;

    // Running sums over the deque so stats() is O(evicted + p99).
    std::size_t ttftViolations_ = 0;
    std::size_t mtpotViolations_ = 0;
    std::size_t compliant_ = 0;
    TokenCount compliantTokens_ = 0;
};

} // namespace autoscale
} // namespace lightllm

#endif // LIGHTLLM_AUTOSCALE_SLO_MONITOR_HH
