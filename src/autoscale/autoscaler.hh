/**
 * @file
 * The SLA → capacity control loop.
 *
 * AutoScaler closes the loop the paper leaves open: observed (and
 * forecast) service quality feeds back into fleet size. It is a
 * passive decision engine — the cluster schedules the control ticks
 * on its SimContext, builds FleetSnapshots, executes provisions and
 * drains — while the scaler owns everything control-theoretic:
 *
 *  - the SloMonitor fed by per-request completion records;
 *  - the pluggable ScalePolicy proposing size changes;
 *  - min/max clamping and up/down cooldowns (scale-up is allowed
 *    every control tick because a spike waits for no one; scale-down
 *    is rate-limited to one instance per cooldown so a brief lull
 *    cannot dismantle the fleet);
 *  - the shed-or-queue admission decision at max scale: when no
 *    further capacity can come, unbounded queueing would blow every
 *    deadline in the backlog, so overflow arrivals are rejected
 *    instead and counted.
 */

#ifndef LIGHTLLM_AUTOSCALE_AUTOSCALER_HH
#define LIGHTLLM_AUTOSCALE_AUTOSCALER_HH

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "autoscale/scale_policy.hh"
#include "autoscale/slo_monitor.hh"
#include "base/request_class.hh"
#include "base/types.hh"
#include "metrics/sla.hh"

namespace lightllm {
namespace autoscale {

/** What happens to arrivals the fleet cannot absorb at max scale. */
enum class ShedPolicy
{
    /** Queue everything (legacy behaviour; queues may grow without
     *  bound under sustained overload). */
    Never,

    /**
     * At max scale with nothing warming, reject a new request when
     * the fleet's outstanding work (plus this request) exceeds
     * `shedFactor` x ready capacity. Bounded queues, explicit
     * rejections, surviving requests keep their deadlines. A shed
     * request gets no completion callback — the model is an
     * open-loop client receiving a rejection, so drivers that wait
     * on completions (closed-loop pools, sessions) must not be
     * combined with shedding.
     */
    Overload,
};

/** Human-readable shed policy label. */
const char *shedPolicyName(ShedPolicy policy);

/** Inverse of shedPolicyName; false when `name` is unknown. */
bool parseShedPolicy(std::string_view name, ShedPolicy &out);

/** Control-loop configuration. */
struct AutoscaleConfig
{
    /** Fleet size bounds (min >= 1, min <= max). */
    std::size_t minInstances = 1;
    std::size_t maxInstances = 8;

    /** Cold-start delay: a provisioned instance joins the router
     *  this long after the scale-up decision. */
    Tick provisionDelay = secondsToTicks(10.0);

    /** Control tick period. */
    Tick controlInterval = secondsToTicks(2.0);

    /** Minimum spacing between scale-downs (scale-up is not rate
     *  limited beyond the control interval). */
    Tick downCooldown = secondsToTicks(30.0);

    /** SLO monitor window. */
    Tick monitorWindow = secondsToTicks(60.0);

    /** Attainment target driving both policies. */
    double sloTarget = 0.9;

    /** SLA the monitor judges completions against. */
    metrics::SlaSpec sla;

    ShedPolicy shedPolicy = ShedPolicy::Never;

    /** Outstanding-to-capacity bound of ShedPolicy::Overload. */
    double shedFactor = 1.5;

    /**
     * Work stealing at provision-complete: a freshly warmed
     * instance pulls up to this many queued (never-admitted)
     * requests from the most-backlogged peer and re-routes them,
     * so new capacity helps the existing backlog instead of only
     * future arrivals. 0 = off (legacy).
     */
    std::size_t stealOnWarm = 0;

    /**
     * Per-tenant traffic shares (index = tenant id) making
     * Overload shedding fairness-aware: under overload only
     * arrivals from tenants at or over their share of recent
     * routed work are rejected, so a noisy neighbour sheds first
     * while in-share tenants keep queueing. Empty = tenant-blind
     * legacy shedding. Tenants beyond the vector get the mean
     * share.
     */
    std::vector<double> tenantShares;
};

/** Decision engine of the autoscaling control loop. */
class AutoScaler
{
  public:
    AutoScaler(const AutoscaleConfig &config,
               std::unique_ptr<ScalePolicy> policy);

    /** Feed one completion into the SLO monitor. */
    void onRecord(const metrics::RequestRecord &record);

    /**
     * One control tick: ask the policy, clamp to [min, max], apply
     * cooldowns.
     *
     * @return Instances to provision (> 0), one instance to retire
     *         (-1), or hold (0).
     */
    int evaluate(const FleetSnapshot &fleet);

    /**
     * Shed-or-queue decision for a new arrival whose predicted
     * resident footprint is `footprint` tokens. Tenant-blind:
     * equivalent to the class-aware overload with a
     * default-constructed RequestClass.
     */
    bool shouldShed(const FleetSnapshot &fleet,
                    TokenCount footprint) const;

    /**
     * Class-aware shed-or-queue decision. Under overload with
     * configured tenantShares, only the tenants at or over their
     * share of recent routed work are shed (most over share
     * first); without shares every arrival sheds, the legacy
     * behaviour.
     */
    bool shouldShed(const FleetSnapshot &fleet, TokenCount footprint,
                    const base::RequestClass &cls) const;

    /**
     * Account `footprint` tokens of routed (non-shed) work for
     * `cls`'s tenant — the recent-usage signal behind
     * fairness-aware shedding. Usage decays exponentially with
     * the monitor window as time constant.
     */
    void noteRouted(const base::RequestClass &cls,
                    TokenCount footprint, Tick now);

    /** Windowed SLO summary ending at `now`. */
    SloStats sloStats(Tick now) { return monitor_.stats(now); }

    const AutoscaleConfig &config() const { return config_; }
    const ScalePolicy &policy() const { return *policy_; }
    SloMonitor &monitor() { return monitor_; }

  private:
    /** Exponentially decayed token usage of one tenant. */
    struct TenantUsage
    {
        double tokens = 0.0;
        Tick lastUpdate = 0;
    };

    /** Share of `tenant` under the configured tenantShares. */
    double tenantShare(base::TenantId tenant) const;

    /** `usage` decayed from its last update to `now`. */
    double decayedUsage(const TenantUsage &usage, Tick now) const;

    AutoscaleConfig config_;
    std::unique_ptr<ScalePolicy> policy_;
    SloMonitor monitor_;
    Tick lastScaleDown_;
    std::unordered_map<base::TenantId, TenantUsage> tenantUsage_;
};

} // namespace autoscale
} // namespace lightllm

#endif // LIGHTLLM_AUTOSCALE_AUTOSCALER_HH
