/**
 * @file
 * Shared-prefix KV subsystem tests: block hash chains, refcounted
 * copy-on-write sharing, the radix prefix cache with LRU
 * reclamation, engine-level cache hits (including eviction of
 * requests whose blocks the cache retains), the multi-turn session
 * workload, and prefix-affinity routing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/token_stream.hh"
#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "memory/kv_block_manager.hh"
#include "memory/prefix_cache.hh"
#include "test_fixtures.hh"
#include "workload/session_gen.hh"

namespace lightllm {
namespace {

using core::SchedulerConfig;
using memory::BlockId;
using memory::KvBlockManager;
using memory::PrefixCache;
using testfx::tinyPerf;
using workload::RequestSpec;

// --- Token-stream hash chains ------------------------------------

TEST(BlockHashChainTest, EqualStreamsShareHashes)
{
    const std::vector<PromptSegment> a{{7, 40}, {9, 40}};
    const std::vector<PromptSegment> b{{7, 40}, {9, 8}};
    const auto ha = blockHashChain(a, 16, 80);
    const auto hb = blockHashChain(b, 16, 48);
    ASSERT_EQ(ha.size(), 5u);
    ASSERT_EQ(hb.size(), 3u);
    // b is a strict prefix of a: its full blocks hash identically.
    for (std::size_t i = 0; i < hb.size(); ++i)
        EXPECT_EQ(ha[i], hb[i]) << "block " << i;
}

TEST(BlockHashChainTest, DivergenceChangesEveryLaterHash)
{
    const std::vector<PromptSegment> a{{7, 32}, {9, 32}};
    const std::vector<PromptSegment> b{{7, 32}, {8, 32}};
    const auto ha = blockHashChain(a, 16, 64);
    const auto hb = blockHashChain(b, 16, 64);
    ASSERT_EQ(ha.size(), 4u);
    ASSERT_EQ(hb.size(), 4u);
    EXPECT_EQ(ha[0], hb[0]);
    EXPECT_EQ(ha[1], hb[1]);
    EXPECT_NE(ha[2], hb[2]);  // chained: divergence sticks
    EXPECT_NE(ha[3], hb[3]);
}

TEST(BlockHashChainTest, CapExcludesPartialBlocks)
{
    const std::vector<PromptSegment> a{{7, 100}};
    EXPECT_EQ(blockHashChain(a, 16, 100).size(), 6u);  // 96 tokens
    EXPECT_EQ(blockHashChain(a, 16, 95).size(), 5u);
    EXPECT_EQ(blockHashChain(a, 16, 15).size(), 0u);
    EXPECT_EQ(blockHashChain(a, 16, 0).size(), 0u);
}

// --- Copy-on-write sharing in the block manager ------------------

TEST(KvSharingTest, SharedBlocksCountPhysicallyOnce)
{
    KvBlockManager kv(1024, 16);
    ASSERT_TRUE(kv.allocate(1, 64));  // 4 full blocks
    const std::vector<BlockId> prefix(kv.blockTable(1).begin(),
                                      kv.blockTable(1).begin() + 3);
    ASSERT_TRUE(kv.allocateShared(2, 64, prefix));
    EXPECT_EQ(kv.requestTokens(2), 64);
    EXPECT_EQ(kv.requestSharedTokens(2), 48);
    // 64 + only the 16 private tokens of request 2.
    EXPECT_EQ(kv.usedTokens(), 80);
    EXPECT_EQ(kv.requestRefs(prefix[0]), 2);
    // Request 2's table is [shared..., private].
    EXPECT_EQ(kv.blockTable(2).size(), 4u);
    EXPECT_EQ(kv.blockTable(2)[0], prefix[0]);

    kv.release(2);
    EXPECT_EQ(kv.requestRefs(prefix[0]), 1);
    EXPECT_EQ(kv.usedTokens(), 64);
    kv.release(1);
    EXPECT_EQ(kv.usedTokens(), 0);
    EXPECT_EQ(kv.freeBlocks(), 64);
}

TEST(KvSharingTest, FullySharedAllocationRejected)
{
    KvBlockManager kv(1024, 16);
    ASSERT_TRUE(kv.allocate(1, 32));
    const std::vector<BlockId> prefix = kv.blockTable(1);
    // 32 tokens over 2 shared blocks leaves no private block.
    EXPECT_FALSE(kv.allocateShared(2, 32, prefix));
    EXPECT_EQ(kv.numRequests(), 1u);
    EXPECT_EQ(kv.requestRefs(prefix[0]), 1);
}

TEST(PrefixCacheTest, ReleaseParksCachedBlocksUntilReclaim)
{
    KvBlockManager kv(128, 16);  // 8 blocks
    PrefixCache cache(kv);
    kv.attachPrefixCache(&cache);

    ASSERT_TRUE(kv.allocate(1, 64));  // 4 blocks
    const std::vector<PromptSegment> stream{{42, 64}};
    const auto hashes = blockHashChain(stream, 16, 64);
    cache.insert(hashes, kv.blockTable(1));
    EXPECT_EQ(cache.size(), 4u);

    kv.release(1);
    // Cached blocks are parked, not freed: reclaimable on demand.
    EXPECT_EQ(kv.freeBlocks(), 4);
    EXPECT_EQ(kv.reclaimableBlocks(), 4);
    EXPECT_EQ(kv.usedTokens(), 0);

    // A later identical stream still matches...
    std::vector<BlockId> matched;
    EXPECT_EQ(cache.match(hashes, matched), 4u);

    // ...and a big allocation reclaims the parked blocks: 8 blocks
    // are available even though only 4 are on the free list.
    EXPECT_TRUE(kv.canAllocate(128));
    ASSERT_TRUE(kv.allocate(2, 128));
    EXPECT_EQ(cache.size(), 0u);  // all reclaimed
    kv.release(2);
    EXPECT_EQ(kv.freeBlocks(), 8);
}

TEST(PrefixCacheTest, ReclaimSkipsRequestReferencedBlocks)
{
    KvBlockManager kv(128, 16);  // 8 blocks
    PrefixCache cache(kv);
    kv.attachPrefixCache(&cache);

    ASSERT_TRUE(kv.allocate(1, 64));  // 4 blocks
    const std::vector<PromptSegment> stream{{42, 64}};
    const auto hashes = blockHashChain(stream, 16, 64);
    cache.insert(hashes, kv.blockTable(1));

    // Request 1 still references its blocks: nothing reclaimable.
    EXPECT_EQ(kv.reclaimableBlocks(), 0);
    EXPECT_EQ(cache.reclaim(4), 0);
    EXPECT_EQ(cache.size(), 4u);

    // 4 free blocks remain; a 5-block allocation must fail while
    // the cached blocks are pinned by request 1.
    EXPECT_FALSE(kv.canAllocate(80));
    EXPECT_FALSE(kv.allocate(2, 80));

    kv.release(1);
    EXPECT_TRUE(kv.allocate(2, 80));  // now reclaims one block
    EXPECT_EQ(cache.size(), 3u);
}

TEST(PrefixCacheTest, LruOrderGovernsReclamation)
{
    KvBlockManager kv(128, 16);
    PrefixCache cache(kv);
    kv.attachPrefixCache(&cache);

    ASSERT_TRUE(kv.allocate(1, 32));  // blocks A
    ASSERT_TRUE(kv.allocate(2, 32));  // blocks B
    const auto hashes_a =
        blockHashChain(std::vector<PromptSegment>{{1, 32}}, 16, 32);
    const auto hashes_b =
        blockHashChain(std::vector<PromptSegment>{{2, 32}}, 16, 32);
    cache.insert(hashes_a, kv.blockTable(1));
    cache.insert(hashes_b, kv.blockTable(2));
    kv.release(1);
    kv.release(2);

    // Touch A: B becomes the LRU stream.
    std::vector<BlockId> matched;
    cache.match(hashes_a, matched);
    EXPECT_EQ(cache.reclaim(2), 2);
    matched.clear();
    EXPECT_EQ(cache.match(hashes_a, matched), 2u);  // A survives
    EXPECT_EQ(cache.peek(hashes_b), 0u);            // B is gone
}

TEST(PrefixCacheTest, FirstInsertionWinsOnDuplicateContent)
{
    KvBlockManager kv(128, 16);
    PrefixCache cache(kv);
    kv.attachPrefixCache(&cache);

    ASSERT_TRUE(kv.allocate(1, 32));
    ASSERT_TRUE(kv.allocate(2, 32));  // same content, other blocks
    const auto hashes =
        blockHashChain(std::vector<PromptSegment>{{5, 32}}, 16, 32);
    cache.insert(hashes, kv.blockTable(1));
    cache.insert(hashes, kv.blockTable(2));
    EXPECT_EQ(cache.size(), 2u);

    std::vector<BlockId> matched;
    ASSERT_EQ(cache.match(hashes, matched), 2u);
    EXPECT_EQ(matched[0], kv.blockTable(1)[0]);
    // Request 2's identical blocks were not retained.
    EXPECT_FALSE(kv.isCached(kv.blockTable(2)[0]));
}

// --- Engine integration ------------------------------------------

/** A request whose prompt content is one identified segment. */
RequestSpec
taggedRequest(RequestId id, std::uint64_t key, TokenCount input,
              TokenCount output, TokenCount max_new = 4096)
{
    RequestSpec spec =
        testfx::makeRequest(id, input, output, max_new);
    spec.segments = {PromptSegment{key, input}};
    return spec;
}

TEST(EnginePrefixTest, LaterSamePrefixAdmissionHitsCache)
{
    engine::EngineConfig config;
    config.prefixCache = true;
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()), config);

    engine.submitAt(taggedRequest(1, 77, 64, 8), 0);
    engine.submitAt(taggedRequest(2, 77, 64, 8),
                    secondsToTicks(2.0));
    const auto report = engine.run();

    EXPECT_EQ(report.numFinished, 2u);
    EXPECT_EQ(report.prefixLookups, 2);
    // Request 2 reuses request 1's prompt blocks: 3 of its 4 full
    // blocks (the last prompt token is always re-prefilled).
    EXPECT_EQ(report.prefixHitTokens, 48);
    EXPECT_EQ(report.prefixPromptTokens, 128);
    // Only the uncached suffix was prefilled.
    EXPECT_EQ(report.totalPrefillTokens, 64 + 16);
    EXPECT_EQ(engine.kvManager().usedTokens(), 0);
}

TEST(EnginePrefixTest, DifferentContentNeverMatches)
{
    engine::EngineConfig config;
    config.prefixCache = true;
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()), config);

    engine.submitAt(taggedRequest(1, 77, 64, 8), 0);
    engine.submitAt(taggedRequest(2, 78, 64, 8),
                    secondsToTicks(2.0));
    const auto report = engine.run();
    EXPECT_EQ(report.prefixHitTokens, 0);
    EXPECT_EQ(report.totalPrefillTokens, 128);
}

TEST(EnginePrefixTest, EvictedSharerDecrefsAndRematchesOnReadmit)
{
    // Tiny pool: request 1 and the same-content request 2 cannot
    // both finish resident, so request 2 is evicted while its
    // shared prefix blocks are cache-retained (and referenced by
    // request 1). Eviction must only drop references — request 1
    // keeps decoding over those blocks — and request 2's recompute
    // admission must hit the cache again.
    engine::EngineConfig config;
    config.prefixCache = true;
    engine::ServingEngine engine(
        tinyPerf(1.0),  // 672-token pool
        core::makeScheduler(SchedulerConfig::aggressive(1.0)),
        config);

    engine.submitAt(taggedRequest(1, 77, 64, 500, 500), 0);
    engine.submitAt(taggedRequest(2, 77, 64, 500, 500),
                    secondsToTicks(0.5));
    const auto report = engine.run();

    EXPECT_EQ(report.numFinished, 2u);
    EXPECT_GE(report.evictionEvents, 1);
    // Eviction did not corrupt shared state: both requests
    // completed their full generations and all memory returned.
    EXPECT_EQ(report.totalOutputTokens, 1000);
    EXPECT_EQ(engine.kvManager().usedTokens(), 0);
    // First admission of request 2 hit 3 blocks (48 tokens); every
    // post-eviction recompute admission re-matched at least the
    // full 4-block prompt (64 tokens).
    EXPECT_GE(report.prefixLookups, 3);
    EXPECT_GE(report.prefixHitTokens, 48 + 64);

    // The cache survives the run with its entries intact.
    ASSERT_NE(engine.prefixCache(), nullptr);
    EXPECT_GT(engine.prefixCache()->size(), 0u);
}

TEST(EnginePrefixTest, SplitFusePrefillsOnlyUncachedSuffix)
{
    engine::EngineConfig config;
    config.prefixCache = true;
    config.splitFuse = true;
    config.splitFuseChunk = 32;
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()), config);

    engine.submitAt(taggedRequest(1, 77, 128, 8), 0);
    engine.submitAt(taggedRequest(2, 77, 128, 8),
                    secondsToTicks(2.0));
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 2u);
    // Request 2 re-prefills only its uncached suffix: 128 + 16.
    EXPECT_EQ(report.prefixHitTokens, 112);
    EXPECT_EQ(report.totalPrefillTokens, 144);
}

// --- Session workload --------------------------------------------

TEST(SessionGeneratorTest, TurnsExtendTheSameStream)
{
    workload::SessionWorkloadConfig config;
    config.numSessions = 2;
    config.turnsPerSession = 3;
    config.systemPromptTokens = 100;
    config.seed = 7;

    struct NullSink : workload::RequestSink
    {
        void submitAt(const RequestSpec &, Tick) override {}
    } sink;
    workload::SessionGenerator sessions(config, sink);

    const RequestSpec &t0 = sessions.turnSpec(0, 0);
    const RequestSpec &t1 = sessions.turnSpec(0, 1);
    const RequestSpec &other = sessions.turnSpec(1, 0);

    // Turn 0: system prompt + user message.
    ASSERT_EQ(t0.segments.size(), 2u);
    EXPECT_EQ(t0.segments[0].len, 100);
    EXPECT_EQ(t0.inputLen,
              t0.segments[0].len + t0.segments[1].len);

    // Turn 1 starts with turn 0's prompt stream, then the reply,
    // then the new user message.
    ASSERT_EQ(t1.segments.size(), 4u);
    EXPECT_EQ(t1.segments[0].key, t0.segments[0].key);
    EXPECT_EQ(t1.segments[1].key, t0.segments[1].key);
    EXPECT_EQ(t1.segments[2].key, t0.outputKey);
    EXPECT_EQ(t1.segments[2].len, t0.effectiveOutputLen());
    EXPECT_EQ(t1.inputLen,
              t0.inputLen + t0.effectiveOutputLen() +
                  t1.segments[3].len);

    // Sessions share the system prompt but nothing else.
    EXPECT_EQ(other.segments[0].key, t0.segments[0].key);
    EXPECT_NE(other.segments[1].key, t0.segments[1].key);
    EXPECT_NE(other.sessionKey, t0.sessionKey);
    EXPECT_EQ(sessions.totalRequests(), 6u);
}

TEST(SessionGeneratorTest, PrefixCacheImprovesSessionTtft)
{
    // The PR's acceptance scenario: identical multi-turn workload,
    // cache off vs on — mean TTFT must drop and the hit rate must
    // be substantial (later turns re-prefill only their newest
    // user message).
    auto run = [](bool cache_on) {
        workload::SessionWorkloadConfig config;
        config.numSessions = 6;
        config.turnsPerSession = 4;
        config.systemPromptTokens = 256;
        config.seed = 21;

        engine::EngineConfig engine_config;
        engine_config.prefixCache = cache_on;
        engine::ServingEngine engine(
            tinyPerf(64.0),
            core::makeScheduler(
                SchedulerConfig::pastFutureDefault(0.03)),
            engine_config);
        workload::SessionGenerator sessions(config, engine);
        engine.setOnFinish(
            [&](const RequestSpec &spec, Tick tick) {
                sessions.onRequestFinished(spec.id, tick);
            });
        sessions.start();
        return engine.run();
    };

    const auto off = run(false);
    const auto on = run(true);
    ASSERT_EQ(off.numFinished, 24u);
    ASSERT_EQ(on.numFinished, 24u);
    EXPECT_EQ(off.prefixHitTokens, 0);
    EXPECT_GT(on.prefixHitRate(), 0.5);
    EXPECT_LT(on.meanTtftSeconds(), off.meanTtftSeconds());
    EXPECT_LT(on.totalPrefillTokens, off.totalPrefillTokens);
    // Same generations either way: sharing changes memory and
    // prefill work, never the decoded tokens.
    EXPECT_EQ(on.totalOutputTokens, off.totalOutputTokens);
}

// --- Prefix-affinity routing -------------------------------------

TEST(PrefixAffinityTest, ParseRoundTrip)
{
    cluster::RoutingPolicy policy;
    ASSERT_TRUE(cluster::parseRoutingPolicy("prefix-affinity",
                                            policy));
    EXPECT_EQ(policy, cluster::RoutingPolicy::PrefixAffinity);
    EXPECT_STREQ(cluster::routingPolicyName(policy),
                 "prefix-affinity");
}

TEST(PrefixAffinityTest, SessionsStickToTheirHomeInstance)
{
    workload::SessionWorkloadConfig config;
    config.numSessions = 9;
    config.turnsPerSession = 3;
    config.systemPromptTokens = 128;
    config.seed = 5;

    engine::EngineConfig engine_config;
    engine_config.prefixCache = true;

    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    for (int i = 0; i < 3; ++i) {
        engines.push_back(std::make_unique<engine::ServingEngine>(
            tinyPerf(64.0),
            core::makeScheduler(
                SchedulerConfig::pastFutureDefault(0.03)),
            engine_config));
    }
    cluster::ServingCluster fleet(
        std::move(engines), cluster::RoutingPolicy::PrefixAffinity);
    fleet.recordSubmissions(true);

    workload::SessionGenerator sessions(config, fleet);
    fleet.setOnFinish([&](const RequestSpec &spec, Tick tick) {
        sessions.onRequestFinished(spec.id, tick);
    });
    sessions.start();
    const auto report = fleet.run();
    EXPECT_EQ(report.numFinished, 27u);

    // Every turn of a session lands on the session's home.
    std::unordered_map<std::uint64_t, std::size_t> home;
    for (const auto &routed : fleet.submissionLog()) {
        ASSERT_NE(routed.spec.sessionKey, 0u);
        const auto [it, inserted] = home.emplace(
            routed.spec.sessionKey, routed.instance);
        EXPECT_EQ(it->second, routed.instance)
            << "session bounced between instances";
    }
    EXPECT_EQ(home.size(), 9u);

    // Stickiness is what makes the caches hot: later turns hit.
    EXPECT_GT(report.prefixHitRate(), 0.5);
}

} // namespace
} // namespace lightllm
