/**
 * @file
 * Tests for workload synthesis: samplers, datasets, traces, clients.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "base/rng.hh"
#include "stats/window_analysis.hh"
#include "workload/arrivals.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"
#include "workload/length_sampler.hh"
#include "workload/rate_schedule.hh"
#include "workload/session_gen.hh"
#include "workload/trace_gen.hh"
#include "workload/trace_io.hh"

namespace lightllm {
namespace workload {
namespace {

TEST(LengthSamplerTest, ConstantAlwaysSame)
{
    Rng rng(1);
    const ConstantLengthSampler sampler(42);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(sampler.sample(rng), 42);
}

TEST(LengthSamplerTest, UniformStaysInRange)
{
    Rng rng(2);
    const UniformLengthSampler sampler(100, 200);
    for (int i = 0; i < 5000; ++i) {
        const auto value = sampler.sample(rng);
        EXPECT_GE(value, 100);
        EXPECT_LE(value, 200);
    }
}

TEST(LengthSamplerTest, LogNormalClampedToBounds)
{
    Rng rng(3);
    const LogNormalLengthSampler sampler(std::log(100.0), 2.0, 50,
                                         400);
    bool hit_lo = false;
    bool hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto value = sampler.sample(rng);
        EXPECT_GE(value, 50);
        EXPECT_LE(value, 400);
        hit_lo |= value == 50;
        hit_hi |= value == 400;
    }
    // With sigma 2.0 both clamp bounds must be exercised.
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(LengthSamplerTest, MixtureRespectsWeights)
{
    Rng rng(4);
    MixtureLengthSampler sampler({
        {0.9, std::make_shared<ConstantLengthSampler>(1)},
        {0.1, std::make_shared<ConstantLengthSampler>(1000)},
    });
    int big = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (sampler.sample(rng) == 1000)
            ++big;
    }
    EXPECT_NEAR(static_cast<double>(big) / n, 0.1, 0.01);
}

TEST(LengthSamplerTest, EmpiricalOnlyEmitsRecordedValues)
{
    Rng rng(5);
    const EmpiricalLengthSampler sampler({7, 11, 13});
    for (int i = 0; i < 100; ++i) {
        const auto value = sampler.sample(rng);
        EXPECT_TRUE(value == 7 || value == 11 || value == 13);
    }
}

TEST(DatasetTest, Distribution1MatchesPaperRanges)
{
    const auto dataset = makeDistribution1(2000, 1);
    EXPECT_EQ(dataset.requests.size(), 2000u);
    EXPECT_EQ(dataset.maxNewTokens, 4096);
    for (const auto &request : dataset.requests) {
        EXPECT_GE(request.inputLen, 32);
        EXPECT_LE(request.inputLen, 4096);
        EXPECT_GE(request.outputLen, 2048);
        EXPECT_LE(request.outputLen, 4096);
    }
    // Decode-heavy: mean output exceeds mean input.
    EXPECT_GT(dataset.meanOutputLen(), dataset.meanInputLen());
}

TEST(DatasetTest, Distribution3IsPrefillHeavy)
{
    const auto dataset = makeDistribution3(2000, 2);
    EXPECT_GT(dataset.meanInputLen(), dataset.meanOutputLen());
    for (const auto &request : dataset.requests) {
        EXPECT_GE(request.inputLen, 2048);
        EXPECT_LE(request.outputLen, 4096);
    }
}

TEST(DatasetTest, Distribution2IsBalanced)
{
    const auto dataset = makeDistribution2(2000, 3);
    EXPECT_NEAR(dataset.meanInputLen(), dataset.meanOutputLen(),
                120.0);
}

TEST(DatasetTest, ShareGptO1MatchesPaperAverages)
{
    // The paper's Figure 7 caption: avg input 381, avg output 2160.
    const auto dataset = makeShareGptO1(5000, 4);
    EXPECT_NEAR(dataset.meanInputLen(), 381.0, 60.0);
    EXPECT_NEAR(dataset.meanOutputLen(), 2160.0, 250.0);
}

TEST(DatasetTest, ShareGptUsesMaxNewTokens2048)
{
    const auto dataset = makeShareGpt(1000, 5);
    EXPECT_EQ(dataset.maxNewTokens, 2048);
    for (const auto &request : dataset.requests)
        EXPECT_LE(request.effectiveOutputLen(), 2048);
}

TEST(DatasetTest, IdsAreSequential)
{
    const auto dataset = makeDistribution1(100, 6);
    for (std::size_t i = 0; i < dataset.requests.size(); ++i)
        EXPECT_EQ(dataset.requests[i].id,
                  static_cast<RequestId>(i));
}

TEST(DatasetTest, SameSeedReproduces)
{
    const auto a = makeShareGptO1(200, 7);
    const auto b = makeShareGptO1(200, 7);
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].inputLen, b.requests[i].inputLen);
        EXPECT_EQ(a.requests[i].outputLen, b.requests[i].outputLen);
    }
}

TEST(DatasetTest, TextVqaIncludesImageTokens)
{
    const auto dataset = makeTextVqaLike(500, 576, 8);
    for (const auto &request : dataset.requests) {
        EXPECT_GE(request.inputLen, 576 + 16);
        EXPECT_LE(request.outputLen, 256);
    }
}

TEST(DatasetTest, ConcatRenumbersIds)
{
    const auto a = makeDistribution1(50, 9);
    const auto b = makeDistribution3(50, 10);
    const auto joined = concatDatasets("mix", {a, b});
    EXPECT_EQ(joined.requests.size(), 100u);
    EXPECT_EQ(joined.maxNewTokens, 4096);
    for (std::size_t i = 0; i < joined.requests.size(); ++i)
        EXPECT_EQ(joined.requests[i].id,
                  static_cast<RequestId>(i));
}

TEST(DatasetTest, EffectiveOutputCapsAtMaxNewTokens)
{
    RequestSpec spec;
    spec.outputLen = 5000;
    spec.maxNewTokens = 2048;
    EXPECT_EQ(spec.effectiveOutputLen(), 2048);
    spec.outputLen = 100;
    EXPECT_EQ(spec.effectiveOutputLen(), 100);
}

TEST(TraceGenTest, Figure3SetHasSixNamedTraces)
{
    const auto traces = makeFigure3Traces(3000, 11);
    ASSERT_EQ(traces.size(), 6u);
    for (const auto &trace : traces) {
        EXPECT_EQ(trace.records.size(), 3000u);
        EXPECT_FALSE(trace.name.empty());
    }
}

TEST(TraceGenTest, ConversationTraceIsStationary)
{
    const auto trace = makeConversationTrace(12000, 12);
    const auto matrix = stats::windowSimilarityMatrix(
        trace.outputLens(), 1000);
    EXPECT_GT(matrix.globalMean(), 0.85);
}

TEST(TraceGenTest, ApiTraceAdjacentBeatsGlobal)
{
    // The regime-switching mixture must show the paper's diagonal
    // pattern: adjacent windows similar, distant windows diverging.
    const auto trace = makeApiTrace(24000, 13);
    const auto matrix = stats::windowSimilarityMatrix(
        trace.outputLens(), 1000);
    EXPECT_GT(matrix.adjacentMean(), matrix.globalMean() + 0.03);
    EXPECT_GT(matrix.adjacentMean(), 0.75);
}

TEST(TraceGenTest, CodeCompletionHasShortOutputsLongInputs)
{
    const auto trace = makeCodeCompletionTrace(2000, 14);
    double in_sum = 0.0;
    double out_sum = 0.0;
    for (const auto &record : trace.records) {
        in_sum += static_cast<double>(record.inputLen);
        out_sum += static_cast<double>(record.outputLen);
        EXPECT_LE(record.outputLen, 512);
    }
    EXPECT_GT(in_sum / 2000.0, 5.0 * out_sum / 2000.0);
}

TEST(TraceGenTest, LongDocTraceHasVeryLongInputs)
{
    const auto trace = makeLongDocTrace(1000, 15);
    double in_sum = 0.0;
    for (const auto &record : trace.records)
        in_sum += static_cast<double>(record.inputLen);
    EXPECT_GT(in_sum / 1000.0, 4000.0);
}

TEST(TraceGenTest, ApiTaskTypesAllAppear)
{
    const auto trace = makeApiTrace(8000, 16);
    bool seen[4] = {false, false, false, false};
    for (const auto &record : trace.records)
        seen[record.taskType] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(TraceIoTest, CsvRoundTrip)
{
    const auto trace = makeApiTrace(500, 17);
    std::stringstream buffer;
    writeTraceCsv(buffer, trace);
    const auto loaded = readTraceCsv(buffer, "roundtrip");
    ASSERT_EQ(loaded.records.size(), trace.records.size());
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        EXPECT_EQ(loaded.records[i].taskType,
                  trace.records[i].taskType);
        EXPECT_EQ(loaded.records[i].inputLen,
                  trace.records[i].inputLen);
        EXPECT_EQ(loaded.records[i].outputLen,
                  trace.records[i].outputLen);
    }
}

TEST(TraceIoTest, FileRoundTrip)
{
    const auto trace = makeConversationTrace(100, 18);
    const auto path = std::filesystem::temp_directory_path() /
        "lightllm_trace_test.csv";
    writeTraceCsvFile(path.string(), trace);
    const auto loaded = readTraceCsvFile(path.string());
    EXPECT_EQ(loaded.records.size(), 100u);
    std::filesystem::remove(path);
}

TEST(TraceIoTest, SkipsHeaderAndBlankLines)
{
    std::stringstream buffer(
        "task_type,input_len,output_len\n\n1,10,20\n\n2,30,40\n");
    const auto trace = readTraceCsv(buffer, "test");
    ASSERT_EQ(trace.records.size(), 2u);
    EXPECT_EQ(trace.records[1].outputLen, 40);
}

TEST(TraceIoDeathTest, MalformedLineIsFatal)
{
    std::stringstream buffer("1,2\n");
    EXPECT_EXIT(readTraceCsv(buffer, "bad"),
                ::testing::ExitedWithCode(1), "expected 3 fields");
}

TEST(TraceIoDeathTest, NonIntegerFieldIsFatal)
{
    std::stringstream buffer("a,b,c\n");
    EXPECT_EXIT(readTraceCsv(buffer, "bad"),
                ::testing::ExitedWithCode(1), "non-integer");
}

TEST(TraceIoTest, TraceToDatasetCopiesLengths)
{
    const auto trace = makeCodeCompletionTrace(50, 19);
    const auto dataset = traceToDataset(trace, 512);
    ASSERT_EQ(dataset.requests.size(), 50u);
    EXPECT_EQ(dataset.maxNewTokens, 512);
    for (std::size_t i = 0; i < 50; ++i) {
        EXPECT_EQ(dataset.requests[i].inputLen,
                  trace.records[i].inputLen);
        EXPECT_EQ(dataset.requests[i].outputLen,
                  trace.records[i].outputLen);
    }
}

/** Minimal sink capturing submissions. */
class RecordingSink : public RequestSink
{
  public:
    void
    submitAt(const RequestSpec &spec, Tick arrival) override
    {
        submissions.emplace_back(spec.id, arrival);
    }

    std::vector<std::pair<RequestId, Tick>> submissions;
};

TEST(ClientPoolTest, StartSubmitsOnePerClient)
{
    const auto dataset = makeDistribution1(100, 20);
    RecordingSink sink;
    ClosedLoopClientPool pool(8, dataset, sink);
    pool.start(0);
    EXPECT_EQ(sink.submissions.size(), 8u);
    EXPECT_EQ(pool.numSubmitted(), 8u);
}

TEST(ClientPoolTest, RampStaggersStarts)
{
    const auto dataset = makeDistribution1(100, 21);
    RecordingSink sink;
    ClosedLoopClientPool pool(4, dataset, sink, 0,
                              secondsToTicks(1.0));
    pool.start(0);
    ASSERT_EQ(sink.submissions.size(), 4u);
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_EQ(sink.submissions[c].second,
                  static_cast<Tick>(c) * secondsToTicks(1.0));
    }
}

TEST(ClientPoolTest, FinishTriggersNextWithThinkTime)
{
    const auto dataset = makeDistribution1(100, 22);
    RecordingSink sink;
    ClosedLoopClientPool pool(2, dataset, sink,
                              secondsToTicks(3.0));
    pool.start(0);
    pool.onRequestFinished(0, secondsToTicks(10.0));
    ASSERT_EQ(sink.submissions.size(), 3u);
    EXPECT_EQ(sink.submissions[2].second, secondsToTicks(13.0));
}

TEST(ClientPoolTest, ExhaustionStopsSubmissions)
{
    const auto dataset = makeDistribution1(3, 23);
    RecordingSink sink;
    ClosedLoopClientPool pool(2, dataset, sink);
    pool.start(0);
    EXPECT_EQ(sink.submissions.size(), 2u);
    pool.onRequestFinished(0, 100);
    EXPECT_TRUE(pool.exhausted());
    pool.onRequestFinished(1, 200);  // nothing left to submit
    EXPECT_EQ(sink.submissions.size(), 3u);
}

TEST(ClientPoolTest, MoreClientsThanRequests)
{
    const auto dataset = makeDistribution1(2, 24);
    RecordingSink sink;
    ClosedLoopClientPool pool(10, dataset, sink);
    pool.start(0);
    EXPECT_EQ(sink.submissions.size(), 2u);
}

TEST(PoissonArrivalsTest, MonotoneAndRateMatched)
{
    const auto dataset = makeDistribution1(4000, 25);
    RecordingSink sink;
    submitPoissonArrivals(dataset, sink, 10.0, 99);
    ASSERT_EQ(sink.submissions.size(), 4000u);
    Tick prev = -1;
    for (const auto &[id, tick] : sink.submissions) {
        EXPECT_GE(tick, prev);
        prev = tick;
    }
    // 4000 arrivals at 10 req/s: makespan near 400 s.
    EXPECT_NEAR(ticksToSeconds(sink.submissions.back().second),
                400.0, 30.0);
}

TEST(DatasetIoTest, CsvRoundTripPreservesEverySpecField)
{
    // Session turns carry every RequestSpec field the shared-prefix
    // subsystem added: segments, outputKey, sessionKey.
    SessionWorkloadConfig config;
    config.numSessions = 4;
    config.turnsPerSession = 3;
    config.seed = 7;
    RecordingSink ignore;
    SessionGenerator sessions(config, ignore);

    Dataset dataset;
    dataset.name = "sessions";
    dataset.maxNewTokens = config.maxNewTokens;
    for (std::size_t s = 0; s < config.numSessions; ++s) {
        for (std::size_t t = 0; t < config.turnsPerSession; ++t)
            dataset.requests.push_back(sessions.turnSpec(s, t));
    }
    dataset.requests[1].cls.priority = 2;
    dataset.requests[2].cls.tenant = 17;
    dataset.requests[2].cls.sloTier = 1;

    std::stringstream buffer;
    writeDatasetCsv(buffer, dataset);
    const Dataset loaded = readDatasetCsv(buffer, "sessions");

    ASSERT_EQ(loaded.requests.size(), dataset.requests.size());
    EXPECT_EQ(loaded.maxNewTokens, dataset.maxNewTokens);
    for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
        const RequestSpec &expected = dataset.requests[i];
        const RequestSpec &actual = loaded.requests[i];
        EXPECT_EQ(actual.id, expected.id);
        EXPECT_EQ(actual.inputLen, expected.inputLen);
        EXPECT_EQ(actual.outputLen, expected.outputLen);
        EXPECT_EQ(actual.maxNewTokens, expected.maxNewTokens);
        EXPECT_EQ(actual.cls, expected.cls);
        EXPECT_EQ(actual.sessionKey, expected.sessionKey);
        EXPECT_EQ(actual.outputKey, expected.outputKey);
        ASSERT_EQ(actual.segments.size(),
                  expected.segments.size());
        for (std::size_t j = 0; j < expected.segments.size();
             ++j) {
            EXPECT_EQ(actual.segments[j].key,
                      expected.segments[j].key);
            EXPECT_EQ(actual.segments[j].len,
                      expected.segments[j].len);
        }
    }
}

TEST(DatasetIoTest, CsvRoundTripPlainDatasetAndFile)
{
    auto dataset = makeShareGpt(64, 11);
    assignPriorityMix(dataset, std::vector<double>{0.7, 0.3}, 5);
    const auto path = std::filesystem::temp_directory_path() /
        "lightllm_dataset_test.csv";
    writeDatasetCsvFile(path.string(), dataset);
    const Dataset loaded = readDatasetCsvFile(path.string());
    std::filesystem::remove(path);

    ASSERT_EQ(loaded.requests.size(), dataset.requests.size());
    for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
        EXPECT_EQ(loaded.requests[i].inputLen,
                  dataset.requests[i].inputLen);
        EXPECT_EQ(loaded.requests[i].cls.priority,
                  dataset.requests[i].cls.priority);
        EXPECT_TRUE(loaded.requests[i].segments.empty());
    }
}

TEST(DatasetIoTest, LegacyEightFieldRowsStillParse)
{
    // Pre-tenant CSVs lack the tenant/slo_tier columns; both
    // default to 0 and the remaining fields keep their meaning.
    std::stringstream legacy(
        "id,input_len,output_len,max_new_tokens,priority,"
        "session_key,output_key,segments\n"
        "0,10,20,100,2,ab,cd,\n");
    const Dataset loaded = readDatasetCsv(legacy, "legacy");
    ASSERT_EQ(loaded.requests.size(), 1u);
    EXPECT_EQ(loaded.requests[0].cls.priority, 2);
    EXPECT_EQ(loaded.requests[0].cls.tenant, 0u);
    EXPECT_EQ(loaded.requests[0].cls.sloTier, 0);
    EXPECT_EQ(loaded.requests[0].sessionKey, 0xabu);
    EXPECT_EQ(loaded.requests[0].outputKey, 0xcdu);
}

TEST(DatasetIoDeathTest, MalformedDatasetRowsAreFatal)
{
    std::stringstream missing("1,2,3\n");
    EXPECT_EXIT(readDatasetCsv(missing, "bad"),
                ::testing::ExitedWithCode(1),
                "expected 11, 10, or legacy 8 fields");
    std::stringstream segment(
        "0,10,20,100,0,3,1,0,0,deadbeef-512\n");
    EXPECT_EXIT(readDatasetCsv(segment, "bad"),
                ::testing::ExitedWithCode(1), "segment");
}

TEST(DatasetIoTest, ArrivalColumnRoundTripsWhenPresent)
{
    auto dataset = makeShareGpt(8, 13);
    for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
        dataset.requests[i].arrivalTick =
            static_cast<Tick>(i) * secondsToTicks(0.25);
    }

    std::stringstream buffer;
    writeDatasetCsv(buffer, dataset);
    EXPECT_NE(buffer.str().find("arrival_us"), std::string::npos);

    const Dataset loaded = readDatasetCsv(buffer, "trace");
    ASSERT_EQ(loaded.requests.size(), dataset.requests.size());
    for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
        EXPECT_EQ(loaded.requests[i].arrivalTick,
                  dataset.requests[i].arrivalTick);
    }
}

TEST(DatasetIoTest, NoArrivalsKeepsLegacySchema)
{
    // A dataset without measured arrivals must serialize exactly as
    // before the trace-replay column existed, so goldens pinned on
    // the 10-field schema stay byte-identical.
    const auto dataset = makeShareGpt(4, 13);
    std::stringstream buffer;
    writeDatasetCsv(buffer, dataset);
    EXPECT_EQ(buffer.str().find("arrival_us"), std::string::npos);

    const Dataset loaded = readDatasetCsv(buffer, "plain");
    ASSERT_EQ(loaded.requests.size(), dataset.requests.size());
    for (const RequestSpec &spec : loaded.requests)
        EXPECT_EQ(spec.arrivalTick, -1);
}

TEST(TraceArrivalsTest, ReplaySubmitsAtRecordedTicks)
{
    auto dataset = makeDistribution1(6, 31);
    // Deliberately non-monotone: replay must honor the recorded
    // ticks, not re-sort or re-space them.
    const Tick ticks[] = {500, 100, 100, 9000, 0, 2500};
    for (std::size_t i = 0; i < dataset.requests.size(); ++i)
        dataset.requests[i].arrivalTick = ticks[i];

    RecordingSink sink;
    submitTraceArrivals(dataset, sink, 1000);
    ASSERT_EQ(sink.submissions.size(), dataset.requests.size());
    for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
        EXPECT_EQ(sink.submissions[i].first,
                  dataset.requests[i].id);
        EXPECT_EQ(sink.submissions[i].second, 1000 + ticks[i]);
    }
}

TEST(TraceArrivalsDeathTest, MissingTimestampIsFatal)
{
    auto dataset = makeDistribution1(2, 31);
    dataset.requests[0].arrivalTick = 10;  // [1] stays unset (-1)
    RecordingSink sink;
    EXPECT_DEATH(submitTraceArrivals(dataset, sink),
                 "arrival timestamp");
}

TEST(RateScheduleTest, SpikeShapeAndRateAt)
{
    const auto schedule = RateSchedule::spike(4.0, 20.0, 30.0,
                                              10.0);
    EXPECT_DOUBLE_EQ(schedule.rateAt(0.0), 4.0);
    EXPECT_DOUBLE_EQ(schedule.rateAt(29.9), 4.0);
    EXPECT_DOUBLE_EQ(schedule.rateAt(30.0), 20.0);
    EXPECT_DOUBLE_EQ(schedule.rateAt(39.9), 20.0);
    EXPECT_DOUBLE_EQ(schedule.rateAt(40.0), 4.0);
    EXPECT_DOUBLE_EQ(schedule.rateAt(1e6), 4.0);
    EXPECT_DOUBLE_EQ(schedule.maxRate(), 20.0);
}

TEST(RateScheduleTest, StepsGetImplicitOpenEndedTail)
{
    const auto schedule = RateSchedule::steps(
        {RateSegment{2.0, 10.0}, RateSegment{6.0, 5.0}});
    EXPECT_DOUBLE_EQ(schedule.rateAt(12.0), 6.0);
    // The final closed segment's rate holds forever.
    EXPECT_DOUBLE_EQ(schedule.rateAt(1e9), 6.0);
    EXPECT_EQ(schedule.segments().size(), 3u);
}

TEST(RateScheduleTest, DiurnalClampsNegativeRates)
{
    const auto schedule =
        RateSchedule::diurnal(1.0, 5.0, 100.0, 8, 2);
    for (const RateSegment &segment : schedule.segments())
        EXPECT_GE(segment.ratePerSecond, 0.0);
    // 8 steps x 2 cycles + open-ended tail at base.
    EXPECT_EQ(schedule.segments().size(), 17u);
    EXPECT_DOUBLE_EQ(schedule.segments().back().ratePerSecond,
                     1.0);
}

TEST(RateScheduleTest, ParseAllKindsAndErrors)
{
    RateSchedule schedule = RateSchedule::constant(1.0);
    std::string error;
    EXPECT_TRUE(parseRateSchedule("const:5.5", schedule, error));
    EXPECT_DOUBLE_EQ(schedule.rateAt(0.0), 5.5);

    EXPECT_TRUE(
        parseRateSchedule("steps:4x30,20x10,4", schedule, error));
    EXPECT_DOUBLE_EQ(schedule.rateAt(35.0), 20.0);
    EXPECT_DOUBLE_EQ(schedule.rateAt(100.0), 4.0);

    EXPECT_TRUE(
        parseRateSchedule("spike:4,20,30,10", schedule, error));
    EXPECT_DOUBLE_EQ(schedule.rateAt(31.0), 20.0);

    EXPECT_TRUE(
        parseRateSchedule("diurnal:2,1,60,12", schedule, error));
    EXPECT_GT(schedule.rateAt(15.0), 2.0);  // first half peak

    EXPECT_FALSE(parseRateSchedule("5", schedule, error));
    EXPECT_FALSE(parseRateSchedule("const:0", schedule, error));
    EXPECT_FALSE(parseRateSchedule("const:-3", schedule, error));
    EXPECT_FALSE(
        parseRateSchedule("steps:4,20x10", schedule, error));
    EXPECT_FALSE(parseRateSchedule("spike:4,20,30", schedule,
                                   error));
    EXPECT_FALSE(parseRateSchedule("wave:1,2", schedule, error));
    // A zero final rate (timed or open-ended) could never drain a
    // finite dataset: clean parse error, not a panic or a hang.
    EXPECT_FALSE(
        parseRateSchedule("steps:5x10,0x10", schedule, error));
    EXPECT_FALSE(parseRateSchedule("steps:5x10,0", schedule,
                                   error));
    EXPECT_FALSE(error.empty());
}

TEST(RateScheduleTest, ConstantMatchesPoissonBitExactly)
{
    // submitPoissonArrivals is now a constant RateSchedule: the
    // arrival ticks must be identical draw for draw.
    const auto dataset = makeDistribution1(500, 33);
    RecordingSink legacy;
    submitPoissonArrivals(dataset, legacy, 7.5, 99);
    RecordingSink scheduled;
    submitScheduledArrivals(dataset, scheduled,
                            RateSchedule::constant(7.5), 99);
    ASSERT_EQ(legacy.submissions.size(),
              scheduled.submissions.size());
    for (std::size_t i = 0; i < legacy.submissions.size(); ++i)
        EXPECT_EQ(legacy.submissions[i], scheduled.submissions[i]);
}

TEST(RateScheduleTest, SpikeConcentratesArrivals)
{
    const auto dataset = makeDistribution1(4000, 5);
    RecordingSink sink;
    submitScheduledArrivals(
        dataset, sink, RateSchedule::spike(2.0, 40.0, 50.0, 50.0),
        123);
    ASSERT_EQ(sink.submissions.size(), 4000u);
    std::size_t before = 0, during = 0;
    Tick prev = -1;
    for (const auto &[id, tick] : sink.submissions) {
        EXPECT_GE(tick, prev);
        prev = tick;
        const double seconds = ticksToSeconds(tick);
        if (seconds < 50.0)
            ++before;
        else if (seconds < 100.0)
            ++during;
    }
    // ~100 arrivals in the 2/s prelude, ~2000 in the 40/s spike.
    EXPECT_NEAR(static_cast<double>(before), 100.0, 40.0);
    EXPECT_NEAR(static_cast<double>(during), 2000.0, 200.0);
}

TEST(RateScheduleTest, ZeroRateSegmentPausesArrivals)
{
    const auto dataset = makeDistribution1(200, 6);
    RecordingSink sink;
    submitScheduledArrivals(
        dataset, sink,
        RateSchedule::steps({RateSegment{5.0, 10.0},
                             RateSegment{0.0, 20.0},
                             RateSegment{5.0, 0.0}}),
        7);
    for (const auto &[id, tick] : sink.submissions) {
        const double seconds = ticksToSeconds(tick);
        EXPECT_FALSE(seconds >= 10.0 && seconds < 30.0)
            << "arrival inside the dead window at " << seconds;
    }
}

TEST(ArrivalsTest, StaggeredStartArithmetic)
{
    EXPECT_EQ(staggeredStart(100, 0, 7), 100);
    EXPECT_EQ(staggeredStart(100, 3, 7), 121);
    EXPECT_EQ(staggeredStart(0, 5, 0), 0);
}

} // namespace
} // namespace workload
} // namespace lightllm
