/**
 * @file
 * Tests for the continuous-batching serving engine: request
 * lifecycle, timing, eviction/recompute, split-fuse, and the
 * static-batch baseline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/scheduler_factory.hh"
#include "engine/framework_profile.hh"
#include "engine/serving_engine.hh"
#include "engine/static_engine.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "test_fixtures.hh"
#include "workload/datasets.hh"

namespace lightllm {
namespace engine {
namespace {

using core::SchedulerConfig;
using testfx::makeRequest;
using testfx::tinyPerf;
using workload::RequestSpec;

TEST(ServingEngineTest, SingleRequestLifecycle)
{
    ServingEngine engine(tinyPerf(8.0),
                         core::makeScheduler(
                             SchedulerConfig::oracle()));
    engine.submitAt(makeRequest(1, 100, 5), 0);
    const auto report = engine.run();

    EXPECT_EQ(report.numFinished, 1u);
    ASSERT_EQ(report.requests.size(), 1u);
    const auto &record = report.requests[0];
    EXPECT_EQ(record.outputTokens, 5);
    EXPECT_GT(record.firstToken, 0);
    EXPECT_GT(record.finish, record.firstToken);
    EXPECT_EQ(record.evictions, 0);
    // Prefill emits token 1; four decode steps follow.
    EXPECT_EQ(report.decodeSteps, 4);
    EXPECT_EQ(report.prefillIterations, 1);
    EXPECT_EQ(report.totalOutputTokens, 5);
    // All KV memory returned.
    EXPECT_EQ(engine.kvManager().usedTokens(), 0);
}

TEST(ServingEngineTest, MaxNewTokensCapsGeneration)
{
    ServingEngine engine(tinyPerf(8.0),
                         core::makeScheduler(
                             SchedulerConfig::oracle()));
    engine.submitAt(makeRequest(1, 50, 1000, 10), 0);
    const auto report = engine.run();
    ASSERT_EQ(report.requests.size(), 1u);
    EXPECT_EQ(report.requests[0].outputTokens, 10);
}

TEST(ServingEngineTest, ArrivalTimeIsHonoured)
{
    ServingEngine engine(tinyPerf(8.0),
                         core::makeScheduler(
                             SchedulerConfig::oracle()));
    const Tick arrival = secondsToTicks(5.0);
    engine.submitAt(makeRequest(1, 10, 3), arrival);
    const auto report = engine.run();
    ASSERT_EQ(report.requests.size(), 1u);
    EXPECT_EQ(report.requests[0].arrival, arrival);
    EXPECT_GT(report.requests[0].firstToken, arrival);
    EXPECT_GE(report.makespan, arrival);
}

TEST(ServingEngineTest, TtftIncludesQueueingDelay)
{
    // Capacity ~1000 tokens: the second large request must wait for
    // the first to finish under the conservative policy.
    ServingEngine engine(tinyPerf(1.2),
                         core::makeScheduler(
                             SchedulerConfig::conservative()));
    engine.submitAt(makeRequest(1, 300, 100, 400), 0);
    engine.submitAt(makeRequest(2, 300, 100, 400), 0);
    const auto report = engine.run();
    ASSERT_EQ(report.requests.size(), 2u);
    const auto &first = report.requests[0];
    const auto &second = report.requests[1];
    EXPECT_EQ(first.id, 1);
    EXPECT_EQ(second.id, 2);
    // FCFS: request 2 is admitted only after request 1 finished.
    EXPECT_GE(second.firstToken, first.finish);
    EXPECT_GT(second.ttft(), first.ttft());
}

TEST(ServingEngineTest, ConcurrentRequestsBatchTogether)
{
    ServingEngine engine(tinyPerf(8.0),
                         core::makeScheduler(
                             SchedulerConfig::oracle()));
    for (RequestId id = 0; id < 4; ++id)
        engine.submitAt(makeRequest(id, 50, 20), 0);
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 4u);
    // Batched decoding: ~19 shared steps, not 4 x 19.
    EXPECT_LT(report.decodeSteps, 30);
    EXPECT_GT(report.avgBatchSize, 3.0);
}

TEST(ServingEngineTest, EvictionRecomputeCompletesRequests)
{
    // Two requests whose combined peak exceeds capacity: the
    // aggressive policy admits both, so one must be evicted and
    // recomputed, and both must still finish with full outputs.
    ServingEngine engine(tinyPerf(1.2),  // ~1000 tokens
                         core::makeScheduler(
                             SchedulerConfig::aggressive(1.0)));
    engine.submitAt(makeRequest(1, 300, 300, 600), 0);
    engine.submitAt(makeRequest(2, 300, 300, 600), 0);
    const auto report = engine.run();

    EXPECT_EQ(report.numFinished, 2u);
    EXPECT_GE(report.evictionEvents, 1);
    EXPECT_GE(report.requestsEvicted, 1u);
    for (const auto &record : report.requests)
        EXPECT_EQ(record.outputTokens, 300);
    EXPECT_EQ(engine.kvManager().usedTokens(), 0);
}

TEST(ServingEngineTest, LifoEvictsMostRecentlyAdmitted)
{
    EngineConfig config;
    config.evictionPolicy = EvictionPolicy::Lifo;
    ServingEngine engine(tinyPerf(1.2),
                         core::makeScheduler(
                             SchedulerConfig::aggressive(1.0)),
                         config);
    engine.submitAt(makeRequest(1, 300, 300, 600), 0);
    engine.submitAt(makeRequest(2, 300, 300, 600), secondsToTicks(0.2));
    const auto report = engine.run();
    const auto &first = *std::find_if(
        report.requests.begin(), report.requests.end(),
        [](const auto &r) { return r.id == 1; });
    const auto &second = *std::find_if(
        report.requests.begin(), report.requests.end(),
        [](const auto &r) { return r.id == 2; });
    EXPECT_EQ(first.evictions, 0);
    EXPECT_GE(second.evictions, 1);
}

TEST(ServingEngineTest, FifoEvictsOldestAdmission)
{
    EngineConfig config;
    config.evictionPolicy = EvictionPolicy::Fifo;
    ServingEngine engine(tinyPerf(1.2),
                         core::makeScheduler(
                             SchedulerConfig::aggressive(1.0)),
                         config);
    engine.submitAt(makeRequest(1, 300, 300, 600), 0);
    engine.submitAt(makeRequest(2, 300, 300, 600), secondsToTicks(0.2));
    const auto report = engine.run();
    const auto &first = *std::find_if(
        report.requests.begin(), report.requests.end(),
        [](const auto &r) { return r.id == 1; });
    EXPECT_GE(first.evictions, 1);
}

TEST(ServingEngineTest, EvictionStallShowsInMaxGap)
{
    ServingEngine engine(tinyPerf(1.2),
                         core::makeScheduler(
                             SchedulerConfig::aggressive(1.0)));
    engine.submitAt(makeRequest(1, 300, 300, 600), 0);
    engine.submitAt(makeRequest(2, 300, 300, 600), 0);
    const auto report = engine.run();
    Tick evicted_gap = 0;
    Tick clean_gap = 0;
    for (const auto &record : report.requests) {
        if (record.evictions > 0)
            evicted_gap = std::max(evicted_gap, record.maxGap);
        else
            clean_gap = std::max(clean_gap, record.maxGap);
    }
    ASSERT_GT(evicted_gap, 0);
    // The recompute stall dwarfs a normal decode interval.
    EXPECT_GT(evicted_gap, 4 * clean_gap);
}

TEST(ServingEngineTest, MaxBatchSizeCapsConcurrency)
{
    EngineConfig config;
    config.maxBatchSize = 2;
    ServingEngine engine(tinyPerf(8.0),
                         core::makeScheduler(
                             SchedulerConfig::aggressive(1.0)),
                         config);
    for (RequestId id = 0; id < 6; ++id)
        engine.submitAt(makeRequest(id, 20, 30), 0);
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 6u);
    EXPECT_LE(report.avgBatchSize, 2.0 + 1e-9);
}

TEST(ServingEngineTest, SplitFuseSmoothsRunningRequests)
{
    // Request A decodes while B's very long prompt arrives. Without
    // split-fuse A stalls for B's whole prefill; with split-fuse the
    // prefill is chunked and A's worst gap shrinks.
    auto run_with = [&](bool split_fuse) {
        EngineConfig config;
        config.splitFuse = split_fuse;
        config.splitFuseChunk = 256;
        ServingEngine engine(tinyPerf(20.0),
                             core::makeScheduler(
                                 SchedulerConfig::aggressive(1.0)),
                             config);
        engine.submitAt(makeRequest(1, 50, 400, 500), 0);
        engine.submitAt(makeRequest(2, 8000, 50, 100),
                        secondsToTicks(0.05));
        const auto report = engine.run();
        const auto &first = *std::find_if(
            report.requests.begin(), report.requests.end(),
            [](const auto &r) { return r.id == 1; });
        return first.maxGap;
    };
    const Tick monolithic_gap = run_with(false);
    const Tick fused_gap = run_with(true);
    EXPECT_LT(fused_gap, monolithic_gap);
}

TEST(ServingEngineTest, SplitFuseFinishesEveryone)
{
    EngineConfig config;
    config.splitFuse = true;
    config.splitFuseChunk = 128;
    ServingEngine engine(tinyPerf(8.0),
                         core::makeScheduler(
                             SchedulerConfig::aggressive(0.95)),
                         config);
    for (RequestId id = 0; id < 8; ++id)
        engine.submitAt(makeRequest(id, 300, 40), 0);
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 8u);
    EXPECT_EQ(report.totalOutputTokens, 8 * 40);
    EXPECT_EQ(engine.kvManager().usedTokens(), 0);
}

TEST(ServingEngineTest, ForcedAdmissionBreaksPolicyDeadlock)
{
    // Conservative would never admit prompt + max_new > capacity,
    // but an idle engine must make progress (real frameworks always
    // run batch size 1).
    ServingEngine engine(tinyPerf(1.2),  // ~1000 tokens
                         core::makeScheduler(
                             SchedulerConfig::conservative()));
    engine.submitAt(makeRequest(1, 500, 100, 4096), 0);
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 1u);
}

TEST(ServingEngineTest, WarmupDiscardsEarlyRequests)
{
    EngineConfig config;
    config.warmupRequests = 3;
    ServingEngine engine(tinyPerf(8.0),
                         core::makeScheduler(
                             SchedulerConfig::oracle()),
                         config);
    for (RequestId id = 0; id < 8; ++id)
        engine.submitAt(makeRequest(id, 50, 20), 0);
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 5u);
    EXPECT_EQ(report.totalOutputTokens, 5 * 20);
    EXPECT_LT(report.makespan, secondsToTicks(3600.0));
}

TEST(ServingEngineTest, RunLimitsStopEarly)
{
    RunLimits limits;
    limits.maxFinishedRequests = 2;
    ServingEngine engine(tinyPerf(8.0),
                         core::makeScheduler(
                             SchedulerConfig::oracle()));
    // Staggered output lengths so completions never coincide.
    for (RequestId id = 0; id < 10; ++id)
        engine.submitAt(makeRequest(id, 50, 20 + 10 * id), 0);
    const auto report = engine.run(limits);
    EXPECT_GE(report.numFinished, 2u);
    EXPECT_LT(report.numFinished, 10u);
}

TEST(ServingEngineTest, FinishCallbackFires)
{
    ServingEngine engine(tinyPerf(8.0),
                         core::makeScheduler(
                             SchedulerConfig::oracle()));
    std::vector<RequestId> finished;
    Tick last_tick = -1;
    engine.setOnFinish([&](const RequestSpec &spec, Tick tick) {
        finished.push_back(spec.id);
        EXPECT_GE(tick, last_tick);
        last_tick = tick;
    });
    for (RequestId id = 0; id < 3; ++id)
        engine.submitAt(makeRequest(id, 30, 5 + 3 * id), 0);
    engine.run();
    EXPECT_EQ(finished.size(), 3u);
    // Shortest output finishes first.
    EXPECT_EQ(finished[0], 0);
}

TEST(ServingEngineTest, DeterministicAcrossRuns)
{
    auto run_once = [&]() {
        ServingEngine engine(
            tinyPerf(8.0),
            core::makeScheduler(
                SchedulerConfig::pastFutureDefault(0.05)));
        const auto dataset = workload::makeShareGpt(60, 5);
        for (const auto &spec : dataset.requests)
            engine.submitAt(spec, 0);
        return engine.run();
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.decodeSteps, b.decodeSteps);
    EXPECT_EQ(a.evictionEvents, b.evictionEvents);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].firstToken, b.requests[i].firstToken);
        EXPECT_EQ(a.requests[i].finish, b.requests[i].finish);
    }
}

TEST(ServingEngineDeathTest, OversizedRequestIsFatal)
{
    ServingEngine engine(tinyPerf(1.2),
                         core::makeScheduler(
                             SchedulerConfig::oracle()));
    engine.submitAt(makeRequest(1, 5000, 10), 0);
    EXPECT_EXIT(engine.run(), ::testing::ExitedWithCode(1),
                "cannot fit");
}

TEST(ServingEngineDeathTest, DuplicateRequestIdPanics)
{
    ServingEngine engine(tinyPerf(8.0),
                         core::makeScheduler(
                             SchedulerConfig::oracle()));
    engine.submitAt(makeRequest(1, 10, 5), 0);
    engine.submitAt(makeRequest(1, 10, 5), 0);
    EXPECT_DEATH(engine.run(), "duplicate request id");
}

TEST(ServingEngineDeathTest, SecondRunPanics)
{
    ServingEngine engine(tinyPerf(8.0),
                         core::makeScheduler(
                             SchedulerConfig::oracle()));
    engine.run();
    EXPECT_DEATH(engine.run(), "single-run");
}

// --- Static-batch baseline ---------------------------------------------

TEST(StaticEngineTest, ProcessesWholeDataset)
{
    const auto perf = tinyPerf(20.0);
    const auto dataset = workload::makeTextVqaLike(64, 576, 3);
    const auto report = runStaticBatch(perf, dataset);
    EXPECT_EQ(report.numFinished, 64u);
    EXPECT_EQ(report.totalOutputTokens,
              dataset.totalOutputTokens());
    EXPECT_GT(report.throughputTokensPerSec(), 0.0);
}

TEST(StaticEngineTest, ExplicitBatchSizeIsUsed)
{
    const auto perf = tinyPerf(20.0);
    const auto dataset = workload::makeTextVqaLike(64, 576, 3);
    StaticEngineConfig config;
    config.batchSize = 4;
    const auto report = runStaticBatch(perf, dataset, config);
    EXPECT_EQ(report.numFinished, 64u);
    EXPECT_NEAR(report.avgBatchSize, 4.0, 0.2);
}

TEST(StaticEngineTest, TimeFactorSlowsThroughput)
{
    const auto perf = tinyPerf(20.0);
    const auto dataset = workload::makeTextVqaLike(32, 576, 4);
    StaticEngineConfig slow;
    slow.timeFactor = 2.0;
    const auto fast_report = runStaticBatch(perf, dataset);
    const auto slow_report = runStaticBatch(perf, dataset, slow);
    EXPECT_GT(fast_report.throughputTokensPerSec(),
              1.8 * slow_report.throughputTokensPerSec());
}

// --- Framework profiles --------------------------------------------------

TEST(FrameworkProfileTest, AllFiveFrameworks)
{
    const auto profiles = FrameworkProfile::all();
    ASSERT_EQ(profiles.size(), 5u);
    EXPECT_EQ(profiles[0].name, "TGI");
    EXPECT_EQ(profiles[4].name, "LightLLM");
}

TEST(FrameworkProfileTest, SchedulerKindsMatchThePaper)
{
    EXPECT_EQ(FrameworkProfile::vllm().scheduler.kind,
              core::SchedulerKind::Aggressive);
    EXPECT_EQ(FrameworkProfile::tgi().scheduler.kind,
              core::SchedulerKind::Conservative);
    EXPECT_EQ(FrameworkProfile::lightllm().scheduler.kind,
              core::SchedulerKind::PastFuture);
    EXPECT_TRUE(FrameworkProfile::deepspeedMii().splitFuse);
    EXPECT_LT(FrameworkProfile::tensorrtLlm().timeFactor, 1.0);
}

TEST(FrameworkProfileTest, ToEngineConfigCopiesKnobs)
{
    const auto profile = FrameworkProfile::deepspeedMii();
    const auto config = profile.toEngineConfig();
    EXPECT_EQ(config.splitFuse, profile.splitFuse);
    EXPECT_DOUBLE_EQ(config.timeFactor, profile.timeFactor);
}

} // namespace
} // namespace engine
} // namespace lightllm
