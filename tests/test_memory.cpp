/**
 * @file
 * Tests for the paged KV block manager and the contiguous baseline.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "memory/contiguous_allocator.hh"
#include "memory/kv_block_manager.hh"

namespace lightllm {
namespace memory {
namespace {

TEST(KvBlockManagerTest, CapacityRoundsDownToBlocks)
{
    KvBlockManager kv(1000, 16);
    EXPECT_EQ(kv.capacityTokens(), 992);  // 62 blocks
    EXPECT_EQ(kv.freeBlocks(), 62);
}

TEST(KvBlockManagerTest, AllocateTracksTokensAndBlocks)
{
    KvBlockManager kv(1024, 16);
    ASSERT_TRUE(kv.allocate(1, 100));
    EXPECT_EQ(kv.usedTokens(), 100);
    EXPECT_EQ(kv.requestTokens(1), 100);
    EXPECT_EQ(kv.blockTable(1).size(), 7u);  // ceil(100/16)
    EXPECT_EQ(kv.freeBlocks(), 64 - 7);
}

TEST(KvBlockManagerTest, ZeroTokenAllocateRejected)
{
    KvBlockManager kv(1024, 16);
    EXPECT_FALSE(kv.allocate(1, 0));
    EXPECT_EQ(kv.usedTokens(), 0);
    EXPECT_EQ(kv.numRequests(), 0u);
    // The id stays available for a real allocation.
    EXPECT_TRUE(kv.allocate(1, 10));
}

TEST(KvBlockManagerTest, PartialLastBlockGrowthAccounting)
{
    // Growth fills the last block's slack before taking new blocks:
    // a request growing one token per step takes one fresh block
    // every blockSize steps, never more.
    KvBlockManager kv(1024, 16);
    ASSERT_TRUE(kv.allocate(1, 33));  // 3 blocks, 15 slack
    EXPECT_EQ(kv.blockTable(1).size(), 3u);
    for (int step = 0; step < 15; ++step)
        ASSERT_TRUE(kv.extend(1, 1));
    EXPECT_EQ(kv.blockTable(1).size(), 3u);  // slack absorbed all
    ASSERT_TRUE(kv.extend(1, 1));
    EXPECT_EQ(kv.blockTable(1).size(), 4u);  // 49 tokens
    EXPECT_EQ(kv.requestTokens(1), 49);
    EXPECT_EQ(kv.usedTokens(), 49);
}

TEST(KvBlockManagerTest, DuplicateAllocateFails)
{
    KvBlockManager kv(1024, 16);
    ASSERT_TRUE(kv.allocate(1, 10));
    EXPECT_FALSE(kv.allocate(1, 10));
    EXPECT_EQ(kv.usedTokens(), 10);
}

TEST(KvBlockManagerTest, AllocateFailureChangesNothing)
{
    KvBlockManager kv(64, 16);  // 4 blocks
    ASSERT_TRUE(kv.allocate(1, 33));  // 3 blocks
    EXPECT_FALSE(kv.allocate(2, 32));  // needs 2, only 1 free
    EXPECT_EQ(kv.usedTokens(), 33);
    EXPECT_EQ(kv.numRequests(), 1u);
    EXPECT_TRUE(kv.allocate(3, 16));  // exactly the last block
}

TEST(KvBlockManagerTest, ExtendUsesLastBlockSlackFirst)
{
    KvBlockManager kv(1024, 16);
    ASSERT_TRUE(kv.allocate(1, 10));  // 1 block, 6 slack
    ASSERT_TRUE(kv.extend(1, 6));
    EXPECT_EQ(kv.blockTable(1).size(), 1u);
    ASSERT_TRUE(kv.extend(1, 1));  // now needs a second block
    EXPECT_EQ(kv.blockTable(1).size(), 2u);
    EXPECT_EQ(kv.requestTokens(1), 17);
}

TEST(KvBlockManagerTest, ExtendFailureIsAtomic)
{
    KvBlockManager kv(32, 16);  // 2 blocks
    ASSERT_TRUE(kv.allocate(1, 16));
    ASSERT_TRUE(kv.allocate(2, 16));
    EXPECT_FALSE(kv.extend(1, 1));
    EXPECT_EQ(kv.requestTokens(1), 16);
    EXPECT_EQ(kv.freeBlocks(), 0);
}

TEST(KvBlockManagerTest, ReleaseReturnsBlocks)
{
    KvBlockManager kv(1024, 16);
    ASSERT_TRUE(kv.allocate(1, 100));
    ASSERT_TRUE(kv.allocate(2, 200));
    kv.release(1);
    EXPECT_EQ(kv.usedTokens(), 200);
    EXPECT_EQ(kv.requestTokens(1), 0);
    EXPECT_EQ(kv.numRequests(), 1u);
    EXPECT_EQ(kv.freeBlocks(), 64 - 13);
}

TEST(KvBlockManagerTest, ReleaseUnknownIsNoop)
{
    KvBlockManager kv(1024, 16);
    kv.release(42);
    EXPECT_EQ(kv.usedTokens(), 0);
}

TEST(KvBlockManagerTest, BlocksAreNeverSharedBetweenRequests)
{
    KvBlockManager kv(4096, 16);
    Rng rng(5);
    std::vector<RequestId> live;
    for (RequestId id = 0; id < 40; ++id) {
        if (kv.allocate(id, rng.uniformInt(1, 120)))
            live.push_back(id);
    }
    std::unordered_map<BlockId, RequestId> owner;
    for (RequestId id : live) {
        for (BlockId block : kv.blockTable(id)) {
            const auto [it, inserted] = owner.emplace(block, id);
            EXPECT_TRUE(inserted)
                << "block " << block << " owned by both " << it->second
                << " and " << id;
        }
    }
}

TEST(KvBlockManagerTest, CanExtendBatchAccountsSlack)
{
    KvBlockManager kv(48, 16);  // 3 blocks
    ASSERT_TRUE(kv.allocate(1, 16));  // full block, no slack
    ASSERT_TRUE(kv.allocate(2, 15));  // 1 token slack
    ASSERT_TRUE(kv.allocate(3, 10));  // 6 tokens slack
    // Requests 2 and 3 can grow within slack; request 1 needs a new
    // block but none are free.
    EXPECT_FALSE(kv.canExtendBatchByOne({1, 2, 3}));
    EXPECT_TRUE(kv.canExtendBatchByOne({2, 3}));
}

TEST(KvBlockManagerTest, CanAllocateMatchesAllocate)
{
    KvBlockManager kv(64, 16);
    ASSERT_TRUE(kv.allocate(1, 40));  // 3 blocks
    EXPECT_TRUE(kv.canAllocate(16));
    EXPECT_FALSE(kv.canAllocate(17));
}

TEST(KvBlockManagerTest, UtilizationIsTokenLevel)
{
    KvBlockManager kv(100, 10);
    ASSERT_TRUE(kv.allocate(1, 25));
    EXPECT_DOUBLE_EQ(kv.utilization(), 0.25);
}

TEST(KvBlockManagerDeathTest, ExtendUnknownRequestPanics)
{
    KvBlockManager kv(64, 16);
    EXPECT_DEATH(kv.extend(9, 1), "unknown request");
}

/**
 * Property: a random allocate/extend/release workload conserves
 * blocks exactly — used + free always equals total, and releasing
 * everything restores the initial state.
 */
class KvBlockManagerProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(KvBlockManagerProperty, RandomWorkloadConservesBlocks)
{
    KvBlockManager kv(8192, 16);
    const std::int64_t total_blocks = kv.freeBlocks();
    Rng rng(GetParam());
    std::vector<RequestId> live;
    RequestId next_id = 0;

    for (int step = 0; step < 2000; ++step) {
        const double action = rng.uniformDouble();
        if (action < 0.4) {
            const RequestId id = next_id++;
            if (kv.allocate(id, rng.uniformInt(1, 300)))
                live.push_back(id);
        } else if (action < 0.8 && !live.empty()) {
            const auto index = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(
                                   live.size()) - 1));
            kv.extend(live[index], rng.uniformInt(1, 50));
        } else if (!live.empty()) {
            const auto index = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(
                                   live.size()) - 1));
            kv.release(live[index]);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(index));
        }

        // Block conservation.
        std::int64_t owned = 0;
        TokenCount tokens = 0;
        for (RequestId id : live) {
            owned += static_cast<std::int64_t>(
                kv.blockTable(id).size());
            tokens += kv.requestTokens(id);
        }
        ASSERT_EQ(owned + kv.freeBlocks(), total_blocks);
        ASSERT_EQ(tokens, kv.usedTokens());
        ASSERT_LE(kv.usedTokens(),
                  owned * kv.blockSize());
    }

    for (RequestId id : live)
        kv.release(id);
    EXPECT_EQ(kv.usedTokens(), 0);
    EXPECT_EQ(kv.freeBlocks(), total_blocks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvBlockManagerProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(ContiguousAllocatorTest, FirstFitPicksLowestOffset)
{
    ContiguousAllocator arena(100);
    ASSERT_TRUE(arena.allocate(1, 30));
    ASSERT_TRUE(arena.allocate(2, 30));
    arena.release(1);
    // A 20-token request fits in the freed [0, 30) hole.
    ASSERT_TRUE(arena.allocate(3, 20));
    EXPECT_EQ(arena.usedTokens(), 50);
    EXPECT_EQ(arena.numFreeSegments(), 2u);
}

TEST(ContiguousAllocatorTest, FragmentationBlocksLargeAllocation)
{
    ContiguousAllocator arena(100);
    ASSERT_TRUE(arena.allocate(1, 40));
    ASSERT_TRUE(arena.allocate(2, 20));
    ASSERT_TRUE(arena.allocate(3, 40));
    arena.release(1);
    arena.release(3);
    // 80 tokens are free but the largest hole is only 40: the
    // fragmentation failure pre-paging allocators hit.
    EXPECT_EQ(arena.freeTokens(), 80);
    EXPECT_EQ(arena.largestFreeSegment(), 40);
    EXPECT_FALSE(arena.allocate(4, 60));
    EXPECT_NEAR(arena.fragmentation(), 0.5, 1e-12);
}

TEST(ContiguousAllocatorTest, ReleaseCoalescesNeighbours)
{
    ContiguousAllocator arena(100);
    ASSERT_TRUE(arena.allocate(1, 30));
    ASSERT_TRUE(arena.allocate(2, 30));
    ASSERT_TRUE(arena.allocate(3, 40));
    arena.release(1);
    arena.release(3);
    EXPECT_EQ(arena.numFreeSegments(), 2u);
    arena.release(2);  // merges with both neighbours
    EXPECT_EQ(arena.numFreeSegments(), 1u);
    EXPECT_EQ(arena.largestFreeSegment(), 100);
    EXPECT_DOUBLE_EQ(arena.fragmentation(), 0.0);
}

TEST(ContiguousAllocatorTest, DuplicateIdRejected)
{
    ContiguousAllocator arena(100);
    ASSERT_TRUE(arena.allocate(1, 10));
    EXPECT_FALSE(arena.allocate(1, 10));
}

TEST(ContiguousAllocatorTest, FullArenaHasZeroFragmentation)
{
    ContiguousAllocator arena(100);
    ASSERT_TRUE(arena.allocate(1, 100));
    EXPECT_DOUBLE_EQ(arena.fragmentation(), 0.0);
    EXPECT_EQ(arena.largestFreeSegment(), 0);
}

/** Property: paged allocation succeeds where contiguous fragments. */
TEST(AllocatorComparisonTest, PagingDefeatsFragmentation)
{
    // Interleave allocations and free the even ones, then ask for
    // one large request. The paged manager serves it from the
    // scattered free blocks; the contiguous arena cannot.
    ContiguousAllocator arena(1600);
    KvBlockManager kv(1600, 16);
    for (RequestId id = 0; id < 10; ++id) {
        ASSERT_TRUE(arena.allocate(id, 160));
        ASSERT_TRUE(kv.allocate(id, 160));
    }
    for (RequestId id = 0; id < 10; id += 2) {
        arena.release(id);
        kv.release(id);
    }
    EXPECT_EQ(arena.freeTokens(), 800);
    EXPECT_FALSE(arena.allocate(100, 600));
    EXPECT_TRUE(kv.allocate(100, 600));
}

} // namespace
} // namespace memory
} // namespace lightllm
