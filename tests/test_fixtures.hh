/**
 * @file
 * Shared test fixtures: the tiny synthetic platform and request
 * factory used by the engine, cluster, and exactness suites. One
 * definition keeps every suite on the same platform — a drifted
 * copy would silently test different token capacities.
 */

#ifndef LIGHTLLM_TESTS_TEST_FIXTURES_HH
#define LIGHTLLM_TESTS_TEST_FIXTURES_HH

#include "model/perf_model.hh"
#include "workload/request_spec.hh"

namespace lightllm {
namespace testfx {

/** A small synthetic model so tests control token capacity. */
inline model::PerfModel
tinyPerf(double mem_megabytes)
{
    model::ModelSpec spec;
    spec.name = "tiny";
    spec.numParams = 100'000;
    spec.numLayers = 2;
    spec.hiddenSize = 128;
    spec.numHeads = 2;
    spec.numKvHeads = 2;
    spec.headDim = 64;
    // kvBytesPerToken = 2*2*2*64*2 = 1024 bytes.
    model::HardwareSpec hw;
    hw.name = "tiny-gpu";
    hw.memBytesPerDevice =
        static_cast<ByteCount>(mem_megabytes * 1e6);
    hw.memBandwidthPerDevice = 1e12;
    hw.flopsPerDevice = 1e14;
    hw.hostLinkBandwidth = 25e9;
    return model::PerfModel(spec, hw);
}

/** A request spec with explicit lengths (EOS at `output`). */
inline workload::RequestSpec
makeRequest(RequestId id, TokenCount input, TokenCount output,
            TokenCount max_new = 4096)
{
    workload::RequestSpec spec;
    spec.id = id;
    spec.inputLen = input;
    spec.outputLen = output;
    spec.maxNewTokens = max_new;
    return spec;
}

} // namespace testfx
} // namespace lightllm

#endif // LIGHTLLM_TESTS_TEST_FIXTURES_HH
