/**
 * @file
 * Tests for the extensions beyond the paper's core: swap-based
 * eviction, the step-wise engine API, multi-instance routing (the
 * paper's future-work proposal), and report export.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "metrics/report_io.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "test_fixtures.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

namespace lightllm {
namespace {

using core::SchedulerConfig;
using testfx::makeRequest;
using testfx::tinyPerf;
using workload::RequestSpec;

// --- Swap eviction ------------------------------------------------------

TEST(SwapEvictionTest, SwappedRequestsComplete)
{
    engine::EngineConfig config;
    config.evictionMode = engine::EvictionMode::Swap;
    engine::ServingEngine engine(
        tinyPerf(1.2),
        core::makeScheduler(SchedulerConfig::aggressive(1.0)),
        config);
    engine.submitAt(makeRequest(1, 300, 300, 600), 0);
    engine.submitAt(makeRequest(2, 300, 300, 600), 0);
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 2u);
    EXPECT_GE(report.evictionEvents, 1);
    EXPECT_GE(report.swapEvents, 2);  // out + in, at least
    EXPECT_GT(report.swappedTokens, 0);
    for (const auto &record : report.requests)
        EXPECT_EQ(record.outputTokens, 300);
    EXPECT_EQ(engine.kvManager().usedTokens(), 0);
}

TEST(SwapEvictionTest, RecomputeModeNeverSwaps)
{
    engine::ServingEngine engine(
        tinyPerf(1.2),
        core::makeScheduler(SchedulerConfig::aggressive(1.0)));
    engine.submitAt(makeRequest(1, 300, 300, 600), 0);
    engine.submitAt(makeRequest(2, 300, 300, 600), 0);
    const auto report = engine.run();
    EXPECT_GE(report.evictionEvents, 1);
    EXPECT_EQ(report.swapEvents, 0);
}

TEST(SwapEvictionTest, SwapAvoidsRecomputePrefills)
{
    // With swap, no recompute prefill runs: prefill iterations stay
    // at one per request despite evictions.
    auto run_mode = [&](engine::EvictionMode mode) {
        engine::EngineConfig config;
        config.evictionMode = mode;
        engine::ServingEngine engine(
            tinyPerf(1.2),
            core::makeScheduler(SchedulerConfig::aggressive(1.0)),
            config);
        engine.submitAt(makeRequest(1, 300, 300, 600), 0);
        engine.submitAt(makeRequest(2, 300, 300, 600), 0);
        return engine.run();
    };
    const auto swap = run_mode(engine::EvictionMode::Swap);
    const auto recompute = run_mode(engine::EvictionMode::Recompute);
    ASSERT_GE(swap.evictionEvents, 1);
    ASSERT_GE(recompute.evictionEvents, 1);
    EXPECT_EQ(swap.prefillIterations, 2);
    EXPECT_GT(recompute.prefillIterations, 2);
    EXPECT_GT(recompute.totalPrefillTokens,
              swap.totalPrefillTokens);
}

TEST(SwapEvictionTest, WorksUnderSplitFuse)
{
    engine::EngineConfig config;
    config.evictionMode = engine::EvictionMode::Swap;
    config.splitFuse = true;
    config.splitFuseChunk = 128;
    engine::ServingEngine engine(
        tinyPerf(1.2),
        core::makeScheduler(SchedulerConfig::aggressive(1.0)),
        config);
    engine.submitAt(makeRequest(1, 300, 300, 600), 0);
    engine.submitAt(makeRequest(2, 300, 300, 600), 0);
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 2u);
    EXPECT_EQ(report.totalOutputTokens, 600);
    EXPECT_EQ(engine.kvManager().usedTokens(), 0);
}

// --- Step-wise API ------------------------------------------------------

TEST(StepApiTest, StepOnceMatchesRun)
{
    auto build = [&]() {
        auto engine = std::make_unique<engine::ServingEngine>(
            tinyPerf(8.0),
            core::makeScheduler(SchedulerConfig::oracle()));
        for (RequestId id = 0; id < 5; ++id)
            engine->submitAt(makeRequest(id, 50, 20 + id), 0);
        return engine;
    };
    auto stepped = build();
    while (stepped->stepOnce()) {
    }
    const auto stepped_report = stepped->report();
    const auto run_report = build()->run();
    EXPECT_EQ(stepped_report.numFinished, run_report.numFinished);
    EXPECT_EQ(stepped_report.decodeSteps, run_report.decodeSteps);
    EXPECT_EQ(stepped_report.makespan, run_report.makespan);
}

TEST(StepApiTest, StepOnceReturnsFalseWhenDrained)
{
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()));
    EXPECT_FALSE(engine.stepOnce());
    engine.submitAt(makeRequest(1, 10, 2), 0);
    EXPECT_TRUE(engine.stepOnce());
    while (engine.stepOnce()) {
    }
    EXPECT_FALSE(engine.hasWork());
    EXPECT_FALSE(engine.hasPendingArrivals());
}

TEST(StepApiTest, OutstandingTokensTracksQueue)
{
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()));
    EXPECT_EQ(engine.outstandingTokens(), 0);
    engine.submitAt(makeRequest(1, 100, 10), 0);
    engine.stepOnce();  // deliver + admit + prefill + decode
    EXPECT_GT(engine.outstandingTokens(), 100);
}

TEST(StepApiTest, PredictedLoadUsesSchedulerEstimate)
{
    // The Past-Future scheduler's load estimate includes predicted
    // output growth, so it exceeds the plain outstanding footprint.
    auto config = SchedulerConfig::pastFutureDefault(0.05);
    config.pastFuture.initialHistory.assign(200, 400);
    engine::ServingEngine engine(tinyPerf(8.0),
                                 core::makeScheduler(config));
    engine.submitAt(makeRequest(1, 100, 300, 500), 0);
    engine.stepOnce();
    EXPECT_GT(engine.predictedLoadTokens(),
              engine.outstandingTokens());
}

// --- Cluster routing ------------------------------------------------------

std::unique_ptr<cluster::ServingCluster>
makeCluster(std::size_t instances, cluster::RoutingPolicy policy,
            SchedulerConfig scheduler_config,
            double mem_megabytes = 4.0)
{
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    for (std::size_t i = 0; i < instances; ++i) {
        engines.push_back(std::make_unique<engine::ServingEngine>(
            tinyPerf(mem_megabytes),
            core::makeScheduler(scheduler_config)));
    }
    return std::make_unique<cluster::ServingCluster>(
        std::move(engines), policy);
}

TEST(ClusterTest, RoundRobinSpreadsRequestsEvenly)
{
    auto fleet = makeCluster(4, cluster::RoutingPolicy::RoundRobin,
                             SchedulerConfig::oracle());
    for (RequestId id = 0; id < 40; ++id)
        fleet->submitAt(makeRequest(id, 50, 20), 0);
    const auto report = fleet->run();
    EXPECT_EQ(report.numFinished, 40u);
    for (std::size_t count : fleet->routedCounts())
        EXPECT_EQ(count, 10u);
}

TEST(ClusterTest, MergedReportConservesTokens)
{
    auto fleet = makeCluster(3, cluster::RoutingPolicy::RoundRobin,
                             SchedulerConfig::oracle());
    TokenCount expected = 0;
    for (RequestId id = 0; id < 30; ++id) {
        const auto spec = makeRequest(id, 50, 10 + id % 7);
        expected += spec.effectiveOutputLen();
        fleet->submitAt(spec, 0);
    }
    const auto report = fleet->run();
    EXPECT_EQ(report.totalOutputTokens, expected);
    EXPECT_EQ(report.requests.size(), 30u);
}

TEST(ClusterTest, LeastOutstandingAvoidsTheLoadedInstance)
{
    // Pre-load instance 0 via round-robin-free direct submission,
    // then check the router sends the next requests elsewhere.
    auto fleet = makeCluster(
        2, cluster::RoutingPolicy::LeastOutstandingTokens,
        SchedulerConfig::oracle());
    // First request goes to some instance; the second must go to
    // the other one because the first is now loaded.
    fleet->submitAt(makeRequest(1, 500, 200), 0);
    fleet->submitAt(makeRequest(2, 500, 200), 0);
    const auto &counts = fleet->routedCounts();
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 1u);
    fleet->run();
}

TEST(ClusterTest, FutureMemoryRoutingBalancesHeavyTails)
{
    // Heavy-tailed outputs: future-memory routing should spread
    // *predicted* work, ending with lower token imbalance than
    // round-robin on the same workload.
    const auto dataset = workload::makeShareGptO1(120, 31);
    auto route_with = [&](cluster::RoutingPolicy policy) {
        auto config = SchedulerConfig::pastFutureDefault(0.05);
        config.pastFuture.initialHistory.assign(500, 0);
        auto warm = workload::makeShareGptO1(500, 32);
        config.pastFuture.initialHistory.clear();
        for (const auto &request : warm.requests) {
            config.pastFuture.initialHistory.push_back(
                request.effectiveOutputLen());
        }
        auto fleet = makeCluster(4, policy, config, 16.0);
        workload::ClosedLoopClientPool clients(16, dataset, *fleet);
        fleet->setOnFinish(
            [&](const RequestSpec &spec, Tick tick) {
                clients.onRequestFinished(spec.id, tick);
            });
        clients.start();
        const auto report = fleet->run();
        EXPECT_EQ(report.numFinished, dataset.requests.size());
        return fleet->tokenImbalance();
    };
    const double future_memory =
        route_with(cluster::RoutingPolicy::FutureMemory);
    const double round_robin =
        route_with(cluster::RoutingPolicy::RoundRobin);
    EXPECT_LT(future_memory, round_robin);
}

TEST(ClusterTest, PolicyNames)
{
    EXPECT_STREQ(cluster::routingPolicyName(
                     cluster::RoutingPolicy::RoundRobin),
                 "round-robin");
    EXPECT_STREQ(cluster::routingPolicyName(
                     cluster::RoutingPolicy::FutureMemory),
                 "future-memory");
}

TEST(ClusterTest, ParseRoutingPolicyRoundTrips)
{
    for (const auto policy :
         {cluster::RoutingPolicy::RoundRobin,
          cluster::RoutingPolicy::LeastOutstandingTokens,
          cluster::RoutingPolicy::FutureMemory}) {
        cluster::RoutingPolicy parsed =
            cluster::RoutingPolicy::RoundRobin;
        ASSERT_TRUE(cluster::parseRoutingPolicy(
            cluster::routingPolicyName(policy), parsed));
        EXPECT_EQ(parsed, policy);
    }
    cluster::RoutingPolicy untouched =
        cluster::RoutingPolicy::FutureMemory;
    EXPECT_FALSE(cluster::parseRoutingPolicy("nope", untouched));
    EXPECT_FALSE(cluster::parseRoutingPolicy("", untouched));
    EXPECT_EQ(untouched, cluster::RoutingPolicy::FutureMemory);
}

TEST(ClusterTest, LeastOutstandingBreaksTiesByLowestIndex)
{
    auto fleet = makeCluster(
        3, cluster::RoutingPolicy::LeastOutstandingTokens,
        SchedulerConfig::oracle());
    fleet->recordSubmissions(true);
    // Idle fleet: every submission loads the lowest-index instance
    // among the still-empty ones, giving the order 0, 1, 2.
    for (RequestId id = 0; id < 3; ++id)
        fleet->submitAt(makeRequest(id, 100, 10), 0);
    const auto &log = fleet->submissionLog();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].instance, 0u);
    EXPECT_EQ(log[1].instance, 1u);
    EXPECT_EQ(log[2].instance, 2u);
    fleet->run();
}

TEST(ClusterTest, FutureMemoryAccountingDrainsToZero)
{
    auto fleet = makeCluster(2, cluster::RoutingPolicy::FutureMemory,
                             SchedulerConfig::oracle());
    // With a warmed router history the predicted charge equals the
    // predictor's footprint: prompt + conditional expected output.
    const std::vector<TokenCount> history(200, 40);
    fleet->warmRoutingHistory(history);
    core::LengthPredictor reference(1000);
    reference.warm(history);

    fleet->submitAt(makeRequest(1, 100, 30, 500), 0);
    const TokenCount charge1 = reference.predictFootprint(100, 500);
    EXPECT_EQ(fleet->predictedLoads()[0] +
                  fleet->predictedLoads()[1],
              charge1);
    fleet->submitAt(makeRequest(2, 100, 30, 500), 0);
    // The second request lands on the other (uncharged) instance.
    EXPECT_GT(fleet->predictedLoads()[0], 0);
    EXPECT_GT(fleet->predictedLoads()[1], 0);

    const auto report = fleet->run();
    EXPECT_EQ(report.numFinished, 2u);
    // Completion events released every charge.
    EXPECT_EQ(fleet->predictedLoads()[0], 0);
    EXPECT_EQ(fleet->predictedLoads()[1], 0);
}

TEST(ClusterTest, FutureMemoryChargesTrackEveryCompletion)
{
    // Closed-loop traffic: charges accumulate and release across
    // many completion events; after the run the router must carry
    // zero residual predicted load on every instance.
    const auto dataset = workload::makeShareGpt(60, 5);
    auto fleet = makeCluster(3, cluster::RoutingPolicy::FutureMemory,
                             SchedulerConfig::oracle(), 8.0);
    workload::ClosedLoopClientPool clients(12, dataset, *fleet);
    fleet->setOnFinish(
        [&](const RequestSpec &spec, Tick tick) {
            clients.onRequestFinished(spec.id, tick);
        });
    clients.start();
    const auto report = fleet->run();
    EXPECT_EQ(report.numFinished, 60u);
    for (TokenCount load : fleet->predictedLoads())
        EXPECT_EQ(load, 0);
}

TEST(ClusterTest, MergedReportEqualsPerInstanceSums)
{
    const auto dataset = workload::makeShareGptO1(80, 9);
    auto fleet = makeCluster(4, cluster::RoutingPolicy::FutureMemory,
                             SchedulerConfig::oracle(), 16.0);
    workload::ClosedLoopClientPool clients(24, dataset, *fleet);
    fleet->setOnFinish(
        [&](const RequestSpec &spec, Tick tick) {
            clients.onRequestFinished(spec.id, tick);
        });
    clients.start();
    const auto merged = fleet->run();

    std::size_t finished = 0;
    std::int64_t decode_steps = 0;
    std::int64_t prefills = 0;
    TokenCount output_tokens = 0;
    std::size_t records = 0;
    Tick makespan = 0;
    for (std::size_t i = 0; i < fleet->numInstances(); ++i) {
        const auto report = fleet->instanceReport(i);
        finished += report.numFinished;
        decode_steps += report.decodeSteps;
        prefills += report.prefillIterations;
        output_tokens += report.totalOutputTokens;
        records += report.requests.size();
        makespan = std::max(makespan, report.makespan);
    }
    EXPECT_EQ(merged.numFinished, finished);
    EXPECT_EQ(merged.decodeSteps, decode_steps);
    EXPECT_EQ(merged.prefillIterations, prefills);
    EXPECT_EQ(merged.totalOutputTokens, output_tokens);
    EXPECT_EQ(merged.requests.size(), records);
    EXPECT_EQ(merged.makespan, makespan);
}

// --- Heterogeneous fleets ------------------------------------------------

TEST(ClusterTest, HeterogeneousCapacityBiasesLeastOutstanding)
{
    // Instance 0 has 4x the KV capacity: capacity-normalised
    // least-outstanding routing should hand it more of the traffic,
    // and the whole fleet must still finish everything.
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    engines.push_back(std::make_unique<engine::ServingEngine>(
        tinyPerf(16.0),
        core::makeScheduler(SchedulerConfig::oracle())));
    engines.push_back(std::make_unique<engine::ServingEngine>(
        tinyPerf(4.0),
        core::makeScheduler(SchedulerConfig::oracle())));
    cluster::ServingCluster fleet(
        std::move(engines),
        cluster::RoutingPolicy::LeastOutstandingTokens);

    const auto dataset = workload::makeShareGpt(60, 3);
    workload::ClosedLoopClientPool clients(16, dataset, fleet);
    fleet.setOnFinish(
        [&](const RequestSpec &spec, Tick tick) {
            clients.onRequestFinished(spec.id, tick);
        });
    clients.start();
    const auto report = fleet.run();
    EXPECT_EQ(report.numFinished, 60u);
    EXPECT_GT(fleet.routedCounts()[0], fleet.routedCounts()[1]);
}

TEST(ClusterTest, HeterogeneousSpeedShiftsClosedLoopTraffic)
{
    // Same capacity, 3x different iteration speed: the fast
    // instance turns requests around sooner, so the closed loop
    // routes more work to it over time.
    engine::EngineConfig slow;
    slow.timeFactor = 3.0;
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    engines.push_back(std::make_unique<engine::ServingEngine>(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle())));
    engines.push_back(std::make_unique<engine::ServingEngine>(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()), slow));
    cluster::ServingCluster fleet(
        std::move(engines),
        cluster::RoutingPolicy::LeastOutstandingTokens);

    const auto dataset = workload::makeShareGpt(60, 13);
    workload::ClosedLoopClientPool clients(8, dataset, fleet);
    fleet.setOnFinish(
        [&](const RequestSpec &spec, Tick tick) {
            clients.onRequestFinished(spec.id, tick);
        });
    clients.start();
    const auto report = fleet.run();
    EXPECT_EQ(report.numFinished, 60u);
    EXPECT_GT(fleet.routedCounts()[0], fleet.routedCounts()[1]);
    // The fast instance also retires its share sooner per request.
    EXPECT_GT(fleet.instanceReport(1).makespan, 0);
}

// --- Drain ---------------------------------------------------------------

TEST(ClusterDrainTest, DrainRedispatchesQueuedWorkAndFleetFinishes)
{
    auto fleet = makeCluster(3, cluster::RoutingPolicy::RoundRobin,
                             SchedulerConfig::oracle());
    fleet->recordSubmissions(true);
    // Prompts sized so an instance's round-robin share cannot be
    // admitted in one go — a queue must exist at the drain tick.
    for (RequestId id = 0; id < 30; ++id)
        fleet->submitAt(makeRequest(id, 500, 100), 0);
    // Drain instance 0 early: most of its round-robin share is
    // still queued and must re-enter the router.
    fleet->scheduleDrain(0, 1);
    const auto report = fleet->run();
    EXPECT_EQ(report.numFinished, 30u);
    EXPECT_EQ(report.requests.size(), 30u);

    // Re-dispatches append to the log; none may target instance 0
    // at or after the drain tick (initial submissions land at 0,
    // re-dispatches at the drain tick 1).
    const auto &log = fleet->submissionLog();
    EXPECT_GT(log.size(), 30u);
    std::size_t redispatched = 0;
    for (const auto &sub : log) {
        if (sub.when >= 1) {
            ++redispatched;
            EXPECT_NE(sub.instance, 0u) << "request "
                                        << sub.spec.id;
        }
    }
    EXPECT_EQ(redispatched, log.size() - 30);
    EXPECT_GT(redispatched, 0u);

    // Every request finished exactly once across the fleet, and
    // re-dispatch preserved the original arrival stamps: TTFT keeps
    // counting from the first submission, not the drain tick.
    std::vector<RequestId> ids;
    for (const auto &record : report.requests) {
        ids.push_back(record.id);
        EXPECT_EQ(record.arrival, 0) << "request " << record.id;
    }
    std::sort(ids.begin(), ids.end());
    for (RequestId id = 0; id < 30; ++id)
        EXPECT_EQ(ids[static_cast<std::size_t>(id)], id);
}

TEST(ClusterDrainTest, DrainClawsBackInFlightArrivals)
{
    auto fleet = makeCluster(2, cluster::RoutingPolicy::RoundRobin,
                             SchedulerConfig::oracle());
    // Two future arrivals routed before the drain fires: round-robin
    // sends one to each instance; instance 0's must be cancelled and
    // re-dispatched to instance 1 without ever touching instance 0.
    fleet->submitAt(makeRequest(1, 50, 10), 5000);
    fleet->submitAt(makeRequest(2, 50, 10), 5000);
    fleet->scheduleDrain(0, 100);
    const auto report = fleet->run();
    EXPECT_EQ(report.numFinished, 2u);
    EXPECT_EQ(fleet->instanceReport(0).numFinished, 0u);
    EXPECT_EQ(fleet->instanceReport(1).numFinished, 2u);
    // The clawed-back arrival kept its original arrival tick.
    for (const auto &record : report.requests)
        EXPECT_EQ(record.arrival, 5000);
}

// --- Report export ------------------------------------------------------

TEST(ReportIoTest, RequestsCsvHasHeaderAndRows)
{
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()));
    for (RequestId id = 0; id < 3; ++id)
        engine.submitAt(makeRequest(id, 30, 5), 0);
    const auto report = engine.run();

    std::ostringstream oss;
    metrics::writeRequestsCsv(oss, report,
                              metrics::SlaSpec::small7b13b());
    const std::string text = oss.str();
    EXPECT_NE(text.find("id,input_len"), std::string::npos);
    // Header + 3 rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
    EXPECT_NE(text.find(",1\n"), std::string::npos);  // compliant
}

TEST(ReportIoTest, SummaryJsonContainsKeyFields)
{
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()));
    engine.submitAt(makeRequest(1, 30, 5), 0);
    const auto report = engine.run();

    std::ostringstream oss;
    metrics::writeSummaryJson(oss, report,
                              metrics::SlaSpec::small7b13b());
    const std::string text = oss.str();
    EXPECT_NE(text.find("\"goodput_tok_s\""), std::string::npos);
    EXPECT_NE(text.find("\"num_finished\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"scheduler\""), std::string::npos);
}

TEST(ReportIoTest, MergeReportsAggregates)
{
    metrics::RunReport a;
    a.numFinished = 2;
    a.decodeSteps = 100;
    a.totalOutputTokens = 50;
    a.makespan = 500;
    a.avgConsumedMemory = 0.5;
    metrics::RunReport b;
    b.numFinished = 3;
    b.decodeSteps = 300;
    b.totalOutputTokens = 70;
    b.makespan = 900;
    b.avgConsumedMemory = 0.9;
    const auto merged = metrics::mergeReports({a, b}, "fleet");
    EXPECT_EQ(merged.numFinished, 5u);
    EXPECT_EQ(merged.decodeSteps, 400);
    EXPECT_EQ(merged.totalOutputTokens, 120);
    EXPECT_EQ(merged.makespan, 900);
    EXPECT_NEAR(merged.avgConsumedMemory,
                (0.5 * 100 + 0.9 * 300) / 400.0, 1e-12);
    EXPECT_EQ(merged.schedulerName, "fleet");
}

} // namespace
} // namespace lightllm
