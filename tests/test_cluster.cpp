/**
 * @file
 * Tests for the extensions beyond the paper's core: swap-based
 * eviction, the step-wise engine API, multi-instance routing (the
 * paper's future-work proposal), and report export.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "metrics/report_io.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

namespace lightllm {
namespace {

using core::SchedulerConfig;
using workload::RequestSpec;

model::PerfModel
tinyPerf(double mem_megabytes)
{
    model::ModelSpec spec;
    spec.name = "tiny";
    spec.numParams = 100'000;
    spec.numLayers = 2;
    spec.hiddenSize = 128;
    spec.numHeads = 2;
    spec.numKvHeads = 2;
    spec.headDim = 64;
    model::HardwareSpec hw;
    hw.name = "tiny-gpu";
    hw.memBytesPerDevice =
        static_cast<ByteCount>(mem_megabytes * 1e6);
    hw.memBandwidthPerDevice = 1e12;
    hw.flopsPerDevice = 1e14;
    hw.hostLinkBandwidth = 25e9;
    return model::PerfModel(spec, hw);
}

RequestSpec
makeRequest(RequestId id, TokenCount input, TokenCount output,
            TokenCount max_new = 4096)
{
    RequestSpec spec;
    spec.id = id;
    spec.inputLen = input;
    spec.outputLen = output;
    spec.maxNewTokens = max_new;
    return spec;
}

// --- Swap eviction ------------------------------------------------------

TEST(SwapEvictionTest, SwappedRequestsComplete)
{
    engine::EngineConfig config;
    config.evictionMode = engine::EvictionMode::Swap;
    engine::ServingEngine engine(
        tinyPerf(1.2),
        core::makeScheduler(SchedulerConfig::aggressive(1.0)),
        config);
    engine.submitAt(makeRequest(1, 300, 300, 600), 0);
    engine.submitAt(makeRequest(2, 300, 300, 600), 0);
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 2u);
    EXPECT_GE(report.evictionEvents, 1);
    EXPECT_GE(report.swapEvents, 2);  // out + in, at least
    EXPECT_GT(report.swappedTokens, 0);
    for (const auto &record : report.requests)
        EXPECT_EQ(record.outputTokens, 300);
    EXPECT_EQ(engine.kvManager().usedTokens(), 0);
}

TEST(SwapEvictionTest, RecomputeModeNeverSwaps)
{
    engine::ServingEngine engine(
        tinyPerf(1.2),
        core::makeScheduler(SchedulerConfig::aggressive(1.0)));
    engine.submitAt(makeRequest(1, 300, 300, 600), 0);
    engine.submitAt(makeRequest(2, 300, 300, 600), 0);
    const auto report = engine.run();
    EXPECT_GE(report.evictionEvents, 1);
    EXPECT_EQ(report.swapEvents, 0);
}

TEST(SwapEvictionTest, SwapAvoidsRecomputePrefills)
{
    // With swap, no recompute prefill runs: prefill iterations stay
    // at one per request despite evictions.
    auto run_mode = [&](engine::EvictionMode mode) {
        engine::EngineConfig config;
        config.evictionMode = mode;
        engine::ServingEngine engine(
            tinyPerf(1.2),
            core::makeScheduler(SchedulerConfig::aggressive(1.0)),
            config);
        engine.submitAt(makeRequest(1, 300, 300, 600), 0);
        engine.submitAt(makeRequest(2, 300, 300, 600), 0);
        return engine.run();
    };
    const auto swap = run_mode(engine::EvictionMode::Swap);
    const auto recompute = run_mode(engine::EvictionMode::Recompute);
    ASSERT_GE(swap.evictionEvents, 1);
    ASSERT_GE(recompute.evictionEvents, 1);
    EXPECT_EQ(swap.prefillIterations, 2);
    EXPECT_GT(recompute.prefillIterations, 2);
    EXPECT_GT(recompute.totalPrefillTokens,
              swap.totalPrefillTokens);
}

TEST(SwapEvictionTest, WorksUnderSplitFuse)
{
    engine::EngineConfig config;
    config.evictionMode = engine::EvictionMode::Swap;
    config.splitFuse = true;
    config.splitFuseChunk = 128;
    engine::ServingEngine engine(
        tinyPerf(1.2),
        core::makeScheduler(SchedulerConfig::aggressive(1.0)),
        config);
    engine.submitAt(makeRequest(1, 300, 300, 600), 0);
    engine.submitAt(makeRequest(2, 300, 300, 600), 0);
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 2u);
    EXPECT_EQ(report.totalOutputTokens, 600);
    EXPECT_EQ(engine.kvManager().usedTokens(), 0);
}

// --- Step-wise API ------------------------------------------------------

TEST(StepApiTest, StepOnceMatchesRun)
{
    auto build = [&]() {
        auto engine = std::make_unique<engine::ServingEngine>(
            tinyPerf(8.0),
            core::makeScheduler(SchedulerConfig::oracle()));
        for (RequestId id = 0; id < 5; ++id)
            engine->submitAt(makeRequest(id, 50, 20 + id), 0);
        return engine;
    };
    auto stepped = build();
    while (stepped->stepOnce()) {
    }
    const auto stepped_report = stepped->report();
    const auto run_report = build()->run();
    EXPECT_EQ(stepped_report.numFinished, run_report.numFinished);
    EXPECT_EQ(stepped_report.decodeSteps, run_report.decodeSteps);
    EXPECT_EQ(stepped_report.makespan, run_report.makespan);
}

TEST(StepApiTest, StepOnceReturnsFalseWhenDrained)
{
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()));
    EXPECT_FALSE(engine.stepOnce());
    engine.submitAt(makeRequest(1, 10, 2), 0);
    EXPECT_TRUE(engine.stepOnce());
    while (engine.stepOnce()) {
    }
    EXPECT_FALSE(engine.hasWork());
    EXPECT_FALSE(engine.hasPendingArrivals());
}

TEST(StepApiTest, OutstandingTokensTracksQueue)
{
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()));
    EXPECT_EQ(engine.outstandingTokens(), 0);
    engine.submitAt(makeRequest(1, 100, 10), 0);
    engine.stepOnce();  // deliver + admit + prefill + decode
    EXPECT_GT(engine.outstandingTokens(), 100);
}

TEST(StepApiTest, PredictedLoadUsesSchedulerEstimate)
{
    // The Past-Future scheduler's load estimate includes predicted
    // output growth, so it exceeds the plain outstanding footprint.
    auto config = SchedulerConfig::pastFutureDefault(0.05);
    config.pastFuture.initialHistory.assign(200, 400);
    engine::ServingEngine engine(tinyPerf(8.0),
                                 core::makeScheduler(config));
    engine.submitAt(makeRequest(1, 100, 300, 500), 0);
    engine.stepOnce();
    EXPECT_GT(engine.predictedLoadTokens(),
              engine.outstandingTokens());
}

// --- Cluster routing ------------------------------------------------------

std::unique_ptr<cluster::ServingCluster>
makeCluster(std::size_t instances, cluster::RoutingPolicy policy,
            SchedulerConfig scheduler_config,
            double mem_megabytes = 4.0)
{
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    for (std::size_t i = 0; i < instances; ++i) {
        engines.push_back(std::make_unique<engine::ServingEngine>(
            tinyPerf(mem_megabytes),
            core::makeScheduler(scheduler_config)));
    }
    return std::make_unique<cluster::ServingCluster>(
        std::move(engines), policy);
}

TEST(ClusterTest, RoundRobinSpreadsRequestsEvenly)
{
    auto fleet = makeCluster(4, cluster::RoutingPolicy::RoundRobin,
                             SchedulerConfig::oracle());
    for (RequestId id = 0; id < 40; ++id)
        fleet->submitAt(makeRequest(id, 50, 20), 0);
    const auto report = fleet->run();
    EXPECT_EQ(report.numFinished, 40u);
    for (std::size_t count : fleet->routedCounts())
        EXPECT_EQ(count, 10u);
}

TEST(ClusterTest, MergedReportConservesTokens)
{
    auto fleet = makeCluster(3, cluster::RoutingPolicy::RoundRobin,
                             SchedulerConfig::oracle());
    TokenCount expected = 0;
    for (RequestId id = 0; id < 30; ++id) {
        const auto spec = makeRequest(id, 50, 10 + id % 7);
        expected += spec.effectiveOutputLen();
        fleet->submitAt(spec, 0);
    }
    const auto report = fleet->run();
    EXPECT_EQ(report.totalOutputTokens, expected);
    EXPECT_EQ(report.requests.size(), 30u);
}

TEST(ClusterTest, LeastOutstandingAvoidsTheLoadedInstance)
{
    // Pre-load instance 0 via round-robin-free direct submission,
    // then check the router sends the next requests elsewhere.
    auto fleet = makeCluster(
        2, cluster::RoutingPolicy::LeastOutstandingTokens,
        SchedulerConfig::oracle());
    // First request goes to some instance; the second must go to
    // the other one because the first is now loaded.
    fleet->submitAt(makeRequest(1, 500, 200), 0);
    fleet->submitAt(makeRequest(2, 500, 200), 0);
    const auto &counts = fleet->routedCounts();
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 1u);
    fleet->run();
}

TEST(ClusterTest, FutureMemoryRoutingBalancesHeavyTails)
{
    // Heavy-tailed outputs: future-memory routing should spread
    // *predicted* work, ending with lower token imbalance than
    // round-robin on the same workload.
    const auto dataset = workload::makeShareGptO1(120, 31);
    auto route_with = [&](cluster::RoutingPolicy policy) {
        auto config = SchedulerConfig::pastFutureDefault(0.05);
        config.pastFuture.initialHistory.assign(500, 0);
        auto warm = workload::makeShareGptO1(500, 32);
        config.pastFuture.initialHistory.clear();
        for (const auto &request : warm.requests) {
            config.pastFuture.initialHistory.push_back(
                request.effectiveOutputLen());
        }
        auto fleet = makeCluster(4, policy, config, 16.0);
        workload::ClosedLoopClientPool clients(16, dataset, *fleet);
        fleet->setOnFinish(
            [&](const RequestSpec &spec, Tick tick) {
                clients.onRequestFinished(spec.id, tick);
            });
        clients.start();
        const auto report = fleet->run();
        EXPECT_EQ(report.numFinished, dataset.requests.size());
        return fleet->tokenImbalance();
    };
    const double future_memory =
        route_with(cluster::RoutingPolicy::FutureMemory);
    const double round_robin =
        route_with(cluster::RoutingPolicy::RoundRobin);
    EXPECT_LT(future_memory, round_robin);
}

TEST(ClusterTest, PolicyNames)
{
    EXPECT_STREQ(cluster::routingPolicyName(
                     cluster::RoutingPolicy::RoundRobin),
                 "round-robin");
    EXPECT_STREQ(cluster::routingPolicyName(
                     cluster::RoutingPolicy::FutureMemory),
                 "future-memory");
}

// --- Report export ------------------------------------------------------

TEST(ReportIoTest, RequestsCsvHasHeaderAndRows)
{
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()));
    for (RequestId id = 0; id < 3; ++id)
        engine.submitAt(makeRequest(id, 30, 5), 0);
    const auto report = engine.run();

    std::ostringstream oss;
    metrics::writeRequestsCsv(oss, report,
                              metrics::SlaSpec::small7b13b());
    const std::string text = oss.str();
    EXPECT_NE(text.find("id,input_len"), std::string::npos);
    // Header + 3 rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
    EXPECT_NE(text.find(",1\n"), std::string::npos);  // compliant
}

TEST(ReportIoTest, SummaryJsonContainsKeyFields)
{
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(SchedulerConfig::oracle()));
    engine.submitAt(makeRequest(1, 30, 5), 0);
    const auto report = engine.run();

    std::ostringstream oss;
    metrics::writeSummaryJson(oss, report,
                              metrics::SlaSpec::small7b13b());
    const std::string text = oss.str();
    EXPECT_NE(text.find("\"goodput_tok_s\""), std::string::npos);
    EXPECT_NE(text.find("\"num_finished\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"scheduler\""), std::string::npos);
}

TEST(ReportIoTest, MergeReportsAggregates)
{
    metrics::RunReport a;
    a.numFinished = 2;
    a.decodeSteps = 100;
    a.totalOutputTokens = 50;
    a.makespan = 500;
    a.avgConsumedMemory = 0.5;
    metrics::RunReport b;
    b.numFinished = 3;
    b.decodeSteps = 300;
    b.totalOutputTokens = 70;
    b.makespan = 900;
    b.avgConsumedMemory = 0.9;
    const auto merged = metrics::mergeReports({a, b}, "fleet");
    EXPECT_EQ(merged.numFinished, 5u);
    EXPECT_EQ(merged.decodeSteps, 400);
    EXPECT_EQ(merged.totalOutputTokens, 120);
    EXPECT_EQ(merged.makespan, 900);
    EXPECT_NEAR(merged.avgConsumedMemory,
                (0.5 * 100 + 0.9 * 300) / 400.0, 1e-12);
    EXPECT_EQ(merged.schedulerName, "fleet");
}

} // namespace
} // namespace lightllm
