/**
 * @file
 * Tests for the "past" half of the scheduler: the history window
 * and the empirical output-length distribution (Eq. 1).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.hh"
#include "core/history_window.hh"
#include "core/length_distribution.hh"

namespace lightllm {
namespace core {
namespace {

TEST(HistoryWindowTest, GrowsUntilCapacity)
{
    HistoryWindow window(3);
    EXPECT_TRUE(window.empty());
    window.push(1);
    window.push(2);
    EXPECT_EQ(window.size(), 2u);
    window.push(3);
    window.push(4);
    EXPECT_EQ(window.size(), 3u);
}

TEST(HistoryWindowTest, EvictsOldestFirst)
{
    HistoryWindow window(3);
    for (TokenCount value : {1, 2, 3, 4})
        window.push(value);
    auto snapshot = window.snapshot();
    std::sort(snapshot.begin(), snapshot.end());
    EXPECT_EQ(snapshot, (std::vector<TokenCount>{2, 3, 4}));
}

TEST(HistoryWindowTest, VersionBumpsOnEveryPush)
{
    HistoryWindow window(4);
    const auto v0 = window.version();
    window.push(5);
    EXPECT_GT(window.version(), v0);
}

TEST(HistoryWindowTest, SnapshotBeforeWrapOnlyValidEntries)
{
    HistoryWindow window(10);
    window.push(7);
    window.push(8);
    const auto snapshot = window.snapshot();
    ASSERT_EQ(snapshot.size(), 2u);
    EXPECT_EQ(snapshot[0], 7);
    EXPECT_EQ(snapshot[1], 8);
}

TEST(HistoryWindowTest, SeedFillsRequestedCount)
{
    HistoryWindow window(100);
    window.seed(4096, 32);
    EXPECT_EQ(window.size(), 32u);
    for (TokenCount value : window.snapshot())
        EXPECT_EQ(value, 4096);
}

TEST(HistoryWindowTest, SeedClampsToCapacity)
{
    HistoryWindow window(8);
    window.seed(100, 32);
    EXPECT_EQ(window.size(), 8u);
}

TEST(HistoryWindowTest, RealPushesReplaceSeedsFirst)
{
    HistoryWindow window(100);
    window.seed(4096, 4);
    window.push(10);
    window.push(20);
    // Window still holds 4 entries: 2 real, 2 remaining seeds.
    EXPECT_EQ(window.size(), 4u);
    auto snapshot = window.snapshot();
    std::sort(snapshot.begin(), snapshot.end());
    EXPECT_EQ(snapshot,
              (std::vector<TokenCount>{10, 20, 4096, 4096}));
    window.push(30);
    window.push(40);
    // All seeds gone after `seedCount` real completions.
    snapshot = window.snapshot();
    std::sort(snapshot.begin(), snapshot.end());
    EXPECT_EQ(snapshot, (std::vector<TokenCount>{10, 20, 30, 40}));
    // Further pushes append normally.
    window.push(50);
    EXPECT_EQ(window.size(), 5u);
}

TEST(HistoryWindowDeathTest, SeedOnNonEmptyPanics)
{
    HistoryWindow window(4);
    window.push(1);
    EXPECT_DEATH(window.seed(10, 2), "non-empty");
}

TEST(LengthDistributionTest, EmptyBehaviour)
{
    const LengthDistribution dist;
    EXPECT_TRUE(dist.empty());
    EXPECT_EQ(dist.maxLength(), 0);
    EXPECT_EQ(dist.quantile(0.5), 0);
    EXPECT_DOUBLE_EQ(dist.probGreater(0), 0.0);
    EXPECT_DOUBLE_EQ(dist.meanLength(), 0.0);
}

TEST(LengthDistributionTest, SampleOnlyRecordedValues)
{
    Rng rng(1);
    const LengthDistribution dist({5, 10, 15});
    for (int i = 0; i < 100; ++i) {
        const auto value = dist.sample(rng);
        EXPECT_TRUE(value == 5 || value == 10 || value == 15);
    }
}

TEST(LengthDistributionTest, SampleIsUniformOverWindow)
{
    Rng rng(2);
    const LengthDistribution dist({1, 2, 3, 4});
    int counts[5] = {};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        counts[dist.sample(rng)] += 1;
    for (int v = 1; v <= 4; ++v)
        EXPECT_NEAR(static_cast<double>(counts[v]) / n, 0.25, 0.01);
}

TEST(LengthDistributionTest, TailSampleExceedsThreshold)
{
    Rng rng(3);
    const LengthDistribution dist({10, 20, 30, 40, 50});
    for (int i = 0; i < 200; ++i) {
        const auto value = dist.sampleTail(rng, 25, 999);
        EXPECT_GT(value, 25);
        EXPECT_NE(value, 999);
    }
}

TEST(LengthDistributionTest, TailSampleFallsBackWhenEmpty)
{
    Rng rng(4);
    const LengthDistribution dist({10, 20});
    EXPECT_EQ(dist.sampleTail(rng, 20, 777), 777);
    EXPECT_EQ(dist.sampleTail(rng, 100, 777), 777);
}

TEST(LengthDistributionTest, TailSampleThresholdIsStrict)
{
    Rng rng(5);
    const LengthDistribution dist({10, 20});
    // Elements strictly greater than 10: only 20.
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(dist.sampleTail(rng, 10, 777), 20);
}

TEST(LengthDistributionTest, SampleTailAtIsQuantileOfTail)
{
    const LengthDistribution dist({10, 20, 30, 40});
    EXPECT_EQ(dist.sampleTailAt(0.0, 0, 999), 10);
    EXPECT_EQ(dist.sampleTailAt(0.99, 0, 999), 40);
    EXPECT_EQ(dist.sampleTailAt(0.5, 0, 999), 30);
    // Tail above 20 is {30, 40}.
    EXPECT_EQ(dist.sampleTailAt(0.0, 20, 999), 30);
    EXPECT_EQ(dist.sampleTailAt(0.6, 20, 999), 40);
    EXPECT_EQ(dist.sampleTailAt(0.0, 40, 999), 999);
}

TEST(LengthDistributionTest, SampleTailAtMonotoneInThreshold)
{
    // Quantile coupling requires: for fixed u, the prediction never
    // decreases as the request generates more tokens.
    const LengthDistribution dist({5, 9, 13, 20, 21, 34, 55, 80});
    for (double u : {0.0, 0.3, 0.7, 0.99}) {
        TokenCount previous = 0;
        for (TokenCount threshold = 0; threshold <= 80; ++threshold) {
            const auto value =
                dist.sampleTailAt(u, threshold, 1000);
            EXPECT_GE(value, previous)
                << "u=" << u << " threshold=" << threshold;
            previous = value;
        }
    }
}

TEST(LengthDistributionTest, SampleTailAtMonotoneInU)
{
    const LengthDistribution dist({5, 9, 13, 20, 21, 34, 55, 80});
    TokenCount previous = 0;
    for (double u = 0.0; u < 1.0; u += 0.05) {
        const auto value = dist.sampleTailAt(u, 10, 1000);
        EXPECT_GE(value, previous);
        previous = value;
    }
}

TEST(LengthDistributionTest, ProbGreaterCountsStrictly)
{
    const LengthDistribution dist({10, 20, 20, 30});
    EXPECT_DOUBLE_EQ(dist.probGreater(9), 1.0);
    EXPECT_DOUBLE_EQ(dist.probGreater(10), 0.75);
    EXPECT_DOUBLE_EQ(dist.probGreater(20), 0.25);
    EXPECT_DOUBLE_EQ(dist.probGreater(30), 0.0);
}

TEST(LengthDistributionTest, TailMeanMatchesHandComputation)
{
    const LengthDistribution dist({10, 20, 30, 40});
    EXPECT_EQ(dist.tailMean(0, 999), 25);
    EXPECT_EQ(dist.tailMean(20, 999), 35);
    EXPECT_EQ(dist.tailMean(30, 999), 40);
    EXPECT_EQ(dist.tailMean(40, 999), 999);
}

TEST(LengthDistributionTest, TailQuantileMatchesHandComputation)
{
    const LengthDistribution dist({10, 20, 30, 40});
    EXPECT_EQ(dist.tailQuantile(0, 0.5, 999), 20);
    EXPECT_EQ(dist.tailQuantile(0, 1.0, 999), 40);
    EXPECT_EQ(dist.tailQuantile(20, 0.5, 999), 30);
    EXPECT_EQ(dist.tailQuantile(40, 0.5, 999), 999);
}

TEST(LengthDistributionTest, QuantileNearestRank)
{
    const LengthDistribution dist({10, 20, 30, 40, 50});
    EXPECT_EQ(dist.quantile(0.0), 10);
    EXPECT_EQ(dist.quantile(0.5), 30);
    EXPECT_EQ(dist.quantile(1.0), 50);
}

TEST(LengthDistributionTest, MeanAndMax)
{
    const LengthDistribution dist({1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(dist.meanLength(), 2.5);
    EXPECT_EQ(dist.maxLength(), 4);
}

/**
 * Property: with u ~ Uniform, sampleTailAt reproduces the same law
 * as uniform tail sampling (the coupling is distribution-exact).
 */
class CouplingLawProperty
    : public ::testing::TestWithParam<TokenCount>
{};

TEST_P(CouplingLawProperty, MatchesDirectTailSampling)
{
    const TokenCount threshold = GetParam();
    std::vector<TokenCount> values;
    for (TokenCount v = 1; v <= 100; ++v)
        values.push_back(v);
    const LengthDistribution dist(values);

    Rng rng(123);
    double coupled_sum = 0.0;
    double direct_sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        coupled_sum += static_cast<double>(dist.sampleTailAt(
            rng.uniformDouble(), threshold, 0));
        direct_sum += static_cast<double>(
            dist.sampleTail(rng, threshold, 0));
    }
    EXPECT_NEAR(coupled_sum / n, direct_sum / n,
                1.0 + 0.01 * static_cast<double>(threshold));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CouplingLawProperty,
                         ::testing::Values(0, 10, 50, 90));

} // namespace
} // namespace core
} // namespace lightllm
