/**
 * @file
 * Unit tests for the four admission policies against crafted
 * scheduler contexts (no engine involved).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/aggressive_scheduler.hh"
#include "core/conservative_scheduler.hh"
#include "core/oracle_scheduler.hh"
#include "core/past_future_scheduler.hh"
#include "core/scheduler_factory.hh"

namespace lightllm {
namespace core {
namespace {

/** Convenience builder for contexts over value vectors. */
struct ContextBuilder
{
    TokenCount capacity = 1000;
    TokenCount used = 0;
    TokenCount overhead = 0;
    std::vector<RunningView> running;
    std::vector<WaitingView> waiting;

    ContextBuilder &
    addRunning(TokenCount prompt, TokenCount generated,
               TokenCount max_new, TokenCount true_out)
    {
        RunningView view;
        view.id = static_cast<RequestId>(1000 + running.size());
        view.promptLen = prompt;
        view.generatedLen = generated;
        view.maxNewTokens = max_new;
        view.trueOutputLen = true_out;
        running.push_back(view);
        used += prompt + generated;
        return *this;
    }

    ContextBuilder &
    addWaiting(TokenCount prompt, TokenCount max_new,
               TokenCount true_out, TokenCount generated = 0)
    {
        WaitingView view;
        view.id = static_cast<RequestId>(waiting.size());
        view.promptLen = prompt;
        view.generatedLen = generated;
        view.maxNewTokens = max_new;
        view.trueOutputLen = true_out;
        waiting.push_back(view);
        return *this;
    }

    SchedulerContext
    context() const
    {
        SchedulerContext ctx;
        ctx.capacityTokens = capacity;
        ctx.usedTokens = used;
        ctx.perRequestOverhead = overhead;
        ctx.running = running;
        ctx.waiting = waiting;
        return ctx;
    }
};

// --- Conservative -----------------------------------------------------

TEST(ConservativeSchedulerTest, AdmitsWhileWorstCaseFits)
{
    // Capacity 1000; each waiting request commits prompt 100 +
    // max_new 200 = 300 worst case: exactly 3 fit.
    ConservativeScheduler scheduler(1.0);
    ContextBuilder builder;
    for (int i = 0; i < 5; ++i)
        builder.addWaiting(100, 200, 50);
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 3u);
}

TEST(ConservativeSchedulerTest, RunningCommitmentCounts)
{
    ConservativeScheduler scheduler(1.0);
    ContextBuilder builder;
    // Running request commits 100 + 500 worst case even though it
    // generated only 10 tokens so far.
    builder.addRunning(100, 10, 500, 50);
    builder.addWaiting(100, 200, 50);
    builder.addWaiting(100, 200, 50);
    // 600 committed; one more 300 fits, the second does not.
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 1u);
}

TEST(ConservativeSchedulerTest, IgnoresActualOutputLengths)
{
    // True outputs are tiny, but the conservative policy plans for
    // max_new_tokens anyway — the memory waste of Table 1.
    ConservativeScheduler scheduler(1.0);
    ContextBuilder builder;
    for (int i = 0; i < 10; ++i)
        builder.addWaiting(100, 900, 1);
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 1u);
}

TEST(ConservativeSchedulerTest, OvercommitScalesCapacity)
{
    ConservativeScheduler scheduler(1.5);
    ContextBuilder builder;
    for (int i = 0; i < 6; ++i)
        builder.addWaiting(100, 200, 50);
    // Limit 1500: 5 x 300 fit.
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 5u);
}

TEST(ConservativeSchedulerTest, StopsAtFirstReject)
{
    // FCFS prefix: a huge head request blocks smaller ones behind.
    ConservativeScheduler scheduler(1.0);
    ContextBuilder builder;
    builder.addWaiting(900, 200, 50);  // does not fit
    builder.addWaiting(10, 10, 5);     // would fit, but behind
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 0u);
}

TEST(ConservativeSchedulerTest, NameReflectsOvercommit)
{
    EXPECT_EQ(ConservativeScheduler(1.0).name(), "Conservative");
    EXPECT_EQ(ConservativeScheduler(1.5).name(),
              "Conservative(overcommit=150%)");
}

// --- Aggressive -------------------------------------------------------

TEST(AggressiveSchedulerTest, AdmitsOnCurrentFootprintOnly)
{
    // Capacity 1000, watermark 0.9 -> limit 900. Prompts of 100:
    // nine fit regardless of max_new_tokens.
    AggressiveScheduler scheduler(0.9);
    ContextBuilder builder;
    for (int i = 0; i < 12; ++i)
        builder.addWaiting(100, 4096, 2000);
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 9u);
}

TEST(AggressiveSchedulerTest, UsedTokensReduceBudget)
{
    AggressiveScheduler scheduler(0.9);
    ContextBuilder builder;
    builder.addRunning(300, 200, 4096, 2000);  // used 500
    for (int i = 0; i < 8; ++i)
        builder.addWaiting(100, 4096, 2000);
    // limit 900 - used 500 = 400 -> 4 prompts.
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 4u);
}

TEST(AggressiveSchedulerTest, RecomputeFootprintIncludesGenerated)
{
    AggressiveScheduler scheduler(1.0);
    ContextBuilder builder;
    builder.addWaiting(100, 4096, 2000, 850);  // evicted earlier
    builder.addWaiting(100, 4096, 2000);
    // First needs 950, second 100: both fit in 1000 exactly... the
    // second does not (950 + 100 > 1000).
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 1u);
}

TEST(AggressiveSchedulerTest, WatermarkBoundsAreValidated)
{
    EXPECT_DEATH(AggressiveScheduler(0.0), "watermark");
    EXPECT_DEATH(AggressiveScheduler(1.5), "watermark");
}

// --- Oracle -----------------------------------------------------------

TEST(OracleSchedulerTest, UsesTrueLengthsExactly)
{
    OracleScheduler scheduler;
    ContextBuilder builder;
    builder.capacity = 34;
    // Known from the future-memory hand computation: two fresh
    // requests with prompts 10/20 and true outputs 4/2 peak at 34.
    builder.addWaiting(10, 100, 4);
    builder.addWaiting(20, 100, 2);
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 2u);

    builder.capacity = 33;  // one token short
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 1u);
}

TEST(OracleSchedulerTest, AccountsPerRequestOverhead)
{
    OracleScheduler scheduler;
    ContextBuilder builder;
    builder.capacity = 34;
    builder.overhead = 8;
    builder.addWaiting(10, 100, 4);
    builder.addWaiting(20, 100, 2);
    // Peak 34 + 2 requests x 8 overhead > 34: only one admitted
    // (peak 14 + 8 <= 34).
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 1u);
}

TEST(OracleSchedulerTest, CapsTrueOutputAtMaxNewTokens)
{
    OracleScheduler scheduler;
    ContextBuilder builder;
    builder.capacity = 120;
    // True output 500 but cap 100: peak = 10 + 100 = 110 <= 120.
    builder.addWaiting(10, 100, 500);
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 1u);
}

TEST(OracleSchedulerTest, EmptyQueueShortCircuits)
{
    OracleScheduler scheduler;
    ContextBuilder builder;
    builder.addRunning(10, 5, 100, 50);
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 0u);
}

// --- Past-Future ------------------------------------------------------

PastFutureParams
testParams()
{
    PastFutureParams params;
    params.windowSize = 100;
    params.reservedRatio = 0.0;
    params.admissionTrials = 1;
    params.seed = 7;
    return params;
}

/** Feed n finished requests of constant length into the window. */
void
feedHistory(PastFutureScheduler &scheduler, TokenCount length,
            int count, RequestId base_id = 100000)
{
    for (int i = 0; i < count; ++i)
        scheduler.onRequestFinished(base_id + i, length);
}

TEST(PastFutureSchedulerTest, ColdStartWithoutSeedUsesMaxNewTokens)
{
    // Empty history: predictions fall back to max_new_tokens, which
    // is the conservative worst case.
    PastFutureScheduler scheduler(testParams());
    ContextBuilder builder;
    builder.capacity = 1000;
    for (int i = 0; i < 5; ++i)
        builder.addWaiting(100, 200, 50);
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 3u);
}

TEST(PastFutureSchedulerTest, LearnsShortOutputsFromHistory)
{
    // After observing that outputs are ~20 tokens, the scheduler
    // admits far more than the worst case would allow.
    PastFutureScheduler scheduler(testParams());
    feedHistory(scheduler, 20, 100);
    ContextBuilder builder;
    builder.capacity = 1000;
    for (int i = 0; i < 10; ++i)
        builder.addWaiting(100, 4096, 20);
    // Each request peaks around 120; staggering aside, at least 6
    // should fit (vs 0 for conservative with max_new 4096).
    EXPECT_GE(scheduler.selectAdmissions(builder.context()), 6u);
}

TEST(PastFutureSchedulerTest, ReservedRatioShrinksAdmissions)
{
    PastFutureParams params = testParams();
    PastFutureScheduler no_reserve(params);
    params.reservedRatio = 0.5;
    PastFutureScheduler big_reserve(params);
    feedHistory(no_reserve, 100, 100);
    feedHistory(big_reserve, 100, 100);

    ContextBuilder builder;
    builder.capacity = 1000;
    for (int i = 0; i < 10; ++i)
        builder.addWaiting(100, 200, 100);
    const auto generous =
        no_reserve.selectAdmissions(builder.context());
    const auto cautious =
        big_reserve.selectAdmissions(builder.context());
    EXPECT_LT(cautious, generous);
    EXPECT_GE(cautious, 1u);
}

TEST(PastFutureSchedulerTest, SeedMakesColdStartConservative)
{
    PastFutureParams params = testParams();
    params.seedOutputLen = 4096;
    params.seedCount = 32;
    PastFutureScheduler scheduler(params);
    ContextBuilder builder;
    builder.capacity = 10000;
    for (int i = 0; i < 10; ++i)
        builder.addWaiting(100, 4096, 20);
    // Predictions are 4096 -> ~2 requests (peak ~4196 each, with
    // staggering the formula admits at most a few).
    EXPECT_LE(scheduler.selectAdmissions(builder.context()), 4u);
}

TEST(PastFutureSchedulerTest, InitialHistoryWarmStart)
{
    PastFutureParams params = testParams();
    params.seedOutputLen = 4096;
    params.seedCount = 32;
    params.initialHistory.assign(100, 20);
    PastFutureScheduler scheduler(params);
    ContextBuilder builder;
    builder.capacity = 1000;
    for (int i = 0; i < 10; ++i)
        builder.addWaiting(100, 4096, 20);
    // Warm history (outputs ~20) overrides the max_new seed.
    EXPECT_GE(scheduler.selectAdmissions(builder.context()), 6u);
}

TEST(PastFutureSchedulerTest, TailPredictionRespectsGeneratedLength)
{
    // A running request that already generated 80 tokens must be
    // predicted > 80 even though most history is shorter.
    PastFutureParams params = testParams();
    PastFutureScheduler scheduler(params);
    feedHistory(scheduler, 20, 90);
    feedHistory(scheduler, 100, 10, 200000);

    ContextBuilder builder;
    builder.capacity = 10000;
    builder.addRunning(50, 80, 4096, 100);
    builder.addWaiting(50, 4096, 20);
    scheduler.selectAdmissions(builder.context());
    const auto estimate =
        scheduler.estimateFutureMemory(builder.context());
    // Peak >= running resident (130) + remaining to at least 100.
    EXPECT_GE(estimate, 150);
}

TEST(PastFutureSchedulerTest, EstimateCoversResidentMemory)
{
    PastFutureScheduler scheduler(testParams());
    feedHistory(scheduler, 50, 100);
    ContextBuilder builder;
    builder.addRunning(100, 10, 200, 50);
    builder.addRunning(200, 20, 200, 50);
    const auto estimate =
        scheduler.estimateFutureMemory(builder.context());
    EXPECT_GE(estimate, 330);
}

TEST(PastFutureSchedulerTest, WindowIsFifoBounded)
{
    PastFutureParams params = testParams();
    params.windowSize = 10;
    PastFutureScheduler scheduler(params);
    feedHistory(scheduler, 4000, 10);
    // New, shorter completions must flush the old long ones.
    feedHistory(scheduler, 20, 10, 500000);
    ContextBuilder builder;
    builder.capacity = 1000;
    for (int i = 0; i < 10; ++i)
        builder.addWaiting(100, 4096, 20);
    EXPECT_GE(scheduler.selectAdmissions(builder.context()), 6u);
}

TEST(PastFutureSchedulerTest, DeterministicGivenSeed)
{
    for (int round = 0; round < 2; ++round) {
        PastFutureScheduler a(testParams());
        PastFutureScheduler b(testParams());
        feedHistory(a, 60, 100);
        feedHistory(b, 60, 100);
        ContextBuilder builder;
        builder.capacity = 2000;
        builder.addRunning(100, 10, 300, 70);
        for (int i = 0; i < 12; ++i)
            builder.addWaiting(80, 300, 60);
        EXPECT_EQ(a.selectAdmissions(builder.context()),
                  b.selectAdmissions(builder.context()));
    }
}

TEST(PastFutureSchedulerTest, EmptyQueueDoesNoWork)
{
    PastFutureScheduler scheduler(testParams());
    ContextBuilder builder;
    builder.addRunning(100, 10, 300, 70);
    EXPECT_EQ(scheduler.selectAdmissions(builder.context()), 0u);
}

TEST(PastFutureSchedulerTest, PerRequestOverheadShrinksAdmissions)
{
    PastFutureParams params = testParams();
    PastFutureScheduler no_overhead(params);
    PastFutureScheduler with_overhead(params);
    feedHistory(no_overhead, 100, 100);
    feedHistory(with_overhead, 100, 100);

    ContextBuilder builder;
    builder.capacity = 1000;
    for (int i = 0; i < 10; ++i)
        builder.addWaiting(100, 200, 100);
    const auto base =
        no_overhead.selectAdmissions(builder.context());
    builder.overhead = 64;
    const auto padded =
        with_overhead.selectAdmissions(builder.context());
    EXPECT_LT(padded, base);
}

/** All prediction modes admit something sane on a warm window. */
class PredictionModeProperty
    : public ::testing::TestWithParam<PredictionMode>
{};

TEST_P(PredictionModeProperty, AdmitsWithinCapacity)
{
    PastFutureParams params = testParams();
    params.predictionMode = GetParam();
    params.admissionTrials = 4;
    PastFutureScheduler scheduler(params);
    feedHistory(scheduler, 50, 100);

    ContextBuilder builder;
    builder.capacity = 2000;
    for (int i = 0; i < 30; ++i)
        builder.addWaiting(50, 200, 50);
    const auto admitted =
        scheduler.selectAdmissions(builder.context());
    EXPECT_GE(admitted, 1u);
    // Sanity upper bound: resident-at-peak of admitted requests
    // cannot exceed capacity under the scheduler's own model
    // (prompt 50 + predicted ~50 each -> at most 20 requests).
    EXPECT_LE(admitted, 20u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, PredictionModeProperty,
    ::testing::Values(PredictionMode::StickySample,
                      PredictionMode::PerStepSample,
                      PredictionMode::TailMean,
                      PredictionMode::TailQuantile));

// --- Factory ----------------------------------------------------------

TEST(SchedulerFactoryTest, BuildsEveryKind)
{
    EXPECT_EQ(makeScheduler(SchedulerConfig::conservative())->name(),
              "Conservative");
    EXPECT_EQ(makeScheduler(SchedulerConfig::aggressive(0.9))->name(),
              "Aggressive(watermark=90%)");
    EXPECT_EQ(
        makeScheduler(SchedulerConfig::pastFutureDefault(0.05))
            ->name(),
        "Past-Future(reserved=5%)");
    EXPECT_EQ(makeScheduler(SchedulerConfig::oracle())->name(),
              "Theoretical-optimum");
}

TEST(SchedulerFactoryTest, KindNames)
{
    EXPECT_STREQ(schedulerKindName(SchedulerKind::Conservative),
                 "conservative");
    EXPECT_STREQ(schedulerKindName(SchedulerKind::Aggressive),
                 "aggressive");
    EXPECT_STREQ(schedulerKindName(SchedulerKind::PastFuture),
                 "past-future");
    EXPECT_STREQ(schedulerKindName(SchedulerKind::Oracle), "oracle");
}

} // namespace
} // namespace core
} // namespace lightllm
