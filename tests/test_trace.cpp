/**
 * @file
 * Flight-recorder coverage: ring semantics, export validity, the
 * read-only contract (traced reports byte-identical to untraced),
 * determinism across --sim-threads, and the CLI surface.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "cli_scenario.hh"
#include "metrics/report_io.hh"
#include "trace/trace_event.hh"
#include "trace/trace_recorder.hh"
#include "trace/trace_ring.hh"

namespace lightllm {
namespace {

trace::TraceEvent
makeEvent(Tick tick, std::int64_t a0)
{
    trace::TraceEvent event;
    event.tick = tick;
    event.arg0 = a0;
    event.name = trace::TraceName::BatchSize;
    event.phase = trace::TracePhase::Counter;
    return event;
}

TEST(TraceRing, OverwritesOldestAndCountsDrops)
{
    trace::TraceRing ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    for (std::int64_t i = 0; i < 10; ++i)
        ring.push(makeEvent(i, i));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 6u);
    // The survivors are the newest four, in recording order.
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.at(i).arg0,
                  static_cast<std::int64_t>(6 + i));
}

TEST(TraceDetail, ParsesEveryLevelAndRejectsJunk)
{
    trace::TraceDetail detail = trace::TraceDetail::Full;
    ASSERT_TRUE(trace::parseTraceDetail("off", &detail));
    EXPECT_EQ(detail, trace::TraceDetail::Off);
    ASSERT_TRUE(trace::parseTraceDetail("requests", &detail));
    EXPECT_EQ(detail, trace::TraceDetail::Requests);
    ASSERT_TRUE(trace::parseTraceDetail("steps", &detail));
    EXPECT_EQ(detail, trace::TraceDetail::Steps);
    ASSERT_TRUE(trace::parseTraceDetail("full", &detail));
    EXPECT_EQ(detail, trace::TraceDetail::Full);
    EXPECT_FALSE(trace::parseTraceDetail("verbose", &detail));
    EXPECT_STREQ(trace::traceDetailName(trace::TraceDetail::Steps),
                 "steps");
}

TEST(TraceRecorder, SinkCreationFollowsDetail)
{
    trace::TraceRecorder off(trace::TraceConfig{
        trace::TraceDetail::Off, 64});
    EXPECT_EQ(off.createEngine("engine-0"), nullptr);
    EXPECT_EQ(off.createShard("shard-0"), nullptr);

    trace::TraceRecorder requests(trace::TraceConfig{
        trace::TraceDetail::Requests, 64});
    trace::EngineTrace *sink = requests.createEngine("engine-0");
    ASSERT_NE(sink, nullptr);
    EXPECT_FALSE(sink->stepsEnabled());
    EXPECT_EQ(requests.createShard("shard-0"), nullptr);

    trace::TraceRecorder full(trace::TraceConfig{
        trace::TraceDetail::Full, 64});
    ASSERT_NE(full.createEngine("a"), nullptr);
    EXPECT_TRUE(full.createEngine("b")->stepsEnabled());
    EXPECT_NE(full.createShard("coordinator"), nullptr);
}

// --- Scenario helpers ---------------------------------------------

cli::Scenario
smallScenario(std::vector<const char *> args)
{
    args.insert(args.begin(), "pfs_cli");
    cli::CliOptions options;
    const std::string error = cli::parseCliArgs(
        static_cast<int>(args.size()), args.data(), options);
    EXPECT_EQ(error, "");
    return cli::assembleScenario(options);
}

std::string
reportText(const metrics::RunReport &report,
           const metrics::SlaSpec &sla)
{
    std::ostringstream oss;
    metrics::writeSummaryJson(oss, report, sla);
    metrics::writeRequestsCsv(oss, report, sla);
    return oss.str();
}

std::string
chromeJson(const trace::TraceRecorder &recorder)
{
    std::ostringstream oss;
    recorder.writeChromeJson(oss);
    return oss.str();
}

/** Count non-overlapping occurrences of `needle`. */
std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = text.find(needle);
         pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++count;
    return count;
}

/**
 * Structural JSON validity without a parser: balanced braces and
 * brackets (no trace string contains either), every event line
 * carries the mandatory Chrome fields, and span phases pair up.
 */
void
expectValidChromeJson(const std::string &json)
{
    std::int64_t braces = 0;
    std::int64_t brackets = 0;
    for (const char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
        ASSERT_GE(braces, 0);
        ASSERT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);

    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""),
              countOccurrences(json, "\"ph\":\"E\""));

    std::istringstream lines(json);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find("\"ph\"") == std::string::npos)
            continue;
        EXPECT_NE(line.find("\"pid\""), std::string::npos) << line;
        EXPECT_NE(line.find("\"tid\""), std::string::npos) << line;
        EXPECT_NE(line.find("\"name\""), std::string::npos) << line;
        // Every non-metadata event is timestamped.
        if (line.find("\"ph\":\"M\"") == std::string::npos) {
            EXPECT_NE(line.find("\"ts\""), std::string::npos)
                << line;
        }
    }
}

TEST(TraceRun, FullDetailLeavesReportByteIdentical)
{
    const std::vector<const char *> args = {
        "--workload", "dist1", "--requests", "48", "--rate", "30",
        "--split-fuse", "--max-batch", "8"};
    const cli::Scenario scenario = smallScenario(args);

    const metrics::RunReport untraced =
        cli::runScenario(scenario, nullptr);

    // Full detail on a long-output workload emits ~100k events;
    // the ring must hold them all for the CSV row count below.
    trace::TraceRecorder recorder(trace::TraceConfig{
        trace::TraceDetail::Full, 1 << 18});
    const metrics::RunReport traced =
        cli::runScenario(scenario, &recorder);

    // Tracing observes; it must never steer.
    EXPECT_EQ(reportText(untraced, scenario.sla),
              reportText(traced, scenario.sla));

    const std::string json = chromeJson(recorder);
    expectValidChromeJson(json);
    EXPECT_GT(countOccurrences(json, "\"ph\":\"B\""), 0u);
    EXPECT_GT(countOccurrences(json, "\"queued\""), 0u);
    EXPECT_GT(countOccurrences(json, "\"decode\""), 0u);
    // Step detail is on: engine counters must appear.
    EXPECT_GT(countOccurrences(json, "\"ph\":\"C\""), 0u);
    EXPECT_GT(countOccurrences(json, "\"kv_future_pred\""), 0u);

    std::ostringstream csv;
    recorder.writeRequestCsv(csv);
    const std::string timeline = csv.str();
    EXPECT_NE(timeline.find("request_id,engine,queued_us"),
              std::string::npos);
    // Header plus one row per finished request.
    EXPECT_EQ(countOccurrences(timeline, "\n"),
              1u + untraced.numFinished);
}

TEST(TraceRun, FleetTraceIdenticalAcrossSimThreads)
{
    std::vector<const char *> args = {
        "--workload", "dist1", "--requests", "96", "--rate", "60",
        "--instances", "3", "--sim-threads", "1"};
    const cli::Scenario single = smallScenario(args);
    args.back() = "4";
    const cli::Scenario sharded = smallScenario(args);

    // Steps detail: everything but the wall-clock shard profile,
    // which is the one legitimately thread-dependent section.
    trace::TraceRecorder one(trace::TraceConfig{
        trace::TraceDetail::Steps, 1 << 16});
    const metrics::RunReport report_one =
        cli::runScenario(single, &one);
    trace::TraceRecorder four(trace::TraceConfig{
        trace::TraceDetail::Steps, 1 << 16});
    const metrics::RunReport report_four =
        cli::runScenario(sharded, &four);

    EXPECT_EQ(reportText(report_one, single.sla),
              reportText(report_four, sharded.sla));
    EXPECT_EQ(chromeJson(one), chromeJson(four));
}

TEST(TraceRun, ShardProfilerSamplesAppearAtFullDetail)
{
    const cli::Scenario scenario = smallScenario(
        {"--workload", "dist1", "--requests", "48", "--rate", "60",
         "--instances", "4", "--sim-threads", "2"});

    trace::TraceRecorder recorder(trace::TraceConfig{
        trace::TraceDetail::Full, 1 << 16});
    cli::runScenario(scenario, &recorder);

    ASSERT_EQ(recorder.shards().size(), 3u); // coordinator + 2
    EXPECT_EQ(recorder.shards().front().label(), "coordinator");
    const std::string json = chromeJson(recorder);
    expectValidChromeJson(json);
    EXPECT_GT(countOccurrences(json, "\"shard_compute\""), 0u);
    EXPECT_GT(countOccurrences(json, "\"shard_barrier\""), 0u);
    EXPECT_GT(countOccurrences(json, "\"mailbox_commit\""), 0u);
}

TEST(TraceRun, TinyRingWrapsWithoutBreakingExport)
{
    const cli::Scenario scenario = smallScenario(
        {"--workload", "dist1", "--requests", "64", "--rate",
         "40"});

    trace::TraceRecorder recorder(trace::TraceConfig{
        trace::TraceDetail::Full, 128});
    cli::runScenario(scenario, &recorder);

    EXPECT_GT(recorder.totalDropped(), 0u);
    // Wraparound orphans span halves; the exporter must still emit
    // balanced, well-formed JSON.
    expectValidChromeJson(chromeJson(recorder));
}

TEST(TraceRun, DisaggAttachCoversBothPools)
{
    const cli::Scenario scenario = smallScenario(
        {"--workload", "dist1", "--requests", "32", "--rate", "40",
         "--disagg", "--prefill-instances", "2",
         "--decode-instances", "2"});

    trace::TraceRecorder recorder(trace::TraceConfig{
        trace::TraceDetail::Requests, 1 << 14});
    cli::runScenario(scenario, &recorder);

    ASSERT_EQ(recorder.engines().size(), 4u);
    EXPECT_EQ(recorder.engines()[0].label(), "prefill-0");
    EXPECT_EQ(recorder.engines()[2].label(), "decode-0");
    const std::string json = chromeJson(recorder);
    expectValidChromeJson(json);
    EXPECT_GT(countOccurrences(json, "\"migrated\""), 0u);
}

// --- CLI surface --------------------------------------------------

std::string
parseArgs(std::vector<const char *> args, cli::CliOptions &options)
{
    args.insert(args.begin(), "pfs_cli");
    return cli::parseCliArgs(static_cast<int>(args.size()),
                             args.data(), options);
}

TEST(TraceCli, FlagValidation)
{
    cli::CliOptions options;
    EXPECT_EQ(parseArgs({"--trace-out", "/tmp/x.json",
                         "--trace-detail", "full",
                         "--trace-limit", "1024"},
                        options),
              "");
    EXPECT_EQ(options.traceOut, "/tmp/x.json");
    EXPECT_EQ(options.traceDetail, "full");
    EXPECT_EQ(options.traceLimit, 1024u);

    cli::CliOptions bad;
    EXPECT_NE(parseArgs({"--trace-out", "/tmp/x.json",
                         "--trace-detail", "verbose"},
                        bad),
              "");
    bad = {};
    // Detail without a destination records into the void.
    EXPECT_NE(parseArgs({"--trace-detail", "steps"}, bad), "");
    bad = {};
    EXPECT_NE(parseArgs({"--trace-limit", "4096"}, bad), "");
    bad = {};
    EXPECT_NE(parseArgs({"--trace-out", "/tmp/x.json",
                         "--trace-limit", "0"},
                        bad),
              "");
    bad = {};
    // "--trace-detail off" is an explicit no-op, not an error.
    EXPECT_EQ(parseArgs({"--trace-detail", "off"}, bad), "");
}

TEST(TraceCli, AssemblyDefaultsAndWiring)
{
    cli::CliOptions options;
    ASSERT_EQ(parseArgs({"--requests", "8", "--trace-out",
                         "/tmp/x.json"},
                        options),
              "");
    const cli::Scenario scenario = cli::assembleScenario(options);
    EXPECT_EQ(scenario.traceOut, "/tmp/x.json");
    // --trace-out alone defaults to request-level capture.
    EXPECT_EQ(scenario.traceDetail, trace::TraceDetail::Requests);
    EXPECT_EQ(scenario.traceLimit, 65536u);

    cli::CliOptions full;
    ASSERT_EQ(parseArgs({"--requests", "8", "--trace-out",
                         "/tmp/x.json", "--trace-detail", "full",
                         "--trace-limit", "2048"},
                        full),
              "");
    const cli::Scenario wired = cli::assembleScenario(full);
    EXPECT_EQ(wired.traceDetail, trace::TraceDetail::Full);
    EXPECT_EQ(wired.traceLimit, 2048u);

    cli::CliOptions off;
    ASSERT_EQ(parseArgs({"--requests", "8"}, off), "");
    EXPECT_EQ(cli::assembleScenario(off).traceDetail,
              trace::TraceDetail::Off);
}

} // namespace
} // namespace lightllm
