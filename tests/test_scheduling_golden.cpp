/**
 * @file
 * Golden equivalence suite for the decision-based scheduling
 * pipeline.
 *
 * The FCFS queue policy is a compatibility adapter: it must
 * reproduce the seed's count-based FCFS-prefix scheduling
 * bit-identically. Two independent proofs:
 *
 *  1. Golden metrics: full scenarios whose per-scheduler metrics
 *     were captured from the pre-refactor binary (same workload,
 *     seed, and platform); the pipeline must match them exactly —
 *     including the eviction-heavy Past-Future run, whose RNG
 *     consumption depends on every admission test performed.
 *
 *  2. Lockstep: a LegacyPrefixPolicy re-implements the seed's
 *     count-then-prefix semantics on top of selectAdmissions();
 *     engines driven by it and by the real pipeline must produce
 *     identical per-request records.
 *
 * Plus the headline capability test: on a bursty heavy-tailed
 * workload, predicted-SJF and EDF beat FCFS goodput under the
 * Past-Future scheduler.
 */

#include <gtest/gtest.h>

#include <string>

#include "cli_scenario.hh"
#include "core/scheduling_policy.hh"
#include "engine/serving_engine.hh"
#include "workload/client_pool.hh"

namespace lightllm {
namespace {

cli::CliOptions
heavyOptions(const std::string &scheduler)
{
    cli::CliOptions options;
    options.workload = "sharegpt-o1";
    options.requests = 160;
    options.clients = 96;
    options.seed = 42;
    options.scheduler = scheduler;
    return options;
}

/** Golden metrics captured from the pre-refactor (seed) binary. */
struct Golden
{
    const char *scheduler;
    std::int64_t decodeSteps;
    std::int64_t prefillIterations;
    std::int64_t evictionEvents;
    std::size_t requestsEvicted;
    double makespanSeconds;
    double goodputTokPerSec;
};

class GoldenEquivalence : public ::testing::TestWithParam<Golden>
{};

TEST_P(GoldenEquivalence, FcfsPipelineReproducesSeedMetrics)
{
    const Golden &golden = GetParam();
    const cli::Scenario scenario =
        cli::assembleScenario(heavyOptions(golden.scheduler));
    const metrics::RunReport report = cli::runScenario(scenario);

    EXPECT_EQ(report.numFinished, 160u);
    EXPECT_EQ(report.decodeSteps, golden.decodeSteps);
    EXPECT_EQ(report.prefillIterations, golden.prefillIterations);
    EXPECT_EQ(report.evictionEvents, golden.evictionEvents);
    EXPECT_EQ(report.requestsEvicted, golden.requestsEvicted);
    EXPECT_EQ(report.totalOutputTokens, 333004);
    EXPECT_NEAR(ticksToSeconds(report.makespan),
                golden.makespanSeconds, 5e-4);
    EXPECT_NEAR(report.goodputTokensPerSec(scenario.sla),
                golden.goodputTokPerSec, 5e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Seed, GoldenEquivalence,
    ::testing::Values(
        Golden{"past_future", 12104, 183, 23, 16, 347.575, 74.623},
        Golden{"aggressive", 9711, 199, 39, 31, 319.855, 323.628},
        Golden{"conservative", 28775, 160, 0, 0, 542.269, 51.272},
        Golden{"oracle", 9849, 160, 0, 0, 319.408, 316.808}),
    [](const auto &info) {
        return std::string(info.param.scheduler);
    });

TEST(GoldenEquivalenceLight, AllSchedulersMatchSeedOnLightLoad)
{
    // Under light load every scheduler admits everything; the seed
    // binary reported identical metrics for all four.
    for (const char *scheduler :
         {"past_future", "aggressive", "conservative", "oracle"}) {
        cli::CliOptions options;
        options.workload = "sharegpt";
        options.requests = 96;
        options.clients = 16;
        options.seed = 42;
        options.scheduler = scheduler;
        const cli::Scenario scenario =
            cli::assembleScenario(options);
        const metrics::RunReport report =
            cli::runScenario(scenario);
        EXPECT_EQ(report.numFinished, 96u) << scheduler;
        EXPECT_EQ(report.decodeSteps, 3646) << scheduler;
        EXPECT_EQ(report.evictionEvents, 0) << scheduler;
        EXPECT_NEAR(ticksToSeconds(report.makespan), 56.673, 5e-4)
            << scheduler;
        EXPECT_NEAR(report.goodputTokensPerSec(scenario.sla),
                    711.664, 5e-4)
            << scheduler;
    }
}

// --- Lockstep against the seed's count-based semantics ----------------

/** The seed scheduling path, verbatim: ask the admission policy for
 *  a count, admit that many requests from the queue front. */
class LegacyPrefixPolicy : public core::SchedulingPolicy
{
  public:
    explicit LegacyPrefixPolicy(
        std::unique_ptr<core::Scheduler> scheduler)
        : SchedulingPolicy(std::move(scheduler))
    {
    }

    void
    decideInto(const core::SchedulerContext &ctx,
               core::SchedulingDecision &out) override
    {
        out.admit.clear();
        out.evict.clear();
        if (ctx.waiting.empty())
            return;
        std::size_t count = admission().selectAdmissions(ctx);
        if (count == 0 && ctx.running.empty())
            count = 1;  // the seed engine's forced progress
        count = std::min(count, ctx.waiting.size());
        for (std::size_t i = 0; i < count; ++i)
            out.admit.push_back(ctx.waiting[i].id);
    }
};

metrics::RunReport
runWithPolicy(const cli::Scenario &scenario,
              std::unique_ptr<core::SchedulingPolicy> policy)
{
    engine::ServingEngine engine(scenario.perf, std::move(policy),
                                 scenario.engineConfig);
    workload::ClosedLoopClientPool clients(
        scenario.clients, scenario.dataset, engine,
        scenario.thinkTime);
    engine.setOnFinish(
        [&](const workload::RequestSpec &spec, Tick tick) {
            clients.onRequestFinished(spec.id, tick);
        });
    clients.start();
    return engine.run(scenario.limits);
}

TEST(LegacyLockstep, FcfsPipelineMatchesCountBasedPathExactly)
{
    for (const char *scheduler :
         {"past_future", "aggressive", "conservative", "oracle"}) {
        const cli::Scenario scenario =
            cli::assembleScenario(heavyOptions(scheduler));

        metrics::RunReport pipeline = runWithPolicy(
            scenario, core::makeSchedulingPolicy(
                          scenario.schedulerConfig));
        metrics::RunReport legacy = runWithPolicy(
            scenario,
            std::make_unique<LegacyPrefixPolicy>(
                core::makeScheduler(scenario.schedulerConfig)));

        ASSERT_EQ(pipeline.requests.size(), legacy.requests.size())
            << scheduler;
        EXPECT_EQ(pipeline.makespan, legacy.makespan) << scheduler;
        EXPECT_EQ(pipeline.decodeSteps, legacy.decodeSteps)
            << scheduler;
        EXPECT_EQ(pipeline.evictionEvents, legacy.evictionEvents)
            << scheduler;
        for (std::size_t i = 0; i < pipeline.requests.size(); ++i) {
            const auto &a = pipeline.requests[i];
            const auto &b = legacy.requests[i];
            ASSERT_EQ(a.id, b.id) << scheduler << " record " << i;
            EXPECT_EQ(a.arrival, b.arrival);
            EXPECT_EQ(a.firstToken, b.firstToken);
            EXPECT_EQ(a.finish, b.finish);
            EXPECT_EQ(a.maxGap, b.maxGap);
            EXPECT_EQ(a.outputTokens, b.outputTokens);
            EXPECT_EQ(a.evictions, b.evictions);
        }
    }
}

// --- Queue policies earn their keep -----------------------------------

double
goodputFor(const std::string &queue_policy,
           const std::string &priority_mix = "")
{
    cli::CliOptions options = heavyOptions("past_future");
    options.queuePolicy = queue_policy;
    options.priorityMix = priority_mix;
    const cli::Scenario scenario = cli::assembleScenario(options);
    const metrics::RunReport report = cli::runScenario(scenario);
    EXPECT_EQ(report.numFinished, 160u);
    return report.goodputTokensPerSec(scenario.sla);
}

TEST(QueuePolicyImprovement, SjfBeatsFcfsOnHeavyTailBurst)
{
    // Saturating heavy-tailed load (96 closed-loop clients over
    // ShareGPT-o1): FCFS head-of-line blocking throttles goodput;
    // predicted-SJF lets short jobs jump the long tail.
    const double fcfs = goodputFor("fcfs");
    const double sjf = goodputFor("sjf");
    EXPECT_GT(sjf, fcfs * 1.2);
}

TEST(QueuePolicyImprovement, EdfWithPriorityMixBeatsFcfs)
{
    // EDF differentiates via per-class deadline budgets, so give a
    // fifth of the requests a tighter (priority-1) budget.
    const double fcfs = goodputFor("fcfs", "0.8,0.2");
    const double edf = goodputFor("edf", "0.8,0.2");
    EXPECT_GT(edf, fcfs);
}

} // namespace
} // namespace lightllm
