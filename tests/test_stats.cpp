/**
 * @file
 * Unit and property tests for the statistics module.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/rng.hh"
#include "stats/histogram.hh"
#include "stats/online_stats.hh"
#include "stats/percentile.hh"
#include "stats/similarity.hh"
#include "stats/window_analysis.hh"

namespace lightllm {
namespace stats {
namespace {

TEST(HistogramTest, BinsValuesByWidth)
{
    Histogram hist(10, 4);
    hist.add(0);
    hist.add(9);
    hist.add(10);
    hist.add(35);
    EXPECT_EQ(hist.counts()[0], 2);
    EXPECT_EQ(hist.counts()[1], 1);
    EXPECT_EQ(hist.counts()[3], 1);
    EXPECT_EQ(hist.total(), 4);
}

TEST(HistogramTest, OverflowClampsToLastBin)
{
    Histogram hist(10, 4);
    hist.add(1000);
    EXPECT_EQ(hist.counts()[3], 1);
}

TEST(HistogramTest, NegativeClampsToFirstBin)
{
    Histogram hist(10, 4);
    hist.add(-5);
    EXPECT_EQ(hist.counts()[0], 1);
}

TEST(HistogramTest, WeightedAdd)
{
    Histogram hist(10, 4);
    hist.add(5, 7);
    EXPECT_EQ(hist.counts()[0], 7);
    EXPECT_EQ(hist.total(), 7);
}

TEST(HistogramTest, NormalizedSumsToOne)
{
    Histogram hist(10, 8);
    Rng rng(1);
    for (int i = 0; i < 1000; ++i)
        hist.add(rng.uniformInt(0, 79));
    const auto probs = hist.normalized();
    double sum = 0.0;
    for (double p : probs)
        sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, NormalizedEmptyIsAllZero)
{
    Histogram hist(10, 4);
    for (double p : hist.normalized())
        EXPECT_EQ(p, 0.0);
}

TEST(HistogramTest, QuantileCoversMedian)
{
    Histogram hist(1, 100);
    for (int i = 0; i < 100; ++i)
        hist.add(i);
    const auto median = hist.quantile(0.5);
    EXPECT_GE(median, 49);
    EXPECT_LE(median, 51);
}

TEST(HistogramTest, ClearResets)
{
    Histogram hist(10, 4);
    hist.add(5);
    hist.clear();
    EXPECT_EQ(hist.total(), 0);
    EXPECT_EQ(hist.counts()[0], 0);
}

TEST(OnlineStatsTest, MatchesDirectComputation)
{
    OnlineStats stats;
    const std::vector<double> values{1.0, 2.0, 4.0, 8.0, 16.0};
    double sum = 0.0;
    for (double v : values) {
        stats.add(v);
        sum += v;
    }
    const double mean = sum / 5.0;
    double var = 0.0;
    for (double v : values)
        var += (v - mean) * (v - mean);
    var /= 5.0;
    EXPECT_DOUBLE_EQ(stats.mean(), mean);
    EXPECT_NEAR(stats.variance(), var, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 16.0);
    EXPECT_EQ(stats.count(), 5);
}

TEST(OnlineStatsTest, EmptyIsZero)
{
    OnlineStats stats;
    EXPECT_EQ(stats.count(), 0);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
}

TEST(OnlineStatsTest, MergeEqualsSequential)
{
    Rng rng(3);
    OnlineStats whole;
    OnlineStats left;
    OnlineStats right;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(5.0, 3.0);
        whole.add(v);
        (i < 400 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(PercentileTest, NearestRankSemantics)
{
    std::vector<double> values{10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(percentile(values, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(values, 0.2), 10.0);
    EXPECT_DOUBLE_EQ(percentile(values, 0.21), 20.0);
    EXPECT_DOUBLE_EQ(percentile(values, 0.5), 30.0);
    EXPECT_DOUBLE_EQ(percentile(values, 1.0), 50.0);
}

TEST(PercentileTest, EmptyReturnsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 0.99), 0.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(maxValue({}), 0.0);
}

TEST(PercentileTest, P99WithHundredSamples)
{
    std::vector<double> values;
    for (int i = 1; i <= 100; ++i)
        values.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(percentile(values, 0.99), 99.0);
}

TEST(SimilarityTest, IdenticalVectorsAreOne)
{
    const std::vector<double> v{1.0, 2.0, 3.0};
    EXPECT_NEAR(cosineSimilarity(v, v), 1.0, 1e-12);
}

TEST(SimilarityTest, OrthogonalVectorsAreZero)
{
    const std::vector<double> a{1.0, 0.0};
    const std::vector<double> b{0.0, 5.0};
    EXPECT_DOUBLE_EQ(cosineSimilarity(a, b), 0.0);
}

TEST(SimilarityTest, ScaleInvariant)
{
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{10.0, 20.0, 30.0};
    EXPECT_NEAR(cosineSimilarity(a, b), 1.0, 1e-12);
}

TEST(SimilarityTest, ZeroVectorYieldsZero)
{
    const std::vector<double> a{0.0, 0.0};
    const std::vector<double> b{1.0, 1.0};
    EXPECT_DOUBLE_EQ(cosineSimilarity(a, b), 0.0);
}

TEST(SimilarityDeathTest, SizeMismatchPanics)
{
    const std::vector<double> a{1.0};
    const std::vector<double> b{1.0, 2.0};
    EXPECT_DEATH(cosineSimilarity(a, b), "mismatch");
}

/** Stationary trace: every window drawn from the same law. */
std::vector<std::int64_t>
stationaryTrace(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int64_t> outputs;
    outputs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        outputs.push_back(static_cast<std::int64_t>(
            rng.logNormal(std::log(300.0), 0.6)));
    }
    return outputs;
}

/** Trace whose law switches abruptly every `regime` requests. */
std::vector<std::int64_t>
regimeTrace(std::size_t n, std::size_t regime, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int64_t> outputs;
    outputs.reserve(n);
    double mu = std::log(100.0);
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0 && i % regime == 0)
            mu = std::log(100.0) + rng.uniformDouble() * 3.0;
        outputs.push_back(
            static_cast<std::int64_t>(rng.logNormal(mu, 0.4)));
    }
    return outputs;
}

TEST(WindowAnalysisTest, MatrixShapeAndDiagonal)
{
    const auto trace = stationaryTrace(5000, 17);
    const auto matrix = windowSimilarityMatrix(trace, 1000);
    EXPECT_EQ(matrix.numWindows, 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_DOUBLE_EQ(matrix.at(i, i), 1.0);
    // Symmetry.
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 5; ++j)
            EXPECT_DOUBLE_EQ(matrix.at(i, j), matrix.at(j, i));
    }
}

TEST(WindowAnalysisTest, StationaryTraceIsGloballySimilar)
{
    const auto trace = stationaryTrace(10000, 21);
    const auto matrix = windowSimilarityMatrix(trace, 1000);
    EXPECT_GT(matrix.globalMean(), 0.9);
    EXPECT_GT(matrix.adjacentMean(), 0.9);
}

TEST(WindowAnalysisTest, RegimeTraceAdjacentBeatsGlobal)
{
    // Long regimes (5 windows wide): adjacent windows usually share
    // a regime while distant windows usually do not — the paper's
    // core observation for API-style traces.
    const auto trace = regimeTrace(20000, 5000, 23);
    const auto matrix = windowSimilarityMatrix(trace, 1000);
    EXPECT_GT(matrix.adjacentMean(), matrix.globalMean() + 0.05);
}

TEST(WindowAnalysisTest, AdjacentWindowStatsOnRegimeTrace)
{
    const auto trace = regimeTrace(20000, 5000, 29);
    const auto result = adjacentWindowSimilarity(trace, 1000, 1000);
    EXPECT_GT(result.numPairs, 10u);
    EXPECT_GT(result.diagonalMean, result.globalMean);
    EXPECT_GT(result.diagonalMean, 0.7);
}

TEST(WindowAnalysisTest, AsymmetricWindowSizes)
{
    const auto trace = stationaryTrace(20000, 31);
    const auto result = adjacentWindowSimilarity(trace, 2000, 500);
    EXPECT_GT(result.numPairs, 0u);
    EXPECT_GT(result.diagonalMean, 0.85);
}

TEST(WindowAnalysisTest, TooShortTraceYieldsNoPairs)
{
    const auto trace = stationaryTrace(100, 37);
    const auto result = adjacentWindowSimilarity(trace, 1000, 1000);
    EXPECT_EQ(result.numPairs, 0u);
    EXPECT_DOUBLE_EQ(result.diagonalMean, 0.0);
}

/** Property sweep: diagonal-over-global holds across seeds. */
class RegimeTraceProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RegimeTraceProperty, DiagonalDominatesGlobal)
{
    const auto trace = regimeTrace(16000, 4000, GetParam());
    const auto result = adjacentWindowSimilarity(trace, 1000, 1000);
    EXPECT_GE(result.diagonalMean, result.globalMean - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegimeTraceProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u,
                                           7u, 8u));

} // namespace
} // namespace stats
} // namespace lightllm
