/**
 * @file
 * Cross-module integration tests: full serving runs over synthetic
 * workloads, asserting the qualitative behaviours the paper reports
 * (scheduler orderings, eviction patterns, conservation laws).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "engine/static_engine.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

namespace lightllm {
namespace {

using core::SchedulerConfig;

model::PerfModel
a100_7b()
{
    return model::PerfModel(model::ModelSpec::llama2_7b(),
                            model::HardwareSpec::a100_80g());
}

/** Closed-loop run of `dataset` under `config`. */
metrics::RunReport
serve(const workload::Dataset &dataset, SchedulerConfig config,
      std::size_t num_clients)
{
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;
    engine::ServingEngine engine(a100_7b(),
                                 core::makeScheduler(config));
    workload::ClosedLoopClientPool clients(num_clients, dataset,
                                           engine);
    engine.setOnFinish(
        [&](const workload::RequestSpec &spec, Tick tick) {
            clients.onRequestFinished(spec.id, tick);
        });
    clients.start();
    return engine.run();
}

/** Warmed Past-Future config for a dataset (previous window). */
SchedulerConfig
warmedPastFuture(double reserved, const workload::Dataset &history)
{
    auto config = SchedulerConfig::pastFutureDefault(reserved);
    for (const auto &request : history.requests) {
        config.pastFuture.initialHistory.push_back(
            request.effectiveOutputLen());
    }
    return config;
}

TEST(IntegrationTest, EveryRequestFinishesExactlyOnce)
{
    const auto dataset = workload::makeShareGpt(200, 11);
    const auto report =
        serve(dataset, SchedulerConfig::aggressive(0.99), 32);
    EXPECT_EQ(report.numFinished, dataset.requests.size());
    std::set<RequestId> seen;
    for (const auto &record : report.requests)
        EXPECT_TRUE(seen.insert(record.id).second);
}

TEST(IntegrationTest, OutputTokensAreConserved)
{
    const auto dataset = workload::makeShareGpt(150, 12);
    for (const auto &config :
         {SchedulerConfig::conservative(),
          SchedulerConfig::aggressive(0.99),
          SchedulerConfig::pastFutureDefault(0.05),
          SchedulerConfig::oracle()}) {
        const auto report = serve(dataset, config, 24);
        EXPECT_EQ(report.totalOutputTokens,
                  dataset.totalOutputTokens())
            << report.schedulerName;
    }
}

TEST(IntegrationTest, ConservativeNeverEvicts)
{
    const auto dataset = workload::makeDistribution1(120, 13);
    const auto report =
        serve(dataset, SchedulerConfig::conservative(), 48);
    EXPECT_EQ(report.evictionEvents, 0);
    EXPECT_EQ(report.requestsEvicted, 0u);
}

/** Property: the oracle never evicts, on any workload shape. */
class OracleNoEvictionProperty
    : public ::testing::TestWithParam<int>
{};

TEST_P(OracleNoEvictionProperty, ZeroEvictions)
{
    workload::Dataset dataset;
    const auto seed = static_cast<std::uint64_t>(GetParam());
    switch (GetParam() % 4) {
      case 0:
        dataset = workload::makeDistribution1(150, seed);
        break;
      case 1:
        dataset = workload::makeDistribution2(150, seed);
        break;
      case 2:
        dataset = workload::makeDistribution3(150, seed);
        break;
      default:
        dataset = workload::makeShareGptO1(150, seed);
        break;
    }
    const auto report =
        serve(dataset, SchedulerConfig::oracle(), 64);
    EXPECT_EQ(report.evictionEvents, 0)
        << "dataset " << dataset.name;
    EXPECT_EQ(report.numFinished, dataset.requests.size());
}

INSTANTIATE_TEST_SUITE_P(Workloads, OracleNoEvictionProperty,
                         ::testing::Range(0, 8));

TEST(IntegrationTest, AggressiveEvictsOnDecodeHeavy)
{
    // Decode-heavy + high watermark is the paper's worst case for
    // the aggressive policy (Table 1: 93.7% evicted).
    const auto dataset = workload::makeDistribution1(200, 14);
    const auto report =
        serve(dataset, SchedulerConfig::aggressive(0.99), 48);
    EXPECT_GT(report.evictedReqRatio(), 0.3);
}

TEST(IntegrationTest, PastFutureEvictsFarLessThanAggressive)
{
    const auto dataset = workload::makeDistribution1(200, 15);
    const auto history = workload::makeDistribution1(800, 99);
    const auto aggressive =
        serve(dataset, SchedulerConfig::aggressive(0.99), 48);
    const auto past_future =
        serve(dataset, warmedPastFuture(0.05, history), 48);
    EXPECT_LT(past_future.evictedReqRatio(),
              0.25 * aggressive.evictedReqRatio());
}

TEST(IntegrationTest, PastFutureUtilizationBeatsConservative)
{
    const auto dataset = workload::makeDistribution1(200, 16);
    const auto history = workload::makeDistribution1(800, 98);
    const auto conservative =
        serve(dataset, SchedulerConfig::conservative(), 48);
    const auto past_future =
        serve(dataset, warmedPastFuture(0.05, history), 48);
    EXPECT_GT(past_future.avgConsumedMemory,
              conservative.avgConsumedMemory + 0.2);
}

TEST(IntegrationTest, ConservativeFutureRequiredStaysUnderCapacity)
{
    const auto dataset = workload::makeDistribution1(150, 17);
    const auto report =
        serve(dataset, SchedulerConfig::conservative(), 48);
    EXPECT_LT(report.avgFutureRequired, 1.0);
}

TEST(IntegrationTest, AggressiveFutureRequiredOvershoots)
{
    // The signature failure of the aggressive policy (Fig 1): the
    // true future requirement of its running batch exceeds capacity.
    const auto dataset = workload::makeDistribution1(200, 18);
    const auto aggressive =
        serve(dataset, SchedulerConfig::aggressive(0.99), 48);
    const auto history = workload::makeDistribution1(800, 97);
    const auto past_future =
        serve(dataset, warmedPastFuture(0.05, history), 48);
    EXPECT_GT(aggressive.avgFutureRequired,
              past_future.avgFutureRequired);
    EXPECT_LT(past_future.avgFutureRequired, 1.0);
}

TEST(IntegrationTest, GoodputOrderingUnderHeavyDecodeLoad)
{
    // The headline claim: under heavy decode-heavy load the
    // Past-Future scheduler beats the aggressive policy (eviction
    // storms) and the conservative policy (queueing).
    const auto dataset = workload::makeShareGptO1(350, 19);
    const auto history = workload::makeShareGptO1(800, 96);
    const auto sla = metrics::SlaSpec::small7b13b();

    auto pf_config = warmedPastFuture(0.05, history);
    const auto past_future = serve(dataset, pf_config, 56);
    const auto aggressive =
        serve(dataset, SchedulerConfig::aggressive(0.99), 56);
    const auto conservative =
        serve(dataset, SchedulerConfig::conservative(), 56);

    const double pf_good = past_future.goodputTokensPerSec(sla);
    const double ag_good = aggressive.goodputTokensPerSec(sla);
    const double co_good = conservative.goodputTokensPerSec(sla);

    EXPECT_GT(pf_good, 0.95 * ag_good);
    EXPECT_GT(pf_good, 3.0 * co_good);
}

TEST(IntegrationTest, SchedulersAgreeAtLightLoad)
{
    // At low concurrency memory never binds and every scheduler
    // admits immediately: identical goodput (Fig 7 left edge).
    const auto dataset = workload::makeShareGptO1(120, 20);
    const auto history = workload::makeShareGptO1(500, 95);
    const auto sla = metrics::SlaSpec::small7b13b();

    const auto past_future =
        serve(dataset, warmedPastFuture(0.05, history), 8);
    const auto aggressive =
        serve(dataset, SchedulerConfig::aggressive(0.99), 8);
    EXPECT_NEAR(past_future.goodputTokensPerSec(sla),
                aggressive.goodputTokensPerSec(sla),
                0.02 * aggressive.goodputTokensPerSec(sla) + 1.0);
}

TEST(IntegrationTest, PrefillHeavyFavoursAggressiveAndPastFuture)
{
    // Distribution-3: outputs are short, so ignoring output memory
    // is nearly free and both beat conservative (Fig 7 rightmost
    // column).
    const auto dataset = workload::makeDistribution3(200, 21);
    const auto history = workload::makeDistribution3(800, 94);
    const auto sla = metrics::SlaSpec::small7b13b();

    const auto past_future =
        serve(dataset, warmedPastFuture(0.05, history), 24);
    const auto aggressive =
        serve(dataset, SchedulerConfig::aggressive(0.95), 24);
    const auto conservative =
        serve(dataset, SchedulerConfig::conservative(), 24);

    EXPECT_GT(past_future.goodputTokensPerSec(sla),
              1.5 * conservative.goodputTokensPerSec(sla));
    EXPECT_GT(aggressive.goodputTokensPerSec(sla),
              1.5 * conservative.goodputTokensPerSec(sla));
}

TEST(IntegrationTest, ContinuousBatchingBeatsStaticOnMultimodal)
{
    // Table 2's effect: continuous batching with the Past-Future
    // scheduler clearly out-throughputs the static-batch origin
    // implementation on a TextVQA-like workload.
    model::PerfModel perf(model::ModelSpec::llava15_7b(),
                          model::HardwareSpec::a100_80g());
    const auto dataset = workload::makeTextVqaLike(400, 576, 22);

    const auto origin = engine::runStaticBatch(perf, dataset);

    auto config = SchedulerConfig::pastFutureDefault(0.05);
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;
    engine::ServingEngine engine(perf,
                                 core::makeScheduler(config));
    for (const auto &spec : dataset.requests)
        engine.submitAt(spec, 0);
    const auto lightllm = engine.run();

    EXPECT_GT(lightllm.throughputTokensPerSec(),
              1.3 * origin.throughputTokensPerSec());
}

TEST(IntegrationTest, FullPipelineIsDeterministic)
{
    auto run_once = [&]() {
        const auto dataset = workload::makeShareGptO1(150, 23);
        return serve(dataset,
                     SchedulerConfig::pastFutureDefault(0.05), 32);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.decodeSteps, b.decodeSteps);
    EXPECT_EQ(a.evictionEvents, b.evictionEvents);
    EXPECT_DOUBLE_EQ(a.avgConsumedMemory, b.avgConsumedMemory);
}

TEST(IntegrationTest, TimeseriesSamplesAreOrderedAndBounded)
{
    engine::EngineConfig config;
    config.timeseriesInterval = 10;
    auto sched_config = SchedulerConfig::aggressive(0.99);
    engine::ServingEngine engine(a100_7b(),
                                 core::makeScheduler(sched_config),
                                 config);
    const auto dataset = workload::makeDistribution1(80, 24);
    for (const auto &spec : dataset.requests)
        engine.submitAt(spec, 0);
    const auto report = engine.run();
    ASSERT_GT(report.timeseries.size(), 5u);
    Tick prev = -1;
    for (const auto &point : report.timeseries) {
        EXPECT_GT(point.tick, prev);
        prev = point.tick;
        EXPECT_GE(point.consumedRatio, 0.0);
        EXPECT_LE(point.consumedRatio, 1.0);
        EXPECT_GE(point.futureRequiredRatio, point.consumedRatio);
        EXPECT_GT(point.batchSize, 0);
    }
}

} // namespace
} // namespace lightllm
