/**
 * @file
 * Coverage of the pfs_cli flag-parsing and scenario-assembly path.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cli_scenario.hh"

namespace lightllm {
namespace {

std::string
parse(std::vector<const char *> args, cli::CliOptions &options)
{
    args.insert(args.begin(), "pfs_cli");
    return cli::parseCliArgs(static_cast<int>(args.size()),
                             args.data(), options);
}

TEST(CliParse, DefaultsAreValid)
{
    cli::CliOptions options;
    EXPECT_EQ(parse({}, options), "");
    EXPECT_EQ(options.workload, "sharegpt");
    EXPECT_EQ(options.scheduler, "past_future");
    EXPECT_EQ(options.clients, 32u);
}

TEST(CliParse, AcceptsSpaceAndEqualsForms)
{
    cli::CliOptions options;
    EXPECT_EQ(parse({"--scheduler", "aggressive",
                     "--watermark=0.99", "--clients", "64",
                     "--seed=7", "--format", "json"},
                    options),
              "");
    EXPECT_EQ(options.scheduler, "aggressive");
    EXPECT_DOUBLE_EQ(options.watermark, 0.99);
    EXPECT_EQ(options.clients, 64u);
    EXPECT_EQ(options.seed, 7u);
    EXPECT_EQ(options.format, "json");
}

TEST(CliParse, RejectsUnknownFlagAndBadValues)
{
    cli::CliOptions options;
    EXPECT_NE(parse({"--bogus"}, options), "");
    EXPECT_NE(parse({"--clients", "many"}, options), "");
    EXPECT_NE(parse({"--clients", "64x"}, options), "");
    EXPECT_NE(parse({"--seed"}, options), "");
    EXPECT_NE(parse({"--format", "xml"}, options), "");
    EXPECT_NE(parse({"--clients", "0"}, options), "");
    // Signed values must not wrap through unsigned parsing or
    // reach the engine as negative ticks.
    EXPECT_NE(parse({"--requests", "-1"}, options), "");
    EXPECT_NE(parse({"--clients", "-1"}, options), "");
    EXPECT_NE(parse({"--think-time", "-1"}, options), "");
    EXPECT_NE(parse({"--rate", "-0.5"}, options), "");
    EXPECT_NE(parse({"--max-seconds", "-2"}, options), "");
}

TEST(CliParse, HelpShortCircuits)
{
    cli::CliOptions options;
    EXPECT_EQ(parse({"--help"}, options), "");
    EXPECT_TRUE(options.showHelp);
}

TEST(CliParse, UsageDocumentsEveryRegisteredFlag)
{
    // printCliUsage is the only flag reference users see; a flag
    // parsing accepts but usage omits is invisible. cliFlagNames()
    // is generated from the same bindings parseCliArgs uses, so
    // this audit cannot go stale.
    std::ostringstream oss;
    cli::printCliUsage(oss);
    const std::string usage = oss.str();
    for (const std::string &flag : cli::cliFlagNames()) {
        EXPECT_NE(usage.find(flag), std::string::npos)
            << "usage text does not mention " << flag;
    }
    // Sanity: the audit list itself is complete enough to include
    // long-standing and brand-new flags alike.
    const char *const expected[] = {
        "--drain-at",      "--platform-mix",
        "--eviction-mode", "--sessions",
        "--turns",         "--system-prompt-tokens",
        "--prefix-cache",  "--split-fuse",
        "--tenant-tree",   "--tenants",
        "--tenant-zipf",   "--tenant-weights",
        "--trace-out",     "--trace-detail",
        "--trace-limit",
    };
    const auto names = cli::cliFlagNames();
    for (const char *flag : expected) {
        EXPECT_NE(std::find(names.begin(), names.end(), flag),
                  names.end())
            << flag << " missing from cliFlagNames()";
    }
}

TEST(CliParse, SessionFlagValidation)
{
    cli::CliOptions options;
    EXPECT_EQ(parse({"--sessions", "4", "--turns", "6",
                     "--system-prompt-tokens", "128",
                     "--prefix-cache", "on"},
                    options),
              "");
    EXPECT_EQ(options.sessions, 4u);
    EXPECT_EQ(options.turns, 6u);
    EXPECT_EQ(options.systemPromptTokens, 128);
    EXPECT_EQ(options.prefixCache, "on");

    cli::CliOptions bad;
    EXPECT_NE(parse({"--prefix-cache", "maybe"}, bad), "");
    bad = {};
    EXPECT_NE(parse({"--sessions", "4", "--turns", "0"}, bad), "");
    bad = {};
    EXPECT_NE(parse({"--system-prompt-tokens", "0"}, bad), "");
    bad = {};
    EXPECT_NE(parse({"--sessions", "4", "--rate", "2.0"}, bad), "");
    bad = {};
    EXPECT_NE(parse({"--sessions", "4", "--priority-mix",
                     "0.5,0.5"},
                    bad),
              "");
}

TEST(CliAssemble, SessionScenarioWiresThrough)
{
    cli::CliOptions options;
    ASSERT_EQ(parse({"--sessions", "5", "--turns", "3",
                     "--system-prompt-tokens", "200",
                     "--prefix-cache", "on", "--think-time", "1.5"},
                    options),
              "");
    const cli::Scenario scenario = cli::assembleScenario(options);
    EXPECT_TRUE(scenario.sessionMode);
    EXPECT_TRUE(scenario.engineConfig.prefixCache);
    EXPECT_EQ(scenario.sessionConfig.numSessions, 5u);
    EXPECT_EQ(scenario.sessionConfig.turnsPerSession, 3u);
    EXPECT_EQ(scenario.sessionConfig.systemPromptTokens, 200);
    EXPECT_EQ(scenario.sessionConfig.thinkTime,
              secondsToTicks(1.5));
    // Scheduler cold-start seeding follows the session cap.
    EXPECT_EQ(scenario.schedulerConfig.pastFuture.seedOutputLen,
              scenario.sessionConfig.maxNewTokens);
}

TEST(CliAssemble, BuildsPastFutureScenario)
{
    cli::CliOptions options;
    ASSERT_EQ(parse({"--scheduler", "past_future",
                     "--reserved-ratio", "0.05", "--window-size",
                     "500", "--workload", "sharegpt-o1",
                     "--requests", "100", "--clients", "16"},
                    options),
              "");
    const cli::Scenario scenario = cli::assembleScenario(options);

    EXPECT_EQ(scenario.schedulerConfig.kind,
              core::SchedulerKind::PastFuture);
    EXPECT_DOUBLE_EQ(
        scenario.schedulerConfig.pastFuture.reservedRatio, 0.05);
    EXPECT_EQ(scenario.schedulerConfig.pastFuture.windowSize, 500u);
    EXPECT_EQ(scenario.dataset.requests.size(), 100u);
    // Cold-start seeding wired from the dataset cap.
    EXPECT_EQ(scenario.schedulerConfig.pastFuture.seedOutputLen,
              scenario.dataset.maxNewTokens);
    EXPECT_EQ(scenario.clients, 16u);
    EXPECT_GT(scenario.perf.tokenCapacity(), 0);
}

TEST(CliAssemble, MapsEveryScheduler)
{
    const std::pair<const char *, core::SchedulerKind> cases[] = {
        {"past_future", core::SchedulerKind::PastFuture},
        {"aggressive", core::SchedulerKind::Aggressive},
        {"conservative", core::SchedulerKind::Conservative},
        {"oracle", core::SchedulerKind::Oracle},
    };
    for (const auto &[name, kind] : cases) {
        cli::CliOptions options;
        ASSERT_EQ(parse({"--scheduler", name, "--requests", "8"},
                        options),
                  "");
        EXPECT_EQ(cli::assembleScenario(options).schedulerConfig.kind,
                  kind)
            << name;
    }
}

TEST(CliAssemble, SlaDefaultsFollowModelSize)
{
    cli::CliOptions options;
    ASSERT_EQ(parse({"--requests", "8"}, options), "");
    EXPECT_EQ(cli::assembleScenario(options).sla.ttftLimit,
              metrics::SlaSpec::small7b13b().ttftLimit);

    cli::CliOptions large;
    ASSERT_EQ(parse({"--model", "llama2-70b", "--tp", "4",
                     "--requests", "8"},
                    large),
              "");
    EXPECT_EQ(cli::assembleScenario(large).sla.ttftLimit,
              metrics::SlaSpec::large70b().ttftLimit);

    cli::CliOptions custom;
    ASSERT_EQ(parse({"--ttft-limit", "2.5", "--requests", "8"},
                    custom),
              "");
    EXPECT_EQ(cli::assembleScenario(custom).sla.ttftLimit,
              secondsToTicks(2.5));
}

TEST(CliAssemble, TextVqaImageTokensFollowModel)
{
    cli::CliOptions options;
    ASSERT_EQ(parse({"--workload", "textvqa", "--model",
                     "qwen-vl-chat", "--requests", "8"},
                    options),
              "");
    const cli::Scenario qwen = cli::assembleScenario(options);

    cli::CliOptions llava_options;
    ASSERT_EQ(parse({"--workload", "textvqa", "--model",
                     "llava15-7b", "--requests", "8"},
                    llava_options),
              "");
    const cli::Scenario llava =
        cli::assembleScenario(llava_options);

    // Qwen-VL's 256-token prefix vs LLaVA's 576 must show up in
    // the generated prompts.
    EXPECT_LT(qwen.dataset.meanInputLen() + 300.0,
              llava.dataset.meanInputLen());
}

TEST(CliAssemble, RejectsUnknownNames)
{
    cli::CliOptions options;
    options.workload = "nope";
    EXPECT_THROW(cli::assembleScenario(options),
                 std::invalid_argument);

    options = {};
    options.scheduler = "nope";
    EXPECT_THROW(cli::assembleScenario(options),
                 std::invalid_argument);

    options = {};
    options.model = "nope";
    EXPECT_THROW(cli::assembleScenario(options),
                 std::invalid_argument);

    options = {};
    options.evictionPolicy = "nope";
    EXPECT_THROW(cli::assembleScenario(options),
                 std::invalid_argument);

    options = {};
    options.queuePolicy = "nope";
    EXPECT_THROW(cli::assembleScenario(options),
                 std::invalid_argument);

    options = {};
    options.priorityMix = "0.5,x";
    EXPECT_THROW(cli::assembleScenario(options),
                 std::invalid_argument);

    options = {};
    options.priorityMix = "0,0";
    EXPECT_THROW(cli::assembleScenario(options),
                 std::invalid_argument);
}

TEST(CliAssemble, QueuePolicyAndPriorityMixWireThrough)
{
    cli::CliOptions options;
    ASSERT_EQ(parse({"--queue-policy", "edf", "--priority-mix",
                     "0.5,0.5", "--requests", "64", "--window-size",
                     "250"},
                    options),
              "");
    const cli::Scenario scenario = cli::assembleScenario(options);
    EXPECT_EQ(scenario.schedulerConfig.queue.kind,
              core::QueuePolicyKind::Edf);
    // EDF deadlines follow the scenario's TTFT SLA; the SJF
    // predictor follows the past-future window size and seed.
    EXPECT_EQ(scenario.schedulerConfig.queue.ttftDeadline,
              scenario.sla.ttftLimit);
    EXPECT_EQ(scenario.schedulerConfig.queue.predictorWindow, 250u);
    EXPECT_EQ(scenario.schedulerConfig.queue.seedOutputLen,
              scenario.dataset.maxNewTokens);

    // Both classes must actually occur, deterministically in seed.
    std::size_t high = 0;
    for (const auto &spec : scenario.dataset.requests)
        high += spec.cls.priority == 1 ? 1 : 0;
    EXPECT_GT(high, 0u);
    EXPECT_LT(high, scenario.dataset.requests.size());
    const cli::Scenario again = cli::assembleScenario(options);
    for (std::size_t i = 0; i < scenario.dataset.requests.size();
         ++i) {
        EXPECT_EQ(scenario.dataset.requests[i].cls.priority,
                  again.dataset.requests[i].cls.priority);
    }
}

TEST(CliParse, TenantFlagValidation)
{
    cli::CliOptions options;
    EXPECT_EQ(parse({"--tenants", "8", "--tenant-zipf", "1.1",
                     "--tenant-tree"},
                    options),
              "");
    EXPECT_EQ(options.tenants, 8u);
    EXPECT_DOUBLE_EQ(options.tenantZipf, 1.1);
    EXPECT_TRUE(options.tenantTree);

    // Every tenant knob needs --tenants.
    cli::CliOptions bad;
    EXPECT_NE(parse({"--tenant-tree"}, bad), "");
    bad = {};
    EXPECT_NE(parse({"--tenant-zipf", "1.0"}, bad), "");
    bad = {};
    EXPECT_NE(parse({"--tenant-weights", "1,2"}, bad), "");
    bad = {};
    EXPECT_NE(parse({"--tenants", "2", "--tenant-zipf", "1.0",
                     "--tenant-weights", "1,2"},
                    bad),
              "");
    bad = {};
    EXPECT_NE(parse({"--sessions", "4", "--tenants", "2"}, bad),
              "");
}

TEST(CliAssemble, TenantMixAndTreeWireThrough)
{
    cli::CliOptions options;
    ASSERT_EQ(parse({"--tenants", "3", "--tenant-weights", "8,1,1",
                     "--tenant-tree", "--requests", "128"},
                    options),
              "");
    const cli::Scenario scenario = cli::assembleScenario(options);
    EXPECT_TRUE(scenario.schedulerConfig.tenantTree);
    EXPECT_EQ(scenario.schedulerConfig.tenantSpec.numTenants, 3u);
    ASSERT_EQ(scenario.schedulerConfig.tenantSpec.weights.size(),
              3u);
    EXPECT_DOUBLE_EQ(
        scenario.schedulerConfig.tenantSpec.weights[0], 1.0);
    EXPECT_DOUBLE_EQ(
        scenario.schedulerConfig.tenantSpec.weights[1], 0.125);
    EXPECT_EQ(scenario.tenants, 3u);

    // Every tenant must actually occur, deterministically in seed.
    std::size_t tenantOne = 0;
    for (const auto &spec : scenario.dataset.requests)
        tenantOne += spec.cls.tenant == 1 ? 1 : 0;
    EXPECT_GT(tenantOne, 0u);
    EXPECT_LT(tenantOne, scenario.dataset.requests.size());

    // A weight count that disagrees with --tenants fails assembly.
    cli::CliOptions bad;
    ASSERT_EQ(parse({"--tenants", "3", "--tenant-weights", "1,1"},
                    bad),
              "");
    EXPECT_THROW(cli::assembleScenario(bad),
                 std::invalid_argument);
}

TEST(CliParse, AutoscaleFlagValidation)
{
    cli::CliOptions options;
    EXPECT_EQ(parse({"--autoscale", "--instances", "2",
                     "--min-instances", "1", "--max-instances",
                     "4", "--provision-delay", "5",
                     "--scale-policy", "reactive",
                     "--scale-slo-target", "0.95",
                     "--shed-policy", "overload",
                     "--rate-schedule", "spike:4,20,30,10"},
                    options),
              "");
    EXPECT_TRUE(options.autoscale);
    EXPECT_EQ(options.maxInstances, 4u);
    EXPECT_DOUBLE_EQ(options.scaleSloTarget, 0.95);

    options = {};
    EXPECT_NE(parse({"--autoscale", "--min-instances", "4",
                     "--max-instances", "2"},
                    options),
              "");
    options = {};
    // Initial fleet outside [min, max].
    EXPECT_NE(parse({"--autoscale", "--instances", "9",
                     "--max-instances", "4"},
                    options),
              "");
    options = {};
    EXPECT_NE(parse({"--autoscale", "--scale-slo-target", "1.5"},
                    options),
              "");
    options = {};
    // Shedding guards the autoscaler's max scale.
    EXPECT_NE(parse({"--shed-policy", "overload"}, options), "");
    options = {};
    // Run limits stay single-instance only.
    EXPECT_NE(parse({"--autoscale", "--max-requests", "10"},
                    options),
              "");
    options = {};
    // A schedule fixes the arrival process; --rate conflicts.
    EXPECT_NE(parse({"--rate-schedule", "const:5", "--rate", "2"},
                    options),
              "");
    options = {};
    // Sessions are closed-loop.
    EXPECT_NE(parse({"--sessions", "4", "--rate-schedule",
                     "const:5"},
                    options),
              "");
    options = {};
    // A rate schedule is open-loop: --clients 0 is fine, exactly
    // as with --rate.
    EXPECT_EQ(parse({"--rate-schedule", "const:5", "--clients",
                     "0"},
                    options),
              "");
    options = {};
    // Shed requests get no completion: closed-loop drivers would
    // stall on them, so shedding requires open-loop load.
    EXPECT_NE(parse({"--autoscale", "--shed-policy", "overload"},
                    options),
              "");
    options = {};
    EXPECT_EQ(parse({"--autoscale", "--shed-policy", "overload",
                     "--rate", "5"},
                    options),
              "");
}

TEST(CliAssemble, AutoscaleScenarioWiresThrough)
{
    cli::CliOptions options;
    ASSERT_EQ(parse({"--autoscale", "--instances", "1",
                     "--max-instances", "3", "--provision-delay",
                     "2.5", "--scale-policy", "predictive",
                     "--scale-slo-target", "0.85",
                     "--shed-policy", "overload",
                     "--rate-schedule", "steps:5x10,9"},
                    options),
              "");
    const cli::Scenario scenario = cli::assembleScenario(options);
    EXPECT_TRUE(scenario.autoscale);
    EXPECT_EQ(scenario.scalePolicyName, "predictive");
    EXPECT_EQ(scenario.autoscaleConfig.maxInstances, 3u);
    EXPECT_EQ(scenario.autoscaleConfig.provisionDelay,
              secondsToTicks(2.5));
    EXPECT_DOUBLE_EQ(scenario.autoscaleConfig.sloTarget, 0.85);
    EXPECT_EQ(scenario.autoscaleConfig.shedPolicy,
              autoscale::ShedPolicy::Overload);
    EXPECT_EQ(scenario.autoscaleConfig.sla.ttftLimit,
              scenario.sla.ttftLimit);
    // Autoscale forces the cluster path, even from one instance.
    EXPECT_EQ(scenario.fleetPerfs.size(), 1u);
    ASSERT_TRUE(scenario.hasRateSchedule);
    EXPECT_DOUBLE_EQ(scenario.rateSchedule.rateAt(12.0), 9.0);

    options.scalePolicy = "psychic";
    EXPECT_THROW(cli::assembleScenario(options),
                 std::invalid_argument);
    options.scalePolicy = "predictive";
    options.rateSchedule = "spike:bogus";
    EXPECT_THROW(cli::assembleScenario(options),
                 std::invalid_argument);
}

TEST(CliRun, TinyAutoscaleScenarioEndToEnd)
{
    cli::CliOptions options;
    ASSERT_EQ(parse({"--autoscale", "--instances", "1",
                     "--max-instances", "2", "--provision-delay",
                     "1", "--workload", "dist1", "--requests",
                     "32", "--rate-schedule", "const:8",
                     "--format", "json"},
                    options),
              "");
    const cli::Scenario scenario = cli::assembleScenario(options);
    const metrics::RunReport report = cli::runScenario(scenario);
    EXPECT_EQ(static_cast<std::int64_t>(report.numFinished) +
                  report.shedRequests,
              32);
    EXPECT_GE(report.peakInstances, 1u);
    EXPECT_GT(report.instanceSeconds, 0.0);

    std::ostringstream out;
    cli::emitReport(out, options, scenario, report);
    const std::string text = out.str();
    EXPECT_NE(text.find("\"shed_rate\""), std::string::npos);
    EXPECT_NE(text.find("\"instance_seconds\""),
              std::string::npos);
    EXPECT_NE(text.find("\"p50_ttft_s\""), std::string::npos);
    EXPECT_NE(text.find("\"p90_mtpot_s\""), std::string::npos);
}

TEST(CliRun, TinyScenarioEndToEnd)
{
    cli::CliOptions options;
    ASSERT_EQ(parse({"--requests", "24", "--clients", "6",
                     "--workload", "dist1", "--format", "both"},
                    options),
              "");
    const cli::Scenario scenario = cli::assembleScenario(options);
    const metrics::RunReport report = cli::runScenario(scenario);
    EXPECT_EQ(report.numFinished, 24u);
    EXPECT_GT(report.totalOutputTokens, 0);

    std::ostringstream out;
    cli::emitReport(out, options, scenario, report);
    const std::string text = out.str();
    EXPECT_NE(text.find("scheduler"), std::string::npos);
    EXPECT_NE(text.find("\"num_finished\""), std::string::npos);
}

} // namespace
} // namespace lightllm
