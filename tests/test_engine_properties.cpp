/**
 * @file
 * Property sweep over the engine's configuration space: for every
 * combination of scheduler kind, prefill strategy, and eviction
 * handling, a serving run must satisfy the same conservation and
 * timing invariants.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "workload/arrivals.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

namespace lightllm {
namespace {

using core::SchedulerKind;
using engine::EvictionMode;
using engine::EvictionPolicy;

model::PerfModel
smallPerf()
{
    model::ModelSpec spec;
    spec.name = "small";
    spec.numParams = 100'000;
    spec.numLayers = 2;
    spec.hiddenSize = 128;
    spec.numHeads = 2;
    spec.numKvHeads = 2;
    spec.headDim = 64;
    model::HardwareSpec hw;
    hw.name = "small-gpu";
    hw.memBytesPerDevice = 3'000'000;  // ~2.4k token capacity
    hw.memBandwidthPerDevice = 1e12;
    hw.flopsPerDevice = 1e14;
    return model::PerfModel(spec, hw);
}

core::SchedulerConfig
configFor(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Conservative:
        return core::SchedulerConfig::conservative(1.0);
      case SchedulerKind::Aggressive:
        return core::SchedulerConfig::aggressive(0.99);
      case SchedulerKind::PastFuture:
        return core::SchedulerConfig::pastFutureDefault(0.05);
      case SchedulerKind::Oracle:
        return core::SchedulerConfig::oracle();
    }
    return {};
}

using Combo = std::tuple<SchedulerKind, bool, EvictionMode,
                         EvictionPolicy>;

class EngineInvariantProperty
    : public ::testing::TestWithParam<Combo>
{};

TEST_P(EngineInvariantProperty, RunSatisfiesInvariants)
{
    const auto [kind, split_fuse, evict_mode, evict_policy] =
        GetParam();

    engine::EngineConfig engine_config;
    engine_config.splitFuse = split_fuse;
    engine_config.splitFuseChunk = 96;
    engine_config.evictionMode = evict_mode;
    engine_config.evictionPolicy = evict_policy;

    // A workload that oversubscribes the ~2.4k-token capacity so
    // queueing (and for permissive schedulers, eviction) happens.
    const auto dataset = workload::makeUniformDataset(
        "prop", 60, 32, 256, 16, 320, 512,
        static_cast<std::uint64_t>(std::get<0>(GetParam())) * 7 + 1);

    engine::ServingEngine engine(
        smallPerf(), core::makeScheduler(configFor(kind)),
        engine_config);
    workload::ClosedLoopClientPool clients(24, dataset, engine);
    engine.setOnFinish(
        [&](const workload::RequestSpec &spec, Tick tick) {
            clients.onRequestFinished(spec.id, tick);
        });
    clients.start();
    const auto report = engine.run();

    // Conservation: every request finishes exactly once with its
    // full output; all KV memory is returned.
    EXPECT_EQ(report.numFinished, dataset.requests.size());
    EXPECT_EQ(report.totalOutputTokens, dataset.totalOutputTokens());
    EXPECT_EQ(engine.kvManager().usedTokens(), 0);
    EXPECT_EQ(engine.kvManager().numRequests(), 0u);

    std::set<RequestId> seen;
    for (const auto &record : report.requests) {
        EXPECT_TRUE(seen.insert(record.id).second);
        // Timing sanity per request.
        EXPECT_GE(record.firstToken, record.arrival);
        EXPECT_GE(record.finish, record.firstToken);
        EXPECT_GE(record.maxGap, 0);
        EXPECT_LE(record.maxGap, record.finish - record.arrival);
        EXPECT_GT(record.outputTokens, 0);
        EXPECT_GE(record.evictions, 0);
    }

    // Aggregate sanity.
    EXPECT_GT(report.decodeSteps, 0);
    EXPECT_GT(report.makespan, 0);
    EXPECT_GE(report.avgConsumedMemory, 0.0);
    EXPECT_LE(report.avgConsumedMemory, 1.0);
    EXPECT_GE(report.avgFutureRequired, report.avgConsumedMemory);
    // Swap transfers only appear in swap mode.
    if (evict_mode == EvictionMode::Recompute) {
        EXPECT_EQ(report.swapEvents, 0);
    }
    // Conservative and oracle never evict.
    if (kind == SchedulerKind::Conservative ||
        kind == SchedulerKind::Oracle) {
        EXPECT_EQ(report.evictionEvents, 0) << "kind breaks no-evict";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Combos, EngineInvariantProperty,
    ::testing::Combine(
        ::testing::Values(SchedulerKind::Conservative,
                          SchedulerKind::Aggressive,
                          SchedulerKind::PastFuture,
                          SchedulerKind::Oracle),
        ::testing::Bool(),
        ::testing::Values(EvictionMode::Recompute,
                          EvictionMode::Swap),
        ::testing::Values(EvictionPolicy::Lifo,
                          EvictionPolicy::Fifo)));

TEST(OpenLoopIntegrationTest, PoissonArrivalsAreServed)
{
    model::PerfModel perf(model::ModelSpec::llama2_7b(),
                          model::HardwareSpec::a100_80g());
    engine::ServingEngine engine(
        perf,
        core::makeScheduler(
            core::SchedulerConfig::pastFutureDefault(0.05)));
    const auto dataset = workload::makeShareGpt(150, 71);
    workload::submitPoissonArrivals(dataset, engine, 2.0, 99);
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 150u);
    // At 2 req/s the system is underloaded: TTFT stays tiny and
    // everything meets the SLA.
    const auto sla = metrics::SlaSpec::small7b13b();
    EXPECT_GT(report.slaCompliantFraction(sla), 0.98);
    // Makespan is at least the arrival span (~75 s).
    EXPECT_GT(report.makespan, secondsToTicks(60.0));
}

TEST(OpenLoopIntegrationTest, BurstArrivalsQueueAndDrain)
{
    model::PerfModel perf(model::ModelSpec::llama2_7b(),
                          model::HardwareSpec::a100_80g());
    engine::ServingEngine engine(
        perf,
        core::makeScheduler(
            core::SchedulerConfig::pastFutureDefault(0.05)));
    const auto dataset = workload::makeShareGpt(120, 73);
    // Everything arrives at once: a burst far above service rate.
    for (const auto &spec : dataset.requests)
        engine.submitAt(spec, secondsToTicks(1.0));
    const auto report = engine.run();
    EXPECT_EQ(report.numFinished, 120u);
    // TTFT spread must reflect queueing order (non-trivial p99).
    EXPECT_GT(report.p99TtftSeconds(), report.meanTtftSeconds());
}

} // namespace
} // namespace lightllm
