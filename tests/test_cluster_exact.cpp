/**
 * @file
 * Exactness and determinism of the event-driven cluster
 * co-simulation.
 *
 * The zero-skew property: a fleet co-simulated on one shared
 * SimContext must produce, for every instance, metrics identical to
 * a *serialized reference replay* — a standalone self-clocked
 * engine fed the exact (spec, arrival-tick) sequence the router
 * sent that instance. If the co-simulation leaked any cross-
 * instance state out of global event order (the old min-clock scan
 * allowed one iteration of causality skew and clamped arrival
 * ticks to the target's engine clock), the replay would diverge in
 * arrival stamps, admission order, and ultimately every latency
 * metric. Byte-level determinism of the whole fleet run is pinned
 * separately, via the CLI scenario path users actually invoke.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "cli_scenario.hh"
#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "metrics/report_io.hh"
#include "test_fixtures.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

namespace lightllm {
namespace {

using core::SchedulerConfig;
using testfx::tinyPerf;
using workload::RequestSpec;

/** Compare a replayed standalone report against the co-simulated
 *  per-instance report, field by field and record by record. */
void
expectIdenticalReports(const metrics::RunReport &replay,
                       const metrics::RunReport &cosim,
                       std::size_t instance)
{
    SCOPED_TRACE("instance " + std::to_string(instance));
    EXPECT_EQ(replay.numFinished, cosim.numFinished);
    EXPECT_EQ(replay.decodeSteps, cosim.decodeSteps);
    EXPECT_EQ(replay.prefillIterations, cosim.prefillIterations);
    EXPECT_EQ(replay.evictionEvents, cosim.evictionEvents);
    EXPECT_EQ(replay.requestsEvicted, cosim.requestsEvicted);
    EXPECT_EQ(replay.totalOutputTokens, cosim.totalOutputTokens);
    EXPECT_EQ(replay.makespan, cosim.makespan);
    ASSERT_EQ(replay.requests.size(), cosim.requests.size());
    for (std::size_t i = 0; i < replay.requests.size(); ++i) {
        const auto &a = replay.requests[i];
        const auto &b = cosim.requests[i];
        ASSERT_EQ(a.id, b.id) << "record " << i;
        EXPECT_EQ(a.arrival, b.arrival) << "record " << i;
        EXPECT_EQ(a.firstToken, b.firstToken) << "record " << i;
        EXPECT_EQ(a.finish, b.finish) << "record " << i;
        EXPECT_EQ(a.maxGap, b.maxGap) << "record " << i;
        EXPECT_EQ(a.outputTokens, b.outputTokens) << "record " << i;
        EXPECT_EQ(a.evictions, b.evictions) << "record " << i;
    }
}

struct InstanceSetup
{
    model::PerfModel perf;
    engine::EngineConfig config;
};

/** Co-simulate a closed-loop fleet, then replay each instance's
 *  routed submissions on a standalone engine and demand equality. */
void
runExactnessScenario(const std::vector<InstanceSetup> &setups,
                     cluster::RoutingPolicy routing,
                     const workload::Dataset &dataset,
                     std::size_t clients,
                     const SchedulerConfig &scheduler_config,
                     bool expect_evictions = false)
{
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    for (const InstanceSetup &setup : setups) {
        engines.push_back(std::make_unique<engine::ServingEngine>(
            setup.perf, core::makeScheduler(scheduler_config),
            setup.config));
    }
    cluster::ServingCluster fleet(std::move(engines), routing);
    fleet.recordSubmissions(true);
    workload::ClosedLoopClientPool pool(clients, dataset, fleet);
    fleet.setOnFinish(
        [&](const RequestSpec &spec, Tick tick) {
            pool.onRequestFinished(spec.id, tick);
        });
    pool.start();
    const auto merged = fleet.run();
    ASSERT_EQ(merged.numFinished, dataset.requests.size());
    if (expect_evictions) {
        // The scenario must stay hard: replays have to reproduce
        // eviction + recompute timing, not just smooth decoding.
        ASSERT_GT(merged.evictionEvents, 0);
    }

    for (std::size_t i = 0; i < setups.size(); ++i) {
        engine::ServingEngine solo(
            setups[i].perf, core::makeScheduler(scheduler_config),
            setups[i].config);
        std::size_t routed = 0;
        for (const auto &sub : fleet.submissionLog()) {
            if (sub.instance != i)
                continue;
            solo.submitStamped(sub.spec, sub.when, sub.stamp);
            ++routed;
        }
        ASSERT_GT(routed, 0u) << "instance " << i
                              << " received no traffic";
        expectIdenticalReports(solo.run(), fleet.instanceReport(i),
                               i);
    }
}

TEST(ClusterExactness, FutureMemoryFleetMatchesSerializedReplay)
{
    // Heavy-tailed closed-loop load over four identical instances
    // with an aggressive admission policy under memory pressure, so
    // the replay must reproduce evictions, recompute prefills, and
    // re-admissions exactly.
    const auto dataset = workload::makeShareGptO1(120, 31);
    const auto config = SchedulerConfig::aggressive(0.99);
    std::vector<InstanceSetup> setups(
        4, InstanceSetup{tinyPerf(16.0), engine::EngineConfig{}});
    runExactnessScenario(setups,
                         cluster::RoutingPolicy::FutureMemory,
                         dataset, 48, config,
                         /*expect_evictions=*/true);
}

TEST(ClusterExactness, HeterogeneousFleetMatchesSerializedReplay)
{
    // Mixed capacities and time factors: instances iterate at
    // different cadences, which is exactly where a lockstep
    // co-simulation accumulates skew.
    const auto dataset = workload::makeShareGpt(100, 17);
    auto config = SchedulerConfig::pastFutureDefault(0.05);
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;
    engine::EngineConfig slow;
    slow.timeFactor = 1.7;
    engine::EngineConfig fast;
    fast.timeFactor = 0.6;
    const std::vector<InstanceSetup> setups{
        {tinyPerf(16.0), fast},
        {tinyPerf(6.0), engine::EngineConfig{}},
        {tinyPerf(10.0), slow},
    };
    runExactnessScenario(
        setups, cluster::RoutingPolicy::LeastOutstandingTokens,
        dataset, 24, config);
}

TEST(ClusterExactness, DrainSparesNonDrainedInstanceTimelines)
{
    // Drain instance 0 mid-run: the surviving instances' timelines
    // must still replay exactly from their routed logs (re-dispatch
    // entries carry the delivery tick and the preserved original
    // arrival stamp).
    const auto dataset = workload::makeShareGpt(80, 23);
    auto config = SchedulerConfig::pastFutureDefault(0.05);
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;
    auto make_engine = [&]() {
        return std::make_unique<engine::ServingEngine>(
            tinyPerf(6.0), core::makeScheduler(config));
    };
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    for (int i = 0; i < 3; ++i)
        engines.push_back(make_engine());
    cluster::ServingCluster fleet(
        std::move(engines), cluster::RoutingPolicy::RoundRobin);
    fleet.recordSubmissions(true);
    workload::ClosedLoopClientPool pool(24, dataset, fleet);
    fleet.setOnFinish(
        [&](const RequestSpec &spec, Tick tick) {
            pool.onRequestFinished(spec.id, tick);
        });
    fleet.scheduleDrain(0, secondsToTicks(1.0));
    pool.start();
    const auto merged = fleet.run();
    ASSERT_EQ(merged.numFinished, dataset.requests.size());

    for (std::size_t i = 1; i < 3; ++i) {
        engine::ServingEngine solo(tinyPerf(6.0),
                                   core::makeScheduler(config));
        for (const auto &sub : fleet.submissionLog()) {
            if (sub.instance == i)
                solo.submitStamped(sub.spec, sub.when, sub.stamp);
        }
        expectIdenticalReports(solo.run(), fleet.instanceReport(i),
                               i);
    }
}

TEST(ClusterDeterminism, RepeatedFleetRunsAreByteIdentical)
{
    // Two from-scratch runs of the same CLI fleet scenario must
    // serialize to byte-identical JSON: pins the event queue's
    // (tick, class, FIFO) tie-break and that no hash-map iteration
    // order leaks into scheduling or routing.
    auto run_once = []() {
        cli::CliOptions options;
        options.workload = "sharegpt-o1";
        options.requests = 96;
        options.clients = 32;
        options.seed = 42;
        options.instances = 4;
        options.routing = "future-memory";
        const cli::Scenario scenario =
            cli::assembleScenario(options);
        const metrics::RunReport report =
            cli::runScenario(scenario);
        std::ostringstream oss;
        metrics::writeSummaryJson(oss, report, scenario.sla);
        metrics::writeRequestsCsv(oss, report, scenario.sla);
        return oss.str();
    };
    const std::string first = run_once();
    const std::string second = run_once();
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("Cluster(future-memory x4)"),
              std::string::npos);
}

} // namespace
} // namespace lightllm
