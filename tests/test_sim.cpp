/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace lightllm {
namespace sim {
namespace {

TEST(EventQueueTest, StartsEmpty)
{
    EventQueue queue;
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&](Tick) { order.push_back(3); });
    queue.schedule(10, [&](Tick) { order.push_back(1); });
    queue.schedule(20, [&](Tick) { order.push_back(2); });
    queue.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTicksFireInInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        queue.schedule(5, [&order, i](Tick) { order.push_back(i); });
    queue.runUntil(5);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, RunUntilIsInclusive)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&](Tick) { ++fired; });
    queue.schedule(11, [&](Tick) { ++fired; });
    EXPECT_EQ(queue.runUntil(10), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.nextTick(), 11);
}

TEST(EventQueueTest, HandlerReceivesScheduledTick)
{
    EventQueue queue;
    Tick seen = -1;
    queue.schedule(42, [&](Tick when) { seen = when; });
    queue.runUntil(100);
    EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, HandlerMaySchedule)
{
    EventQueue queue;
    std::vector<Tick> fired;
    queue.schedule(1, [&](Tick when) {
        fired.push_back(when);
        queue.schedule(2, [&](Tick w2) { fired.push_back(w2); });
    });
    queue.runUntil(5);
    EXPECT_EQ(fired, (std::vector<Tick>{1, 2}));
}

TEST(EventQueueTest, ChainedSchedulingPastHorizonStaysPending)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1, [&](Tick) {
        ++fired;
        queue.schedule(50, [&](Tick) { ++fired; });
    });
    queue.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue.nextTick(), 50);
}

TEST(EventQueueTest, RunNextPopsExactlyOne)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(3, [&](Tick) { ++fired; });
    queue.schedule(3, [&](Tick) { ++fired; });
    EXPECT_EQ(queue.runNext(), 3);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, ClearDropsEverything)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1, [&](Tick) { ++fired; });
    queue.schedule(2, [&](Tick) { ++fired; });
    queue.clear();
    EXPECT_TRUE(queue.empty());
    queue.runUntil(100);
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueDeathTest, NegativeTickPanics)
{
    EventQueue queue;
    EXPECT_DEATH(queue.schedule(-1, [](Tick) {}), "negative tick");
}

TEST(EventQueueDeathTest, NextTickOnEmptyPanics)
{
    EventQueue queue;
    EXPECT_DEATH(queue.nextTick(), "empty");
}

} // namespace
} // namespace sim
} // namespace lightllm
