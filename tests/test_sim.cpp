/**
 * @file
 * Unit tests for the discrete-event queue and the shared
 * simulation context.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/sim_context.hh"

namespace lightllm {
namespace sim {
namespace {

TEST(EventQueueTest, StartsEmpty)
{
    EventQueue queue;
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&](Tick) { order.push_back(3); });
    queue.schedule(10, [&](Tick) { order.push_back(1); });
    queue.schedule(20, [&](Tick) { order.push_back(2); });
    queue.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTicksFireInInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        queue.schedule(5, [&order, i](Tick) { order.push_back(i); });
    queue.runUntil(5);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, RunUntilIsInclusive)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&](Tick) { ++fired; });
    queue.schedule(11, [&](Tick) { ++fired; });
    EXPECT_EQ(queue.runUntil(10), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.nextTick(), 11);
}

TEST(EventQueueTest, HandlerReceivesScheduledTick)
{
    EventQueue queue;
    Tick seen = -1;
    queue.schedule(42, [&](Tick when) { seen = when; });
    queue.runUntil(100);
    EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, HandlerMaySchedule)
{
    EventQueue queue;
    std::vector<Tick> fired;
    queue.schedule(1, [&](Tick when) {
        fired.push_back(when);
        queue.schedule(2, [&](Tick w2) { fired.push_back(w2); });
    });
    queue.runUntil(5);
    EXPECT_EQ(fired, (std::vector<Tick>{1, 2}));
}

TEST(EventQueueTest, ChainedSchedulingPastHorizonStaysPending)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1, [&](Tick) {
        ++fired;
        queue.schedule(50, [&](Tick) { ++fired; });
    });
    queue.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue.nextTick(), 50);
}

TEST(EventQueueTest, RunNextPopsExactlyOne)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(3, [&](Tick) { ++fired; });
    queue.schedule(3, [&](Tick) { ++fired; });
    EXPECT_EQ(queue.runNext(), 3);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, ClearDropsEverything)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1, [&](Tick) { ++fired; });
    queue.schedule(2, [&](Tick) { ++fired; });
    queue.clear();
    EXPECT_TRUE(queue.empty());
    queue.runUntil(100);
    EXPECT_EQ(fired, 0);
}

// --- Cancellable / reschedulable handles --------------------------------

TEST(EventQueueHandleTest, CancelPreventsFiring)
{
    EventQueue queue;
    int fired = 0;
    const EventId keep = queue.schedule(5, [&](Tick) { ++fired; });
    const EventId drop =
        queue.schedule(3, [&](Tick) { fired += 100; });
    EXPECT_TRUE(queue.pending(drop));
    EXPECT_TRUE(queue.cancel(drop));
    EXPECT_FALSE(queue.pending(drop));
    EXPECT_TRUE(queue.pending(keep));
    queue.runUntil(10);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueHandleTest, CancelUnknownOrFiredReturnsFalse)
{
    EventQueue queue;
    EXPECT_FALSE(queue.cancel(kInvalidEventId));
    EXPECT_FALSE(queue.cancel(12345));
    const EventId id = queue.schedule(1, [](Tick) {});
    queue.runUntil(1);
    EXPECT_FALSE(queue.cancel(id));
    EXPECT_FALSE(queue.pending(id));
}

TEST(EventQueueHandleTest, RescheduleMovesEventBothDirections)
{
    EventQueue queue;
    std::vector<int> order;
    const EventId a =
        queue.schedule(10, [&](Tick) { order.push_back(1); });
    const EventId b =
        queue.schedule(20, [&](Tick) { order.push_back(2); });
    // Pull b before a, push a past b.
    EXPECT_TRUE(queue.reschedule(b, 5));
    EXPECT_TRUE(queue.reschedule(a, 30));
    EXPECT_EQ(queue.eventTick(a), 30);
    EXPECT_EQ(queue.eventTick(b), 5);
    queue.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueueHandleTest, RescheduleResequencesBehindSameTick)
{
    // A rescheduled event behaves as newly scheduled: it fires
    // after events already waiting at the target tick.
    EventQueue queue;
    std::vector<int> order;
    const EventId moved =
        queue.schedule(1, [&](Tick) { order.push_back(1); });
    queue.schedule(7, [&](Tick) { order.push_back(2); });
    EXPECT_TRUE(queue.reschedule(moved, 7));
    queue.runUntil(7);
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueueHandleTest, HandlesSurviveHeavyChurn)
{
    // Interleave schedule/cancel/reschedule and verify the firing
    // order is exactly the sorted surviving set (exercises the
    // index maintenance through sifts in both directions).
    EventQueue queue;
    std::vector<Tick> fired;
    std::vector<EventId> ids;
    for (Tick t = 0; t < 50; ++t) {
        ids.push_back(queue.schedule(
            100 - 2 * t, [&](Tick when) { fired.push_back(when); }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3)
        EXPECT_TRUE(queue.cancel(ids[i]));
    for (std::size_t i = 1; i < ids.size(); i += 3) {
        EXPECT_TRUE(
            queue.reschedule(ids[i], 1000 + static_cast<Tick>(i)));
    }
    queue.runUntil(5000);
    std::vector<Tick> sorted = fired;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(fired, sorted);
    EXPECT_EQ(fired.size(), ids.size() - (ids.size() + 2) / 3);
}

// --- Recycled-slot generation tags --------------------------------------

TEST(EventQueueHandleTest, StaleHandleDoesNotAliasRecycledSlot)
{
    EventQueue queue;
    int cancelled_fired = 0;
    int fresh_fired = 0;
    const EventId stale =
        queue.schedule(5, [&](Tick) { ++cancelled_fired; });
    EXPECT_TRUE(queue.cancel(stale));
    // The freed arena slot is recycled by the next schedule; the
    // stale handle must target nothing — not the new occupant.
    const EventId fresh =
        queue.schedule(7, [&](Tick) { ++fresh_fired; });
    EXPECT_NE(stale, fresh);
    EXPECT_FALSE(queue.pending(stale));
    EXPECT_FALSE(queue.cancel(stale));
    EXPECT_FALSE(queue.reschedule(stale, 1));
    EXPECT_TRUE(queue.pending(fresh));
    EXPECT_EQ(queue.eventTick(fresh), 7);
    queue.runUntil(10);
    EXPECT_EQ(cancelled_fired, 0);
    EXPECT_EQ(fresh_fired, 1);
}

TEST(EventQueueHandleTest, FiredHandleDoesNotAliasRecycledSlot)
{
    EventQueue queue;
    int fired = 0;
    const EventId spent = queue.schedule(1, [&](Tick) { ++fired; });
    queue.runUntil(1);
    EXPECT_EQ(fired, 1);
    // Firing released the slot; the next schedule recycles it.
    int live_fired = 0;
    const EventId live =
        queue.schedule(9, [&](Tick) { ++live_fired; });
    EXPECT_NE(spent, live);
    EXPECT_FALSE(queue.pending(spent));
    EXPECT_FALSE(queue.cancel(spent));
    EXPECT_FALSE(queue.reschedule(spent, 3));
    EXPECT_EQ(queue.eventTick(live), 9);
    queue.runUntil(9);
    EXPECT_EQ(live_fired, 1);
}

TEST(EventQueueHandleTest, RepeatedRecyclingKeepsHandlesDistinct)
{
    // One slot recycled many times: every issued handle is unique
    // and only the newest one resolves.
    EventQueue queue;
    EventId previous = kInvalidEventId;
    for (int i = 0; i < 1000; ++i) {
        const EventId id = queue.schedule(1, [](Tick) {});
        EXPECT_NE(id, previous);
        if (previous != kInvalidEventId)
            EXPECT_FALSE(queue.pending(previous));
        EXPECT_TRUE(queue.pending(id));
        EXPECT_TRUE(queue.cancel(id));
        previous = id;
    }
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueueClassTest, DeliveriesFireBeforeStepsAtEqualTicks)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(5, [&](Tick) { order.push_back(1); },
                   EventClass::Step);
    queue.schedule(5, [&](Tick) { order.push_back(2); },
                   EventClass::Delivery);
    queue.schedule(4, [&](Tick) { order.push_back(3); },
                   EventClass::Step);
    queue.schedule(5, [&](Tick) { order.push_back(4); },
                   EventClass::Delivery);
    queue.runUntil(5);
    // Tick 4 step first, then tick-5 deliveries in FIFO order,
    // then the tick-5 step.
    EXPECT_EQ(order, (std::vector<int>{3, 2, 4, 1}));
}

// --- Shared simulation context ------------------------------------------

TEST(SimContextTest, ClockFollowsFiredEvents)
{
    SimContext context;
    std::vector<Tick> seen;
    auto note = [&](Tick) { seen.push_back(context.now()); };
    context.schedule(10, note);
    context.schedule(3, note);
    EXPECT_EQ(context.now(), 0);
    EXPECT_TRUE(context.runNext());
    EXPECT_EQ(context.now(), 3);
    EXPECT_EQ(context.runToCompletion(), 1u);
    EXPECT_EQ(context.now(), 10);
    // Handlers observed the advanced clock, not the stale one.
    EXPECT_EQ(seen, (std::vector<Tick>{3, 10}));
    EXPECT_FALSE(context.runNext());
}

TEST(SimContextTest, HandlersMayChainSameTickEvents)
{
    SimContext context;
    int fired = 0;
    context.schedule(5, [&](Tick when) {
        ++fired;
        context.schedule(when, [&](Tick) { ++fired; });
    });
    EXPECT_EQ(context.runToCompletion(), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(context.now(), 5);
}

TEST(SimContextDeathTest, SchedulingInThePastPanics)
{
    SimContext context;
    context.schedule(10, [](Tick) {});
    context.runToCompletion();
    EXPECT_DEATH(context.schedule(5, [](Tick) {}),
                 "past of the shared clock");
}

TEST(EventQueueDeathTest, NegativeTickPanics)
{
    EventQueue queue;
    EXPECT_DEATH(queue.schedule(-1, [](Tick) {}), "negative tick");
}

TEST(EventQueueDeathTest, NextTickOnEmptyPanics)
{
    EventQueue queue;
    EXPECT_DEATH(queue.nextTick(), "empty");
}

} // namespace
} // namespace sim
} // namespace lightllm
