/**
 * @file
 * Tests for the composable scheduler-node tree: leaf ordering,
 * fair-share convergence, token-rate throttling (the any-window
 * property), in-flight semaphores, the canonical tenant tree, the
 * tree-backed SchedulingPolicy, and the TenantMix workload knob.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/conservative_scheduler.hh"
#include "core/sched_node.hh"
#include "core/scheduler_factory.hh"
#include "core/tenant_tree_policy.hh"
#include "workload/datasets.hh"
#include "workload/tenant_mix.hh"

namespace lightllm {
namespace core {
namespace {

/** Waiting view of `tokens` prompt tokens for `tenant`. */
WaitingView
waitingOf(RequestId id, TokenCount tokens, base::TenantId tenant,
          Tick arrival = 0)
{
    WaitingView view;
    view.id = id;
    view.promptLen = tokens;
    view.maxNewTokens = 10;
    view.trueOutputLen = 10;
    view.arrival = arrival;
    view.cls.tenant = tenant;
    return view;
}

/** Context over `waiting` with ample capacity. */
SchedulerContext
contextOf(const std::vector<WaitingView> &waiting, Tick now = 0)
{
    SchedulerContext ctx;
    ctx.now = now;
    ctx.capacityTokens = 1'000'000;
    ctx.waiting = waiting;
    return ctx;
}

SchedNodeConfig
leafConfig(const std::string &name, base::TenantId tenant)
{
    SchedNodeConfig leaf;
    leaf.kind = SchedNodeConfig::Kind::Leaf;
    leaf.name = name;
    leaf.tenants = {tenant};
    return leaf;
}

/** Route every waiting index of `ctx` into the tree's leaves. */
void
routeAll(SchedNode &root, const SchedulerContext &ctx)
{
    std::vector<LeafSchedNode *> leaves;
    root.collectLeaves(leaves);
    root.beginRound(ctx);
    for (std::size_t i = 0; i < ctx.waiting.size(); ++i) {
        for (LeafSchedNode *leaf : leaves) {
            if (leaf->servesTenant(ctx.waiting[i].cls.tenant)) {
                leaf->enqueue(i);
                break;
            }
        }
    }
}

TEST(LeafSchedNodeTest, WrapsQueuePolicyOverItsSubsetOnly)
{
    // EDF leaf: ordering is by arrival even though the enqueue
    // order is reversed.
    SchedNodeConfig config = leafConfig("leaf", 0);
    config.queue.kind = QueuePolicyKind::Edf;
    config.queue.ttftDeadline = 1000;
    auto root = makeSchedNode(config);

    std::vector<WaitingView> waiting = {
        waitingOf(10, 100, 0, /*arrival=*/300),
        waitingOf(11, 100, 0, /*arrival=*/100),
        waitingOf(12, 100, 0, /*arrival=*/200),
    };
    const SchedulerContext ctx = contextOf(waiting);
    routeAll(*root, ctx);

    std::vector<RequestId> popped;
    std::size_t index = 0;
    while (root->peek(ctx.now, false, index)) {
        popped.push_back(ctx.waiting[index].id);
        root->pop(ctx.now, ctx.waiting[index].promptLen);
    }
    EXPECT_EQ(popped, (std::vector<RequestId>{11, 12, 10}));
}

TEST(FairSchedNodeTest, ServiceSharesConvergeToWeights)
{
    // Property (satellite): under saturation, per-tenant service
    // converges to the configured 3:1 weights.
    SchedNodeConfig fair;
    fair.kind = SchedNodeConfig::Kind::Fair;
    fair.children.push_back(leafConfig("a", 0));
    fair.children.push_back(leafConfig("b", 1));
    fair.children[0].weight = 3.0;
    fair.children[1].weight = 1.0;
    auto root = makeSchedNode(fair);

    // Both tenants keep 200 equally sized requests queued.
    std::vector<WaitingView> waiting;
    for (RequestId id = 0; id < 400; ++id)
        waiting.push_back(waitingOf(id, 100, id % 2));
    const SchedulerContext ctx = contextOf(waiting);
    routeAll(*root, ctx);

    std::map<base::TenantId, int> popsByTenant;
    std::size_t index = 0;
    for (int pops = 0; pops < 200; ++pops) {
        ASSERT_TRUE(root->peek(ctx.now, false, index));
        popsByTenant[ctx.waiting[index].cls.tenant] += 1;
        root->pop(ctx.now, ctx.waiting[index].promptLen);
    }
    // 3:1 over 200 pops = 150 / 50, give or take start-up skew.
    EXPECT_NEAR(popsByTenant[0], 150, 2);
    EXPECT_NEAR(popsByTenant[1], 50, 2);
}

TEST(FairSchedNodeTest, AccountUsagePenalisesTheServedTenant)
{
    SchedNodeConfig fair;
    fair.kind = SchedNodeConfig::Kind::Fair;
    fair.children.push_back(leafConfig("a", 0));
    fair.children.push_back(leafConfig("b", 1));
    auto root = makeSchedNode(fair);

    std::vector<WaitingView> waiting = {
        waitingOf(0, 100, 0), waitingOf(1, 100, 1)};
    const SchedulerContext ctx = contextOf(waiting);

    // Tenant 0 ran a huge decode since the last round.
    root->accountUsage(0, 100'000);

    routeAll(*root, ctx);
    std::size_t index = 0;
    ASSERT_TRUE(root->peek(ctx.now, false, index));
    EXPECT_EQ(ctx.waiting[index].cls.tenant, 1u);
}

TEST(ThrottlerSchedNodeTest, NeverExceedsRateInAnyWindow)
{
    // Property (satellite): tokens dequeued inside any window
    // [t1, t2] never exceed burst + rate * (t2 - t1).
    const double rate = 1000.0;  // tokens per second
    const TokenCount burst = 500;
    const TokenCount cost = 100;

    SchedNodeConfig config;
    config.kind = SchedNodeConfig::Kind::Throttler;
    config.tokensPerSecond = rate;
    config.burstTokens = burst;
    config.children.push_back(leafConfig("leaf", 0));
    auto root = makeSchedNode(config);

    // One greedy round every 50 ms for five simulated seconds.
    std::vector<std::pair<Tick, TokenCount>> dequeues;
    for (int round = 0; round < 100; ++round) {
        const Tick now = secondsToTicks(0.05 * round);
        std::vector<WaitingView> waiting;
        for (RequestId id = 0; id < 64; ++id)
            waiting.push_back(waitingOf(id, cost, 0));
        const SchedulerContext ctx = contextOf(waiting, now);
        routeAll(*root, ctx);
        std::size_t index = 0;
        while (root->peek(now, false, index)) {
            root->pop(now, ctx.waiting[index].promptLen);
            dequeues.emplace_back(now, cost);
        }
    }
    ASSERT_FALSE(dequeues.empty());

    for (std::size_t i = 0; i < dequeues.size(); ++i) {
        TokenCount window_tokens = 0;
        for (std::size_t j = i; j < dequeues.size(); ++j) {
            window_tokens += dequeues[j].second;
            const double span =
                ticksToSeconds(dequeues[j].first -
                               dequeues[i].first);
            EXPECT_LE(static_cast<double>(window_tokens),
                      static_cast<double>(burst) + rate * span +
                          1e-6)
                << "window [" << i << ", " << j << "]";
        }
    }
}

TEST(ThrottlerSchedNodeTest, PostPaidUsageGatesLaterRounds)
{
    SchedNodeConfig config;
    config.kind = SchedNodeConfig::Kind::Throttler;
    config.tokensPerSecond = 100.0;
    config.burstTokens = 200;
    config.children.push_back(leafConfig("leaf", 0));
    auto root = makeSchedNode(config);

    // A decode burst drives the bucket deep negative...
    root->accountUsage(0, 10'000);

    std::vector<WaitingView> waiting = {waitingOf(0, 50, 0)};
    const SchedulerContext ctx = contextOf(waiting, 0);
    routeAll(*root, ctx);
    std::size_t index = 0;
    EXPECT_FALSE(root->peek(0, false, index));
    // ...but the idle force-admit backstop still gets a candidate.
    EXPECT_TRUE(root->peek(0, true, index));
}

TEST(SemaphoreSchedNodeTest, CapsInFlightUntilRelease)
{
    SchedNodeConfig config;
    config.kind = SchedNodeConfig::Kind::Semaphore;
    config.maxInFlight = 2;
    config.children.push_back(leafConfig("leaf", 0));
    auto root = makeSchedNode(config);

    std::vector<WaitingView> waiting = {
        waitingOf(0, 10, 0), waitingOf(1, 10, 0),
        waitingOf(2, 10, 0)};
    const SchedulerContext ctx = contextOf(waiting);
    routeAll(*root, ctx);

    std::size_t index = 0;
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(root->peek(0, false, index));
        root->pop(0, 10);
        root->onAdmitted(0);
    }
    EXPECT_FALSE(root->peek(0, false, index));
    EXPECT_TRUE(root->peek(0, true, index));  // force backstop

    root->onReleased(0);
    EXPECT_TRUE(root->peek(0, false, index));
}

TEST(TenantFairTreeTest, BuildsOneGatedSubtreePerTenant)
{
    TenantTreeSpec spec;
    spec.numTenants = 3;
    spec.tokensPerSecond = 1000.0;
    spec.maxInFlight = 4;
    const SchedNodeConfig config =
        tenantFairTree(spec, QueuePolicyConfig{});
    auto root = makeSchedNode(config);

    std::vector<LeafSchedNode *> leaves;
    root->collectLeaves(leaves);
    ASSERT_EQ(leaves.size(), 3u);
    for (base::TenantId t = 0; t < 3; ++t) {
        EXPECT_TRUE(root->servesTenant(t));
        EXPECT_TRUE(leaves[t]->servesTenant(t));
        EXPECT_FALSE(leaves[t]->servesTenant((t + 1) % 3));
    }
}

TEST(TreeSchedulingPolicyTest, DecideInterleavesTenantsFairly)
{
    SchedulerConfig config;
    config.tenantTree = true;
    config.tenantSpec.numTenants = 2;
    auto policy = makeSchedulingPolicy(config);
    EXPECT_NE(policy->name().find("tenant-tree"), std::string::npos);

    // Queue order is all of tenant 0 first; fair dequeue must
    // alternate instead of draining tenant 0 as flat FCFS would.
    std::vector<WaitingView> waiting;
    for (RequestId id = 0; id < 4; ++id)
        waiting.push_back(waitingOf(id, 10, 0));
    for (RequestId id = 4; id < 8; ++id)
        waiting.push_back(waitingOf(id, 10, 1));
    const SchedulerContext ctx = contextOf(waiting);

    const SchedulingDecision decision = policy->decide(ctx);
    ASSERT_EQ(decision.admit.size(), 8u);
    EXPECT_EQ(decision.admit[0], 0u);
    EXPECT_EQ(decision.admit[1], 4u);
    EXPECT_EQ(decision.admit[2], 1u);
    EXPECT_EQ(decision.admit[3], 5u);
}

TEST(TreeSchedulingPolicyTest, IdleForceAdmitBypassesGates)
{
    // One tenant, throttled to nothing: an idle system must still
    // make progress through the tree (not the engine's flat
    // backstop, which would skip the tree's accounting).
    SchedulerConfig config;
    config.tenantTree = true;
    config.tenantSpec.numTenants = 1;
    config.tenantSpec.tokensPerSecond = 0.001;
    config.tenantSpec.burstTokens = 1;
    auto policy = makeSchedulingPolicy(config);

    std::vector<WaitingView> waiting = {waitingOf(7, 500, 0)};
    const SchedulerContext ctx = contextOf(waiting);
    const SchedulingDecision decision = policy->decide(ctx);
    ASSERT_EQ(decision.admit.size(), 1u);
    EXPECT_EQ(decision.admit.front(), 7u);
}

TEST(TreeSchedulingPolicyTest, VictimOrderShedsOverShareTenantFirst)
{
    SchedulerConfig config;
    config.tenantTree = true;
    config.tenantSpec.numTenants = 2;
    auto policy = makeSchedulingPolicy(config);

    // Tenant 0 holds 10x the resident tokens of tenant 1 under
    // equal weights: its requests must rank first, newest first
    // within the tenant.
    std::vector<RunningView> running;
    const auto add = [&](RequestId id, base::TenantId tenant,
                         TokenCount resident,
                         std::uint64_t admit_seq) {
        RunningView view;
        view.id = id;
        view.promptLen = resident;
        view.admitSeq = admit_seq;
        view.cls.tenant = tenant;
        running.push_back(view);
    };
    add(20, 0, 1000, 1);
    add(21, 1, 100, 2);
    add(22, 0, 1000, 3);

    SchedulerContext ctx;
    ctx.capacityTokens = 10'000;
    ctx.running = running;

    std::vector<RequestId> victims;
    policy->victimOrder(ctx, VictimOrder::NewestFirst, victims);
    EXPECT_EQ(victims, (std::vector<RequestId>{22, 20, 21}));
}

TEST(TreeSchedulingPolicyTest, UnknownTenantFallsBackToSpill)
{
    SchedulerConfig config;
    config.tenantTree = true;
    config.tenantSpec.numTenants = 2;
    auto policy = makeSchedulingPolicy(config);

    // Tenant 7 has no leaf; the request must still schedule.
    std::vector<WaitingView> waiting = {waitingOf(3, 10, 7)};
    const SchedulerContext ctx = contextOf(waiting);
    const SchedulingDecision decision = policy->decide(ctx);
    ASSERT_EQ(decision.admit.size(), 1u);
    EXPECT_EQ(decision.admit.front(), 3u);
}

} // namespace
} // namespace core

namespace workload {
namespace {

TEST(TenantMixTest, ZipfSharesFollowTheExponent)
{
    TenantMix mix;
    mix.numTenants = 4;
    mix.zipfExponent = 1.0;
    const std::vector<double> shares = mix.shares();
    ASSERT_EQ(shares.size(), 4u);
    EXPECT_DOUBLE_EQ(shares[0], 1.0);
    EXPECT_DOUBLE_EQ(shares[1], 0.5);
    EXPECT_DOUBLE_EQ(shares[3], 0.25);
}

TEST(TenantMixTest, AssignmentIsDeterministicAndShareWeighted)
{
    Dataset dataset = makeDistribution1(4000, 7);
    TenantMix mix;
    mix.numTenants = 3;
    mix.weights = {8.0, 1.0, 1.0};
    mix.sloTiers = 2;
    assignTenantMix(dataset, mix, 99);

    std::map<base::TenantId, int> counts;
    for (const RequestSpec &spec : dataset.requests) {
        counts[spec.cls.tenant] += 1;
        EXPECT_EQ(spec.cls.sloTier,
                  static_cast<int>(spec.cls.tenant % 2));
    }
    // 80/10/10 split over 4000 draws.
    EXPECT_NEAR(counts[0], 3200, 120);
    EXPECT_NEAR(counts[1], 400, 80);
    EXPECT_NEAR(counts[2], 400, 80);

    Dataset again = makeDistribution1(4000, 7);
    assignTenantMix(again, mix, 99);
    for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
        EXPECT_EQ(again.requests[i].cls,
                  dataset.requests[i].cls);
    }
}

TEST(TenantMixTest, TreeWeightsAreTopNormalised)
{
    TenantMix mix;
    mix.numTenants = 3;
    mix.zipfExponent = 1.0;
    const std::vector<double> weights = tenantTreeWeights(mix);
    ASSERT_EQ(weights.size(), 3u);
    EXPECT_DOUBLE_EQ(weights[0], 1.0);
    EXPECT_DOUBLE_EQ(weights[1], 0.5);
}

} // namespace
} // namespace workload
} // namespace lightllm
