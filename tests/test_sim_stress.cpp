/**
 * @file
 * EventQueue stress tests: randomized schedule/cancel/reschedule
 * churn checked against a naive reference model, plus the
 * zero-allocation contract of the steady-state schedule/fire path.
 *
 * This binary replaces global operator new/delete with counting
 * versions so the allocation test can assert that a warmed queue
 * stops touching the allocator. The suite runs under the sanitizer
 * CI job, where the arena recycling and handler relocation paths
 * are exercised under ASan/UBSan.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "sim/event_queue.hh"
#include "test_fixtures.hh"
#include "workload/datasets.hh"

namespace {

/** Process-wide allocation counter (see operator new below). */
std::uint64_t g_allocations = 0;

} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

// The nothrow forms must be replaced too (libstdc++'s temporary
// buffers use them); leaving them default would pair the library
// allocator with our free() and trip ASan's mismatch check.
void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    ++g_allocations;
    return std::malloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    ++g_allocations;
    return std::malloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace lightllm {
namespace sim {
namespace {

/** Deterministic 64-bit LCG (tests must not depend on libc rand). */
class Lcg
{
  public:
    explicit Lcg(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        state_ = state_ * 6364136223846793005ull +
            1442695040888963407ull;
        return state_ >> 11;
    }

    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

  private:
    std::uint64_t state_;
};

/** Reference model of one live event. */
struct RefEvent
{
    EventId id;
    Tick when;
    EventClass cls;
    /** Insertion sequence (re-stamped by reschedule), the FIFO
     *  tie-break the queue promises. */
    std::uint64_t seq;
    /** Identity delivered by the real handler when it fires. */
    std::uint64_t tag;
};

/**
 * Randomized churn: schedule / cancel / reschedule / fire against a
 * naive model that re-derives the expected firing order by stable
 * sort. Verifies firing order, pending() and eventTick() agreement,
 * and that stale handles always miss.
 */
TEST(EventQueueStressTest, ChurnMatchesNaiveReferenceModel)
{
    EventQueue queue;
    Lcg rng(0x5eedful);

    std::vector<RefEvent> live;
    std::vector<EventId> dead; // fired or cancelled handles
    std::vector<std::uint64_t> fired_tags;
    std::uint64_t next_seq = 0;
    std::uint64_t next_tag = 0;
    Tick now = 0;

    for (int op = 0; op < 20000; ++op) {
        const std::uint64_t dice = rng.below(100);
        if (dice < 45 || live.empty()) {
            // Schedule at or after the clock.
            const Tick when = now + static_cast<Tick>(rng.below(64));
            const EventClass cls = rng.below(4) == 0
                ? EventClass::Step
                : EventClass::Delivery;
            const std::uint64_t tag = next_tag++;
            const EventId id = queue.schedule(
                when,
                [&fired_tags, tag](Tick) {
                    fired_tags.push_back(tag);
                },
                cls);
            live.push_back(RefEvent{id, when, cls, next_seq++, tag});
        } else if (dice < 60) {
            // Cancel a random live event.
            const std::size_t at = rng.below(live.size());
            EXPECT_TRUE(queue.cancel(live[at].id));
            dead.push_back(live[at].id);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(at));
        } else if (dice < 75) {
            // Reschedule a random live event; it re-sequences as if
            // newly scheduled.
            const std::size_t at = rng.below(live.size());
            const Tick when = now + static_cast<Tick>(rng.below(64));
            EXPECT_TRUE(queue.reschedule(live[at].id, when));
            live[at].when = when;
            live[at].seq = next_seq++;
        } else if (dice < 85) {
            // Probe: live handles resolve, dead handles miss.
            if (!live.empty()) {
                const RefEvent &event =
                    live[rng.below(live.size())];
                EXPECT_TRUE(queue.pending(event.id));
                EXPECT_EQ(queue.eventTick(event.id), event.when);
            }
            if (!dead.empty()) {
                const EventId stale =
                    dead[rng.below(dead.size())];
                EXPECT_FALSE(queue.pending(stale));
                EXPECT_FALSE(queue.cancel(stale));
                EXPECT_FALSE(queue.reschedule(stale, now + 1));
            }
        } else {
            // Fire everything due up to a horizon and compare the
            // emitted tag order with the model's stable sort over
            // (when, class, sequence).
            if (queue.empty())
                continue;
            const Tick horizon =
                queue.nextTick() + static_cast<Tick>(rng.below(16));
            std::vector<RefEvent> due;
            std::erase_if(live, [&](const RefEvent &event) {
                if (event.when > horizon)
                    return false;
                due.push_back(event);
                return true;
            });
            std::stable_sort(
                due.begin(), due.end(),
                [](const RefEvent &a, const RefEvent &b) {
                    if (a.when != b.when)
                        return a.when < b.when;
                    if (a.cls != b.cls)
                        return a.cls < b.cls;
                    return a.seq < b.seq;
                });
            fired_tags.clear();
            EXPECT_EQ(queue.runUntil(horizon), due.size());
            ASSERT_EQ(fired_tags.size(), due.size());
            for (std::size_t i = 0; i < due.size(); ++i)
                EXPECT_EQ(fired_tags[i], due[i].tag);
            for (const RefEvent &event : due)
                dead.push_back(event.id);
            now = std::max(now, horizon);
        }
        EXPECT_EQ(queue.size(), live.size());
    }
}

/**
 * The zero-alloc contract (DESIGN.md §8): once the arena and heap
 * have grown to the workload's high-water pending count, scheduling
 * and firing events with inline-sized callables performs no heap
 * allocations at all.
 */
TEST(EventQueueAllocTest, WarmedScheduleFirePathIsAllocationFree)
{
    EventQueue queue;
    std::uint64_t fired = 0;

    // Warm up: grow the arena and heap to the high-water mark this
    // test will ever reach, then drain.
    std::vector<EventId> warm;
    for (Tick t = 0; t < 64; ++t) {
        warm.push_back(queue.schedule(
            t + 1, [&fired](Tick) { ++fired; }));
    }
    queue.runUntil(64);
    ASSERT_EQ(fired, 64u);

    const std::uint64_t heap_fallbacks_before =
        EventHandler::heapFallbackCount();
    const std::uint64_t allocations_before = g_allocations;

    // Steady state: schedule/fire churn (including cancels and
    // reschedules) entirely within the warmed capacity.
    Tick now = 64;
    for (int round = 0; round < 1000; ++round) {
        EventId ids[32];
        for (int i = 0; i < 32; ++i) {
            ids[i] = queue.schedule(
                now + 1 + i % 7, [&fired](Tick) { ++fired; });
        }
        for (int i = 0; i < 32; i += 4)
            queue.cancel(ids[i]);
        for (int i = 1; i < 32; i += 4)
            queue.reschedule(ids[i], now + 3);
        now += 8;
        queue.runUntil(now);
    }

    EXPECT_EQ(g_allocations, allocations_before)
        << "steady-state schedule/fire touched the allocator";
    EXPECT_EQ(EventHandler::heapFallbackCount(),
              heap_fallbacks_before)
        << "a hot-path callable outgrew the inline buffer";
    EXPECT_TRUE(queue.empty());
}

/**
 * Slab recycling on the engine submit path: once the engine's
 * request slab has grown to the workload's concurrency high-water
 * mark, later arrivals reuse recycled EngineRequest slots instead
 * of allocating fresh ones. The slab's size therefore tracks peak
 * concurrency, not requests served — regressing to one allocation
 * per arrival grows it to the full request count.
 */
TEST(EngineAllocTest, SubmitPathReusesRequestSlab)
{
    const auto dataset = workload::makeShareGpt(400, 13);
    engine::ServingEngine engine(
        testfx::tinyPerf(32.0),
        core::makeScheduler(
            core::SchedulerConfig::pastFutureDefault(0.05)));

    // Open-loop arrivals spaced so concurrency stays far below the
    // request count (the slab high-water is what gets warmed).
    Tick arrival = 0;
    for (const auto &spec : dataset.requests) {
        engine.submitAt(spec, arrival);
        arrival += 100000;
    }

    std::uint64_t half_allocations = 0;
    const std::size_t half = dataset.requests.size() / 2;
    std::size_t finished = 0;
    engine.setOnFinish(
        [&](const workload::RequestSpec &, Tick) {
            if (++finished == half)
                half_allocations = g_allocations;
        });

    const std::uint64_t before = g_allocations;
    const auto report = engine.run();
    ASSERT_EQ(report.numFinished, dataset.requests.size());
    ASSERT_GT(half_allocations, 0u);

    // The sharp contract: the slab stopped growing at the
    // concurrency high-water mark, far below the 400 requests
    // served (a per-arrival make_unique regression reaches 400).
    EXPECT_LT(engine.requestSlabSize(), dataset.requests.size() / 2)
        << "request slots are not being recycled";
    EXPECT_GT(engine.requestSlabSize(), 0u);

    // Warm-up (slab growth, event arena, metric buffers) is paid in
    // the first half; the steady-state second half must not exceed
    // it.
    const std::uint64_t first_half = half_allocations - before;
    const std::uint64_t second_half =
        g_allocations - half_allocations;
    EXPECT_LT(second_half, first_half)
        << "first half " << first_half << ", second half "
        << second_half
        << ": the submit path lost its warm-up amortization";
}

/** Callables beyond kInlineSize must still work (heap fallback). */
TEST(EventQueueAllocTest, OversizedCallablesFallBackToHeap)
{
    EventQueue queue;
    struct Big
    {
        char payload[EventHandler::kInlineSize + 16];
    };
    Big big{};
    big.payload[0] = 42;
    const std::uint64_t fallbacks_before =
        EventHandler::heapFallbackCount();
    char seen = 0;
    queue.schedule(1, [big, &seen](Tick) { seen = big.payload[0]; });
    EXPECT_EQ(EventHandler::heapFallbackCount(),
              fallbacks_before + 1);
    queue.runUntil(1);
    EXPECT_EQ(seen, 42);
}

} // namespace
} // namespace sim
} // namespace lightllm
