/**
 * @file
 * Unit tests for SLA metrics, the streaming collector, and report
 * derivations, against hand-computed values.
 */

#include <gtest/gtest.h>

#include "metrics/collector.hh"
#include "metrics/report.hh"
#include "metrics/sla.hh"

namespace lightllm {
namespace metrics {
namespace {

RequestRecord
record(Tick arrival, Tick first, Tick finish, Tick max_gap,
       TokenCount tokens)
{
    RequestRecord r;
    r.id = 1;
    r.arrival = arrival;
    r.firstToken = first;
    r.finish = finish;
    r.maxGap = max_gap;
    r.outputTokens = tokens;
    return r;
}

TEST(RequestRecordTest, TtftIsFirstTokenMinusArrival)
{
    const auto r = record(secondsToTicks(2.0), secondsToTicks(5.0),
                          secondsToTicks(9.0), 100, 10);
    EXPECT_EQ(r.ttft(), secondsToTicks(3.0));
}

TEST(RequestRecordTest, AvgTpotDividesByGapCount)
{
    // 9 gaps over 4.5 seconds -> 0.5 s per output token.
    const auto r = record(0, secondsToTicks(1.0),
                          secondsToTicks(5.5), 0, 10);
    EXPECT_DOUBLE_EQ(r.avgTpotSeconds(), 0.5);
}

TEST(RequestRecordTest, SingleTokenHasZeroTpot)
{
    const auto r = record(0, secondsToTicks(1.0),
                          secondsToTicks(1.0), 0, 1);
    EXPECT_DOUBLE_EQ(r.avgTpotSeconds(), 0.0);
}

TEST(SlaSpecTest, CompliantRequiresBothLimits)
{
    const SlaSpec sla = SlaSpec::small7b13b();
    // TTFT 9.9s, MTPOT 1.4s: compliant.
    EXPECT_TRUE(sla.compliant(record(0, secondsToTicks(9.9),
                                     secondsToTicks(20.0),
                                     secondsToTicks(1.4), 10)));
    // TTFT violated.
    EXPECT_FALSE(sla.compliant(record(0, secondsToTicks(10.1),
                                      secondsToTicks(20.0),
                                      secondsToTicks(0.5), 10)));
    // MTPOT violated.
    EXPECT_FALSE(sla.compliant(record(0, secondsToTicks(1.0),
                                      secondsToTicks(20.0),
                                      secondsToTicks(1.6), 10)));
}

TEST(SlaSpecTest, PresetsMatchThePaper)
{
    EXPECT_EQ(SlaSpec::small7b13b().ttftLimit, secondsToTicks(10.0));
    EXPECT_EQ(SlaSpec::small7b13b().mtpotLimit, secondsToTicks(1.5));
    EXPECT_EQ(SlaSpec::large70b().ttftLimit, secondsToTicks(15.0));
    EXPECT_EQ(SlaSpec::large70b().mtpotLimit, secondsToTicks(5.0));
}

TEST(CollectorTest, DurationWeightedMemoryAverages)
{
    MetricsCollector collector(1000);
    // Step 1: 500/1000 used for 30 ticks; step 2: 900/1000 for 10.
    collector.onDecodeStep(4, 500, 600, 30, 30);
    collector.onDecodeStep(4, 900, 950, 40, 10);
    const auto report = collector.finish("test", 40);
    EXPECT_NEAR(report.avgConsumedMemory,
                (0.5 * 30 + 0.9 * 10) / 40.0, 1e-12);
    EXPECT_NEAR(report.avgFutureRequired,
                (0.6 * 30 + 0.95 * 10) / 40.0, 1e-12);
    EXPECT_EQ(report.decodeSteps, 2);
    EXPECT_DOUBLE_EQ(report.avgBatchSize, 4.0);
}

TEST(CollectorTest, EvictionCountsSplitFirstFromRepeat)
{
    MetricsCollector collector(1000);
    collector.onEviction(true);
    collector.onEviction(false);
    collector.onEviction(true);
    const auto report = collector.finish("test", 10);
    EXPECT_EQ(report.evictionEvents, 3);
    EXPECT_EQ(report.requestsEvicted, 2u);
}

TEST(CollectorTest, TimeseriesRespectsInterval)
{
    MetricsCollector collector(1000, 2);
    for (int step = 1; step <= 7; ++step)
        collector.onDecodeStep(1, 100, 100, step, 1);
    const auto report = collector.finish("test", 7);
    EXPECT_EQ(report.timeseries.size(), 3u);  // steps 2, 4, 6
    EXPECT_EQ(report.timeseries[0].tick, 2);
}

TEST(CollectorTest, ResetMeasurementDiscardsHistory)
{
    MetricsCollector collector(1000);
    collector.onDecodeStep(2, 500, 500, 10, 10);
    collector.onRequestFinished(record(0, 1, 2, 1, 100));
    collector.onEviction(true);
    collector.resetMeasurement(50);
    collector.onDecodeStep(8, 800, 800, 60, 10);
    collector.onRequestFinished(record(50, 60, 70, 1, 40));
    const auto report = collector.finish("test", 150);
    EXPECT_EQ(report.numFinished, 1u);
    EXPECT_EQ(report.totalOutputTokens, 40);
    EXPECT_EQ(report.evictionEvents, 0);
    EXPECT_DOUBLE_EQ(report.avgBatchSize, 8.0);
    // Makespan excludes the warmup portion.
    EXPECT_EQ(report.makespan, 100);
}

RunReport
twoRequestReport()
{
    RunReport report;
    report.makespan = secondsToTicks(10.0);
    // Compliant: 300 tokens. Non-compliant (TTFT 12s): 700 tokens.
    report.requests.push_back(record(0, secondsToTicks(1.0),
                                     secondsToTicks(8.0),
                                     secondsToTicks(0.1), 300));
    report.requests.push_back(record(0, secondsToTicks(12.0),
                                     secondsToTicks(19.0),
                                     secondsToTicks(0.1), 700));
    report.totalOutputTokens = 1000;
    report.numFinished = 2;
    return report;
}

TEST(RunReportTest, ThroughputCountsEverything)
{
    const auto report = twoRequestReport();
    EXPECT_DOUBLE_EQ(report.throughputTokensPerSec(), 100.0);
}

TEST(RunReportTest, GoodputCountsCompliantOnly)
{
    const auto report = twoRequestReport();
    const auto sla = SlaSpec::small7b13b();
    EXPECT_DOUBLE_EQ(report.goodputTokensPerSec(sla), 30.0);
    EXPECT_DOUBLE_EQ(report.slaCompliantFraction(sla), 0.5);
}

TEST(RunReportTest, EvictedRatioCanExceedOne)
{
    RunReport report;
    report.numFinished = 10;
    report.evictionEvents = 15;
    EXPECT_DOUBLE_EQ(report.evictedReqRatio(), 1.5);
}

TEST(RunReportTest, EmptyReportIsAllZero)
{
    const RunReport report;
    const auto sla = SlaSpec::small7b13b();
    EXPECT_DOUBLE_EQ(report.throughputTokensPerSec(), 0.0);
    EXPECT_DOUBLE_EQ(report.goodputTokensPerSec(sla), 0.0);
    EXPECT_DOUBLE_EQ(report.slaCompliantFraction(sla), 0.0);
    EXPECT_DOUBLE_EQ(report.evictedReqRatio(), 0.0);
    EXPECT_DOUBLE_EQ(report.p99TtftSeconds(), 0.0);
}

TEST(RunReportTest, P99UsesNearestRank)
{
    RunReport report;
    report.makespan = 1;
    for (int i = 1; i <= 100; ++i) {
        report.requests.push_back(
            record(0, secondsToTicks(static_cast<double>(i)),
                   secondsToTicks(200.0), secondsToTicks(0.1), 1));
    }
    EXPECT_DOUBLE_EQ(report.p99TtftSeconds(), 99.0);
}

TEST(RunReportTest, SummaryMentionsKeyNumbers)
{
    auto report = twoRequestReport();
    report.schedulerName = "TestSched";
    const auto text = report.summary(SlaSpec::small7b13b());
    EXPECT_NE(text.find("TestSched"), std::string::npos);
    EXPECT_NE(text.find("goodput"), std::string::npos);
    EXPECT_NE(text.find("30.0"), std::string::npos);
}

} // namespace
} // namespace metrics
} // namespace lightllm
