/**
 * @file
 * Unit tests for SLA metrics, the streaming collector, and report
 * derivations, against hand-computed values.
 */

#include <gtest/gtest.h>

#include "metrics/collector.hh"
#include "metrics/report.hh"
#include "metrics/sla.hh"

namespace lightllm {
namespace metrics {
namespace {

RequestRecord
record(Tick arrival, Tick first, Tick finish, Tick max_gap,
       TokenCount tokens)
{
    RequestRecord r;
    r.id = 1;
    r.arrival = arrival;
    r.firstToken = first;
    r.finish = finish;
    r.maxGap = max_gap;
    r.outputTokens = tokens;
    return r;
}

TEST(RequestRecordTest, TtftIsFirstTokenMinusArrival)
{
    const auto r = record(secondsToTicks(2.0), secondsToTicks(5.0),
                          secondsToTicks(9.0), 100, 10);
    EXPECT_EQ(r.ttft(), secondsToTicks(3.0));
}

TEST(RequestRecordTest, AvgTpotDividesByGapCount)
{
    // 9 gaps over 4.5 seconds -> 0.5 s per output token.
    const auto r = record(0, secondsToTicks(1.0),
                          secondsToTicks(5.5), 0, 10);
    EXPECT_DOUBLE_EQ(r.avgTpotSeconds(), 0.5);
}

TEST(RequestRecordTest, SingleTokenHasZeroTpot)
{
    const auto r = record(0, secondsToTicks(1.0),
                          secondsToTicks(1.0), 0, 1);
    EXPECT_DOUBLE_EQ(r.avgTpotSeconds(), 0.0);
}

TEST(SlaSpecTest, CompliantRequiresBothLimits)
{
    const SlaSpec sla = SlaSpec::small7b13b();
    // TTFT 9.9s, MTPOT 1.4s: compliant.
    EXPECT_TRUE(sla.compliant(record(0, secondsToTicks(9.9),
                                     secondsToTicks(20.0),
                                     secondsToTicks(1.4), 10)));
    // TTFT violated.
    EXPECT_FALSE(sla.compliant(record(0, secondsToTicks(10.1),
                                      secondsToTicks(20.0),
                                      secondsToTicks(0.5), 10)));
    // MTPOT violated.
    EXPECT_FALSE(sla.compliant(record(0, secondsToTicks(1.0),
                                      secondsToTicks(20.0),
                                      secondsToTicks(1.6), 10)));
}

TEST(SlaSpecTest, PresetsMatchThePaper)
{
    EXPECT_EQ(SlaSpec::small7b13b().ttftLimit, secondsToTicks(10.0));
    EXPECT_EQ(SlaSpec::small7b13b().mtpotLimit, secondsToTicks(1.5));
    EXPECT_EQ(SlaSpec::large70b().ttftLimit, secondsToTicks(15.0));
    EXPECT_EQ(SlaSpec::large70b().mtpotLimit, secondsToTicks(5.0));
}

TEST(CollectorTest, DurationWeightedMemoryAverages)
{
    MetricsCollector collector(1000);
    // Step 1: 500/1000 used for 30 ticks; step 2: 900/1000 for 10.
    collector.onDecodeStep(4, 500, 600, 600, 30, 30);
    collector.onDecodeStep(4, 900, 950, 950, 40, 10);
    const auto report = collector.finish("test", 40);
    EXPECT_NEAR(report.avgConsumedMemory,
                (0.5 * 30 + 0.9 * 10) / 40.0, 1e-12);
    EXPECT_NEAR(report.avgFutureRequired,
                (0.6 * 30 + 0.95 * 10) / 40.0, 1e-12);
    EXPECT_EQ(report.decodeSteps, 2);
    EXPECT_DOUBLE_EQ(report.avgBatchSize, 4.0);
}

TEST(CollectorTest, EvictionCountsSplitFirstFromRepeat)
{
    MetricsCollector collector(1000);
    collector.onEviction(true);
    collector.onEviction(false);
    collector.onEviction(true);
    const auto report = collector.finish("test", 10);
    EXPECT_EQ(report.evictionEvents, 3);
    EXPECT_EQ(report.requestsEvicted, 2u);
}

TEST(CollectorTest, TimeseriesRespectsInterval)
{
    MetricsCollector collector(1000, 2);
    for (int step = 1; step <= 7; ++step)
        collector.onDecodeStep(1, 100, 100, 100, step, 1);
    const auto report = collector.finish("test", 7);
    EXPECT_EQ(report.timeseries.size(), 3u);  // steps 2, 4, 6
    EXPECT_EQ(report.timeseries[0].tick, 2);
}

TEST(CollectorTest, ResetMeasurementDiscardsHistory)
{
    MetricsCollector collector(1000);
    collector.onDecodeStep(2, 500, 500, 500, 10, 10);
    collector.onRequestFinished(record(0, 1, 2, 1, 100));
    collector.onEviction(true);
    collector.resetMeasurement(50);
    collector.onDecodeStep(8, 800, 800, 800, 60, 10);
    collector.onRequestFinished(record(50, 60, 70, 1, 40));
    const auto report = collector.finish("test", 150);
    EXPECT_EQ(report.numFinished, 1u);
    EXPECT_EQ(report.totalOutputTokens, 40);
    EXPECT_EQ(report.evictionEvents, 0);
    EXPECT_DOUBLE_EQ(report.avgBatchSize, 8.0);
    // Makespan excludes the warmup portion.
    EXPECT_EQ(report.makespan, 100);
}

RunReport
twoRequestReport()
{
    RunReport report;
    report.makespan = secondsToTicks(10.0);
    // Compliant: 300 tokens. Non-compliant (TTFT 12s): 700 tokens.
    report.requests.push_back(record(0, secondsToTicks(1.0),
                                     secondsToTicks(8.0),
                                     secondsToTicks(0.1), 300));
    report.requests.push_back(record(0, secondsToTicks(12.0),
                                     secondsToTicks(19.0),
                                     secondsToTicks(0.1), 700));
    report.totalOutputTokens = 1000;
    report.numFinished = 2;
    return report;
}

TEST(RunReportTest, ThroughputCountsEverything)
{
    const auto report = twoRequestReport();
    EXPECT_DOUBLE_EQ(report.throughputTokensPerSec(), 100.0);
}

TEST(RunReportTest, GoodputCountsCompliantOnly)
{
    const auto report = twoRequestReport();
    const auto sla = SlaSpec::small7b13b();
    EXPECT_DOUBLE_EQ(report.goodputTokensPerSec(sla), 30.0);
    EXPECT_DOUBLE_EQ(report.slaCompliantFraction(sla), 0.5);
}

TEST(RunReportTest, EvictedRatioCanExceedOne)
{
    RunReport report;
    report.numFinished = 10;
    report.evictionEvents = 15;
    EXPECT_DOUBLE_EQ(report.evictedReqRatio(), 1.5);
}

TEST(RunReportTest, EmptyReportIsAllZero)
{
    const RunReport report;
    const auto sla = SlaSpec::small7b13b();
    EXPECT_DOUBLE_EQ(report.throughputTokensPerSec(), 0.0);
    EXPECT_DOUBLE_EQ(report.goodputTokensPerSec(sla), 0.0);
    EXPECT_DOUBLE_EQ(report.slaCompliantFraction(sla), 0.0);
    EXPECT_DOUBLE_EQ(report.evictedReqRatio(), 0.0);
    EXPECT_DOUBLE_EQ(report.p99TtftSeconds(), 0.0);
}

TEST(RunReportTest, P99UsesNearestRank)
{
    RunReport report;
    report.makespan = 1;
    for (int i = 1; i <= 100; ++i) {
        report.requests.push_back(
            record(0, secondsToTicks(static_cast<double>(i)),
                   secondsToTicks(200.0), secondsToTicks(0.1), 1));
    }
    EXPECT_DOUBLE_EQ(report.p99TtftSeconds(), 99.0);
}

TEST(RunReportTest, PercentileFamilyIsConsistent)
{
    RunReport report;
    report.makespan = 1;
    for (int i = 1; i <= 100; ++i) {
        report.requests.push_back(record(
            0, secondsToTicks(static_cast<double>(i)),
            secondsToTicks(200.0),
            secondsToTicks(static_cast<double>(i) / 10.0), 1));
    }
    EXPECT_DOUBLE_EQ(report.p50TtftSeconds(), 50.0);
    EXPECT_DOUBLE_EQ(report.p90TtftSeconds(), 90.0);
    EXPECT_DOUBLE_EQ(report.p99TtftSeconds(), 99.0);
    EXPECT_DOUBLE_EQ(report.p50MtpotSeconds(), 5.0);
    EXPECT_DOUBLE_EQ(report.p90MtpotSeconds(), 9.0);
    EXPECT_DOUBLE_EQ(report.p99MtpotSeconds(), 9.9);
    EXPECT_LE(report.p50TtftSeconds(), report.p90TtftSeconds());
    EXPECT_LE(report.p90TtftSeconds(), report.p99TtftSeconds());
}

TEST(RunReportTest, TtftAttainmentIgnoresMtpot)
{
    const auto sla = SlaSpec::small7b13b();
    RunReport report;
    // TTFT fine, MTPOT violated: attains TTFT, not the full SLA.
    report.requests.push_back(record(0, secondsToTicks(1.0),
                                     secondsToTicks(30.0),
                                     secondsToTicks(9.0), 10));
    // TTFT violated.
    report.requests.push_back(record(0, secondsToTicks(11.0),
                                     secondsToTicks(30.0),
                                     secondsToTicks(0.1), 10));
    EXPECT_DOUBLE_EQ(report.ttftAttainment(sla), 0.5);
    EXPECT_DOUBLE_EQ(report.slaCompliantFraction(sla), 0.0);
}

TEST(RunReportTest, ShedRateOverOfferedRequests)
{
    RunReport report;
    EXPECT_DOUBLE_EQ(report.shedRate(), 0.0);
    report.offeredRequests = 200;
    report.shedRequests = 50;
    EXPECT_DOUBLE_EQ(report.shedRate(), 0.25);
}

TEST(RunReportTest, MergePreservesPercentilesAndFleetCounters)
{
    RunReport a;
    a.numFinished = 1;
    a.makespan = secondsToTicks(10.0);
    a.shedRequests = 2;
    a.offeredRequests = 10;
    a.instanceSeconds = 30.0;
    a.scaleUpEvents = 1;
    a.peakInstances = 3;
    a.requests.push_back(record(0, secondsToTicks(1.0),
                                secondsToTicks(5.0),
                                secondsToTicks(0.2), 10));
    RunReport b;
    b.numFinished = 1;
    b.makespan = secondsToTicks(8.0);
    b.shedRequests = 1;
    b.offeredRequests = 5;
    b.instanceSeconds = 12.5;
    b.scaleDownEvents = 2;
    b.peakInstances = 2;
    b.requests.push_back(record(0, secondsToTicks(3.0),
                                secondsToTicks(5.0),
                                secondsToTicks(0.4), 10));

    const auto merged = mergeReports({a, b}, "fleet");
    // Percentiles come from the concatenated records, so cluster
    // reports expose the same p50/p90 family as engines.
    EXPECT_DOUBLE_EQ(merged.p50TtftSeconds(), 1.0);
    EXPECT_DOUBLE_EQ(merged.p90TtftSeconds(), 3.0);
    EXPECT_EQ(merged.shedRequests, 3);
    EXPECT_EQ(merged.offeredRequests, 15);
    EXPECT_DOUBLE_EQ(merged.instanceSeconds, 42.5);
    EXPECT_EQ(merged.scaleUpEvents, 1);
    EXPECT_EQ(merged.scaleDownEvents, 2);
    EXPECT_EQ(merged.peakInstances, 3u);
}

TEST(RunReportTest, SummaryMentionsKeyNumbers)
{
    auto report = twoRequestReport();
    report.schedulerName = "TestSched";
    const auto text = report.summary(SlaSpec::small7b13b());
    EXPECT_NE(text.find("TestSched"), std::string::npos);
    EXPECT_NE(text.find("goodput"), std::string::npos);
    EXPECT_NE(text.find("30.0"), std::string::npos);
}

} // namespace
} // namespace metrics
} // namespace lightllm
