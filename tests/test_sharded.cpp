/**
 * @file
 * Sharded parallel co-simulation: determinism and shard-ownership
 * tests for sim::ShardedSimContext (DESIGN.md §9).
 *
 * The headline contract is *byte identity*: a fleet run sharded
 * across K worker threads must serialize — summary JSON and the full
 * per-request CSV — to exactly the bytes of the single-threaded
 * run. These tests sweep K in {1, 2, 8} over every cross-shard
 * event source (router dispatch, drain re-dispatch, work stealing,
 * autoscale provisioning, disagg KV handoff) so a merge that fired
 * even one event out of (tick, class, FIFO) order shows up as a
 * diff, not a tolerance.
 *
 * The suite runs under the ThreadSanitizer CI job (label: sharded),
 * where the epoch-barrier handshake and mailbox commits are checked
 * for data races.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli_scenario.hh"
#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "disagg/disagg_cluster.hh"
#include "engine/serving_engine.hh"
#include "metrics/report_io.hh"
#include "sim/sharded_sim_context.hh"
#include "sim/sim_context.hh"
#include "test_fixtures.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

namespace lightllm {
namespace {

using testfx::tinyPerf;

/** Run a CLI scenario at a given thread count and serialize the
 *  report to the exact bytes users would see. */
std::string
runSerialized(cli::CliOptions options, std::size_t threads)
{
    options.simThreads = threads;
    const cli::Scenario scenario = cli::assembleScenario(options);
    const metrics::RunReport report = cli::runScenario(scenario);
    std::ostringstream oss;
    metrics::writeSummaryJson(oss, report, scenario.sla);
    metrics::writeRequestsCsv(oss, report, scenario.sla);
    return oss.str();
}

/** Demand byte identity across 1, 2, and 8 compute threads. */
void
expectThreadInvariant(const cli::CliOptions &options)
{
    const std::string serial = runSerialized(options, 1);
    EXPECT_EQ(serial, runSerialized(options, 2)) << "2 threads";
    EXPECT_EQ(serial, runSerialized(options, 8)) << "8 threads";
}

TEST(ShardedDeterminism, FleetByteIdenticalAcrossThreadCounts)
{
    // Heavy-tailed closed-loop load with memory pressure: the
    // aggressive policy forces evictions and re-admissions, whose
    // timing any merge-order slip would perturb.
    cli::CliOptions options;
    options.workload = "sharegpt-o1";
    options.requests = 96;
    options.clients = 32;
    options.instances = 4;
    options.scheduler = "aggressive";
    options.overcommit = 0.99;
    options.routing = "future-memory";
    expectThreadInvariant(options);
}

TEST(ShardedDeterminism, DrainByteIdenticalAcrossThreadCounts)
{
    // Drain re-dispatch is a shard-ownership migration: instance
    // 0's queued requests leave its shard mid-run and re-enter the
    // router while cross-shard arrivals are still in flight.
    cli::CliOptions options;
    options.requests = 96;
    options.clients = 24;
    options.instances = 3;
    options.routing = "round-robin";
    options.drainAtSeconds = 1.0;
    expectThreadInvariant(options);
}

TEST(ShardedDeterminism, AutoscaleByteIdenticalAcrossThreadCounts)
{
    // Provisioning adopts engines onto shards mid-run (cold-start
    // onto the least-loaded shard) and warm-up completion steals
    // queued work across shard boundaries.
    cli::CliOptions options;
    options.requests = 128;
    options.poissonRate = 40.0;
    options.autoscale = true;
    options.instances = 2;
    options.minInstances = 1;
    options.maxInstances = 6;
    options.provisionDelaySeconds = 1.0;
    expectThreadInvariant(options);
}

TEST(ShardedDeterminism, DisaggByteIdenticalAcrossThreadCounts)
{
    // Every migrated request crosses a shard boundary twice: the
    // prefill finish notify hops to the coordinator, and the decode
    // dispatch hops onto another pool's shard.
    cli::CliOptions options;
    options.requests = 96;
    options.clients = 16;
    options.disagg = true;
    options.prefillInstances = 2;
    options.decodeInstances = 2;
    expectThreadInvariant(options);
}

TEST(ShardedDeterminism, SplitFuseSwapByteIdenticalAcrossThreadCounts)
{
    // Chunked prefill re-schedules same-tick continuation steps
    // inside a window (the mini-round path) and swap eviction adds
    // the shortest spawn-floor candidate.
    cli::CliOptions options;
    options.workload = "sharegpt-o1";
    options.requests = 96;
    options.clients = 32;
    options.instances = 4;
    options.scheduler = "aggressive";
    options.overcommit = 0.99;
    options.splitFuse = true;
    options.evictionMode = "swap";
    expectThreadInvariant(options);
}

TEST(ShardedDeterminism, RepeatedShardedRunsAreByteIdentical)
{
    // Thread scheduling must not leak into results: two
    // from-scratch 8-thread runs serialize identically.
    cli::CliOptions options;
    options.requests = 96;
    options.clients = 32;
    options.instances = 4;
    const std::string first = runSerialized(options, 8);
    const std::string second = runSerialized(options, 8);
    EXPECT_EQ(first, second);
}

/** Closed-loop fleet harness on an explicit hub, for tests that
 *  need to observe shard placement directly. */
struct HubFleet
{
    sim::SimContext root;
    std::unique_ptr<sim::ShardedSimContext> hub;
    std::unique_ptr<cluster::ServingCluster> fleet;

    HubFleet(std::size_t instances, std::uint32_t threads)
    {
        hub = std::make_unique<sim::ShardedSimContext>(root,
                                                       threads);
        std::vector<std::unique_ptr<engine::ServingEngine>> engines;
        for (std::size_t i = 0; i < instances; ++i)
            engines.push_back(makeEngine());
        fleet = std::make_unique<cluster::ServingCluster>(
            std::move(engines),
            cluster::RoutingPolicy::RoundRobin, root);
    }

    static std::unique_ptr<engine::ServingEngine>
    makeEngine()
    {
        auto config = core::SchedulerConfig::pastFutureDefault(0.05);
        return std::make_unique<engine::ServingEngine>(
            tinyPerf(8.0), core::makeScheduler(config));
    }

    metrics::RunReport
    runClosedLoop(const workload::Dataset &dataset,
                  std::size_t clients)
    {
        workload::ClosedLoopClientPool pool(clients, dataset,
                                            *fleet);
        fleet->setOnFinish(
            [&](const workload::RequestSpec &spec, Tick tick) {
                pool.onRequestFinished(spec.id, tick);
            });
        pool.start();
        return fleet->run();
    }
};

TEST(ShardedPlacement, AdoptionBalancesShardsLeastLoaded)
{
    // Five engines over two shards: least-live placement with
    // lowest-index ties alternates 0,1,0,1,0.
    HubFleet harness(5, 2);
    EXPECT_EQ(harness.fleet->instanceShard(0), 0u);
    EXPECT_EQ(harness.fleet->instanceShard(1), 1u);
    EXPECT_EQ(harness.fleet->instanceShard(2), 0u);
    EXPECT_EQ(harness.fleet->instanceShard(3), 1u);
    EXPECT_EQ(harness.fleet->instanceShard(4), 0u);
}

TEST(ShardedPlacement, ProvisionLandsOnShardFreedByDrain)
{
    // Shards after adoption: {0, 1, 0}. Draining instance 1 (the
    // only engine of shard 1) releases its slot mid-run, so a
    // later cold-start provision must land on shard 1 — the
    // least-loaded shard — while instance 1's queued requests are
    // re-dispatching across shard boundaries.
    HubFleet harness(3, 2);
    harness.fleet->setInstanceFactory(
        [] { return HubFleet::makeEngine(); });
    harness.fleet->scheduleDrain(1, secondsToTicks(0.5));
    harness.root.schedule(secondsToTicks(1.0), [&](Tick) {
        harness.fleet->provisionInstance(secondsToTicks(0.1));
    });

    const auto dataset = workload::makeShareGpt(64, 11);
    const auto merged = harness.runClosedLoop(dataset, 24);
    EXPECT_EQ(merged.numFinished, dataset.requests.size());
    ASSERT_EQ(harness.fleet->numInstances(), 4u);
    EXPECT_EQ(harness.fleet->instanceShard(3), 1u);

    // The windowed executor actually ran: engine steps fired inside
    // windows, deliveries on the coordinator.
    EXPECT_GT(harness.hub->windowsRun(), 0u);
    EXPECT_GT(harness.hub->stepsFired(), 0u);
    EXPECT_GT(harness.hub->deliveriesFired(), 0u);
}

TEST(ShardedPlacement, DisaggPoolsShareOneHubAcrossShards)
{
    // One hub spans both pools, so KV handoffs cross shard
    // boundaries. 2 prefill + 2 decode engines over 3 shards place
    // as {0, 1} and {2, 0}: the prefill->decode handoff for any
    // request served by prefill instance 0 and decode instance 0
    // crosses 0 -> 2.
    const auto make_pool = [](std::size_t n) {
        std::vector<std::unique_ptr<engine::ServingEngine>> pool;
        for (std::size_t i = 0; i < n; ++i)
            pool.push_back(HubFleet::makeEngine());
        return pool;
    };
    disagg::DisaggConfig config;
    config.kvBytesPerToken = 1024;

    const auto run_once = [&](std::uint32_t threads) {
        disagg::DisaggCluster cluster(make_pool(2), make_pool(2),
                                      config, threads);
        if (threads > 1) {
            std::set<std::uint32_t> shards;
            for (std::size_t i = 0; i < 2; ++i) {
                shards.insert(
                    cluster.prefillPool().instanceShard(i));
                shards.insert(
                    cluster.decodePool().instanceShard(i));
            }
            // All three shards host engines, so migrations must
            // cross shard boundaries.
            EXPECT_EQ(shards.size(), 3u);
        }
        const auto dataset = workload::makeShareGpt(48, 7);
        workload::ClosedLoopClientPool pool(12, dataset, cluster);
        cluster.setOnFinish(
            [&](const workload::RequestSpec &spec, Tick tick) {
                pool.onRequestFinished(spec.id, tick);
            });
        pool.start();
        const metrics::RunReport report = cluster.run();
        EXPECT_GT(cluster.migratedRequests(), 0);
        std::ostringstream oss;
        metrics::writeSummaryJson(oss, report, metrics::SlaSpec{});
        metrics::writeRequestsCsv(oss, report, metrics::SlaSpec{});
        return oss.str();
    };
    EXPECT_EQ(run_once(1), run_once(3));
}

TEST(ShardedExecutor, SpawnFloorIsPositiveAndHonest)
{
    // The conservative window relies on every engine-declared floor
    // being a true lower bound on coordinator-bound event spawns; a
    // floor of 0 would collapse windows to nothing.
    auto engine = HubFleet::makeEngine();
    EXPECT_GE(engine->deliverySpawnFloor(), 1);
}

} // namespace
} // namespace lightllm
