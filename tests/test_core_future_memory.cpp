/**
 * @file
 * Tests for the future-required-memory computation (Eqs. 2-4),
 * including a brute-force token-by-token simulation oracle and the
 * scheduling scenarios of the paper's Figures 5 and 6.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "base/rng.hh"
#include "core/future_memory.hh"

namespace lightllm {
namespace core {
namespace {

TEST(FutureMemoryTest, EmptyBatchIsZero)
{
    std::vector<BatchEntry> entries;
    EXPECT_EQ(futureRequiredMemory(entries), 0);
}

TEST(FutureMemoryTest, SingleRequestPeaksAtCompletion)
{
    // One request: peak = prompt + full predicted output.
    std::vector<BatchEntry> entries{{100, 10, 50}};
    EXPECT_EQ(futureRequiredMemory(entries), 150);
}

TEST(FutureMemoryTest, FinishedRequestContributesResidentOnly)
{
    std::vector<BatchEntry> entries{{100, 50, 50}};
    EXPECT_EQ(futureRequiredMemory(entries), 150);
}

TEST(FutureMemoryTest, TwoRequestHandComputation)
{
    // A: prompt 10, generated 0, predicted 4 (remaining 4).
    // B: prompt 20, generated 0, predicted 2 (remaining 2).
    // Sorted desc by remaining: [A(4), B(2)].
    // M_1 (A finishes, B gone):  (10+0) + 4*1           = 14
    // M_2 (B finishes first):    (10+0)+(20+0) + 2*2    = 34
    // Peak = 34.
    std::vector<BatchEntry> entries{{10, 0, 4}, {20, 0, 2}};
    EXPECT_EQ(futureRequiredMemory(entries), 34);
}

TEST(FutureMemoryTest, StaggeredCompletionsBeatSumOfPeaks)
{
    // Three requests with staggered remaining lengths: the batch
    // peak is far below the sum of individual peaks, which is the
    // whole point of Eq. 3 (conservative schedulers assume the sum).
    std::vector<BatchEntry> entries{
        {100, 0, 100}, {100, 0, 50}, {100, 0, 10}};
    const TokenCount sum_of_peaks = 200 + 150 + 110;
    const TokenCount peak = futureRequiredMemory(entries);
    EXPECT_LT(peak, sum_of_peaks);
    // Hand check: sorted remaining [100, 50, 10].
    // M_1 = 100 + 100*1 = 200
    // M_2 = 200 + 50*2  = 300
    // M_3 = 300 + 10*3  = 330
    EXPECT_EQ(peak, 330);
}

TEST(FutureMemoryTest, PeakAtLeastCurrentResident)
{
    std::vector<BatchEntry> entries{
        {50, 20, 30}, {60, 10, 15}, {70, 5, 5}};
    TokenCount resident = 0;
    for (const auto &entry : entries)
        resident += entry.promptLen + entry.generatedLen;
    EXPECT_GE(futureRequiredMemory(entries), resident);
}

TEST(FutureMemoryTest, SpanOverloadDoesNotMutate)
{
    const std::vector<BatchEntry> entries{{10, 0, 4}, {20, 0, 2}};
    const auto copy = entries;
    EXPECT_EQ(futureRequiredMemory(std::span<const BatchEntry>(
                  entries)),
              34);
    EXPECT_EQ(entries[0].promptLen, copy[0].promptLen);
    EXPECT_EQ(entries[1].promptLen, copy[1].promptLen);
}

TEST(FutureMemoryTest, ProfileIsInCompletionOrder)
{
    std::vector<BatchEntry> entries{{10, 0, 4}, {20, 0, 2}};
    const auto profile = futureMemoryProfile(entries);
    ASSERT_EQ(profile.size(), 2u);
    // Earliest completion first: B at 34, then A at 14.
    EXPECT_EQ(profile[0], 34);
    EXPECT_EQ(profile[1], 14);
}

TEST(FutureMemoryDeathTest, PredictionBelowGeneratedPanics)
{
    std::vector<BatchEntry> entries{{10, 20, 5}};
    EXPECT_DEATH(futureRequiredMemory(entries), "below generated");
}

/**
 * Figure 5 analogue: admitting the same queued request one step
 * later (after the running batch made progress) lowers the batch's
 * peak memory demand.
 */
TEST(FutureMemoryTest, LaterAdmissionLowersPeak)
{
    // Running requests at time t.
    const BatchEntry a_now{4, 1, 4};   // 3 remaining
    const BatchEntry b_now{3, 2, 3};   // 1 remaining
    const BatchEntry queued{3, 0, 3};  // 3 remaining

    std::vector<BatchEntry> at_t{a_now, b_now, queued};
    const TokenCount peak_t = futureRequiredMemory(at_t);

    // One decode step later: a and b each generated one token and b
    // finished (released); admit the queued request now.
    const BatchEntry a_next{4, 2, 4};  // 2 remaining
    std::vector<BatchEntry> at_t1{a_next, queued};
    const TokenCount peak_t1 = futureRequiredMemory(at_t1);

    EXPECT_LT(peak_t1, peak_t);
}

/**
 * Figure 6 analogue with token capacity 21: the aggressive choice
 * (admit immediately) needs more memory than the system has, while
 * waiting one step fits exactly — the Past-Future scheduler's
 * "admit at the optimal time point".
 */
TEST(FutureMemoryTest, Figure6AdmitAtRightTime)
{
    const TokenCount capacity = 21;

    // Two running requests and a newcomer at time t.
    std::vector<BatchEntry> at_t{
        {5, 1, 5},   // 4 remaining
        {4, 2, 4},   // 2 remaining
        {4, 0, 4},   // newcomer: 4 remaining
    };
    EXPECT_GT(futureRequiredMemory(at_t), capacity);

    // At t+1 the running requests progressed one token each.
    std::vector<BatchEntry> at_t1{
        {5, 2, 5},
        {4, 3, 4},
        {4, 0, 4},
    };
    EXPECT_LE(futureRequiredMemory(at_t1), capacity);
}

/**
 * Brute-force oracle: simulate the batch token by token. Every
 * step, each unfinished request grows by one token; occupancy is
 * sampled after growth; requests that reached their prediction
 * release their memory after that step. The exact peak must equal
 * Eq. 4's M*.
 */
TokenCount
bruteForcePeak(std::vector<BatchEntry> entries)
{
    TokenCount peak = 0;
    // Include the initial resident set (covers all-finished edge).
    TokenCount resident = 0;
    for (const auto &entry : entries)
        resident += entry.promptLen + entry.generatedLen;
    peak = resident;

    while (true) {
        // Finished requests release their memory before the next
        // decode step runs (the engine frees at finish time).
        std::erase_if(entries, [](const BatchEntry &entry) {
            return entry.generatedLen >= entry.predictedOutputLen;
        });
        if (entries.empty())
            break;
        // Grow every remaining request by one token and sample the
        // occupancy at the end of the step.
        TokenCount occupancy = 0;
        for (auto &entry : entries) {
            entry.generatedLen += 1;
            occupancy += entry.promptLen + entry.generatedLen;
        }
        peak = std::max(peak, occupancy);
    }
    return peak;
}

class FutureMemoryProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FutureMemoryProperty, MatchesBruteForceSimulation)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        const auto batch_size = rng.uniformInt(1, 24);
        std::vector<BatchEntry> entries;
        for (std::int64_t i = 0; i < batch_size; ++i) {
            BatchEntry entry;
            entry.promptLen = rng.uniformInt(1, 400);
            entry.generatedLen = rng.uniformInt(0, 200);
            entry.predictedOutputLen =
                entry.generatedLen + rng.uniformInt(0, 300);
            entries.push_back(entry);
        }
        const TokenCount brute = bruteForcePeak(entries);
        const TokenCount analytic = futureRequiredMemory(entries);
        ASSERT_EQ(analytic, brute)
            << "trial " << trial << " batch " << batch_size;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FutureMemoryProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u, 77u, 88u));

} // namespace
} // namespace core
} // namespace lightllm
