/**
 * @file
 * Tests for disaggregated prefill/decode serving: interconnect
 * transfer math, end-to-end migration through the bounded handoff
 * queue, overflow shedding, decode-pool drains with in-flight
 * migrations, determinism of the co-simulation, and the
 * dollars-per-second cost axis.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <unordered_map>

#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "disagg/disagg_cluster.hh"
#include "engine/serving_engine.hh"
#include "metrics/report_io.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "test_fixtures.hh"

namespace lightllm {
namespace {

using core::SchedulerConfig;
using disagg::DisaggCluster;
using disagg::DisaggConfig;
using testfx::makeRequest;
using testfx::tinyPerf;

/** tinyPerf with a metered hardware price. */
model::PerfModel
pricedPerf(double mem_megabytes, double dollars_per_second)
{
    const model::PerfModel base = tinyPerf(mem_megabytes);
    model::HardwareSpec hardware = base.hardwareSpec();
    hardware.dollarsPerSecond = dollars_per_second;
    return model::PerfModel(base.modelSpec(), hardware);
}

/** Interconnect config matching tinyPerf's model (1024 B/token). */
DisaggConfig
tinyConfig()
{
    DisaggConfig config;
    config.kvBytesPerToken = 1024;
    config.blockSize = 16;
    config.linkBandwidth = 25e9;
    config.transferLatency = secondsToTicks(0.002);
    return config;
}

std::vector<std::unique_ptr<engine::ServingEngine>>
makeEngines(std::size_t count, double mem_megabytes = 4.0,
            double dollars_per_second = 0.0)
{
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    for (std::size_t i = 0; i < count; ++i) {
        engines.push_back(std::make_unique<engine::ServingEngine>(
            pricedPerf(mem_megabytes, dollars_per_second),
            core::makeScheduler(SchedulerConfig::oracle())));
    }
    return engines;
}

// --- Interconnect math --------------------------------------------------

TEST(DisaggMathTest, MigrationMovesWholeBlocks)
{
    DisaggConfig config;
    config.kvBytesPerToken = 1000;
    config.blockSize = 16;
    EXPECT_EQ(disagg::migrationBytes(config, 1), 16'000);
    EXPECT_EQ(disagg::migrationBytes(config, 16), 16'000);
    EXPECT_EQ(disagg::migrationBytes(config, 17), 32'000);
}

TEST(DisaggMathTest, TransferTimeSerializesOverTheLink)
{
    DisaggConfig config;
    config.kvBytesPerToken = 1000;
    config.blockSize = 16;
    config.linkBandwidth = 1e6;  // 1 MB/s: 16 KB take 16 ms
    config.transferLatency = 500;
    EXPECT_EQ(disagg::migrationTransferTicks(config, 16),
              500 + secondsToTicks(0.016));
}

// --- End-to-end migration ------------------------------------------------

TEST(DisaggClusterTest, EveryRequestMigratesAndFinishes)
{
    DisaggCluster cluster(makeEngines(2), makeEngines(2),
                          tinyConfig());
    std::unordered_map<RequestId, TokenCount> expected_output;
    for (RequestId id = 0; id < 30; ++id) {
        const auto spec = makeRequest(id, 60, 20 + id % 5);
        expected_output[id] = spec.effectiveOutputLen();
        cluster.submitAt(spec, id * 1000);
    }
    const auto report = cluster.run();

    EXPECT_EQ(report.numFinished, 30u);
    EXPECT_EQ(cluster.offeredRequests(), 30);
    EXPECT_EQ(cluster.migratedRequests(), 30);
    EXPECT_EQ(cluster.handoffShedRequests(), 0);
    EXPECT_TRUE(report.disaggregated);
    EXPECT_EQ(report.prefillPool.finished, 30u);
    EXPECT_EQ(report.decodePool.finished, 30u);
    EXPECT_GT(report.migratedKvBytes, 0);
    EXPECT_EQ(report.migratedRequests, 30);

    // Combined records: arrival + TTFT from the prefill side, the
    // full output across both pools, completion after first token.
    for (const auto &record : report.requests) {
        EXPECT_EQ(record.arrival,
                  static_cast<Tick>(record.id) * 1000);
        EXPECT_EQ(record.outputTokens, expected_output[record.id]);
        EXPECT_GT(record.firstToken, record.arrival);
        EXPECT_GT(record.finish, record.firstToken);
        // The migration gap counts toward MTPOT: transfer latency
        // alone is 2 ms, so no migrated request reports a smaller
        // worst gap.
        EXPECT_GE(record.maxGap, secondsToTicks(0.002));
    }
}

TEST(DisaggClusterTest, SingleTokenRequestsFinishInPrefillPool)
{
    DisaggCluster cluster(makeEngines(1), makeEngines(1),
                          tinyConfig());
    for (RequestId id = 0; id < 8; ++id)
        cluster.submitAt(makeRequest(id, 50, 1), 0);
    const auto report = cluster.run();
    EXPECT_EQ(report.numFinished, 8u);
    EXPECT_EQ(cluster.migratedRequests(), 0);
    EXPECT_EQ(report.migratedKvBytes, 0);
    EXPECT_EQ(report.decodePool.finished, 0u);
    for (const auto &record : report.requests)
        EXPECT_EQ(record.outputTokens, 1);
}

TEST(DisaggClusterTest, RerunIsByteIdentical)
{
    const auto run_once = []() {
        DisaggCluster cluster(makeEngines(2), makeEngines(2),
                              tinyConfig());
        for (RequestId id = 0; id < 40; ++id) {
            cluster.submitAt(
                makeRequest(id, 50 + (id % 7) * 30, 10 + id % 9),
                id * 2000);
        }
        const auto report = cluster.run();
        std::ostringstream oss;
        metrics::writeSummaryJson(oss, report,
                                  metrics::SlaSpec::small7b13b());
        // The summary alone could mask compensating per-request
        // differences; pin every record's timeline too.
        for (const auto &record : report.requests) {
            oss << record.id << ':' << record.arrival << ':'
                << record.firstToken << ':' << record.finish << ':'
                << record.maxGap << '\n';
        }
        return oss.str();
    };
    EXPECT_EQ(run_once(), run_once());
}

// --- Handoff backpressure ------------------------------------------------

TEST(DisaggClusterTest, HandoffOverflowShedsAtTheBound)
{
    // Two fast prefill instances feed one tiny decode instance
    // (~0.3 MB of KV after weights, so two or three requests fit)
    // through a single-slot handoff queue: transfers that land on a
    // full queue must be dropped, not buffered without bound.
    auto config = tinyConfig();
    config.handoffDepth = 1;
    DisaggCluster cluster(makeEngines(2), makeEngines(1, 0.5),
                          config);
    const std::int64_t offered = 24;
    for (RequestId id = 0; id < offered; ++id)
        cluster.submitAt(makeRequest(id, 100, 40), 0);
    const auto report = cluster.run();

    EXPECT_GT(cluster.handoffShedRequests(), 0);
    EXPECT_EQ(report.handoffShedRequests,
              cluster.handoffShedRequests());
    // Every offered request is accounted for: finished or shed, and
    // shed requests leave no end-to-end record.
    EXPECT_EQ(static_cast<std::int64_t>(report.numFinished) +
                  report.handoffShedRequests,
              offered);
    EXPECT_EQ(report.requests.size(), report.numFinished);
    EXPECT_EQ(report.shedRequests, report.handoffShedRequests);
}

// --- Drain with in-flight migrations ------------------------------------

TEST(DisaggClusterTest, DecodeDrainUnwindsChargesAndFinishesAll)
{
    DisaggCluster cluster(makeEngines(1), makeEngines(2),
                          tinyConfig());
    // Arrivals spread across the drain tick so migrations are in
    // flight (transfers take >= 2 ms) when decode instance 0 goes
    // away; its admitted-but-unfinished migrations re-dispatch to
    // instance 1 and their routing charges unwind.
    for (RequestId id = 0; id < 20; ++id)
        cluster.submitAt(makeRequest(id, 80, 30),
                         id * secondsToTicks(0.001));
    cluster.decodePool().scheduleDrain(0, secondsToTicks(0.01));
    const auto report = cluster.run();

    EXPECT_EQ(report.numFinished, 20u);
    EXPECT_EQ(cluster.handoffShedRequests(), 0);
    // The drained instance serves nothing after the drain tick and
    // the future-memory ledger carries no residue.
    for (TokenCount load : cluster.decodePool().predictedLoads())
        EXPECT_EQ(load, 0);
    for (const auto &record : report.requests) {
        EXPECT_EQ(record.arrival,
                  static_cast<Tick>(record.id) *
                      secondsToTicks(0.001));
        EXPECT_EQ(record.outputTokens, 30);
    }
}

// --- Cost axis -----------------------------------------------------------

TEST(DisaggCostTest, FactoryPricesScaleWithTensorParallel)
{
    const auto a100 = model::HardwareSpec::a100_80g();
    EXPECT_GT(a100.dollarsPerSecond, 0.0);
    EXPECT_GT(model::HardwareSpec::h800().dollarsPerSecond,
              a100.dollarsPerSecond);
    EXPECT_NEAR(a100.withTensorParallel(4).dollarsPerSecond,
                4.0 * a100.dollarsPerSecond, 1e-12);
}

TEST(DisaggCostTest, InstanceCostIsAliveSecondsTimesRate)
{
    const double rate = 2.5;
    std::vector<std::unique_ptr<engine::ServingEngine>> engines =
        makeEngines(3, 4.0, rate);
    cluster::ServingCluster fleet(
        std::move(engines), cluster::RoutingPolicy::RoundRobin);
    for (RequestId id = 0; id < 30; ++id)
        fleet.submitAt(makeRequest(id, 60, 20), 0);
    const auto report = fleet.run();
    EXPECT_EQ(report.numFinished, 30u);
    EXPECT_GT(report.instanceSeconds, 0.0);
    // A static homogeneous fleet: every instance is alive for the
    // whole run, so cost is exactly the metered GPU-seconds.
    EXPECT_NEAR(report.instanceCost, report.instanceSeconds * rate,
                1e-9 * report.instanceSeconds);
}

TEST(DisaggCostTest, MergedDisaggCostCoversBothPools)
{
    const double rate = 1.25;
    DisaggCluster cluster(makeEngines(1, 4.0, rate),
                          makeEngines(2, 4.0, rate), tinyConfig());
    for (RequestId id = 0; id < 12; ++id)
        cluster.submitAt(makeRequest(id, 60, 15), 0);
    const auto report = cluster.run();
    EXPECT_EQ(report.numFinished, 12u);
    EXPECT_GT(report.instanceCost, 0.0);
    EXPECT_NEAR(report.instanceCost, report.instanceSeconds * rate,
                1e-9 * report.instanceSeconds);
    EXPECT_NEAR(report.instanceCost,
                cluster.prefillReport().instanceCost +
                    cluster.decodeReport().instanceCost,
                1e-12);
}

} // namespace
} // namespace lightllm
