/**
 * @file
 * Coverage of the SLA-driven elastic autoscaling subsystem: the
 * sliding-window SLO monitor, the reactive and predictive scale
 * policies, the AutoScaler's clamping/cooldown/shed decisions, and
 * the cluster's instance lifecycle (provision, warm-up gating,
 * scale-down floors, instance-seconds accounting, overload
 * shedding).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autoscale/autoscaler.hh"
#include "autoscale/scale_policy.hh"
#include "autoscale/slo_monitor.hh"
#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "test_fixtures.hh"
#include "workload/arrivals.hh"
#include "workload/datasets.hh"
#include "workload/rate_schedule.hh"

namespace lightllm {
namespace {

using testfx::makeRequest;
using testfx::tinyPerf;

metrics::SlaSpec
testSla()
{
    // TTFT < 2 s, MTPOT < 1 s: tight enough for tiny workloads.
    return metrics::SlaSpec{secondsToTicks(2.0),
                            secondsToTicks(1.0)};
}

/** A completion record with explicit TTFT / max gap. */
metrics::RequestRecord
record(Tick finish, double ttft_seconds, double gap_seconds,
       TokenCount tokens = 10)
{
    metrics::RequestRecord rec;
    rec.id = 1;
    rec.outputTokens = tokens;
    rec.finish = finish;
    rec.arrival = finish - secondsToTicks(ttft_seconds) - 1;
    rec.firstToken = rec.arrival + secondsToTicks(ttft_seconds);
    rec.maxGap = secondsToTicks(gap_seconds);
    return rec;
}

TEST(SloMonitorTest, EmptyWindowHasNoEvidenceOfTrouble)
{
    autoscale::SloMonitor monitor(testSla(), secondsToTicks(60.0));
    const auto stats = monitor.stats(secondsToTicks(100.0));
    EXPECT_EQ(stats.samples, 0u);
    EXPECT_DOUBLE_EQ(stats.attainment, 1.0);
    EXPECT_DOUBLE_EQ(stats.ttftViolationRate, 0.0);
}

TEST(SloMonitorTest, ViolationRatesAndGoodput)
{
    autoscale::SloMonitor monitor(testSla(), secondsToTicks(60.0));
    const Tick base = secondsToTicks(100.0);
    monitor.observe(record(base, 0.5, 0.2, 10));      // compliant
    monitor.observe(record(base + 1, 5.0, 0.2, 20));  // TTFT bad
    monitor.observe(record(base + 2, 0.5, 3.0, 30));  // MTPOT bad
    monitor.observe(record(base + 3, 0.5, 0.1, 40));  // compliant

    const auto stats = monitor.stats(base + 10);
    EXPECT_EQ(stats.samples, 4u);
    EXPECT_DOUBLE_EQ(stats.ttftViolationRate, 0.25);
    EXPECT_DOUBLE_EQ(stats.mtpotViolationRate, 0.25);
    EXPECT_DOUBLE_EQ(stats.attainment, 0.5);
    // Compliant tokens (10 + 40) over the 60 s window.
    EXPECT_NEAR(stats.goodputTokensPerSec, 50.0 / 60.0, 1e-9);
    EXPECT_GT(stats.p99TtftSeconds, 1.0);
}

TEST(SloMonitorTest, OldSamplesFallOutOfTheWindow)
{
    autoscale::SloMonitor monitor(testSla(), secondsToTicks(10.0));
    monitor.observe(record(secondsToTicks(1.0), 9.0, 0.1));
    monitor.observe(record(secondsToTicks(2.0), 9.0, 0.1));
    EXPECT_DOUBLE_EQ(
        monitor.stats(secondsToTicks(5.0)).attainment, 0.0);

    // Both violations are older than now - window: forgotten.
    monitor.observe(record(secondsToTicks(14.0), 0.5, 0.1));
    const auto stats = monitor.stats(secondsToTicks(14.0));
    EXPECT_EQ(stats.samples, 1u);
    EXPECT_DOUBLE_EQ(stats.attainment, 1.0);
}

/** Snapshot builder for policy tests. */
autoscale::FleetSnapshot
fleetOf(std::size_t n, TokenCount capacity, TokenCount outstanding,
        TokenCount predicted, Tick now = secondsToTicks(100.0))
{
    autoscale::FleetSnapshot snap;
    snap.now = now;
    for (std::size_t i = 0; i < n; ++i) {
        autoscale::InstanceSnapshot instance;
        instance.routable = true;
        instance.capacityTokens = capacity;
        instance.outstandingTokens = outstanding;
        instance.predictedLoadTokens = predicted;
        snap.instances.push_back(instance);
    }
    return snap;
}

autoscale::SloStats
sloWith(double attainment, std::size_t samples = 50)
{
    autoscale::SloStats stats;
    stats.samples = samples;
    stats.attainment = attainment;
    stats.ttftViolationRate = 1.0 - attainment;
    return stats;
}

TEST(ReactivePolicyTest, ScalesUpOnViolationsOnlyWithEvidence)
{
    autoscale::ReactiveThresholdPolicy policy(
        autoscale::ReactivePolicyConfig{});
    const auto fleet = fleetOf(2, 10'000, 8'000, 9'000);
    EXPECT_EQ(policy.decide(fleet, sloWith(0.5)), 1);
    // Too few samples: no reaction yet.
    EXPECT_EQ(policy.decide(fleet, sloWith(0.5, 3)), 0);
    // Attaining: hold.
    EXPECT_EQ(policy.decide(fleet, sloWith(0.95)), 0);
}

TEST(ReactivePolicyTest, HysteresisSeparatesUpAndDown)
{
    autoscale::ReactiveThresholdPolicy policy(
        autoscale::ReactivePolicyConfig{});
    // Attainment between target (0.9) and downAttainment (0.98):
    // inside the hysteresis band, hold even though load is light.
    EXPECT_EQ(policy.decide(fleetOf(3, 10'000, 1'000, 1'000),
                            sloWith(0.94)),
              0);
    // Above the band and lightly loaded: shrink.
    EXPECT_EQ(policy.decide(fleetOf(3, 10'000, 1'000, 1'000),
                            sloWith(1.0)),
              -1);
    // Above the band but the shrunk fleet would be loaded: hold.
    EXPECT_EQ(policy.decide(fleetOf(3, 10'000, 8'000, 8'000),
                            sloWith(1.0)),
              0);
    // A fleet of one never shrinks.
    EXPECT_EQ(policy.decide(fleetOf(1, 10'000, 0, 0),
                            sloWith(1.0)),
              0);
}

TEST(PredictivePolicyTest, ProvisionsOnForecastBeforeViolations)
{
    autoscale::PredictiveFutureMemoryPolicy policy(
        autoscale::PredictivePolicyConfig{});
    // Forecast demand 9k per instance vs 10k capacity at 0.85
    // headroom: needs ceil(18k / 8.5k) = 3 instances, has 2 —
    // grows even though attainment is still perfect.
    EXPECT_EQ(policy.decide(fleetOf(2, 10'000, 2'000, 9'000),
                            sloWith(1.0)),
              1);
    // Demand forecast for 4 instances' worth: asks for all of the
    // missing capacity at once.
    EXPECT_EQ(policy.decide(fleetOf(2, 10'000, 2'000, 17'000),
                            sloWith(1.0)),
              2);
    // Comfortable fit: hold.
    EXPECT_EQ(policy.decide(fleetOf(2, 10'000, 2'000, 7'000),
                            sloWith(1.0)),
              0);
}

TEST(PredictivePolicyTest, ShrinksOnlyWhenAttainingAndIdle)
{
    autoscale::PredictiveFutureMemoryPolicy policy(
        autoscale::PredictivePolicyConfig{});
    // Demand fits easily in two instances: shrink from three.
    EXPECT_EQ(policy.decide(fleetOf(3, 10'000, 1'000, 2'000),
                            sloWith(0.95)),
              -1);
    // Same load but the SLO is suffering: never shrink.
    EXPECT_EQ(policy.decide(fleetOf(3, 10'000, 1'000, 2'000),
                            sloWith(0.5)),
              0);
}

/** Policy with a fixed answer, for controller plumbing tests. */
class FixedPolicy : public autoscale::ScalePolicy
{
  public:
    explicit FixedPolicy(int delta) : delta_(delta) {}
    std::string_view name() const override { return "fixed"; }
    int
    decide(const autoscale::FleetSnapshot &,
           const autoscale::SloStats &) override
    {
        return delta_;
    }

  private:
    int delta_;
};

autoscale::AutoscaleConfig
testConfig(std::size_t min_instances, std::size_t max_instances)
{
    autoscale::AutoscaleConfig config;
    config.minInstances = min_instances;
    config.maxInstances = max_instances;
    config.sla = testSla();
    config.controlInterval = secondsToTicks(1.0);
    config.provisionDelay = secondsToTicks(0.5);
    config.downCooldown = secondsToTicks(5.0);
    return config;
}

TEST(AutoScalerTest, ClampsProposalsToBounds)
{
    autoscale::AutoScaler scaler(testConfig(1, 3),
                                 std::make_unique<FixedPolicy>(10));
    EXPECT_EQ(scaler.evaluate(fleetOf(1, 10'000, 0, 0)), 2);
    EXPECT_EQ(scaler.evaluate(fleetOf(3, 10'000, 0, 0)), 0);
}

TEST(AutoScalerTest, ScaleDownIsCooldownLimited)
{
    autoscale::AutoScaler scaler(
        testConfig(1, 3), std::make_unique<FixedPolicy>(-5));
    auto fleet = fleetOf(3, 10'000, 0, 0, secondsToTicks(100.0));
    // Only one retirement per decision, then the cooldown gates.
    EXPECT_EQ(scaler.evaluate(fleet), -1);
    fleet.now += secondsToTicks(1.0);
    EXPECT_EQ(scaler.evaluate(fleet), 0);
    fleet.now += secondsToTicks(10.0);
    EXPECT_EQ(scaler.evaluate(fleet), -1);
    // Never below the floor.
    EXPECT_EQ(scaler.evaluate(fleetOf(1, 10'000, 0, 0,
                                      secondsToTicks(200.0))),
              0);
}

TEST(AutoScalerTest, ShedsOnlyAtMaxScaleWithNothingWarming)
{
    auto config = testConfig(1, 2);
    config.shedPolicy = autoscale::ShedPolicy::Overload;
    config.shedFactor = 1.0;
    autoscale::AutoScaler scaler(config,
                                 std::make_unique<FixedPolicy>(0));

    // Below max scale: more capacity can come — queue, don't shed.
    EXPECT_FALSE(
        scaler.shouldShed(fleetOf(1, 10'000, 50'000, 0), 100));
    // At max scale and over the bound: shed.
    EXPECT_TRUE(
        scaler.shouldShed(fleetOf(2, 10'000, 25'000, 0), 100));
    // At max scale under the bound (5k outstanding per instance
    // against the 20k fleet bound): queue.
    EXPECT_FALSE(
        scaler.shouldShed(fleetOf(2, 10'000, 5'000, 0), 100));
    // A warming instance means capacity is on the way.
    auto warming = fleetOf(2, 10'000, 25'000, 0);
    warming.instances[1].routable = false;
    warming.instances[1].warming = true;
    EXPECT_FALSE(scaler.shouldShed(warming, 100));
}

TEST(AutoScalerTest, FairnessAwareSheddingTargetsOverShareTenants)
{
    auto config = testConfig(1, 2);
    config.shedPolicy = autoscale::ShedPolicy::Overload;
    config.shedFactor = 1.0;
    config.tenantShares = {1.0, 1.0};
    autoscale::AutoScaler scaler(config,
                                 std::make_unique<FixedPolicy>(0));

    const auto fleet = fleetOf(2, 10'000, 25'000, 0);
    base::RequestClass noisy;
    noisy.tenant = 0;
    base::RequestClass victim;
    victim.tenant = 1;

    // Overloaded, but no usage evidence yet: queue, don't shed.
    EXPECT_FALSE(scaler.shouldShed(fleet, 100, noisy));

    // Tenant 0 produced 90% of recent routed work against a 50%
    // share: its overload arrivals shed, the in-share tenant's
    // keep queueing.
    scaler.noteRouted(noisy, 9'000, fleet.now);
    scaler.noteRouted(victim, 1'000, fleet.now);
    EXPECT_TRUE(scaler.shouldShed(fleet, 100, noisy));
    EXPECT_FALSE(scaler.shouldShed(fleet, 100, victim));

    // The overload gate itself is unchanged: under the bound
    // nobody sheds, over-share or not.
    EXPECT_FALSE(scaler.shouldShed(fleetOf(2, 10'000, 5'000, 0),
                                   100, noisy));
}

TEST(AutoScalerTest, NeverPolicyNeverSheds)
{
    autoscale::AutoScaler scaler(testConfig(1, 1),
                                 std::make_unique<FixedPolicy>(0));
    EXPECT_FALSE(scaler.shouldShed(
        fleetOf(1, 1'000, 1'000'000, 0), 1'000));
}

TEST(ShedPolicyTest, NamesRoundTrip)
{
    for (const autoscale::ShedPolicy policy :
         {autoscale::ShedPolicy::Never,
          autoscale::ShedPolicy::Overload}) {
        autoscale::ShedPolicy parsed;
        ASSERT_TRUE(autoscale::parseShedPolicy(
            autoscale::shedPolicyName(policy), parsed));
        EXPECT_EQ(parsed, policy);
    }
    autoscale::ShedPolicy parsed;
    EXPECT_FALSE(autoscale::parseShedPolicy("sometimes", parsed));
}

TEST(ScalePolicyFactoryTest, BuildsBothAndRejectsUnknown)
{
    const auto reactive =
        autoscale::makeScalePolicy("reactive", 0.8);
    ASSERT_NE(reactive, nullptr);
    EXPECT_EQ(reactive->name(), "reactive");
    const auto predictive =
        autoscale::makeScalePolicy("predictive", 0.8);
    ASSERT_NE(predictive, nullptr);
    EXPECT_EQ(predictive->name(), "predictive");
    EXPECT_EQ(autoscale::makeScalePolicy("psychic", 0.8), nullptr);
}

// --- Cluster lifecycle -----------------------------------------------

std::unique_ptr<engine::ServingEngine>
tinyEngine()
{
    return std::make_unique<engine::ServingEngine>(
        tinyPerf(8.0),
        core::makeScheduler(core::SchedulerConfig::oracle()));
}

cluster::ServingCluster
makeFleet(std::size_t instances)
{
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    for (std::size_t i = 0; i < instances; ++i)
        engines.push_back(tinyEngine());
    return cluster::ServingCluster(
        std::move(engines),
        cluster::RoutingPolicy::LeastOutstandingTokens);
}

workload::Dataset
tinyDataset(std::size_t n, TokenCount input = 32,
            TokenCount output = 8)
{
    workload::Dataset dataset;
    dataset.name = "tiny";
    dataset.maxNewTokens = 64;
    for (std::size_t i = 0; i < n; ++i) {
        dataset.requests.push_back(makeRequest(
            static_cast<RequestId>(i), input, output, 64));
    }
    return dataset;
}

TEST(ClusterLifecycleTest, GrowsToMaxAndRoutesToNewInstances)
{
    auto fleet = makeFleet(1);
    fleet.setInstanceFactory(tinyEngine);
    fleet.enableAutoscale(testConfig(1, 3),
                          std::make_unique<FixedPolicy>(1));

    // 200 arrivals over ~4 s: enough control ticks to reach max.
    const auto dataset = tinyDataset(200);
    workload::submitPoissonArrivals(dataset, fleet, 50.0, 7);
    const auto report = fleet.run();

    EXPECT_EQ(report.numFinished, 200u);
    EXPECT_EQ(fleet.numInstances(), 3u);
    EXPECT_EQ(report.peakInstances, 3u);
    EXPECT_EQ(report.scaleUpEvents, 2);
    // Warmed-up instances actually took traffic.
    EXPECT_GT(fleet.routedCounts()[1], 0u);
    EXPECT_GT(fleet.routedCounts()[2], 0u);
    // Elastic fleets cost less than peak-sized static ones.
    EXPECT_GT(report.instanceSeconds,
              ticksToSeconds(report.makespan));
    EXPECT_LT(report.instanceSeconds,
              3.0 * ticksToSeconds(report.makespan));
}

TEST(ClusterLifecycleTest, WarmupGatesRouting)
{
    auto fleet = makeFleet(1);
    fleet.setInstanceFactory(tinyEngine);
    auto config = testConfig(1, 2);
    // Cold start far longer than the traffic: the provisioned
    // instance must never receive any of it.
    config.provisionDelay = secondsToTicks(500.0);
    fleet.enableAutoscale(config,
                          std::make_unique<FixedPolicy>(1));

    const auto dataset = tinyDataset(100);
    workload::submitPoissonArrivals(dataset, fleet, 50.0, 7);
    const auto report = fleet.run();

    EXPECT_EQ(report.numFinished, 100u);
    ASSERT_EQ(fleet.numInstances(), 2u);
    EXPECT_EQ(fleet.routedCounts()[1], 0u);
}

/**
 * A memory-bound engine slow enough that a one-second spike leaves
 * a waiting-queue backlog for several simulated seconds — tinyPerf
 * hardware would drain the whole spike before warm-up completes.
 */
std::unique_ptr<engine::ServingEngine>
slowEngine()
{
    const model::PerfModel perf = tinyPerf(8.0);
    model::HardwareSpec hw = perf.hardwareSpec();
    hw.flopsPerDevice = 3e9;
    hw.memBandwidthPerDevice = 1e9;
    return std::make_unique<engine::ServingEngine>(
        model::PerfModel(perf.modelSpec(), hw),
        core::makeScheduler(core::SchedulerConfig::oracle()));
}

/**
 * Runs the noisy spike schedule once and reports how many requests
 * the elastically provisioned second instance ended up serving.
 */
std::size_t
spikeRoutedToWarmInstance(std::size_t steal_budget)
{
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    engines.push_back(slowEngine());
    cluster::ServingCluster fleet(
        std::move(engines),
        cluster::RoutingPolicy::LeastOutstandingTokens);
    fleet.setInstanceFactory(slowEngine);
    auto config = testConfig(1, 2);
    // Warm-up completes only after the spike has fully arrived, so
    // without stealing the new instance sees at most the straggler
    // tail of the schedule.
    config.provisionDelay = secondsToTicks(2.0);
    config.stealOnWarm = steal_budget;
    fleet.enableAutoscale(config,
                          std::make_unique<FixedPolicy>(1));

    const auto dataset = tinyDataset(400, 200, 8);
    const auto schedule =
        workload::RateSchedule::spike(1.0, 400.0, 0.0, 1.0);
    workload::submitScheduledArrivals(dataset, fleet, schedule, 13);
    const auto report = fleet.run();

    EXPECT_EQ(report.numFinished, 400u);
    EXPECT_EQ(fleet.numInstances(), 2u);
    return fleet.routedCounts()[1];
}

TEST(ClusterLifecycleTest, StealOnWarmRedispatchesSpikeBacklog)
{
    // Regression for work-stealing at provision-complete: the same
    // spike with stealing enabled must move strictly more of the
    // backlog onto the freshly warmed instance than the gated
    // baseline, which only sees post-warm arrivals.
    const std::size_t without = spikeRoutedToWarmInstance(0);
    const std::size_t with = spikeRoutedToWarmInstance(32);
    EXPECT_GT(with, without);
    // The steal itself lands: at least one whole budget beyond
    // whatever trickles in after warm-up.
    EXPECT_GE(with, without + 32);
}

TEST(ClusterLifecycleTest, ScaleDownNeverDropsBelowMinInstances)
{
    // Regression for the --min-instances floor: a policy that
    // always wants to shrink must stop at the floor, not drain the
    // fleet to nothing.
    auto fleet = makeFleet(4);
    fleet.setInstanceFactory(tinyEngine);
    auto config = testConfig(2, 4);
    config.downCooldown = 0;  // shrink as fast as allowed
    fleet.enableAutoscale(config,
                          std::make_unique<FixedPolicy>(-1));

    const auto dataset = tinyDataset(300);
    workload::submitPoissonArrivals(dataset, fleet, 30.0, 11);
    const auto report = fleet.run();

    EXPECT_EQ(report.numFinished, 300u);
    EXPECT_EQ(fleet.nonDrainingInstances(), 2u);
    EXPECT_EQ(report.scaleDownEvents, 2);
    EXPECT_GE(fleet.routableInstances(), 2u);
}

TEST(ClusterLifecycleTest, StaticFleetInstanceSecondsIsSizeTimesMakespan)
{
    auto fleet = makeFleet(3);
    const auto dataset = tinyDataset(60);
    workload::submitPoissonArrivals(dataset, fleet, 40.0, 3);
    const auto report = fleet.run();
    EXPECT_EQ(report.numFinished, 60u);
    EXPECT_NEAR(report.instanceSeconds,
                3.0 * ticksToSeconds(report.makespan), 1e-9);
    EXPECT_EQ(report.peakInstances, 3u);
    EXPECT_EQ(report.offeredRequests, 60);
    EXPECT_EQ(report.shedRequests, 0);
}

TEST(ClusterLifecycleTest, OverloadAtMaxScaleDegradesToRejections)
{
    // Max scale, overload shedding: a burst far beyond capacity
    // must bound the queue by rejecting, and every accepted
    // request must still finish.
    auto fleet = makeFleet(1);
    fleet.setInstanceFactory(tinyEngine);
    auto config = testConfig(1, 1);
    config.shedPolicy = autoscale::ShedPolicy::Overload;
    config.shedFactor = 0.5;
    fleet.enableAutoscale(config,
                          std::make_unique<FixedPolicy>(0));

    const auto dataset = tinyDataset(400, 200, 8);
    workload::submitPoissonArrivals(dataset, fleet, 5000.0, 13);
    const auto report = fleet.run();

    EXPECT_GT(report.shedRequests, 0);
    EXPECT_EQ(report.offeredRequests, 400);
    EXPECT_EQ(static_cast<std::int64_t>(report.numFinished),
              report.offeredRequests - report.shedRequests);
    EXPECT_GT(report.shedRate(), 0.0);
    EXPECT_LT(report.shedRate(), 1.0);
    // The bound holds: outstanding work on the single instance
    // never exceeded shedFactor x capacity by more than one
    // request's footprint at admission time.
    EXPECT_EQ(fleet.shedRequests(), report.shedRequests);
}

TEST(ClusterLifecycleTest, SnapshotReflectsFleetState)
{
    auto fleet = makeFleet(2);
    auto snap = fleet.snapshot();
    ASSERT_EQ(snap.instances.size(), 2u);
    EXPECT_EQ(snap.routableCount(), 2u);
    EXPECT_EQ(snap.warmingCount(), 0u);
    EXPECT_GT(snap.readyCapacityTokens(), 0);
    EXPECT_EQ(snap.outstandingTokens(), 0);
}

TEST(ClusterDrainDeathTest, LastUndrainedInstanceIsNamed)
{
    auto fleet = makeFleet(2);
    fleet.scheduleDrain(0, 1);
    fleet.scheduleDrain(1, 2);
    const auto dataset = tinyDataset(4);
    workload::submitPoissonArrivals(dataset, fleet, 10.0, 3);
    EXPECT_DEATH(
        fleet.run(),
        "cannot drain instance 1: it is the last undrained");
}

TEST(EngineRecordCallbackTest, DeliversTheLatencyRecord)
{
    engine::ServingEngine engine(
        tinyPerf(8.0),
        core::makeScheduler(core::SchedulerConfig::oracle()));
    std::vector<metrics::RequestRecord> records;
    engine.setOnRecord(
        [&](const metrics::RequestRecord &rec) {
            records.push_back(rec);
        });
    engine.submitAt(makeRequest(7, 30, 5), 0);
    const auto report = engine.run();

    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].id, 7);
    EXPECT_EQ(records[0].outputTokens, 5);
    ASSERT_EQ(report.requests.size(), 1u);
    EXPECT_EQ(records[0].ttft(), report.requests[0].ttft());
    EXPECT_EQ(records[0].finish, report.requests[0].finish);
}

} // namespace
} // namespace lightllm
