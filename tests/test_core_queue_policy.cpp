/**
 * @file
 * Unit tests for the decision-based scheduling pipeline: queue
 * orderings, decision validation, victim ranking, the shared length
 * predictor, and the SchedulingPolicy composition — all over
 * crafted contexts (no engine involved).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/conservative_scheduler.hh"
#include "core/length_predictor.hh"
#include "core/queue_policy.hh"
#include "core/scheduler_factory.hh"
#include "core/scheduling_decision.hh"
#include "core/scheduling_policy.hh"

namespace lightllm {
namespace core {
namespace {

/** Convenience builder for contexts over value vectors. */
struct ContextBuilder
{
    TokenCount capacity = 1000;
    TokenCount used = 0;
    TokenCount overhead = 0;
    std::vector<RunningView> running;
    std::vector<WaitingView> waiting;

    ContextBuilder &
    addRunning(RequestId id, TokenCount prompt, TokenCount generated,
               TokenCount max_new, std::uint64_t admit_seq,
               int priority = 0, bool prefilling = false)
    {
        RunningView view;
        view.id = id;
        view.promptLen = prompt;
        view.generatedLen = generated;
        view.maxNewTokens = max_new;
        view.trueOutputLen = max_new;
        view.admitSeq = admit_seq;
        view.cls.priority = priority;
        view.prefilling = prefilling;
        running.push_back(view);
        used += prompt + generated;
        return *this;
    }

    ContextBuilder &
    addWaiting(RequestId id, TokenCount prompt, TokenCount max_new,
               Tick arrival = 0, int priority = 0,
               TokenCount generated = 0)
    {
        WaitingView view;
        view.id = id;
        view.promptLen = prompt;
        view.generatedLen = generated;
        view.maxNewTokens = max_new;
        view.arrival = arrival;
        view.trueOutputLen = max_new;
        view.cls.priority = priority;
        waiting.push_back(view);
        return *this;
    }

    SchedulerContext
    context() const
    {
        SchedulerContext ctx;
        ctx.capacityTokens = capacity;
        ctx.usedTokens = used;
        ctx.perRequestOverhead = overhead;
        ctx.running = running;
        ctx.waiting = waiting;
        return ctx;
    }
};

std::vector<std::size_t>
orderOf(QueuePolicy &policy, const SchedulerContext &ctx)
{
    std::vector<std::size_t> out;
    policy.order(ctx, out);
    return out;
}

// --- LengthPredictor --------------------------------------------------

TEST(LengthPredictorTest, EmptyWindowFallsBackToCap)
{
    LengthPredictor predictor(100);
    EXPECT_EQ(predictor.expectedOutput(0, 4096), 4096);
    EXPECT_EQ(predictor.predictFootprint(500, 4096), 4596);
}

TEST(LengthPredictorTest, ExpectedOutputIsCappedTailMean)
{
    LengthPredictor predictor(100);
    for (int i = 0; i < 50; ++i)
        predictor.observe(100);
    EXPECT_EQ(predictor.expectedOutput(0, 4096), 100);
    // The cap binds when the tail mean exceeds it.
    EXPECT_EQ(predictor.expectedOutput(0, 60), 60);
    // A request that outlived all history gets the cap.
    EXPECT_EQ(predictor.expectedOutput(200, 4096), 4096);
}

TEST(LengthPredictorTest, DistributionRebuildsOnlyOnChange)
{
    LengthPredictor predictor(100);
    predictor.observe(10);
    const LengthDistribution *first = &predictor.distribution();
    EXPECT_EQ(first, &predictor.distribution());
    EXPECT_EQ(predictor.distribution().size(), 1u);
    predictor.observe(20);
    EXPECT_EQ(predictor.distribution().size(), 2u);
}

TEST(LengthPredictorTest, WarmAndSeedFeedTheWindow)
{
    LengthPredictor predictor(100);
    predictor.seed(4096, 4);
    // Warm history replaces seed placeholders before the ring
    // grows, so the cold-start seed washes out first.
    const std::vector<TokenCount> history{10, 20, 30};
    predictor.warm(history);
    EXPECT_EQ(predictor.window().size(), 4u);
    predictor.observe(40);
    EXPECT_EQ(predictor.window().size(), 4u);
    predictor.observe(50);
    EXPECT_EQ(predictor.window().size(), 5u);
}

// --- Queue orderings --------------------------------------------------

TEST(QueuePolicyTest, FcfsIsIdentity)
{
    auto policy = makeQueuePolicy(QueuePolicyConfig{});
    ContextBuilder builder;
    builder.addWaiting(5, 100, 200, 30);
    builder.addWaiting(6, 10, 200, 10);
    builder.addWaiting(7, 50, 200, 20);
    EXPECT_EQ(orderOf(*policy, builder.context()),
              (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(policy->kind(), QueuePolicyKind::Fcfs);
    EXPECT_EQ(policy->name(), "FCFS");
}

TEST(QueuePolicyTest, SjfOrdersByPredictedService)
{
    QueuePolicyConfig config;
    config.kind = QueuePolicyKind::PredictedSjf;
    config.predictorWindow = 100;
    auto policy = makeQueuePolicy(config);
    // All history at 100 tokens: expected output is 100 for every
    // fresh request, so the prompt differentiates.
    for (int i = 0; i < 50; ++i)
        policy->onRequestFinished(1000 + i, 100);

    ContextBuilder builder;
    builder.addWaiting(0, 500, 4096);
    builder.addWaiting(1, 50, 4096);
    builder.addWaiting(2, 200, 4096);
    EXPECT_EQ(orderOf(*policy, builder.context()),
              (std::vector<std::size_t>{1, 2, 0}));
}

TEST(QueuePolicyTest, SjfColdStartOrdersByPromptPlusCap)
{
    QueuePolicyConfig config;
    config.kind = QueuePolicyKind::PredictedSjf;
    auto policy = makeQueuePolicy(config);
    ContextBuilder builder;
    builder.addWaiting(0, 100, 4096);
    builder.addWaiting(1, 100, 64);
    EXPECT_EQ(orderOf(*policy, builder.context()),
              (std::vector<std::size_t>{1, 0}));
}

TEST(QueuePolicyTest, SjfPrefersRequeuedNearlyDoneRequest)
{
    QueuePolicyConfig config;
    config.kind = QueuePolicyKind::PredictedSjf;
    config.predictorWindow = 100;
    auto policy = makeQueuePolicy(config);
    for (int i = 0; i < 50; ++i)
        policy->onRequestFinished(1000 + i, 100);

    ContextBuilder builder;
    // Evicted request: prompt 100, generated 90; history says
    // outputs end at 100, so expected remaining is small and the
    // recompute prefill (190) still beats the fresh 300-prompt job.
    builder.addWaiting(0, 300, 4096);
    builder.addWaiting(1, 100, 4096, 0, 0, 90);
    EXPECT_EQ(orderOf(*policy, builder.context()),
              (std::vector<std::size_t>{1, 0}));
}

TEST(QueuePolicyTest, SjfTiesKeepQueueOrder)
{
    QueuePolicyConfig config;
    config.kind = QueuePolicyKind::PredictedSjf;
    auto policy = makeQueuePolicy(config);
    ContextBuilder builder;
    builder.addWaiting(3, 100, 200);
    builder.addWaiting(4, 100, 200);
    builder.addWaiting(5, 100, 200);
    EXPECT_EQ(orderOf(*policy, builder.context()),
              (std::vector<std::size_t>{0, 1, 2}));
}

TEST(QueuePolicyTest, EdfOrdersByArrivalDeadline)
{
    QueuePolicyConfig config;
    config.kind = QueuePolicyKind::Edf;
    config.ttftDeadline = 1000;
    auto policy = makeQueuePolicy(config);
    ContextBuilder builder;
    builder.addWaiting(0, 100, 200, 500);
    builder.addWaiting(1, 100, 200, 0);
    builder.addWaiting(2, 100, 200, 300);
    EXPECT_EQ(orderOf(*policy, builder.context()),
              (std::vector<std::size_t>{1, 2, 0}));
}

TEST(QueuePolicyTest, EdfHalvesBudgetPerPriorityClass)
{
    QueuePolicyConfig config;
    config.kind = QueuePolicyKind::Edf;
    config.ttftDeadline = 1000;
    auto policy = makeQueuePolicy(config);
    ContextBuilder builder;
    // Class-1 budget is 500: deadline 400 + 500 = 900 beats the
    // earlier class-0 arrival's 0 + 1000.
    builder.addWaiting(0, 100, 200, 0, 0);
    builder.addWaiting(1, 100, 200, 400, 1);
    EXPECT_EQ(orderOf(*policy, builder.context()),
              (std::vector<std::size_t>{1, 0}));
}

TEST(QueuePolicyTest, PriorityOrdersClassesFcfsWithin)
{
    QueuePolicyConfig config;
    config.kind = QueuePolicyKind::Priority;
    auto policy = makeQueuePolicy(config);
    ContextBuilder builder;
    builder.addWaiting(0, 100, 200, 0, 0);
    builder.addWaiting(1, 100, 200, 1, 2);
    builder.addWaiting(2, 100, 200, 2, 1);
    builder.addWaiting(3, 100, 200, 3, 2);
    EXPECT_EQ(orderOf(*policy, builder.context()),
              (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(QueuePolicyTest, FactoryNamesAndParsing)
{
    EXPECT_STREQ(queuePolicyKindName(QueuePolicyKind::Fcfs), "fcfs");
    EXPECT_STREQ(queuePolicyKindName(QueuePolicyKind::PredictedSjf),
                 "sjf");
    EXPECT_STREQ(queuePolicyKindName(QueuePolicyKind::Edf), "edf");
    EXPECT_STREQ(queuePolicyKindName(QueuePolicyKind::Priority),
                 "priority");
    for (QueuePolicyKind kind :
         {QueuePolicyKind::Fcfs, QueuePolicyKind::PredictedSjf,
          QueuePolicyKind::Edf, QueuePolicyKind::Priority}) {
        QueuePolicyKind parsed = QueuePolicyKind::Fcfs;
        EXPECT_TRUE(
            parseQueuePolicyKind(queuePolicyKindName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    QueuePolicyKind parsed = QueuePolicyKind::Fcfs;
    EXPECT_FALSE(parseQueuePolicyKind("bogus", parsed));
}

// --- Decision validation ----------------------------------------------

SchedulerContext
validationContext(ContextBuilder &builder)
{
    builder.addRunning(10, 100, 5, 200, 1);
    builder.addRunning(11, 100, 0, 200, 2, 0, /*prefilling=*/true);
    builder.addWaiting(1, 100, 200);
    builder.addWaiting(2, 100, 200);
    return builder.context();
}

TEST(DecisionValidationTest, AcceptsWellFormedDecision)
{
    ContextBuilder builder;
    const SchedulerContext ctx = validationContext(builder);
    SchedulingDecision decision;
    decision.admit = {2, 1};
    decision.evict = {10};
    EXPECT_EQ(validateDecision(decision, ctx), "");
    EXPECT_FALSE(decision.empty());
    EXPECT_TRUE(SchedulingDecision{}.empty());
}

TEST(DecisionValidationTest, RejectsUnknownAdmitId)
{
    ContextBuilder builder;
    const SchedulerContext ctx = validationContext(builder);
    SchedulingDecision decision;
    decision.admit = {99};
    EXPECT_NE(validateDecision(decision, ctx), "");
}

TEST(DecisionValidationTest, RejectsDuplicateAdmitId)
{
    ContextBuilder builder;
    const SchedulerContext ctx = validationContext(builder);
    SchedulingDecision decision;
    decision.admit = {1, 2, 1};
    EXPECT_NE(validateDecision(decision, ctx), "");
}

TEST(DecisionValidationTest, RejectsEvictOutsideRunningBatch)
{
    ContextBuilder builder;
    const SchedulerContext ctx = validationContext(builder);
    SchedulingDecision decision;
    decision.evict = {1};  // waiting, not running
    EXPECT_NE(validateDecision(decision, ctx), "");
}

TEST(DecisionValidationTest, RejectsEvictingPrefillingRequest)
{
    ContextBuilder builder;
    const SchedulerContext ctx = validationContext(builder);
    SchedulingDecision decision;
    decision.evict = {11};
    EXPECT_NE(validateDecision(decision, ctx), "");
}

TEST(DecisionValidationTest, RejectsDuplicateEvictId)
{
    ContextBuilder builder;
    const SchedulerContext ctx = validationContext(builder);
    SchedulingDecision decision;
    decision.evict = {10, 10};
    EXPECT_NE(validateDecision(decision, ctx), "");
}

// --- SchedulingPolicy composition -------------------------------------

std::unique_ptr<SchedulingPolicy>
makePipeline(QueuePolicyKind kind)
{
    QueuePolicyConfig queue;
    queue.kind = kind;
    return std::make_unique<SchedulingPolicy>(
        std::make_unique<ConservativeScheduler>(1.0),
        makeQueuePolicy(queue));
}

TEST(SchedulingPolicyTest, FcfsDecisionMatchesPrefixCount)
{
    auto pipeline = makePipeline(QueuePolicyKind::Fcfs);
    ConservativeScheduler reference(1.0);

    ContextBuilder builder;
    for (RequestId id = 0; id < 5; ++id)
        builder.addWaiting(id, 100, 200);
    const SchedulerContext ctx = builder.context();

    const SchedulingDecision decision = pipeline->decide(ctx);
    const std::size_t count = reference.selectAdmissions(ctx);
    ASSERT_EQ(decision.admit.size(), count);
    for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(decision.admit[i], ctx.waiting[i].id);
    EXPECT_TRUE(decision.evict.empty());
    EXPECT_EQ(validateDecision(decision, ctx), "");
}

TEST(SchedulingPolicyTest, SjfAdmitsShortJobFromBehind)
{
    auto pipeline = makePipeline(QueuePolicyKind::PredictedSjf);
    ContextBuilder builder;
    // Conservative limit 1000 with 300 already committed: the head
    // request (500 + 300) does not fit, the short one (100 + 100)
    // does — FCFS would admit nothing, SJF admits the short job.
    builder.addRunning(10, 100, 50, 200, 1);
    builder.addWaiting(0, 500, 300);
    builder.addWaiting(1, 100, 100);
    const SchedulerContext ctx = builder.context();

    const SchedulingDecision decision = pipeline->decide(ctx);
    ASSERT_EQ(decision.admit.size(), 1u);
    EXPECT_EQ(decision.admit[0], 1);

    auto fcfs = makePipeline(QueuePolicyKind::Fcfs);
    EXPECT_TRUE(fcfs->decide(ctx).admit.empty());
}

TEST(SchedulingPolicyTest, ForcesProgressWhenIdle)
{
    auto pipeline = makePipeline(QueuePolicyKind::Fcfs);
    ContextBuilder builder;
    // Nothing fits (prompt + cap beyond capacity) but the system is
    // idle: the head request is force-admitted.
    builder.addWaiting(7, 900, 400);
    builder.addWaiting(8, 900, 400);
    const SchedulingDecision decision =
        pipeline->decide(builder.context());
    ASSERT_EQ(decision.admit.size(), 1u);
    EXPECT_EQ(decision.admit[0], 7);
}

TEST(SchedulingPolicyTest, ForcedProgressFollowsQueueOrder)
{
    auto pipeline = makePipeline(QueuePolicyKind::Priority);
    ContextBuilder builder;
    builder.addWaiting(7, 900, 400, 0, 0);
    builder.addWaiting(8, 900, 400, 1, 3);
    const SchedulingDecision decision =
        pipeline->decide(builder.context());
    ASSERT_EQ(decision.admit.size(), 1u);
    EXPECT_EQ(decision.admit[0], 8);
}

TEST(SchedulingPolicyTest, EmptyQueueYieldsEmptyDecision)
{
    auto pipeline = makePipeline(QueuePolicyKind::Fcfs);
    ContextBuilder builder;
    builder.addRunning(10, 100, 5, 200, 1);
    EXPECT_TRUE(pipeline->decide(builder.context()).empty());
}

std::vector<RequestId>
victimsOf(SchedulingPolicy &pipeline, const SchedulerContext &ctx,
          VictimOrder tie_break)
{
    std::vector<RequestId> out;
    pipeline.victimOrder(ctx, tie_break, out);
    return out;
}

TEST(SchedulingPolicyTest, VictimOrderHonoursTieBreakOrder)
{
    auto pipeline = makePipeline(QueuePolicyKind::Fcfs);
    ContextBuilder builder;
    builder.addRunning(10, 100, 5, 200, /*admit_seq=*/3);
    builder.addRunning(11, 100, 5, 200, /*admit_seq=*/7);
    builder.addRunning(12, 100, 5, 200, /*admit_seq=*/5);
    const SchedulerContext ctx = builder.context();
    // Full ranking, not just the front: the engine evicts from the
    // front until the step fits.
    EXPECT_EQ(victimsOf(*pipeline, ctx, VictimOrder::NewestFirst),
              (std::vector<RequestId>{11, 12, 10}));
    EXPECT_EQ(victimsOf(*pipeline, ctx, VictimOrder::OldestFirst),
              (std::vector<RequestId>{10, 12, 11}));
}

TEST(SchedulingPolicyTest, PriorityPolicyShieldsHighClasses)
{
    auto pipeline = makePipeline(QueuePolicyKind::Priority);
    ContextBuilder builder;
    // Newest admission has the highest class; the low-priority
    // request is evicted first regardless of admission order.
    builder.addRunning(10, 100, 5, 200, 1, /*priority=*/2);
    builder.addRunning(11, 100, 5, 200, 2, /*priority=*/0);
    builder.addRunning(12, 100, 5, 200, 3, /*priority=*/2);
    const SchedulerContext ctx = builder.context();
    EXPECT_EQ(victimsOf(*pipeline, ctx, VictimOrder::NewestFirst),
              (std::vector<RequestId>{11, 12, 10}));
    // Within a class the tie-break order still applies.
    ContextBuilder same_class;
    same_class.addRunning(20, 100, 5, 200, 1, 1);
    same_class.addRunning(21, 100, 5, 200, 2, 1);
    EXPECT_EQ(victimsOf(*pipeline, same_class.context(),
                        VictimOrder::NewestFirst),
              (std::vector<RequestId>{21, 20}));
}

TEST(SchedulingPolicyTest, NameSuffixesNonFcfsQueue)
{
    EXPECT_EQ(makePipeline(QueuePolicyKind::Fcfs)->name(),
              "Conservative");
    EXPECT_EQ(makePipeline(QueuePolicyKind::Edf)->name(),
              "Conservative+EDF");
    EXPECT_EQ(makePipeline(QueuePolicyKind::PredictedSjf)->name(),
              "Conservative+Predicted-SJF");
}

TEST(SchedulingPolicyTest, FactoryBuildsConfiguredPipeline)
{
    SchedulerConfig config = SchedulerConfig::pastFutureDefault(0.05);
    config.queue.kind = QueuePolicyKind::Edf;
    auto pipeline = makeSchedulingPolicy(config);
    EXPECT_EQ(pipeline->name(), "Past-Future(reserved=5%)+EDF");
    EXPECT_EQ(pipeline->queue().kind(), QueuePolicyKind::Edf);
}

} // namespace
} // namespace core
} // namespace lightllm
